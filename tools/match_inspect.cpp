// match_inspect: convergence summaries and CI-gateable diffs over the
// JSONL traces JsonlSink writes (e.g. `match_server --trace out.jsonl`).
//
//   match_inspect summary trace.jsonl
//       per-run γ-trajectory report: iterations, iterations-to-stability
//       (eq. 12 reading: γ stops moving for a window of consecutive
//       iterations), final best cost, longest stall, per-phase
//       draw/cost/sort/update time breakdown.  Malformed lines are
//       skipped and counted, never fatal.  Exit 1 when any run's
//       best-so-far regressed within its own trace.
//
//   match_inspect diff baseline.jsonl candidate.jsonl
//       compares the candidate trace against the baseline and exits
//       nonzero when the mean final best (makespan) or the total
//       iteration count regressed beyond the tolerance
//       (--makespan-tol / --iterations-tol, percent).
//
// All logic lives in src/obs/trace_analysis.{hpp,cpp} (covered by
// tests/inspect_test.cpp); this file is only the process entry point.

#include <iostream>
#include <string>
#include <vector>

#include "obs/trace_analysis.hpp"

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  return match::obs::run_inspect_cli(args, std::cout, std::cerr);
}
