#include "baselines/local_search.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "workload/paper_suite.hpp"

namespace match::baselines {
namespace {

struct Fixture {
  workload::Instance inst;
  sim::Platform platform;
  sim::CostEvaluator eval;

  explicit Fixture(std::size_t n, std::uint64_t seed)
      : inst(make(n, seed)),
        platform(inst.make_platform()),
        eval(inst.tig, platform) {}

  static workload::Instance make(std::size_t n, std::uint64_t seed) {
    rng::Rng rng(seed);
    workload::PaperParams params;
    params.n = n;
    return workload::make_paper_instance(params, rng);
  }
};

TEST(RandomSearch, ReturnsValidMappingAndCost) {
  Fixture f(10, 1);
  rng::Rng rng(2);
  const SearchResult r = random_search(f.eval, 500, match::SolverContext(rng));
  EXPECT_TRUE(r.best_mapping.is_permutation());
  EXPECT_DOUBLE_EQ(f.eval.makespan(r.best_mapping), r.best_cost);
  EXPECT_EQ(r.evaluations, 500u);
}

TEST(RandomSearch, MoreSamplesNeverWorse) {
  Fixture f(12, 3);
  rng::Rng r1(4), r2(4);
  // Same seed: the first 100 draws of the 2000-sample run are exactly the
  // 100-sample run, so the bigger budget can only improve.
  const SearchResult small = random_search(f.eval, 100, match::SolverContext(r1));
  const SearchResult large = random_search(f.eval, 2000, match::SolverContext(r2));
  EXPECT_LE(large.best_cost, small.best_cost);
}

TEST(RandomSearch, RejectsZeroSamples) {
  Fixture f(8, 5);
  rng::Rng rng(6);
  EXPECT_THROW(random_search(f.eval, 0, match::SolverContext(rng)), std::invalid_argument);
}

TEST(Greedy, ProducesValidPermutation) {
  Fixture f(15, 7);
  const SearchResult r = greedy_constructive(f.eval);
  EXPECT_TRUE(r.best_mapping.is_permutation());
  EXPECT_DOUBLE_EQ(f.eval.makespan(r.best_mapping), r.best_cost);
}

TEST(Greedy, IsDeterministic) {
  Fixture f(12, 8);
  const SearchResult a = greedy_constructive(f.eval);
  const SearchResult b = greedy_constructive(f.eval);
  EXPECT_EQ(a.best_mapping, b.best_mapping);
}

TEST(Greedy, BeatsTheWorstMapping) {
  Fixture f(12, 9);
  // Greedy should at least be far from the worst permutation.
  rng::Rng rng(10);
  double worst = 0.0;
  for (int i = 0; i < 300; ++i) {
    worst = std::max(
        worst, f.eval.makespan(sim::Mapping::random_permutation(12, rng)));
  }
  const SearchResult r = greedy_constructive(f.eval);
  EXPECT_LT(r.best_cost, worst);
}

TEST(Greedy, RejectsNonSquare) {
  rng::Rng rng(11);
  graph::Tig tig(graph::make_gnp(5, 0.5, {1, 10}, {50, 100}, rng));
  sim::Platform plat(
      graph::ResourceGraph(graph::make_complete(7, {1, 5}, {10, 20}, rng)));
  sim::CostEvaluator eval(tig, plat);
  EXPECT_THROW(greedy_constructive(eval), std::invalid_argument);
}

TEST(HillClimb, ReachesSwapLocalOptimum) {
  Fixture f(8, 12);
  rng::Rng rng(13);
  const SearchResult r = hill_climb(f.eval, 50000, match::SolverContext(rng));
  EXPECT_TRUE(r.best_mapping.is_permutation());

  // No single swap may improve the returned mapping if the budget allowed
  // a full final scan (generous budget above guarantees it).
  const double cost = r.best_cost;
  for (graph::NodeId i = 0; i < 8; ++i) {
    for (graph::NodeId j = i + 1; j < 8; ++j) {
      sim::Mapping m = r.best_mapping;
      const graph::NodeId ri = m.resource_of(i), rj = m.resource_of(j);
      m.set(i, rj);
      m.set(j, ri);
      EXPECT_GE(f.eval.makespan(m), cost - 1e-9);
    }
  }
}

TEST(HillClimb, RespectsEvaluationBudget) {
  Fixture f(10, 14);
  rng::Rng rng(15);
  const SearchResult r = hill_climb(f.eval, 137, match::SolverContext(rng));
  EXPECT_LE(r.evaluations, 137u);
  EXPECT_TRUE(r.best_mapping.is_permutation());
}

TEST(HillClimb, RejectsZeroBudget) {
  Fixture f(8, 16);
  rng::Rng rng(17);
  EXPECT_THROW(hill_climb(f.eval, 0, match::SolverContext(rng)), std::invalid_argument);
}

TEST(SimulatedAnnealing, ReturnsValidResult) {
  Fixture f(12, 18);
  rng::Rng rng(19);
  SaParams params;
  params.steps = 20000;
  const SearchResult r = simulated_annealing(f.eval, params, match::SolverContext(rng));
  EXPECT_TRUE(r.best_mapping.is_permutation());
  EXPECT_DOUBLE_EQ(f.eval.makespan(r.best_mapping), r.best_cost);
}

TEST(SimulatedAnnealing, ImprovesOnInitialState) {
  Fixture f(15, 20);
  // The initial state is the first random permutation drawn from this
  // seed; SA must end at least as good.
  rng::Rng probe(21);
  const double initial =
      f.eval.makespan(sim::Mapping::random_permutation(15, probe));
  rng::Rng rng(21);
  SaParams params;
  params.steps = 30000;
  const SearchResult r = simulated_annealing(f.eval, params, match::SolverContext(rng));
  EXPECT_LE(r.best_cost, initial);
}

TEST(SimulatedAnnealing, ExplicitTemperatureWorks) {
  Fixture f(10, 22);
  rng::Rng rng(23);
  SaParams params;
  params.initial_temp = 1000.0;
  params.steps = 5000;
  const SearchResult r = simulated_annealing(f.eval, params, match::SolverContext(rng));
  EXPECT_TRUE(r.best_mapping.is_permutation());
}

TEST(SimulatedAnnealing, RejectsBadParams) {
  Fixture f(8, 24);
  rng::Rng rng(25);
  SaParams params;
  params.steps = 0;
  EXPECT_THROW(simulated_annealing(f.eval, params, match::SolverContext(rng)),
               std::invalid_argument);
  params.steps = 100;
  params.cooling = 1.0;
  EXPECT_THROW(simulated_annealing(f.eval, params, match::SolverContext(rng)),
               std::invalid_argument);
}

TEST(Comparators, HeuristicsBeatPureRandomOnMediumInstance) {
  Fixture f(20, 26);
  rng::Rng r1(27), r2(27), r3(27);
  const SearchResult rnd = random_search(f.eval, 2000, match::SolverContext(r1));
  const SearchResult hc = hill_climb(f.eval, 20000, match::SolverContext(r2));
  SaParams sa_params;
  sa_params.steps = 20000;
  const SearchResult sa = simulated_annealing(f.eval, sa_params, match::SolverContext(r3));
  EXPECT_LE(hc.best_cost, rnd.best_cost);
  EXPECT_LE(sa.best_cost, rnd.best_cost * 1.05);
}

}  // namespace
}  // namespace match::baselines
