#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "rng/rng.hpp"

namespace match::graph {
namespace {

double total_weight(const std::vector<Edge>& edges) {
  double w = 0.0;
  for (const Edge& e : edges) w += e.weight;
  return w;
}

TEST(Mst, HandComputedTree) {
  // Square with diagonal: MST must take the three cheapest edges that
  // avoid the cycle.
  const std::vector<Edge> edges = {
      {0, 1, 1.0}, {1, 2, 2.0}, {2, 3, 3.0}, {0, 3, 4.0}, {0, 2, 5.0}};
  const Graph g = Graph::from_edges(4, {}, edges);
  const auto tree = minimum_spanning_forest(g);
  ASSERT_EQ(tree.size(), 3u);
  EXPECT_DOUBLE_EQ(total_weight(tree), 6.0);  // 1 + 2 + 3
}

TEST(Mst, SpanningTreeHasNMinusOneEdges) {
  rng::Rng rng(1);
  const Graph g = make_gnp(30, 0.3, {1, 1}, {1, 100}, rng);
  const auto tree = minimum_spanning_forest(g);
  EXPECT_EQ(tree.size(), 29u);
  EXPECT_TRUE(is_connected(Graph::from_edges(30, {}, tree)));
}

TEST(Mst, ForestOnDisconnectedGraph) {
  const std::vector<Edge> edges = {{0, 1, 1.0}, {2, 3, 2.0}};
  const Graph g = Graph::from_edges(5, {}, edges);  // node 4 isolated
  const auto tree = minimum_spanning_forest(g);
  EXPECT_EQ(tree.size(), 2u);
}

TEST(Mst, NeverHeavierThanAnySpanningSubgraph) {
  // Cut property spot check: total MST weight <= total weight of the
  // ring subgraph (also spanning) on a ring + chords instance.
  rng::Rng rng(2);
  const Graph ring = make_ring(12, {1, 1}, {5, 9}, rng);
  auto edges = ring.edge_list();
  const double ring_weight = total_weight(edges);
  // Add chords that are sometimes cheaper.
  for (NodeId u = 0; u < 12; ++u) {
    edges.push_back(Edge{u, static_cast<NodeId>((u + 3) % 12),
                         static_cast<double>(1 + (u % 3))});
  }
  const Graph g = Graph::from_edges(12, {}, edges);
  const auto tree = minimum_spanning_forest(g);
  EXPECT_EQ(tree.size(), 11u);
  EXPECT_LE(total_weight(tree), ring_weight);
}

TEST(Mst, MatchesBruteForceOnTinyGraphs) {
  // Enumerate all spanning trees of K4 by brute force over edge subsets.
  rng::Rng rng(3);
  const Graph g = make_complete(4, {1, 1}, {1, 50}, rng);
  const auto edges = g.edge_list();
  ASSERT_EQ(edges.size(), 6u);
  double best = std::numeric_limits<double>::infinity();
  for (unsigned mask = 0; mask < 64; ++mask) {
    if (__builtin_popcount(mask) != 3) continue;
    std::vector<Edge> subset;
    for (unsigned b = 0; b < 6; ++b) {
      if (mask & (1u << b)) subset.push_back(edges[b]);
    }
    const Graph candidate = Graph::from_edges(4, {}, subset);
    if (is_connected(candidate)) best = std::min(best, total_weight(subset));
  }
  EXPECT_DOUBLE_EQ(total_weight(minimum_spanning_forest(g)), best);
}

TEST(Geometric, EdgesRespectRadius) {
  rng::Rng rng(4);
  const double radius = 0.3, cost = 10.0;
  const Graph g = make_geometric(40, radius, {1, 5}, cost, rng,
                                 /*force_connected=*/false);
  for (const Edge& e : g.edge_list()) {
    // weight = distance * cost, so distance = weight / cost <= radius.
    EXPECT_LE(e.weight / cost, radius + 1e-9);
  }
}

TEST(Geometric, ForcedConnectivity) {
  rng::Rng rng(5);
  const Graph g = make_geometric(30, 0.12, {1, 5}, 10.0, rng, true);
  EXPECT_TRUE(is_connected(g));
}

TEST(Geometric, LargerRadiusGivesMoreEdges) {
  rng::Rng a(6), b(6);
  const Graph small = make_geometric(40, 0.15, {1, 1}, 1.0, a, false);
  const Graph large = make_geometric(40, 0.5, {1, 1}, 1.0, b, false);
  EXPECT_GT(large.num_edges(), small.num_edges());
}

TEST(Geometric, RejectsBadParams) {
  rng::Rng rng(7);
  EXPECT_THROW(make_geometric(10, 0.0, {1, 1}, 1.0, rng),
               std::invalid_argument);
  EXPECT_THROW(make_geometric(10, 0.3, {1, 1}, 0.0, rng),
               std::invalid_argument);
}

TEST(Geometric, MstBackboneIsUsableTopology) {
  // The intended composition: geometric layout -> MST backbone resource
  // graph (cheap spanning interconnect).
  rng::Rng rng(8);
  const Graph geo = make_geometric(25, 0.4, {1, 5}, 10.0, rng);
  const auto backbone = minimum_spanning_forest(geo);
  std::vector<double> node_w(geo.node_weights().begin(),
                             geo.node_weights().end());
  const Graph backbone_graph =
      Graph::from_edges(25, std::move(node_w), backbone);
  EXPECT_TRUE(is_connected(backbone_graph));
  EXPECT_EQ(backbone_graph.num_edges(), 24u);
}

}  // namespace
}  // namespace match::graph
