#include "stats/anova.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace match::stats {
namespace {

TEST(Anova, TextbookExample) {
  // Three groups; classic hand-workable example.
  // g1 = {6, 8, 4, 5, 3, 4}, mean 5
  // g2 = {8, 12, 9, 11, 6, 8}, mean 9
  // g3 = {13, 9, 11, 8, 7, 12}, mean 10
  // Grand mean 8; SSB = 6[(5-8)^2 + (9-8)^2 + (10-8)^2] = 84
  // SSW = 16+4+0+... = 68; F = (84/2)/(68/15) = 9.264…
  const std::vector<std::vector<double>> groups = {
      {6, 8, 4, 5, 3, 4}, {8, 12, 9, 11, 6, 8}, {13, 9, 11, 8, 7, 12}};
  const AnovaResult r = one_way_anova(groups);
  EXPECT_DOUBLE_EQ(r.grand_mean, 8.0);
  EXPECT_NEAR(r.ss_between, 84.0, 1e-9);
  EXPECT_NEAR(r.ss_within, 68.0, 1e-9);
  EXPECT_DOUBLE_EQ(r.df_between, 2.0);
  EXPECT_DOUBLE_EQ(r.df_within, 15.0);
  EXPECT_NEAR(r.f_value, (84.0 / 2.0) / (68.0 / 15.0), 1e-9);
  // Table lookup: p ≈ 0.0024 for F = 9.26 with (2, 15) dof.
  EXPECT_NEAR(r.p_value, 0.0024, 5e-4);
}

TEST(Anova, IdenticalGroupsGiveNullResult) {
  const std::vector<std::vector<double>> groups = {
      {5.0, 5.0, 5.0}, {5.0, 5.0, 5.0}};
  const AnovaResult r = one_way_anova(groups);
  EXPECT_DOUBLE_EQ(r.f_value, 0.0);
  EXPECT_DOUBLE_EQ(r.p_value, 1.0);
}

TEST(Anova, ConstantButDifferentGroupsGiveInfiniteF) {
  const std::vector<std::vector<double>> groups = {
      {1.0, 1.0, 1.0}, {2.0, 2.0, 2.0}};
  const AnovaResult r = one_way_anova(groups);
  EXPECT_TRUE(std::isinf(r.f_value));
  EXPECT_DOUBLE_EQ(r.p_value, 0.0);
}

TEST(Anova, WellSeparatedGroupsAreSignificant) {
  std::vector<std::vector<double>> groups(3);
  for (int i = 0; i < 30; ++i) {
    groups[0].push_back(100.0 + (i % 5));
    groups[1].push_back(200.0 + (i % 5));
    groups[2].push_back(300.0 + (i % 5));
  }
  const AnovaResult r = one_way_anova(groups);
  EXPECT_GT(r.f_value, 1000.0);
  EXPECT_LT(r.p_value, 1e-4);
}

TEST(Anova, OverlappingGroupsAreNot) {
  // Same distribution in both groups (deterministic interleaved values).
  std::vector<std::vector<double>> groups(2);
  for (int i = 0; i < 40; ++i) {
    groups[0].push_back(static_cast<double>(i % 7));
    groups[1].push_back(static_cast<double>((i + 3) % 7));
  }
  const AnovaResult r = one_way_anova(groups);
  EXPECT_LT(r.f_value, 2.0);
  EXPECT_GT(r.p_value, 0.1);
}

TEST(Anova, UnbalancedGroupSizes) {
  const std::vector<std::vector<double>> groups = {
      {1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0}, {10.0, 12.0}};
  const AnovaResult r = one_way_anova(groups);
  EXPECT_DOUBLE_EQ(r.df_between, 1.0);
  EXPECT_DOUBLE_EQ(r.df_within, 8.0);
  EXPECT_GT(r.f_value, 1.0);
}

TEST(Anova, FIsInvariantToShiftAndScale) {
  const std::vector<std::vector<double>> base = {
      {6, 8, 4, 5, 3, 4}, {8, 12, 9, 11, 6, 8}, {13, 9, 11, 8, 7, 12}};
  std::vector<std::vector<double>> transformed = base;
  for (auto& g : transformed) {
    for (auto& x : g) x = 3.0 * x + 17.0;
  }
  const AnovaResult a = one_way_anova(base);
  const AnovaResult b = one_way_anova(transformed);
  EXPECT_NEAR(a.f_value, b.f_value, 1e-9);
  EXPECT_NEAR(a.p_value, b.p_value, 1e-12);
}

TEST(Anova, RejectsDegenerateInputs) {
  const std::vector<std::vector<double>> one_group = {{1.0, 2.0}};
  EXPECT_THROW(one_way_anova(one_group), std::invalid_argument);

  const std::vector<std::vector<double>> with_empty = {{1.0, 2.0}, {}};
  EXPECT_THROW(one_way_anova(with_empty), std::invalid_argument);

  const std::vector<std::vector<double>> singletons = {{1.0}, {2.0}};
  EXPECT_THROW(one_way_anova(singletons), std::invalid_argument);
}

TEST(Anova, TwoGroupFEqualsSquaredT) {
  // For two groups, one-way ANOVA's F equals the square of the pooled
  // two-sample t statistic.
  const std::vector<double> g1 = {4.0, 5.0, 6.0, 7.0, 8.0};
  const std::vector<double> g2 = {7.0, 8.0, 9.0, 10.0, 11.0};
  const std::vector<std::vector<double>> groups = {g1, g2};
  const AnovaResult r = one_way_anova(groups);

  // Pooled t: means 6 and 9, each variance 2.5, n = 5.
  const double pooled_var = 2.5;
  const double t = (9.0 - 6.0) / std::sqrt(pooled_var * (1.0 / 5 + 1.0 / 5));
  EXPECT_NEAR(r.f_value, t * t, 1e-9);
}

}  // namespace
}  // namespace match::stats
