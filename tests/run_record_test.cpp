#include "io/run_record.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace match::io {
namespace {

RunRecord sample_record() {
  RunRecord r;
  r.experiment = "table1";
  r.heuristic = "match";
  r.instance = "paper-n10";
  r.n = 10;
  r.seed = 42;
  r.cost = 3557.0;
  r.seconds = 0.0025;
  r.iterations = 26;
  r.evaluations = 5200;
  return r;
}

TEST(RunLog, WritesHeaderImmediately) {
  std::stringstream ss;
  RunLog log(ss);
  EXPECT_EQ(ss.str(), std::string(RunLog::header()) + "\n");
  EXPECT_EQ(log.size(), 0u);
}

TEST(RunLog, AppendsRecords) {
  std::stringstream ss;
  RunLog log(ss);
  log.add(sample_record());
  EXPECT_EQ(log.size(), 1u);
  const std::string out = ss.str();
  EXPECT_NE(out.find("table1,match,paper-n10,10,42,3557,"), std::string::npos);
  EXPECT_NE(out.find(",26,5200"), std::string::npos);
}

TEST(RunLog, EscapesCommasInNames) {
  std::stringstream ss;
  RunLog log(ss);
  RunRecord r = sample_record();
  r.instance = "weird,name";
  log.add(r);
  EXPECT_NE(ss.str().find("\"weird,name\""), std::string::npos);
}

TEST(Aggregate, GroupsByExperimentHeuristicAndSize) {
  std::vector<RunRecord> records;
  for (int i = 0; i < 3; ++i) {
    RunRecord r = sample_record();
    r.cost = 100.0 + i;  // 100, 101, 102
    r.seconds = 1.0;
    records.push_back(r);
  }
  RunRecord other = sample_record();
  other.heuristic = "ga";
  other.cost = 500.0;
  records.push_back(other);

  const auto aggs = aggregate_runs(records);
  ASSERT_EQ(aggs.size(), 2u);
  // Map iteration order: ("table1","ga",10) before ("table1","match",10).
  EXPECT_EQ(aggs[0].heuristic, "ga");
  EXPECT_EQ(aggs[0].runs, 1u);
  EXPECT_DOUBLE_EQ(aggs[0].mean_cost, 500.0);
  EXPECT_EQ(aggs[1].heuristic, "match");
  EXPECT_EQ(aggs[1].runs, 3u);
  EXPECT_DOUBLE_EQ(aggs[1].mean_cost, 101.0);
  EXPECT_DOUBLE_EQ(aggs[1].mean_seconds, 1.0);
}

TEST(Aggregate, EmptyInput) {
  EXPECT_TRUE(aggregate_runs({}).empty());
}

}  // namespace
}  // namespace match::io
