// The OpenMP dispatch path of parallel_for must be a pure backend swap:
// identical coverage and identical results to the thread-pool path.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <vector>

#include "parallel/parallel_for.hpp"
#include "sim/evaluator.hpp"
#include "workload/paper_suite.hpp"

namespace match::parallel {
namespace {

TEST(OpenMpBackend, CoversEveryIndexOnce) {
  constexpr std::size_t kN = 20000;
  std::vector<std::atomic<int>> hits(kN);
  ForOptions opts;
  opts.prefer_openmp = true;
  opts.serial_cutoff = 0;
  opts.grain = 7;
  parallel_for(
      0, kN, [&](std::size_t i) { hits[i].fetch_add(1); }, opts);
  for (std::size_t i = 0; i < kN; ++i) ASSERT_EQ(hits[i].load(), 1) << i;
}

TEST(OpenMpBackend, ChunkIndicesMatchPoolBackend) {
  ForOptions omp_opts;
  omp_opts.prefer_openmp = true;
  omp_opts.serial_cutoff = 0;
  omp_opts.grain = 10;
  ForOptions pool_opts = omp_opts;
  pool_opts.prefer_openmp = false;

  const auto collect = [](const ForOptions& opts) {
    std::mutex mu;
    std::vector<std::pair<std::size_t, std::size_t>> ranges;
    parallel_for_chunked(
        0, 997,
        [&](std::size_t lo, std::size_t hi, std::size_t chunk) {
          std::lock_guard<std::mutex> lock(mu);
          ranges.emplace_back(chunk, hi - lo);
          (void)lo;
        },
        opts);
    std::sort(ranges.begin(), ranges.end());
    return ranges;
  };
  EXPECT_EQ(collect(omp_opts), collect(pool_opts));
}

TEST(OpenMpBackend, BatchEvaluationMatchesPoolBackend) {
  rng::Rng setup(1);
  workload::PaperParams params;
  params.n = 15;
  const auto inst = workload::make_paper_instance(params, setup);
  const auto plat = inst.make_platform();
  const sim::CostEvaluator eval(inst.tig, plat);

  constexpr std::size_t kCount = 300;
  rng::Rng rng(2);
  std::vector<graph::NodeId> rows(kCount * 15);
  for (std::size_t i = 0; i < kCount; ++i) {
    const auto m = sim::Mapping::random_permutation(15, rng);
    std::copy(m.assignment().begin(), m.assignment().end(),
              rows.begin() + static_cast<std::ptrdiff_t>(i * 15));
  }

  std::vector<double> pool_out(kCount), omp_out(kCount);
  ForOptions pool_opts;
  pool_opts.serial_cutoff = 0;
  ForOptions omp_opts = pool_opts;
  omp_opts.prefer_openmp = true;
  eval.makespans_batch(rows, kCount, pool_out, pool_opts);
  eval.makespans_batch(rows, kCount, omp_out, omp_opts);
  for (std::size_t i = 0; i < kCount; ++i) {
    EXPECT_DOUBLE_EQ(pool_out[i], omp_out[i]) << i;
  }
}

TEST(OpenMpBackend, EmptyAndTinyRanges) {
  ForOptions opts;
  opts.prefer_openmp = true;
  opts.serial_cutoff = 0;
  bool ran = false;
  parallel_for(
      3, 3, [&](std::size_t) { ran = true; }, opts);
  EXPECT_FALSE(ran);

  std::atomic<int> count{0};
  parallel_for(
      0, 1, [&](std::size_t) { count.fetch_add(1); }, opts);
  EXPECT_EQ(count.load(), 1);
}

}  // namespace
}  // namespace match::parallel
