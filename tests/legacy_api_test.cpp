// Retirement tests for the pre-SolverContext entry points.  The
// deprecated `(rng)` / `(rng, stop)` forwarders shipped for exactly one
// release; this file pins that they are GONE — each requires-expression
// asserts the legacy call does NOT compile anymore — while the stop-hook
// type aliases (part of the supported API) keep working, and the
// one-true SolverContext signature remains callable everywhere.

#include <gtest/gtest.h>

#include <type_traits>
#include <utility>
#include <vector>

#include "baselines/ga.hpp"
#include "baselines/local_search.hpp"
#include "core/ce_driver.hpp"
#include "core/general_match.hpp"
#include "core/island.hpp"
#include "core/matchalgo.hpp"
#include "core/rematch.hpp"
#include "core/solver_context.hpp"
#include "rng/rng.hpp"
#include "service/solver_registry.hpp"
#include "sim/evaluator.hpp"
#include "sim/platform.hpp"
#include "workload/paper_suite.hpp"

namespace match {
namespace {

struct Fixture {
  workload::Instance inst;
  sim::Platform platform;
  sim::CostEvaluator eval;

  explicit Fixture(std::size_t n, std::uint64_t seed)
      : inst(make(n, seed)),
        platform(inst.make_platform()),
        eval(inst.tig, platform) {}

  static workload::Instance make(std::size_t n, std::uint64_t seed) {
    rng::Rng rng(seed);
    workload::PaperParams params;
    params.n = n;
    return workload::make_paper_instance(params, rng);
  }
};

// The stop-hook typedefs are supported API and must keep naming
// match::StopFn.
static_assert(std::is_same_v<core::CeStopFn, match::StopFn>);
static_assert(std::is_same_v<core::MatchOptimizer::StopFn, match::StopFn>);
static_assert(std::is_same_v<baselines::GaOptimizer::StopFn, match::StopFn>);
static_assert(std::is_same_v<service::StopFn, match::StopFn>);

// --- The retired signatures must NOT compile anymore. -------------------
// Each probe is a requires-expression evaluated against the real types;
// a revived forwarder turns one of these into `true` and fails the
// static_assert, which is the whole point.

template <typename Opt>
concept HasRunRng = requires(Opt opt, rng::Rng rng) { opt.run(rng); };

template <typename Opt>
concept HasSetShouldStop =
    requires(Opt opt, match::StopFn stop) { opt.set_should_stop(stop); };

static_assert(!HasRunRng<core::MatchOptimizer>,
              "MatchOptimizer::run(rng) was retired; use run(SolverContext)");
static_assert(!HasRunRng<core::GeneralMatchOptimizer>);
static_assert(!HasRunRng<core::IslandMatchOptimizer>);
static_assert(!HasRunRng<baselines::GaOptimizer>);
static_assert(!HasSetShouldStop<core::MatchOptimizer>,
              "set_should_stop was retired; pass the hook via SolverContext");
static_assert(!HasSetShouldStop<baselines::GaOptimizer>);

/// Minimal CE problem for probing the run_ce surface.
struct BitProblem {
  using Sample = std::vector<char>;
  Sample draw(rng::Rng& rng) const {
    Sample s(4);
    for (auto& b : s) b = rng.bernoulli(0.5) ? 1 : 0;
    return s;
  }
  double cost(const Sample& s) const {
    double ones = 0.0;
    for (char b : s) ones += b;
    return static_cast<double>(s.size()) - ones;
  }
  void update(const std::vector<const Sample*>&, double) {}
  bool degenerate(double) const { return false; }
};

template <typename Problem>
concept HasRunCeRng = requires(Problem problem, core::CeDriverParams params,
                               rng::Rng rng) {
  core::run_ce(problem, params, rng);
};

template <typename Problem>
concept HasRunCeRngStop =
    requires(Problem problem, core::CeDriverParams params, rng::Rng rng,
             match::StopFn stop) { core::run_ce(problem, params, rng, stop); };

static_assert(!HasRunCeRng<BitProblem>,
              "run_ce(problem, params, rng) was retired");
static_assert(!HasRunCeRngStop<BitProblem>);

// Requires-expressions with invalid operands are a hard error outside a
// template, so each free-function probe is a (trivially instantiated)
// concept like the member probes above.
template <typename E>
concept HasRandomSearchRng = requires(const E& eval, rng::Rng rng) {
  baselines::random_search(eval, std::size_t{10}, rng);
};
template <typename E>
concept HasHillClimbRng = requires(const E& eval, rng::Rng rng) {
  baselines::hill_climb(eval, std::size_t{10}, rng);
};
template <typename E>
concept HasSimulatedAnnealingRng =
    requires(const E& eval, baselines::SaParams params, rng::Rng rng) {
      baselines::simulated_annealing(eval, params, rng);
    };
template <typename E>
concept HasRematchRng = requires(const E& eval, const sim::Mapping& m,
                                 core::RematchParams params, rng::Rng rng) {
  core::rematch(eval, m, params, rng);
};
template <typename S>
concept HasSolveStopFn =
    requires(const S& solver, const workload::Instance& inst,
             const service::SolveOptions& options, const match::StopFn& stop) {
      solver.solve(inst, options, stop);
    };

using Eval = sim::CostEvaluator;

static_assert(!HasRandomSearchRng<Eval>,
              "random_search(eval, budget, rng) was retired");
static_assert(!HasHillClimbRng<Eval>);
static_assert(!HasSimulatedAnnealingRng<Eval>);
static_assert(!HasRematchRng<Eval>,
              "rematch(eval, mapping, params, rng) was retired");
static_assert(!HasSolveStopFn<service::Solver>,
              "Solver::solve(instance, options, StopFn) was retired");

// --- And the one-true signature still works end to end. -----------------

TEST(LegacyApi, SolverContextIsTheOnlyEntryPoint) {
  Fixture f(10, 1);
  core::MatchParams params;
  params.max_iterations = 15;

  rng::Rng rng(5);
  const auto r = core::MatchOptimizer(f.eval, params).run(SolverContext(rng));
  EXPECT_TRUE(r.best_mapping.is_permutation());
  EXPECT_EQ(r.best_cost, f.eval.makespan(r.best_mapping));

  // Determinism: the same seed through a fresh context reproduces the run.
  rng::Rng rng2(5);
  const auto r2 = core::MatchOptimizer(f.eval, params).run(SolverContext(rng2));
  EXPECT_EQ(r.best_mapping, r2.best_mapping);
  EXPECT_EQ(r.best_cost, r2.best_cost);
  EXPECT_EQ(r.iterations, r2.iterations);
}

TEST(LegacyApi, ContextStopHookCancels) {
  Fixture f(10, 1);
  core::MatchOptimizer opt(f.eval);
  rng::Rng rng(2);
  const auto r = opt.run(SolverContext(rng, [] { return true; }));
  EXPECT_TRUE(r.cancelled);
  EXPECT_TRUE(r.best_mapping.is_permutation());
}

TEST(LegacyApi, ServiceSolveTakesContext) {
  const auto inst = Fixture::make(8, 8);
  service::SolverRegistry registry;
  service::SolveOptions options;
  options.max_iterations = 10;

  const auto outcome = registry.get(service::SolverKind::kMatch)
                           .solve(inst, options, SolverContext());
  EXPECT_TRUE(outcome.mapping.is_permutation());

  SolverContext cancelled_ctx;
  cancelled_ctx.with_stop([] { return true; });
  const auto cancelled = registry.get(service::SolverKind::kMatch)
                             .solve(inst, options, cancelled_ctx);
  EXPECT_TRUE(cancelled.cancelled);
  EXPECT_TRUE(cancelled.mapping.is_permutation());
}

}  // namespace
}  // namespace match
