// Compatibility tests for the deprecated pre-SolverContext signatures.
// Each forwarder must keep compiling (this file builds with deprecation
// warnings exempted — see tests/CMakeLists.txt) and must produce results
// identical to the SolverContext overload it forwards to.

#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "baselines/ga.hpp"
#include "baselines/local_search.hpp"
#include "core/ce_driver.hpp"
#include "core/general_match.hpp"
#include "core/island.hpp"
#include "core/matchalgo.hpp"
#include "core/rematch.hpp"
#include "core/solver_context.hpp"
#include "rng/rng.hpp"
#include "service/deadline.hpp"
#include "service/solver_registry.hpp"
#include "sim/evaluator.hpp"
#include "sim/platform.hpp"
#include "workload/paper_suite.hpp"

namespace match {
namespace {

struct Fixture {
  workload::Instance inst;
  sim::Platform platform;
  sim::CostEvaluator eval;

  explicit Fixture(std::size_t n, std::uint64_t seed)
      : inst(make(n, seed)),
        platform(inst.make_platform()),
        eval(inst.tig, platform) {}

  static workload::Instance make(std::size_t n, std::uint64_t seed) {
    rng::Rng rng(seed);
    workload::PaperParams params;
    params.n = n;
    return workload::make_paper_instance(params, rng);
  }
};

// The old stop-hook typedefs must still name match::StopFn.
static_assert(std::is_same_v<core::CeStopFn, match::StopFn>);
static_assert(std::is_same_v<core::MatchOptimizer::StopFn, match::StopFn>);
static_assert(std::is_same_v<baselines::GaOptimizer::StopFn, match::StopFn>);
static_assert(std::is_same_v<service::StopFn, match::StopFn>);

TEST(LegacyApi, MatchOptimizerRunRngMatchesContextRun) {
  Fixture f(10, 1);
  core::MatchParams params;
  params.max_iterations = 15;

  rng::Rng old_rng(5);
  const auto via_old = core::MatchOptimizer(f.eval, params).run(old_rng);
  rng::Rng new_rng(5);
  const auto via_ctx =
      core::MatchOptimizer(f.eval, params).run(SolverContext(new_rng));
  EXPECT_EQ(via_old.best_mapping, via_ctx.best_mapping);
  EXPECT_EQ(via_old.best_cost, via_ctx.best_cost);
  EXPECT_EQ(via_old.iterations, via_ctx.iterations);
}

TEST(LegacyApi, SetShouldStopStillCancels) {
  Fixture f(10, 1);
  core::MatchOptimizer opt(f.eval);
  opt.set_should_stop([] { return true; });
  rng::Rng rng(2);
  const auto r = opt.run(rng);
  EXPECT_TRUE(r.cancelled);
  EXPECT_TRUE(r.best_mapping.is_permutation());
}

TEST(LegacyApi, ContextStopHookWinsOverDeprecatedMember) {
  Fixture f(10, 1);
  core::MatchParams params;
  params.max_iterations = 5;
  core::MatchOptimizer opt(f.eval, params);
  opt.set_should_stop([] { return true; });
  rng::Rng rng(2);
  // A present-but-never-firing context hook overrides the member hook.
  const auto r = opt.run(SolverContext(rng, [] { return false; }));
  EXPECT_FALSE(r.cancelled);
}

/// Minimal CE problem (maximize the number of set bits) for exercising
/// the run_ce forwarders without dragging in a mapping instance.
class BitProblem {
 public:
  using Sample = std::vector<char>;

  Sample draw(rng::Rng& rng) const {
    Sample s(6);
    for (std::size_t i = 0; i < s.size(); ++i) {
      s[i] = rng.bernoulli(p_[i]) ? 1 : 0;
    }
    return s;
  }

  double cost(const Sample& s) const {
    double ones = 0.0;
    for (char b : s) ones += b;
    return static_cast<double>(s.size()) - ones;
  }

  void update(const std::vector<const Sample*>& elites, double zeta) {
    if (elites.empty()) return;
    for (std::size_t i = 0; i < p_.size(); ++i) {
      double freq = 0.0;
      for (const Sample* s : elites) freq += (*s)[i];
      p_[i] = zeta * (freq / static_cast<double>(elites.size())) +
              (1.0 - zeta) * p_[i];
    }
  }

  bool degenerate(double eps) const {
    for (double p : p_) {
      if (p > eps && p < 1.0 - eps) return false;
    }
    return true;
  }

 private:
  std::vector<double> p_ = std::vector<double>(6, 0.5);
};

TEST(LegacyApi, RunCeRngAndStopFnForwarders) {
  core::CeDriverParams params;
  params.sample_size = 24;
  params.max_iterations = 10;

  BitProblem old_problem;
  rng::Rng old_rng(4);
  const auto via_old = core::run_ce(old_problem, params, old_rng);

  BitProblem new_problem;
  rng::Rng new_rng(4);
  const auto via_ctx =
      core::run_ce(new_problem, params, SolverContext(new_rng));
  EXPECT_EQ(via_old.best, via_ctx.best);
  EXPECT_EQ(via_old.best_cost, via_ctx.best_cost);
  EXPECT_EQ(via_old.iterations, via_ctx.iterations);

  // The 4-arg (rng, stop) forwarder still cancels.
  BitProblem cancelled_problem;
  rng::Rng rng(4);
  const auto r =
      core::run_ce(cancelled_problem, params, rng, [] { return true; });
  EXPECT_TRUE(r.cancelled);
  EXPECT_EQ(r.iterations, 0u);
}

TEST(LegacyApi, GaOptimizerRunRngMatchesContextRun) {
  Fixture f(8, 2);
  baselines::GaParams params;
  params.population = 24;
  params.generations = 10;

  rng::Rng old_rng(6);
  const auto via_old = baselines::GaOptimizer(f.eval, params).run(old_rng);
  rng::Rng new_rng(6);
  const auto via_ctx =
      baselines::GaOptimizer(f.eval, params).run(SolverContext(new_rng));
  EXPECT_EQ(via_old.best_mapping, via_ctx.best_mapping);
  EXPECT_EQ(via_old.best_cost, via_ctx.best_cost);
  EXPECT_EQ(via_old.generations, via_ctx.generations);
  EXPECT_EQ(via_ctx.iterations, via_ctx.generations);
}

TEST(LegacyApi, IslandRunRngMatchesContextRun) {
  Fixture f(8, 4);
  core::IslandParams params;
  params.islands = 2;
  params.max_epochs = 3;

  rng::Rng old_rng(7);
  const auto via_old =
      core::IslandMatchOptimizer(f.eval, params).run(old_rng);
  rng::Rng new_rng(7);
  const auto via_ctx =
      core::IslandMatchOptimizer(f.eval, params).run(SolverContext(new_rng));
  EXPECT_EQ(via_old.best_mapping, via_ctx.best_mapping);
  EXPECT_EQ(via_old.best_cost, via_ctx.best_cost);
  EXPECT_EQ(via_old.epochs, via_ctx.epochs);
}

TEST(LegacyApi, GeneralMatchRunRngMatchesContextRun) {
  Fixture f(9, 5);
  core::GeneralMatchParams params;
  params.max_iterations = 10;

  rng::Rng old_rng(8);
  const auto via_old =
      core::GeneralMatchOptimizer(f.eval, params).run(old_rng);
  rng::Rng new_rng(8);
  const auto via_ctx =
      core::GeneralMatchOptimizer(f.eval, params).run(SolverContext(new_rng));
  EXPECT_EQ(via_old.best_mapping, via_ctx.best_mapping);
  EXPECT_EQ(via_old.best_cost, via_ctx.best_cost);
}

TEST(LegacyApi, RematchRngForwarder) {
  Fixture f(10, 6);
  rng::Rng seed_rng(9);
  const auto incumbent =
      core::MatchOptimizer(f.eval).run(SolverContext(seed_rng));

  core::RematchParams params;
  rng::Rng old_rng(10);
  const auto via_old =
      core::rematch(f.eval, incumbent.best_mapping, params, old_rng);
  rng::Rng new_rng(10);
  const auto via_ctx = core::rematch(f.eval, incumbent.best_mapping, params,
                                     SolverContext(new_rng));
  EXPECT_EQ(via_old.best_mapping, via_ctx.best_mapping);
  EXPECT_EQ(via_old.best_cost, via_ctx.best_cost);
}

TEST(LegacyApi, LocalSearchRngForwarders) {
  Fixture f(10, 7);

  rng::Rng o1(11), n1(11);
  EXPECT_EQ(baselines::random_search(f.eval, 50, o1).best_cost,
            baselines::random_search(f.eval, 50, SolverContext(n1)).best_cost);

  rng::Rng o2(12), n2(12);
  EXPECT_EQ(baselines::hill_climb(f.eval, 500, o2).best_cost,
            baselines::hill_climb(f.eval, 500, SolverContext(n2)).best_cost);

  baselines::SaParams sa;
  sa.steps = 500;
  rng::Rng o3(13), n3(13);
  EXPECT_EQ(
      baselines::simulated_annealing(f.eval, sa, o3).best_cost,
      baselines::simulated_annealing(f.eval, sa, SolverContext(n3)).best_cost);
}

TEST(LegacyApi, ServiceSolveStopFnForwarder) {
  const auto inst = std::make_shared<workload::Instance>(Fixture::make(8, 8));
  service::SolverRegistry registry;
  service::SolveOptions options;
  options.max_iterations = 10;

  const auto via_old = registry.get(service::SolverKind::kMatch)
                           .solve(*inst, options, match::StopFn{});
  const auto via_ctx = registry.get(service::SolverKind::kMatch)
                           .solve(*inst, options, SolverContext());
  EXPECT_EQ(via_old.mapping, via_ctx.mapping);
  EXPECT_EQ(via_old.best_cost, via_ctx.best_cost);

  // And the stop hook still cancels through the forwarder.
  const auto cancelled =
      registry.get(service::SolverKind::kMatch)
          .solve(*inst, options, match::StopFn([] { return true; }));
  EXPECT_TRUE(cancelled.cancelled);
  EXPECT_TRUE(cancelled.mapping.is_permutation());
}

}  // namespace
}  // namespace match
