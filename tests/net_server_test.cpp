// End-to-end tests of the network front end: MatchServer + Client over
// loopback.  The load-bearing property throughout is the admission
// accounting identity —
//   net.requests == net.served + net.shed + net.rejected_deadline
//                 + net.bad_request + net.unknown_instance
//                 + net.server_error
// — asserted EXACTLY (==, not >=) after every scenario, including
// synthetic overload and a mid-flight stop.

#include "net/server.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "net/client.hpp"
#include "net/socket_util.hpp"
#include "net/wire.hpp"
#include "obs/events.hpp"
#include "obs/metrics.hpp"
#include "obs/spans.hpp"
#include "rng/rng.hpp"
#include "service/instance_cache.hpp"
#include "service/service.hpp"
#include "workload/any_instance.hpp"
#include "workload/dag_suite.hpp"
#include "workload/paper_suite.hpp"

namespace {

using namespace match;
using namespace match::net;

std::shared_ptr<const workload::AnyInstance> make_instance(std::uint64_t seed,
                                                           std::size_t n = 8) {
  rng::Rng rng(seed);
  workload::PaperParams params;
  params.n = n;
  return std::make_shared<const workload::AnyInstance>(
      workload::make_paper_instance(params, rng));
}

std::shared_ptr<const workload::AnyInstance> make_dag(std::uint64_t seed,
                                                      std::size_t n = 10) {
  rng::Rng rng(seed);
  workload::DagSuiteParams params;
  params.tasks = n;
  return std::make_shared<const workload::AnyInstance>(
      workload::make_dag_instance(workload::DagFamily::kLayered, params, rng));
}

WireRequest inline_request(std::uint64_t id,
                           std::shared_ptr<const workload::AnyInstance> inst,
                           service::SolverKind solver =
                               service::SolverKind::kMinMin) {
  WireRequest req;
  req.request_id = id;
  req.request.id = id;
  req.request.instance = std::move(inst);
  req.request.solver = solver;
  return req;
}

void expect_books_balance(const MatchServer& server) {
  const ServerCounters c = server.counters();
  EXPECT_EQ(c.requests, c.terminal())
      << "served=" << c.served << " shed=" << c.shed
      << " rejected=" << c.rejected_deadline << " bad=" << c.bad_request
      << " unknown=" << c.unknown_instance << " err=" << c.server_error;
}

struct Stack {
  explicit Stack(service::ServiceConfig sconfig = {},
                 ServerConfig nconfig = {})
      : service(std::move(sconfig)),
        server(service, std::move(nconfig)) {}
  service::MappingService service;
  MatchServer server;
};

TEST(NetServer, ServesAnInlineRequestEndToEnd) {
  Stack stack;
  Client client("127.0.0.1", stack.server.port());

  const auto inst = make_instance(1);
  const WireResponse resp = client.call(inline_request(7, inst));
  ASSERT_EQ(resp.status, Status::kOk) << resp.error;
  EXPECT_EQ(resp.request_id, 7u);
  EXPECT_TRUE(resp.response.mapping.is_permutation());
  EXPECT_EQ(resp.response.mapping.num_tasks(), inst->size());
  EXPECT_GT(resp.response.cost, 0.0);

  const ServerCounters c = stack.server.counters();
  EXPECT_EQ(c.requests, 1u);
  EXPECT_EQ(c.served, 1u);
  expect_books_balance(stack.server);
}

TEST(NetServer, ServesADagRequestEndToEnd) {
  Stack stack;
  Client client("127.0.0.1", stack.server.port());

  const auto inst = make_dag(3);
  for (const auto solver :
       {service::SolverKind::kHeft, service::SolverKind::kTopoList,
        service::SolverKind::kDagCe}) {
    const WireResponse resp =
        client.call(inline_request(static_cast<std::uint64_t>(solver), inst,
                                   solver));
    ASSERT_EQ(resp.status, Status::kOk) << resp.error;
    EXPECT_EQ(resp.response.mapping.num_tasks(), inst->size());
    EXPECT_GT(resp.response.cost, 0.0);
  }

  // The DAG registered under its canonical fingerprint like any TIG.
  WireRequest by_fp;
  by_fp.request_id = 50;
  by_fp.request.id = 50;
  by_fp.by_fingerprint = true;
  by_fp.instance_fingerprint = service::fingerprint_instance(*inst);
  by_fp.request.solver = service::SolverKind::kHeft;
  EXPECT_EQ(client.call(by_fp).status, Status::kOk);

  const ServerCounters c = stack.server.counters();
  EXPECT_EQ(c.requests, 4u);
  EXPECT_EQ(c.served, 4u);
  expect_books_balance(stack.server);
}

TEST(NetServer, WorkloadKindMismatchIsABadRequestNotAHangup) {
  Stack stack;
  Client client("127.0.0.1", stack.server.port());

  // TIG solver asked to serve a DAG, and vice versa: both answered
  // in-band with kBadRequest — the connection survives.
  const WireResponse dag_to_tig =
      client.call(inline_request(1, make_dag(4), service::SolverKind::kMatch));
  EXPECT_EQ(dag_to_tig.status, Status::kBadRequest);
  const WireResponse tig_to_dag = client.call(
      inline_request(2, make_instance(4), service::SolverKind::kHeft));
  EXPECT_EQ(tig_to_dag.status, Status::kBadRequest);

  // Same connection still serves a well-formed request.
  const WireResponse ok = client.call(inline_request(3, make_instance(5)));
  EXPECT_EQ(ok.status, Status::kOk) << ok.error;

  const ServerCounters c = stack.server.counters();
  EXPECT_EQ(c.requests, 3u);
  EXPECT_EQ(c.bad_request, 2u);
  EXPECT_EQ(c.served, 1u);
  expect_books_balance(stack.server);
}

TEST(NetServer, FingerprintPathUnknownThenRegisteredThenServed) {
  Stack stack;
  Client client("127.0.0.1", stack.server.port());
  const auto inst = make_instance(2);
  const std::uint64_t fp = service::fingerprint_instance(*inst);

  WireRequest by_fp;
  by_fp.request_id = 1;
  by_fp.request.id = 1;
  by_fp.by_fingerprint = true;
  by_fp.instance_fingerprint = fp;
  by_fp.request.solver = service::SolverKind::kMinMin;

  // Never seen inline: explicit unknown-instance response, not a guess.
  const WireResponse unknown = client.call(by_fp);
  EXPECT_EQ(unknown.status, Status::kUnknownInstance);

  // Register inline, then the fingerprint resolves — to the same answer.
  const WireResponse registered = client.call(inline_request(2, inst));
  ASSERT_EQ(registered.status, Status::kOk);
  by_fp.request_id = 3;
  by_fp.request.id = 3;
  const WireResponse resolved = client.call(by_fp);
  ASSERT_EQ(resolved.status, Status::kOk) << resolved.error;
  EXPECT_TRUE(resolved.response.mapping == registered.response.mapping);

  const ServerCounters c = stack.server.counters();
  EXPECT_EQ(c.requests, 3u);
  EXPECT_EQ(c.served, 2u);
  EXPECT_EQ(c.unknown_instance, 1u);
  expect_books_balance(stack.server);
}

TEST(NetServer, MalformedPayloadIsBadRequestAndTheConnectionSurvives) {
  Stack stack;
  Client client("127.0.0.1", stack.server.port());

  // A frame whose header is fine but whose payload is garbage: the
  // server must answer kBadRequest on the same connection, not close it.
  WireRequest req;
  req.request_id = 5;
  req.by_fingerprint = true;
  req.instance_fingerprint = 1;
  std::string frame = encode_request(req);
  frame.resize(kHeaderSize + 2);  // truncate the payload...
  const std::uint32_t short_size = 2;
  frame[16] = static_cast<char>(short_size);  // ...and fix up the length
  frame[17] = frame[18] = frame[19] = 0;

  // Send raw bytes through a plain socket alongside the typed client.
  int raw = connect_to("127.0.0.1", stack.server.port());
  ASSERT_TRUE(send_all(raw, frame.data(), frame.size()));
  char header_buf[kHeaderSize];
  ASSERT_TRUE(recv_all(raw, header_buf, sizeof(header_buf)));
  const FrameHeader h =
      decode_header(std::string_view(header_buf, sizeof(header_buf)));
  std::string payload(h.payload_size, '\0');
  ASSERT_TRUE(recv_all(raw, payload.data(), payload.size()));
  const WireResponse bad = decode_response(h, payload);
  EXPECT_EQ(bad.status, Status::kBadRequest);
  EXPECT_EQ(bad.request_id, 5u);
  close_fd(raw);

  // The typed client still gets served.
  const WireResponse ok = client.call(inline_request(6, make_instance(3)));
  EXPECT_EQ(ok.status, Status::kOk);

  const ServerCounters c = stack.server.counters();
  EXPECT_EQ(c.bad_request, 1u);
  EXPECT_EQ(c.served, 1u);
  expect_books_balance(stack.server);
}

TEST(NetServer, GarbageBytesCloseTheConnectionWithoutCrashing) {
  Stack stack;
  int raw = connect_to("127.0.0.1", stack.server.port());
  // Wrong protocol entirely — and comfortably longer than one frame
  // header, so the server must judge it rather than wait for more.
  const std::string garbage =
      "GET /metrics HTTP/1.1\r\nHost: localhost\r\n\r\n";
  ASSERT_TRUE(send_all(raw, garbage.data(), garbage.size()));
  char byte;
  EXPECT_FALSE(recv_all(raw, &byte, 1)) << "server should close, not answer";
  close_fd(raw);

  // No request ever decoded, so the books show zero requests — balanced.
  const ServerCounters c = stack.server.counters();
  EXPECT_EQ(c.requests, 0u);
  expect_books_balance(stack.server);
  EXPECT_EQ(stack.service.metrics().counter_value("net.protocol_errors"), 1u);
}

// ---- Satellite: service::Deadline edge cases under admission ----------

TEST(NetServer, StrictZeroOrExpiredDeadlineIsRejectedBeforeEnqueue) {
  Stack stack;
  Client client("127.0.0.1", stack.server.port());

  // Register the instance first (this request does enqueue).
  const auto inst = make_instance(4);
  ASSERT_EQ(client.call(inline_request(1, inst)).status, Status::kOk);
  const std::uint64_t submitted_before =
      stack.service.metrics().counter_value("service.submitted");

  for (const double expired : {0.0, -1.0, -1e-9}) {
    WireRequest req = inline_request(2, inst);
    req.strict_deadline = true;
    req.request.options.deadline_seconds = expired;
    const WireResponse resp = client.call(req);
    EXPECT_EQ(resp.status, Status::kRejectedDeadline)
        << "deadline " << expired;
  }

  // Rejected BEFORE enqueue: the service never saw them.
  EXPECT_EQ(stack.service.metrics().counter_value("service.submitted"),
            submitted_before);
  const ServerCounters c = stack.server.counters();
  EXPECT_EQ(c.rejected_deadline, 3u);
  expect_books_balance(stack.server);

  // The same deadline without the strict flag means "unbounded" (the
  // in-process convention) and is served.
  WireRequest relaxed = inline_request(3, inst);
  relaxed.request.options.deadline_seconds = 0.0;
  EXPECT_EQ(client.call(relaxed).status, Status::kOk);
}

TEST(NetServer, LowPriorityShedsFirstAtItsWatermark) {
  // low_watermark = 0 makes the low-priority threshold literally zero:
  // any pending depth (even 0) sheds low traffic while normal/high pass.
  ServerConfig nconfig;
  nconfig.admission.max_pending = 8;
  nconfig.admission.low_watermark = 0.0;
  Stack stack({}, nconfig);
  Client client("127.0.0.1", stack.server.port());
  const auto inst = make_instance(5);

  WireRequest low = inline_request(1, inst);
  low.priority = Priority::kLow;
  EXPECT_EQ(client.call(low).status, Status::kShed);

  WireRequest normal = inline_request(2, inst);
  EXPECT_EQ(client.call(normal).status, Status::kOk);

  const ServerCounters c = stack.server.counters();
  EXPECT_EQ(c.shed, 1u);
  EXPECT_EQ(c.served, 1u);
  expect_books_balance(stack.server);
}

// ---- The overload scenario: offered == served + shed, exactly. --------

TEST(NetServer, OverloadAccountingBalancesExactly) {
  // One slow worker, a tiny service queue, and a small pending budget:
  // pipelined fresh-seed requests (cache off) must overflow admission.
  service::ServiceConfig sconfig;
  sconfig.workers = 1;
  sconfig.queue_capacity = 4;
  sconfig.cache_capacity = 0;  // every request runs the solver
  ServerConfig nconfig;
  nconfig.admission.max_pending = 8;
  Stack stack(sconfig, nconfig);
  Client client("127.0.0.1", stack.server.port());
  const auto inst = make_instance(6, 12);

  constexpr std::uint64_t kOffered = 200;
  for (std::uint64_t i = 0; i < kOffered; ++i) {
    WireRequest req = inline_request(i, inst, service::SolverKind::kMatch);
    req.request.options.seed = 1000 + i;  // no coalescing, no cache reuse
    req.request.options.max_iterations = 5;
    client.send(req);
  }
  client.shutdown_send();

  std::uint64_t served = 0, shed = 0, other = 0;
  for (std::uint64_t i = 0; i < kOffered; ++i) {
    const WireResponse resp = client.receive();
    switch (resp.status) {
      case Status::kOk: ++served; break;
      case Status::kShed: ++shed; break;
      default: ++other; break;
    }
  }
  EXPECT_EQ(served + shed + other, kOffered) << "every request answered";
  EXPECT_GT(shed, 0u) << "overload must actually shed";
  EXPECT_GT(served, 0u) << "overload must not starve everyone";
  EXPECT_EQ(other, 0u);

  stack.server.stop();
  const ServerCounters c = stack.server.counters();
  EXPECT_EQ(c.requests, kOffered);
  EXPECT_EQ(c.served, served);
  EXPECT_EQ(c.shed, shed);
  expect_books_balance(stack.server);

  // Server books and service books tell one story: exactly the admitted
  // requests (served or failed-after-admission) reached the service.
  EXPECT_EQ(stack.service.metrics().counter_value("service.submitted"),
            c.served + c.server_error);
}

TEST(NetServer, DeadlineAwareEarlyRejectionUsesTheLatencyEstimate) {
  // Same overload shape, but requests carry a 1 µs deadline: once the
  // first completion seeds the latency histogram, the projected wait
  // exceeds the budget and admission rejects instead of queueing work
  // that is guaranteed to miss.
  service::ServiceConfig sconfig;
  sconfig.workers = 1;
  sconfig.queue_capacity = 64;
  sconfig.cache_capacity = 0;
  Stack stack(sconfig, {});
  Client client("127.0.0.1", stack.server.port());
  const auto inst = make_instance(7, 12);

  // Prime the latency histogram with one served request.
  WireRequest first = inline_request(0, inst, service::SolverKind::kMatch);
  first.request.options.max_iterations = 5;
  ASSERT_EQ(client.call(first).status, Status::kOk);

  constexpr std::uint64_t kOffered = 100;
  for (std::uint64_t i = 1; i <= kOffered; ++i) {
    WireRequest req = inline_request(i, inst, service::SolverKind::kMatch);
    req.request.options.seed = 5000 + i;
    req.request.options.max_iterations = 5;
    req.request.options.deadline_seconds = 1e-6;
    req.strict_deadline = true;
    client.send(req);
  }
  client.shutdown_send();

  std::uint64_t rejected = 0;
  for (std::uint64_t i = 1; i <= kOffered; ++i) {
    const WireResponse resp = client.receive();
    if (resp.status == Status::kRejectedDeadline) ++rejected;
  }
  EXPECT_GT(rejected, 0u)
      << "projected wait never exceeded a 1 µs budget under backlog?";
  stack.server.stop();
  expect_books_balance(stack.server);
}

TEST(NetServer, StopMidFlightStillBalancesTheBooks) {
  service::ServiceConfig sconfig;
  sconfig.workers = 1;
  sconfig.cache_capacity = 0;
  Stack stack(sconfig, {});
  Client client("127.0.0.1", stack.server.port());
  const auto inst = make_instance(8, 12);

  constexpr std::uint64_t kOffered = 50;
  for (std::uint64_t i = 0; i < kOffered; ++i) {
    WireRequest req = inline_request(i, inst, service::SolverKind::kMatch);
    req.request.options.seed = 9000 + i;
    req.request.options.max_iterations = 10;
    client.send(req);
  }
  // Wait until the reactor has decoded (and mostly admitted) the batch,
  // then stop with solves still in the single worker's queue: the
  // undelivered completions must still reach their terminal counters.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (stack.server.counters().requests < kOffered &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_EQ(stack.server.counters().requests, kOffered);
  stack.server.stop();
  expect_books_balance(stack.server);
  EXPECT_EQ(stack.server.counters().requests, kOffered);
}

TEST(NetServer, PollBackendServesIdentically) {
  ServerConfig nconfig;
  nconfig.backend = EventLoop::Backend::kPoll;
  Stack stack({}, nconfig);
  Client client("127.0.0.1", stack.server.port());
  const WireResponse resp = client.call(inline_request(1, make_instance(9)));
  ASSERT_EQ(resp.status, Status::kOk) << resp.error;
  EXPECT_TRUE(resp.response.mapping.is_permutation());
  expect_books_balance(stack.server);
}

TEST(NetServer, IdleConnectionsAreSweptAndCounted) {
  ServerConfig nconfig;
  nconfig.idle_timeout_seconds = 0.15;
  Stack stack({}, nconfig);
  Client idle("127.0.0.1", stack.server.port());

  // Wait past the timeout (+ reactor tick): the server closes us.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  bool closed = false;
  while (std::chrono::steady_clock::now() < deadline) {
    if (stack.service.metrics().counter_value("net.idle_closed") > 0) {
      closed = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_TRUE(closed);
  EXPECT_THROW((void)idle.receive(), std::runtime_error);
}

TEST(NetServer, InFlightRequestOutlastingIdleTimeoutIsNotSwept) {
  // A solve that legitimately runs longer than the idle timeout must
  // not get its connection closed as "idle" while the client quietly
  // waits for the answer.  The deadline contract makes the run length
  // deterministic: restarted hill climbing has no convergence early-out,
  // so an unreachable evaluation budget plus a 0.6 s (non-strict)
  // deadline pins the solve at ~0.6 s regardless of machine speed, far
  // past the 0.15 s timeout below.
  ServerConfig nconfig;
  nconfig.idle_timeout_seconds = 0.15;
  service::ServiceConfig sconfig;
  sconfig.cache_capacity = 0;
  Stack stack(sconfig, nconfig);
  Client client("127.0.0.1", stack.server.port());

  WireRequest req = inline_request(1, make_instance(12, 12),
                                   service::SolverKind::kLocalSearch);
  req.request.options.max_iterations = 1u << 30;
  req.request.options.deadline_seconds = 0.6;
  const auto t0 = std::chrono::steady_clock::now();
  const WireResponse resp = client.call(req);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  ASSERT_EQ(resp.status, Status::kOk) << resp.error;
  EXPECT_TRUE(resp.response.mapping.is_permutation());
  // Non-vacuous: the connection really did sit in-flight past the
  // timeout (several sweep ticks deep) before the response landed.
  EXPECT_GT(elapsed, 0.3);
  EXPECT_EQ(stack.service.metrics().counter_value("net.idle_closed"), 0u);
  expect_books_balance(stack.server);
}

TEST(NetServer, OverloadEventsLandOnTheSink) {
  obs::RingBufferSink ring(1024);
  ServerConfig nconfig;
  nconfig.sink = &ring;
  nconfig.admission.max_pending = 8;
  nconfig.admission.low_watermark = 0.0;
  Stack stack({}, nconfig);
  Client client("127.0.0.1", stack.server.port());
  const auto inst = make_instance(10);

  ASSERT_EQ(client.call(inline_request(1, inst)).status, Status::kOk);
  WireRequest low = inline_request(2, inst);
  low.priority = Priority::kLow;
  ASSERT_EQ(client.call(low).status, Status::kShed);

  std::size_t served_events = 0, shed_events = 0;
  for (const obs::Event& e : ring.snapshot()) {
    if (e.kind != obs::EventKind::kService) continue;
    if (e.phase == "net.served") ++served_events;
    if (e.phase == "net.shed") ++shed_events;
  }
  EXPECT_EQ(served_events, 1u);
  EXPECT_EQ(shed_events, 1u);
}

// ---- Request span tracing through the live stack ----------------------

TEST(NetServer, SpanTimelinesCoverEveryTerminalOutcome) {
  obs::FlightRecorder recorder;
  ServerConfig nconfig;
  nconfig.recorder = &recorder;
  nconfig.admission.low_watermark = 0.0;  // low-priority traffic sheds
  Stack stack({}, nconfig);
  Client client("127.0.0.1", stack.server.port());
  const auto inst = make_instance(20);

  // One served, one shed, one unknown-instance: three terminal outcomes.
  ASSERT_EQ(client.call(inline_request(1, inst)).status, Status::kOk);
  WireRequest low = inline_request(2, inst);
  low.priority = Priority::kLow;
  ASSERT_EQ(client.call(low).status, Status::kShed);
  WireRequest by_fp;
  by_fp.request_id = 3;
  by_fp.request.id = 3;
  by_fp.by_fingerprint = true;
  by_fp.instance_fingerprint = 0xdeadbeef;
  by_fp.request.solver = service::SolverKind::kMinMin;
  ASSERT_EQ(client.call(by_fp).status, Status::kUnknownInstance);

  stack.server.stop();
  const ServerCounters c = stack.server.counters();
  EXPECT_EQ(recorder.recorded(), c.terminal())
      << "one sealed timeline per terminal decision";

  const std::vector<obs::SpanTimeline> timelines = recorder.snapshot();
  ASSERT_EQ(timelines.size(), 3u);

  const obs::SpanTimeline& served = timelines[0];
  EXPECT_EQ(served.request_id, 1u);
  EXPECT_EQ(served.outcome, "net.served");
  EXPECT_FALSE(served.solver.empty());
  // The served request crossed the whole pipeline, in pipeline order.
  const obs::SpanStage expected[] = {
      obs::SpanStage::kAccept,    obs::SpanStage::kDecode,
      obs::SpanStage::kAdmission, obs::SpanStage::kQueueWait,
      obs::SpanStage::kSolve,     obs::SpanStage::kEncode,
      obs::SpanStage::kWriteFlush,
  };
  ASSERT_EQ(served.spans.size(), std::size(expected));
  for (std::size_t i = 0; i < std::size(expected); ++i) {
    EXPECT_EQ(served.spans[i].stage, expected[i]) << "span " << i;
    EXPECT_GE(served.spans[i].duration_seconds(), 0.0) << "span " << i;
  }
  EXPECT_EQ(served.find(obs::SpanStage::kAdmission)->outcome, "admitted");
  EXPECT_GT(served.total_seconds, 0.0);
  EXPECT_GE(served.total_seconds, served.attributed_seconds() - 1e-12);
  EXPECT_GT(served.attributed_seconds(), 0.0);

  // The shed request never reached the service: its admission span says
  // why it died, and no queue/solve spans exist.
  const obs::SpanTimeline& shed = timelines[1];
  EXPECT_EQ(shed.request_id, 2u);
  EXPECT_EQ(shed.outcome, "net.shed");
  EXPECT_EQ(shed.find(obs::SpanStage::kAdmission)->outcome, "shed");
  EXPECT_EQ(shed.find(obs::SpanStage::kQueueWait), nullptr);
  EXPECT_EQ(shed.find(obs::SpanStage::kSolve), nullptr);
  EXPECT_NE(shed.find(obs::SpanStage::kWriteFlush), nullptr);

  const obs::SpanTimeline& unknown = timelines[2];
  EXPECT_EQ(unknown.outcome, "net.unknown_instance");
  EXPECT_EQ(unknown.find(obs::SpanStage::kAdmission)->outcome,
            "unknown_instance");
  expect_books_balance(stack.server);
}

TEST(NetServer, TracedSolveIsBitIdenticalToUntraced) {
  // The pure-observer contract at the system level: the same request
  // through a span-traced stack and an untraced stack lands on the same
  // mapping and cost, bit for bit.
  service::ServiceConfig sconfig;
  sconfig.cache_capacity = 0;
  obs::FlightRecorder recorder;
  ServerConfig traced_config;
  traced_config.recorder = &recorder;
  Stack traced(sconfig, traced_config);
  Stack untraced(sconfig, {});

  const auto inst = make_instance(21, 12);
  WireRequest req = inline_request(1, inst, service::SolverKind::kMatch);
  req.request.options.seed = 4242;
  req.request.options.max_iterations = 8;

  Client traced_client("127.0.0.1", traced.server.port());
  Client untraced_client("127.0.0.1", untraced.server.port());
  const WireResponse a = traced_client.call(req);
  const WireResponse b = untraced_client.call(req);
  ASSERT_EQ(a.status, Status::kOk) << a.error;
  ASSERT_EQ(b.status, Status::kOk) << b.error;
  EXPECT_EQ(a.response.cost, b.response.cost);  // exact, not near
  EXPECT_TRUE(a.response.mapping == b.response.mapping);
  EXPECT_EQ(recorder.recorded(), 1u);
}

TEST(NetServer, ReactorTelemetryPopulatesHistogramAndGauges) {
  Stack stack;
  Client client("127.0.0.1", stack.server.port());
  ASSERT_EQ(client.call(inline_request(1, make_instance(22))).status,
            Status::kOk);

  // The iteration histogram fills on every wakeup; the saturation
  // gauges are sampled on a 0.25 s cadence (mere key presence is not
  // proof — the reactor creates them at 0 on startup), so wait until a
  // sample actually saw our open connection.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  bool sampled = false;
  while (std::chrono::steady_clock::now() < deadline && !sampled) {
    const obs::MetricsSnapshot snap = stack.service.metrics().snapshot();
    const auto conns = snap.gauges.find("net.reactor.connections");
    sampled = conns != snap.gauges.end() && conns->second >= 1.0;
    if (!sampled) std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  EXPECT_TRUE(sampled)
      << "saturation gauges never sampled the open connection";

  const obs::MetricsSnapshot snap = stack.service.metrics().snapshot();
  ASSERT_TRUE(snap.histograms.count("net.reactor.iteration_seconds"));
  EXPECT_GT(snap.histograms.at("net.reactor.iteration_seconds").count, 0u);
  EXPECT_TRUE(snap.gauges.count("net.reactor.pending_requests"));
  EXPECT_TRUE(snap.gauges.count("service.queue_depth"));
  EXPECT_TRUE(snap.gauges.count("service.in_flight"));
}

TEST(NetServer, ManyConcurrentClientsAllGetTheirOwnAnswers) {
  Stack stack;
  const auto inst = make_instance(11);
  // Register once so the threads can go through the fingerprint path.
  {
    Client registrar("127.0.0.1", stack.server.port());
    ASSERT_EQ(registrar.call(inline_request(0, inst)).status, Status::kOk);
  }
  const std::uint64_t fp = service::fingerprint_instance(*inst);

  constexpr int kThreads = 8;
  constexpr int kPerThread = 25;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Client client("127.0.0.1", stack.server.port());
      for (int i = 0; i < kPerThread; ++i) {
        const std::uint64_t id =
            (static_cast<std::uint64_t>(t + 1) << 32) | i;
        WireRequest req;
        req.request_id = id;
        req.request.id = id;
        req.by_fingerprint = true;
        req.instance_fingerprint = fp;
        req.request.solver = service::SolverKind::kMinMin;
        const WireResponse resp = client.call(req);
        // The response on this connection answers this request: ids are
        // per-connection proof against cross-wiring.
        if (resp.status != Status::kOk || resp.request_id != id) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);

  const ServerCounters c = stack.server.counters();
  EXPECT_EQ(c.requests, 1u + kThreads * kPerThread);
  EXPECT_EQ(c.served, 1u + kThreads * kPerThread);
  expect_books_balance(stack.server);
}

}  // namespace
