#include "workload/paper_suite.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "graph/algorithms.hpp"
#include "workload/instance.hpp"
#include "workload/overset.hpp"

namespace match::workload {
namespace {

TEST(PaperInstance, RespectsPaperWeightRanges) {
  rng::Rng rng(1);
  PaperParams params;
  params.n = 30;
  const Instance inst = make_paper_instance(params, rng);

  EXPECT_EQ(inst.tig.num_tasks(), 30u);
  EXPECT_EQ(inst.resources.num_resources(), 30u);

  const auto& tg = inst.tig.graph();
  for (graph::NodeId u = 0; u < 30; ++u) {
    EXPECT_GE(tg.node_weight(u), 1.0);
    EXPECT_LE(tg.node_weight(u), 10.0);
  }
  for (const auto& e : tg.edge_list()) {
    EXPECT_GE(e.weight, 50.0);
    EXPECT_LE(e.weight, 100.0);
  }

  const auto& rg = inst.resources.graph();
  for (graph::NodeId u = 0; u < 30; ++u) {
    EXPECT_GE(rg.node_weight(u), 1.0);
    EXPECT_LE(rg.node_weight(u), 5.0);
  }
  for (const auto& e : rg.edge_list()) {
    EXPECT_GE(e.weight, 10.0);
    EXPECT_LE(e.weight, 20.0);
  }
}

TEST(PaperInstance, CompleteResourcesByDefault) {
  rng::Rng rng(2);
  PaperParams params;
  params.n = 12;
  const Instance inst = make_paper_instance(params, rng);
  EXPECT_EQ(inst.resources.graph().num_edges(), 12u * 11u / 2u);
  EXPECT_EQ(inst.comm_policy, sim::CommCostPolicy::kDirectLinks);
  // The flattened platform must build without throwing.
  const sim::Platform plat = inst.make_platform();
  EXPECT_EQ(plat.num_resources(), 12u);
}

TEST(PaperInstance, SparseResourcesUseShortestPath) {
  rng::Rng rng(3);
  PaperParams params;
  params.n = 15;
  params.complete_resources = false;
  const Instance inst = make_paper_instance(params, rng);
  EXPECT_EQ(inst.comm_policy, sim::CommCostPolicy::kShortestPath);
  EXPECT_TRUE(graph::is_connected(inst.resources.graph()));
  const sim::Platform plat = inst.make_platform();
  EXPECT_GT(plat.comm_cost(0, 1), 0.0);
}

TEST(PaperInstance, TigIsConnected) {
  rng::Rng rng(4);
  for (std::size_t n : {10u, 20u, 50u}) {
    PaperParams params;
    params.n = n;
    const Instance inst = make_paper_instance(params, rng);
    EXPECT_TRUE(graph::is_connected(inst.tig.graph())) << n;
  }
}

TEST(PaperInstance, CommScaleMultipliesEdgeWeights) {
  rng::Rng a(5), b(5);
  PaperParams p1;
  p1.n = 20;
  PaperParams p2 = p1;
  p2.comm_scale = 3.0;
  const Instance i1 = make_paper_instance(p1, a);
  const Instance i2 = make_paper_instance(p2, b);
  const auto e1 = i1.tig.graph().edge_list();
  const auto e2 = i2.tig.graph().edge_list();
  ASSERT_EQ(e1.size(), e2.size());
  for (std::size_t k = 0; k < e1.size(); ++k) {
    EXPECT_DOUBLE_EQ(e2[k].weight, 3.0 * e1[k].weight);
  }
}

TEST(PaperInstance, RejectsBadParams) {
  rng::Rng rng(6);
  PaperParams params;
  params.n = 1;
  EXPECT_THROW(make_paper_instance(params, rng), std::invalid_argument);
  params.n = 10;
  params.comm_scale = 0.0;
  EXPECT_THROW(make_paper_instance(params, rng), std::invalid_argument);
}

TEST(PaperSuite, GeneratesRequestedCount) {
  rng::Rng rng(7);
  PaperParams params;
  params.n = 10;
  const auto suite = make_paper_suite(params, 5, 0.5, 2.0, rng);
  ASSERT_EQ(suite.size(), 5u);
  for (const auto& inst : suite) {
    EXPECT_EQ(inst.size(), 10u);
  }
}

TEST(PaperSuite, CommCompRatioSpansRange) {
  rng::Rng rng(8);
  PaperParams params;
  params.n = 20;
  const auto suite = make_paper_suite(params, 3, 0.25, 4.0, rng);
  // Heavier comm_scale => lower computation/communication ratio.
  const auto ratio = [](const Instance& inst) {
    return graph::compute_stats(inst.tig.graph()).comp_comm_ratio;
  };
  EXPECT_GT(ratio(suite.front()), ratio(suite.back()));
}

TEST(PaperSuite, EmptyAndSingleCounts) {
  rng::Rng rng(9);
  PaperParams params;
  EXPECT_TRUE(make_paper_suite(params, 0, 1.0, 2.0, rng).empty());
  EXPECT_EQ(make_paper_suite(params, 1, 1.0, 2.0, rng).size(), 1u);
}

TEST(PaperSuite, RejectsBadScaleRange) {
  rng::Rng rng(10);
  PaperParams params;
  EXPECT_THROW(make_paper_suite(params, 3, 0.0, 2.0, rng),
               std::invalid_argument);
  EXPECT_THROW(make_paper_suite(params, 3, 2.0, 1.0, rng),
               std::invalid_argument);
}

TEST(OversetGrid, OverlapVolumeIsSymmetricAndCorrect) {
  OversetGrid a{{0.0, 0.0, 0.0}, {1.0, 1.0, 1.0}};
  OversetGrid b{{0.5, 0.5, 0.5}, {1.5, 1.5, 1.5}};
  EXPECT_DOUBLE_EQ(a.overlap_volume(b), 0.125);
  EXPECT_DOUBLE_EQ(b.overlap_volume(a), 0.125);
  EXPECT_DOUBLE_EQ(a.volume(), 1.0);
}

TEST(OversetGrid, DisjointBoxesHaveZeroOverlap) {
  OversetGrid a{{0.0, 0.0, 0.0}, {0.4, 0.4, 0.4}};
  OversetGrid b{{0.6, 0.6, 0.6}, {1.0, 1.0, 1.0}};
  EXPECT_DOUBLE_EQ(a.overlap_volume(b), 0.0);
}

TEST(OversetGrid, TouchingFacesDoNotOverlap) {
  OversetGrid a{{0.0, 0.0, 0.0}, {0.5, 1.0, 1.0}};
  OversetGrid b{{0.5, 0.0, 0.0}, {1.0, 1.0, 1.0}};
  EXPECT_DOUBLE_EQ(a.overlap_volume(b), 0.0);
}

TEST(OversetWorkload, ProducesConsistentTig) {
  rng::Rng rng(11);
  OversetParams params;
  params.num_grids = 20;
  const OversetWorkload w = make_overset_workload(params, rng);
  EXPECT_EQ(w.grids.size(), 20u);
  EXPECT_EQ(w.tig.num_tasks(), 20u);
  EXPECT_TRUE(graph::is_connected(w.tig.graph()));
  for (graph::NodeId u = 0; u < 20; ++u) {
    EXPECT_GE(w.tig.compute_weight(u), 1.0);
  }
}

TEST(OversetWorkload, EdgeWeightsTrackOverlapVolume) {
  rng::Rng rng(12);
  OversetParams params;
  params.num_grids = 12;
  params.body_pull = 0.8;  // force plenty of overlap
  params.force_connected = false;
  const OversetWorkload w = make_overset_workload(params, rng);
  for (const auto& e : w.tig.graph().edge_list()) {
    const double overlap = w.grids[e.u].overlap_volume(w.grids[e.v]);
    EXPECT_GT(overlap, 0.0);
    EXPECT_NEAR(e.weight, std::max(1.0, params.points_per_volume * overlap),
                1e-9);
  }
}

TEST(OversetWorkload, BodyPullIncreasesOverlap) {
  rng::Rng a(13), b(13);
  OversetParams loose;
  loose.num_grids = 24;
  loose.body_pull = 0.0;
  loose.force_connected = false;
  OversetParams tight = loose;
  tight.body_pull = 0.9;
  const auto w_loose = make_overset_workload(loose, a);
  const auto w_tight = make_overset_workload(tight, b);
  EXPECT_GT(w_tight.tig.graph().num_edges(), w_loose.tig.graph().num_edges());
}

TEST(OversetWorkload, RejectsBadParams) {
  rng::Rng rng(14);
  OversetParams params;
  params.num_grids = 1;
  EXPECT_THROW(make_overset_workload(params, rng), std::invalid_argument);
  params.num_grids = 8;
  params.min_extent = 0.0;
  EXPECT_THROW(make_overset_workload(params, rng), std::invalid_argument);
  params.min_extent = 0.2;
  params.body_pull = 1.5;
  EXPECT_THROW(make_overset_workload(params, rng), std::invalid_argument);
}

TEST(InstanceIo, SaveLoadRoundTrip) {
  rng::Rng rng(15);
  PaperParams params;
  params.n = 10;
  const Instance inst = make_paper_instance(params, rng);
  const std::string stem =
      (std::filesystem::temp_directory_path() / "match_instance_test").string();
  save_instance(stem, inst);
  const Instance back = load_instance(stem);
  EXPECT_EQ(inst.tig, back.tig);
  EXPECT_EQ(inst.resources, back.resources);
  EXPECT_EQ(inst.comm_policy, back.comm_policy);
  EXPECT_EQ(back.name, inst.name);
  for (const char* ext : {".tig", ".res", ".meta"}) {
    std::remove((stem + ext).c_str());
  }
}

}  // namespace
}  // namespace match::workload
