#include "sim/evaluator.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "graph/generators.hpp"
#include "rng/rng.hpp"
#include "workload/paper_suite.hpp"

namespace match::sim {
namespace {

/// 3 tasks, W = [2, 3, 4], interactions (0,1) C=10 and (1,2) C=20.
graph::Tig small_tig() {
  const std::vector<graph::Edge> edges = {{0, 1, 10.0}, {1, 2, 20.0}};
  return graph::Tig(graph::Graph::from_edges(3, {2.0, 3.0, 4.0}, edges));
}

/// 3 resources, w = [1, 2, 3], links c01=5, c02=6, c12=7.
Platform small_platform() {
  const std::vector<graph::Edge> edges = {{0, 1, 5.0}, {0, 2, 6.0}, {1, 2, 7.0}};
  return Platform(graph::ResourceGraph(
      graph::Graph::from_edges(3, {1.0, 2.0, 3.0}, edges)));
}

TEST(CostEvaluator, MatchesHandComputedIdentityMapping) {
  const auto tig = small_tig();
  const auto plat = small_platform();
  const CostEvaluator eval(tig, plat);

  // Exec_0 = 2*1 + 10*5            = 52
  // Exec_1 = 3*2 + 10*5 + 20*7     = 196
  // Exec_2 = 4*3 + 20*7            = 152
  const EvalResult r = eval.evaluate(Mapping::identity(3));
  EXPECT_DOUBLE_EQ(r.loads[0].total(), 52.0);
  EXPECT_DOUBLE_EQ(r.loads[1].total(), 196.0);
  EXPECT_DOUBLE_EQ(r.loads[2].total(), 152.0);
  EXPECT_DOUBLE_EQ(r.makespan, 196.0);
  EXPECT_EQ(r.busiest, 1u);

  EXPECT_DOUBLE_EQ(r.loads[1].compute, 6.0);
  EXPECT_DOUBLE_EQ(r.loads[1].comm, 190.0);
}

TEST(CostEvaluator, MatchesHandComputedSwappedMapping) {
  const auto tig = small_tig();
  const auto plat = small_platform();
  const CostEvaluator eval(tig, plat);

  // t0->r1, t1->r0, t2->r2:
  // Exec_0 (t1) = 3*1 + 10*5 + 20*6 = 173
  // Exec_1 (t0) = 2*2 + 10*5        = 54
  // Exec_2 (t2) = 4*3 + 20*6        = 132
  const Mapping m(std::vector<graph::NodeId>{1, 0, 2});
  const EvalResult r = eval.evaluate(m);
  EXPECT_DOUBLE_EQ(r.loads[0].total(), 173.0);
  EXPECT_DOUBLE_EQ(r.loads[1].total(), 54.0);
  EXPECT_DOUBLE_EQ(r.loads[2].total(), 132.0);
  EXPECT_DOUBLE_EQ(r.makespan, 173.0);
}

TEST(CostEvaluator, ColocatedTasksPayNoCommunication) {
  const auto tig = small_tig();
  const auto plat = small_platform();
  const CostEvaluator eval(tig, plat);

  // Everything on resource 0: pure compute, (2+3+4)*1 = 9.
  const Mapping m(std::vector<graph::NodeId>{0, 0, 0});
  const EvalResult r = eval.evaluate(m);
  EXPECT_DOUBLE_EQ(r.makespan, 9.0);
  EXPECT_DOUBLE_EQ(r.loads[0].comm, 0.0);
  EXPECT_DOUBLE_EQ(r.loads[1].total(), 0.0);
  EXPECT_DOUBLE_EQ(r.loads[2].total(), 0.0);
}

TEST(CostEvaluator, MakespanMatchesEvaluate) {
  rng::Rng rng(1);
  workload::PaperParams params;
  params.n = 12;
  const auto inst = workload::make_paper_instance(params, rng);
  const auto plat = inst.make_platform();
  const CostEvaluator eval(inst.tig, plat);
  for (int trial = 0; trial < 30; ++trial) {
    const Mapping m = Mapping::random_permutation(12, rng);
    EXPECT_DOUBLE_EQ(eval.makespan(m), eval.evaluate(m).makespan);
  }
}

TEST(CostEvaluator, EdgeKernelMatchesEvaluateOnFractionalWeights) {
  // Geometric platforms carry fractional (distance-derived) link costs,
  // so the edge-streaming makespan kernel and the per-task reference in
  // evaluate() accumulate in different orders; they must still agree to
  // reassociation tolerance.
  rng::Rng rng(7);
  constexpr std::size_t kN = 16;
  const graph::Tig tig(
      graph::make_clustered(kN, 3, 0.7, 0.2, {1, 10}, {50, 100}, rng));
  const Platform plat(
      graph::ResourceGraph(graph::make_geometric(kN, 0.5, {1, 5}, 15.0, rng)),
      CommCostPolicy::kShortestPath);
  const CostEvaluator eval(tig, plat);
  std::vector<double> scratch;
  for (int trial = 0; trial < 30; ++trial) {
    const Mapping m = Mapping::random_permutation(kN, rng);
    const double ref = eval.evaluate(m).makespan;
    EXPECT_NEAR(eval.makespan(m.assignment(), scratch), ref,
                1e-9 * std::max(1.0, ref));
  }
}

TEST(CostEvaluator, BatchMatchesSerial) {
  rng::Rng rng(2);
  workload::PaperParams params;
  params.n = 10;
  const auto inst = workload::make_paper_instance(params, rng);
  const auto plat = inst.make_platform();
  const CostEvaluator eval(inst.tig, plat);

  constexpr std::size_t kCount = 200;
  std::vector<graph::NodeId> rows(kCount * 10);
  for (std::size_t i = 0; i < kCount; ++i) {
    const Mapping m = Mapping::random_permutation(10, rng);
    std::copy(m.assignment().begin(), m.assignment().end(),
              rows.begin() + static_cast<std::ptrdiff_t>(i * 10));
  }
  std::vector<double> out(kCount);
  parallel::ForOptions opts;
  opts.serial_cutoff = 0;  // force the parallel path
  eval.makespans_batch(rows, kCount, out, opts);
  for (std::size_t i = 0; i < kCount; ++i) {
    EXPECT_DOUBLE_EQ(
        out[i], eval.makespan(std::span<const graph::NodeId>(
                    rows.data() + i * 10, 10)));
  }
}

TEST(CostEvaluator, BatchRejectsShortBuffers) {
  const auto tig = small_tig();
  const auto plat = small_platform();
  const CostEvaluator eval(tig, plat);
  std::vector<graph::NodeId> rows(3);
  std::vector<double> out(2);
  EXPECT_THROW(eval.makespans_batch(rows, 2, out), std::invalid_argument);
}

TEST(CostEvaluator, RejectsEmptyInputs) {
  const auto plat = small_platform();
  graph::Tig empty;
  EXPECT_THROW(CostEvaluator(empty, plat), std::invalid_argument);
}

TEST(LoadTracker, InitialLoadsMatchEvaluate) {
  const auto tig = small_tig();
  const auto plat = small_platform();
  const CostEvaluator eval(tig, plat);
  const Mapping m = Mapping::identity(3);
  const LoadTracker tracker(eval, m);
  const EvalResult r = eval.evaluate(m);
  ASSERT_EQ(tracker.loads().size(), r.loads.size());
  for (std::size_t s = 0; s < r.loads.size(); ++s) {
    EXPECT_NEAR(tracker.loads()[s].total(), r.loads[s].total(), 1e-9);
  }
  EXPECT_NEAR(tracker.makespan(), r.makespan, 1e-9);
}

TEST(LoadTracker, MoveMatchesFullRecompute) {
  const auto tig = small_tig();
  const auto plat = small_platform();
  const CostEvaluator eval(tig, plat);
  LoadTracker tracker(eval, Mapping::identity(3));

  tracker.apply_move(0, 2);  // t0 joins t2 on r2
  const EvalResult r = eval.evaluate(tracker.mapping());
  for (std::size_t s = 0; s < 3; ++s) {
    EXPECT_NEAR(tracker.loads()[s].total(), r.loads[s].total(), 1e-9);
  }
}

TEST(LoadTracker, RandomMoveSequenceStaysExact) {
  rng::Rng rng(3);
  workload::PaperParams params;
  params.n = 15;
  const auto inst = workload::make_paper_instance(params, rng);
  const auto plat = inst.make_platform();
  const CostEvaluator eval(inst.tig, plat);

  LoadTracker tracker(eval, Mapping::random_permutation(15, rng));
  for (int step = 0; step < 200; ++step) {
    const auto t = static_cast<graph::NodeId>(rng.below(15));
    const auto r = static_cast<graph::NodeId>(rng.below(15));
    tracker.apply_move(t, r);
    if (step % 20 == 0) {
      const EvalResult ref = eval.evaluate(tracker.mapping());
      for (std::size_t s = 0; s < 15; ++s) {
        ASSERT_NEAR(tracker.loads()[s].total(), ref.loads[s].total(), 1e-6)
            << "step " << step << " resource " << s;
      }
    }
  }
}

TEST(LoadTracker, SwapKeepsPermutation) {
  rng::Rng rng(4);
  workload::PaperParams params;
  params.n = 10;
  const auto inst = workload::make_paper_instance(params, rng);
  const auto plat = inst.make_platform();
  const CostEvaluator eval(inst.tig, plat);

  LoadTracker tracker(eval, Mapping::random_permutation(10, rng));
  for (int step = 0; step < 50; ++step) {
    const auto a = static_cast<graph::NodeId>(rng.below(10));
    const auto b = static_cast<graph::NodeId>(rng.below(10));
    tracker.apply_swap(a, b);
    EXPECT_TRUE(tracker.mapping().is_permutation());
  }
  const EvalResult ref = eval.evaluate(tracker.mapping());
  EXPECT_NEAR(tracker.makespan(), ref.makespan, 1e-6);
}

TEST(LoadTracker, PeekMoveDeltaDoesNotMutate) {
  const auto tig = small_tig();
  const auto plat = small_platform();
  const CostEvaluator eval(tig, plat);
  LoadTracker tracker(eval, Mapping::identity(3));
  const double before = tracker.makespan();
  const double delta = tracker.peek_move_delta(1, 0);
  EXPECT_NEAR(tracker.makespan(), before, 1e-12);
  // Verify the predicted delta by applying the move.
  tracker.apply_move(1, 0);
  EXPECT_NEAR(tracker.makespan(), before + delta, 1e-9);
}

TEST(LoadTracker, MoveToSameResourceIsANoop) {
  const auto tig = small_tig();
  const auto plat = small_platform();
  const CostEvaluator eval(tig, plat);
  LoadTracker tracker(eval, Mapping::identity(3));
  const double before = tracker.makespan();
  tracker.apply_move(1, 1);
  EXPECT_DOUBLE_EQ(tracker.makespan(), before);
}

}  // namespace
}  // namespace match::sim
