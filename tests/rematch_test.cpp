#include "core/rematch.hpp"

#include <gtest/gtest.h>

#include "sim/perturb.hpp"
#include "workload/paper_suite.hpp"

namespace match::core {
namespace {

struct Fixture {
  workload::Instance inst;
  sim::Platform platform;
  sim::CostEvaluator eval;

  explicit Fixture(std::size_t n, std::uint64_t seed)
      : inst(make(n, seed)),
        platform(inst.make_platform()),
        eval(inst.tig, platform) {}

  static workload::Instance make(std::size_t n, std::uint64_t seed) {
    rng::Rng rng(seed);
    workload::PaperParams params;
    params.n = n;
    return workload::make_paper_instance(params, rng);
  }
};

TEST(Perturb, ScaleProcessingCostOnlyTouchesOneNode) {
  Fixture f(8, 1);
  const auto scaled = sim::scale_processing_cost(f.inst.resources, 3, 2.0);
  for (graph::NodeId r = 0; r < 8; ++r) {
    const double expected = f.inst.resources.processing_cost(r) *
                            (r == 3 ? 2.0 : 1.0);
    EXPECT_DOUBLE_EQ(scaled.processing_cost(r), expected);
  }
  // Links unchanged.
  EXPECT_EQ(scaled.graph().edge_list(), f.inst.resources.graph().edge_list());
}

TEST(Perturb, ScaleLinkCostsTouchesIncidentLinksOnly) {
  Fixture f(8, 2);
  const auto scaled = sim::scale_link_costs(f.inst.resources, 2, 3.0);
  for (const auto& e : f.inst.resources.graph().edge_list()) {
    const double factor = (e.u == 2 || e.v == 2) ? 3.0 : 1.0;
    EXPECT_DOUBLE_EQ(scaled.link_cost(e.u, e.v), e.weight * factor);
  }
}

TEST(Perturb, RejectsBadArguments) {
  Fixture f(6, 3);
  EXPECT_THROW(sim::scale_processing_cost(f.inst.resources, 99, 2.0),
               std::out_of_range);
  EXPECT_THROW(sim::scale_processing_cost(f.inst.resources, 0, 0.0),
               std::invalid_argument);
  EXPECT_THROW(sim::scale_link_costs(f.inst.resources, 99, 2.0),
               std::out_of_range);
}

TEST(AnchoredMatrix, PutsRequestedMassOnIncumbent) {
  const sim::Mapping incumbent(std::vector<graph::NodeId>{2, 0, 1});
  const auto p = anchored_matrix(incumbent, 3, 0.6);
  EXPECT_TRUE(p.is_row_stochastic());
  const double background = 0.4 / 3.0;
  EXPECT_NEAR(p(0, 2), 0.6 + background, 1e-12);
  EXPECT_NEAR(p(0, 0), background, 1e-12);
  EXPECT_NEAR(p(1, 0), 0.6 + background, 1e-12);
  EXPECT_NEAR(p(2, 1), 0.6 + background, 1e-12);
}

TEST(AnchoredMatrix, ZeroAnchorIsUniform) {
  const sim::Mapping incumbent(std::vector<graph::NodeId>{0, 1});
  const auto p = anchored_matrix(incumbent, 2, 0.0);
  EXPECT_DOUBLE_EQ(p(0, 0), 0.5);
  EXPECT_DOUBLE_EQ(p(1, 0), 0.5);
}

TEST(AnchoredMatrix, RejectsBadInputs) {
  const sim::Mapping incumbent(std::vector<graph::NodeId>{0, 1});
  EXPECT_THROW(anchored_matrix(incumbent, 2, 1.0), std::invalid_argument);
  EXPECT_THROW(anchored_matrix(incumbent, 2, -0.1), std::invalid_argument);
  const sim::Mapping bad(std::vector<graph::NodeId>{0, 9});
  EXPECT_THROW(anchored_matrix(bad, 2, 0.5), std::invalid_argument);
}

TEST(Rematch, NeverRegressesFromIncumbent) {
  Fixture f(10, 4);
  rng::Rng r1(5);
  const auto cold = MatchOptimizer(f.eval).run(match::SolverContext(r1));

  // Re-map on the *same* platform: the incumbent is already excellent,
  // so the result must be at least as good.
  RematchParams params;
  rng::Rng r2(6);
  const auto warm = rematch(f.eval, cold.best_mapping, params, match::SolverContext(r2));
  EXPECT_LE(warm.best_cost, cold.best_cost + 1e-9);
  EXPECT_TRUE(warm.best_mapping.is_permutation());
}

TEST(Rematch, AdaptsToSlowedResource) {
  Fixture f(12, 7);
  rng::Rng r1(8);
  const auto cold = MatchOptimizer(f.eval).run(match::SolverContext(r1));

  // Slow down the resource hosting the heaviest-loaded task by 10x.
  const auto breakdown = f.eval.evaluate(cold.best_mapping);
  const graph::NodeId victim = breakdown.busiest;
  const auto degraded =
      sim::scale_processing_cost(f.inst.resources, victim, 10.0);
  const sim::Platform new_platform(degraded);
  const sim::CostEvaluator new_eval(f.inst.tig, new_platform);

  RematchParams params;
  rng::Rng r2(9);
  const auto warm = rematch(new_eval, cold.best_mapping, params, match::SolverContext(r2));

  // The re-run must improve on simply keeping the old mapping.
  const double stale_cost = new_eval.makespan(cold.best_mapping);
  EXPECT_LE(warm.best_cost, stale_cost);
  EXPECT_TRUE(warm.best_mapping.is_permutation());
}

TEST(Rematch, WarmStartConvergesFasterThanCold) {
  Fixture f(15, 10);
  rng::Rng r1(11);
  const auto cold_initial = MatchOptimizer(f.eval).run(match::SolverContext(r1));

  // Mild perturbation: one resource 1.5x slower.
  const auto degraded = sim::scale_processing_cost(f.inst.resources, 0, 1.5);
  const sim::Platform new_platform(degraded);
  const sim::CostEvaluator new_eval(f.inst.tig, new_platform);

  rng::Rng r2(12), r3(12);
  const auto cold = MatchOptimizer(new_eval).run(match::SolverContext(r2));
  RematchParams params;
  params.anchor = 0.7;
  const auto warm = rematch(new_eval, cold_initial.best_mapping, params, match::SolverContext(r3));

  // Warm start must reach comparable quality in no more iterations.
  EXPECT_LE(warm.iterations, cold.iterations);
  EXPECT_LE(warm.best_cost, cold.best_cost * 1.05);
}

TEST(Rematch, RejectsBadIncumbent) {
  Fixture f(8, 13);
  RematchParams params;
  rng::Rng rng(14);
  const sim::Mapping wrong_size = sim::Mapping::identity(5);
  EXPECT_THROW(rematch(f.eval, wrong_size, params, match::SolverContext(rng)),
               std::invalid_argument);
  const sim::Mapping not_perm(std::vector<graph::NodeId>(8, 0));
  EXPECT_THROW(rematch(f.eval, not_perm, params, match::SolverContext(rng)), std::invalid_argument);
}

TEST(Rematch, ParamsValidate) {
  RematchParams p;
  p.anchor = 1.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = {};
  p.base.rho = 0.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = {};
  EXPECT_NO_THROW(p.validate());
}

TEST(MatchOptimizer, SetInitialMatrixValidatesShape) {
  Fixture f(6, 15);
  MatchOptimizer opt(f.eval);
  EXPECT_THROW(opt.set_initial_matrix(StochasticMatrix::uniform(5, 5)),
               std::invalid_argument);
  EXPECT_NO_THROW(opt.set_initial_matrix(StochasticMatrix::uniform(6, 6)));
}

}  // namespace
}  // namespace match::core
