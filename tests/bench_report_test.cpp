// Schema round-trip tests for the BENCH_<name>.json reports
// (src/obs/bench_report.{hpp,cpp}): a report serialized with `to_json`
// and parsed back with `from_json` must compare equal field-for-field,
// including exact doubles, u64 counters beyond 2^53, and hostile
// strings.  Also pins the on-disk `write()` artifact and the
// MATCH_GIT_SHA override that CI uses.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/bench_report.hpp"
#include "obs/metrics.hpp"

namespace match::bench {
namespace {

BenchReport sample_report() {
  BenchReport report;
  report.name = "ext_obs_overhead";
  report.git_sha = "0123abcd4567";
  report.config = {{"n", "30"}, {"mode", "--full"}, {"sizes", "10,20,30"}};

  BenchCase a;
  a.name = "no observer";
  a.wall_seconds = 0.4121874999999997;  // non-terminating binary expansion
  a.metrics["overhead_vs_baseline_pct"] = 0.0;
  BenchCase b;
  b.name = "JsonlSink (file)";
  b.wall_seconds = 1.0 / 3.0;
  b.metrics["overhead_vs_baseline_pct"] = 1.27;
  b.metrics["events_traced"] = 3135.0;
  report.cases = {a, b};

  report.counters = {{"match.iterations", 2421},
                     {"service.completed", 160}};
  report.gauges = {{"queue.depth", -0.0}, {"gamma.last", 1e-300}};
  obs::HistogramStats h;
  h.count = 160;
  h.sum = 1.25;
  h.mean = 0.0078125;
  h.p50 = 4e-6;
  h.p90 = 1.6e-5;
  h.p99 = 3.2e-5;
  report.histograms["service.latency_seconds"] = h;
  return report;
}

void expect_reports_equal(const BenchReport& x, const BenchReport& y) {
  EXPECT_EQ(x.name, y.name);
  EXPECT_EQ(x.git_sha, y.git_sha);
  EXPECT_EQ(x.config, y.config);
  EXPECT_EQ(x.cases, y.cases);  // BenchCase has defaulted operator==
  EXPECT_EQ(x.counters, y.counters);
  EXPECT_EQ(x.gauges, y.gauges);
  ASSERT_EQ(x.histograms.size(), y.histograms.size());
  for (const auto& [name, hx] : x.histograms) {
    ASSERT_TRUE(y.histograms.count(name)) << name;
    const obs::HistogramStats& hy = y.histograms.at(name);
    EXPECT_EQ(hx.count, hy.count);
    EXPECT_EQ(hx.sum, hy.sum);    // exact: shortest-round-trip doubles
    EXPECT_EQ(hx.mean, hy.mean);
    EXPECT_EQ(hx.p50, hy.p50);
    EXPECT_EQ(hx.p90, hy.p90);
    EXPECT_EQ(hx.p99, hy.p99);
  }
}

TEST(BenchReport, RoundTripsExactly) {
  const BenchReport original = sample_report();
  const BenchReport back = BenchReport::from_json(original.to_json());
  expect_reports_equal(original, back);
  // And a second generation is a fixed point.
  EXPECT_EQ(original.to_json(), back.to_json());
}

TEST(BenchReport, RoundTripsCountersBeyondDoublePrecision) {
  BenchReport report;
  report.name = "big";
  // 2^53 + 1 is not representable as a double; the u64 path must keep it.
  report.counters["huge"] = (1ull << 53) + 1;
  report.counters["max"] = UINT64_MAX;
  const BenchReport back = BenchReport::from_json(report.to_json());
  EXPECT_EQ(back.counters.at("huge"), (1ull << 53) + 1);
  EXPECT_EQ(back.counters.at("max"), UINT64_MAX);
}

TEST(BenchReport, RoundTripsHostileStrings) {
  BenchReport report;
  report.name = "quo\"te";
  report.git_sha = "back\\slash";
  report.config["new\nline"] = "tab\there\rcr";
  report.config["ctrl"] = std::string("\x01\x02", 2);
  BenchCase c;
  c.name = "spaces and \"quotes\"";
  report.cases.push_back(c);
  const BenchReport back = BenchReport::from_json(report.to_json());
  expect_reports_equal(report, back);
}

TEST(BenchReport, EmptyReportRoundTrips) {
  const BenchReport back = BenchReport::from_json(BenchReport().to_json());
  expect_reports_equal(BenchReport(), back);
}

TEST(BenchReport, AttachSnapshotCopiesMetricsAndDropsBuckets) {
  obs::MetricsRegistry registry;
  registry.counter("solver.iterations").add(17);
  registry.gauge("gamma").set(2.5);
  registry.histogram("lat").observe(3e-6);

  BenchReport report;
  report.name = "snap";
  report.attach_snapshot(registry.snapshot());
  EXPECT_EQ(report.counters.at("solver.iterations"), 17u);
  EXPECT_DOUBLE_EQ(report.gauges.at("gamma"), 2.5);
  EXPECT_EQ(report.histograms.at("lat").count, 1u);
  // Bucket arrays are an exposition concern; the report drops them so a
  // round trip compares equal.
  EXPECT_TRUE(report.histograms.at("lat").buckets.empty());
  expect_reports_equal(report, BenchReport::from_json(report.to_json()));
}

TEST(BenchReport, ParserRejectsGarbage) {
  EXPECT_THROW(BenchReport::from_json(""), std::invalid_argument);
  EXPECT_THROW(BenchReport::from_json("not json"), std::invalid_argument);
  EXPECT_THROW(BenchReport::from_json("{\"name\":"), std::invalid_argument);
  EXPECT_THROW(BenchReport::from_json("{} trailing"), std::invalid_argument);
  EXPECT_THROW(BenchReport::from_json("{\"counters\":{\"x\":-1}}"),
               std::invalid_argument);  // counters are unsigned
  EXPECT_THROW(BenchReport::from_json("{\"name\":42}"),
               std::invalid_argument);  // wrong type
}

TEST(BenchReport, ParserIgnoresUnknownKeysForSchemaGrowth) {
  const BenchReport back = BenchReport::from_json(
      "{\"name\":\"x\",\"future_field\":{\"deep\":[1,2,3]},"
      "\"schema_version\":99}");
  EXPECT_EQ(back.name, "x");
}

TEST(BenchReport, WriteEmitsWellFormedFileNamedAfterTheBench) {
  BenchReport report = sample_report();
  report.name = "unit_test";
  const std::string dir =
      ::testing::TempDir().substr(0, ::testing::TempDir().size() - 1);
  const std::string path = report.write(dir);
  EXPECT_NE(path.find("BENCH_unit_test.json"), std::string::npos);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::string content = buffer.str();
  ASSERT_FALSE(content.empty());
  EXPECT_EQ(content.back(), '\n');
  content.pop_back();
  expect_reports_equal(report, BenchReport::from_json(content));
  std::remove(path.c_str());
}

TEST(BenchReport, WriteToUnwritableDirectoryThrows) {
  BenchReport report;
  report.name = "nope";
  EXPECT_THROW(report.write("/nonexistent-dir-for-sure"), std::runtime_error);
}

TEST(GitSha, EnvOverrideWinsAndFallbackIsSane) {
  ::setenv("MATCH_GIT_SHA", "feedface0123", 1);
  EXPECT_EQ(current_git_sha(), "feedface0123");
  ::unsetenv("MATCH_GIT_SHA");
  // Without the override: either a lowercase-hex sha (in a git checkout)
  // or the literal "unknown" — never garbage.
  const std::string sha = current_git_sha();
  if (sha != "unknown") {
    EXPECT_GE(sha.size(), 7u);
    for (char c : sha) {
      EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')) << sha;
    }
  }
}

}  // namespace
}  // namespace match::bench
