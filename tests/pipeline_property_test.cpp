// Pipeline-wide property sweep: for every platform topology family ×
// communication policy × size, the full stack (generator → platform →
// evaluator → MaTCH) must hold its invariants — valid permutations,
// evaluator/LoadTracker agreement, and optimizer results no worse than
// the random-sampling yardstick.

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "baselines/local_search.hpp"
#include "core/matchalgo.hpp"
#include "graph/generators.hpp"
#include "sim/des.hpp"
#include "workload/paper_suite.hpp"

namespace match {
namespace {

using Param = std::tuple<const char*, std::size_t>;

graph::Graph make_topology(const std::string& kind, std::size_t n,
                           rng::Rng& rng) {
  const graph::WeightRange node_w{1, 5}, link_w{10, 20};
  if (kind == "complete") return graph::make_complete(n, node_w, link_w, rng);
  if (kind == "ring") return graph::make_ring(n, node_w, link_w, rng);
  if (kind == "star") return graph::make_star(n, node_w, link_w, rng);
  if (kind == "gnp") return graph::make_gnp(n, 0.4, node_w, link_w, rng);
  if (kind == "ba") {
    return graph::make_barabasi_albert(n, 2, node_w, link_w, rng);
  }
  return graph::make_geometric(n, 0.5, node_w, 15.0, rng);
}

class TopologyPipelineTest : public ::testing::TestWithParam<Param> {};

TEST_P(TopologyPipelineTest, FullStackInvariantsHold) {
  const auto [kind, n] = GetParam();
  rng::Rng rng(static_cast<std::uint64_t>(n) * 131 + kind[0]);

  // Application: paper-style TIG of matching size.
  const graph::Tig tig(
      graph::make_clustered(n, 3, 0.7, 0.2, {1, 10}, {50, 100}, rng));

  // Platform: the requested topology; complete graphs use direct links,
  // everything else routes over shortest paths.
  const std::string topo = kind;
  const graph::ResourceGraph resources(make_topology(topo, n, rng));
  const sim::CommCostPolicy policy = topo == "complete"
                                         ? sim::CommCostPolicy::kDirectLinks
                                         : sim::CommCostPolicy::kShortestPath;
  const sim::Platform platform(resources, policy);
  const sim::CostEvaluator eval(tig, platform);

  // 1. Evaluator and LoadTracker agree after arbitrary move sequences.
  sim::LoadTracker tracker(eval, sim::Mapping::random_permutation(n, rng));
  for (int step = 0; step < 60; ++step) {
    tracker.apply_move(static_cast<graph::NodeId>(rng.below(n)),
                       static_cast<graph::NodeId>(rng.below(n)));
  }
  const auto ref = eval.evaluate(tracker.mapping());
  EXPECT_NEAR(tracker.makespan(), ref.makespan, 1e-6);

  // 2. The DES reproduces the analytic cost in its regime on every
  //    topology (including routed ones).
  const auto perm = sim::Mapping::random_permutation(n, rng);
  EXPECT_NEAR(sim::simulate_execution(eval, perm, {}).total_time,
              eval.makespan(perm), 1e-9);

  // 3. MaTCH produces a valid permutation and beats the mean of random
  //    sampling.
  core::MatchParams mp;
  mp.max_iterations = 60;
  core::MatchOptimizer opt(eval, mp);
  rng::Rng run_rng(7);
  const auto result = opt.run(match::SolverContext(run_rng));
  EXPECT_TRUE(result.best_mapping.is_permutation());

  rng::Rng sample_rng(8);
  double random_mean = 0.0;
  constexpr int kSamples = 60;
  for (int i = 0; i < kSamples; ++i) {
    random_mean +=
        eval.makespan(sim::Mapping::random_permutation(n, sample_rng));
  }
  random_mean /= kSamples;
  EXPECT_LT(result.best_cost, random_mean);
}

INSTANTIATE_TEST_SUITE_P(
    Topologies, TopologyPipelineTest,
    ::testing::Combine(::testing::Values("complete", "ring", "star", "gnp",
                                         "ba", "geometric"),
                       ::testing::Values(std::size_t{8}, std::size_t{16})),
    [](const ::testing::TestParamInfo<Param>& info) {
      return std::string(std::get<0>(info.param)) + "_" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace match
