#include "sim/metrics.hpp"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "workload/paper_suite.hpp"

namespace match::sim {
namespace {

struct Fixture {
  workload::Instance inst;
  Platform platform;
  CostEvaluator eval;

  explicit Fixture(std::size_t n, std::uint64_t seed)
      : inst(make(n, seed)),
        platform(inst.make_platform()),
        eval(inst.tig, platform) {}

  static workload::Instance make(std::size_t n, std::uint64_t seed) {
    rng::Rng rng(seed);
    workload::PaperParams params;
    params.n = n;
    return workload::make_paper_instance(params, rng);
  }
};

TEST(Metrics, MakespanMatchesEvaluator) {
  Fixture f(10, 1);
  rng::Rng rng(2);
  const Mapping m = Mapping::random_permutation(10, rng);
  const MappingMetrics metrics = compute_metrics(f.eval, m);
  EXPECT_DOUBLE_EQ(metrics.makespan, f.eval.makespan(m));
}

TEST(Metrics, PermutationUsesEveryResourceOnce) {
  Fixture f(12, 3);
  rng::Rng rng(4);
  const Mapping m = Mapping::random_permutation(12, rng);
  const MappingMetrics metrics = compute_metrics(f.eval, m);
  EXPECT_EQ(metrics.used_resources, 12u);
  EXPECT_EQ(metrics.max_tasks_per_resource, 1u);
}

TEST(Metrics, ColocatedMappingHasZeroCut) {
  Fixture f(8, 5);
  const Mapping m(std::vector<graph::NodeId>(8, 0));
  const MappingMetrics metrics = compute_metrics(f.eval, m);
  EXPECT_DOUBLE_EQ(metrics.cut_fraction, 0.0);
  EXPECT_DOUBLE_EQ(metrics.total_comm, 0.0);
  EXPECT_EQ(metrics.used_resources, 1u);
  EXPECT_EQ(metrics.max_tasks_per_resource, 8u);
  // A single loaded resource: imbalance = makespan / (makespan / n) = n.
  EXPECT_NEAR(metrics.imbalance, 8.0, 1e-9);
}

TEST(Metrics, CutFractionIsOneWhenAllEdgesRemote) {
  // Any permutation mapping on a square instance cuts every edge.
  Fixture f(10, 6);
  rng::Rng rng(7);
  const Mapping m = Mapping::random_permutation(10, rng);
  const MappingMetrics metrics = compute_metrics(f.eval, m);
  EXPECT_DOUBLE_EQ(metrics.cut_fraction, 1.0);
  EXPECT_GT(metrics.total_comm, 0.0);
}

TEST(Metrics, UtilizationBoundedByOne) {
  Fixture f(15, 8);
  rng::Rng rng(9);
  const Mapping m = Mapping::random_permutation(15, rng);
  const MappingMetrics metrics = compute_metrics(f.eval, m);
  ASSERT_EQ(metrics.utilization.size(), 15u);
  double max_util = 0.0;
  for (double u : metrics.utilization) {
    EXPECT_GE(u, 0.0);
    EXPECT_LE(u, 1.0 + 1e-12);
    max_util = std::max(max_util, u);
  }
  // The busiest resource defines the makespan: its utilization is 1.
  EXPECT_NEAR(max_util, 1.0, 1e-12);
}

TEST(Metrics, TotalsDecomposeThePerResourceLoads) {
  Fixture f(10, 10);
  rng::Rng rng(11);
  const Mapping m = Mapping::random_permutation(10, rng);
  const MappingMetrics metrics = compute_metrics(f.eval, m);
  const EvalResult ref = f.eval.evaluate(m);
  double compute = 0.0, comm = 0.0;
  for (const auto& load : ref.loads) {
    compute += load.compute;
    comm += load.comm;
  }
  EXPECT_NEAR(metrics.total_compute, compute, 1e-9);
  EXPECT_NEAR(metrics.total_comm, comm, 1e-9);
}

TEST(Metrics, ImbalanceIsOneForPerfectBalance) {
  // Hand-built: 2 identical isolated tasks on 2 identical resources.
  graph::Graph::Builder tb;
  tb.add_node(4.0);
  tb.add_node(4.0);
  const graph::Tig tig(tb.build());
  const std::vector<graph::Edge> redges = {{0, 1, 1.0}};
  const Platform plat(graph::ResourceGraph(
      graph::Graph::from_edges(2, {2.0, 2.0}, redges)));
  const CostEvaluator eval(tig, plat);
  const MappingMetrics metrics = compute_metrics(eval, Mapping::identity(2));
  EXPECT_NEAR(metrics.imbalance, 1.0, 1e-12);
}

}  // namespace
}  // namespace match::sim

// ---------------------------------------------------------------------------
// obs::MetricsRegistry snapshot consistency: a scrape taken mid-run must
// be internally coherent.  Counters may only move forward between
// snapshots, and a histogram's stats must agree with themselves — the
// count equal to the sum of the bucket array it ships with, quantiles
// ordered — even while writer threads hammer the registry.

namespace match::obs {
namespace {

TEST(SnapshotConsistency, CountersAreMonotoneAcrossRepeatedSnapshots) {
  MetricsRegistry registry;
  constexpr std::size_t kWriters = 4;
  constexpr std::uint64_t kAddsPerWriter = 200000;

  std::vector<std::thread> writers;
  for (std::size_t t = 0; t < kWriters; ++t) {
    writers.emplace_back([&registry, t] {
      Counter& mine = registry.counter("snap.per_thread_" + std::to_string(t));
      Counter& shared = registry.counter("snap.shared");
      for (std::uint64_t i = 0; i < kAddsPerWriter; ++i) {
        mine.add();
        shared.add(2);
      }
    });
  }

  std::map<std::string, std::uint64_t> last;
  for (int round = 0; round < 200; ++round) {
    const MetricsSnapshot snap = registry.snapshot();
    for (const auto& [name, value] : snap.counters) {
      const auto it = last.find(name);
      if (it != last.end()) {
        EXPECT_GE(value, it->second) << name << " moved backwards";
      }
      last[name] = value;
    }
  }
  for (auto& w : writers) w.join();

  const MetricsSnapshot final_snap = registry.snapshot();
  EXPECT_EQ(final_snap.counters.at("snap.shared"),
            2 * kWriters * kAddsPerWriter);
  for (std::size_t t = 0; t < kWriters; ++t) {
    EXPECT_EQ(final_snap.counters.at("snap.per_thread_" + std::to_string(t)),
              kAddsPerWriter);
  }
}

TEST(SnapshotConsistency, HistogramStatsAreNeverTorn) {
  MetricsRegistry registry;
  constexpr std::size_t kWriters = 4;
  constexpr std::uint64_t kObsPerWriter = 100000;

  std::vector<std::thread> writers;
  for (std::size_t t = 0; t < kWriters; ++t) {
    writers.emplace_back([&registry, t] {
      Histogram& h = registry.histogram("snap.latency_seconds");
      // Spread observations over several buckets so a torn read would
      // actually disagree with its own count.
      const double values[] = {3e-6, 1.7e-5, 2.1e-4, 1.5e-3};
      for (std::uint64_t i = 0; i < kObsPerWriter; ++i) {
        h.observe(values[(i + t) % 4]);
      }
    });
  }

  std::uint64_t last_count = 0;
  for (int round = 0; round < 200; ++round) {
    const MetricsSnapshot snap = registry.snapshot();
    const auto it = snap.histograms.find("snap.latency_seconds");
    if (it == snap.histograms.end()) continue;  // not registered yet
    const HistogramStats& stats = it->second;

    // The shipped bucket array is the ground truth for this snapshot:
    // its sum IS the count, by construction of a single sequential read.
    ASSERT_EQ(stats.buckets.size(), Histogram::kBuckets);
    std::uint64_t bucket_total = 0;
    for (std::uint64_t b : stats.buckets) bucket_total += b;
    EXPECT_EQ(stats.count, bucket_total);

    // Each bucket is monotone, so the snapshot count is too.
    EXPECT_GE(stats.count, last_count) << "count moved backwards";
    last_count = stats.count;

    // Quantiles computed from the same read are ordered.
    EXPECT_LE(stats.p50, stats.p90);
    EXPECT_LE(stats.p90, stats.p99);
    // All observed values are positive, but a snapshot may catch a
    // writer between its bucket increment and its sum CAS — so the sum
    // is only guaranteed non-negative, not strictly positive.
    EXPECT_GE(stats.sum, 0.0);
    EXPECT_GE(stats.mean, 0.0);
  }
  for (auto& w : writers) w.join();

  const HistogramStats final_stats =
      registry.snapshot().histograms.at("snap.latency_seconds");
  EXPECT_EQ(final_stats.count, kWriters * kObsPerWriter);
  std::uint64_t final_total = 0;
  for (std::uint64_t b : final_stats.buckets) final_total += b;
  EXPECT_EQ(final_total, kWriters * kObsPerWriter);
}

}  // namespace
}  // namespace match::obs
