#include "sim/metrics.hpp"

#include <gtest/gtest.h>

#include "workload/paper_suite.hpp"

namespace match::sim {
namespace {

struct Fixture {
  workload::Instance inst;
  Platform platform;
  CostEvaluator eval;

  explicit Fixture(std::size_t n, std::uint64_t seed)
      : inst(make(n, seed)),
        platform(inst.make_platform()),
        eval(inst.tig, platform) {}

  static workload::Instance make(std::size_t n, std::uint64_t seed) {
    rng::Rng rng(seed);
    workload::PaperParams params;
    params.n = n;
    return workload::make_paper_instance(params, rng);
  }
};

TEST(Metrics, MakespanMatchesEvaluator) {
  Fixture f(10, 1);
  rng::Rng rng(2);
  const Mapping m = Mapping::random_permutation(10, rng);
  const MappingMetrics metrics = compute_metrics(f.eval, m);
  EXPECT_DOUBLE_EQ(metrics.makespan, f.eval.makespan(m));
}

TEST(Metrics, PermutationUsesEveryResourceOnce) {
  Fixture f(12, 3);
  rng::Rng rng(4);
  const Mapping m = Mapping::random_permutation(12, rng);
  const MappingMetrics metrics = compute_metrics(f.eval, m);
  EXPECT_EQ(metrics.used_resources, 12u);
  EXPECT_EQ(metrics.max_tasks_per_resource, 1u);
}

TEST(Metrics, ColocatedMappingHasZeroCut) {
  Fixture f(8, 5);
  const Mapping m(std::vector<graph::NodeId>(8, 0));
  const MappingMetrics metrics = compute_metrics(f.eval, m);
  EXPECT_DOUBLE_EQ(metrics.cut_fraction, 0.0);
  EXPECT_DOUBLE_EQ(metrics.total_comm, 0.0);
  EXPECT_EQ(metrics.used_resources, 1u);
  EXPECT_EQ(metrics.max_tasks_per_resource, 8u);
  // A single loaded resource: imbalance = makespan / (makespan / n) = n.
  EXPECT_NEAR(metrics.imbalance, 8.0, 1e-9);
}

TEST(Metrics, CutFractionIsOneWhenAllEdgesRemote) {
  // Any permutation mapping on a square instance cuts every edge.
  Fixture f(10, 6);
  rng::Rng rng(7);
  const Mapping m = Mapping::random_permutation(10, rng);
  const MappingMetrics metrics = compute_metrics(f.eval, m);
  EXPECT_DOUBLE_EQ(metrics.cut_fraction, 1.0);
  EXPECT_GT(metrics.total_comm, 0.0);
}

TEST(Metrics, UtilizationBoundedByOne) {
  Fixture f(15, 8);
  rng::Rng rng(9);
  const Mapping m = Mapping::random_permutation(15, rng);
  const MappingMetrics metrics = compute_metrics(f.eval, m);
  ASSERT_EQ(metrics.utilization.size(), 15u);
  double max_util = 0.0;
  for (double u : metrics.utilization) {
    EXPECT_GE(u, 0.0);
    EXPECT_LE(u, 1.0 + 1e-12);
    max_util = std::max(max_util, u);
  }
  // The busiest resource defines the makespan: its utilization is 1.
  EXPECT_NEAR(max_util, 1.0, 1e-12);
}

TEST(Metrics, TotalsDecomposeThePerResourceLoads) {
  Fixture f(10, 10);
  rng::Rng rng(11);
  const Mapping m = Mapping::random_permutation(10, rng);
  const MappingMetrics metrics = compute_metrics(f.eval, m);
  const EvalResult ref = f.eval.evaluate(m);
  double compute = 0.0, comm = 0.0;
  for (const auto& load : ref.loads) {
    compute += load.compute;
    comm += load.comm;
  }
  EXPECT_NEAR(metrics.total_compute, compute, 1e-9);
  EXPECT_NEAR(metrics.total_comm, comm, 1e-9);
}

TEST(Metrics, ImbalanceIsOneForPerfectBalance) {
  // Hand-built: 2 identical isolated tasks on 2 identical resources.
  graph::Graph::Builder tb;
  tb.add_node(4.0);
  tb.add_node(4.0);
  const graph::Tig tig(tb.build());
  const std::vector<graph::Edge> redges = {{0, 1, 1.0}};
  const Platform plat(graph::ResourceGraph(
      graph::Graph::from_edges(2, {2.0, 2.0}, redges)));
  const CostEvaluator eval(tig, plat);
  const MappingMetrics metrics = compute_metrics(eval, Mapping::identity(2));
  EXPECT_NEAR(metrics.imbalance, 1.0, 1e-12);
}

}  // namespace
}  // namespace match::sim
