#include "sim/platform.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "rng/rng.hpp"

namespace match::sim {
namespace {

graph::ResourceGraph path_resources() {
  // 0 -5- 1 -7- 2, processing costs 1, 2, 3.
  const std::vector<graph::Edge> edges = {{0, 1, 5.0}, {1, 2, 7.0}};
  return graph::ResourceGraph(
      graph::Graph::from_edges(3, {1.0, 2.0, 3.0}, edges));
}

TEST(Platform, DirectLinksOnCompleteGraph) {
  rng::Rng rng(1);
  const auto rg = graph::ResourceGraph(
      graph::make_complete(6, {1, 5}, {10, 20}, rng));
  const Platform p(rg, CommCostPolicy::kDirectLinks);
  EXPECT_EQ(p.num_resources(), 6u);
  for (graph::NodeId s = 0; s < 6; ++s) {
    EXPECT_DOUBLE_EQ(p.comm_cost(s, s), 0.0);
    EXPECT_DOUBLE_EQ(p.processing_cost(s), rg.processing_cost(s));
    for (graph::NodeId b = 0; b < 6; ++b) {
      if (s == b) continue;
      EXPECT_DOUBLE_EQ(p.comm_cost(s, b), rg.link_cost(s, b));
      EXPECT_DOUBLE_EQ(p.comm_cost(s, b), p.comm_cost(b, s));
    }
  }
}

TEST(Platform, DirectLinksRejectsIncompleteGraph) {
  EXPECT_THROW(Platform(path_resources(), CommCostPolicy::kDirectLinks),
               std::invalid_argument);
}

TEST(Platform, ShortestPathRoutesOverIntermediates) {
  const Platform p(path_resources(), CommCostPolicy::kShortestPath);
  EXPECT_DOUBLE_EQ(p.comm_cost(0, 1), 5.0);
  EXPECT_DOUBLE_EQ(p.comm_cost(1, 2), 7.0);
  EXPECT_DOUBLE_EQ(p.comm_cost(0, 2), 12.0);  // routed through 1
  EXPECT_DOUBLE_EQ(p.comm_cost(2, 0), 12.0);
}

TEST(Platform, ShortestPathUsesCheaperIndirectRoute) {
  // Direct 0-2 link costs 100; the route through 1 costs 12.
  const std::vector<graph::Edge> edges = {
      {0, 1, 5.0}, {1, 2, 7.0}, {0, 2, 100.0}};
  const graph::ResourceGraph rg(graph::Graph::from_edges(3, {}, edges));
  const Platform p(rg, CommCostPolicy::kShortestPath);
  EXPECT_DOUBLE_EQ(p.comm_cost(0, 2), 12.0);
}

TEST(Platform, ShortestPathRejectsDisconnected) {
  const std::vector<graph::Edge> edges = {{0, 1, 1.0}};
  const graph::ResourceGraph rg(graph::Graph::from_edges(3, {}, edges));
  EXPECT_THROW(Platform(rg, CommCostPolicy::kShortestPath),
               std::invalid_argument);
}

TEST(Platform, CommRowMatchesCommCost) {
  rng::Rng rng(2);
  const auto rg = graph::ResourceGraph(
      graph::make_complete(5, {1, 5}, {10, 20}, rng));
  const Platform p(rg);
  for (graph::NodeId s = 0; s < 5; ++s) {
    const double* row = p.comm_row(s);
    for (graph::NodeId b = 0; b < 5; ++b) {
      EXPECT_DOUBLE_EQ(row[b], p.comm_cost(s, b));
    }
  }
}

TEST(Platform, PolicyAccessorReflectsConstruction) {
  const Platform p(path_resources(), CommCostPolicy::kShortestPath);
  EXPECT_EQ(p.policy(), CommCostPolicy::kShortestPath);
}

}  // namespace
}  // namespace match::sim
