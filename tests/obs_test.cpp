// Tests of the obs subsystem (src/obs/): metric exactness under
// concurrent writers, JSONL round-tripping, sink semantics, and the
// pure-observer contract — attaching telemetry to a solver must not
// change what the solver computes.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <sstream>
#include <thread>
#include <vector>

#include "core/ce_driver.hpp"
#include "core/matchalgo.hpp"
#include "core/solver_context.hpp"
#include "obs/events.hpp"
#include "obs/http_exposer.hpp"
#include "obs/metrics.hpp"
#include "obs/prometheus.hpp"
#include "obs/scoped_timer.hpp"
#include "rng/rng.hpp"
#include "sim/evaluator.hpp"
#include "sim/platform.hpp"
#include "workload/paper_suite.hpp"

namespace match::obs {
namespace {

// ---------------------------------------------------------------- metrics

TEST(Counter, ExactUnderConcurrentWriters) {
  MetricsRegistry registry;
  constexpr std::size_t kThreads = 8;
  constexpr std::uint64_t kAddsPerThread = 100000;

  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      Counter& c = registry.counter("test.hits");
      for (std::uint64_t i = 0; i < kAddsPerThread; ++i) c.add();
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(registry.counter("test.hits").value(), kThreads * kAddsPerThread);
  EXPECT_EQ(registry.counter_value("test.hits"), kThreads * kAddsPerThread);
}

TEST(Histogram, ExactCountAndSumUnderConcurrentWriters) {
  MetricsRegistry registry;
  constexpr std::size_t kThreads = 8;
  constexpr std::uint64_t kObsPerThread = 50000;
  // A power of two: repeated addition stays exact in binary floating
  // point, so the CAS-accumulated sum must come out exact too.
  constexpr double kValue = 0.0009765625;  // 2^-10

  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      Histogram& h = registry.histogram("test.latency_seconds");
      for (std::uint64_t i = 0; i < kObsPerThread; ++i) h.observe(kValue);
    });
  }
  for (auto& t : threads) t.join();

  const Histogram& h = registry.histogram("test.latency_seconds");
  EXPECT_EQ(h.count(), kThreads * kObsPerThread);
  EXPECT_DOUBLE_EQ(h.sum(),
                   static_cast<double>(kThreads * kObsPerThread) * kValue);
}

TEST(MetricsRegistry, ReturnsStableReferences) {
  MetricsRegistry registry;
  Counter& a = registry.counter("same.name");
  Counter& b = registry.counter("same.name");
  EXPECT_EQ(&a, &b);
  Histogram& ha = registry.histogram("same.name");  // distinct metric space
  Histogram& hb = registry.histogram("same.name");
  EXPECT_EQ(&ha, &hb);
  EXPECT_NE(static_cast<void*>(&a), static_cast<void*>(&ha));
}

TEST(MetricsRegistry, AbsentCounterReadsZeroWithoutCreating) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.counter_value("never.touched"), 0u);
  EXPECT_TRUE(registry.snapshot().counters.empty());
}

TEST(Gauge, RoundTripsDoubles) {
  MetricsRegistry registry;
  Gauge& g = registry.gauge("test.gamma");
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  g.set(-3.25);
  EXPECT_DOUBLE_EQ(g.value(), -3.25);
  g.set(1e-300);
  EXPECT_DOUBLE_EQ(g.value(), 1e-300);
}

TEST(Histogram, QuantilesReportBucketUpperBounds) {
  Histogram h;
  // 90 fast observations, 10 slow ones: p50 lands in the fast bucket,
  // p99 in the slow one.  Values sit strictly inside their buckets.
  for (int i = 0; i < 90; ++i) h.observe(3e-6);   // bucket (2e-6, 4e-6]
  for (int i = 0; i < 10; ++i) h.observe(1.5e-3);  // bucket (1.024e-3, 2.048e-3]
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 4e-6);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), Histogram::bucket_upper(11));
  const HistogramStats stats = h.stats();
  EXPECT_EQ(stats.count, 100u);
  EXPECT_DOUBLE_EQ(stats.p50, 4e-6);
  EXPECT_NEAR(stats.mean, (90 * 3e-6 + 10 * 1.5e-3) / 100.0, 1e-12);
}

TEST(Histogram, EmptyAndExtremeObservations) {
  Histogram h;
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
  h.observe(0.0);                  // ≤ 1µs → bucket 0
  h.observe(-1.0);                 // negative → bucket 0, not UB
  h.observe(1e9);                  // beyond the top bucket → +inf catch-all
  EXPECT_EQ(h.count(), 3u);
  EXPECT_TRUE(std::isinf(h.quantile(1.0)));
}

TEST(MetricsRegistry, SnapshotCopiesEverything) {
  MetricsRegistry registry;
  registry.counter("c.one").add(5);
  registry.gauge("g.one").set(2.5);
  registry.histogram("h.one").observe(1e-4);
  const MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counters.at("c.one"), 5u);
  EXPECT_DOUBLE_EQ(snap.gauges.at("g.one"), 2.5);
  EXPECT_EQ(snap.histograms.at("h.one").count, 1u);
}

// ----------------------------------------------------------------- events

Event make_iteration_event() {
  // Awkward doubles on purpose: non-terminating binary expansions,
  // subnormal-adjacent magnitudes, negative zero.
  return Event::iteration_event(/*run_id=*/71, "match", /*iteration=*/12,
                                /*gamma=*/1.0 / 3.0, /*iter_best=*/0.1,
                                /*best_so_far=*/1e-300,
                                /*elite_spread=*/-0.0,
                                /*row_max_mean=*/0.9999999999999999,
                                /*entropy=*/5.321928094887363,
                                /*elite_count=*/17);
}

TEST(Jsonl, RoundTripsEveryKindExactly) {
  const std::vector<Event> events = {
      Event::run_start(1, "ce"),
      make_iteration_event(),
      Event::phase_event(2, "match", 3, "draw", 1.0 / 7.0),
      Event::service_event(4, "fastmap-ga", "cache_hit", 2.5e-5),
      Event::fallback_draw(5, "hill_climb"),
      Event::run_end(6, "island", 40, 123.456, 0.75),
  };
  for (const Event& e : events) {
    const Event back = from_jsonl(to_jsonl(e));
    EXPECT_EQ(e, back) << to_jsonl(e);
  }
}

TEST(Jsonl, EscapesHostileStrings) {
  Event e = Event::service_event(1, "so\"lv\\er\n", "tab\there");
  const Event back = from_jsonl(to_jsonl(e));
  EXPECT_EQ(e, back);
}

TEST(Jsonl, ParserRejectsGarbageAndIgnoresUnknownKeys) {
  EXPECT_THROW(from_jsonl("not json"), std::invalid_argument);
  EXPECT_THROW(from_jsonl("{}"), std::invalid_argument);  // no kind
  EXPECT_THROW(from_jsonl("{\"kind\":\"nope\"}"), std::invalid_argument);
  // Unknown keys are skipped (schema growth).
  const Event e =
      from_jsonl("{\"kind\":\"run_start\",\"run\":9,\"future_key\":1.5}");
  EXPECT_EQ(e.kind, EventKind::kRunStart);
  EXPECT_EQ(e.run_id, 9u);
}

TEST(JsonlSink, WritesReadableTrace) {
  std::stringstream stream;
  JsonlSink sink(stream);
  const Event a = make_iteration_event();
  const Event b = Event::run_end(71, "match", 13, 0.5, 0.01);
  sink.emit(a);
  sink.emit(b);
  EXPECT_EQ(sink.emitted(), 2u);

  stream << "\n";  // blank line must be skipped
  const std::vector<Event> back = read_jsonl(stream);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0], a);
  EXPECT_EQ(back[1], b);
}

/// Counts `sync()` calls so a test can observe exactly when a stream
/// gets flushed (an ofstream's buffer size would make that timing-
/// dependent; a counting streambuf makes it deterministic).
class SyncCountingBuf : public std::stringbuf {
 public:
  int syncs = 0;

 protected:
  int sync() override {
    ++syncs;
    return std::stringbuf::sync();
  }
};

TEST(JsonlSink, HotPathNeverFlushesButExplicitFlushDoes) {
  SyncCountingBuf buf;
  std::ostream os(&buf);
  JsonlSink sink(os);
  sink.emit(make_iteration_event());
  sink.emit(Event::run_end(71, "match", 13, 0.5, 0.01));
  // One flush per event would dominate tracing cost; emit must not sync.
  EXPECT_EQ(buf.syncs, 0);
  sink.flush();
  EXPECT_EQ(buf.syncs, 1);
  sink.flush();  // checkpoint flushes are repeatable
  EXPECT_EQ(buf.syncs, 2);
}

TEST(JsonlSink, DestructorFlushesSoShortLivedTracesSurvive) {
  SyncCountingBuf buf;
  {
    std::ostream os(&buf);
    JsonlSink sink(os);
    sink.emit(Event::run_start(1, "match"));
    EXPECT_EQ(buf.syncs, 0);
  }  // sink destroyed here — the trace's last line must be pushed out
  EXPECT_GE(buf.syncs, 1);
  // And the buffered content is intact after the sink is gone.
  const Event back = from_jsonl(buf.str().substr(0, buf.str().find('\n')));
  EXPECT_EQ(back.kind, EventKind::kRunStart);
}

TEST(RingBufferSink, KeepsNewestEventsOldestFirst) {
  RingBufferSink ring(4);
  for (std::uint64_t i = 0; i < 10; ++i) {
    ring.emit(Event::run_start(i, "x"));
  }
  EXPECT_EQ(ring.total(), 10u);
  EXPECT_EQ(ring.dropped(), 6u);
  const std::vector<Event> snap = ring.snapshot();
  ASSERT_EQ(snap.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(snap[i].run_id, 6 + i);
  }
}

TEST(TeeSink, DuplicatesToBothSinks) {
  RingBufferSink a(8), b(8);
  TeeSink tee(&a, &b);
  tee.emit(Event::run_start(1, "x"));
  EXPECT_EQ(a.total(), 1u);
  EXPECT_EQ(b.total(), 1u);
  TeeSink half(nullptr, &b);  // null side is allowed
  half.emit(Event::run_start(2, "x"));
  EXPECT_EQ(b.total(), 2u);
}

TEST(ScopedTimer, RecordsIntoHistogramAndSink) {
  Histogram h;
  RingBufferSink ring(4);
  Event proto = Event::phase_event(3, "match", 0, "draw", 0.0);
  double elapsed = -1.0;
  {
    ScopedTimer timer(&h, &ring, proto);
    elapsed = timer.stop();
    timer.stop();  // idempotent: second stop records nothing new
  }
  EXPECT_GE(elapsed, 0.0);
  EXPECT_EQ(h.count(), 1u);
  const auto snap = ring.snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].phase, "draw");
  EXPECT_DOUBLE_EQ(snap[0].seconds, elapsed);
}

// --------------------------------------------- the pure-observer contract

/// Minimize |x - 7| over 4-bit integers: the ce_driver test problem,
/// small enough that a traced-vs-untraced comparison runs in microseconds.
class BitIntegerProblem {
 public:
  using Sample = std::vector<char>;

  Sample draw(rng::Rng& rng) const {
    Sample s(4);
    for (int i = 0; i < 4; ++i) s[i] = rng.bernoulli(p_[i]) ? 1 : 0;
    return s;
  }

  double cost(const Sample& s) const {
    int v = 0;
    for (int i = 0; i < 4; ++i) v |= s[i] << i;
    return std::abs(v - 7);
  }

  void update(const std::vector<const Sample*>& elites, double zeta) {
    if (elites.empty()) return;
    for (int i = 0; i < 4; ++i) {
      double freq = 0.0;
      for (const Sample* s : elites) freq += (*s)[i];
      p_[i] = zeta * (freq / static_cast<double>(elites.size())) +
              (1.0 - zeta) * p_[i];
    }
  }

  bool degenerate(double eps) const {
    for (double p : p_) {
      if (p > eps && p < 1.0 - eps) return false;
    }
    return true;
  }

 private:
  std::vector<double> p_ = std::vector<double>(4, 0.5);
};

TEST(PureObserver, TracedRunCeIsByteIdenticalToUntraced) {
  core::CeDriverParams params;
  params.sample_size = 32;

  BitIntegerProblem plain_problem;
  rng::Rng plain_rng(42);
  const auto plain =
      core::run_ce(plain_problem, params, match::SolverContext(plain_rng));

  BitIntegerProblem traced_problem;
  rng::Rng traced_rng(42);
  RingBufferSink ring(4096);
  MetricsRegistry metrics;
  match::SolverContext ctx(traced_rng);
  ctx.with_sink(&ring).with_metrics(&metrics).with_run_id(9);
  const auto traced = core::run_ce(traced_problem, params, ctx);

  EXPECT_EQ(plain.best, traced.best);
  EXPECT_EQ(plain.best_cost, traced.best_cost);  // exact, not approximate
  EXPECT_EQ(plain.iterations, traced.iterations);
  ASSERT_EQ(plain.history.size(), traced.history.size());
  for (std::size_t i = 0; i < plain.history.size(); ++i) {
    EXPECT_EQ(plain.history[i].gamma, traced.history[i].gamma);
    EXPECT_EQ(plain.history[i].best_so_far, traced.history[i].best_so_far);
  }
  EXPECT_EQ(metrics.counter_value("ce.iterations"), traced.iterations);
}

TEST(PureObserver, TracedMatchRunMatchesHistoryExactly) {
  rng::Rng setup(3);
  workload::PaperParams wp;
  wp.n = 10;
  const auto inst = workload::make_paper_instance(wp, setup);
  const auto platform = inst.make_platform();
  const sim::CostEvaluator eval(inst.tig, platform);

  core::MatchParams mp;
  mp.max_iterations = 25;

  rng::Rng plain_rng(5);
  const auto plain =
      core::MatchOptimizer(eval, mp).run(match::SolverContext(plain_rng));

  rng::Rng traced_rng(5);
  RingBufferSink ring(4096);
  MetricsRegistry metrics;
  match::SolverContext ctx(traced_rng);
  ctx.with_sink(&ring).with_metrics(&metrics).with_run_id(33);
  const auto traced = core::MatchOptimizer(eval, mp).run(ctx);

  // Identical trajectory...
  EXPECT_EQ(plain.best_mapping, traced.best_mapping);
  EXPECT_EQ(plain.best_cost, traced.best_cost);
  ASSERT_EQ(plain.history.size(), traced.history.size());

  // ...and the emitted events are a faithful transcript of it.
  std::vector<Event> iterations;
  for (const Event& e : ring.snapshot()) {
    if (e.kind == EventKind::kIteration) iterations.push_back(e);
  }
  ASSERT_EQ(iterations.size(), traced.history.size());
  for (std::size_t i = 0; i < iterations.size(); ++i) {
    EXPECT_EQ(iterations[i].run_id, 33u);
    EXPECT_EQ(iterations[i].solver, "match");
    EXPECT_EQ(iterations[i].gamma, traced.history[i].gamma);
    EXPECT_EQ(iterations[i].iter_best, traced.history[i].iter_best);
    EXPECT_EQ(iterations[i].best_so_far, traced.history[i].best_so_far);
    EXPECT_EQ(iterations[i].row_max_mean, traced.history[i].row_max_mean);
    EXPECT_EQ(iterations[i].entropy, traced.history[i].mean_entropy);
    EXPECT_EQ(iterations[i].elite_count, traced.history[i].elite_count);
  }

  // Phase events cover each iteration's draw/cost/sort/update, and the
  // run is bracketed.
  std::size_t run_starts = 0, run_ends = 0, phases = 0;
  for (const Event& e : ring.snapshot()) {
    run_starts += e.kind == EventKind::kRunStart;
    run_ends += e.kind == EventKind::kRunEnd;
    phases += e.kind == EventKind::kPhase;
  }
  EXPECT_EQ(run_starts, 1u);
  EXPECT_EQ(run_ends, 1u);
  EXPECT_EQ(phases, 4 * traced.history.size());
  EXPECT_EQ(metrics.counter_value("match.iterations"), traced.iterations);
  EXPECT_EQ(
      metrics.snapshot().histograms.at("match.phase.draw_seconds").count,
      traced.iterations);
}

TEST(PureObserver, StopBeforeFirstBatchEmitsFallbackDraw) {
  BitIntegerProblem problem;
  core::CeDriverParams params;
  params.sample_size = 16;
  rng::Rng rng(7);
  RingBufferSink ring(64);
  MetricsRegistry metrics;
  match::SolverContext ctx(rng, [] { return true; });
  ctx.with_sink(&ring).with_metrics(&metrics);
  const auto r = core::run_ce(problem, params, ctx);
  EXPECT_TRUE(r.cancelled);
  EXPECT_EQ(r.iterations, 0u);
  std::size_t fallbacks = 0;
  for (const Event& e : ring.snapshot()) {
    fallbacks += e.kind == EventKind::kFallbackDraw;
  }
  EXPECT_EQ(fallbacks, 1u);
  EXPECT_EQ(metrics.counter_value("solver.fallback_draws"), 1u);
}

/// Minimal loopback GET for the scrape-under-load test below.
std::string scrape(std::uint16_t port, const char* path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return {};
  }
  const std::string request = std::string("GET ") + path +
                              " HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n";
  ::send(fd, request.data(), request.size(), 0);
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST(PureObserver, ScrapingAnAttachedExporterNeverPerturbsTheRun) {
  rng::Rng setup(3);
  workload::PaperParams wp;
  wp.n = 12;
  const auto inst = workload::make_paper_instance(wp, setup);
  const auto platform = inst.make_platform();
  const sim::CostEvaluator eval(inst.tig, platform);

  core::MatchParams mp;
  mp.max_iterations = 40;

  // Reference: untraced, unexported.
  rng::Rng plain_rng(5);
  const auto plain =
      core::MatchOptimizer(eval, mp).run(match::SolverContext(plain_rng));

  // Candidate: full telemetry attached — sink, metrics, and a live
  // /metrics endpoint being scraped as fast as possible while the
  // solver runs.
  rng::Rng traced_rng(5);
  RingBufferSink ring(8192);
  MetricsRegistry metrics;
  HttpExposer exposer(
      [&metrics] { return to_prometheus(metrics.snapshot()); });

  std::atomic<bool> done{false};
  std::atomic<std::size_t> scrapes{0};
  std::thread scraper([&] {
    while (!done.load(std::memory_order_relaxed)) {
      if (scrape(exposer.port(), "/metrics").find("200 OK") !=
          std::string::npos) {
        scrapes.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });

  match::SolverContext ctx(traced_rng);
  ctx.with_sink(&ring).with_metrics(&metrics).with_run_id(12);
  const auto traced = core::MatchOptimizer(eval, mp).run(ctx);
  done.store(true, std::memory_order_relaxed);
  scraper.join();

  // One more scrape after the run: the final counters are visible.
  const std::string text = scrape(exposer.port(), "/metrics");
  EXPECT_NE(text.find("match_iterations"), std::string::npos);
  EXPECT_NE(text.find("# TYPE match_phase_draw_seconds histogram"),
            std::string::npos);
  EXPECT_GE(scrapes.load() + 1, 1u);

  // Bit-identical trajectory: the exporter observed, never participated.
  EXPECT_EQ(plain.best_mapping, traced.best_mapping);
  EXPECT_EQ(plain.best_cost, traced.best_cost);
  ASSERT_EQ(plain.history.size(), traced.history.size());
  for (std::size_t i = 0; i < plain.history.size(); ++i) {
    EXPECT_EQ(plain.history[i].gamma, traced.history[i].gamma);
    EXPECT_EQ(plain.history[i].best_so_far, traced.history[i].best_so_far);
  }
}

}  // namespace
}  // namespace match::obs
