#include "workload/trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/matchalgo.hpp"
#include "workload/paper_suite.hpp"

namespace match::workload {
namespace {

Instance make_instance(std::size_t n, std::uint64_t seed) {
  rng::Rng rng(seed);
  PaperParams params;
  params.n = n;
  return make_paper_instance(params, rng);
}

TEST(TraceParams, Validation) {
  TraceParams p;
  p.horizon = 0.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = {};
  p.min_factor = 1.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = {};
  p.max_factor = 1.2;  // < min_factor default 1.5
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = {};
  p.p_recovery = 1.5;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = {};
  EXPECT_NO_THROW(p.validate());
}

TEST(Trace, EventsAreSortedAndWellFormed) {
  rng::Rng rng(1);
  TraceParams params;
  params.num_events = 30;
  const auto events = make_degradation_trace(8, params, rng);
  ASSERT_EQ(events.size(), 30u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_GE(events[i].time, 0.0);
    EXPECT_LT(events[i].time, params.horizon);
    EXPECT_LT(events[i].resource, 8u);
    if (i > 0) {
      EXPECT_GE(events[i].time, events[i - 1].time);
    }
    if (events[i].kind != TraceEvent::Kind::kRecovery) {
      EXPECT_GE(events[i].factor, params.min_factor);
      EXPECT_LE(events[i].factor, params.max_factor);
    }
  }
}

TEST(Trace, RecoveryOnlyAfterSlowdown) {
  rng::Rng rng(2);
  TraceParams params;
  params.num_events = 40;
  params.p_recovery = 0.5;
  const auto events = make_degradation_trace(6, params, rng);
  // Replaying the generation order (pre-sort it's not observable), we at
  // least require: the trace contains some recoveries and some slowdowns
  // with these probabilities, and no recovery names a never-slowed
  // resource *in generation order* — approximated post-sort by requiring
  // each recovered resource to have a slowdown somewhere in the trace.
  bool has_recovery = false;
  for (const auto& ev : events) {
    if (ev.kind == TraceEvent::Kind::kRecovery) {
      has_recovery = true;
      bool slowed_somewhere = false;
      for (const auto& other : events) {
        slowed_somewhere |= other.kind == TraceEvent::Kind::kSlowdown &&
                            other.resource == ev.resource;
      }
      EXPECT_TRUE(slowed_somewhere);
    }
  }
  EXPECT_TRUE(has_recovery);
}

TEST(Trace, DeterministicForFixedSeed) {
  TraceParams params;
  rng::Rng r1(3), r2(3);
  const auto a = make_degradation_trace(10, params, r1);
  const auto b = make_degradation_trace(10, params, r2);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].time, b[i].time);
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_EQ(a[i].resource, b[i].resource);
  }
}

TEST(Trace, PolicyNames) {
  EXPECT_STREQ(to_string(ReplayPolicy::kStatic), "static");
  EXPECT_STREQ(to_string(ReplayPolicy::kWarmRematch), "warm-rematch");
  EXPECT_STREQ(to_string(ReplayPolicy::kColdRestart), "cold-restart");
}

TEST(Replay, TimelineHasOneEntryPerEvent) {
  const auto inst = make_instance(10, 4);
  rng::Rng trace_rng(5);
  TraceParams tp;
  tp.num_events = 6;
  const auto events = make_degradation_trace(10, tp, trace_rng);

  rng::Rng rng(6);
  const auto r = replay_trace(inst.tig, inst.resources, events,
                              ReplayPolicy::kStatic, rng);
  EXPECT_EQ(r.et_timeline.size(), 6u);
  EXPECT_EQ(r.remaps, 0u);
  EXPECT_GT(r.mean_et, 0.0);
}

TEST(Replay, ReactivePoliciesNeverLoseToStatic) {
  const auto inst = make_instance(12, 7);
  rng::Rng trace_rng(8);
  TraceParams tp;
  tp.num_events = 8;
  tp.p_recovery = 0.0;  // monotone degradation: reacting must help
  const auto events = make_degradation_trace(12, tp, trace_rng);

  rng::Rng r1(9), r2(9), r3(9);
  const auto stat = replay_trace(inst.tig, inst.resources, events,
                                 ReplayPolicy::kStatic, r1);
  const auto warm = replay_trace(inst.tig, inst.resources, events,
                                 ReplayPolicy::kWarmRematch, r2);
  const auto cold = replay_trace(inst.tig, inst.resources, events,
                                 ReplayPolicy::kColdRestart, r3);

  // Same seed -> identical initial mapping, so per-event comparisons are
  // meaningful.  Warm re-mapping never regresses by construction.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_LE(warm.et_timeline[i], stat.et_timeline[i] + 1e-9) << i;
  }
  EXPECT_LE(warm.mean_et, stat.mean_et + 1e-9);
  EXPECT_EQ(warm.remaps, events.size());
  EXPECT_EQ(cold.remaps, events.size());
  // Cold restarts spend far more mapping time than warm ones.
  EXPECT_GT(cold.total_mapping_seconds, warm.total_mapping_seconds * 0.5);
}

TEST(Replay, RecoveryRestoresBaselineCosts) {
  const auto inst = make_instance(8, 10);
  // Hand-built trace: slow resource 2 by 4x, then recover it.
  std::vector<TraceEvent> events(2);
  events[0] = {10.0, TraceEvent::Kind::kSlowdown, 2, 4.0};
  events[1] = {20.0, TraceEvent::Kind::kRecovery, 2, 1.0};

  rng::Rng rng(11);
  const auto r = replay_trace(inst.tig, inst.resources, events,
                              ReplayPolicy::kStatic, rng);
  // After recovery the platform is back to baseline, so the static
  // mapping's ET returns to its healthy value.
  sim::Platform healthy(inst.resources);
  sim::CostEvaluator eval(inst.tig, healthy);
  rng::Rng map_rng(11);
  const auto initial = match::core::MatchOptimizer(eval).run(match::SolverContext(map_rng));
  EXPECT_NEAR(r.et_timeline[1], eval.makespan(initial.best_mapping), 1e-9);
  EXPECT_GE(r.et_timeline[0], r.et_timeline[1] - 1e-9);
}

TEST(PoissonArrivals, SortedSizedAndSeedDeterministic) {
  ArrivalParams params;
  params.count = 64;
  params.rate = 100.0;
  rng::Rng r1(5), r2(5);
  const auto a = make_poisson_arrivals(params, r1);
  const auto b = make_poisson_arrivals(params, r2);
  ASSERT_EQ(a.size(), 64u);
  EXPECT_EQ(a, b);
  EXPECT_GT(a.front(), 0.0);
  EXPECT_TRUE(std::is_sorted(a.begin(), a.end()));
}

TEST(PoissonArrivals, RateValidationAndMeanSpacing) {
  ArrivalParams params;
  params.rate = 0.0;
  rng::Rng rng(6);
  EXPECT_THROW(make_poisson_arrivals(params, rng), std::invalid_argument);

  params.rate = 1000.0;
  params.count = 4000;
  const auto arrivals = make_poisson_arrivals(params, rng);
  // Mean inter-arrival 1/rate; the sum of n exponentials concentrates
  // tightly around n/rate.
  EXPECT_NEAR(arrivals.back(), 4.0, 0.5);
}

}  // namespace
}  // namespace match::workload
