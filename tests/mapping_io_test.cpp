#include "sim/mapping_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <sstream>

#include "rng/rng.hpp"

namespace match::sim {
namespace {

TEST(MappingIo, RoundTripsPermutation) {
  rng::Rng rng(1);
  const Mapping m = Mapping::random_permutation(12, rng);
  std::stringstream ss;
  write_mapping(ss, m);
  EXPECT_EQ(read_mapping(ss), m);
}

TEST(MappingIo, RoundTripsManyToOne) {
  const Mapping m(std::vector<graph::NodeId>{0, 0, 2, 2, 1});
  std::stringstream ss;
  write_mapping(ss, m);
  EXPECT_EQ(read_mapping(ss), m);
}

TEST(MappingIo, ToleratesCommentsAndReordering) {
  std::stringstream ss(
      "# a mapping\n"
      "tasks 3\n"
      "map 2 0\n"
      "map 0 1\n"
      "map 1 2\n");
  const Mapping m = read_mapping(ss);
  EXPECT_EQ(m.resource_of(0), 1u);
  EXPECT_EQ(m.resource_of(1), 2u);
  EXPECT_EQ(m.resource_of(2), 0u);
}

TEST(MappingIo, RejectsMissingHeader) {
  std::stringstream ss("map 0 1\n");
  EXPECT_THROW(read_mapping(ss), std::runtime_error);
}

TEST(MappingIo, RejectsIncompleteAssignment) {
  std::stringstream ss("tasks 3\nmap 0 1\nmap 1 2\n");
  EXPECT_THROW(read_mapping(ss), std::runtime_error);
}

TEST(MappingIo, RejectsDuplicateAssignment) {
  std::stringstream ss("tasks 2\nmap 0 1\nmap 0 0\nmap 1 1\n");
  EXPECT_THROW(read_mapping(ss), std::runtime_error);
}

TEST(MappingIo, RejectsOutOfRangeTask) {
  std::stringstream ss("tasks 2\nmap 5 0\n");
  EXPECT_THROW(read_mapping(ss), std::runtime_error);
}

TEST(MappingIo, RejectsUnknownKeyword) {
  std::stringstream ss("tasks 1\nassign 0 0\n");
  EXPECT_THROW(read_mapping(ss), std::runtime_error);
}

TEST(MappingIo, FileRoundTrip) {
  rng::Rng rng(2);
  const Mapping m = Mapping::random_permutation(9, rng);
  const std::string path =
      (std::filesystem::temp_directory_path() / "match_mapping_test.txt")
          .string();
  save_mapping(path, m);
  EXPECT_EQ(load_mapping(path), m);
  std::remove(path.c_str());
}

TEST(MappingIo, LoadMissingFileThrows) {
  EXPECT_THROW(load_mapping("/no/such/mapping.txt"), std::runtime_error);
}

}  // namespace
}  // namespace match::sim
