#include "core/stochastic_matrix.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace match::core {
namespace {

TEST(StochasticMatrix, UniformHasEqualEntries) {
  const auto m = StochasticMatrix::uniform(4, 4);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      EXPECT_DOUBLE_EQ(m(i, j), 0.25);
    }
  }
  EXPECT_TRUE(m.is_row_stochastic());
}

TEST(StochasticMatrix, UniformRejectsEmpty) {
  EXPECT_THROW(StochasticMatrix::uniform(0, 3), std::invalid_argument);
  EXPECT_THROW(StochasticMatrix::uniform(3, 0), std::invalid_argument);
}

TEST(StochasticMatrix, FromValuesValidatesRows) {
  EXPECT_NO_THROW(StochasticMatrix::from_values(2, 2, {0.5, 0.5, 1.0, 0.0}));
  EXPECT_THROW(StochasticMatrix::from_values(2, 2, {0.5, 0.6, 1.0, 0.0}),
               std::invalid_argument);
  EXPECT_THROW(StochasticMatrix::from_values(2, 2, {0.5, 0.5, 1.0}),
               std::invalid_argument);
  EXPECT_THROW(StochasticMatrix::from_values(2, 2, {1.5, -0.5, 1.0, 0.0}),
               std::invalid_argument);
}

TEST(StochasticMatrix, RowMaxAndArgmax) {
  const auto m =
      StochasticMatrix::from_values(2, 3, {0.2, 0.5, 0.3, 0.7, 0.1, 0.2});
  EXPECT_DOUBLE_EQ(m.row_max(0), 0.5);
  EXPECT_EQ(m.row_argmax(0), 1u);
  EXPECT_DOUBLE_EQ(m.row_max(1), 0.7);
  EXPECT_EQ(m.row_argmax(1), 0u);
}

TEST(StochasticMatrix, EntropyBounds) {
  const auto uniform = StochasticMatrix::uniform(3, 8);
  EXPECT_NEAR(uniform.row_entropy(0), 3.0, 1e-12);  // log2(8)
  EXPECT_NEAR(uniform.mean_entropy(), 3.0, 1e-12);

  const auto degenerate =
      StochasticMatrix::from_values(1, 4, {0.0, 1.0, 0.0, 0.0});
  EXPECT_DOUBLE_EQ(degenerate.row_entropy(0), 0.0);
}

TEST(StochasticMatrix, DegeneracyDetection) {
  const auto degenerate =
      StochasticMatrix::from_values(2, 2, {1.0, 0.0, 0.0, 1.0});
  EXPECT_TRUE(degenerate.is_degenerate(1e-6));
  EXPECT_DOUBLE_EQ(degenerate.min_row_max(), 1.0);

  const auto half = StochasticMatrix::uniform(2, 2);
  EXPECT_FALSE(half.is_degenerate(1e-3));
  EXPECT_DOUBLE_EQ(half.min_row_max(), 0.5);

  const auto nearly =
      StochasticMatrix::from_values(1, 2, {0.999, 0.001});
  EXPECT_TRUE(nearly.is_degenerate(1e-2));
  EXPECT_FALSE(nearly.is_degenerate(1e-4));
}

TEST(StochasticMatrix, ArgmaxAssignment) {
  const auto m = StochasticMatrix::from_values(
      3, 3, {0.1, 0.8, 0.1, 0.9, 0.05, 0.05, 0.2, 0.2, 0.6});
  const auto a = m.argmax_assignment();
  ASSERT_EQ(a.size(), 3u);
  EXPECT_EQ(a[0], 1u);
  EXPECT_EQ(a[1], 0u);
  EXPECT_EQ(a[2], 2u);
}

TEST(StochasticMatrix, BlendInterpolates) {
  auto p = StochasticMatrix::uniform(1, 2);  // {0.5, 0.5}
  const auto q = StochasticMatrix::from_values(1, 2, {1.0, 0.0});
  p.blend_from(q, 0.3);
  EXPECT_NEAR(p(0, 0), 0.3 * 1.0 + 0.7 * 0.5, 1e-12);
  EXPECT_NEAR(p(0, 1), 0.3 * 0.0 + 0.7 * 0.5, 1e-12);
  EXPECT_TRUE(p.is_row_stochastic());
}

TEST(StochasticMatrix, BlendFullReplacesAndZeroKeeps) {
  auto p = StochasticMatrix::uniform(1, 2);
  const auto q = StochasticMatrix::from_values(1, 2, {1.0, 0.0});
  auto p_full = p;
  p_full.blend_from(q, 1.0);
  EXPECT_DOUBLE_EQ(p_full(0, 0), 1.0);
  // zeta must be > 0 in MatchParams, but blend itself accepts 0.
  auto p_zero = p;
  p_zero.blend_from(q, 0.0);
  EXPECT_DOUBLE_EQ(p_zero(0, 0), 0.5);
}

TEST(StochasticMatrix, BlendRejectsShapeMismatchAndBadZeta) {
  auto p = StochasticMatrix::uniform(2, 2);
  const auto q = StochasticMatrix::uniform(2, 3);
  EXPECT_THROW(p.blend_from(q, 0.5), std::invalid_argument);
  const auto q2 = StochasticMatrix::uniform(2, 2);
  EXPECT_THROW(p.blend_from(q2, 1.5), std::invalid_argument);
}

TEST(StochasticMatrix, BlendPreservesRowStochasticity) {
  auto p = StochasticMatrix::uniform(3, 3);
  const auto q = StochasticMatrix::from_values(
      3, 3, {1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0});
  for (int k = 0; k < 20; ++k) {
    p.blend_from(q, 0.3);
    EXPECT_TRUE(p.is_row_stochastic());
  }
  // Repeated blending converges to the target.
  EXPECT_GT(p(0, 0), 0.99);
}

TEST(StochasticMatrix, RowSpansExposeData) {
  auto p = StochasticMatrix::uniform(2, 2);
  auto row = p.row_mut(0);
  row[0] = 0.9;
  row[1] = 0.1;
  EXPECT_DOUBLE_EQ(p(0, 0), 0.9);
  EXPECT_DOUBLE_EQ(p.row(0)[1], 0.1);
}

}  // namespace
}  // namespace match::core
