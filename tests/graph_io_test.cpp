#include "graph/io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <sstream>

#include "graph/generators.hpp"
#include "rng/rng.hpp"

namespace match::graph {
namespace {

TEST(GraphIo, RoundTripsSmallGraph) {
  const std::vector<Edge> edges = {{0, 1, 1.25}, {1, 2, 2.5}};
  const Graph g = Graph::from_edges(3, {1.0, 2.0, 3.0}, edges);
  std::stringstream ss;
  write_graph(ss, g);
  const Graph back = read_graph(ss);
  EXPECT_EQ(g, back);
}

class RoundTripTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RoundTripTest, RandomGraphsRoundTripExactly) {
  rng::Rng rng(GetParam());
  const Graph g = make_gnp(30, 0.3, {1, 10}, {50, 100}, rng);
  std::stringstream ss;
  write_graph(ss, g);
  EXPECT_EQ(g, read_graph(ss));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundTripTest,
                         ::testing::Values(1ull, 2ull, 3ull, 4ull, 5ull));

TEST(GraphIo, ToleratesCommentsAndBlankLines) {
  std::stringstream ss(
      "# a comment\n"
      "nodes 2\n"
      "\n"
      "node 0 4.0\n"
      "edge 0 1 9.0\n");
  const Graph g = read_graph(ss);
  EXPECT_EQ(g.num_nodes(), 2u);
  EXPECT_DOUBLE_EQ(g.node_weight(0), 4.0);
  EXPECT_DOUBLE_EQ(g.node_weight(1), 1.0);  // defaulted
  EXPECT_DOUBLE_EQ(g.edge_weight(0, 1), 9.0);
}

TEST(GraphIo, RejectsMissingNodesHeader) {
  std::stringstream ss("edge 0 1 1.0\n");
  EXPECT_THROW(read_graph(ss), std::runtime_error);
}

TEST(GraphIo, RejectsUnknownKeyword) {
  std::stringstream ss("nodes 2\nfoo 1 2\n");
  EXPECT_THROW(read_graph(ss), std::runtime_error);
}

TEST(GraphIo, RejectsOutOfRangeIds) {
  std::stringstream ss("nodes 2\nedge 0 7 1.0\n");
  EXPECT_THROW(read_graph(ss), std::runtime_error);
  std::stringstream ss2("nodes 2\nnode 5 1.0\n");
  EXPECT_THROW(read_graph(ss2), std::runtime_error);
}

TEST(GraphIo, RejectsMalformedLines) {
  std::stringstream ss("nodes 2\nedge 0 1\n");  // missing weight
  EXPECT_THROW(read_graph(ss), std::runtime_error);
}

TEST(GraphIo, SaveAndLoadFile) {
  rng::Rng rng(6);
  const Graph g = make_complete(8, {1, 5}, {10, 20}, rng);
  const std::string path =
      (std::filesystem::temp_directory_path() / "match_io_test.graph").string();
  save_graph(path, g);
  const Graph back = load_graph(path);
  EXPECT_EQ(g, back);
  std::remove(path.c_str());
}

TEST(GraphIo, LoadMissingFileThrows) {
  EXPECT_THROW(load_graph("/nonexistent/definitely/missing.graph"),
               std::runtime_error);
}

TEST(GraphIo, DotExportContainsNodesAndEdges) {
  const std::vector<Edge> edges = {{0, 1, 3.0}};
  const Graph g = Graph::from_edges(2, {1.0, 2.0}, edges);
  std::stringstream ss;
  write_dot(ss, g, "Demo");
  const std::string dot = ss.str();
  EXPECT_NE(dot.find("graph Demo"), std::string::npos);
  EXPECT_NE(dot.find("n0 -- n1"), std::string::npos);
  EXPECT_NE(dot.find("label=\"3\""), std::string::npos);
}

}  // namespace
}  // namespace match::graph
