#include "core/tsp.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace match::core {
namespace {

/// 4 cities on a unit square: optimal tour is the perimeter, length 4.
TspProblem square_instance() {
  // coordinates: (0,0) (1,0) (1,1) (0,1)
  const double s2 = std::sqrt(2.0);
  std::vector<double> d = {
      0, 1, s2, 1,  //
      1, 0, 1, s2,  //
      s2, 1, 0, 1,  //
      1, s2, 1, 0,  //
  };
  return TspProblem(4, std::move(d));
}

TEST(Tsp, RejectsBadConstruction) {
  EXPECT_THROW(TspProblem(2, std::vector<double>(4, 1.0)),
               std::invalid_argument);
  EXPECT_THROW(TspProblem(3, std::vector<double>(8, 1.0)),
               std::invalid_argument);
  std::vector<double> with_zero(9, 1.0);
  with_zero[1] = 0.0;  // d(0,1) = 0
  EXPECT_THROW(TspProblem(3, std::move(with_zero)), std::invalid_argument);
}

TEST(Tsp, CostOfKnownTour) {
  const auto tsp = square_instance();
  EXPECT_DOUBLE_EQ(tsp.cost({0, 1, 2, 3}), 4.0);                  // perimeter
  EXPECT_DOUBLE_EQ(tsp.cost({0, 2, 1, 3}), 2.0 + 2.0 * std::sqrt(2.0));
}

TEST(Tsp, BruteForceFindsPerimeter) {
  const auto tsp = square_instance();
  EXPECT_DOUBLE_EQ(tsp.brute_force_optimum(), 4.0);
}

TEST(Tsp, BruteForceRejectsLargeInstances) {
  rng::Rng rng(1);
  const auto tsp = TspProblem::random_euclidean(15, rng);
  EXPECT_THROW(tsp.brute_force_optimum(), std::invalid_argument);
}

TEST(Tsp, DrawProducesValidTours) {
  rng::Rng rng(2);
  const auto tsp = TspProblem::random_euclidean(12, rng);
  for (int i = 0; i < 200; ++i) {
    EXPECT_TRUE(tsp.is_valid_tour(tsp.draw(rng)));
  }
}

TEST(Tsp, NearestNeighborIsValidAndReasonable) {
  rng::Rng rng(3);
  const auto tsp = TspProblem::random_euclidean(20, rng);
  const auto nn = tsp.nearest_neighbor_tour();
  EXPECT_TRUE(tsp.is_valid_tour(nn));
  // NN beats the average random tour.
  double random_mean = 0.0;
  for (int i = 0; i < 100; ++i) random_mean += tsp.cost(tsp.draw(rng));
  random_mean /= 100.0;
  EXPECT_LT(tsp.cost(nn), random_mean);
}

TEST(Tsp, TwoOptImprovesOrMatches) {
  rng::Rng rng(4);
  const auto tsp = TspProblem::random_euclidean(25, rng);
  const auto nn = tsp.nearest_neighbor_tour();
  const auto improved = tsp.two_opt(nn);
  EXPECT_TRUE(tsp.is_valid_tour(improved));
  EXPECT_LE(tsp.cost(improved), tsp.cost(nn) + 1e-12);
}

TEST(Tsp, TwoOptReachesLocalOptimum) {
  rng::Rng rng(5);
  const auto tsp = TspProblem::random_euclidean(12, rng);
  auto tour = tsp.two_opt(tsp.nearest_neighbor_tour());
  const double cost = tsp.cost(tour);
  // No single 2-exchange improves further.
  for (std::size_t i = 0; i + 1 < tour.size(); ++i) {
    for (std::size_t j = i + 2; j < tour.size(); ++j) {
      if (i == 0 && j == tour.size() - 1) continue;
      auto trial = tour;
      std::reverse(trial.begin() + static_cast<std::ptrdiff_t>(i + 1),
                   trial.begin() + static_cast<std::ptrdiff_t>(j + 1));
      EXPECT_GE(tsp.cost(trial), cost - 1e-9);
    }
  }
}

TEST(Tsp, TwoOptRejectsInvalidTour) {
  const auto tsp = square_instance();
  EXPECT_THROW(tsp.two_opt({0, 1, 1, 2}), std::invalid_argument);
  EXPECT_THROW(tsp.two_opt({1, 0, 2, 3}), std::invalid_argument);  // not from 0
}

TEST(Tsp, CeFindsOptimumOnSquare) {
  auto tsp = square_instance();
  CeDriverParams params;
  params.sample_size = 100;
  rng::Rng rng(6);
  const auto r = run_ce(tsp, params, match::SolverContext(rng));
  EXPECT_DOUBLE_EQ(r.best_cost, 4.0);
}

TEST(Tsp, CeMatchesBruteForceOnSmallEuclidean) {
  for (std::uint64_t seed : {7ull, 8ull}) {
    rng::Rng gen(seed);
    auto tsp = TspProblem::random_euclidean(9, gen);
    const double optimum = tsp.brute_force_optimum();

    double best = std::numeric_limits<double>::infinity();
    for (std::uint64_t restart = 0; restart < 3; ++restart) {
      auto fresh = tsp;  // reset transition matrix
      CeDriverParams params;
      params.sample_size = 400;
      params.rho = 0.05;
      rng::Rng rng(10 * seed + restart);
      best = std::min(best, run_ce(fresh, params, match::SolverContext(rng)).best_cost);
    }
    EXPECT_NEAR(best, optimum, 1e-9) << "seed " << seed;
  }
}

TEST(Tsp, CeBeatsRandomOnMediumInstance) {
  rng::Rng gen(9);
  auto tsp = TspProblem::random_euclidean(30, gen);
  CeDriverParams params;
  params.sample_size = 500;
  params.zeta = 0.7;
  rng::Rng rng(10);
  const auto r = run_ce(tsp, params, match::SolverContext(rng));

  rng::Rng rrng(10);
  double random_best = std::numeric_limits<double>::infinity();
  // Random baseline: uniform random tours with the same sample budget.
  {
    std::vector<graph::NodeId> tour(30);
    for (graph::NodeId c = 0; c < 30; ++c) tour[c] = c;
    const std::size_t budget = r.iterations * params.sample_size;
    for (std::size_t i = 0; i < budget; ++i) {
      std::span<graph::NodeId> tail(tour.data() + 1, 29);
      rrng.shuffle(tail);
      random_best = std::min(random_best, tsp.cost(tour));
    }
  }
  EXPECT_LT(r.best_cost, random_best);
}

TEST(Tsp, UpdateSharpensTransitionMatrix) {
  rng::Rng gen(11);
  auto tsp = TspProblem::random_euclidean(10, gen);
  const double before = tsp.transition_matrix().mean_entropy();
  CeDriverParams params;
  params.sample_size = 200;
  params.max_iterations = 15;
  rng::Rng rng(12);
  run_ce(tsp, params, match::SolverContext(rng));
  EXPECT_LT(tsp.transition_matrix().mean_entropy(), before);
}

}  // namespace
}  // namespace match::core
