#include "rng/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "rng/splitmix64.hpp"
#include "rng/xoshiro256ss.hpp"

namespace match::rng {
namespace {

TEST(SplitMix64, MatchesReferenceVector) {
  // Reference outputs for seed 1234567 from the public-domain reference
  // implementation.
  SplitMix64 sm(1234567);
  EXPECT_EQ(sm.next(), 6457827717110365317ULL);
  EXPECT_EQ(sm.next(), 3203168211198807973ULL);
  EXPECT_EQ(sm.next(), 9817491932198370423ULL);
}

TEST(SplitMix64, DeterministicPerSeed) {
  SplitMix64 a(42), b(42), c(43);
  EXPECT_EQ(a.next(), b.next());
  EXPECT_NE(a.next(), c.next());
}

TEST(Xoshiro256ss, DeterministicPerSeed) {
  Xoshiro256ss a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro256ss, MatchesReferenceVector) {
  // State {1, 2, 3, 4} drives the canonical reference sequence.
  Xoshiro256ss gen(std::array<std::uint64_t, 4>{1, 2, 3, 4});
  EXPECT_EQ(gen.next(), 11520ULL);
  EXPECT_EQ(gen.next(), 0ULL);
  EXPECT_EQ(gen.next(), 1509978240ULL);
  EXPECT_EQ(gen.next(), 1215971899390074240ULL);
}

TEST(Xoshiro256ss, JumpChangesStateButStaysDeterministic) {
  Xoshiro256ss a(99);
  Xoshiro256ss b(99);
  b.jump();
  EXPECT_NE(a.state(), b.state());
  Xoshiro256ss c(99);
  c.jump();
  EXPECT_EQ(b.state(), c.state());
}

TEST(Xoshiro256ss, SplitStreamsDiffer) {
  Xoshiro256ss base(5);
  Xoshiro256ss s1 = base.split(1);
  Xoshiro256ss s2 = base.split(2);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 64; ++i) {
    seen.insert(s1.next());
    seen.insert(s2.next());
  }
  // Two independent streams should not collide in 128 draws.
  EXPECT_EQ(seen.size(), 128u);
}

TEST(Rng, BelowStaysInBounds) {
  Rng rng(1);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.below(bound), bound);
    }
  }
}

TEST(Rng, BelowOneIsAlwaysZero) {
  Rng rng(2);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng rng(3);
  constexpr std::uint64_t kBound = 10;
  constexpr int kDraws = 100000;
  std::vector<int> histogram(kBound, 0);
  for (int i = 0; i < kDraws; ++i) ++histogram[rng.below(kBound)];
  for (int count : histogram) {
    EXPECT_NEAR(count, kDraws / kBound, 0.05 * kDraws / kBound);
  }
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  Rng rng(4);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformIntSingletonRange) {
  Rng rng(5);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(rng.uniform_int(7, 7), 7);
}

TEST(Rng, UniformRealInHalfOpenInterval) {
  Rng rng(6);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRealMeanIsCentered) {
  Rng rng(7);
  double sum = 0.0;
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / kDraws, 0.5, 0.005);
}

TEST(Rng, BernoulliRespectsProbability) {
  Rng rng(8);
  constexpr int kDraws = 100000;
  int hits = 0;
  for (int i = 0; i < kDraws; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.3, 0.01);
}

TEST(Rng, BernoulliDegenerateProbabilities) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, WeightedPickProportions) {
  Rng rng(10);
  const std::vector<double> weights = {1.0, 2.0, 3.0, 4.0};
  std::vector<int> histogram(4, 0);
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++histogram[rng.weighted_pick(weights)];
  for (std::size_t k = 0; k < weights.size(); ++k) {
    const double expected = weights[k] / 10.0;
    EXPECT_NEAR(static_cast<double>(histogram[k]) / kDraws, expected, 0.01);
  }
}

TEST(Rng, WeightedPickSkipsZeroWeights) {
  Rng rng(11);
  const std::vector<double> weights = {0.0, 1.0, 0.0};
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(rng.weighted_pick(weights), 1u);
  }
}

TEST(Rng, WeightedPickSingleElement) {
  Rng rng(12);
  const std::vector<double> weights = {5.0};
  EXPECT_EQ(rng.weighted_pick(weights), 0u);
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(13);
  std::vector<int> v = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  auto shuffled = v;
  rng.shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, ShuffleActuallyShuffles) {
  Rng rng(14);
  std::vector<int> v(50);
  for (int i = 0; i < 50; ++i) v[i] = i;
  const auto original = v;
  rng.shuffle(v);
  EXPECT_NE(v, original);  // probability of identity is ~1/50!
}

TEST(Rng, PermutationIsValid) {
  Rng rng(15);
  for (std::size_t n : {1u, 2u, 5u, 64u}) {
    auto p = rng.permutation(n);
    std::sort(p.begin(), p.end());
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(p[i], i);
  }
}

TEST(Rng, MakeStreamsAreIndependentAndReproducible) {
  Rng base(16);
  auto streams_a = base.make_streams(4);
  auto streams_b = base.make_streams(4);
  ASSERT_EQ(streams_a.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    // make_streams does not consume base state: second call matches.
    EXPECT_EQ(streams_a[i].bits(), streams_b[i].bits());
  }
  std::set<std::uint64_t> firsts;
  auto streams_c = base.make_streams(8);
  for (auto& s : streams_c) firsts.insert(s.bits());
  EXPECT_EQ(firsts.size(), 8u);
}

class ShuffleUniformityTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ShuffleUniformityTest, FirstPositionIsUniform) {
  // Property: after shuffling [0..3], each value lands in slot 0 with
  // probability 1/4, for a range of seeds.
  Rng rng(GetParam());
  std::vector<int> histogram(4, 0);
  constexpr int kDraws = 40000;
  for (int i = 0; i < kDraws; ++i) {
    std::vector<int> v = {0, 1, 2, 3};
    rng.shuffle(v);
    ++histogram[v[0]];
  }
  for (int count : histogram) {
    EXPECT_NEAR(count, kDraws / 4, 0.06 * kDraws / 4);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShuffleUniformityTest,
                         ::testing::Values(1ull, 99ull, 123456789ull));

}  // namespace
}  // namespace match::rng
