#include "core/island.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "workload/paper_suite.hpp"

namespace match::core {
namespace {

struct Fixture {
  workload::Instance inst;
  sim::Platform platform;
  sim::CostEvaluator eval;

  explicit Fixture(std::size_t n, std::uint64_t seed)
      : inst(make(n, seed)),
        platform(inst.make_platform()),
        eval(inst.tig, platform) {}

  static workload::Instance make(std::size_t n, std::uint64_t seed) {
    rng::Rng rng(seed);
    workload::PaperParams params;
    params.n = n;
    return workload::make_paper_instance(params, rng);
  }
};

double brute_force_optimum(const sim::CostEvaluator& eval) {
  const std::size_t n = eval.num_tasks();
  std::vector<graph::NodeId> perm(n);
  std::iota(perm.begin(), perm.end(), graph::NodeId{0});
  double best = std::numeric_limits<double>::infinity();
  do {
    best = std::min(best, eval.makespan(perm));
  } while (std::next_permutation(perm.begin(), perm.end()));
  return best;
}

TEST(IslandParams, Validation) {
  IslandParams p;
  p.islands = 0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = {};
  p.migration = 1.5;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = {};
  p.epoch_iterations = 0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = {};
  p.rho = 0.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = {};
  EXPECT_NO_THROW(p.validate());
}

TEST(Island, FindsOptimumOnTinyInstance) {
  Fixture f(6, 1);
  const double optimum = brute_force_optimum(f.eval);
  IslandMatchOptimizer opt(f.eval);
  rng::Rng rng(2);
  const IslandResult r = opt.run(match::SolverContext(rng));
  EXPECT_TRUE(r.best_mapping.is_permutation());
  EXPECT_NEAR(r.best_cost, optimum, 1e-9);
}

TEST(Island, HistoryIsMonotone) {
  Fixture f(10, 3);
  IslandMatchOptimizer opt(f.eval);
  rng::Rng rng(4);
  const IslandResult r = opt.run(match::SolverContext(rng));
  ASSERT_FALSE(r.history.empty());
  for (std::size_t i = 1; i < r.history.size(); ++i) {
    EXPECT_LE(r.history[i], r.history[i - 1]);
  }
  EXPECT_DOUBLE_EQ(r.history.back(), r.best_cost);
  EXPECT_EQ(r.epochs, r.history.size());
}

TEST(Island, SingleIslandStillWorks) {
  Fixture f(8, 5);
  IslandParams params;
  params.islands = 1;
  IslandMatchOptimizer opt(f.eval, params);
  rng::Rng rng(6);
  const IslandResult r = opt.run(match::SolverContext(rng));
  EXPECT_TRUE(r.best_mapping.is_permutation());
}

TEST(Island, ZeroMigrationIsIndependentRestarts) {
  Fixture f(8, 7);
  IslandParams params;
  params.islands = 3;
  params.migration = 0.0;
  IslandMatchOptimizer opt(f.eval, params);
  rng::Rng rng(8);
  const IslandResult r = opt.run(match::SolverContext(rng));
  EXPECT_TRUE(r.best_mapping.is_permutation());
  EXPECT_GT(r.best_cost, 0.0);
}

TEST(Island, PerIslandBatchSplitsPaperBudget) {
  Fixture f(10, 9);
  IslandParams params;
  params.islands = 4;
  IslandMatchOptimizer opt(f.eval, params);
  // 2 * 10 * 10 / 4 = 50 samples per island.
  EXPECT_EQ(opt.per_island_samples(), 50u);
}

TEST(Island, DeterministicForFixedSeed) {
  Fixture f(9, 10);
  IslandMatchOptimizer opt(f.eval);
  rng::Rng r1(11), r2(11);
  const IslandResult a = opt.run(match::SolverContext(r1));
  const IslandResult b = opt.run(match::SolverContext(r2));
  EXPECT_EQ(a.best_mapping, b.best_mapping);
  EXPECT_EQ(a.history, b.history);
}

TEST(Island, DeterministicAcrossParallelModes) {
  Fixture f(9, 12);
  IslandParams serial;
  serial.parallel = false;
  IslandParams par;
  par.parallel = true;
  rng::Rng r1(13), r2(13);
  const auto a = IslandMatchOptimizer(f.eval, serial).run(match::SolverContext(r1));
  const auto b = IslandMatchOptimizer(f.eval, par).run(match::SolverContext(r2));
  EXPECT_EQ(a.best_mapping, b.best_mapping);
  EXPECT_DOUBLE_EQ(a.best_cost, b.best_cost);
}

TEST(Island, QualityComparableToSingleMatch) {
  Fixture f(12, 14);
  rng::Rng r1(15), r2(15);
  const auto island = IslandMatchOptimizer(f.eval).run(match::SolverContext(r1));
  const auto single = MatchOptimizer(f.eval).run(match::SolverContext(r2));
  // The island model samples the same total budget per epoch-iteration;
  // it must land within a modest factor of single-matrix MaTCH.
  EXPECT_LE(island.best_cost, single.best_cost * 1.10);
}

TEST(Island, RejectsNonSquareInstance) {
  rng::Rng rng(16);
  graph::Tig tig(graph::make_gnp(5, 0.5, {1, 10}, {50, 100}, rng));
  sim::Platform plat(
      graph::ResourceGraph(graph::make_complete(7, {1, 5}, {10, 20}, rng)));
  sim::CostEvaluator eval(tig, plat);
  EXPECT_THROW(IslandMatchOptimizer{eval}, std::invalid_argument);
}

}  // namespace
}  // namespace match::core
