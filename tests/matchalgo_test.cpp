#include "core/matchalgo.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <numeric>
#include <vector>

#include "workload/paper_suite.hpp"

namespace match::core {
namespace {

/// Exhaustive optimum over all n! permutation mappings (test-sized n only).
double brute_force_optimum(const sim::CostEvaluator& eval) {
  const std::size_t n = eval.num_tasks();
  std::vector<graph::NodeId> perm(n);
  std::iota(perm.begin(), perm.end(), graph::NodeId{0});
  double best = std::numeric_limits<double>::infinity();
  do {
    best = std::min(best, eval.makespan(perm));
  } while (std::next_permutation(perm.begin(), perm.end()));
  return best;
}

struct Fixture {
  workload::Instance inst;
  sim::Platform platform;
  sim::CostEvaluator eval;

  explicit Fixture(std::size_t n, std::uint64_t seed)
      : inst(make(n, seed)),
        platform(inst.make_platform()),
        eval(inst.tig, platform) {}

  static workload::Instance make(std::size_t n, std::uint64_t seed) {
    rng::Rng rng(seed);
    workload::PaperParams params;
    params.n = n;
    return workload::make_paper_instance(params, rng);
  }
};

TEST(MatchParams, ValidationCatchesBadValues) {
  MatchParams p;
  p.rho = 0.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = {};
  p.rho = 1.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = {};
  p.zeta = 0.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = {};
  p.zeta = 1.1;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = {};
  p.stability_window = 0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = {};
  p.max_iterations = 0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = {};
  EXPECT_NO_THROW(p.validate());
}

TEST(MatchOptimizer, DefaultSampleSizeIsTwoNSquared) {
  Fixture f(10, 1);
  MatchOptimizer opt(f.eval);
  EXPECT_EQ(opt.effective_sample_size(), 200u);
}

TEST(MatchOptimizer, FindsBruteForceOptimumOnTinyInstance) {
  Fixture f(6, 2);
  const double optimum = brute_force_optimum(f.eval);

  MatchOptimizer opt(f.eval);
  rng::Rng rng(42);
  const MatchResult r = opt.run(match::SolverContext(rng));

  EXPECT_TRUE(r.best_mapping.is_permutation());
  EXPECT_NEAR(r.best_cost, optimum, 1e-9);
  EXPECT_NEAR(f.eval.makespan(r.best_mapping), r.best_cost, 1e-9);
}

TEST(MatchOptimizer, FindsBruteForceOptimumAcrossSeeds) {
  Fixture f(7, 3);
  const double optimum = brute_force_optimum(f.eval);
  for (std::uint64_t seed : {1ull, 7ull, 1234ull}) {
    MatchOptimizer opt(f.eval);
    rng::Rng rng(seed);
    const MatchResult r = opt.run(match::SolverContext(rng));
    EXPECT_NEAR(r.best_cost, optimum, 1e-9) << "seed " << seed;
  }
}

TEST(MatchOptimizer, SolvesZeroCommInstanceAnalytically) {
  // Without communication the problem is bottleneck matching on products
  // W_t * w_s; sorting heavy tasks onto fast resources is optimal.
  const std::size_t n = 12;
  std::vector<double> task_w(n), res_w(n);
  for (std::size_t i = 0; i < n; ++i) {
    task_w[i] = static_cast<double>(2 * i + 1);
    res_w[i] = static_cast<double>((7 * i) % n + 1);
  }
  graph::Tig tig(graph::Graph::from_edges(n, task_w, {}));
  rng::Rng setup_rng(4);
  graph::ResourceGraph rg(
      graph::make_complete(n, {1, 1}, {1, 1}, setup_rng));
  // Rebuild resource graph with the chosen processing costs.
  {
    auto edges = rg.graph().edge_list();
    rg = graph::ResourceGraph(graph::Graph::from_edges(n, res_w, edges));
  }
  const sim::Platform plat(rg);
  const sim::CostEvaluator eval(tig, plat);

  std::vector<double> ws = task_w, rs = res_w;
  std::sort(ws.begin(), ws.end(), std::greater<>());
  std::sort(rs.begin(), rs.end());
  double optimum = 0.0;
  for (std::size_t i = 0; i < n; ++i) optimum = std::max(optimum, ws[i] * rs[i]);

  MatchOptimizer opt(eval);
  rng::Rng rng(99);
  const MatchResult r = opt.run(match::SolverContext(rng));
  EXPECT_NEAR(r.best_cost, optimum, 1e-9);
}

TEST(MatchOptimizer, DeterministicAcrossParallelModes) {
  Fixture f(10, 5);
  MatchParams serial_params;
  serial_params.parallel = false;
  MatchParams parallel_params;
  parallel_params.parallel = true;

  MatchOptimizer serial_opt(f.eval, serial_params);
  MatchOptimizer parallel_opt(f.eval, parallel_params);
  rng::Rng r1(7), r2(7);
  const MatchResult a = serial_opt.run(match::SolverContext(r1));
  const MatchResult b = parallel_opt.run(match::SolverContext(r2));

  EXPECT_EQ(a.best_mapping, b.best_mapping);
  EXPECT_DOUBLE_EQ(a.best_cost, b.best_cost);
  EXPECT_EQ(a.iterations, b.iterations);
}

TEST(MatchOptimizer, DeterministicForFixedSeed) {
  Fixture f(10, 6);
  MatchOptimizer opt(f.eval);
  rng::Rng r1(11), r2(11);
  const MatchResult a = opt.run(match::SolverContext(r1));
  const MatchResult b = opt.run(match::SolverContext(r2));
  EXPECT_EQ(a.best_mapping, b.best_mapping);
  ASSERT_EQ(a.history.size(), b.history.size());
  for (std::size_t i = 0; i < a.history.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.history[i].gamma, b.history[i].gamma);
  }
}

TEST(MatchOptimizer, BestSoFarIsMonotone) {
  Fixture f(12, 7);
  MatchOptimizer opt(f.eval);
  rng::Rng rng(3);
  const MatchResult r = opt.run(match::SolverContext(rng));
  ASSERT_FALSE(r.history.empty());
  for (std::size_t i = 1; i < r.history.size(); ++i) {
    EXPECT_LE(r.history[i].best_so_far, r.history[i - 1].best_so_far);
    EXPECT_LE(r.history[i].best_so_far, r.history[i].iter_best);
  }
  EXPECT_DOUBLE_EQ(r.history.back().best_so_far, r.best_cost);
}

TEST(MatchOptimizer, EntropyDecaysTowardDegeneracy) {
  Fixture f(10, 8);
  MatchOptimizer opt(f.eval);
  rng::Rng rng(5);
  const MatchResult r = opt.run(match::SolverContext(rng));
  ASSERT_GE(r.history.size(), 3u);
  EXPECT_LT(r.history.back().mean_entropy, r.history.front().mean_entropy);
  // Converged: matrix close to degenerate or maxima stabilized.
  EXPECT_NE(r.stop_reason, StopReason::kMaxIterations);
}

TEST(MatchOptimizer, TraceSeesEveryIteration) {
  Fixture f(8, 9);
  MatchOptimizer opt(f.eval);
  std::size_t calls = 0;
  std::size_t matrix_rows = 0;
  opt.set_trace([&](const IterationStats& stats, const StochasticMatrix& p) {
    EXPECT_EQ(stats.iteration, calls);
    ++calls;
    matrix_rows = p.rows();
  });
  rng::Rng rng(6);
  const MatchResult r = opt.run(match::SolverContext(rng));
  EXPECT_EQ(calls, r.iterations);
  EXPECT_EQ(calls, r.history.size());
  EXPECT_EQ(matrix_rows, 8u);
}

TEST(MatchOptimizer, LiteralEliteRuleDoesNotConverge) {
  // DESIGN.md §3: the literal Fig.-5 elite rule keeps ~(1-ρ)N samples and
  // the matrix never sharpens, so the run exhausts max_iterations.
  Fixture f(10, 10);
  MatchParams params;
  params.paper_literal_elite = true;
  params.max_iterations = 25;
  MatchOptimizer opt(f.eval, params);
  rng::Rng rng(8);
  const MatchResult r = opt.run(match::SolverContext(rng));
  EXPECT_EQ(r.stop_reason, StopReason::kMaxIterations);
  EXPECT_EQ(r.iterations, 25u);
  // Best-ever tracking still yields a valid mapping.
  EXPECT_TRUE(r.best_mapping.is_permutation());
}

TEST(MatchOptimizer, StandardEliteBeatsLiteralElite) {
  Fixture f(12, 11);
  MatchParams literal;
  literal.paper_literal_elite = true;
  literal.max_iterations = 40;
  MatchParams standard;
  standard.max_iterations = 40;

  rng::Rng r1(9), r2(9);
  const MatchResult a = MatchOptimizer(f.eval, standard).run(match::SolverContext(r1));
  const MatchResult b = MatchOptimizer(f.eval, literal).run(match::SolverContext(r2));
  EXPECT_LE(a.best_cost, b.best_cost);
}

TEST(MatchOptimizer, RejectsNonSquareInstance) {
  rng::Rng rng(12);
  graph::Tig tig(graph::make_gnp(5, 0.5, {1, 10}, {50, 100}, rng));
  sim::Platform plat(
      graph::ResourceGraph(graph::make_complete(7, {1, 5}, {10, 20}, rng)));
  sim::CostEvaluator eval(tig, plat);
  EXPECT_THROW(MatchOptimizer{eval}, std::invalid_argument);
}

TEST(MatchOptimizer, TinySizesWork) {
  Fixture f(2, 13);
  MatchOptimizer opt(f.eval);
  rng::Rng rng(14);
  const MatchResult r = opt.run(match::SolverContext(rng));
  EXPECT_TRUE(r.best_mapping.is_permutation());
  EXPECT_EQ(r.best_mapping.num_tasks(), 2u);
  EXPECT_NEAR(r.best_cost, brute_force_optimum(f.eval), 1e-9);
}

TEST(MatchOptimizer, FinalMatrixIsReportedAndStochastic) {
  Fixture f(9, 15);
  MatchOptimizer opt(f.eval);
  rng::Rng rng(16);
  const MatchResult r = opt.run(match::SolverContext(rng));
  EXPECT_EQ(r.final_matrix.rows(), 9u);
  EXPECT_TRUE(r.final_matrix.is_row_stochastic());
  EXPECT_GT(r.elapsed_seconds, 0.0);
}

TEST(MatchOptimizer, CustomSampleSizeIsRespected) {
  Fixture f(8, 17);
  MatchParams params;
  params.sample_size = 64;
  MatchOptimizer opt(f.eval, params);
  EXPECT_EQ(opt.effective_sample_size(), 64u);
  rng::Rng rng(18);
  const MatchResult r = opt.run(match::SolverContext(rng));
  EXPECT_TRUE(r.best_mapping.is_permutation());
}

class MatchRhoZetaTest
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(MatchRhoZetaTest, ConvergesAcrossParameterGrid) {
  const auto [rho, zeta] = GetParam();
  Fixture f(8, 19);
  MatchParams params;
  params.rho = rho;
  params.zeta = zeta;
  MatchOptimizer opt(f.eval, params);
  rng::Rng rng(20);
  const MatchResult r = opt.run(match::SolverContext(rng));
  EXPECT_TRUE(r.best_mapping.is_permutation());
  EXPECT_LT(r.best_cost, std::numeric_limits<double>::infinity());
  // Should do at least as well as the first iteration's best.
  EXPECT_LE(r.best_cost, r.history.front().iter_best);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, MatchRhoZetaTest,
    ::testing::Combine(::testing::Values(0.01, 0.05, 0.1),
                       ::testing::Values(0.3, 0.7, 1.0)));

}  // namespace
}  // namespace match::core
