#include "io/ascii_chart.hpp"
#include "io/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace match::io {
namespace {

TEST(Table, RejectsEmptyHeader) {
  EXPECT_THROW(Table(std::vector<std::string>{}), std::invalid_argument);
}

TEST(Table, RejectsWrongCellCount) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"1"}), std::invalid_argument);
  EXPECT_THROW(t.add_row({"1", "2", "3"}), std::invalid_argument);
}

TEST(Table, PrintsAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"short", "1"});
  t.add_row({"a-much-longer-name", "23456"});
  std::stringstream ss;
  t.print(ss);
  const std::string out = ss.str();
  EXPECT_NE(out.find("| name"), std::string::npos);
  EXPECT_NE(out.find("a-much-longer-name"), std::string::npos);
  // Header separator present.
  EXPECT_NE(out.find("|---"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.num_cols(), 2u);
}

TEST(Table, NumFormatsDoubles) {
  EXPECT_EQ(Table::num(4.7170001, 4), "4.717");
  EXPECT_EQ(Table::num(16585.0), "16585");
  EXPECT_EQ(Table::num(0.5, 2), "0.5");
}

TEST(Table, CsvOutput) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  t.add_row({"x,y", "he said \"hi\""});
  std::stringstream ss;
  t.write_csv(ss);
  EXPECT_EQ(ss.str(),
            "a,b\n"
            "1,2\n"
            "\"x,y\",\"he said \"\"hi\"\"\"\n");
}

TEST(CsvEscape, QuotesOnlyWhenNeeded) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("with,comma"), "\"with,comma\"");
  EXPECT_EQ(csv_escape("with\nnewline"), "\"with\nnewline\"");
  EXPECT_EQ(csv_escape("with\"quote"), "\"with\"\"quote\"");
}

TEST(AsciiChart, RejectsBadConstruction) {
  EXPECT_THROW(AsciiChart("t", {}), std::invalid_argument);
  AsciiChart chart("t", {"a", "b"});
  EXPECT_THROW(chart.add_series({"s", {1.0}, '*'}), std::invalid_argument);
  EXPECT_THROW(chart.set_height(2), std::invalid_argument);
}

TEST(AsciiChart, PrintsMarkersAndLegend) {
  AsciiChart chart("Demo chart", {"10", "20", "30"});
  chart.add_series({"GA", {100.0, 200.0, 300.0}, 'g'});
  chart.add_series({"MaTCH", {50.0, 60.0, 70.0}, 'm'});
  std::stringstream ss;
  chart.print(ss);
  const std::string out = ss.str();
  EXPECT_NE(out.find("Demo chart"), std::string::npos);
  EXPECT_NE(out.find("'g' = GA"), std::string::npos);
  EXPECT_NE(out.find("'m' = MaTCH"), std::string::npos);
  EXPECT_NE(out.find('g'), std::string::npos);
  EXPECT_NE(out.find('m'), std::string::npos);
}

TEST(AsciiChart, LogScaleHandlesWideRanges) {
  AsciiChart chart("Log demo", {"a", "b"});
  chart.set_log_y(true);
  chart.add_series({"s", {10.0, 1e6}, '*'});
  std::stringstream ss;
  chart.print(ss);
  EXPECT_NE(ss.str().find("[log y]"), std::string::npos);
}

TEST(AsciiChart, FlatSeriesDoesNotCrash) {
  AsciiChart chart("Flat", {"a", "b", "c"});
  chart.add_series({"s", {5.0, 5.0, 5.0}, '*'});
  std::stringstream ss;
  chart.print(ss);
  EXPECT_FALSE(ss.str().empty());
}

TEST(AsciiChart, EmptyChartPrintsPlaceholder) {
  AsciiChart chart("Empty", {"x"});
  std::stringstream ss;
  chart.print(ss);
  EXPECT_NE(ss.str().find("no data"), std::string::npos);
}

}  // namespace
}  // namespace match::io
