#include "core/ce_driver.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <vector>

#include "core/maxcut.hpp"
#include "graph/generators.hpp"
#include "rng/rng.hpp"

namespace match::core {
namespace {

TEST(CeDriverParams, ValidationCatchesBadValues) {
  CeDriverParams p;
  p.rho = 0.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = {};
  p.zeta = 1.5;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = {};
  p.sample_size = 1;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = {};
  p.max_iterations = 0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = {};
  EXPECT_NO_THROW(p.validate());
}

/// A trivial 1-D problem: minimize |x - 7| over integers 0..15 encoded as
/// 4 Bernoulli bits.  Exercises the driver independent of max-cut.
class BitIntegerProblem {
 public:
  using Sample = std::vector<char>;

  Sample draw(rng::Rng& rng) const {
    Sample s(4);
    for (int i = 0; i < 4; ++i) s[i] = rng.bernoulli(p_[i]) ? 1 : 0;
    return s;
  }

  static int value(const Sample& s) {
    int v = 0;
    for (int i = 0; i < 4; ++i) v |= s[i] << i;
    return v;
  }

  double cost(const Sample& s) const { return std::abs(value(s) - 7); }

  void update(const std::vector<const Sample*>& elites, double zeta) {
    if (elites.empty()) return;
    for (int i = 0; i < 4; ++i) {
      double freq = 0.0;
      for (const Sample* s : elites) freq += (*s)[i];
      p_[i] = zeta * (freq / static_cast<double>(elites.size())) +
              (1.0 - zeta) * p_[i];
    }
  }

  bool degenerate(double eps) const {
    for (double p : p_) {
      if (p > eps && p < 1.0 - eps) return false;
    }
    return true;
  }

 private:
  std::vector<double> p_ = std::vector<double>(4, 0.5);
};

TEST(CeDriver, SolvesBitIntegerProblem) {
  BitIntegerProblem problem;
  CeDriverParams params;
  params.sample_size = 64;
  rng::Rng rng(1);
  const auto r = run_ce(problem, params, match::SolverContext(rng));
  EXPECT_EQ(BitIntegerProblem::value(r.best), 7);
  EXPECT_DOUBLE_EQ(r.best_cost, 0.0);
  EXPECT_TRUE(r.degenerate || r.iterations > 0);
}

TEST(CeDriver, HistoryTracksBestSoFar) {
  BitIntegerProblem problem;
  CeDriverParams params;
  params.sample_size = 32;
  rng::Rng rng(2);
  const auto r = run_ce(problem, params, match::SolverContext(rng));
  ASSERT_FALSE(r.history.empty());
  for (std::size_t i = 1; i < r.history.size(); ++i) {
    EXPECT_LE(r.history[i].best_so_far, r.history[i - 1].best_so_far);
  }
}

/// Every sample costs the same, so the old elite rule `costs[i] <= gamma`
/// would admit the entire batch; update() records what it actually gets.
class ConstantCostProblem {
 public:
  using Sample = int;

  Sample draw(rng::Rng& rng) const { return static_cast<int>(rng.below(4)); }
  double cost(const Sample&) const { return 1.0; }

  void update(const std::vector<const Sample*>& elites, double /*zeta*/) {
    elite_sizes.push_back(elites.size());
  }

  bool degenerate(double) const { return false; }

  std::vector<std::size_t> elite_sizes;
};

TEST(CeDriver, EliteSetCappedAtRhoQuantileUnderTies) {
  // Regression: with all 50 costs tied, the elite set must still be the
  // rho-quantile's floor(0.1 * 50) = 5 samples, not the whole batch.
  ConstantCostProblem problem;
  CeDriverParams params;
  params.sample_size = 50;
  params.rho = 0.1;
  params.max_iterations = 20;
  rng::Rng rng(9);
  const auto r = run_ce(problem, params, match::SolverContext(rng));
  ASSERT_FALSE(problem.elite_sizes.empty());
  for (std::size_t size : problem.elite_sizes) EXPECT_EQ(size, 5u);
  // gamma never improves, so the stall window ends the run early.
  EXPECT_LE(r.iterations, params.gamma_stall_window + 1);
}

TEST(CeDriver, CancelledBeforeFirstIterationStillReturnsASample) {
  BitIntegerProblem problem;
  CeDriverParams params;
  rng::Rng rng(10);
  const auto r = run_ce(problem, params,
                        match::SolverContext(rng, [] { return true; }));
  EXPECT_TRUE(r.cancelled);
  EXPECT_EQ(r.iterations, 0u);
  ASSERT_EQ(r.best.size(), 4u);  // valid sample, not a default-constructed one
  EXPECT_TRUE(std::isfinite(r.best_cost));
}

TEST(CeDriver, CancelledMidRunKeepsBestSoFar) {
  BitIntegerProblem problem;
  CeDriverParams params;
  params.sample_size = 64;
  std::size_t polls = 0;
  rng::Rng rng(11);
  const auto r =
      run_ce(problem, params,
             match::SolverContext(rng, [&polls] { return ++polls > 3; }));
  EXPECT_TRUE(r.cancelled);
  EXPECT_EQ(r.iterations, 3u);
  EXPECT_EQ(r.history.size(), 3u);
  EXPECT_TRUE(std::isfinite(r.best_cost));
}

TEST(MaxCut, RejectsTinyGraph) {
  const graph::Graph g = graph::Graph::from_edges(1, {}, {});
  EXPECT_THROW(MaxCutProblem{g}, std::invalid_argument);
}

TEST(MaxCut, CutWeightIsCorrect) {
  const std::vector<graph::Edge> edges = {{0, 1, 2.0}, {1, 2, 3.0}, {0, 2, 4.0}};
  const graph::Graph g = graph::Graph::from_edges(3, {}, edges);
  const MaxCutProblem problem(g);
  // Partition {0} vs {1,2}: cuts edges (0,1) and (0,2) = 6.
  EXPECT_DOUBLE_EQ(problem.cut_weight({0, 1, 1}), 6.0);
  // Partition {0,1} vs {2}: cuts (1,2) and (0,2) = 7.
  EXPECT_DOUBLE_EQ(problem.cut_weight({0, 0, 1}), 7.0);
  // Everything together: nothing cut.
  EXPECT_DOUBLE_EQ(problem.cut_weight({0, 0, 0}), 0.0);
  EXPECT_DOUBLE_EQ(problem.cost({0, 0, 1}), -7.0);
}

TEST(MaxCut, BruteForceOnTriangle) {
  const std::vector<graph::Edge> edges = {{0, 1, 2.0}, {1, 2, 3.0}, {0, 2, 4.0}};
  const graph::Graph g = graph::Graph::from_edges(3, {}, edges);
  EXPECT_DOUBLE_EQ(MaxCutProblem::brute_force_max_cut(g), 7.0);
}

TEST(MaxCut, BruteForceRejectsLargeGraphs) {
  rng::Rng rng(3);
  const graph::Graph g = graph::make_gnp(30, 0.2, {1, 1}, {1, 1}, rng);
  EXPECT_THROW(MaxCutProblem::brute_force_max_cut(g), std::invalid_argument);
}

TEST(MaxCut, CeFindsOptimumOnSmallRandomGraphs) {
  rng::Rng graph_rng(4);
  for (std::uint64_t seed : {10ull, 11ull, 12ull}) {
    const graph::Graph g = graph::make_gnp(12, 0.4, {1, 1}, {1, 9}, graph_rng);
    const double optimum = MaxCutProblem::brute_force_max_cut(g);

    MaxCutProblem problem(g);
    CeDriverParams params;
    params.sample_size = 300;
    params.rho = 0.1;
    rng::Rng rng(seed);
    const auto r = run_ce(problem, params, match::SolverContext(rng));
    EXPECT_NEAR(-r.best_cost, optimum, 1e-9) << "seed " << seed;
  }
}

TEST(MaxCut, BipartiteGraphCutsEverything) {
  // Complete bipartite K_{3,3}: the optimal cut separates the sides and
  // includes every edge.
  std::vector<graph::Edge> edges;
  double total = 0.0;
  for (graph::NodeId u = 0; u < 3; ++u) {
    for (graph::NodeId v = 3; v < 6; ++v) {
      edges.push_back({u, v, static_cast<double>(u + v)});
      total += static_cast<double>(u + v);
    }
  }
  const graph::Graph g = graph::Graph::from_edges(6, {}, edges);

  MaxCutProblem problem(g);
  CeDriverParams params;
  params.sample_size = 200;
  rng::Rng rng(5);
  const auto r = run_ce(problem, params, match::SolverContext(rng));
  EXPECT_DOUBLE_EQ(-r.best_cost, total);
}

TEST(MaxCut, SymmetryPinHoldsThroughUpdates) {
  rng::Rng graph_rng(6);
  const graph::Graph g = graph::make_gnp(10, 0.5, {1, 1}, {1, 5}, graph_rng);
  MaxCutProblem problem(g);
  CeDriverParams params;
  params.sample_size = 100;
  params.max_iterations = 30;
  rng::Rng rng(7);
  run_ce(problem, params, match::SolverContext(rng));
  EXPECT_DOUBLE_EQ(problem.probabilities()[0], 0.0);
}

TEST(MaxCut, DegenerateFlagSetOnConvergence) {
  const std::vector<graph::Edge> edges = {{0, 1, 5.0}};
  const graph::Graph g = graph::Graph::from_edges(2, {}, edges);
  MaxCutProblem problem(g);
  CeDriverParams params;
  params.sample_size = 50;
  params.zeta = 1.0;
  rng::Rng rng(8);
  const auto r = run_ce(problem, params, match::SolverContext(rng));
  EXPECT_DOUBLE_EQ(-r.best_cost, 5.0);
  EXPECT_TRUE(r.degenerate);
}

}  // namespace
}  // namespace match::core
