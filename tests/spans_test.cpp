// Tests for request span tracing (src/obs/spans.{hpp,cpp}) and the
// tail-latency analyzer behind `match_inspect spans`
// (src/obs/trace_analysis.{hpp,cpp}):
//
//   * SpanTimeline stamping semantics — stamp/stamp_seconds,
//     set_outcome on the last crossing, finalize, attribution math;
//   * the JSONL wire form — exact shortest-round-trip doubles, hostile
//     strings, unknown-key tolerance for schema growth, strict
//     rejection of malformed lines, and the lenient reader's torn-line
//     behaviour;
//   * FlightRecorder retention — last-N ring eviction that *keeps*
//     slow timelines, dropped accounting, snapshot ordering, the
//     attached JSONL stream, and config validation;
//   * render_debug_requests — envelope fields and the whole-timeline
//     byte bound for /debug/requests;
//   * summarize_spans — per-stage quantiles, tail attribution,
//     dominant-stage counting, queue-vs-solve split;
//   * the `match_inspect spans` / `overload --json` CLI — gate exit
//     codes and BenchReport-parseable --json output.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "obs/bench_report.hpp"
#include "obs/spans.hpp"
#include "obs/trace_analysis.hpp"

namespace match::obs {
namespace {

// ---------------------------------------------------------------- stages

TEST(SpanStageNames, RoundTripAllStages) {
  const SpanStage all[] = {
      SpanStage::kAccept,    SpanStage::kDecode, SpanStage::kAdmission,
      SpanStage::kQueueWait, SpanStage::kSolve,  SpanStage::kEncode,
      SpanStage::kWriteFlush,
  };
  ASSERT_EQ(std::size(all), kNumSpanStages);
  for (SpanStage stage : all) {
    EXPECT_EQ(parse_span_stage(to_string(stage)), stage);
  }
  EXPECT_STREQ(to_string(SpanStage::kQueueWait), "queue_wait");
  EXPECT_THROW(parse_span_stage("no_such_stage"), std::invalid_argument);
  EXPECT_THROW(parse_span_stage(""), std::invalid_argument);
}

// -------------------------------------------------------------- timeline

SpanTimeline sample_timeline() {
  SpanTimeline tl;
  tl.start(42, SpanClock::time_point{});
  tl.stamp_seconds(SpanStage::kAccept, 0.0, 1e-5);
  tl.stamp_seconds(SpanStage::kDecode, 1e-5, 3e-5, "ok");
  tl.stamp_seconds(SpanStage::kAdmission, 3e-5, 4e-5, "admitted");
  tl.stamp_seconds(SpanStage::kQueueWait, 4e-5, 0.002);
  tl.stamp_seconds(SpanStage::kSolve, 0.002, 0.0521874999999997, "match");
  tl.stamp_seconds(SpanStage::kEncode, 0.0525, 0.0526);
  tl.stamp_seconds(SpanStage::kWriteFlush, 0.0526, 0.0527, "flushed");
  tl.solver = "match";
  tl.outcome = "net.served";
  tl.total_seconds = 0.0528;
  return tl;
}

TEST(SpanTimeline, StampFromTimePointsIsOriginRelative) {
  SpanTimeline tl;
  const auto origin = SpanClock::now();
  tl.start(7, origin);
  tl.stamp(SpanStage::kSolve, origin + std::chrono::milliseconds(2),
           origin + std::chrono::milliseconds(5), "match");
  ASSERT_EQ(tl.spans.size(), 1u);
  EXPECT_NEAR(tl.spans[0].start_seconds, 0.002, 1e-12);
  EXPECT_NEAR(tl.spans[0].end_seconds, 0.005, 1e-12);
  EXPECT_EQ(tl.spans[0].outcome, "match");
  tl.finalize("net.served", origin + std::chrono::milliseconds(6));
  EXPECT_EQ(tl.outcome, "net.served");
  EXPECT_NEAR(tl.total_seconds, 0.006, 1e-12);
}

TEST(SpanTimeline, SetOutcomeRewritesLastCrossingOfStage) {
  SpanTimeline tl;
  tl.start(1, SpanClock::time_point{});
  // No-op when the stage was never stamped.
  tl.set_outcome(SpanStage::kAdmission, "shed");
  EXPECT_TRUE(tl.spans.empty());

  tl.stamp_seconds(SpanStage::kAdmission, 0.0, 1e-6, "admitted");
  tl.stamp_seconds(SpanStage::kAdmission, 2e-6, 3e-6, "admitted");
  tl.set_outcome(SpanStage::kAdmission, "shed");
  EXPECT_EQ(tl.spans[0].outcome, "admitted");  // earlier crossing untouched
  EXPECT_EQ(tl.spans[1].outcome, "shed");
}

TEST(SpanTimeline, AttributionMath) {
  SpanTimeline tl = sample_timeline();
  double expected = 0.0;
  for (const SpanRecord& s : tl.spans) expected += s.duration_seconds();
  EXPECT_DOUBLE_EQ(tl.attributed_seconds(), expected);
  EXPECT_DOUBLE_EQ(tl.unattributed_seconds(), tl.total_seconds - expected);
  EXPECT_GT(tl.unattributed_seconds(), 0.0);  // well-formed: gaps exist
}

TEST(SpanTimeline, FindReturnsFirstCrossing) {
  const SpanTimeline tl = sample_timeline();
  const SpanRecord* solve = tl.find(SpanStage::kSolve);
  ASSERT_NE(solve, nullptr);
  EXPECT_EQ(solve->outcome, "match");
  EXPECT_EQ(tl.find(SpanStage::kAccept)->start_seconds, 0.0);
}

// ----------------------------------------------------------------- jsonl

TEST(SpanJsonl, RoundTripsExactly) {
  const SpanTimeline tl = sample_timeline();
  const SpanTimeline back = from_span_jsonl(to_span_jsonl(tl));
  EXPECT_EQ(back.request_id, tl.request_id);
  EXPECT_EQ(back.outcome, tl.outcome);
  EXPECT_EQ(back.solver, tl.solver);
  EXPECT_EQ(back.total_seconds, tl.total_seconds);  // exact double
  EXPECT_EQ(back.spans, tl.spans);
  // Second generation is a fixed point.
  EXPECT_EQ(to_span_jsonl(back), to_span_jsonl(tl));
}

TEST(SpanJsonl, RoundTripsHostileDoubles) {
  const double hostile[] = {0.1,
                            1.0 / 3.0,
                            1e-17,
                            5e-324,  // smallest denormal
                            std::numeric_limits<double>::min(),
                            std::numeric_limits<double>::max(),
                            -0.0,
                            0.4121874999999997};
  for (double d : hostile) {
    SpanTimeline tl;
    tl.start(1, SpanClock::time_point{});
    tl.stamp_seconds(SpanStage::kSolve, d, d);
    tl.total_seconds = d;
    const SpanTimeline back = from_span_jsonl(to_span_jsonl(tl));
    EXPECT_EQ(back.total_seconds, d);
    EXPECT_EQ(back.spans[0].start_seconds, d);
  }
}

TEST(SpanJsonl, RoundTripsHostileStrings) {
  SpanTimeline tl;
  tl.start(9, SpanClock::time_point{});
  tl.outcome = "quo\"te\\back\nnew\ttab\rcr";
  tl.solver = std::string("\x01\x02", 2);
  tl.stamp_seconds(SpanStage::kDecode, 0.0, 1.0, "μ-outcome");
  const SpanTimeline back = from_span_jsonl(to_span_jsonl(tl));
  EXPECT_EQ(back.outcome, tl.outcome);
  EXPECT_EQ(back.solver, tl.solver);
  EXPECT_EQ(back.spans[0].outcome, tl.spans[0].outcome);
}

TEST(SpanJsonl, OmitsEmptyOutcomeAndSolver) {
  SpanTimeline tl;
  tl.start(3, SpanClock::time_point{});
  tl.outcome = "net.served";
  tl.stamp_seconds(SpanStage::kSolve, 0.0, 1.0);
  const std::string line = to_span_jsonl(tl);
  EXPECT_EQ(line.find("\"solver\""), std::string::npos);
  const SpanTimeline back = from_span_jsonl(line);
  EXPECT_TRUE(back.solver.empty());
  EXPECT_TRUE(back.spans[0].outcome.empty());
}

TEST(SpanJsonl, ToleratesUnknownKeysForSchemaGrowth) {
  const SpanTimeline back = from_span_jsonl(
      "{\"request\":5,\"future\":{\"deep\":[1,{\"k\":\"}]\"}]},"
      "\"outcome\":\"net.served\",\"total\":0.25,"
      "\"spans\":[{\"stage\":\"solve\",\"start\":0.1,\"end\":0.2,"
      "\"annotations\":[true,null]}]}");
  EXPECT_EQ(back.request_id, 5u);
  EXPECT_EQ(back.outcome, "net.served");
  ASSERT_EQ(back.spans.size(), 1u);
  EXPECT_EQ(back.spans[0].stage, SpanStage::kSolve);
  EXPECT_EQ(back.spans[0].end_seconds, 0.2);
}

TEST(SpanJsonl, RejectsMalformedLines) {
  EXPECT_THROW(from_span_jsonl(""), std::invalid_argument);
  EXPECT_THROW(from_span_jsonl("not json"), std::invalid_argument);
  // Missing the required request id.
  EXPECT_THROW(from_span_jsonl("{\"outcome\":\"x\"}"), std::invalid_argument);
  // Truncated mid-array (a torn tail line).
  EXPECT_THROW(from_span_jsonl("{\"request\":1,\"spans\":[{\"stage\":"),
               std::invalid_argument);
  // A span without a stage name.
  EXPECT_THROW(
      from_span_jsonl("{\"request\":1,\"spans\":[{\"start\":0.0}]}"),
      std::invalid_argument);
  // Unknown stage name.
  EXPECT_THROW(from_span_jsonl(
                   "{\"request\":1,\"spans\":[{\"stage\":\"warp\"}]}"),
               std::invalid_argument);
  // Bad escape.
  EXPECT_THROW(from_span_jsonl("{\"request\":1,\"outcome\":\"\\q\"}"),
               std::invalid_argument);
  // Trailing garbage after the object.
  EXPECT_THROW(from_span_jsonl("{\"request\":1} trailing"),
               std::invalid_argument);
}

TEST(SpanJsonl, LenientReaderSkipsTornLines) {
  std::string file;
  file += to_span_jsonl(sample_timeline()) + "\n";
  file += "garbage line\n";
  file += "\n";  // blank: not counted at all
  SpanTimeline second = sample_timeline();
  second.request_id = 43;
  file += to_span_jsonl(second) + "\r\n";  // CRLF tolerated
  file += "{\"request\":44,\"spans\":[{\"st";  // torn mid-write, no newline

  std::istringstream is(file);
  const SpanTrace trace = read_span_jsonl_lenient(is);
  EXPECT_EQ(trace.total_lines, 4u);
  EXPECT_EQ(trace.skipped_lines, 2u);
  ASSERT_EQ(trace.timelines.size(), 2u);
  EXPECT_EQ(trace.timelines[0].request_id, 42u);
  EXPECT_EQ(trace.timelines[1].request_id, 43u);
}

// ------------------------------------------------------- flight recorder

SpanTimeline quick_timeline(std::uint64_t id, double total) {
  SpanTimeline tl;
  tl.start(id, SpanClock::time_point{});
  tl.stamp_seconds(SpanStage::kSolve, 0.0, total, "match");
  tl.outcome = "net.served";
  tl.total_seconds = total;
  return tl;
}

TEST(FlightRecorderConfigTest, ValidateRejectsNonsense) {
  FlightRecorderConfig ok;
  EXPECT_NO_THROW(ok.validate());
  FlightRecorderConfig zero_recent;
  zero_recent.recent_capacity = 0;
  EXPECT_THROW(zero_recent.validate(), std::invalid_argument);
  FlightRecorderConfig negative_threshold;
  negative_threshold.slow_threshold_seconds = -0.5;
  EXPECT_THROW(negative_threshold.validate(), std::invalid_argument);
}

TEST(FlightRecorderTest, RingEvictionKeepsSlowTimelines) {
  FlightRecorderConfig config;
  config.recent_capacity = 4;
  config.slow_threshold_seconds = 0.100;
  config.slow_capacity = 64;
  config.shards = 1;  // deterministic single-shard retention
  FlightRecorder recorder(config);

  // One slow request early, then a flood of fast ones that overruns the
  // recent ring many times over.
  recorder.record(quick_timeline(1, 0.250));
  for (std::uint64_t id = 2; id <= 41; ++id) {
    recorder.record(quick_timeline(id, 0.001));
  }

  EXPECT_EQ(recorder.recorded(), 41u);
  const std::vector<SpanTimeline> kept = recorder.snapshot();
  // 4 recent + the slow one, which the flood must not have evicted.
  ASSERT_EQ(kept.size(), 5u);
  EXPECT_EQ(kept.front().request_id, 1u);  // oldest first
  EXPECT_DOUBLE_EQ(kept.front().total_seconds, 0.250);
  // The remaining four are the newest fast requests, in record order.
  for (std::size_t i = 1; i < kept.size(); ++i) {
    EXPECT_EQ(kept[i].request_id, 37u + i);
  }
  // 40 fast − 4 retained = 36 evicted without slow retention.
  EXPECT_EQ(recorder.dropped(), 36u);
}

TEST(FlightRecorderTest, SlowListIsBoundedFifo) {
  FlightRecorderConfig config;
  config.recent_capacity = 2;
  config.slow_threshold_seconds = 0.010;
  config.slow_capacity = 3;
  config.shards = 1;
  FlightRecorder recorder(config);
  for (std::uint64_t id = 1; id <= 5; ++id) {
    recorder.record(quick_timeline(id, 0.020));  // all slow
  }
  const std::vector<SpanTimeline> kept = recorder.snapshot();
  // Slow list keeps the newest 3; the 2 evicted ones count as dropped.
  std::size_t slow_kept = 0;
  for (const SpanTimeline& tl : kept) {
    if (tl.request_id >= 3) ++slow_kept;
  }
  EXPECT_GE(slow_kept, 3u);
  EXPECT_EQ(recorder.recorded(), 5u);
}

TEST(FlightRecorderTest, SnapshotIsGloballyOrderedAcrossShards) {
  FlightRecorderConfig config;
  config.recent_capacity = 64;
  config.shards = 8;
  FlightRecorder recorder(config);
  for (std::uint64_t id = 1; id <= 32; ++id) {
    recorder.record(quick_timeline(id, 0.001));
  }
  const std::vector<SpanTimeline> kept = recorder.snapshot();
  ASSERT_EQ(kept.size(), 32u);
  for (std::size_t i = 0; i < kept.size(); ++i) {
    EXPECT_EQ(kept[i].request_id, i + 1);  // record order, not shard order
  }
}

TEST(FlightRecorderTest, AttachedStreamReceivesEveryTimeline) {
  FlightRecorderConfig config;
  config.recent_capacity = 2;  // far smaller than what we record
  config.slow_threshold_seconds = 1.0;
  config.shards = 1;
  FlightRecorder recorder(config);
  std::ostringstream stream;
  recorder.attach_stream(&stream);
  for (std::uint64_t id = 1; id <= 10; ++id) {
    recorder.record(quick_timeline(id, 0.001));
  }
  recorder.flush_stream();
  recorder.attach_stream(nullptr);

  // Eviction bounds retention, not the stream: all 10 lines round-trip.
  std::istringstream is(stream.str());
  const SpanTrace trace = read_span_jsonl_lenient(is);
  EXPECT_EQ(trace.skipped_lines, 0u);
  ASSERT_EQ(trace.timelines.size(), 10u);
  EXPECT_EQ(trace.timelines[9].request_id, 10u);
}

TEST(DebugRequests, EnvelopeAndByteBound) {
  FlightRecorderConfig config;
  config.recent_capacity = 128;
  config.shards = 1;
  FlightRecorder recorder(config);
  for (std::uint64_t id = 1; id <= 50; ++id) {
    recorder.record(quick_timeline(id, 0.001));
  }

  const std::string full = render_debug_requests(recorder);
  EXPECT_NE(full.find("\"recorded\":50"), std::string::npos);
  EXPECT_NE(full.find("\"dropped\":0"), std::string::npos);
  EXPECT_NE(full.find("\"returned\":50"), std::string::npos);
  // Newest first: request 50 appears before request 1.
  EXPECT_LT(full.find("\"request\":50"), full.find("\"request\":1,"));

  // A tight byte budget truncates to whole timelines and says so.
  const std::string tight = render_debug_requests(recorder, 600);
  EXPECT_LE(tight.size(), 600u + 64u);
  EXPECT_NE(tight.find("\"recorded\":50"), std::string::npos);
  // Parses as far as counting returned < retained.
  EXPECT_EQ(tight.find("\"returned\":50"), std::string::npos);
}

// ------------------------------------------------------- summarize_spans

TEST(SummarizeSpans, StageQuantilesAndTailAttribution) {
  std::vector<SpanTimeline> timelines;
  // 9 fast requests solver-bound (distinct totals: nearest-rank p99 of
  // 10 samples is the max, so ties cannot smear the tail), 1 slow
  // request queue-bound: the tail is exactly the slow one and its
  // dominant stage is queue_wait.
  for (std::uint64_t id = 1; id <= 9; ++id) {
    SpanTimeline tl;
    tl.start(id, SpanClock::time_point{});
    tl.stamp_seconds(SpanStage::kQueueWait, 0.0, 0.0001);
    tl.stamp_seconds(SpanStage::kSolve, 0.0001, 0.0011, "match");
    tl.outcome = "net.served";
    tl.total_seconds = 0.0012 + static_cast<double>(id) * 1e-6;
    timelines.push_back(std::move(tl));
  }
  SpanTimeline slow;
  slow.start(10, SpanClock::time_point{});
  slow.stamp_seconds(SpanStage::kQueueWait, 0.0, 0.080);
  slow.stamp_seconds(SpanStage::kSolve, 0.080, 0.081, "match");
  slow.outcome = "net.served";
  slow.total_seconds = 0.082;
  timelines.push_back(std::move(slow));

  const SpanReport report = summarize_spans(timelines);
  EXPECT_EQ(report.requests, 10u);
  ASSERT_TRUE(report.stages.count("queue_wait"));
  ASSERT_TRUE(report.stages.count("solve"));
  EXPECT_EQ(report.stages.at("solve").count, 10u);
  EXPECT_DOUBLE_EQ(report.stages.at("solve").p50, 0.001);
  EXPECT_DOUBLE_EQ(report.stages.at("queue_wait").max, 0.080);
  EXPECT_EQ(report.outcome_counts.at("net.served"), 10u);

  // Tail: the single slow request.
  EXPECT_DOUBLE_EQ(report.tail_threshold_seconds, 0.082);
  EXPECT_EQ(report.tail_requests, 1u);
  EXPECT_EQ(report.tail_dominant_stage.at("queue_wait"), 1u);
  // 0.081 of 0.082 attributed — comfortably over any 90% gate.
  EXPECT_GT(report.tail_attributed_fraction, 0.9);
  // Queue-vs-solve on the tail: 0.080 / (0.080 + 0.001).
  EXPECT_NEAR(report.tail_queue_vs_solve_pct, 100.0 * 0.080 / 0.081, 1e-9);
  // Median end-to-end latency: the 5th of the 10 distinct totals.
  EXPECT_DOUBLE_EQ(report.totals_quantile(0.5), 0.0012 + 5e-6);
}

TEST(SummarizeSpans, DoubleStampedStageContributesSumPerRequest) {
  SpanTimeline tl;
  tl.start(1, SpanClock::time_point{});
  tl.stamp_seconds(SpanStage::kAdmission, 0.0, 0.001, "admitted");
  tl.stamp_seconds(SpanStage::kAdmission, 0.002, 0.005, "shed");
  tl.outcome = "net.shed";
  tl.total_seconds = 0.006;
  const SpanReport report = summarize_spans({tl});
  // One sample per request per stage: 0.001 + 0.003 = 0.004.
  EXPECT_EQ(report.stages.at("admission").count, 1u);
  EXPECT_DOUBLE_EQ(report.stages.at("admission").p50, 0.004);
}

TEST(SummarizeSpans, EmptyTraceIsAllNaN) {
  const SpanReport report = summarize_spans({});
  EXPECT_EQ(report.requests, 0u);
  EXPECT_TRUE(std::isnan(report.tail_threshold_seconds));
  EXPECT_TRUE(std::isnan(report.tail_attributed_fraction));
  EXPECT_TRUE(std::isnan(report.totals_quantile(0.5)));
}

// --------------------------------------------------------------- the CLI

class SpansCliTest : public ::testing::Test {
 protected:
  /// Writes `timelines` as a JSONL trace in the test temp dir.
  std::string write_trace(const std::vector<SpanTimeline>& timelines,
                          const char* name) {
    const std::string path = ::testing::TempDir() + name;
    std::ofstream out(path);
    for (const SpanTimeline& tl : timelines) out << to_span_jsonl(tl) << "\n";
    out.close();
    paths_.push_back(path);
    return path;
  }

  void TearDown() override {
    for (const std::string& p : paths_) std::remove(p.c_str());
  }

  std::vector<std::string> paths_;
};

TEST_F(SpansCliTest, PassesAndFailsStageGates) {
  const std::string path =
      write_trace({quick_timeline(1, 0.020), quick_timeline(2, 0.030)},
                  "spans_cli_gate.jsonl");
  std::ostringstream out, err;
  // solve p99 is 0.030: a generous gate passes...
  EXPECT_EQ(run_inspect_cli({"spans", path, "--max-stage-p99", "solve:0.5"},
                            out, err),
            0);
  // ...a tight one fails with a visible violation.
  std::ostringstream out2, err2;
  EXPECT_EQ(run_inspect_cli({"spans", path, "--max-stage-p99", "solve:0.001"},
                            out2, err2),
            1);
  EXPECT_NE(out2.str().find("SPAN GATE VIOLATION"), std::string::npos);
}

TEST_F(SpansCliTest, UnknownStageOrBadUsageExitsTwo) {
  const std::string path =
      write_trace({quick_timeline(1, 0.020)}, "spans_cli_usage.jsonl");
  std::ostringstream out, err;
  EXPECT_EQ(run_inspect_cli({"spans", path, "--max-stage-p99", "warp:0.5"},
                            out, err),
            2);
  std::ostringstream out2, err2;
  EXPECT_EQ(run_inspect_cli({"spans"}, out2, err2), 2);  // missing path
  std::ostringstream out3, err3;
  EXPECT_EQ(run_inspect_cli({"spans", "/no/such/file.jsonl"}, out3, err3), 2);
}

TEST_F(SpansCliTest, EmptyTraceWithGatesFailsLoudly) {
  const std::string path = write_trace({}, "spans_cli_empty.jsonl");
  std::ostringstream out, err;
  // No data must never read as all-gates-green in CI.
  EXPECT_EQ(run_inspect_cli({"spans", path, "--max-stage-p99", "0.5"},
                            out, err),
            1);
  // Without gates an empty trace is merely a report, not a failure.
  std::ostringstream out2, err2;
  EXPECT_EQ(run_inspect_cli({"spans", path}, out2, err2), 0);
}

TEST_F(SpansCliTest, JsonOutputParsesAsBenchReport) {
  const std::string path =
      write_trace({quick_timeline(1, 0.020), quick_timeline(2, 0.030)},
                  "spans_cli_json.jsonl");
  std::ostringstream out, err;
  EXPECT_EQ(run_inspect_cli({"spans", path, "--json"}, out, err), 0);
  const bench::BenchReport report = bench::BenchReport::from_json(out.str());
  EXPECT_EQ(report.name, "match_inspect_spans");
  EXPECT_EQ(report.counters.at("outcome.net.served"), 2u);
  bool has_solve_case = false;
  for (const bench::BenchCase& c : report.cases) {
    if (c.name == "stage.solve") {
      has_solve_case = true;
      EXPECT_EQ(c.metrics.at("count"), 2.0);
    }
  }
  EXPECT_TRUE(has_solve_case);
}

TEST_F(SpansCliTest, TailAttributionGate) {
  // A timeline whose spans explain almost none of its latency.
  SpanTimeline opaque;
  opaque.start(1, SpanClock::time_point{});
  opaque.stamp_seconds(SpanStage::kSolve, 0.0, 0.001, "match");
  opaque.outcome = "net.served";
  opaque.total_seconds = 1.0;
  const std::string path = write_trace({opaque}, "spans_cli_attr.jsonl");
  std::ostringstream out, err;
  EXPECT_EQ(run_inspect_cli({"spans", path, "--min-tail-attribution", "90"},
                            out, err),
            1);
  std::ostringstream out2, err2;
  EXPECT_EQ(run_inspect_cli({"spans", path, "--min-tail-attribution", "0.05"},
                            out2, err2),
            0);
}

}  // namespace
}  // namespace match::obs
