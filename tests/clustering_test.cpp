#include "baselines/clustering.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graph/generators.hpp"
#include "workload/paper_suite.hpp"

namespace match::baselines {
namespace {

graph::Tig make_tig(std::size_t n, std::uint64_t seed) {
  rng::Rng rng(seed);
  return graph::Tig(
      graph::make_clustered(n, 4, 0.7, 0.15, {1, 10}, {50, 100}, rng));
}

TEST(Coarsen, ReachesExactTarget) {
  const auto tig = make_tig(24, 1);
  rng::Rng rng(2);
  for (std::size_t target : {1u, 2u, 6u, 12u, 24u}) {
    const Clustering c = coarsen_tig(tig, target, rng);
    EXPECT_EQ(c.num_clusters, target);
    EXPECT_EQ(c.coarse.num_tasks(), target);
    // Labels are dense in [0, target).
    std::set<graph::NodeId> labels(c.cluster_of.begin(), c.cluster_of.end());
    EXPECT_EQ(labels.size(), target);
    EXPECT_EQ(*labels.rbegin(), static_cast<graph::NodeId>(target - 1));
  }
}

TEST(Coarsen, PreservesTotalComputeWeight) {
  const auto tig = make_tig(30, 3);
  rng::Rng rng(4);
  const Clustering c = coarsen_tig(tig, 7, rng);
  EXPECT_NEAR(c.coarse.graph().total_node_weight(),
              tig.graph().total_node_weight(), 1e-9);
}

TEST(Coarsen, ClusterWeightEqualsMemberSum) {
  const auto tig = make_tig(20, 5);
  rng::Rng rng(6);
  const Clustering c = coarsen_tig(tig, 5, rng);
  std::vector<double> sums(5, 0.0);
  for (graph::NodeId t = 0; t < 20; ++t) {
    sums[c.cluster_of[t]] += tig.compute_weight(t);
  }
  for (graph::NodeId k = 0; k < 5; ++k) {
    EXPECT_NEAR(c.coarse.compute_weight(k), sums[k], 1e-9);
  }
}

TEST(Coarsen, CoarseEdgesAggregateCutVolume) {
  const auto tig = make_tig(16, 7);
  rng::Rng rng(8);
  const Clustering c = coarsen_tig(tig, 4, rng);
  // For every cluster pair, the coarse edge weight must equal the summed
  // inter-cluster edge weights of the original TIG.
  for (graph::NodeId a = 0; a < 4; ++a) {
    for (graph::NodeId b = a + 1; b < 4; ++b) {
      double expected = 0.0;
      for (const auto& e : tig.graph().edge_list()) {
        if ((c.cluster_of[e.u] == a && c.cluster_of[e.v] == b) ||
            (c.cluster_of[e.u] == b && c.cluster_of[e.v] == a)) {
          expected += e.weight;
        }
      }
      EXPECT_NEAR(c.coarse.comm_volume(a, b), expected, 1e-9)
          << "clusters " << a << "," << b;
    }
  }
}

TEST(Coarsen, HeavyEdgesCollapseFirst) {
  // A graph with two obvious heavy pairs and light cross edges: the heavy
  // pairs must end up intra-cluster.
  graph::Graph::Builder b;
  for (int i = 0; i < 4; ++i) b.add_node(1.0);
  b.add_edge(0, 1, 1000.0);
  b.add_edge(2, 3, 1000.0);
  b.add_edge(1, 2, 1.0);
  b.add_edge(0, 3, 1.0);
  const graph::Tig tig(b.build());
  rng::Rng rng(9);
  const Clustering c = coarsen_tig(tig, 2, rng);
  EXPECT_EQ(c.cluster_of[0], c.cluster_of[1]);
  EXPECT_EQ(c.cluster_of[2], c.cluster_of[3]);
  EXPECT_NE(c.cluster_of[0], c.cluster_of[2]);
}

TEST(Coarsen, HandlesDisconnectedGraphs) {
  // Matching stalls on isolated nodes; the lightest-pair fallback must
  // still reach the target.
  const graph::Graph g = graph::Graph::from_edges(6, {}, std::vector<graph::Edge>{});
  const graph::Tig tig(g);
  rng::Rng rng(10);
  const Clustering c = coarsen_tig(tig, 2, rng);
  EXPECT_EQ(c.num_clusters, 2u);
}

TEST(Coarsen, RejectsBadTargets) {
  const auto tig = make_tig(10, 11);
  rng::Rng rng(12);
  EXPECT_THROW(coarsen_tig(tig, 0, rng), std::invalid_argument);
  EXPECT_THROW(coarsen_tig(tig, 11, rng), std::invalid_argument);
}

TEST(ClusterMapRefine, ProducesValidMappingOnRectangularInstance) {
  const auto tig = make_tig(24, 13);
  rng::Rng prng(14);
  const sim::Platform plat(graph::ResourceGraph(
      graph::make_complete(6, {1, 5}, {10, 20}, prng)));
  const sim::CostEvaluator eval(tig, plat);

  rng::Rng rng(15);
  const SearchResult r = cluster_map_refine(eval, {}, rng);
  EXPECT_TRUE(r.best_mapping.is_valid(6));
  EXPECT_EQ(r.best_mapping.num_tasks(), 24u);
  EXPECT_DOUBLE_EQ(eval.makespan(r.best_mapping), r.best_cost);
  EXPECT_GT(r.evaluations, 0u);
}

TEST(ClusterMapRefine, RefinementNeverHurts) {
  const auto tig = make_tig(20, 16);
  rng::Rng prng(17);
  const sim::Platform plat(graph::ResourceGraph(
      graph::make_complete(5, {1, 5}, {10, 20}, prng)));
  const sim::CostEvaluator eval(tig, plat);

  ClusterMapParams no_refine;
  no_refine.refine_passes = 0;
  ClusterMapParams with_refine;
  with_refine.refine_passes = 5;

  rng::Rng r1(18), r2(18);
  const auto a = cluster_map_refine(eval, no_refine, r1);
  const auto b = cluster_map_refine(eval, with_refine, r2);
  EXPECT_LE(b.best_cost, a.best_cost + 1e-9);
}

TEST(ClusterMapRefine, BeatsRandomAssignment) {
  const auto tig = make_tig(30, 19);
  rng::Rng prng(20);
  const sim::Platform plat(graph::ResourceGraph(
      graph::make_complete(6, {1, 5}, {10, 20}, prng)));
  const sim::CostEvaluator eval(tig, plat);

  rng::Rng rng(21);
  const auto clustered = cluster_map_refine(eval, {}, rng);

  // Mean of random many-to-one assignments as the reference.
  rng::Rng rrng(22);
  double random_mean = 0.0;
  constexpr int kTrials = 100;
  for (int i = 0; i < kTrials; ++i) {
    std::vector<graph::NodeId> assign(30);
    for (auto& a : assign) a = static_cast<graph::NodeId>(rrng.below(6));
    random_mean += eval.makespan(sim::Mapping(std::move(assign)));
  }
  random_mean /= kTrials;
  EXPECT_LT(clustered.best_cost, random_mean);
}

TEST(ClusterMapRefine, WorksOnSquareInstances) {
  rng::Rng setup(23);
  workload::PaperParams params;
  params.n = 12;
  const auto inst = workload::make_paper_instance(params, setup);
  const auto plat = inst.make_platform();
  const sim::CostEvaluator eval(inst.tig, plat);
  rng::Rng rng(24);
  const auto r = cluster_map_refine(eval, {}, rng);
  EXPECT_TRUE(r.best_mapping.is_valid(12));
}

TEST(ClusterMapRefine, RejectsMoreResourcesThanTasks) {
  const auto tig = make_tig(4, 25);
  rng::Rng prng(26);
  const sim::Platform plat(graph::ResourceGraph(
      graph::make_complete(6, {1, 5}, {10, 20}, prng)));
  const sim::CostEvaluator eval(tig, plat);
  rng::Rng rng(27);
  EXPECT_THROW(cluster_map_refine(eval, {}, rng), std::invalid_argument);
}

}  // namespace
}  // namespace match::baselines
