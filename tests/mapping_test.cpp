#include "sim/mapping.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "rng/rng.hpp"

namespace match::sim {
namespace {

TEST(Mapping, IdentityMapsEachTaskToItself) {
  const Mapping m = Mapping::identity(5);
  EXPECT_EQ(m.num_tasks(), 5u);
  for (graph::NodeId t = 0; t < 5; ++t) EXPECT_EQ(m.resource_of(t), t);
  EXPECT_TRUE(m.is_permutation());
}

TEST(Mapping, RandomPermutationIsValid) {
  rng::Rng rng(1);
  for (int trial = 0; trial < 50; ++trial) {
    const Mapping m = Mapping::random_permutation(12, rng);
    EXPECT_TRUE(m.is_permutation());
  }
}

TEST(Mapping, RandomPermutationsVary) {
  rng::Rng rng(2);
  const Mapping a = Mapping::random_permutation(20, rng);
  const Mapping b = Mapping::random_permutation(20, rng);
  EXPECT_FALSE(a == b);  // same with prob 1/20!
}

TEST(Mapping, IsPermutationRejectsDuplicates) {
  const Mapping m(std::vector<graph::NodeId>{0, 1, 1});
  EXPECT_FALSE(m.is_permutation());
}

TEST(Mapping, IsPermutationRejectsOutOfRange) {
  const Mapping m(std::vector<graph::NodeId>{0, 1, 5});
  EXPECT_FALSE(m.is_permutation());
}

TEST(Mapping, IsValidChecksResourceBound) {
  const Mapping m(std::vector<graph::NodeId>{0, 2, 2});
  EXPECT_TRUE(m.is_valid(3));
  EXPECT_FALSE(m.is_valid(2));
}

TEST(Mapping, SetUpdatesAssignment) {
  Mapping m = Mapping::identity(3);
  m.set(0, 2);
  EXPECT_EQ(m.resource_of(0), 2u);
  EXPECT_FALSE(m.is_permutation());  // 2 now appears twice
}

TEST(Mapping, TasksByResourceIsInverse) {
  rng::Rng rng(3);
  const Mapping m = Mapping::random_permutation(15, rng);
  const auto inv = m.tasks_by_resource();
  for (graph::NodeId t = 0; t < 15; ++t) {
    EXPECT_EQ(inv[m.resource_of(t)], t);
  }
}

TEST(Mapping, TasksByResourceThrowsOnNonPermutation) {
  const Mapping m(std::vector<graph::NodeId>{0, 0});
  EXPECT_THROW(m.tasks_by_resource(), std::logic_error);
}

TEST(Mapping, EqualityComparesAssignments) {
  EXPECT_EQ(Mapping::identity(4), Mapping::identity(4));
  EXPECT_FALSE(Mapping::identity(4) == Mapping::identity(5));
}

TEST(Mapping, AssignmentSpanViewsUnderlyingData) {
  const Mapping m(std::vector<graph::NodeId>{2, 0, 1});
  const auto view = m.assignment();
  ASSERT_EQ(view.size(), 3u);
  EXPECT_EQ(view[0], 2u);
  EXPECT_EQ(view[2], 1u);
}

}  // namespace
}  // namespace match::sim
