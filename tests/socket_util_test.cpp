// Shared socket plumbing (net/socket_util) and the EventLoop readiness
// multiplexer — including the SO_REUSEADDR restart-on-the-same-port
// regression both listeners (HttpExposer, MatchServer) rely on.

#include "net/socket_util.hpp"

#include <fcntl.h>
#include <gtest/gtest.h>
#include <poll.h>
#include <unistd.h>

#include <string>
#include <thread>

#include "net/event_loop.hpp"

namespace {

using namespace match::net;

TEST(SocketUtil, CloseFdIsIdempotentAndResets) {
  int fd = ::dup(STDOUT_FILENO);
  ASSERT_GE(fd, 0);
  close_fd(fd);
  EXPECT_EQ(fd, -1);
  close_fd(fd);  // no-op, no crash
  EXPECT_EQ(fd, -1);
}

TEST(SocketUtil, SetNonblockingToggles) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  EXPECT_TRUE(set_nonblocking(fds[0], true));
  EXPECT_NE(::fcntl(fds[0], F_GETFL) & O_NONBLOCK, 0);
  EXPECT_TRUE(set_nonblocking(fds[0], false));
  EXPECT_EQ(::fcntl(fds[0], F_GETFL) & O_NONBLOCK, 0);
  EXPECT_FALSE(set_nonblocking(-1, true));
  close_fd(fds[0]);
  close_fd(fds[1]);
}

TEST(SocketUtil, ListenerAcceptsAndMovesBytesBothWays) {
  int listener = open_listener({});
  ASSERT_GE(listener, 0);
  const std::uint16_t port = bound_port(listener);
  ASSERT_GT(port, 0);

  int client = connect_to("127.0.0.1", port);
  ASSERT_GE(client, 0);
  int served = accept_retry(listener);
  ASSERT_GE(served, 0);

  const std::string ping = "hello across loopback";
  ASSERT_TRUE(send_all(client, ping.data(), ping.size()));
  std::string got(ping.size(), '\0');
  ASSERT_TRUE(recv_all(served, got.data(), got.size()));
  EXPECT_EQ(got, ping);

  ASSERT_TRUE(send_all(served, got.data(), got.size()));
  std::string echoed(ping.size(), '\0');
  ASSERT_TRUE(recv_all(client, echoed.data(), echoed.size()));
  EXPECT_EQ(echoed, ping);

  close_fd(client);
  // The peer closed: recv_all must report EOF, not hang or succeed.
  char byte;
  EXPECT_FALSE(recv_all(served, &byte, 1));
  close_fd(served);
  close_fd(listener);
}

TEST(SocketUtil, BadBindAddressThrows) {
  ListenerOptions options;
  options.bind_address = "not-an-address";
  EXPECT_THROW(open_listener(options), std::runtime_error);
}

TEST(SocketUtil, ConnectToDeadPortThrows) {
  // Grab an ephemeral port, then free it: connecting must now fail.
  int listener = open_listener({});
  const std::uint16_t port = bound_port(listener);
  close_fd(listener);
  EXPECT_THROW(connect_to("127.0.0.1", port), std::runtime_error);
}

// Regression: a restarted listener must rebind its previous port
// immediately, even right after serving real connections (whose sockets
// linger in TIME_WAIT without SO_REUSEADDR).
TEST(SocketUtil, RestartOnSamePortAfterServingConnections) {
  ListenerOptions options;
  int first = open_listener(options);
  const std::uint16_t port = bound_port(first);

  int client = connect_to("127.0.0.1", port);
  int served = accept_retry(first);
  ASSERT_GE(served, 0);
  const char byte = 'x';
  ASSERT_TRUE(send_all(served, &byte, 1));
  char got;
  ASSERT_TRUE(recv_all(client, &got, 1));
  // Server side closes first: its socket enters TIME_WAIT on this port.
  close_fd(served);
  close_fd(client);
  close_fd(first);

  options.port = port;
  int second = -1;
  ASSERT_NO_THROW(second = open_listener(options));
  EXPECT_EQ(bound_port(second), port);
  // And it actually serves.
  int again = connect_to("127.0.0.1", port);
  int peer = accept_retry(second);
  EXPECT_GE(peer, 0);
  close_fd(again);
  close_fd(peer);
  close_fd(second);
}

TEST(SocketUtil, WakeupCoalescesNotifiesAndDrains) {
  Wakeup wakeup;
  ASSERT_GE(wakeup.fd(), 0);

  pollfd pfd{wakeup.fd(), POLLIN, 0};
  EXPECT_EQ(::poll(&pfd, 1, 0), 0) << "readable before any notify";

  wakeup.notify();
  wakeup.notify();
  wakeup.notify();
  pfd.revents = 0;
  EXPECT_EQ(::poll(&pfd, 1, 1000), 1);
  EXPECT_NE(pfd.revents & POLLIN, 0);

  wakeup.drain();  // one drain consumes all three notifies
  pfd.revents = 0;
  EXPECT_EQ(::poll(&pfd, 1, 0), 0) << "still readable after drain";

  // Notify from another thread wakes a blocked poller.
  std::thread notifier([&wakeup] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    wakeup.notify();
  });
  pfd.revents = 0;
  EXPECT_EQ(::poll(&pfd, 1, 2000), 1);
  notifier.join();
  wakeup.drain();
}

// ------------------------------------------------------------- EventLoop

class EventLoopBothBackends
    : public ::testing::TestWithParam<EventLoop::Backend> {};

TEST_P(EventLoopBothBackends, ReadinessModifyAndRemove) {
  EventLoop loop(GetParam());
  Wakeup wakeup;
  loop.add(wakeup.fd(), /*want_read=*/true, /*want_write=*/false);
  EXPECT_EQ(loop.size(), 1u);

  std::vector<EventLoop::Ready> ready;
  EXPECT_EQ(loop.wait(0, ready), 0u) << "nothing ready yet";

  wakeup.notify();
  ASSERT_EQ(loop.wait(1000, ready), 1u);
  EXPECT_EQ(ready[0].fd, wakeup.fd());
  EXPECT_TRUE(ready[0].readable);
  EXPECT_FALSE(ready[0].writable);

  // Level-triggered: still ready until drained.
  ASSERT_EQ(loop.wait(0, ready), 1u);
  wakeup.drain();
  EXPECT_EQ(loop.wait(0, ready), 0u);

  // A connected socket is immediately writable once interest asks.
  int listener = open_listener({});
  int client = connect_to("127.0.0.1", bound_port(listener));
  int served = accept_retry(listener);
  loop.add(client, /*want_read=*/false, /*want_write=*/true);
  ASSERT_EQ(loop.wait(1000, ready), 1u);
  EXPECT_EQ(ready[0].fd, client);
  EXPECT_TRUE(ready[0].writable);

  loop.modify(client, /*want_read=*/true, /*want_write=*/false);
  EXPECT_EQ(loop.wait(0, ready), 0u) << "no longer write-interested";
  const char byte = 'y';
  ASSERT_TRUE(send_all(served, &byte, 1));
  ASSERT_EQ(loop.wait(1000, ready), 1u);
  EXPECT_TRUE(ready[0].readable);

  loop.remove(client);
  EXPECT_EQ(loop.size(), 1u);
  EXPECT_EQ(loop.wait(0, ready), 0u);
  loop.remove(client);  // double remove is fine

  EXPECT_THROW(loop.add(wakeup.fd(), true, false), std::runtime_error)
      << "double registration must be refused";

  close_fd(client);
  close_fd(served);
  close_fd(listener);
}

TEST_P(EventLoopBothBackends, PeerHangupReportsReadableOrError) {
  EventLoop loop(GetParam());
  int listener = open_listener({});
  int client = connect_to("127.0.0.1", bound_port(listener));
  int served = accept_retry(listener);
  loop.add(served, /*want_read=*/true, /*want_write=*/false);

  close_fd(client);
  std::vector<EventLoop::Ready> ready;
  ASSERT_EQ(loop.wait(1000, ready), 1u);
  // Hangup may surface as POLLIN (EOF on read) and/or POLLHUP; either
  // way a reader sees it.
  EXPECT_TRUE(ready[0].readable || ready[0].error);

  loop.remove(served);
  close_fd(served);
  close_fd(listener);
}

INSTANTIATE_TEST_SUITE_P(Backends, EventLoopBothBackends,
#ifdef __linux__
                         ::testing::Values(EventLoop::Backend::kEpoll,
                                           EventLoop::Backend::kPoll),
#else
                         ::testing::Values(EventLoop::Backend::kPoll),
#endif
                         [](const auto& info) {
                           return info.param == EventLoop::Backend::kEpoll
                                      ? "epoll"
                                      : "poll";
                         });

}  // namespace
