// Tests for the continuous distributions added to rng::Rng and the
// heavy-tailed workload model built on them, plus the KL divergence of
// stochastic matrices.

#include <gtest/gtest.h>

#include <cmath>

#include "core/stochastic_matrix.hpp"
#include "rng/rng.hpp"
#include "workload/paper_suite.hpp"

namespace match {
namespace {

TEST(Distributions, ExponentialMeanAndPositivity) {
  rng::Rng rng(1);
  const double lambda = 2.5;
  double sum = 0.0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    const double x = rng.exponential(lambda);
    ASSERT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / kDraws, 1.0 / lambda, 0.01);
}

TEST(Distributions, NormalMomentsMatch) {
  rng::Rng rng(2);
  const double mu = 3.0, sigma = 2.0;
  double sum = 0.0, sum_sq = 0.0;
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) {
    const double x = rng.normal(mu, sigma);
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / kDraws;
  const double var = sum_sq / kDraws - mean * mean;
  EXPECT_NEAR(mean, mu, 0.03);
  EXPECT_NEAR(var, sigma * sigma, 0.1);
}

TEST(Distributions, NormalIsRoughlySymmetric) {
  rng::Rng rng(3);
  int above = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    above += rng.normal() > 0.0 ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(above) / kDraws, 0.5, 0.01);
}

TEST(Distributions, LognormalMeanMatchesFormula) {
  rng::Rng rng(4);
  const double mu = 1.0, sigma = 0.5;
  double sum = 0.0;
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) {
    const double x = rng.lognormal(mu, sigma);
    ASSERT_GT(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / kDraws, std::exp(mu + 0.5 * sigma * sigma), 0.05);
}

TEST(Distributions, DeterministicStreams) {
  rng::Rng a(5), b(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.normal(), b.normal());
    EXPECT_DOUBLE_EQ(a.exponential(1.0), b.exponential(1.0));
  }
}

TEST(HeavyTailWorkload, PreservesMeanAndAddsTail) {
  workload::PaperParams uniform;
  uniform.n = 40;
  workload::PaperParams heavy = uniform;
  heavy.task_weight_model =
      workload::PaperParams::TaskWeightModel::kLognormal;
  heavy.lognormal_sigma = 1.2;

  // Average many instances so the comparison is statistical, not
  // per-instance.
  double mean_u = 0.0, mean_h = 0.0, max_u = 0.0, max_h = 0.0;
  constexpr int kInstances = 20;
  rng::Rng ru(6), rh(6);
  for (int i = 0; i < kInstances; ++i) {
    const auto iu = workload::make_paper_instance(uniform, ru);
    const auto ih = workload::make_paper_instance(heavy, rh);
    for (graph::NodeId t = 0; t < 40; ++t) {
      mean_u += iu.tig.compute_weight(t);
      mean_h += ih.tig.compute_weight(t);
      max_u = std::max(max_u, iu.tig.compute_weight(t));
      max_h = std::max(max_h, ih.tig.compute_weight(t));
    }
  }
  mean_u /= 40.0 * kInstances;
  mean_h /= 40.0 * kInstances;
  EXPECT_NEAR(mean_h, mean_u, 0.15 * mean_u);  // same mean by construction
  EXPECT_GT(max_h, max_u);                     // heavier tail
  EXPECT_LE(max_u, 10.0);                      // uniform stays in range
}

TEST(HeavyTailWorkload, WeightsAreAtLeastOne) {
  workload::PaperParams params;
  params.n = 25;
  params.task_weight_model =
      workload::PaperParams::TaskWeightModel::kLognormal;
  params.lognormal_sigma = 2.0;  // extreme tail
  rng::Rng rng(7);
  const auto inst = workload::make_paper_instance(params, rng);
  for (graph::NodeId t = 0; t < 25; ++t) {
    EXPECT_GE(inst.tig.compute_weight(t), 1.0);
  }
}

TEST(HeavyTailWorkload, RejectsBadSigma) {
  workload::PaperParams params;
  params.n = 10;
  params.task_weight_model =
      workload::PaperParams::TaskWeightModel::kLognormal;
  params.lognormal_sigma = 0.0;
  rng::Rng rng(8);
  EXPECT_THROW(workload::make_paper_instance(params, rng),
               std::invalid_argument);
}

TEST(KlDivergence, ZeroForIdenticalMatrices) {
  const auto p = core::StochasticMatrix::uniform(3, 4);
  EXPECT_DOUBLE_EQ(p.kl_divergence(p), 0.0);
}

TEST(KlDivergence, MatchesHandComputedValue) {
  const auto p = core::StochasticMatrix::from_values(1, 2, {0.75, 0.25});
  const auto q = core::StochasticMatrix::from_values(1, 2, {0.5, 0.5});
  const double expected =
      0.75 * std::log2(0.75 / 0.5) + 0.25 * std::log2(0.25 / 0.5);
  EXPECT_NEAR(p.kl_divergence(q), expected, 1e-12);
}

TEST(KlDivergence, AsymmetricAndNonNegative) {
  const auto p = core::StochasticMatrix::from_values(1, 2, {0.9, 0.1});
  const auto q = core::StochasticMatrix::from_values(1, 2, {0.4, 0.6});
  EXPECT_GT(p.kl_divergence(q), 0.0);
  EXPECT_GT(q.kl_divergence(p), 0.0);
  EXPECT_NE(p.kl_divergence(q), q.kl_divergence(p));
}

TEST(KlDivergence, InfiniteWhenSupportShrinks) {
  const auto p = core::StochasticMatrix::from_values(1, 2, {0.5, 0.5});
  const auto q = core::StochasticMatrix::from_values(1, 2, {1.0, 0.0});
  EXPECT_TRUE(std::isinf(p.kl_divergence(q)));
  // The reverse is finite: q's support is inside p's.
  EXPECT_TRUE(std::isfinite(q.kl_divergence(p)));
}

TEST(KlDivergence, RejectsShapeMismatch) {
  const auto p = core::StochasticMatrix::uniform(2, 2);
  const auto q = core::StochasticMatrix::uniform(2, 3);
  EXPECT_THROW(p.kl_divergence(q), std::invalid_argument);
}

}  // namespace
}  // namespace match
