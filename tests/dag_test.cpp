// Tests of the directed-graph layer (src/graph/dag.*): CSR construction
// in both directions, rejection of everything that is not a simple DAG,
// the topological utilities, and the three random DAG generator families
// (structure, determinism, weight ranges).

#include "graph/dag.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "graph/algorithms.hpp"
#include "rng/rng.hpp"
#include "workload/dag_suite.hpp"

namespace {

using namespace match;
using graph::Dag;
using graph::Edge;
using graph::NodeId;

Dag diamond() {
  // 0 → {1, 2} → 3, distinct weights everywhere.
  std::vector<Edge> edges = {
      {0, 1, 1.0}, {0, 2, 2.0}, {1, 3, 1.0}, {2, 3, 3.0}};
  return Dag::from_edges(4, {2.0, 3.0, 4.0, 1.0}, edges);
}

// ---- Construction ------------------------------------------------------

TEST(Dag, CsrAdjacencyIsConsistentInBothDirections) {
  const Dag g = diamond();
  EXPECT_EQ(g.num_nodes(), 4u);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_DOUBLE_EQ(g.total_node_weight(), 10.0);
  EXPECT_DOUBLE_EQ(g.total_edge_weight(), 7.0);

  EXPECT_EQ(g.out_degree(0), 2u);
  EXPECT_EQ(g.in_degree(0), 0u);
  EXPECT_EQ(g.out_degree(3), 0u);
  EXPECT_EQ(g.in_degree(3), 2u);

  // Every arc is visible from both endpoints with the same weight.
  for (const Edge& e : g.edge_list()) {
    EXPECT_TRUE(g.has_edge(e.u, e.v));
    EXPECT_FALSE(g.has_edge(e.v, e.u)) << "arcs are directed";
    EXPECT_DOUBLE_EQ(g.edge_weight(e.u, e.v), e.weight);
    const auto succ = g.successors(e.u);
    EXPECT_TRUE(std::any_of(succ.begin(), succ.end(), [&](const auto& s) {
      return s.id == e.v && s.weight == e.weight;
    }));
    const auto pred = g.predecessors(e.v);
    EXPECT_TRUE(std::any_of(pred.begin(), pred.end(), [&](const auto& p) {
      return p.id == e.u && p.weight == e.weight;
    }));
  }
}

TEST(Dag, DefaultNodeWeightsAreOne) {
  std::vector<Edge> edges = {{0, 1, 1.0}};
  const Dag g = Dag::from_edges(2, {}, edges);
  EXPECT_DOUBLE_EQ(g.node_weight(0), 1.0);
  EXPECT_DOUBLE_EQ(g.node_weight(1), 1.0);
}

TEST(Dag, RejectsCyclesSelfLoopsDuplicatesAndBadEndpoints) {
  std::vector<Edge> cycle = {{0, 1, 1.0}, {1, 2, 1.0}, {2, 0, 1.0}};
  EXPECT_THROW(Dag::from_edges(3, {}, cycle), std::invalid_argument);

  std::vector<Edge> self_loop = {{1, 1, 1.0}};
  EXPECT_THROW(Dag::from_edges(2, {}, self_loop), std::invalid_argument);

  std::vector<Edge> duplicate = {{0, 1, 1.0}, {0, 1, 2.0}};
  EXPECT_THROW(Dag::from_edges(2, {}, duplicate), std::invalid_argument);

  std::vector<Edge> out_of_range = {{0, 5, 1.0}};
  EXPECT_THROW(Dag::from_edges(2, {}, out_of_range), std::invalid_argument);

  std::vector<Edge> ok = {{0, 1, 1.0}};
  EXPECT_THROW(Dag::from_edges(2, {1.0}, ok), std::invalid_argument)
      << "node_weights size mismatch";
}

TEST(Dag, BuilderProducesSameGraphAsFromEdges) {
  Dag::Builder b;
  const NodeId n0 = b.add_node(2.0);
  const NodeId n1 = b.add_node(3.0);
  const NodeId n2 = b.add_node(4.0);
  const NodeId n3 = b.add_node(1.0);
  b.add_edge(n0, n1, 1.0);
  b.add_edge(n0, n2, 2.0);
  b.add_edge(n1, n3, 1.0);
  b.add_edge(n2, n3, 3.0);
  EXPECT_TRUE(b.build() == diamond());
}

// ---- Topological utilities ---------------------------------------------

TEST(DagAlgorithms, TopologicalOrderIsValidAndCanonical) {
  const Dag g = diamond();
  const std::vector<NodeId> order = graph::topological_order(g);
  ASSERT_EQ(order.size(), g.num_nodes());
  EXPECT_TRUE(graph::is_topological_order(g, order));
  // Canonical: deterministic for a fixed graph.
  EXPECT_EQ(graph::topological_order(g), order);

  std::vector<NodeId> bad = order;
  std::swap(bad.front(), bad.back());  // source after sink
  EXPECT_FALSE(graph::is_topological_order(g, bad));
  bad = {0, 0, 1, 2};  // not a permutation
  EXPECT_FALSE(graph::is_topological_order(g, bad));
}

TEST(DagAlgorithms, CriticalPathOfTheDiamond) {
  // Heaviest node-weight chain: 0 → 2 → 3 = 2 + 4 + 1.
  EXPECT_DOUBLE_EQ(graph::critical_path_node_weight(diamond()), 7.0);
}

// ---- Generator families ------------------------------------------------

TEST(DagGenerators, AllFamiliesProduceValidDagsOfTheRequestedSize) {
  for (const auto family :
       {workload::DagFamily::kLayered, workload::DagFamily::kForkJoin,
        workload::DagFamily::kSeriesParallel}) {
    for (const std::size_t tasks : {3u, 8u, 20u, 57u}) {
      for (std::uint64_t seed = 0; seed < 10; ++seed) {
        rng::Rng rng(seed);
        workload::DagSuiteParams params;
        params.tasks = tasks;
        const auto inst = workload::make_dag_instance(family, params, rng);
        EXPECT_EQ(inst.dag.num_nodes(), tasks)
            << workload::dag_family_name(family) << " seed " << seed;
        // Construction already rejects cycles; also check weight ranges.
        for (std::size_t t = 0; t < tasks; ++t) {
          const double w = inst.dag.node_weight(static_cast<NodeId>(t));
          EXPECT_GE(w, params.task_w.lo);
          EXPECT_LE(w, params.task_w.hi);
        }
        for (const Edge& e : inst.dag.edge_list()) {
          EXPECT_GE(e.weight, params.edge_w.lo);
          EXPECT_LE(e.weight, params.edge_w.hi);
        }
        EXPECT_EQ(inst.resources.num_resources(), params.resources);
      }
    }
  }
}

TEST(DagGenerators, DeterministicForAFixedSeed) {
  for (const auto family :
       {workload::DagFamily::kLayered, workload::DagFamily::kForkJoin,
        workload::DagFamily::kSeriesParallel}) {
    rng::Rng a(42), b(42);
    workload::DagSuiteParams params;
    params.tasks = 24;
    const auto x = workload::make_dag_instance(family, params, a);
    const auto y = workload::make_dag_instance(family, params, b);
    EXPECT_TRUE(x.dag == y.dag) << workload::dag_family_name(family);
    EXPECT_EQ(x.name, y.name);
  }
}

TEST(DagGenerators, FamiliesAreStructurallyDistinct) {
  // Fork-join always has a unique source; series-parallel a unique source
  // AND a unique sink (two-terminal by construction).
  rng::Rng rng(7);
  workload::DagSuiteParams params;
  params.tasks = 30;
  const auto fj = workload::make_dag_instance(workload::DagFamily::kForkJoin,
                                              params, rng);
  std::size_t fj_sources = 0;
  for (std::size_t t = 0; t < fj.dag.num_nodes(); ++t) {
    if (fj.dag.in_degree(static_cast<NodeId>(t)) == 0) ++fj_sources;
  }
  EXPECT_EQ(fj_sources, 1u);

  const auto sp = workload::make_dag_instance(
      workload::DagFamily::kSeriesParallel, params, rng);
  std::size_t sp_sources = 0, sp_sinks = 0;
  for (std::size_t t = 0; t < sp.dag.num_nodes(); ++t) {
    if (sp.dag.in_degree(static_cast<NodeId>(t)) == 0) ++sp_sources;
    if (sp.dag.out_degree(static_cast<NodeId>(t)) == 0) ++sp_sinks;
  }
  EXPECT_EQ(sp_sources, 1u);
  EXPECT_EQ(sp_sinks, 1u);
}

}  // namespace
