// Tests of the mapping service (src/service/): instance fingerprinting,
// the LRU solution cache, the deadline best-so-far contract, and the
// service's concurrency invariants — most importantly that responses are
// byte-identical regardless of worker count.

#include <gtest/gtest.h>

#include <cmath>
#include <future>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/matchalgo.hpp"
#include "service/deadline.hpp"
#include "service/instance_cache.hpp"
#include "service/request.hpp"
#include "service/service.hpp"
#include "service/solver_registry.hpp"
#include "sim/batch_eval.hpp"
#include "sim/evaluator.hpp"
#include "workload/any_instance.hpp"
#include "workload/dag_suite.hpp"
#include "workload/paper_suite.hpp"

namespace match::service {
namespace {

std::shared_ptr<const workload::AnyInstance> make_instance(std::size_t n,
                                                           std::uint64_t seed) {
  rng::Rng rng(seed);
  workload::PaperParams params;
  params.n = n;
  return std::make_shared<workload::AnyInstance>(
      workload::make_paper_instance(params, rng));
}

std::shared_ptr<const workload::AnyInstance> make_dag_instance(
    std::size_t n, std::uint64_t seed) {
  rng::Rng rng(seed);
  workload::DagSuiteParams params;
  params.tasks = n;
  return std::make_shared<workload::AnyInstance>(workload::make_dag_instance(
      workload::DagFamily::kLayered, params, rng));
}

// ---- Fingerprinting ----------------------------------------------------

TEST(Fingerprint, StableAcrossRegeneration) {
  // The same generator seed produces the same instance, so the canonical
  // fingerprint must match even though the objects are distinct.
  const auto a = make_instance(10, 1);
  const auto b = make_instance(10, 1);
  EXPECT_EQ(fingerprint_instance(*a), fingerprint_instance(*b));
}

TEST(Fingerprint, DiscriminatesDistinctInstances) {
  const auto a = make_instance(10, 1);
  const auto b = make_instance(10, 2);   // same size, different data
  const auto c = make_instance(12, 1);   // different size
  EXPECT_NE(fingerprint_instance(*a), fingerprint_instance(*b));
  EXPECT_NE(fingerprint_instance(*a), fingerprint_instance(*c));
}

TEST(Fingerprint, DagStableAcrossRegenerationAndDistinctFromTig) {
  const auto a = make_dag_instance(12, 1);
  const auto b = make_dag_instance(12, 1);
  const auto c = make_dag_instance(12, 2);
  EXPECT_EQ(fingerprint_instance(*a), fingerprint_instance(*b));
  EXPECT_NE(fingerprint_instance(*a), fingerprint_instance(*c));
  // Kind is mixed into the digest first, so a TIG and a DAG instance can
  // never collide by construction.
  const auto tig = make_instance(12, 1);
  EXPECT_NE(fingerprint_instance(*a), fingerprint_instance(*tig));
}

TEST(CacheKey, MixesSolverAndResultAffectingOptions) {
  const std::uint64_t fp = 0xfeedbeefULL;
  SolveOptions base;
  const std::uint64_t key = cache_key(fp, SolverKind::kMatch, base);

  EXPECT_NE(key, cache_key(fp, SolverKind::kGa, base));
  EXPECT_NE(key, cache_key(fp ^ 1, SolverKind::kMatch, base));

  SolveOptions other = base;
  other.seed = 99;
  EXPECT_NE(key, cache_key(fp, SolverKind::kMatch, other));
  other = base;
  other.max_iterations = 7;
  EXPECT_NE(key, cache_key(fp, SolverKind::kMatch, other));
  other = base;
  other.target_cost = 3.5;
  EXPECT_NE(key, cache_key(fp, SolverKind::kMatch, other));
}

TEST(CacheKey, DeadlineDoesNotParticipate) {
  // Deadline-truncated results are never cached, so two requests that
  // differ only in deadline must share one cache entry.
  const std::uint64_t fp = 0x1234ULL;
  SolveOptions a, b;
  a.deadline_seconds = 0.0;
  b.deadline_seconds = 2.5;
  EXPECT_EQ(cache_key(fp, SolverKind::kMatch, a),
            cache_key(fp, SolverKind::kMatch, b));
}

// ---- SolutionCache -----------------------------------------------------

CachedSolution solution_of(std::vector<graph::NodeId> assign, double cost) {
  CachedSolution s;
  s.mapping = sim::Mapping(std::move(assign));
  s.cost = cost;
  s.iterations = 1;
  return s;
}

TEST(SolutionCache, HitMissAndEvictionCounters) {
  SolutionCache cache(2);
  EXPECT_FALSE(cache.lookup(1).has_value());  // miss on empty

  cache.insert(1, solution_of({0, 1}, 1.0));
  cache.insert(2, solution_of({1, 0}, 2.0));
  EXPECT_TRUE(cache.lookup(1).has_value());

  // Key 1 was just refreshed, so inserting key 3 must evict key 2 (LRU).
  cache.insert(3, solution_of({0, 1}, 3.0));
  EXPECT_TRUE(cache.lookup(1).has_value());
  EXPECT_FALSE(cache.lookup(2).has_value());
  EXPECT_TRUE(cache.lookup(3).has_value());

  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 3u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.size, 2u);
  EXPECT_EQ(stats.capacity, 2u);
}

TEST(SolutionCache, ReturnsByteIdenticalAndNeverAliases) {
  SolutionCache cache(8);
  const CachedSolution a = solution_of({2, 0, 1}, 4.5);
  const CachedSolution b = solution_of({1, 2, 0}, 6.0);
  cache.insert(10, a);
  cache.insert(20, b);

  const auto got_a = cache.lookup(10);
  const auto got_b = cache.lookup(20);
  ASSERT_TRUE(got_a.has_value());
  ASSERT_TRUE(got_b.has_value());
  EXPECT_EQ(got_a->mapping, a.mapping);
  EXPECT_DOUBLE_EQ(got_a->cost, a.cost);
  EXPECT_EQ(got_b->mapping, b.mapping);
  EXPECT_DOUBLE_EQ(got_b->cost, b.cost);
  // Distinct keys never alias each other's entries.
  EXPECT_FALSE(got_a->mapping == got_b->mapping);
}

TEST(SolutionCache, ZeroCapacityDisablesStorage) {
  SolutionCache cache(0);
  cache.insert(1, solution_of({0}, 1.0));
  EXPECT_FALSE(cache.lookup(1).has_value());
  EXPECT_EQ(cache.stats().size, 0u);
}

// ---- Deadline / cancellation contract ----------------------------------

TEST(DeadlineContract, ExpiredDeadlineStopFnFires) {
  const StopFn stop = make_stop_fn(Deadline::in(-1.0));
  ASSERT_TRUE(static_cast<bool>(stop));
  EXPECT_TRUE(stop());
}

TEST(DeadlineContract, UnlimitedDeadlineYieldsEmptyStopFn) {
  EXPECT_FALSE(static_cast<bool>(make_stop_fn(Deadline::never())));
}

TEST(DeadlineContract, MatchCancelledImmediatelyReturnsValidMapping) {
  const auto inst = make_instance(10, 3);
  const auto platform = inst->make_platform();
  sim::CostEvaluator eval(inst->tig().tig, platform);
  core::MatchOptimizer opt(eval);
  rng::Rng rng(1);
  const auto r = opt.run(match::SolverContext(rng, [] { return true; }));
  EXPECT_EQ(r.stop_reason, core::StopReason::kCancelled);
  EXPECT_TRUE(r.best_mapping.is_permutation());
  EXPECT_TRUE(std::isfinite(r.best_cost));
  EXPECT_DOUBLE_EQ(r.best_cost, eval.makespan(r.best_mapping));
}

TEST(DeadlineContract, EverySolverSurvivesImmediateCancellation) {
  const auto tig = make_instance(8, 4);
  const auto dag = make_dag_instance(8, 4);
  SolverRegistry registry;
  SolveOptions options;
  for (SolverKind kind : registry.kinds()) {
    const Solver& solver = registry.get(kind);
    // Feed each solver an instance of a kind it supports; DAG mappings
    // are many-to-one, so permutation-ness is a TIG-only invariant.
    const bool is_tig = solver.supports(workload::WorkloadKind::kTig);
    const auto& inst = is_tig ? *tig : *dag;
    ASSERT_TRUE(solver.supports(inst.kind())) << to_string(kind);
    const SolveOutcome outcome = solver.solve(
        inst, options, match::SolverContext([] { return true; }));
    if (is_tig) {
      EXPECT_TRUE(outcome.mapping.is_permutation()) << to_string(kind);
    } else {
      EXPECT_EQ(outcome.mapping.num_tasks(), dag->size()) << to_string(kind);
    }
    EXPECT_TRUE(std::isfinite(outcome.best_cost)) << to_string(kind);
  }
}

TEST(DeadlineContract, ServiceFlagsMissAndStillReturnsValidMapping) {
  ServiceConfig config;
  config.workers = 2;
  MappingService service(config);

  MapRequest request;
  request.instance = make_instance(12, 5);
  request.solver = SolverKind::kMatch;
  request.options.deadline_seconds = 1e-9;  // expires before pickup
  const MapResponse response = service.solve(std::move(request));

  EXPECT_TRUE(response.deadline_missed);
  EXPECT_TRUE(response.mapping.is_permutation());
  EXPECT_TRUE(std::isfinite(response.cost));
  EXPECT_GT(response.total_seconds, 1e-9);
  EXPECT_EQ(service.stats().deadline_misses, 1u);
  service.shutdown();
}

// ---- Service behavior --------------------------------------------------

TEST(Service, RepeatedRequestIsServedFromCacheByteIdentical) {
  ServiceConfig config;
  config.workers = 1;
  MappingService service(config);

  MapRequest request;
  request.instance = make_instance(10, 6);
  request.solver = SolverKind::kMatch;
  request.options.seed = 3;
  request.options.max_iterations = 10;

  MapRequest again = request;
  const MapResponse first = service.solve(std::move(request));
  const MapResponse second = service.solve(std::move(again));

  EXPECT_EQ(first.served_by, ServedBy::kSolver);
  EXPECT_EQ(second.served_by, ServedBy::kCache);
  EXPECT_EQ(second.mapping, first.mapping);
  EXPECT_DOUBLE_EQ(second.cost, first.cost);
  EXPECT_EQ(second.fingerprint, first.fingerprint);
  EXPECT_EQ(service.stats().cache_hits, 1u);
  service.shutdown();
}

TEST(Service, DistinctInstancesNeverShareCacheEntries) {
  ServiceConfig config;
  config.workers = 1;
  MappingService service(config);

  MapRequest a, b;
  a.instance = make_instance(10, 7);
  b.instance = make_instance(10, 8);
  a.options.max_iterations = b.options.max_iterations = 10;
  const MapResponse ra = service.solve(std::move(a));
  const MapResponse rb = service.solve(std::move(b));

  EXPECT_NE(ra.fingerprint, rb.fingerprint);
  EXPECT_EQ(ra.served_by, ServedBy::kSolver);
  EXPECT_EQ(rb.served_by, ServedBy::kSolver);  // no false hit
  EXPECT_EQ(service.stats().cache_hits, 0u);
  service.shutdown();
}

TEST(Service, CacheOptOutForcesFreshSolves) {
  ServiceConfig config;
  config.workers = 1;
  MappingService service(config);

  MapRequest request;
  request.instance = make_instance(8, 9);
  request.options.max_iterations = 5;
  request.options.use_cache = false;
  MapRequest again = request;

  const MapResponse first = service.solve(std::move(request));
  const MapResponse second = service.solve(std::move(again));
  EXPECT_EQ(first.served_by, ServedBy::kSolver);
  EXPECT_EQ(second.served_by, ServedBy::kSolver);
  // Determinism still holds: same seed, same answer — just recomputed.
  EXPECT_EQ(second.mapping, first.mapping);
  service.shutdown();
}

TEST(Service, SubmitAfterShutdownThrows) {
  MappingService service;
  service.shutdown();
  MapRequest request;
  request.instance = make_instance(8, 10);
  EXPECT_THROW(service.submit(std::move(request)), std::runtime_error);
}

TEST(Service, RejectsNullInstance) {
  MappingService service;
  MapRequest request;  // instance left null
  EXPECT_THROW(service.submit(std::move(request)), std::invalid_argument);
  service.shutdown();
}

TEST(Service, IdenticalConcurrentRequestsAllAgree) {
  // Whether each duplicate is served by the solver, the cache, or
  // coalesced onto the leader's run is scheduling-dependent — but the
  // mapping must be identical in all cases, and every request accounted.
  ServiceConfig config;
  config.workers = 4;
  MappingService service(config);

  MapRequest proto;
  proto.instance = make_instance(12, 11);
  proto.solver = SolverKind::kMatch;
  proto.options.seed = 2;
  proto.options.max_iterations = 20;

  constexpr std::size_t kDuplicates = 24;
  std::vector<std::future<MapResponse>> futures;
  for (std::size_t i = 0; i < kDuplicates; ++i) {
    MapRequest request = proto;
    request.id = i;
    futures.push_back(service.submit(std::move(request)));
  }
  std::vector<MapResponse> responses;
  for (auto& f : futures) responses.push_back(f.get());

  for (const MapResponse& r : responses) {
    EXPECT_TRUE(r.mapping.is_permutation());
    EXPECT_EQ(r.mapping, responses.front().mapping);
    EXPECT_DOUBLE_EQ(r.cost, responses.front().cost);
  }
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.submitted, kDuplicates);
  EXPECT_EQ(stats.completed, kDuplicates);
  service.shutdown();
}

// ---- Multi-threaded determinism smoke test -----------------------------

std::vector<MapResponse> run_smoke_batch(std::size_t workers,
                                         std::size_t requests) {
  const std::vector<std::shared_ptr<const workload::AnyInstance>> instances = {
      make_instance(8, 100), make_instance(10, 101), make_instance(12, 102)};

  ServiceConfig config;
  config.workers = workers;
  MappingService service(config);

  std::vector<std::future<MapResponse>> futures;
  futures.reserve(requests);
  for (std::size_t i = 0; i < requests; ++i) {
    MapRequest request;
    request.id = i;
    request.instance = instances[i % instances.size()];
    switch (i % 3) {
      case 0:
        request.solver = SolverKind::kMatch;
        request.options.max_iterations = 5;
        break;
      case 1:
        request.solver = SolverKind::kLocalSearch;
        request.options.max_iterations = 400;
        break;
      default:
        request.solver = SolverKind::kMinMin;
        break;
    }
    request.options.seed = 1 + (i % 8);
    futures.push_back(service.submit(std::move(request)));
  }

  std::vector<MapResponse> responses;
  responses.reserve(requests);
  for (auto& f : futures) responses.push_back(f.get());
  service.shutdown();
  return responses;
}

TEST(Service, MultiThreadedSmokeIsDeterministicAcrossWorkerCounts) {
  // >= 4 workers, >= 200 requests (the satellite's floor); with no
  // deadlines in play the (mapping, cost) of every request must be
  // independent of worker count and scheduling.
  constexpr std::size_t kRequests = 200;
  const std::vector<MapResponse> serial = run_smoke_batch(1, kRequests);
  const std::vector<MapResponse> threaded = run_smoke_batch(4, kRequests);

  ASSERT_EQ(serial.size(), kRequests);
  ASSERT_EQ(threaded.size(), kRequests);
  for (std::size_t i = 0; i < kRequests; ++i) {
    EXPECT_TRUE(threaded[i].mapping.is_permutation()) << i;
    EXPECT_EQ(threaded[i].mapping, serial[i].mapping) << i;
    EXPECT_DOUBLE_EQ(threaded[i].cost, serial[i].cost) << i;
    EXPECT_FALSE(threaded[i].deadline_missed) << i;
  }
}

TEST(Service, StatsAccountForEveryRequest) {
  ServiceConfig config;
  config.workers = 2;
  MappingService service(config);

  constexpr std::size_t kRequests = 16;
  std::vector<std::future<MapResponse>> futures;
  for (std::size_t i = 0; i < kRequests; ++i) {
    MapRequest request;
    request.id = i;
    request.instance = make_instance(8, 200 + (i % 4));
    request.options.max_iterations = 5;
    futures.push_back(service.submit(std::move(request)));
  }
  for (auto& f : futures) f.get();
  service.drain();

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.submitted, kRequests);
  EXPECT_EQ(stats.completed, kRequests);
  EXPECT_EQ(stats.queue_depth, 0u);
  EXPECT_EQ(stats.in_flight, 0u);
  EXPECT_GT(stats.mean_latency_seconds, 0.0);
  EXPECT_GE(stats.p99_latency_seconds, stats.p50_latency_seconds);
  service.shutdown();
}

// ---- Request plumbing --------------------------------------------------

TEST(Request, SolverKindNamesRoundTrip) {
  for (SolverKind kind :
       {SolverKind::kMatch, SolverKind::kGa, SolverKind::kLocalSearch,
        SolverKind::kMinMin, SolverKind::kMaxMin, SolverKind::kSufferage,
        SolverKind::kHeft, SolverKind::kTopoList, SolverKind::kDagCe}) {
    EXPECT_EQ(parse_solver_kind(to_string(kind)), kind);
  }
  EXPECT_THROW(parse_solver_kind("no-such-solver"), std::invalid_argument);
}

// ---- Registry contract -------------------------------------------------

TEST(Registry, DuplicateRegistrationIsRejected) {
  // A second adapter silently shadowing the first would make dispatch
  // dependent on registration order; the registry refuses instead, and
  // `replace_solver` is the deliberate swap path.
  class NullSolver final : public Solver {
   public:
    const char* name() const override { return "null"; }
    SolveOutcome solve(const workload::AnyInstance&, const SolveOptions&,
                       const match::SolverContext&) const override {
      return {};
    }
  };
  SolverRegistry registry;
  EXPECT_THROW(
      registry.register_solver(SolverKind::kMatch,
                               std::make_unique<NullSolver>()),
      std::invalid_argument);
  // The original adapter is untouched by the failed insert.
  EXPECT_STREQ(registry.get(SolverKind::kMatch).name(), "match");
  registry.replace_solver(SolverKind::kMatch, std::make_unique<NullSolver>());
  EXPECT_STREQ(registry.get(SolverKind::kMatch).name(), "null");
}

TEST(Registry, WorkloadKindSupportMatchesAdapterFamily) {
  SolverRegistry registry;
  EXPECT_TRUE(registry.get(SolverKind::kMatch)
                  .supports(workload::WorkloadKind::kTig));
  EXPECT_FALSE(registry.get(SolverKind::kMatch)
                   .supports(workload::WorkloadKind::kDag));
  EXPECT_TRUE(registry.get(SolverKind::kHeft)
                  .supports(workload::WorkloadKind::kDag));
  EXPECT_FALSE(registry.get(SolverKind::kHeft)
                   .supports(workload::WorkloadKind::kTig));
  EXPECT_TRUE(registry.get(SolverKind::kDagCe)
                  .supports(workload::WorkloadKind::kDag));
}

TEST(Service, RejectsWorkloadKindMismatchAtSubmit) {
  MappingService service;
  MapRequest request;
  request.instance = make_dag_instance(8, 21);
  request.solver = SolverKind::kMatch;  // TIG-only solver, DAG instance
  EXPECT_THROW(service.submit(std::move(request)), std::invalid_argument);

  MapRequest tig_to_dag;
  tig_to_dag.instance = make_instance(8, 22);
  tig_to_dag.solver = SolverKind::kHeft;  // DAG-only solver, TIG instance
  EXPECT_THROW(service.submit(std::move(tig_to_dag)), std::invalid_argument);
  service.shutdown();
}

TEST(Service, ServesDagWorkloadsEndToEnd) {
  ServiceConfig config;
  config.workers = 2;
  MappingService service(config);

  const auto inst = make_dag_instance(12, 23);
  for (SolverKind kind :
       {SolverKind::kHeft, SolverKind::kTopoList, SolverKind::kDagCe}) {
    MapRequest request;
    request.instance = inst;
    request.solver = kind;
    request.options.seed = 7;
    const MapResponse response = service.solve(std::move(request));
    EXPECT_EQ(response.mapping.num_tasks(), inst->size()) << to_string(kind);
    EXPECT_TRUE(std::isfinite(response.cost)) << to_string(kind);
    EXPECT_GT(response.cost, 0.0) << to_string(kind);
  }
  service.shutdown();
}

TEST(Service, DagCeBooksResolvedEvalBackendCounter) {
  // The DAG CE adapter threads `solver_defaults.eval_backend` into its
  // ScheduleEvaluator and books the resolved kernel as a
  // `solver.backend.<name>` counter — same observability contract as the
  // TIG batch-evaluation solvers.
  {
    ServiceConfig config;
    config.workers = 1;
    config.solver_defaults.eval_backend = sim::EvalBackend::kScalar;
    MappingService service(config);
    MapRequest request;
    request.instance = make_dag_instance(10, 31);
    request.solver = SolverKind::kDagCe;
    request.options.seed = 3;
    request.options.max_iterations = 2;
    (void)service.solve(std::move(request));
    EXPECT_GE(service.metrics().counter_value("solver.backend.scalar"), 1u);
    service.shutdown();
  }
  {
    ServiceConfig config;
    config.workers = 1;
    config.solver_defaults.eval_backend = sim::EvalBackend::kAuto;
    MappingService service(config);
    MapRequest request;
    request.instance = make_dag_instance(10, 31);
    request.solver = SolverKind::kDagCe;
    request.options.seed = 3;
    request.options.max_iterations = 2;
    (void)service.solve(std::move(request));
    const std::string resolved = std::string("solver.backend.") +
        sim::to_string(sim::resolve_eval_backend(sim::EvalBackend::kAuto));
    EXPECT_GE(service.metrics().counter_value(resolved), 1u);
    service.shutdown();
  }
}

}  // namespace
}  // namespace match::service
