// Backend dispatch of the lane-parallel DAG schedule kernels: every
// compiled-in SIMD backend must reproduce the scalar assignment-mode
// makespans bit for bit, lane for lane, on every DAG family — and the
// answer must not depend on thread count or chunk geometry (groups are
// globally aligned, so a chunk boundary inside a lane group re-evaluates
// the whole group and writes only its own lanes).  Also covers the
// batch entry points' validation contract (resource ids are checked
// serially up front — worker tasks must not throw) and the exec-cost
// table the kernels gather from.

#include "sim/schedule_eval.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "parallel/thread_pool.hpp"
#include "rng/rng.hpp"
#include "workload/dag_suite.hpp"

namespace match::sim {
namespace {

const workload::DagFamily kFamilies[] = {
    workload::DagFamily::kLayered,
    workload::DagFamily::kForkJoin,
    workload::DagFamily::kSeriesParallel,
};

workload::DagInstance make_instance(workload::DagFamily family,
                                    std::size_t tasks, std::uint64_t seed) {
  rng::Rng rng(seed);
  workload::DagSuiteParams params;
  params.tasks = tasks;
  return workload::make_dag_instance(family, params, rng);
}

/// Fills `block` with uniform random assignments over `nr` resources and
/// returns the AoS copy.
std::vector<graph::NodeId> fill_assignments(SampleBlock& block, std::size_t n,
                                            std::size_t count, std::size_t nr,
                                            rng::Rng& rng) {
  block.reset(n, count);
  std::vector<graph::NodeId> rows(count * n);
  for (std::size_t i = 0; i < count; ++i) {
    for (std::size_t t = 0; t < n; ++t) {
      rows[i * n + t] = static_cast<graph::NodeId>(rng.below(nr));
    }
    block.store_sample(i,
                       std::span<const graph::NodeId>(rows.data() + i * n, n));
  }
  return rows;
}

std::vector<EvalBackend> available_vector_backends() {
  std::vector<EvalBackend> v;
  for (EvalBackend b :
       {EvalBackend::kAvx2, EvalBackend::kAvx512, EvalBackend::kNeon}) {
    if (eval_backend_available(b)) v.push_back(b);
  }
  return v;
}

TEST(ScheduleBackend, ResolutionMirrorsBatchEvaluatorRules) {
  const ScheduleEvaluator::Scratch scratch;
  const workload::DagInstance inst =
      make_instance(workload::DagFamily::kLayered, 12, 3);
  const Platform platform = inst.make_platform();

  // kAuto resolves to the process-wide widest available backend; an
  // unavailable explicit request degrades to kScalar, never throws.
  const ScheduleEvaluator autod(inst.dag, platform);
  EXPECT_EQ(autod.backend(), resolve_eval_backend(EvalBackend::kAuto));
  const ScheduleEvaluator forced(inst.dag, platform, EvalBackend::kScalar);
  EXPECT_EQ(forced.backend(), EvalBackend::kScalar);
  EXPECT_STREQ(forced.backend_name(), "scalar");
  for (EvalBackend b : {EvalBackend::kAvx2, EvalBackend::kAvx512,
                        EvalBackend::kNeon}) {
    const ScheduleEvaluator e(inst.dag, platform, b);
    EXPECT_EQ(e.backend(),
              eval_backend_available(b) ? b : EvalBackend::kScalar);
  }
}

TEST(ScheduleBackend, ExecCostTableMatchesDefinition) {
  const workload::DagInstance inst =
      make_instance(workload::DagFamily::kForkJoin, 16, 5);
  const Platform platform = inst.make_platform();
  const ScheduleEvaluator eval(inst.dag, platform, EvalBackend::kScalar);
  const std::size_t nr = platform.num_resources();
  ASSERT_EQ(eval.exec_costs().size(), 16 * nr);
  for (std::size_t t = 0; t < 16; ++t) {
    for (std::size_t r = 0; r < nr; ++r) {
      EXPECT_EQ(eval.exec_cost(t, r),
                inst.dag.node_weight(static_cast<graph::NodeId>(t)) *
                    platform.processing_cost(r));
    }
  }
}

TEST(ScheduleBackend, BatchScalarMatchesPerSampleMakespan) {
  for (const workload::DagFamily family : kFamilies) {
    const workload::DagInstance inst = make_instance(family, 20, 11);
    const Platform platform = inst.make_platform();
    const ScheduleEvaluator eval(inst.dag, platform, EvalBackend::kScalar);
    rng::Rng rng(4);
    SampleBlock block;
    const auto rows =
        fill_assignments(block, 20, 33, platform.num_resources(), rng);
    std::vector<double> out(33);
    eval.makespans_batch(block, out);
    ScheduleEvaluator::Scratch scratch;
    for (std::size_t i = 0; i < 33; ++i) {
      EXPECT_EQ(out[i], eval.makespan(std::span<const graph::NodeId>(
                            rows.data() + i * 20, 20),
                                      scratch))
          << workload::dag_family_name(family) << " sample " << i;
    }
  }
}

TEST(ScheduleBackend, VectorBackendsBitIdenticalAcrossFamilies) {
  // The DAG suite draws integer task/edge/resource weights, so every
  // backend must agree bitwise — the kernels never reassociate or fuse.
  for (const workload::DagFamily family : kFamilies) {
    const workload::DagInstance inst = make_instance(family, 48, 17);
    const Platform platform = inst.make_platform();
    rng::Rng rng(5);
    SampleBlock block;
    // Odd count exercises the tail (partial) lane group.
    fill_assignments(block, 48, 101, platform.num_resources(), rng);

    const ScheduleEvaluator scalar(inst.dag, platform, EvalBackend::kScalar);
    std::vector<double> ref(101), out(101);
    scalar.makespans_batch(block, ref);

    for (const EvalBackend b : available_vector_backends()) {
      const ScheduleEvaluator vec(inst.dag, platform, b);
      ASSERT_EQ(vec.backend(), b);
      std::fill(out.begin(), out.end(), -1.0);
      vec.makespans_batch(block, out);
      for (std::size_t i = 0; i < out.size(); ++i) {
        EXPECT_EQ(out[i], ref[i]) << to_string(b) << " on "
                                  << workload::dag_family_name(family)
                                  << " sample " << i;
      }
    }
  }
}

TEST(ScheduleBackend, ThreadCountAndChunkGeometryDoNotChangeResults) {
  const workload::DagInstance inst =
      make_instance(workload::DagFamily::kLayered, 32, 23);
  const Platform platform = inst.make_platform();
  rng::Rng rng(8);
  SampleBlock block;
  fill_assignments(block, 32, 107, platform.num_resources(), rng);

  std::vector<EvalBackend> backends = {EvalBackend::kScalar};
  for (const EvalBackend b : available_vector_backends()) backends.push_back(b);

  for (const EvalBackend b : backends) {
    const ScheduleEvaluator eval(inst.dag, platform, b);
    std::vector<double> serial(107), pooled(107);
    parallel::ForOptions one_chunk;
    one_chunk.serial_cutoff = 1 << 20;
    eval.makespans_batch(block, serial, one_chunk);

    for (const std::size_t threads : {1u, 2u, 8u}) {
      parallel::ThreadPool pool(threads);
      // Uneven grains put chunk boundaries inside lane groups; the
      // aligned-group contract makes that invisible in the output.
      for (const std::size_t grain : {1u, 3u, 7u}) {
        parallel::ForOptions opts;
        opts.pool = &pool;
        opts.serial_cutoff = 0;
        opts.grain = grain;
        std::fill(pooled.begin(), pooled.end(), -1.0);
        eval.makespans_batch(block, pooled, opts);
        for (std::size_t i = 0; i < pooled.size(); ++i) {
          EXPECT_EQ(pooled[i], serial[i])
              << to_string(b) << " threads=" << threads << " grain=" << grain
              << " sample " << i;
        }
      }
    }
  }
}

TEST(ScheduleBackend, PriorityBatchMatchesPerSampleScheduler) {
  for (const workload::DagFamily family : kFamilies) {
    const workload::DagInstance inst = make_instance(family, 24, 29);
    const Platform platform = inst.make_platform();
    const ScheduleEvaluator eval(inst.dag, platform);
    rng::Rng rng(6);

    const std::size_t count = 21;
    SampleBlock block(24, count);
    std::vector<graph::NodeId> row(24);
    std::vector<std::vector<graph::NodeId>> perms;
    for (std::size_t i = 0; i < count; ++i) {
      std::iota(row.begin(), row.end(), graph::NodeId{0});
      rng.shuffle(std::span<graph::NodeId>(row));
      block.store_sample(i, row);
      perms.push_back(row);
    }
    std::vector<double> out(count);
    eval.priority_makespans_batch(block, out);
    ScheduleEvaluator::Scratch scratch;
    for (std::size_t i = 0; i < count; ++i) {
      EXPECT_EQ(out[i], eval.schedule_priorities(perms[i], scratch))
          << workload::dag_family_name(family) << " sample " << i;
    }
  }
}

TEST(ScheduleBackend, OutOfRangeResourceIdsThrow) {
  const workload::DagInstance inst =
      make_instance(workload::DagFamily::kSeriesParallel, 10, 31);
  const Platform platform = inst.make_platform();
  const ScheduleEvaluator eval(inst.dag, platform);
  const std::size_t nr = platform.num_resources();

  std::vector<graph::NodeId> assignment(10, 0);
  assignment[7] = static_cast<graph::NodeId>(nr);  // one past the end
  ScheduleEvaluator::Scratch scratch;
  EXPECT_THROW((void)eval.makespan(assignment, scratch),
               std::invalid_argument);

  // The batch path validates the whole block up front (serially — the
  // worker tasks must not throw), so a single bad lane rejects the call.
  SampleBlock block(10, 12);
  std::vector<graph::NodeId> row(10, 0);
  for (std::size_t i = 0; i < 12; ++i) block.store_sample(i, row);
  row[3] = static_cast<graph::NodeId>(nr + 4);
  block.store_sample(11, row);
  std::vector<double> out(12);
  EXPECT_THROW(eval.makespans_batch(block, out), std::invalid_argument);
}

}  // namespace
}  // namespace match::sim
