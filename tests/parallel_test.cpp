#include "parallel/parallel_for.hpp"
#include "parallel/thread_pool.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <mutex>
#include <numeric>
#include <thread>
#include <vector>

namespace match::parallel {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, SingleThreadPoolStillWorks) {
  ThreadPool pool(1);
  std::atomic<int> counter{0};
  for (int i = 0; i < 10; ++i) pool.submit([&counter] { ++counter; });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPool, ZeroRequestsHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(ThreadPool, DestructorDrainsPendingWork) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) pool.submit([&counter] { ++counter; });
  }  // destructor joins
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, GlobalPoolIsASingleton) {
  EXPECT_EQ(&ThreadPool::global(), &ThreadPool::global());
}

TEST(ThreadPool, SubmitAfterShutdownThrows) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 20; ++i) pool.submit([&counter] { ++counter; });
  pool.shutdown();
  // Shutdown drains pending work before joining, so nothing is lost...
  EXPECT_EQ(counter.load(), 20);
  // ...and any later submit would otherwise be silently dropped.
  EXPECT_THROW(pool.submit([] {}), std::runtime_error);
}

TEST(ThreadPool, ShutdownIsIdempotent) {
  ThreadPool pool(2);
  pool.shutdown();
  pool.shutdown();  // must not hang or double-join
  EXPECT_THROW(pool.submit([] {}), std::runtime_error);
}

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  constexpr std::size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  parallel_for(0, kN, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelFor, EmptyRangeIsANoop) {
  bool ran = false;
  parallel_for(5, 5, [&](std::size_t) { ran = true; });
  parallel_for(7, 3, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ParallelFor, NonZeroBaseOffset) {
  std::vector<std::atomic<int>> hits(100);
  parallel_for(40, 60, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(hits[i].load(), (i >= 40 && i < 60) ? 1 : 0);
  }
}

TEST(ParallelFor, SerialCutoffRunsInline) {
  ForOptions opts;
  opts.serial_cutoff = 1000;
  const auto caller = std::this_thread::get_id();
  std::vector<std::thread::id> ids(10);
  parallel_for(
      0, 10, [&](std::size_t i) { ids[i] = std::this_thread::get_id(); }, opts);
  for (const auto& id : ids) EXPECT_EQ(id, caller);
}

TEST(ParallelForChunked, ChunksAreDisjointAndCovering) {
  constexpr std::size_t kN = 5000;
  std::vector<std::atomic<int>> hits(kN);
  ForOptions opts;
  opts.serial_cutoff = 0;
  opts.grain = 16;
  parallel_for_chunked(
      0, kN,
      [&](std::size_t lo, std::size_t hi, std::size_t /*chunk*/) {
        for (std::size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
      },
      opts);
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ParallelForChunked, ChunkIndicesAreDense) {
  ForOptions opts;
  opts.serial_cutoff = 0;
  opts.grain = 8;
  std::mutex mu;
  std::vector<std::size_t> chunk_ids;
  parallel_for_chunked(
      0, 1000,
      [&](std::size_t, std::size_t, std::size_t chunk) {
        std::lock_guard<std::mutex> lock(mu);
        chunk_ids.push_back(chunk);
      },
      opts);
  std::sort(chunk_ids.begin(), chunk_ids.end());
  for (std::size_t k = 0; k < chunk_ids.size(); ++k) EXPECT_EQ(chunk_ids[k], k);
}

TEST(ParallelTransform, ComputesEveryElement) {
  constexpr std::size_t kN = 4096;
  std::vector<double> out(kN, -1.0);
  parallel_transform(kN, out.data(),
                     [](std::size_t i) { return static_cast<double>(i * i); });
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_DOUBLE_EQ(out[i], static_cast<double>(i * i));
  }
}

TEST(ParallelFor, SumMatchesSerialReference) {
  constexpr std::size_t kN = 100000;
  std::vector<double> values(kN);
  for (std::size_t i = 0; i < kN; ++i) values[i] = std::sqrt(static_cast<double>(i));

  std::atomic<double> parallel_sum{0.0};
  parallel_for_chunked(0, kN, [&](std::size_t lo, std::size_t hi, std::size_t) {
    double local = 0.0;
    for (std::size_t i = lo; i < hi; ++i) local += values[i];
    double expected = parallel_sum.load();
    while (!parallel_sum.compare_exchange_weak(expected, expected + local)) {
    }
  });
  const double serial_sum = std::accumulate(values.begin(), values.end(), 0.0);
  EXPECT_NEAR(parallel_sum.load(), serial_sum, 1e-6 * serial_sum);
}

class ParallelForSizeTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ParallelForSizeTest, CoversRangeForManySizes) {
  const std::size_t n = GetParam();
  std::vector<std::atomic<int>> hits(n == 0 ? 1 : n);
  ForOptions opts;
  opts.serial_cutoff = 4;
  opts.grain = 3;
  parallel_for(
      0, n, [&](std::size_t i) { hits[i].fetch_add(1); }, opts);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ParallelForSizeTest,
                         ::testing::Values(0u, 1u, 2u, 3u, 7u, 64u, 65u, 1023u,
                                           1024u, 4097u));

}  // namespace
}  // namespace match::parallel
