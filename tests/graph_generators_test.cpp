#include "graph/generators.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "graph/algorithms.hpp"
#include "rng/rng.hpp"

namespace match::graph {
namespace {

void expect_weights_in_range(const Graph& g, WeightRange node_w,
                             WeightRange edge_w) {
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    EXPECT_GE(g.node_weight(u), static_cast<double>(node_w.lo));
    EXPECT_LE(g.node_weight(u), static_cast<double>(node_w.hi));
  }
  for (const Edge& e : g.edge_list()) {
    EXPECT_GE(e.weight, static_cast<double>(edge_w.lo));
    EXPECT_LE(e.weight, static_cast<double>(edge_w.hi));
  }
}

TEST(Complete, HasAllEdges) {
  rng::Rng rng(1);
  const Graph g = make_complete(10, {1, 5}, {10, 20}, rng);
  EXPECT_EQ(g.num_nodes(), 10u);
  EXPECT_EQ(g.num_edges(), 45u);
  expect_weights_in_range(g, {1, 5}, {10, 20});
}

TEST(Ring, HasNEdgesAndDegreeTwo) {
  rng::Rng rng(2);
  const Graph g = make_ring(8, {1, 1}, {1, 1}, rng);
  EXPECT_EQ(g.num_edges(), 8u);
  for (NodeId u = 0; u < 8; ++u) EXPECT_EQ(g.degree(u), 2u);
  EXPECT_TRUE(is_connected(g));
}

TEST(Ring, RejectsTinyN) {
  rng::Rng rng(3);
  EXPECT_THROW(make_ring(2, {1, 1}, {1, 1}, rng), std::invalid_argument);
}

TEST(Star, HubHasFullDegree) {
  rng::Rng rng(4);
  const Graph g = make_star(9, {1, 1}, {1, 1}, rng);
  EXPECT_EQ(g.num_edges(), 8u);
  EXPECT_EQ(g.degree(0), 8u);
  for (NodeId u = 1; u < 9; ++u) EXPECT_EQ(g.degree(u), 1u);
}

TEST(Mesh, EdgeCountWithoutTorus) {
  rng::Rng rng(5);
  const Graph g = make_mesh(3, 4, false, {1, 1}, {1, 1}, rng);
  EXPECT_EQ(g.num_nodes(), 12u);
  // rows*(cols-1) + cols*(rows-1) = 3*3 + 4*2 = 17
  EXPECT_EQ(g.num_edges(), 17u);
  EXPECT_TRUE(is_connected(g));
}

TEST(Mesh, TorusAddsWrapEdges) {
  rng::Rng rng(6);
  const Graph g = make_mesh(3, 4, true, {1, 1}, {1, 1}, rng);
  // 17 + 3 row wraps (cols=4>2) + 4 col wraps (rows=3>2) = 24; every node
  // degree 4 in a full torus.
  EXPECT_EQ(g.num_edges(), 24u);
  for (NodeId u = 0; u < g.num_nodes(); ++u) EXPECT_EQ(g.degree(u), 4u);
}

TEST(Mesh, TorusSkipsDegenerateWraps) {
  rng::Rng rng(7);
  const Graph g = make_mesh(2, 3, true, {1, 1}, {1, 1}, rng);
  // Mesh: 2*2 + 3*1 = 7; wraps: cols=3>2 adds 2, rows=2 adds none -> 9.
  EXPECT_EQ(g.num_edges(), 9u);
}

TEST(Gnp, ZeroProbabilityStillConnectedWhenForced) {
  rng::Rng rng(8);
  const Graph g = make_gnp(12, 0.0, {1, 1}, {5, 5}, rng, true);
  EXPECT_TRUE(is_connected(g));
  EXPECT_GE(g.num_edges(), 11u);  // at least a spanning set of patch edges
}

TEST(Gnp, ZeroProbabilityUnforcedIsEmpty) {
  rng::Rng rng(9);
  const Graph g = make_gnp(12, 0.0, {1, 1}, {5, 5}, rng, false);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(Gnp, FullProbabilityIsComplete) {
  rng::Rng rng(10);
  const Graph g = make_gnp(9, 1.0, {1, 1}, {1, 1}, rng);
  EXPECT_EQ(g.num_edges(), 36u);
}

TEST(Gnp, EdgeCountTracksProbability) {
  rng::Rng rng(11);
  const Graph g = make_gnp(60, 0.3, {1, 1}, {1, 1}, rng, false);
  const double expected = 0.3 * 60 * 59 / 2.0;
  EXPECT_NEAR(static_cast<double>(g.num_edges()), expected, 0.25 * expected);
}

TEST(Gnp, RejectsBadProbability) {
  rng::Rng rng(12);
  EXPECT_THROW(make_gnp(5, 1.5, {1, 1}, {1, 1}, rng), std::invalid_argument);
  EXPECT_THROW(make_gnp(5, -0.1, {1, 1}, {1, 1}, rng), std::invalid_argument);
}

TEST(Clustered, DenseRegionsAreDenser) {
  rng::Rng rng(13);
  const std::size_t n = 60, regions = 3;
  const Graph g = make_clustered(n, regions, 0.8, 0.05, {1, 1}, {1, 1}, rng,
                                 false);
  std::size_t intra = 0, inter = 0;
  for (const Edge& e : g.edge_list()) {
    if (e.u % regions == e.v % regions) {
      ++intra;
    } else {
      ++inter;
    }
  }
  // Possible intra pairs: 3 * C(20,2) = 570 at p=.8 -> ~456.
  // Possible inter pairs: C(60,2) - 570 = 1200 at p=.05 -> ~60.
  EXPECT_GT(intra, inter);
  EXPECT_NEAR(static_cast<double>(intra), 456.0, 120.0);
  EXPECT_NEAR(static_cast<double>(inter), 60.0, 40.0);
}

TEST(Clustered, ForcedConnectivity) {
  rng::Rng rng(14);
  const Graph g = make_clustered(30, 5, 0.5, 0.0, {1, 1}, {1, 1}, rng, true);
  EXPECT_TRUE(is_connected(g));
}

TEST(Clustered, RejectsZeroRegions) {
  rng::Rng rng(15);
  EXPECT_THROW(make_clustered(10, 0, 0.5, 0.5, {1, 1}, {1, 1}, rng),
               std::invalid_argument);
}

TEST(BarabasiAlbert, EdgeCountFormula) {
  rng::Rng rng(16);
  const std::size_t n = 40, m = 3;
  const Graph g = make_barabasi_albert(n, m, {1, 1}, {1, 1}, rng);
  // Seed clique over m+1 nodes + m edges per subsequent node.
  const std::size_t expected = (m + 1) * m / 2 + (n - m - 1) * m;
  EXPECT_EQ(g.num_edges(), expected);
  EXPECT_TRUE(is_connected(g));
}

TEST(BarabasiAlbert, ProducesSkewedDegrees) {
  rng::Rng rng(17);
  const Graph g = make_barabasi_albert(200, 2, {1, 1}, {1, 1}, rng);
  const GraphStats s = compute_stats(g);
  // Scale-free graphs have hubs: max degree well above the mean.
  EXPECT_GT(static_cast<double>(s.max_degree), 3.0 * s.mean_degree);
}

TEST(BarabasiAlbert, RejectsBadParams) {
  rng::Rng rng(18);
  EXPECT_THROW(make_barabasi_albert(5, 0, {1, 1}, {1, 1}, rng),
               std::invalid_argument);
  EXPECT_THROW(make_barabasi_albert(3, 3, {1, 1}, {1, 1}, rng),
               std::invalid_argument);
}

TEST(Generators, DeterministicForFixedSeed) {
  rng::Rng a(42), b(42);
  EXPECT_EQ(make_gnp(25, 0.4, {1, 9}, {1, 99}, a),
            make_gnp(25, 0.4, {1, 9}, {1, 99}, b));
}

TEST(Generators, DifferentSeedsDiffer) {
  rng::Rng a(42), b(43);
  EXPECT_FALSE(make_gnp(25, 0.4, {1, 9}, {1, 99}, a) ==
               make_gnp(25, 0.4, {1, 9}, {1, 99}, b));
}

using TopologyParam = std::tuple<const char*, std::size_t>;

class TopologyWeightTest : public ::testing::TestWithParam<TopologyParam> {};

TEST_P(TopologyWeightTest, WeightsRespectRanges) {
  const auto [kind, n] = GetParam();
  rng::Rng rng(99);
  const WeightRange node_w{2, 7}, edge_w{30, 40};
  Graph g;
  const std::string k = kind;
  if (k == "complete") {
    g = make_complete(n, node_w, edge_w, rng);
  } else if (k == "ring") {
    g = make_ring(n, node_w, edge_w, rng);
  } else if (k == "star") {
    g = make_star(n, node_w, edge_w, rng);
  } else if (k == "gnp") {
    g = make_gnp(n, 0.5, node_w, edge_w, rng);
  } else if (k == "clustered") {
    g = make_clustered(n, 3, 0.7, 0.2, node_w, edge_w, rng);
  } else {
    g = make_barabasi_albert(n, 2, node_w, edge_w, rng);
  }
  EXPECT_EQ(g.num_nodes(), n);
  expect_weights_in_range(g, node_w, edge_w);
}

INSTANTIATE_TEST_SUITE_P(
    AllTopologies, TopologyWeightTest,
    ::testing::Combine(::testing::Values("complete", "ring", "star", "gnp",
                                         "clustered", "ba"),
                       ::testing::Values(std::size_t{10}, std::size_t{30})));

}  // namespace
}  // namespace match::graph
