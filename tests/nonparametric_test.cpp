#include "stats/nonparametric.hpp"

#include "stats/descriptive.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace match::stats {
namespace {

TEST(MannWhitney, IdenticalSamplesShowNoDifference) {
  const std::vector<double> x = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  const auto r = mann_whitney_u(x, x);
  EXPECT_NEAR(r.effect_size, 0.5, 1e-12);
  EXPECT_GT(r.p_value, 0.9);
}

TEST(MannWhitney, DisjointSamplesAreExtreme) {
  std::vector<double> x, y;
  for (int i = 0; i < 15; ++i) {
    x.push_back(i);          // 0..14
    y.push_back(100.0 + i);  // 100..114
  }
  const auto r = mann_whitney_u(x, y);
  // Every x below every y: U = 0, effect size = 1 (P(X < Y) = 1).
  EXPECT_DOUBLE_EQ(r.u, 0.0);
  EXPECT_DOUBLE_EQ(r.effect_size, 1.0);
  EXPECT_LT(r.p_value, 1e-5);
}

TEST(MannWhitney, SymmetricInDirection) {
  std::vector<double> x = {1, 3, 5, 7, 9, 11, 13, 15};
  std::vector<double> y = {2, 4, 6, 8, 10, 12, 14, 16};
  const auto ab = mann_whitney_u(x, y);
  const auto ba = mann_whitney_u(y, x);
  EXPECT_NEAR(ab.p_value, ba.p_value, 1e-12);
  EXPECT_NEAR(ab.effect_size + ba.effect_size, 1.0, 1e-12);
}

TEST(MannWhitney, HandlesTies) {
  const std::vector<double> x = {1, 1, 2, 2, 3, 3, 4, 4};
  const std::vector<double> y = {1, 2, 2, 3, 3, 4, 4, 4};
  const auto r = mann_whitney_u(x, y);
  EXPECT_GE(r.p_value, 0.0);
  EXPECT_LE(r.p_value, 1.0);
  EXPECT_GT(r.p_value, 0.3);  // near-identical distributions
}

TEST(MannWhitney, AllValuesEqual) {
  const std::vector<double> x(10, 5.0), y(12, 5.0);
  const auto r = mann_whitney_u(x, y);
  EXPECT_DOUBLE_EQ(r.p_value, 1.0);
  EXPECT_DOUBLE_EQ(r.z, 0.0);
}

TEST(MannWhitney, KnownSmallExample) {
  // Classic worked example: x = {7,3,6,2}, y = {5,1,4}.
  // Ranks: 1:y 2:x 3:x 4:y 5:y 6:x 7:x -> R_x = 2+3+6+7 = 18,
  // U_x = 18 - 4*5/2 = 8 of max 12.
  const std::vector<double> x = {7, 3, 6, 2};
  const std::vector<double> y = {5, 1, 4};
  const auto r = mann_whitney_u(x, y);
  EXPECT_DOUBLE_EQ(r.u, 8.0);
}

TEST(MannWhitney, RejectsEmpty) {
  const std::vector<double> x = {1.0};
  EXPECT_THROW(mann_whitney_u(x, {}), std::invalid_argument);
  EXPECT_THROW(mann_whitney_u({}, x), std::invalid_argument);
}

TEST(Bootstrap, IntervalCoversTheMean) {
  std::vector<double> data;
  for (int i = 0; i < 50; ++i) data.push_back(10.0 + (i % 7));
  rng::Rng rng(1);
  const auto ci = bootstrap_mean_ci(data, 0.95, 2000, rng);
  double mean = 0.0;
  for (double v : data) mean += v;
  mean /= data.size();
  EXPECT_LT(ci.lo, mean);
  EXPECT_GT(ci.hi, mean);
  EXPECT_EQ(ci.resamples, 2000u);
}

TEST(Bootstrap, DegenerateSampleGivesPointInterval) {
  const std::vector<double> data(20, 3.5);
  rng::Rng rng(2);
  const auto ci = bootstrap_mean_ci(data, 0.95, 500, rng);
  EXPECT_DOUBLE_EQ(ci.lo, 3.5);
  EXPECT_DOUBLE_EQ(ci.hi, 3.5);
}

TEST(Bootstrap, WiderLevelWiderInterval) {
  std::vector<double> data;
  for (int i = 0; i < 40; ++i) data.push_back(static_cast<double>(i * i % 23));
  rng::Rng r1(3), r2(3);
  const auto ci90 = bootstrap_mean_ci(data, 0.90, 4000, r1);
  const auto ci99 = bootstrap_mean_ci(data, 0.99, 4000, r2);
  EXPECT_LE(ci99.lo, ci90.lo);
  EXPECT_GE(ci99.hi, ci90.hi);
}

TEST(Bootstrap, AgreesWithTIntervalOnWellBehavedData) {
  // For a symmetric sample the percentile bootstrap and the t interval
  // should roughly coincide.
  std::vector<double> data;
  rng::Rng gen(4);
  for (int i = 0; i < 100; ++i) data.push_back(gen.normal(50.0, 5.0));
  rng::Rng rng(5);
  const auto boot = bootstrap_mean_ci(data, 0.95, 4000, rng);
  const auto t_ci = mean_confidence_interval(data, 0.95);
  EXPECT_NEAR(boot.lo, t_ci.lo, 0.5);
  EXPECT_NEAR(boot.hi, t_ci.hi, 0.5);
}

TEST(Bootstrap, RejectsBadArguments) {
  const std::vector<double> data = {1.0, 2.0};
  rng::Rng rng(6);
  EXPECT_THROW(bootstrap_mean_ci({}, 0.95, 100, rng), std::invalid_argument);
  EXPECT_THROW(bootstrap_mean_ci(data, 1.0, 100, rng), std::invalid_argument);
  EXPECT_THROW(bootstrap_mean_ci(data, 0.95, 5, rng), std::invalid_argument);
}

}  // namespace
}  // namespace match::stats
