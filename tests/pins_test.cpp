// Tests for task pinning: GenPerm-level constraint sampling and the
// MatchOptimizer::set_pin API.

#include <gtest/gtest.h>

#include "core/genperm.hpp"
#include "core/matchalgo.hpp"
#include "sim/mapping.hpp"
#include "workload/paper_suite.hpp"

namespace match::core {
namespace {

struct Fixture {
  workload::Instance inst;
  sim::Platform platform;
  sim::CostEvaluator eval;

  explicit Fixture(std::size_t n, std::uint64_t seed)
      : inst(make(n, seed)),
        platform(inst.make_platform()),
        eval(inst.tig, platform) {}

  static workload::Instance make(std::size_t n, std::uint64_t seed) {
    rng::Rng rng(seed);
    workload::PaperParams params;
    params.n = n;
    return workload::make_paper_instance(params, rng);
  }
};

TEST(GenPermPins, PinnedTasksAlwaysLandOnTheirResource) {
  constexpr std::size_t kN = 8;
  GenPermSampler sampler(kN);
  const auto p = StochasticMatrix::uniform(kN, kN);
  rng::Rng rng(1);

  std::vector<graph::NodeId> pins(kN, GenPermSampler::kNoPin);
  pins[2] = 5;
  pins[6] = 0;

  std::vector<graph::NodeId> out(kN);
  for (int trial = 0; trial < 300; ++trial) {
    sampler.sample(p, rng, out, true, pins);
    EXPECT_EQ(out[2], 5u);
    EXPECT_EQ(out[6], 0u);
    EXPECT_TRUE(sim::Mapping(std::vector<graph::NodeId>(out.begin(),
                                                        out.end()))
                    .is_permutation());
  }
}

TEST(GenPermPins, UnpinnedTasksNeverTakePinnedResources) {
  constexpr std::size_t kN = 6;
  GenPermSampler sampler(kN);
  // Bias every row heavily toward resource 3 — which is pinned to task 0,
  // so nobody else may take it.
  std::vector<double> values(kN * kN, 0.02);
  for (std::size_t i = 0; i < kN; ++i) values[i * kN + 3] = 0.9;
  for (std::size_t i = 0; i < kN; ++i) {
    double sum = 0.0;
    for (std::size_t j = 0; j < kN; ++j) sum += values[i * kN + j];
    for (std::size_t j = 0; j < kN; ++j) values[i * kN + j] /= sum;
  }
  const auto p = StochasticMatrix::from_values(kN, kN, std::move(values));

  std::vector<graph::NodeId> pins(kN, GenPermSampler::kNoPin);
  pins[0] = 3;
  rng::Rng rng(2);
  std::vector<graph::NodeId> out(kN);
  for (int trial = 0; trial < 200; ++trial) {
    sampler.sample(p, rng, out, true, pins);
    EXPECT_EQ(out[0], 3u);
    for (std::size_t t = 1; t < kN; ++t) EXPECT_NE(out[t], 3u);
  }
}

TEST(GenPermPins, AliasBackendRespectsPins) {
  // The alias backend's rejection loop must treat pinned resources as
  // taken from the first pick: pinned tasks land on their resource, no
  // unpinned task ever takes a pinned one, and every draw is a valid
  // permutation.  Rows are biased toward the pinned resources so the
  // rejection path (not just the fallback) is exercised.
  constexpr std::size_t kN = 12;
  std::vector<double> values(kN * kN, 0.01);
  for (std::size_t i = 0; i < kN; ++i) {
    values[i * kN + 5] = 0.5;
    values[i * kN + 9] = 0.3;
    double sum = 0.0;
    for (std::size_t j = 0; j < kN; ++j) sum += values[i * kN + j];
    for (std::size_t j = 0; j < kN; ++j) values[i * kN + j] /= sum;
  }
  const auto p = StochasticMatrix::from_values(kN, kN, std::move(values));
  RowAliasTables tables;
  tables.build(p);

  std::vector<graph::NodeId> pins(kN, GenPermSampler::kNoPin);
  pins[1] = 5;
  pins[8] = 9;
  GenPermSampler sampler(kN);
  rng::Rng rng(12);
  std::vector<graph::NodeId> out(kN);
  for (int trial = 0; trial < 500; ++trial) {
    sampler.sample(p, tables, rng, out, true, pins);
    EXPECT_EQ(out[1], 5u);
    EXPECT_EQ(out[8], 9u);
    for (std::size_t t = 0; t < kN; ++t) {
      if (t != 1) {
        EXPECT_NE(out[t], 5u) << "trial " << trial;
      }
      if (t != 8) {
        EXPECT_NE(out[t], 9u) << "trial " << trial;
      }
    }
    ASSERT_TRUE(sim::Mapping(std::vector<graph::NodeId>(out.begin(),
                                                        out.end()))
                    .is_permutation());
  }
}

TEST(MatchPins, ResultRespectsPins) {
  Fixture f(10, 3);
  MatchOptimizer opt(f.eval);
  opt.set_pin(4, 7);
  opt.set_pin(0, 2);
  rng::Rng rng(4);
  const MatchResult r = opt.run(match::SolverContext(rng));
  EXPECT_TRUE(r.best_mapping.is_permutation());
  EXPECT_EQ(r.best_mapping.resource_of(4), 7u);
  EXPECT_EQ(r.best_mapping.resource_of(0), 2u);
}

TEST(MatchPins, PinnedRunCostsNoLessThanFree) {
  Fixture f(10, 5);
  rng::Rng r1(6), r2(6);
  const MatchResult free_run = MatchOptimizer(f.eval).run(match::SolverContext(r1));

  // Pin a task to a deliberately different resource than the free
  // optimum chose: the constrained optimum cannot be better.
  const graph::NodeId task = 3;
  const graph::NodeId forced =
      (free_run.best_mapping.resource_of(task) + 1) % 10;
  MatchOptimizer pinned(f.eval);
  pinned.set_pin(task, forced);
  const MatchResult pinned_run = pinned.run(match::SolverContext(r2));
  EXPECT_GE(pinned_run.best_cost, free_run.best_cost - 1e-9);
}

TEST(MatchPins, FullyPinnedRunIsDeterminate) {
  Fixture f(6, 7);
  MatchOptimizer opt(f.eval);
  std::vector<graph::NodeId> target = {3, 0, 5, 1, 4, 2};
  for (graph::NodeId t = 0; t < 6; ++t) opt.set_pin(t, target[t]);
  rng::Rng rng(8);
  const MatchResult r = opt.run(match::SolverContext(rng));
  EXPECT_EQ(r.best_mapping, sim::Mapping(target));
  EXPECT_DOUBLE_EQ(r.best_cost, f.eval.makespan(sim::Mapping(target)));
}

TEST(MatchPins, RejectsConflictsAndBadIndices) {
  Fixture f(8, 9);
  MatchOptimizer opt(f.eval);
  opt.set_pin(1, 4);
  EXPECT_THROW(opt.set_pin(2, 4), std::invalid_argument);  // resource reuse
  EXPECT_THROW(opt.set_pin(99, 0), std::invalid_argument);
  EXPECT_THROW(opt.set_pin(0, 99), std::invalid_argument);
  // Re-pinning the same task to a new resource is allowed.
  EXPECT_NO_THROW(opt.set_pin(1, 5));
  EXPECT_NO_THROW(opt.set_pin(2, 4));  // 4 is free again
}

TEST(MatchPins, ClearPinsRestoresFreeSearch) {
  Fixture f(8, 10);
  MatchOptimizer opt(f.eval);
  opt.set_pin(0, 1);
  opt.clear_pins();
  rng::Rng r1(11), r2(11);
  const auto a = opt.run(match::SolverContext(r1));
  const auto b = MatchOptimizer(f.eval).run(match::SolverContext(r2));
  EXPECT_EQ(a.best_mapping, b.best_mapping);
}

}  // namespace
}  // namespace match::core
