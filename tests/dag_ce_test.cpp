// Tests of CE over priority permutations (src/core/dag_ce.*): parameter
// validation, determinism, the cancellation contract, and the search
// actually optimizing (beats the mean of random priorities, reproduces
// its reported cost from the returned priority).

#include "core/dag_ce.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "rng/rng.hpp"
#include "sim/schedule_eval.hpp"
#include "workload/dag_suite.hpp"

namespace {

using namespace match;
using graph::NodeId;

/// The evaluator stores pointers to the DAG and platform, so the three
/// are constructed in declaration order, in place, and never moved.
struct Fixture {
  workload::DagInstance inst;
  sim::Platform platform;
  sim::ScheduleEvaluator eval;

  explicit Fixture(std::size_t tasks = 16, std::uint64_t seed = 3,
                   workload::DagFamily family = workload::DagFamily::kLayered)
      : inst([&] {
          rng::Rng rng(seed);
          workload::DagSuiteParams params;
          params.tasks = tasks;
          return workload::make_dag_instance(family, params, rng);
        }()),
        platform(inst.make_platform()),
        eval(inst.dag, platform) {}

  Fixture(const Fixture&) = delete;
  Fixture& operator=(const Fixture&) = delete;
};

core::DagCeParams quick_params() {
  core::DagCeParams p;
  p.max_iterations = 30;
  p.sample_size = 48;
  return p;
}

TEST(DagCeParams, ValidationRejectsNonsense) {
  core::DagCeParams p;
  EXPECT_NO_THROW(p.validate());
  p.rho = 0.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = {};
  p.zeta = 1.5;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = {};
  p.max_iterations = 0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(DagCe, DeterministicForAFixedSeed) {
  const Fixture f;
  rng::Rng a(11), b(11);
  const auto x = core::solve_dag_ce(f.eval, quick_params(),
                                    match::SolverContext(a));
  const auto y = core::solve_dag_ce(f.eval, quick_params(),
                                    match::SolverContext(b));
  EXPECT_EQ(x.best_priority, y.best_priority);
  EXPECT_DOUBLE_EQ(x.best_cost, y.best_cost);
  EXPECT_EQ(x.evaluations, y.evaluations);
  EXPECT_TRUE(x.best_mapping == y.best_mapping);
}

TEST(DagCe, ReportedCostReproducesFromTheReturnedPriority) {
  const Fixture f(20, 5);
  rng::Rng rng(2);
  const auto res = core::solve_dag_ce(f.eval, quick_params(),
                                      match::SolverContext(rng));
  ASSERT_EQ(res.best_priority.size(), f.eval.num_tasks());
  sim::ScheduleEvaluator::Scratch scratch;
  EXPECT_DOUBLE_EQ(f.eval.schedule_priorities(res.best_priority, scratch),
                   res.best_cost);
  EXPECT_DOUBLE_EQ(res.schedule.makespan, res.best_cost);

  std::string why;
  EXPECT_TRUE(
      sim::schedule_feasible(f.inst.dag, f.platform, res.schedule, &why))
      << why;
}

TEST(DagCe, BeatsTheMeanRandomPriorityOnEveryFamily) {
  for (const auto family :
       {workload::DagFamily::kLayered, workload::DagFamily::kForkJoin,
        workload::DagFamily::kSeriesParallel}) {
    const Fixture f(24, 7, family);
    rng::Rng rng(3);
    const auto res = core::solve_dag_ce(f.eval, quick_params(),
                                        match::SolverContext(rng));

    // Mean makespan of random priorities, same evaluator.
    rng::Rng shuffler(99);
    std::vector<NodeId> perm(f.eval.num_tasks());
    std::iota(perm.begin(), perm.end(), NodeId{0});
    sim::ScheduleEvaluator::Scratch scratch;
    double sum = 0.0;
    constexpr int kDraws = 64;
    for (int i = 0; i < kDraws; ++i) {
      shuffler.shuffle(perm);
      sum += f.eval.schedule_priorities(perm, scratch);
    }
    EXPECT_LE(res.best_cost, sum / kDraws)
        << workload::dag_family_name(family);
  }
}

TEST(DagCe, CancelledBeforeFirstBatchStillReturnsAFeasibleSchedule) {
  const Fixture f;
  rng::Rng rng(4);
  const auto res = core::solve_dag_ce(
      f.eval, quick_params(),
      match::SolverContext(rng, [] { return true; }));
  EXPECT_TRUE(res.cancelled);
  EXPECT_TRUE(std::isfinite(res.best_cost));
  ASSERT_EQ(res.best_priority.size(), f.eval.num_tasks());
  std::string why;
  EXPECT_TRUE(
      sim::schedule_feasible(f.inst.dag, f.platform, res.schedule, &why))
      << why;
}

TEST(DagCe, TargetCostStopsEarly) {
  const Fixture f;
  core::DagCeParams params = quick_params();
  params.target_cost = 1e18;  // any first batch reaches it
  rng::Rng rng(6);
  const auto res =
      core::solve_dag_ce(f.eval, params, match::SolverContext(rng));
  EXPECT_FALSE(res.cancelled);
  EXPECT_LE(res.iterations, 1u);
  EXPECT_TRUE(std::isfinite(res.best_cost));
}

TEST(DagCe, HistoryTracksMonotoneBestAndEvaluationCount) {
  const Fixture f(18, 9);
  rng::Rng rng(8);
  const auto res = core::solve_dag_ce(f.eval, quick_params(),
                                      match::SolverContext(rng));
  ASSERT_FALSE(res.history.empty());
  double best = std::numeric_limits<double>::infinity();
  for (const auto& it : res.history) {
    best = std::min(best, it.iter_best);
    EXPECT_DOUBLE_EQ(it.best_so_far, best)
        << "best-so-far must be the running minimum";
  }
  EXPECT_DOUBLE_EQ(best, res.best_cost);
  EXPECT_GT(res.evaluations, 0u);
}

}  // namespace
