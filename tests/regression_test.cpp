// Golden-value regression suite: pins exact outputs of the randomized
// pipelines for fixed seeds.  Any change to a generator, sampler, update
// rule, or cost model shifts these values; failing here means "the
// algorithms changed", which must be a conscious decision (update the
// goldens in that case).  All values were produced by this library at
// the revision that introduced the test.

#include <gtest/gtest.h>

#include "baselines/clustering.hpp"
#include "baselines/ga.hpp"
#include "baselines/local_search.hpp"
#include "core/island.hpp"
#include "core/matchalgo.hpp"
#include "workload/overset.hpp"
#include "workload/paper_suite.hpp"

namespace match {
namespace {

struct Golden {
  workload::Instance inst;
  sim::Platform platform;
  sim::CostEvaluator eval;

  Golden()
      : inst(make()), platform(inst.make_platform()), eval(inst.tig, platform) {}

  static workload::Instance make() {
    rng::Rng setup(123);
    workload::PaperParams params;
    params.n = 10;
    return workload::make_paper_instance(params, setup);
  }
};

TEST(Regression, InstanceGeneration) {
  Golden g;
  EXPECT_EQ(g.inst.tig.graph().num_edges(), 14u);
  EXPECT_DOUBLE_EQ(g.inst.tig.graph().total_edge_weight(), 1011.0);
  EXPECT_DOUBLE_EQ(g.inst.resources.graph().total_node_weight(), 26.0);
}

TEST(Regression, CostModel) {
  Golden g;
  EXPECT_DOUBLE_EQ(g.eval.makespan(sim::Mapping::identity(10)), 4659.0);
}

TEST(Regression, MatchOptimizer) {
  Golden g;
  core::MatchOptimizer opt(g.eval);
  rng::Rng rng(99);
  const auto r = opt.run(match::SolverContext(rng));
  EXPECT_DOUBLE_EQ(r.best_cost, 3328.0);
  EXPECT_EQ(r.iterations, 25u);
}

// The legacy exact-scan backend must stay bit-identical to pre-alias
// library versions: these are the values the default configuration
// produced before `SamplerBackend::kAlias` became the default.
TEST(Regression, MatchOptimizerScanBackend) {
  Golden g;
  core::MatchParams params;
  params.sampler = core::SamplerBackend::kScan;
  core::MatchOptimizer opt(g.eval, params);
  rng::Rng rng(99);
  const auto r = opt.run(match::SolverContext(rng));
  EXPECT_DOUBLE_EQ(r.best_cost, 3557.0);
  EXPECT_EQ(r.iterations, 26u);
}

TEST(Regression, GaOptimizer) {
  Golden g;
  baselines::GaParams params;
  params.population = 60;
  params.generations = 80;
  baselines::GaOptimizer ga(g.eval, params);
  rng::Rng rng(99);
  EXPECT_DOUBLE_EQ(ga.run(match::SolverContext(rng)).best_cost, 3664.0);
}

TEST(Regression, IslandOptimizer) {
  Golden g;
  core::IslandMatchOptimizer opt(g.eval);
  rng::Rng rng(99);
  const auto r = opt.run(match::SolverContext(rng));
  EXPECT_DOUBLE_EQ(r.best_cost, 3448.0);
  EXPECT_EQ(r.epochs, 8u);
}

TEST(Regression, RandomSearch) {
  Golden g;
  rng::Rng rng(99);
  EXPECT_DOUBLE_EQ(baselines::random_search(g.eval, 500, match::SolverContext(rng)).best_cost,
                   3751.0);
}

TEST(Regression, GreedyConstructive) {
  Golden g;
  EXPECT_DOUBLE_EQ(baselines::greedy_constructive(g.eval).best_cost, 4338.0);
}

TEST(Regression, ClusterMapRefine) {
  Golden g;
  rng::Rng rng(99);
  EXPECT_DOUBLE_EQ(baselines::cluster_map_refine(g.eval, {}, rng).best_cost,
                   3265.0);
}

TEST(Regression, OversetWorkload) {
  rng::Rng rng(7);
  workload::OversetParams params;
  params.num_grids = 10;
  const auto w = workload::make_overset_workload(params, rng);
  EXPECT_EQ(w.tig.graph().num_edges(), 41u);
  EXPECT_NEAR(w.tig.graph().total_node_weight(), 1241.445270, 1e-5);
}

TEST(Regression, RngStream) {
  rng::Rng rng(5);
  EXPECT_EQ(rng.bits(), 5320248114040590185ULL);
}

}  // namespace
}  // namespace match
