#include "graph/graph.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace match::graph {
namespace {

Graph triangle() {
  // 0-1 (w 1.5), 1-2 (w 2.5), 0-2 (w 3.5); node weights 1, 2, 3.
  const std::vector<Edge> edges = {{0, 1, 1.5}, {1, 2, 2.5}, {0, 2, 3.5}};
  return Graph::from_edges(3, {1.0, 2.0, 3.0}, edges);
}

TEST(Graph, EmptyGraph) {
  Graph g;
  EXPECT_EQ(g.num_nodes(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(Graph, BasicCounts) {
  const Graph g = triangle();
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_DOUBLE_EQ(g.total_node_weight(), 6.0);
  EXPECT_DOUBLE_EQ(g.total_edge_weight(), 7.5);
}

TEST(Graph, NodeWeightsDefaultToOne) {
  const std::vector<Edge> edges = {{0, 1, 1.0}};
  const Graph g = Graph::from_edges(2, {}, edges);
  EXPECT_DOUBLE_EQ(g.node_weight(0), 1.0);
  EXPECT_DOUBLE_EQ(g.node_weight(1), 1.0);
}

TEST(Graph, NeighborsAreSortedById) {
  const std::vector<Edge> edges = {{3, 0, 1.0}, {3, 2, 1.0}, {3, 1, 1.0}};
  const Graph g = Graph::from_edges(4, {}, edges);
  const auto row = g.neighbors(3);
  ASSERT_EQ(row.size(), 3u);
  EXPECT_EQ(row[0].id, 0u);
  EXPECT_EQ(row[1].id, 1u);
  EXPECT_EQ(row[2].id, 2u);
}

TEST(Graph, AdjacencyIsSymmetric) {
  const Graph g = triangle();
  for (NodeId u = 0; u < 3; ++u) {
    for (const Neighbor& nb : g.neighbors(u)) {
      EXPECT_TRUE(g.has_edge(nb.id, u));
      EXPECT_DOUBLE_EQ(g.edge_weight(nb.id, u), nb.weight);
    }
  }
}

TEST(Graph, EdgeWeightLookup) {
  const Graph g = triangle();
  EXPECT_DOUBLE_EQ(g.edge_weight(0, 1), 1.5);
  EXPECT_DOUBLE_EQ(g.edge_weight(1, 0), 1.5);
  EXPECT_DOUBLE_EQ(g.edge_weight(1, 2), 2.5);
  EXPECT_DOUBLE_EQ(g.edge_weight(0, 2), 3.5);
}

TEST(Graph, MissingEdgeHasZeroWeight) {
  const std::vector<Edge> edges = {{0, 1, 9.0}};
  const Graph g = Graph::from_edges(3, {}, edges);
  EXPECT_FALSE(g.has_edge(0, 2));
  EXPECT_DOUBLE_EQ(g.edge_weight(0, 2), 0.0);
  EXPECT_DOUBLE_EQ(g.edge_weight(2, 1), 0.0);
}

TEST(Graph, DegreeCounts) {
  const std::vector<Edge> edges = {{0, 1, 1.0}, {0, 2, 1.0}, {0, 3, 1.0}};
  const Graph g = Graph::from_edges(4, {}, edges);
  EXPECT_EQ(g.degree(0), 3u);
  EXPECT_EQ(g.degree(1), 1u);
  EXPECT_EQ(g.degree(3), 1u);
}

TEST(Graph, EdgeListIsCanonical) {
  const std::vector<Edge> edges = {{2, 1, 5.0}, {1, 0, 4.0}};
  const Graph g = Graph::from_edges(3, {}, edges);
  const auto list = g.edge_list();
  ASSERT_EQ(list.size(), 2u);
  EXPECT_EQ(list[0].u, 0u);
  EXPECT_EQ(list[0].v, 1u);
  EXPECT_DOUBLE_EQ(list[0].weight, 4.0);
  EXPECT_EQ(list[1].u, 1u);
  EXPECT_EQ(list[1].v, 2u);
  EXPECT_DOUBLE_EQ(list[1].weight, 5.0);
}

TEST(Graph, RejectsSelfLoop) {
  const std::vector<Edge> edges = {{1, 1, 1.0}};
  EXPECT_THROW(Graph::from_edges(2, {}, edges), std::invalid_argument);
}

TEST(Graph, RejectsDuplicateEdge) {
  const std::vector<Edge> edges = {{0, 1, 1.0}, {1, 0, 2.0}};
  EXPECT_THROW(Graph::from_edges(2, {}, edges), std::invalid_argument);
}

TEST(Graph, RejectsOutOfRangeEndpoint) {
  const std::vector<Edge> edges = {{0, 5, 1.0}};
  EXPECT_THROW(Graph::from_edges(3, {}, edges), std::invalid_argument);
}

TEST(Graph, RejectsNodeWeightSizeMismatch) {
  const std::vector<Edge> edges = {{0, 1, 1.0}};
  EXPECT_THROW(Graph::from_edges(3, {1.0, 2.0}, edges), std::invalid_argument);
}

TEST(Graph, EqualityIsStructuralAndWeighted) {
  const Graph a = triangle();
  const Graph b = triangle();
  EXPECT_EQ(a, b);
  const std::vector<Edge> edges = {{0, 1, 1.5}, {1, 2, 2.5}};
  const Graph c = Graph::from_edges(3, {1.0, 2.0, 3.0}, edges);
  EXPECT_FALSE(a == c);
}

TEST(GraphBuilder, BuildsIncrementally) {
  Graph::Builder b;
  const NodeId n0 = b.add_node(2.0);
  const NodeId n1 = b.add_node(3.0);
  const NodeId n2 = b.add_node();
  b.add_edge(n0, n1, 7.0);
  b.add_edge(n1, n2, 8.0);
  const Graph g = b.build();
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_DOUBLE_EQ(g.node_weight(n0), 2.0);
  EXPECT_DOUBLE_EQ(g.node_weight(n2), 1.0);
  EXPECT_DOUBLE_EQ(g.edge_weight(n0, n1), 7.0);
}

TEST(GraphBuilder, PresizedConstructor) {
  Graph::Builder b(4);
  b.set_node_weight(2, 9.0);
  b.add_edge(0, 3, 1.0);
  const Graph g = b.build();
  EXPECT_EQ(g.num_nodes(), 4u);
  EXPECT_DOUBLE_EQ(g.node_weight(2), 9.0);
}

TEST(GraphBuilder, RejectsBadIndices) {
  Graph::Builder b(2);
  EXPECT_THROW(b.add_edge(0, 5), std::out_of_range);
  EXPECT_THROW(b.set_node_weight(9, 1.0), std::out_of_range);
}

TEST(Tig, SemanticAccessors) {
  const Tig tig(triangle());
  EXPECT_EQ(tig.num_tasks(), 3u);
  EXPECT_DOUBLE_EQ(tig.compute_weight(1), 2.0);
  EXPECT_DOUBLE_EQ(tig.comm_volume(0, 2), 3.5);
  EXPECT_DOUBLE_EQ(tig.comm_volume(2, 0), 3.5);
  EXPECT_EQ(tig.neighbors(0).size(), 2u);
}

TEST(ResourceGraph, SemanticAccessors) {
  const ResourceGraph rg(triangle());
  EXPECT_EQ(rg.num_resources(), 3u);
  EXPECT_DOUBLE_EQ(rg.processing_cost(2), 3.0);
  EXPECT_DOUBLE_EQ(rg.link_cost(0, 1), 1.5);
}

TEST(Graph, IsolatedNodesHaveEmptyAdjacency) {
  const Graph g = Graph::from_edges(5, {}, std::vector<Edge>{});
  for (NodeId u = 0; u < 5; ++u) {
    EXPECT_EQ(g.degree(u), 0u);
    EXPECT_TRUE(g.neighbors(u).empty());
  }
}

}  // namespace
}  // namespace match::graph
