// Zero-allocation guarantees of the CE hot path.  This file installs a
// counting global operator new/delete, so it must stay its own test
// binary (one binary per test file; see tests/CMakeLists.txt): the
// override would otherwise leak into unrelated suites.
//
// The contract under test: after a warm-up draw, GenPermSampler (both
// backends), RowAliasTables::build, the scratch overload of
// CostEvaluator::makespan, and the SoA SampleBlock → BatchEvaluator
// pipeline perform no heap allocation, and a serially reused ScratchPool
// creates exactly one state.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <limits>
#include <new>
#include <vector>

#include "core/genperm.hpp"
#include "core/stochastic_matrix.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/scratch.hpp"
#include "sim/batch_eval.hpp"
#include "sim/evaluator.hpp"
#include "sim/schedule_eval.hpp"
#include "workload/dag_suite.hpp"
#include "workload/paper_suite.hpp"

namespace {

std::atomic<long> g_allocations{0};

}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace match::core {
namespace {

StochasticMatrix skewed(std::size_t n) {
  std::vector<double> v(n * n);
  for (std::size_t i = 0; i < n; ++i) {
    double sum = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      v[i * n + j] = static_cast<double>((i + j) % n + 1);
      sum += v[i * n + j];
    }
    for (std::size_t j = 0; j < n; ++j) v[i * n + j] /= sum;
  }
  return StochasticMatrix::from_values(n, n, std::move(v));
}

TEST(SamplerAlloc, WarmDrawAndMakespanAreAllocationFree) {
  constexpr std::size_t kN = 32;
  rng::Rng setup(123);
  workload::PaperParams wp;
  wp.n = kN;
  const auto inst = workload::make_paper_instance(wp, setup);
  const auto platform = inst.make_platform();
  const sim::CostEvaluator eval(inst.tig, platform);

  const auto p = skewed(kN);
  RowAliasTables tables;
  tables.build(p);

  GenPermSampler sampler(kN);
  std::vector<graph::NodeId> out(kN);
  std::vector<double> load;
  rng::Rng rng(5);

  // Warm-up: first calls size every scratch buffer to capacity.
  sampler.sample(p, rng, out);
  sampler.sample(p, tables, rng, out);
  (void)eval.makespan(std::span<const graph::NodeId>(out), load);

  const long before = g_allocations.load(std::memory_order_relaxed);
  double sink = 0.0;
  for (int trial = 0; trial < 200; ++trial) {
    sampler.sample(p, rng, out);
    sink += eval.makespan(std::span<const graph::NodeId>(out), load);
    sampler.sample(p, tables, rng, out);
    sink += eval.makespan(std::span<const graph::NodeId>(out), load);
  }
  tables.build(p);  // steady-state rebuild reuses its storage
  const long after = g_allocations.load(std::memory_order_relaxed);

  EXPECT_EQ(after, before) << "hot loop allocated " << (after - before)
                           << " times";
  EXPECT_GT(sink, 0.0);  // defeat dead-code elimination
}

TEST(SamplerAlloc, SoaBatchEvaluateIsAllocationFreeWhenWarm) {
  constexpr std::size_t kN = 24;
  constexpr std::size_t kBatch = 64;
  rng::Rng setup(321);
  workload::PaperParams wp;
  wp.n = kN;
  const auto inst = workload::make_paper_instance(wp, setup);
  const auto platform = inst.make_platform();
  const sim::CostEvaluator eval(inst.tig, platform);

  // The steady-state CE iteration: draw into a reused SampleBlock,
  // evaluate the whole block through one BatchEvaluator.  Serial so the
  // single warmed scratch state serves every chunk.
  parallel::ForOptions serial;
  serial.serial_cutoff = std::numeric_limits<std::size_t>::max();

  const auto p = skewed(kN);
  GenPermSampler sampler(kN);
  std::vector<graph::NodeId> row(kN);
  std::vector<double> costs(kBatch);
  rng::Rng rng(7);

  sim::SampleBlock block(kN, kBatch);
  sim::BatchEvaluator batch_eval(eval);  // kAuto: exercises the host's
                                         // widest compiled-in backend

  // Warm-up: first evaluate leases (creates) the scratch state and sizes
  // its row/load/spill buffers to capacity.
  for (std::size_t i = 0; i < kBatch; ++i) {
    sampler.sample(p, rng, row);
    block.store_sample(i, row);
  }
  batch_eval.evaluate(block, costs, serial);

  const long before = g_allocations.load(std::memory_order_relaxed);
  double sink = 0.0;
  for (int iter = 0; iter < 20; ++iter) {
    for (std::size_t i = 0; i < kBatch; ++i) {
      sampler.sample(p, rng, row);
      block.store_sample(i, row);
    }
    batch_eval.evaluate(block, costs, serial);
    sink += costs[0];
  }
  const long after = g_allocations.load(std::memory_order_relaxed);

  EXPECT_EQ(after, before) << "warm SoA batch evaluation allocated "
                           << (after - before) << " times";
  EXPECT_GT(sink, 0.0);
}

TEST(SamplerAlloc, ScheduleFeasibleAllocatesOneFlatBufferPerCall) {
  // The exclusivity check sorts one flat (resource, start, finish) record
  // array instead of building per-resource vector<vector<pair>> — so a
  // call costs at most two heap allocations (the record buffer; libstdc++
  // may take one more inside sort's temporary buffer heuristics), not
  // O(resources) of them.
  rng::Rng setup(77);
  workload::DagSuiteParams wp;
  wp.tasks = 40;
  const auto inst = workload::make_dag_instance(
      workload::DagFamily::kLayered, wp, setup);
  const auto platform = inst.make_platform();
  const sim::ScheduleEvaluator eval(inst.dag, platform);

  std::vector<graph::NodeId> priority(40);
  for (std::size_t k = 0; k < 40; ++k) {
    priority[k] = static_cast<graph::NodeId>(k);
  }
  sim::ScheduleEvaluator::Scratch scratch;
  sim::Schedule schedule;
  (void)eval.schedule_priorities(priority, scratch, &schedule);

  ASSERT_TRUE(sim::schedule_feasible(inst.dag, platform, schedule));  // warm

  constexpr int kCalls = 50;
  const long before = g_allocations.load(std::memory_order_relaxed);
  for (int call = 0; call < kCalls; ++call) {
    ASSERT_TRUE(sim::schedule_feasible(inst.dag, platform, schedule));
  }
  const long after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_LE(after - before, 2L * kCalls)
      << "schedule_feasible averaged "
      << static_cast<double>(after - before) / kCalls << " allocations/call";
}

TEST(SamplerAlloc, ScratchPoolReusesOneStateSerially) {
  parallel::ScratchPool<std::vector<double>> pool(
      [] { return std::make_unique<std::vector<double>>(64, 0.0); });
  for (int round = 0; round < 100; ++round) {
    auto lease = pool.acquire();
    (*lease)[0] += 1.0;
  }
  EXPECT_EQ(pool.created(), 1u);
  pool.for_each([](std::vector<double>& v) { EXPECT_EQ(v[0], 100.0); });
}

TEST(SamplerAlloc, ScratchPoolReleaseIsAllocationFree) {
  parallel::ScratchPool<std::vector<double>> pool(
      [] { return std::make_unique<std::vector<double>>(8, 0.0); });
  { auto warm = pool.acquire(); }  // first acquire creates + reserves

  const long before = g_allocations.load(std::memory_order_relaxed);
  for (int round = 0; round < 100; ++round) {
    auto lease = pool.acquire();
  }
  const long after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after, before);
  EXPECT_EQ(pool.created(), 1u);
}

}  // namespace
}  // namespace match::core
