#include "sim/des.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "workload/paper_suite.hpp"

namespace match::sim {
namespace {

struct Fixture {
  workload::Instance inst;
  Platform platform;
  CostEvaluator eval;

  explicit Fixture(std::size_t n, std::uint64_t seed)
      : inst(make(n, seed)),
        platform(inst.make_platform()),
        eval(inst.tig, platform) {}

  static workload::Instance make(std::size_t n, std::uint64_t seed) {
    rng::Rng rng(seed);
    workload::PaperParams params;
    params.n = n;
    return workload::make_paper_instance(params, rng);
  }
};

TEST(DesParams, Validation) {
  DesParams p;
  p.comm_overlap = 1.5;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = {};
  p.compute_jitter = 1.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = {};
  p.rounds = 0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = {};
  EXPECT_NO_THROW(p.validate());
}

TEST(Des, IndependentModeReproducesAnalyticMakespanExactly) {
  // The headline validation: with serialized communication and no jitter,
  // one simulated round's duration equals eq. (2)'s Exec^χ.
  Fixture f(12, 1);
  rng::Rng rng(2);
  for (int trial = 0; trial < 20; ++trial) {
    const Mapping m = Mapping::random_permutation(12, rng);
    const DesResult r = simulate_execution(f.eval, m, {});
    EXPECT_NEAR(r.total_time, f.eval.makespan(m), 1e-9) << "trial " << trial;
  }
}

TEST(Des, IndependentModePerResourceTimesMatchEq1) {
  Fixture f(10, 3);
  rng::Rng rng(4);
  const Mapping m = Mapping::random_permutation(10, rng);
  const DesResult des = simulate_execution(f.eval, m, {});
  const EvalResult analytic = f.eval.evaluate(m);
  for (std::size_t s = 0; s < 10; ++s) {
    EXPECT_NEAR(des.finish[s], analytic.loads[s].total(), 1e-9) << s;
    EXPECT_NEAR(des.busy[s], analytic.loads[s].total(), 1e-9) << s;
  }
}

TEST(Des, RoundsScaleLinearlyWithoutJitter) {
  Fixture f(10, 5);
  rng::Rng rng(6);
  const Mapping m = Mapping::random_permutation(10, rng);
  DesParams one;
  DesParams five;
  five.rounds = 5;
  const double t1 = simulate_execution(f.eval, m, one).total_time;
  const double t5 = simulate_execution(f.eval, m, five).total_time;
  EXPECT_NEAR(t5, 5.0 * t1, 1e-9);
}

TEST(Des, FullOverlapLeavesOnlyCompute) {
  Fixture f(10, 7);
  rng::Rng rng(8);
  const Mapping m = Mapping::random_permutation(10, rng);
  DesParams p;
  p.comm_overlap = 1.0;
  const DesResult r = simulate_execution(f.eval, m, p);
  // With communication fully hidden, round time = max compute load.
  const EvalResult analytic = f.eval.evaluate(m);
  double max_compute = 0.0;
  for (const auto& load : analytic.loads) {
    max_compute = std::max(max_compute, load.compute);
  }
  EXPECT_NEAR(r.total_time, max_compute, 1e-9);
}

TEST(Des, PartialOverlapInterpolates) {
  Fixture f(10, 9);
  rng::Rng rng(10);
  const Mapping m = Mapping::random_permutation(10, rng);
  DesParams half;
  half.comm_overlap = 0.5;
  const double t_half = simulate_execution(f.eval, m, half).total_time;
  const double t_none = simulate_execution(f.eval, m, {}).total_time;
  EXPECT_LT(t_half, t_none);
}

TEST(Des, CoupledModeIsAtLeastAsSlow) {
  // Rendezvous transfers can only add idle waits on top of the additive
  // accounting, never remove work.
  Fixture f(12, 11);
  rng::Rng rng(12);
  DesParams coupled;
  coupled.comm_model = DesParams::CommModel::kCoupled;
  for (int trial = 0; trial < 10; ++trial) {
    const Mapping m = Mapping::random_permutation(12, rng);
    const double t_ind = simulate_execution(f.eval, m, {}).total_time;
    const double t_cpl = simulate_execution(f.eval, m, coupled).total_time;
    EXPECT_GE(t_cpl, t_ind - 1e-9);
  }
}

TEST(Des, CoupledModeReportsIdle) {
  Fixture f(12, 13);
  rng::Rng rng(14);
  const Mapping m = Mapping::random_permutation(12, rng);
  DesParams coupled;
  coupled.comm_model = DesParams::CommModel::kCoupled;
  const DesResult r = simulate_execution(f.eval, m, coupled);
  EXPECT_GE(r.total_idle, 0.0);
  // Busy time never exceeds finish time on any resource.
  for (std::size_t s = 0; s < r.busy.size(); ++s) {
    EXPECT_LE(r.busy[s], r.total_time + 1e-9);
  }
}

TEST(Des, ColocatedMappingHasNoTransfers) {
  Fixture f(8, 15);
  const Mapping m(std::vector<graph::NodeId>(8, 0));
  const DesResult r = simulate_execution(f.eval, m, {});
  EXPECT_EQ(r.transfers, 0u);
  EXPECT_NEAR(r.total_time, f.eval.makespan(m), 1e-9);
}

TEST(Des, JitterRequiresRng) {
  Fixture f(8, 16);
  const Mapping m = Mapping::identity(8);
  DesParams p;
  p.compute_jitter = 0.1;
  EXPECT_THROW(simulate_execution(f.eval, m, p, nullptr),
               std::invalid_argument);
}

TEST(Des, JitterStaysWithinBounds) {
  Fixture f(10, 17);
  rng::Rng map_rng(18);
  const Mapping m = Mapping::random_permutation(10, map_rng);
  const double base = simulate_execution(f.eval, m, {}).total_time;

  DesParams p;
  p.compute_jitter = 0.2;
  rng::Rng rng(19);
  for (int trial = 0; trial < 20; ++trial) {
    const double t = simulate_execution(f.eval, m, p, &rng).total_time;
    // Compute is at most ~20% of these instances' cost, so the jittered
    // time must stay within a loose band of the deterministic one.
    EXPECT_GT(t, 0.6 * base);
    EXPECT_LT(t, 1.4 * base);
  }
}

TEST(Des, AnalyticModelRanksMappingsUnderCoupledNetwork) {
  // The experiment backing the paper's premise: the additive cost model
  // is a useful *ranking* proxy even when the network is rendezvous-
  // based.  A clearly better analytic mapping must not simulate worse
  // than a clearly worse one.
  Fixture f(14, 20);
  rng::Rng rng(21);
  DesParams coupled;
  coupled.comm_model = DesParams::CommModel::kCoupled;

  // Gather a spread of mappings and compare extreme pairs.
  std::vector<std::pair<double, double>> points;  // (analytic, simulated)
  for (int i = 0; i < 40; ++i) {
    const Mapping m = Mapping::random_permutation(14, rng);
    points.emplace_back(f.eval.makespan(m),
                        simulate_execution(f.eval, m, coupled).total_time);
  }
  auto best = *std::min_element(points.begin(), points.end());
  auto worst = *std::max_element(points.begin(), points.end());
  // Require a real spread to make the comparison meaningful.
  ASSERT_GT(worst.first, best.first * 1.05);
  EXPECT_LT(best.second, worst.second);
}

TEST(Des, MappingSizeMismatchThrows) {
  Fixture f(8, 22);
  const Mapping wrong = Mapping::identity(5);
  EXPECT_THROW(simulate_execution(f.eval, wrong, {}), std::invalid_argument);
}

}  // namespace
}  // namespace match::sim
