#include "core/genperm.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "sim/mapping.hpp"

namespace match::core {
namespace {

bool is_permutation(std::span<const graph::NodeId> v) {
  return sim::Mapping(std::vector<graph::NodeId>(v.begin(), v.end()))
      .is_permutation();
}

TEST(GenPerm, RejectsEmpty) {
  EXPECT_THROW(GenPermSampler(0), std::invalid_argument);
}

TEST(GenPerm, AlwaysProducesValidPermutations) {
  constexpr std::size_t kN = 10;
  GenPermSampler sampler(kN);
  const auto p = StochasticMatrix::uniform(kN, kN);
  rng::Rng rng(1);
  std::vector<graph::NodeId> out(kN);
  for (int trial = 0; trial < 500; ++trial) {
    sampler.sample(p, rng, out);
    ASSERT_TRUE(is_permutation(out)) << "trial " << trial;
  }
}

TEST(GenPerm, DegenerateMatrixIsDeterministic) {
  // P = permutation matrix task i -> resource (i+1) mod n.
  constexpr std::size_t kN = 6;
  std::vector<double> values(kN * kN, 0.0);
  for (std::size_t i = 0; i < kN; ++i) values[i * kN + (i + 1) % kN] = 1.0;
  const auto p = StochasticMatrix::from_values(kN, kN, std::move(values));

  GenPermSampler sampler(kN);
  rng::Rng rng(2);
  std::vector<graph::NodeId> out(kN);
  for (int trial = 0; trial < 50; ++trial) {
    sampler.sample(p, rng, out);
    for (std::size_t i = 0; i < kN; ++i) {
      ASSERT_EQ(out[i], (i + 1) % kN);
    }
  }
}

TEST(GenPerm, BiasedRowIsPreferred) {
  // Task 0 strongly prefers resource 3; with everything else uniform it
  // should land there most of the time.
  constexpr std::size_t kN = 5;
  std::vector<double> values(kN * kN, 1.0 / kN);
  for (std::size_t j = 0; j < kN; ++j) values[0 * kN + j] = (j == 3) ? 0.92 : 0.02;
  const auto p = StochasticMatrix::from_values(kN, kN, std::move(values));

  GenPermSampler sampler(kN);
  rng::Rng rng(3);
  std::vector<graph::NodeId> out(kN);
  int hits = 0;
  constexpr int kTrials = 2000;
  for (int trial = 0; trial < kTrials; ++trial) {
    sampler.sample(p, rng, out);
    hits += (out[0] == 3) ? 1 : 0;
  }
  // The conditional renormalization dilutes the bias slightly (task 0 is
  // not always drawn first), but the preference must dominate.
  EXPECT_GT(hits, kTrials / 2);
}

TEST(GenPerm, ZeroMassRowFallsBackToUniform) {
  // Both rows put all mass on resource 0: whichever task draws second has
  // zero remaining mass and must fall back to the free resource.
  const auto p = StochasticMatrix::from_values(2, 2, {1.0, 0.0, 1.0, 0.0});
  GenPermSampler sampler(2);
  rng::Rng rng(4);
  std::vector<graph::NodeId> out(2);
  for (int trial = 0; trial < 100; ++trial) {
    sampler.sample(p, rng, out);
    ASSERT_TRUE(is_permutation(out));
  }
}

TEST(GenPerm, FixedTaskOrderStillValid) {
  constexpr std::size_t kN = 8;
  GenPermSampler sampler(kN);
  const auto p = StochasticMatrix::uniform(kN, kN);
  rng::Rng rng(5);
  std::vector<graph::NodeId> out(kN);
  for (int trial = 0; trial < 200; ++trial) {
    sampler.sample(p, rng, out, /*random_task_order=*/false);
    ASSERT_TRUE(is_permutation(out));
  }
}

TEST(GenPerm, UniformMatrixGivesUniformMarginals) {
  constexpr std::size_t kN = 4;
  GenPermSampler sampler(kN);
  const auto p = StochasticMatrix::uniform(kN, kN);
  rng::Rng rng(6);
  std::vector<graph::NodeId> out(kN);
  std::vector<std::vector<int>> histogram(kN, std::vector<int>(kN, 0));
  constexpr int kTrials = 40000;
  for (int trial = 0; trial < kTrials; ++trial) {
    sampler.sample(p, rng, out);
    for (std::size_t t = 0; t < kN; ++t) ++histogram[t][out[t]];
  }
  for (std::size_t t = 0; t < kN; ++t) {
    for (std::size_t r = 0; r < kN; ++r) {
      EXPECT_NEAR(static_cast<double>(histogram[t][r]) / kTrials, 0.25, 0.02)
          << "task " << t << " resource " << r;
    }
  }
}

TEST(GenPerm, DeterministicForFixedSeed) {
  constexpr std::size_t kN = 9;
  GenPermSampler s1(kN), s2(kN);
  const auto p = StochasticMatrix::uniform(kN, kN);
  rng::Rng r1(7), r2(7);
  std::vector<graph::NodeId> out1(kN), out2(kN);
  for (int trial = 0; trial < 20; ++trial) {
    s1.sample(p, r1, out1);
    s2.sample(p, r2, out2);
    EXPECT_EQ(out1, out2);
  }
}

class GenPermSizeTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(GenPermSizeTest, ValidAcrossSizes) {
  const std::size_t n = GetParam();
  GenPermSampler sampler(n);
  const auto p = StochasticMatrix::uniform(n, n);
  rng::Rng rng(8);
  std::vector<graph::NodeId> out(n);
  for (int trial = 0; trial < 50; ++trial) {
    sampler.sample(p, rng, out);
    ASSERT_TRUE(is_permutation(out));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, GenPermSizeTest,
                         ::testing::Values(std::size_t{1}, std::size_t{2},
                                           std::size_t{3}, std::size_t{10},
                                           std::size_t{50}));

}  // namespace
}  // namespace match::core
