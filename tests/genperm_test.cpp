#include "core/genperm.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "sim/mapping.hpp"
#include "stats/special_functions.hpp"

namespace match::core {
namespace {

bool is_permutation(std::span<const graph::NodeId> v) {
  return sim::Mapping(std::vector<graph::NodeId>(v.begin(), v.end()))
      .is_permutation();
}

TEST(GenPerm, RejectsEmpty) {
  EXPECT_THROW(GenPermSampler(0), std::invalid_argument);
}

TEST(GenPerm, AlwaysProducesValidPermutations) {
  constexpr std::size_t kN = 10;
  GenPermSampler sampler(kN);
  const auto p = StochasticMatrix::uniform(kN, kN);
  rng::Rng rng(1);
  std::vector<graph::NodeId> out(kN);
  for (int trial = 0; trial < 500; ++trial) {
    sampler.sample(p, rng, out);
    ASSERT_TRUE(is_permutation(out)) << "trial " << trial;
  }
}

TEST(GenPerm, DegenerateMatrixIsDeterministic) {
  // P = permutation matrix task i -> resource (i+1) mod n.
  constexpr std::size_t kN = 6;
  std::vector<double> values(kN * kN, 0.0);
  for (std::size_t i = 0; i < kN; ++i) values[i * kN + (i + 1) % kN] = 1.0;
  const auto p = StochasticMatrix::from_values(kN, kN, std::move(values));

  GenPermSampler sampler(kN);
  rng::Rng rng(2);
  std::vector<graph::NodeId> out(kN);
  for (int trial = 0; trial < 50; ++trial) {
    sampler.sample(p, rng, out);
    for (std::size_t i = 0; i < kN; ++i) {
      ASSERT_EQ(out[i], (i + 1) % kN);
    }
  }
}

TEST(GenPerm, BiasedRowIsPreferred) {
  // Task 0 strongly prefers resource 3; with everything else uniform it
  // should land there most of the time.
  constexpr std::size_t kN = 5;
  std::vector<double> values(kN * kN, 1.0 / kN);
  for (std::size_t j = 0; j < kN; ++j) values[0 * kN + j] = (j == 3) ? 0.92 : 0.02;
  const auto p = StochasticMatrix::from_values(kN, kN, std::move(values));

  GenPermSampler sampler(kN);
  rng::Rng rng(3);
  std::vector<graph::NodeId> out(kN);
  int hits = 0;
  constexpr int kTrials = 2000;
  for (int trial = 0; trial < kTrials; ++trial) {
    sampler.sample(p, rng, out);
    hits += (out[0] == 3) ? 1 : 0;
  }
  // The conditional renormalization dilutes the bias slightly (task 0 is
  // not always drawn first), but the preference must dominate.
  EXPECT_GT(hits, kTrials / 2);
}

TEST(GenPerm, ZeroMassRowFallsBackToUniform) {
  // Both rows put all mass on resource 0: whichever task draws second has
  // zero remaining mass and must fall back to the free resource.
  const auto p = StochasticMatrix::from_values(2, 2, {1.0, 0.0, 1.0, 0.0});
  GenPermSampler sampler(2);
  rng::Rng rng(4);
  std::vector<graph::NodeId> out(2);
  for (int trial = 0; trial < 100; ++trial) {
    sampler.sample(p, rng, out);
    ASSERT_TRUE(is_permutation(out));
  }
}

TEST(GenPerm, FixedTaskOrderStillValid) {
  constexpr std::size_t kN = 8;
  GenPermSampler sampler(kN);
  const auto p = StochasticMatrix::uniform(kN, kN);
  rng::Rng rng(5);
  std::vector<graph::NodeId> out(kN);
  for (int trial = 0; trial < 200; ++trial) {
    sampler.sample(p, rng, out, /*random_task_order=*/false);
    ASSERT_TRUE(is_permutation(out));
  }
}

TEST(GenPerm, UniformMatrixGivesUniformMarginals) {
  constexpr std::size_t kN = 4;
  GenPermSampler sampler(kN);
  const auto p = StochasticMatrix::uniform(kN, kN);
  rng::Rng rng(6);
  std::vector<graph::NodeId> out(kN);
  std::vector<std::vector<int>> histogram(kN, std::vector<int>(kN, 0));
  constexpr int kTrials = 40000;
  for (int trial = 0; trial < kTrials; ++trial) {
    sampler.sample(p, rng, out);
    for (std::size_t t = 0; t < kN; ++t) ++histogram[t][out[t]];
  }
  for (std::size_t t = 0; t < kN; ++t) {
    for (std::size_t r = 0; r < kN; ++r) {
      EXPECT_NEAR(static_cast<double>(histogram[t][r]) / kTrials, 0.25, 0.02)
          << "task " << t << " resource " << r;
    }
  }
}

TEST(GenPerm, DeterministicForFixedSeed) {
  constexpr std::size_t kN = 9;
  GenPermSampler s1(kN), s2(kN);
  const auto p = StochasticMatrix::uniform(kN, kN);
  rng::Rng r1(7), r2(7);
  std::vector<graph::NodeId> out1(kN), out2(kN);
  for (int trial = 0; trial < 20; ++trial) {
    s1.sample(p, r1, out1);
    s2.sample(p, r2, out2);
    EXPECT_EQ(out1, out2);
  }
}

class GenPermSizeTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(GenPermSizeTest, ValidAcrossSizes) {
  const std::size_t n = GetParam();
  GenPermSampler sampler(n);
  const auto p = StochasticMatrix::uniform(n, n);
  rng::Rng rng(8);
  std::vector<graph::NodeId> out(n);
  for (int trial = 0; trial < 50; ++trial) {
    sampler.sample(p, rng, out);
    ASSERT_TRUE(is_permutation(out));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, GenPermSizeTest,
                         ::testing::Values(std::size_t{1}, std::size_t{2},
                                           std::size_t{3}, std::size_t{10},
                                           std::size_t{50}));

// A deliberately skewed row-stochastic matrix: row i ramps from light to
// heavy mass with the peak rotated by i, so every task prefers a
// different resource and renormalization against the taken set matters.
StochasticMatrix skewed_matrix(std::size_t n) {
  std::vector<double> v(n * n);
  for (std::size_t i = 0; i < n; ++i) {
    double sum = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      const double w = static_cast<double>((i + j) % n + 1);
      v[i * n + j] = w * w;  // quadratic ramp: max/min mass ratio n²
      sum += v[i * n + j];
    }
    for (std::size_t j = 0; j < n; ++j) v[i * n + j] /= sum;
  }
  return StochasticMatrix::from_values(n, n, std::move(v));
}

TEST(GenPermAlias, AlwaysProducesValidPermutations) {
  constexpr std::size_t kN = 10;
  GenPermSampler sampler(kN);
  const auto p = skewed_matrix(kN);
  RowAliasTables tables;
  tables.build(p);
  rng::Rng rng(11);
  std::vector<graph::NodeId> out(kN);
  for (int trial = 0; trial < 500; ++trial) {
    sampler.sample(p, tables, rng, out);
    ASSERT_TRUE(is_permutation(out)) << "trial " << trial;
  }
}

TEST(GenPermAlias, DeterministicForFixedSeed) {
  // Seed-pinned: the alias backend must give identical draws for a fixed
  // seed, run to run and sampler to sampler.
  constexpr std::size_t kN = 12;
  const auto p = skewed_matrix(kN);
  RowAliasTables tables;
  tables.build(p);
  GenPermSampler s1(kN), s2(kN);
  rng::Rng r1(13), r2(13);
  std::vector<graph::NodeId> out1(kN), out2(kN);
  for (int trial = 0; trial < 50; ++trial) {
    s1.sample(p, tables, r1, out1);
    s2.sample(p, tables, r2, out2);
    ASSERT_EQ(out1, out2) << "trial " << trial;
  }
  // Rebuilding the tables from the same P must not change the stream.
  RowAliasTables rebuilt;
  rebuilt.build(p);
  rng::Rng r3(13), r4(13);
  for (int trial = 0; trial < 50; ++trial) {
    s1.sample(p, tables, r3, out1);
    s2.sample(p, rebuilt, r4, out2);
    ASSERT_EQ(out1, out2) << "trial " << trial;
  }
}

// Chi-square two-sample homogeneity test: the alias+rejection backend
// must draw from the *same* conditional distribution as the exact scan.
// For each task we compare the two backends' task→resource histograms;
// the per-task statistics add up to one aggregate X² whose null
// distribution is chi-square with ~n(n-1) degrees of freedom.
TEST(GenPermAlias, MatchesScanMarginalsOnSkewedMatrix) {
  constexpr std::size_t kN = 8;
  constexpr int kDraws = 20000;
  const auto p = skewed_matrix(kN);
  RowAliasTables tables;
  tables.build(p);

  GenPermSampler scan(kN), alias(kN);
  rng::Rng r_scan(17), r_alias(18);  // independent streams
  std::vector<graph::NodeId> out(kN);
  std::vector<std::vector<int>> h_scan(kN, std::vector<int>(kN, 0));
  std::vector<std::vector<int>> h_alias(kN, std::vector<int>(kN, 0));
  for (int trial = 0; trial < kDraws; ++trial) {
    scan.sample(p, r_scan, out);
    for (std::size_t t = 0; t < kN; ++t) ++h_scan[t][out[t]];
    alias.sample(p, tables, r_alias, out);
    for (std::size_t t = 0; t < kN; ++t) ++h_alias[t][out[t]];
  }

  double stat = 0.0;
  double dof = 0.0;
  for (std::size_t t = 0; t < kN; ++t) {
    for (std::size_t r = 0; r < kN; ++r) {
      const double a = static_cast<double>(h_scan[t][r]);
      const double b = static_cast<double>(h_alias[t][r]);
      if (a + b == 0.0) continue;  // cell never hit by either backend
      // Equal sample sizes: X² contribution (a-b)² / (a+b).
      stat += (a - b) * (a - b) / (a + b);
      dof += 1.0;
    }
    dof -= 1.0;  // row totals are fixed at kDraws
  }
  const double p_value = stats::chi_square_sf(stat, dof);
  // Reject only on overwhelming evidence; a correct implementation fails
  // a 0.1% test once per thousand seeds, and the seeds here are fixed.
  EXPECT_GT(p_value, 0.001) << "X² = " << stat << ", dof = " << dof;
}

TEST(GenPermAlias, ResetOrderMatchesFreshSampler) {
  // reset_order() must put a used sampler back into the
  // freshly-constructed state: same seed => same draws.
  constexpr std::size_t kN = 10;
  const auto p = skewed_matrix(kN);
  GenPermSampler used(kN), fresh(kN);
  std::vector<graph::NodeId> out1(kN), out2(kN);
  rng::Rng warm(19);
  for (int trial = 0; trial < 7; ++trial) used.sample(p, warm, out1);
  used.reset_order();
  rng::Rng r1(23), r2(23);
  for (int trial = 0; trial < 20; ++trial) {
    used.sample(p, r1, out1);
    fresh.sample(p, r2, out2);
    ASSERT_EQ(out1, out2) << "trial " << trial;
  }
}

}  // namespace
}  // namespace match::core
