#include "graph/algorithms.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "graph/generators.hpp"
#include "rng/rng.hpp"

namespace match::graph {
namespace {

Graph path4() {
  // 0 -1.0- 1 -2.0- 2 -4.0- 3
  const std::vector<Edge> edges = {{0, 1, 1.0}, {1, 2, 2.0}, {2, 3, 4.0}};
  return Graph::from_edges(4, {}, edges);
}

Graph two_components() {
  const std::vector<Edge> edges = {{0, 1, 1.0}, {2, 3, 1.0}};
  return Graph::from_edges(5, {}, edges);  // node 4 isolated
}

TEST(Bfs, VisitsComponentInBreadthOrder) {
  const Graph g = path4();
  const auto order = bfs_order(g, 0);
  const std::vector<NodeId> expected = {0, 1, 2, 3};
  EXPECT_EQ(order, expected);
}

TEST(Bfs, OnlyReachesOwnComponent) {
  const Graph g = two_components();
  EXPECT_EQ(bfs_order(g, 0).size(), 2u);
  EXPECT_EQ(bfs_order(g, 2).size(), 2u);
  EXPECT_EQ(bfs_order(g, 4).size(), 1u);
}

TEST(Bfs, RejectsBadStart) {
  const Graph g = path4();
  EXPECT_THROW(bfs_order(g, 9), std::out_of_range);
}

TEST(Components, CountsAndLabels) {
  const Graph g = two_components();
  const Components c = connected_components(g);
  EXPECT_EQ(c.count, 3u);
  EXPECT_EQ(c.label[0], c.label[1]);
  EXPECT_EQ(c.label[2], c.label[3]);
  EXPECT_NE(c.label[0], c.label[2]);
  EXPECT_NE(c.label[0], c.label[4]);
  EXPECT_NE(c.label[2], c.label[4]);
}

TEST(Components, ConnectedGraphIsOneComponent) {
  EXPECT_TRUE(is_connected(path4()));
  EXPECT_FALSE(is_connected(two_components()));
}

TEST(Components, EmptyGraphIsConnected) {
  EXPECT_TRUE(is_connected(Graph()));
}

TEST(Stats, MatchesHandComputedValues) {
  const std::vector<Edge> edges = {{0, 1, 2.0}, {1, 2, 4.0}};
  const Graph g = Graph::from_edges(3, {1.0, 2.0, 3.0}, edges);
  const GraphStats s = compute_stats(g);
  EXPECT_EQ(s.nodes, 3u);
  EXPECT_EQ(s.edges, 2u);
  EXPECT_EQ(s.min_degree, 1u);
  EXPECT_EQ(s.max_degree, 2u);
  EXPECT_DOUBLE_EQ(s.mean_degree, 4.0 / 3.0);
  EXPECT_DOUBLE_EQ(s.mean_node_weight, 2.0);
  EXPECT_DOUBLE_EQ(s.min_edge_weight, 2.0);
  EXPECT_DOUBLE_EQ(s.max_edge_weight, 4.0);
  EXPECT_DOUBLE_EQ(s.mean_edge_weight, 3.0);
  EXPECT_DOUBLE_EQ(s.comp_comm_ratio, 1.0);
}

TEST(Dijkstra, ShortestPathsOnPath) {
  const Graph g = path4();
  const auto dist = dijkstra(g, 0);
  EXPECT_DOUBLE_EQ(dist[0], 0.0);
  EXPECT_DOUBLE_EQ(dist[1], 1.0);
  EXPECT_DOUBLE_EQ(dist[2], 3.0);
  EXPECT_DOUBLE_EQ(dist[3], 7.0);
}

TEST(Dijkstra, PrefersCheaperIndirectRoute) {
  // Direct 0-2 costs 10; the route through 1 costs 3.
  const std::vector<Edge> edges = {{0, 1, 1.0}, {1, 2, 2.0}, {0, 2, 10.0}};
  const Graph g = Graph::from_edges(3, {}, edges);
  EXPECT_DOUBLE_EQ(dijkstra(g, 0)[2], 3.0);
}

TEST(Dijkstra, UnreachableIsInfinite) {
  const Graph g = two_components();
  const auto dist = dijkstra(g, 0);
  EXPECT_TRUE(std::isinf(dist[2]));
  EXPECT_TRUE(std::isinf(dist[4]));
}

TEST(FloydWarshall, MatchesDijkstraOnRandomGraphs) {
  rng::Rng rng(77);
  for (int trial = 0; trial < 5; ++trial) {
    const Graph g = make_gnp(20, 0.25, {1, 5}, {1, 9}, rng);
    const auto apsp = all_pairs_shortest_paths(g);
    for (NodeId s = 0; s < g.num_nodes(); s += 7) {
      const auto d = dijkstra(g, s);
      for (NodeId t = 0; t < g.num_nodes(); ++t) {
        EXPECT_NEAR(apsp[s * g.num_nodes() + t], d[t], 1e-9);
      }
    }
  }
}

TEST(FloydWarshall, DiagonalIsZero) {
  rng::Rng rng(78);
  const Graph g = make_gnp(12, 0.3, {1, 3}, {1, 5}, rng);
  const auto apsp = all_pairs_shortest_paths(g);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    EXPECT_DOUBLE_EQ(apsp[u * g.num_nodes() + u], 0.0);
  }
}

TEST(FloydWarshall, SymmetricForUndirectedGraphs) {
  rng::Rng rng(79);
  const Graph g = make_gnp(15, 0.3, {1, 3}, {1, 20}, rng);
  const std::size_t n = g.num_nodes();
  const auto apsp = all_pairs_shortest_paths(g);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = 0; v < n; ++v) {
      EXPECT_DOUBLE_EQ(apsp[u * n + v], apsp[v * n + u]);
    }
  }
}

TEST(FloydWarshall, TriangleInequalityHolds) {
  rng::Rng rng(80);
  const Graph g = make_gnp(15, 0.35, {1, 3}, {1, 20}, rng);
  const std::size_t n = g.num_nodes();
  const auto d = all_pairs_shortest_paths(g);
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j = 0; j < n; ++j) {
      for (NodeId k = 0; k < n; ++k) {
        EXPECT_LE(d[i * n + j], d[i * n + k] + d[k * n + j] + 1e-9);
      }
    }
  }
}

}  // namespace
}  // namespace match::graph
