// Tests of the schedule-aware cost model (src/sim/schedule_eval.*) and
// the HEFT-class baselines (src/baselines/heft.*): a hand-checked golden
// makespan on a tiny instance, the feasibility checker itself, and the
// property the ISSUE pins — every schedule HEFT or topological list
// scheduling emits is precedence-feasible across random DAGs of all
// three generator families.

#include "sim/schedule_eval.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <string>
#include <vector>

#include "baselines/heft.hpp"
#include "graph/dag.hpp"
#include "rng/rng.hpp"
#include "sim/platform.hpp"
#include "workload/dag_suite.hpp"

namespace {

using namespace match;
using graph::Dag;
using graph::Edge;
using graph::NodeId;

/// Diamond DAG on a 2-resource platform, small enough to schedule by
/// hand.  Tasks: w = {2, 3, 4, 1}; arcs 0→1 (1), 0→2 (2), 1→3 (1),
/// 2→3 (3).  Resources: processing costs {1, 2}, one link of cost 1.
struct HandInstance {
  Dag dag;
  sim::Platform platform;
};

HandInstance hand_instance() {
  std::vector<Edge> arcs = {
      {0, 1, 1.0}, {0, 2, 2.0}, {1, 3, 1.0}, {2, 3, 3.0}};
  Dag dag = Dag::from_edges(4, {2.0, 3.0, 4.0, 1.0}, arcs);
  std::vector<Edge> link = {{0, 1, 1.0}};
  graph::ResourceGraph rg(graph::Graph::from_edges(2, {1.0, 2.0}, link));
  return {std::move(dag), sim::Platform(rg, sim::CommCostPolicy::kDirectLinks)};
}

// ---- Golden makespans (hand-checked) -----------------------------------

TEST(ScheduleEval, AssignmentModeGoldenMakespan) {
  // Assignment {r0, r1, r0, r0}, topo order 0,1,2,3:
  //   t0 on r0: exec 2·1 = 2, finish 2
  //   t1 on r1: arrives 2 + 1·1 = 3, exec 3·2 = 6, finish 9
  //   t2 on r0: same resource as t0, starts at 2, exec 4, finish 6
  //   t3 on r0: ready max(9 + 1·1, 6) = 10, exec 1, finish 11
  const HandInstance h = hand_instance();
  const sim::ScheduleEvaluator eval(h.dag, h.platform);
  const std::vector<NodeId> assignment = {0, 1, 0, 0};
  EXPECT_DOUBLE_EQ(eval.makespan(assignment), 11.0);

  // Everything on the fast resource: pure serial chain 2+3+4+1.
  const std::vector<NodeId> serial = {0, 0, 0, 0};
  EXPECT_DOUBLE_EQ(eval.makespan(serial), 10.0);
}

TEST(ScheduleEval, PriorityModeGoldenMakespanAndFullSchedule) {
  // Priority {0,1,2,3} with insertion EFT:
  //   t0 → r0 (finish 2 beats r1's 4)
  //   t1: r0 finishes 2+3 = 5, r1 finishes 3+6 = 9 → r0, [2,5]
  //   t2: r0 finishes 5+4 = 9, r1 finishes 4+8 = 12 → r0, [5,9]
  //   t3: r0 ready max(5,9) = 9 → [9,10]; r1 would be 12+2 → r0
  const HandInstance h = hand_instance();
  const sim::ScheduleEvaluator eval(h.dag, h.platform);
  const std::vector<NodeId> priority = {0, 1, 2, 3};
  sim::ScheduleEvaluator::Scratch scratch;
  sim::Schedule schedule;
  EXPECT_DOUBLE_EQ(eval.schedule_priorities(priority, scratch, &schedule),
                   10.0);
  EXPECT_DOUBLE_EQ(schedule.makespan, 10.0);
  ASSERT_EQ(schedule.assignment.size(), 4u);
  EXPECT_EQ(schedule.assignment, (std::vector<NodeId>{0, 0, 0, 0}));
  EXPECT_DOUBLE_EQ(schedule.start[3], 9.0);
  EXPECT_DOUBLE_EQ(schedule.finish[3], 10.0);

  std::string why;
  EXPECT_TRUE(sim::schedule_feasible(h.dag, h.platform, schedule, &why))
      << why;
}

TEST(HeftBaselines, GoldenMakespanOnTheHandInstance) {
  // Upward ranks (mean exec 1.5·w, mean comm = arc weight · 1):
  //   rank = {15.5, 7, 10.5, 1.5} → HEFT priority 0, 2, 1, 3, which EFT
  //   places entirely on r0 for makespan 10.  The canonical topological
  //   order 0,1,2,3 happens to land on the same placement here.
  const HandInstance h = hand_instance();
  const sim::ScheduleEvaluator eval(h.dag, h.platform);

  const auto ranks = eval.upward_ranks();
  ASSERT_EQ(ranks.size(), 4u);
  EXPECT_DOUBLE_EQ(ranks[0], 15.5);
  EXPECT_DOUBLE_EQ(ranks[1], 7.0);
  EXPECT_DOUBLE_EQ(ranks[2], 10.5);
  EXPECT_DOUBLE_EQ(ranks[3], 1.5);

  const auto heft = baselines::heft_schedule(eval);
  EXPECT_DOUBLE_EQ(heft.best_cost, 10.0);
  EXPECT_DOUBLE_EQ(heft.schedule.makespan, 10.0);

  const auto topo = baselines::topo_list_schedule(eval);
  EXPECT_DOUBLE_EQ(topo.best_cost, 10.0);
}

// ---- The feasibility checker itself ------------------------------------

TEST(ScheduleFeasible, CatchesPrecedenceOverlapAndShapeViolations) {
  const HandInstance h = hand_instance();
  const sim::ScheduleEvaluator eval(h.dag, h.platform);
  sim::ScheduleEvaluator::Scratch scratch;
  sim::Schedule good;
  eval.schedule_priorities(std::vector<NodeId>{0, 1, 2, 3}, scratch, &good);
  ASSERT_TRUE(sim::schedule_feasible(h.dag, h.platform, good));

  std::string why;
  sim::Schedule bad = good;
  bad.start[3] = 0.0;  // starts before its predecessors finish
  bad.finish[3] = 1.0;
  EXPECT_FALSE(sim::schedule_feasible(h.dag, h.platform, bad, &why));
  EXPECT_FALSE(why.empty());

  bad = good;
  bad.finish[1] = bad.start[1];  // wrong execution time
  EXPECT_FALSE(sim::schedule_feasible(h.dag, h.platform, bad, &why));

  bad = good;
  bad.assignment.pop_back();  // wrong shape
  EXPECT_FALSE(sim::schedule_feasible(h.dag, h.platform, bad, &why));
}

// ---- Property: list schedulers are always precedence-feasible ----------

TEST(HeftBaselines, AlwaysFeasibleAcrossRandomDagsOfEveryFamily) {
  for (const auto family :
       {workload::DagFamily::kLayered, workload::DagFamily::kForkJoin,
        workload::DagFamily::kSeriesParallel}) {
    for (std::uint64_t seed = 0; seed < 15; ++seed) {
      rng::Rng rng(1000 + seed);
      workload::DagSuiteParams params;
      params.tasks = 6 + seed * 3;
      params.resources = 2 + seed % 5;
      const auto inst = workload::make_dag_instance(family, params, rng);
      const auto platform = inst.make_platform();
      const sim::ScheduleEvaluator eval(inst.dag, platform);

      std::string why;
      const auto heft = baselines::heft_schedule(eval);
      EXPECT_TRUE(
          sim::schedule_feasible(inst.dag, platform, heft.schedule, &why))
          << workload::dag_family_name(family) << " seed " << seed
          << " (heft): " << why;
      EXPECT_DOUBLE_EQ(heft.schedule.makespan, heft.best_cost);

      const auto topo = baselines::topo_list_schedule(eval);
      EXPECT_TRUE(
          sim::schedule_feasible(inst.dag, platform, topo.schedule, &why))
          << workload::dag_family_name(family) << " seed " << seed
          << " (topo): " << why;

      // Arbitrary (even adversarial) priority permutations also yield
      // feasible schedules — the ready-set enforces precedence, the
      // permutation only breaks ties.
      std::vector<NodeId> reversed(eval.num_tasks());
      std::iota(reversed.rbegin(), reversed.rend(), NodeId{0});
      sim::ScheduleEvaluator::Scratch scratch;
      sim::Schedule schedule;
      eval.schedule_priorities(reversed, scratch, &schedule);
      EXPECT_TRUE(
          sim::schedule_feasible(inst.dag, platform, schedule, &why))
          << workload::dag_family_name(family) << " seed " << seed
          << " (reversed): " << why;
    }
  }
}

TEST(ScheduleEval, PriorityBatchMatchesScalarLaneForLane) {
  // The SampleBlock batch entry point must agree with the scalar kernel
  // bit for bit, whatever the thread pool does with the lanes.
  rng::Rng rng(5);
  workload::DagSuiteParams params;
  params.tasks = 16;
  const auto inst = workload::make_dag_instance(
      workload::DagFamily::kLayered, params, rng);
  const auto platform = inst.make_platform();
  const sim::ScheduleEvaluator eval(inst.dag, platform);

  const std::size_t n = eval.num_tasks();
  constexpr std::size_t kLanes = 8;
  sim::SampleBlock block(n, kLanes);
  std::vector<NodeId> perm(n);
  for (std::size_t lane = 0; lane < kLanes; ++lane) {
    std::iota(perm.begin(), perm.end(), NodeId{0});
    rng.shuffle(perm);
    block.store_sample(lane, perm);
  }
  std::vector<double> batch(kLanes);
  eval.priority_makespans_batch(block, batch);

  sim::ScheduleEvaluator::Scratch scratch;
  std::vector<NodeId> row(n);
  for (std::size_t lane = 0; lane < kLanes; ++lane) {
    block.load_sample(lane, row);
    EXPECT_DOUBLE_EQ(eval.schedule_priorities(row, scratch), batch[lane])
        << "lane " << lane;
  }
}

}  // namespace
