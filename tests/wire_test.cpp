// Wire-format tests: exact round trips (including IEEE-754 bit
// patterns), header validation, and fuzz-ish robustness — truncation at
// every byte boundary and random corruption must throw WireError (or
// decode cleanly), never crash or leak a partial object.

#include "net/wire.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "rng/rng.hpp"
#include "service/instance_cache.hpp"
#include "sim/mapping.hpp"
#include "workload/any_instance.hpp"
#include "workload/dag_suite.hpp"
#include "workload/paper_suite.hpp"

namespace {

using namespace match;
using namespace match::net;

std::shared_ptr<const workload::AnyInstance> make_instance(std::size_t n = 8) {
  rng::Rng rng(77);
  workload::PaperParams params;
  params.n = n;
  return std::make_shared<const workload::AnyInstance>(
      workload::make_paper_instance(params, rng));
}

std::shared_ptr<const workload::AnyInstance> make_dag_instance(
    std::size_t n = 10,
    workload::DagFamily family = workload::DagFamily::kLayered) {
  rng::Rng rng(78);
  workload::DagSuiteParams params;
  params.tasks = n;
  return std::make_shared<const workload::AnyInstance>(
      workload::make_dag_instance(family, params, rng));
}

void expect_graphs_equal(const graph::Graph& a, const graph::Graph& b) {
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  const auto wa = a.node_weights();
  const auto wb = b.node_weights();
  for (std::size_t i = 0; i < wa.size(); ++i) {
    EXPECT_EQ(wa[i], wb[i]) << "node weight " << i;  // exact, not approx
  }
  const auto ea = a.edge_list();
  const auto eb = b.edge_list();
  ASSERT_EQ(ea.size(), eb.size());
  for (std::size_t i = 0; i < ea.size(); ++i) {
    EXPECT_EQ(ea[i].u, eb[i].u);
    EXPECT_EQ(ea[i].v, eb[i].v);
    EXPECT_EQ(ea[i].weight, eb[i].weight);
  }
}

WireRequest decode_frame(const std::string& frame) {
  const FrameHeader header = decode_header(frame);
  return decode_request(header,
                        std::string_view(frame).substr(kHeaderSize));
}

// ---------------------------------------------------------- round trips

TEST(Wire, InlineRequestRoundTripsExactly) {
  WireRequest req;
  req.request_id = 0xdeadbeefcafef00dull;
  req.priority = Priority::kHigh;
  req.strict_deadline = true;
  req.request.instance = make_instance();
  req.request.solver = service::SolverKind::kGa;
  req.request.options.seed = 0xffffffffffffffffull;
  req.request.options.deadline_seconds = 0.1;  // not exactly representable
  req.request.options.target_cost = 1e-300;    // subnormal-adjacent
  req.request.options.max_iterations = 123456789;
  req.request.options.use_cache = false;

  const WireRequest back = decode_frame(encode_request(req));
  EXPECT_EQ(back.request_id, req.request_id);
  EXPECT_EQ(back.priority, Priority::kHigh);
  EXPECT_TRUE(back.strict_deadline);
  EXPECT_FALSE(back.by_fingerprint);
  EXPECT_EQ(back.request.solver, service::SolverKind::kGa);
  EXPECT_EQ(back.request.options.seed, req.request.options.seed);
  EXPECT_EQ(back.request.options.deadline_seconds, 0.1);  // bit-exact
  EXPECT_EQ(back.request.options.target_cost, 1e-300);
  EXPECT_EQ(back.request.options.max_iterations, 123456789u);
  EXPECT_FALSE(back.request.options.use_cache);

  ASSERT_NE(back.request.instance, nullptr);
  EXPECT_EQ(back.request.instance->kind(), workload::WorkloadKind::kTig);
  EXPECT_EQ(back.request.instance->name(), req.request.instance->name());
  EXPECT_EQ(back.request.instance->comm_policy(),
            req.request.instance->comm_policy());
  expect_graphs_equal(back.request.instance->tig().tig.graph(),
                      req.request.instance->tig().tig.graph());
  expect_graphs_equal(back.request.instance->resources().graph(),
                      req.request.instance->resources().graph());

  // The decoded instance fingerprints identically — the property the
  // server's fingerprint store depends on.
  EXPECT_EQ(service::fingerprint_instance(*back.request.instance),
            service::fingerprint_instance(*req.request.instance));
}

TEST(Wire, FingerprintRequestRoundTrips) {
  WireRequest req;
  req.request_id = 42;
  req.priority = Priority::kLow;
  req.by_fingerprint = true;
  req.instance_fingerprint = 0x0123456789abcdefull;
  req.request.solver = service::SolverKind::kMinMin;

  const std::string frame = encode_request(req);
  const WireRequest back = decode_frame(frame);
  EXPECT_TRUE(back.by_fingerprint);
  EXPECT_EQ(back.instance_fingerprint, req.instance_fingerprint);
  EXPECT_EQ(back.priority, Priority::kLow);
  EXPECT_FALSE(back.strict_deadline);
  EXPECT_EQ(back.request.instance, nullptr);
  // Fingerprint requests are tiny — that is their reason to exist.
  EXPECT_LT(frame.size(), 100u);
}

TEST(Wire, OkResponseRoundTripsExactly) {
  WireResponse resp;
  resp.request_id = 7;
  resp.status = Status::kOk;
  resp.response.mapping = sim::Mapping({2, 0, 1, 3});
  resp.response.cost = 123.456789012345;
  resp.response.iterations = 40;
  resp.response.deadline_missed = true;
  resp.response.served_by = service::ServedBy::kCache;
  resp.response.solver = service::SolverKind::kLocalSearch;
  resp.response.fingerprint = 0xabcdefull;
  resp.response.queue_seconds = 1e-9;
  resp.response.solve_seconds = 0.25;
  resp.response.total_seconds = std::numeric_limits<double>::denorm_min();

  const std::string frame = encode_response(resp);
  const FrameHeader header = decode_header(frame);
  EXPECT_EQ(header.type, MsgType::kResponse);
  const WireResponse back =
      decode_response(header, std::string_view(frame).substr(kHeaderSize));
  EXPECT_EQ(back.request_id, 7u);
  EXPECT_EQ(back.status, Status::kOk);
  EXPECT_TRUE(back.response.mapping == resp.response.mapping);
  EXPECT_EQ(back.response.cost, resp.response.cost);
  EXPECT_EQ(back.response.iterations, 40u);
  EXPECT_TRUE(back.response.deadline_missed);
  EXPECT_EQ(back.response.served_by, service::ServedBy::kCache);
  EXPECT_EQ(back.response.solver, service::SolverKind::kLocalSearch);
  EXPECT_EQ(back.response.fingerprint, 0xabcdefull);
  EXPECT_EQ(back.response.queue_seconds, 1e-9);
  EXPECT_EQ(back.response.total_seconds,
            std::numeric_limits<double>::denorm_min());
}

TEST(Wire, ErrorResponseCarriesDiagnosticInsteadOfMapping) {
  WireResponse resp;
  resp.request_id = 9;
  resp.status = Status::kShed;
  resp.error = "over the admission watermark";

  const std::string frame = encode_response(resp);
  const WireResponse back = decode_response(
      decode_header(frame), std::string_view(frame).substr(kHeaderSize));
  EXPECT_EQ(back.status, Status::kShed);
  EXPECT_EQ(back.error, "over the admission watermark");
  EXPECT_EQ(back.response.mapping.num_tasks(), 0u);
}

// ------------------------------------------------------- DAG instances (v2)

TEST(Wire, VersionIsTwo) {
  // The workload-kind discriminant is a v2 feature; the encoded header
  // must say so (byte 4..5, little-endian).
  EXPECT_EQ(kWireVersion, 2);
  WireRequest req;
  req.by_fingerprint = true;
  req.instance_fingerprint = 1;
  const std::string frame = encode_request(req);
  EXPECT_EQ(static_cast<std::uint8_t>(frame[4]), 2);
  EXPECT_EQ(static_cast<std::uint8_t>(frame[5]), 0);
}

TEST(Wire, DagRequestRoundTripsExactlyForEveryFamily) {
  for (const auto family :
       {workload::DagFamily::kLayered, workload::DagFamily::kForkJoin,
        workload::DagFamily::kSeriesParallel}) {
    WireRequest req;
    req.request_id = 21;
    req.request.instance = make_dag_instance(12, family);
    req.request.solver = service::SolverKind::kDagCe;

    const WireRequest back = decode_frame(encode_request(req));
    ASSERT_NE(back.request.instance, nullptr);
    EXPECT_EQ(back.request.instance->kind(), workload::WorkloadKind::kDag);
    EXPECT_EQ(back.request.solver, service::SolverKind::kDagCe);
    EXPECT_EQ(back.request.instance->name(), req.request.instance->name());

    const graph::Dag& a = back.request.instance->dag().dag;
    const graph::Dag& b = req.request.instance->dag().dag;
    ASSERT_EQ(a.num_nodes(), b.num_nodes());
    for (std::size_t i = 0; i < a.num_nodes(); ++i) {
      EXPECT_EQ(a.node_weight(static_cast<graph::NodeId>(i)),
                b.node_weight(static_cast<graph::NodeId>(i)));  // bit-exact
    }
    const auto ea = a.edge_list();
    const auto eb = b.edge_list();
    ASSERT_EQ(ea.size(), eb.size());
    for (std::size_t i = 0; i < ea.size(); ++i) {
      EXPECT_EQ(ea[i].u, eb[i].u);
      EXPECT_EQ(ea[i].v, eb[i].v);
      EXPECT_EQ(ea[i].weight, eb[i].weight);
    }
    expect_graphs_equal(back.request.instance->resources().graph(),
                        req.request.instance->resources().graph());
    EXPECT_EQ(service::fingerprint_instance(*back.request.instance),
              service::fingerprint_instance(*req.request.instance));
  }
}

TEST(Wire, UnknownWorkloadKindThrows) {
  WireRequest req;
  req.request_id = 22;
  req.request.instance = make_instance(6);
  std::string frame = encode_request(req);
  // The kind byte sits right after the fixed-size option block + by_fp.
  const std::size_t kind_at = kHeaderSize + 1 + 1 + 8 + 8 + 8 + 8 + 1;
  ASSERT_EQ(frame[kind_at], 0);  // TIG
  frame[kind_at] = 7;            // no such workload family
  EXPECT_THROW(decode_frame(frame), WireError);
}

TEST(Wire, DagSolverKindsSurviveTheWire) {
  for (const auto kind :
       {service::SolverKind::kHeft, service::SolverKind::kTopoList,
        service::SolverKind::kDagCe}) {
    WireRequest req;
    req.by_fingerprint = true;
    req.instance_fingerprint = 1;
    req.request.solver = kind;
    EXPECT_EQ(decode_frame(encode_request(req)).request.solver, kind);
  }
}

TEST(Wire, EveryTruncationOfADagRequestPayloadThrows) {
  WireRequest req;
  req.request_id = 23;
  req.request.instance = make_dag_instance(8);
  const std::string frame = encode_request(req);
  const FrameHeader header = decode_header(frame);
  const std::string_view payload = std::string_view(frame).substr(kHeaderSize);
  for (std::size_t len = 0; len < payload.size(); ++len) {
    EXPECT_THROW(decode_request(header, payload.substr(0, len)), WireError)
        << "prefix length " << len;
  }
  EXPECT_NO_THROW(decode_request(header, payload));
}

TEST(Wire, RandomCorruptionOfADagFrameNeverEscapesWireError) {
  WireRequest req;
  req.request_id = 24;
  req.request.instance = make_dag_instance(10);
  const std::string pristine = encode_request(req);

  rng::Rng rng(20260809);
  for (int iter = 0; iter < 4000; ++iter) {
    std::string frame = pristine;
    const std::size_t flips = 1 + rng.below(4);
    for (std::size_t f = 0; f < flips; ++f) {
      const std::size_t pos = rng.below(frame.size());
      frame[pos] = static_cast<char>(frame[pos] ^
                                     static_cast<char>(1 + rng.below(255)));
    }
    try {
      const FrameHeader header = decode_header(frame);
      if (kHeaderSize + header.payload_size > frame.size()) continue;
      (void)decode_request(
          header,
          std::string_view(frame).substr(kHeaderSize, header.payload_size));
    } catch (const WireError&) {
      // The only acceptable failure mode.
    }
  }
}

// ------------------------------------------------------ header validation

std::string valid_request_frame() {
  WireRequest req;
  req.request_id = 1;
  req.by_fingerprint = true;
  req.instance_fingerprint = 99;
  return encode_request(req);
}

TEST(Wire, HeaderRejectsBadMagicVersionTypeAndOversizedPayload) {
  const std::string good = valid_request_frame();
  ASSERT_NO_THROW(decode_header(good));

  std::string bad = good;
  bad[0] = 'X';  // magic
  EXPECT_THROW(decode_header(bad), WireError);

  bad = good;
  bad[4] = 0x7f;  // version
  EXPECT_THROW(decode_header(bad), WireError);

  bad = good;
  bad[6] = 0x09;  // type
  EXPECT_THROW(decode_header(bad), WireError);

  bad = good;
  // payload_size (bytes 16..19) just above the cap.
  const std::uint32_t huge = kMaxPayload + 1;
  std::memcpy(bad.data() + 16, &huge, sizeof(huge));  // LE host assumed in CI
  EXPECT_THROW(decode_header(bad), WireError);

  EXPECT_THROW(decode_header(std::string_view(good).substr(0, kHeaderSize - 1)),
               WireError);
}

TEST(Wire, ContradictoryPriorityFlagsThrow) {
  std::string frame = valid_request_frame();
  frame[7] = static_cast<char>(kFlagPriorityLow | kFlagPriorityHigh);
  const FrameHeader header = decode_header(frame);
  EXPECT_THROW(
      decode_request(header, std::string_view(frame).substr(kHeaderSize)),
      WireError);
}

TEST(Wire, WrongFrameTypeForDecoderThrows) {
  const std::string req = valid_request_frame();
  EXPECT_THROW(decode_response(decode_header(req),
                               std::string_view(req).substr(kHeaderSize)),
               WireError);
}

// ------------------------------------------------- truncation / corruption

TEST(Wire, EveryTruncationOfARequestPayloadThrows) {
  WireRequest req;
  req.request_id = 5;
  req.request.instance = make_instance(6);
  const std::string frame = encode_request(req);
  const FrameHeader header = decode_header(frame);
  const std::string_view payload = std::string_view(frame).substr(kHeaderSize);
  for (std::size_t len = 0; len < payload.size(); ++len) {
    EXPECT_THROW(decode_request(header, payload.substr(0, len)), WireError)
        << "prefix length " << len;
  }
  EXPECT_NO_THROW(decode_request(header, payload));
}

TEST(Wire, EveryTruncationOfAResponsePayloadThrows) {
  WireResponse resp;
  resp.request_id = 6;
  resp.status = Status::kOk;
  resp.response.mapping = sim::Mapping({1, 0, 2});
  const std::string frame = encode_response(resp);
  const FrameHeader header = decode_header(frame);
  const std::string_view payload = std::string_view(frame).substr(kHeaderSize);
  for (std::size_t len = 0; len < payload.size(); ++len) {
    EXPECT_THROW(decode_response(header, payload.substr(0, len)), WireError)
        << "prefix length " << len;
  }
}

TEST(Wire, TrailingBytesAfterPayloadThrow) {
  const std::string frame = valid_request_frame();
  std::string padded = frame;
  padded.push_back('\0');
  EXPECT_THROW(decode_request(decode_header(padded),
                              std::string_view(padded).substr(kHeaderSize)),
               WireError);
}

TEST(Wire, RandomCorruptionNeverEscapesWireError) {
  WireRequest req;
  req.request_id = 11;
  req.request.instance = make_instance(8);
  req.request.options.deadline_seconds = 0.5;
  const std::string pristine = encode_request(req);

  rng::Rng rng(20260808);
  for (int iter = 0; iter < 4000; ++iter) {
    std::string frame = pristine;
    const std::size_t flips = 1 + rng.below(4);
    for (std::size_t f = 0; f < flips; ++f) {
      const std::size_t pos = rng.below(frame.size());
      frame[pos] = static_cast<char>(frame[pos] ^
                                     static_cast<char>(1 + rng.below(255)));
    }
    // Mimic the reactor: header first, then the payload the header
    // claims — if the claim exceeds what we have, a real reactor would
    // keep buffering, so the decode simply isn't attempted.
    try {
      const FrameHeader header = decode_header(frame);
      if (kHeaderSize + header.payload_size > frame.size()) continue;
      const std::string_view payload =
          std::string_view(frame).substr(kHeaderSize, header.payload_size);
      if (header.type == MsgType::kRequest) {
        (void)decode_request(header, payload);
      } else {
        (void)decode_response(header, payload);
      }
    } catch (const WireError&) {
      // The only acceptable failure mode.
    }
  }
}

TEST(Wire, GraphNodeAndEdgeCountsAreCapped) {
  // Handcraft a fingerprint-free request whose instance claims 2^30
  // nodes: the decoder must refuse before allocating.
  WireRequest req;
  req.request_id = 3;
  req.request.instance = make_instance(6);
  std::string frame = encode_request(req);
  // Payload layout (v2): solver u8, use_cache u8, seed u64, deadline
  // f64, target f64, max_iter u64, by_fp u8 (=0), workload-kind u8, then
  // name (u16 len + bytes), policy u8, then the TIG node count u32.
  const std::size_t name_len = req.request.instance->name().size();
  const std::size_t node_count_at =
      kHeaderSize + 1 + 1 + 8 + 8 + 8 + 8 + 1 + 1 + 2 + name_len + 1;
  const std::uint32_t huge = 1u << 30;
  std::memcpy(frame.data() + node_count_at, &huge, sizeof(huge));
  EXPECT_THROW(decode_frame(frame), WireError);
}

TEST(Wire, EdgeCountBeyondPayloadBytesThrowsBeforeAllocating) {
  // For n >= ~93k the simple-graph bound n*(n-1)/2 exceeds u32, so any
  // claimed edge count passes it — the decoder must also bound the
  // claim by the bytes actually left in the payload, or a <1 MB frame
  // drives a ~64 GiB value-initialized allocation (bad_alloc, not the
  // WireError the reactor catches).  Handcraft exactly that frame.
  std::string payload;
  auto put8 = [&](std::uint8_t v) { payload.push_back(static_cast<char>(v)); };
  auto put32 = [&](std::uint32_t v) {
    for (int s = 0; s < 32; s += 8) {
      payload.push_back(static_cast<char>((v >> s) & 0xff));
    }
  };
  auto put64 = [&](std::uint64_t v) {
    for (int s = 0; s < 64; s += 8) {
      payload.push_back(static_cast<char>((v >> s) & 0xff));
    }
  };
  put8(0);           // solver kind
  put8(1);           // use_cache
  put64(0);          // seed
  put64(0);          // deadline_seconds bits (0.0)
  put64(0);          // target_cost bits
  put64(0);          // max_iterations
  put8(0);           // by_fingerprint = inline instance follows
  put8(0);           // workload kind: TIG
  put8(0); put8(0);  // instance name: u16 length 0
  put8(0);           // comm policy
  const std::uint32_t n = 100000;  // n*(n-1)/2 ≈ 5e9 > any u32 claim
  put32(n);
  payload.append(std::size_t{n} * 8, '\0');  // node weights
  put32(0xffffffffu);                        // claimed edges, 0 bytes behind

  FrameHeader header;
  header.type = MsgType::kRequest;
  header.request_id = 1;
  header.payload_size = static_cast<std::uint32_t>(payload.size());
  EXPECT_THROW(decode_request(header, payload), WireError);
}

TEST(Wire, NodeAndMappingCountsBeyondPayloadBytesThrow) {
  // Same property for the two other length-prefixed arrays: a node
  // count or response-mapping count the payload cannot hold is a
  // WireError before any allocation happens.
  std::string payload;
  auto put_bytes = [&](std::initializer_list<std::uint8_t> bytes) {
    for (std::uint8_t b : bytes) payload.push_back(static_cast<char>(b));
  };
  put_bytes({0, 1});                       // solver, use_cache
  payload.append(8 + 8 + 8 + 8, '\0');     // seed, deadline, target, max_iter
  put_bytes({0, 0, 0, 0, 0});              // inline, TIG kind, name, policy
  put_bytes({0xff, 0xff, 0x0f, 0x00});     // node count 2^20 = kMaxWireNodes-ish
  FrameHeader header;
  header.type = MsgType::kRequest;
  header.payload_size = static_cast<std::uint32_t>(payload.size());
  EXPECT_THROW(decode_request(header, payload), WireError);

  WireResponse resp;
  resp.request_id = 1;
  resp.status = Status::kOk;
  resp.response.mapping = sim::Mapping({0, 1});
  std::string frame = encode_response(resp);
  // Mapping count is the last u32 before the two entries: claim 2^20.
  const std::size_t count_at = frame.size() - 4 - 2 * 4;
  const std::uint32_t huge = 1u << 20;
  std::memcpy(frame.data() + count_at, &huge, sizeof(huge));
  EXPECT_THROW(decode_response(decode_header(frame),
                               std::string_view(frame).substr(kHeaderSize)),
               WireError);
}

}  // namespace
