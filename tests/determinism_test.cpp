// Cross-component determinism suite.  Reproducibility is a library-wide
// contract: for a fixed seed every pipeline must produce bit-identical
// results across repeated runs, across serial/parallel execution, and
// across thread-pool sizes (per-sample seeds are derived by counter
// hashing, never by thread identity).

#include <gtest/gtest.h>

#include "baselines/clustering.hpp"
#include "baselines/ga.hpp"
#include "core/general_match.hpp"
#include "core/island.hpp"
#include "core/matchalgo.hpp"
#include "parallel/thread_pool.hpp"
#include "sim/des.hpp"
#include "workload/overset.hpp"
#include "workload/paper_suite.hpp"

namespace match {
namespace {

workload::Instance make_instance(std::size_t n, std::uint64_t seed) {
  rng::Rng rng(seed);
  workload::PaperParams params;
  params.n = n;
  return workload::make_paper_instance(params, rng);
}

TEST(Determinism, InstanceGenerationRepeats) {
  const auto a = make_instance(20, 1);
  const auto b = make_instance(20, 1);
  EXPECT_EQ(a.tig, b.tig);
  EXPECT_EQ(a.resources, b.resources);
}

TEST(Determinism, SuiteGenerationRepeats) {
  rng::Rng r1(2), r2(2);
  workload::PaperParams params;
  params.n = 12;
  const auto a = workload::make_paper_suite(params, 4, 0.5, 2.0, r1);
  const auto b = workload::make_paper_suite(params, 4, 0.5, 2.0, r2);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].tig, b[i].tig) << i;
  }
}

TEST(Determinism, OversetWorkloadRepeats) {
  rng::Rng r1(3), r2(3);
  workload::OversetParams params;
  const auto a = workload::make_overset_workload(params, r1);
  const auto b = workload::make_overset_workload(params, r2);
  EXPECT_EQ(a.tig, b.tig);
}

TEST(Determinism, MatchFullHistoryRepeats) {
  // Repeatability on the shared global pool, whatever its size; the
  // serial-vs-parallel equivalence is covered in matchalgo_test.
  const auto inst = make_instance(12, 4);
  const auto plat = inst.make_platform();
  const sim::CostEvaluator eval(inst.tig, plat);

  const auto run_once = [&] {
    core::MatchOptimizer opt(eval);
    rng::Rng rng(5);
    return opt.run(match::SolverContext(rng));
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.best_mapping, b.best_mapping);
  ASSERT_EQ(a.history.size(), b.history.size());
  for (std::size_t i = 0; i < a.history.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.history[i].gamma, b.history[i].gamma);
    EXPECT_DOUBLE_EQ(a.history[i].mean_entropy, b.history[i].mean_entropy);
  }
}

TEST(Determinism, GaFullHistoryRepeats) {
  const auto inst = make_instance(10, 6);
  const auto plat = inst.make_platform();
  const sim::CostEvaluator eval(inst.tig, plat);
  baselines::GaParams params;
  params.population = 40;
  params.generations = 50;

  rng::Rng r1(7), r2(7);
  const auto a = baselines::GaOptimizer(eval, params).run(match::SolverContext(r1));
  const auto b = baselines::GaOptimizer(eval, params).run(match::SolverContext(r2));
  ASSERT_EQ(a.history.size(), b.history.size());
  for (std::size_t i = 0; i < a.history.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.history[i].gen_best, b.history[i].gen_best);
    EXPECT_DOUBLE_EQ(a.history[i].mean_cost, b.history[i].mean_cost);
  }
}

TEST(Determinism, GeneralMatchRepeats) {
  rng::Rng gen(8);
  const graph::Tig tig(
      graph::make_clustered(15, 3, 0.6, 0.1, {1, 10}, {50, 100}, gen));
  const sim::Platform plat(graph::ResourceGraph(
      graph::make_complete(5, {1, 5}, {10, 20}, gen)));
  const sim::CostEvaluator eval(tig, plat);

  rng::Rng r1(9), r2(9);
  const auto a = core::GeneralMatchOptimizer(eval).run(match::SolverContext(r1));
  const auto b = core::GeneralMatchOptimizer(eval).run(match::SolverContext(r2));
  EXPECT_EQ(a.best_mapping, b.best_mapping);
  EXPECT_EQ(a.iterations, b.iterations);
}

TEST(Determinism, ClusteringRepeats) {
  const auto inst = make_instance(18, 10);
  rng::Rng r1(11), r2(11);
  const auto a = baselines::coarsen_tig(inst.tig, 6, r1);
  const auto b = baselines::coarsen_tig(inst.tig, 6, r2);
  EXPECT_EQ(a.cluster_of, b.cluster_of);
  EXPECT_EQ(a.coarse, b.coarse);
}

TEST(Determinism, DesWithJitterRepeats) {
  const auto inst = make_instance(10, 12);
  const auto plat = inst.make_platform();
  const sim::CostEvaluator eval(inst.tig, plat);
  rng::Rng map_rng(13);
  const auto m = sim::Mapping::random_permutation(10, map_rng);

  sim::DesParams params;
  params.compute_jitter = 0.15;
  params.rounds = 3;
  rng::Rng r1(14), r2(14);
  const auto a = sim::simulate_execution(eval, m, params, &r1);
  const auto b = sim::simulate_execution(eval, m, params, &r2);
  EXPECT_DOUBLE_EQ(a.total_time, b.total_time);
  EXPECT_EQ(a.busy, b.busy);
}

TEST(Determinism, IslandFullHistoryRepeats) {
  const auto inst = make_instance(10, 15);
  const auto plat = inst.make_platform();
  const sim::CostEvaluator eval(inst.tig, plat);
  core::IslandParams params;
  params.islands = 3;
  rng::Rng r1(16), r2(16);
  const auto a = core::IslandMatchOptimizer(eval, params).run(match::SolverContext(r1));
  const auto b = core::IslandMatchOptimizer(eval, params).run(match::SolverContext(r2));
  EXPECT_EQ(a.history, b.history);
}

}  // namespace
}  // namespace match
