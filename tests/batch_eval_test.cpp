// SoA batch evaluation: backend dispatch, the SampleBlock layout, and
// the scalar-vs-SIMD agreement contract.  The scalar backend must be
// bit-compatible with CostEvaluator::makespan; vector backends must be
// bit-identical on integer-valued workloads (every partial sum is exact)
// and within 1e-9 relative tolerance on fractional ones (reassociation).

#include "sim/batch_eval.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "graph/generators.hpp"
#include "rng/rng.hpp"
#include "sim/evaluator.hpp"
#include "sim/mapping.hpp"
#include "sim/platform.hpp"
#include "workload/paper_suite.hpp"

namespace match::sim {
namespace {

/// Integer-valued paper instance: every weight and shortest-path
/// distance is a (small) integer, so all backends must agree bitwise.
CostEvaluator paper_eval(std::size_t n, std::uint64_t seed,
                         workload::Instance& inst_out, Platform& plat_out) {
  rng::Rng rng(seed);
  workload::PaperParams params;
  params.n = n;
  inst_out = workload::make_paper_instance(params, rng);
  plat_out = inst_out.make_platform();
  return CostEvaluator(inst_out.tig, plat_out);
}

/// Fills a block with random permutations and returns the AoS copy.
std::vector<graph::NodeId> fill_random(SampleBlock& block, std::size_t n,
                                       std::size_t count, rng::Rng& rng) {
  block.reset(n, count);
  std::vector<graph::NodeId> rows(count * n);
  for (std::size_t i = 0; i < count; ++i) {
    const Mapping m = Mapping::random_permutation(n, rng);
    std::copy(m.assignment().begin(), m.assignment().end(),
              rows.begin() + static_cast<std::ptrdiff_t>(i * n));
    block.store_sample(i, std::span<const graph::NodeId>(rows.data() + i * n,
                                                         n));
  }
  return rows;
}

std::vector<EvalBackend> available_vector_backends() {
  std::vector<EvalBackend> v;
  for (EvalBackend b :
       {EvalBackend::kAvx2, EvalBackend::kAvx512, EvalBackend::kNeon}) {
    if (eval_backend_available(b)) v.push_back(b);
  }
  return v;
}

TEST(EvalBackend, NamesRoundTrip) {
  for (EvalBackend b : {EvalBackend::kAuto, EvalBackend::kScalar,
                        EvalBackend::kAvx2, EvalBackend::kAvx512,
                        EvalBackend::kNeon}) {
    EXPECT_EQ(parse_eval_backend(to_string(b)), b);
  }
  EXPECT_THROW(parse_eval_backend("sse9"), std::invalid_argument);
}

TEST(EvalBackend, ResolutionNeverReturnsAutoAndDegradesToScalar) {
  const EvalBackend best = resolve_eval_backend(EvalBackend::kAuto);
  EXPECT_NE(best, EvalBackend::kAuto);
  EXPECT_TRUE(eval_backend_available(best));
  // Every explicit request resolves to itself when available, kScalar
  // otherwise — never a third backend.
  for (EvalBackend b : {EvalBackend::kScalar, EvalBackend::kAvx2,
                        EvalBackend::kAvx512, EvalBackend::kNeon}) {
    const EvalBackend r = resolve_eval_backend(b);
    EXPECT_EQ(r, eval_backend_available(b) ? b : EvalBackend::kScalar);
  }
}

TEST(SampleBlock, StoreLoadRoundTripAndPadding) {
  rng::Rng rng(3);
  SampleBlock block(7, 11);  // deliberately not multiples of kLaneGroup
  EXPECT_EQ(block.num_tasks(), 7u);
  EXPECT_EQ(block.size(), 11u);
  EXPECT_EQ(block.lane_stride() % kLaneGroup, 0u);
  EXPECT_GE(block.lane_stride(), 11u);

  std::vector<graph::NodeId> in(7), out(7);
  for (std::size_t i = 0; i < 11; ++i) {
    for (auto& r : in) r = static_cast<graph::NodeId>(rng.below(7));
    block.store_sample(i, in);
    block.load_sample(i, out);
    EXPECT_EQ(in, out);
  }
  // Padding lanes stay resource 0, so whole-group SIMD gathers are safe.
  for (std::size_t t = 0; t < 7; ++t) {
    for (std::size_t l = 11; l < block.lane_stride(); ++l) {
      EXPECT_EQ(block.task_row(t)[l], 0u);
    }
  }
  EXPECT_THROW(block.reset(0, 4), std::invalid_argument);
  EXPECT_THROW(block.reset(4, 0), std::invalid_argument);
}

TEST(BatchEvaluator, ScalarBackendBitCompatibleWithPerSampleKernel) {
  workload::Instance inst;
  Platform plat;
  const CostEvaluator eval = paper_eval(12, 11, inst, plat);
  rng::Rng rng(4);
  SampleBlock block;
  const auto rows = fill_random(block, 12, 100, rng);

  BatchEvaluator scalar(eval, EvalBackend::kScalar);
  EXPECT_EQ(scalar.backend(), EvalBackend::kScalar);
  std::vector<double> out(100);
  scalar.evaluate(block, out);
  std::vector<double> scratch;
  for (std::size_t i = 0; i < 100; ++i) {
    const std::span<const graph::NodeId> row(rows.data() + i * 12, 12);
    EXPECT_EQ(out[i], eval.makespan(row, scratch)) << "sample " << i;
  }
}

TEST(BatchEvaluator, ForcedScalarIgnoresSimdAvailability) {
  workload::Instance inst;
  Platform plat;
  const CostEvaluator eval = paper_eval(8, 2, inst, plat);
  const BatchEvaluator forced(eval, EvalBackend::kScalar);
  EXPECT_EQ(forced.backend(), EvalBackend::kScalar);
  EXPECT_STREQ(forced.backend_name(), "scalar");

  // kAuto resolves to the process-wide best backend.
  const BatchEvaluator autod(eval);
  EXPECT_EQ(autod.backend(), resolve_eval_backend(EvalBackend::kAuto));
}

TEST(BatchEvaluator, VectorBackendsBitIdenticalOnIntegerWorkload) {
  workload::Instance inst;
  Platform plat;
  const CostEvaluator eval = paper_eval(24, 17, inst, plat);
  rng::Rng rng(5);
  SampleBlock block;
  fill_random(block, 24, 257, rng);  // odd count exercises the tail group

  BatchEvaluator scalar(eval, EvalBackend::kScalar);
  std::vector<double> ref(257), out(257);
  scalar.evaluate(block, ref);

  for (const EvalBackend b : available_vector_backends()) {
    const BatchEvaluator vec(eval, b);
    ASSERT_EQ(vec.backend(), b);
    std::fill(out.begin(), out.end(), -1.0);
    vec.evaluate(block, out);
    for (std::size_t i = 0; i < out.size(); ++i) {
      EXPECT_EQ(out[i], ref[i]) << to_string(b) << " sample " << i;
    }
  }
}

TEST(BatchEvaluator, VectorBackendsWithinToleranceOnFractionalWorkload) {
  // Geometric platforms carry fractional (distance-derived) link costs;
  // SIMD run accumulation reassociates, so agreement is to 1e-9 relative
  // tolerance — the same contract as the edge-streaming kernel vs the
  // per-task reference (see evaluator_test.cpp).
  rng::Rng rng(7);
  constexpr std::size_t kN = 32;
  const graph::Tig tig(
      graph::make_clustered(kN, 3, 0.7, 0.2, {1, 10}, {50, 100}, rng));
  const Platform plat(
      graph::ResourceGraph(graph::make_geometric(kN, 0.5, {1, 5}, 15.0, rng)),
      CommCostPolicy::kShortestPath);
  const CostEvaluator eval(tig, plat);

  SampleBlock block;
  fill_random(block, kN, 64, rng);
  BatchEvaluator scalar(eval, EvalBackend::kScalar);
  std::vector<double> ref(64), out(64);
  scalar.evaluate(block, ref);

  for (const EvalBackend b : available_vector_backends()) {
    const BatchEvaluator vec(eval, b);
    vec.evaluate(block, out);
    for (std::size_t i = 0; i < out.size(); ++i) {
      EXPECT_NEAR(out[i], ref[i], 1e-9 * std::max(1.0, ref[i]))
          << to_string(b) << " sample " << i;
    }
  }
}

TEST(BatchEvaluator, RectangularInstanceAllBackends) {
  // 20 tasks onto 6 resources (many-to-one), the general-mapper shape.
  rng::Rng rng(9);
  const graph::Tig tig(
      graph::make_clustered(20, 4, 0.6, 0.3, {1, 10}, {50, 100}, rng));
  const Platform plat(graph::ResourceGraph(
      graph::make_complete(6, {1, 5}, {1, 9}, rng)));
  const CostEvaluator eval(tig, plat);

  SampleBlock block(20, 50);
  std::vector<graph::NodeId> row(20);
  for (std::size_t i = 0; i < 50; ++i) {
    for (auto& r : row) r = static_cast<graph::NodeId>(rng.below(6));
    block.store_sample(i, row);
  }
  BatchEvaluator scalar(eval, EvalBackend::kScalar);
  std::vector<double> ref(50), out(50);
  scalar.evaluate(block, ref);
  for (const EvalBackend b : available_vector_backends()) {
    BatchEvaluator vec(eval, b);
    vec.evaluate(block, out);
    for (std::size_t i = 0; i < 50; ++i) {
      EXPECT_EQ(out[i], ref[i]) << to_string(b) << " sample " << i;
    }
  }
}

TEST(BatchEvaluator, EvaluateRowsMatchesPerSampleKernel) {
  workload::Instance inst;
  Platform plat;
  const CostEvaluator eval = paper_eval(10, 23, inst, plat);
  rng::Rng rng(6);
  constexpr std::size_t kCount = 40;
  std::vector<graph::NodeId> rows(kCount * 10);
  for (std::size_t i = 0; i < kCount; ++i) {
    const Mapping m = Mapping::random_permutation(10, rng);
    std::copy(m.assignment().begin(), m.assignment().end(),
              rows.begin() + static_cast<std::ptrdiff_t>(i * 10));
  }
  // The AoS adapter always runs the scalar reference kernel, whatever
  // backend the evaluator was constructed with.
  const BatchEvaluator be(eval);
  std::vector<double> out(kCount);
  be.evaluate_rows(rows, kCount, out);
  for (std::size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(out[i], eval.makespan(std::span<const graph::NodeId>(
                          rows.data() + i * 10, 10)));
  }
}

TEST(BatchEvaluator, RejectsMismatchedShapes) {
  workload::Instance inst;
  Platform plat;
  const CostEvaluator eval = paper_eval(8, 2, inst, plat);
  const BatchEvaluator be(eval, EvalBackend::kScalar);

  SampleBlock wrong_tasks(9, 4);
  std::vector<double> out(4);
  EXPECT_THROW(be.evaluate(wrong_tasks, out), std::invalid_argument);

  SampleBlock block(8, 4);
  std::vector<double> small_out(3);
  EXPECT_THROW(be.evaluate(block, small_out), std::invalid_argument);

  std::vector<graph::NodeId> rows(8 * 4);
  EXPECT_THROW(be.evaluate_rows(rows, 4, small_out), std::invalid_argument);
  EXPECT_THROW(be.evaluate_rows(rows, 5, out), std::invalid_argument);
}

TEST(BatchEvaluator, ChunkingDoesNotChangeResults) {
  // Determinism contract: forced tiny chunks (every boundary lands mid
  // lane-group) must reproduce the single-chunk result bit-for-bit on
  // every backend.
  workload::Instance inst;
  Platform plat;
  const CostEvaluator eval = paper_eval(16, 31, inst, plat);
  rng::Rng rng(8);
  SampleBlock block;
  fill_random(block, 16, 103, rng);

  std::vector<double> serial(103), chunked(103);
  for (EvalBackend b : available_vector_backends()) {
    const BatchEvaluator vec(eval, b);
    parallel::ForOptions one_chunk;
    one_chunk.serial_cutoff = 1 << 20;
    vec.evaluate(block, serial, one_chunk);
    parallel::ForOptions tiny;
    tiny.serial_cutoff = 0;
    tiny.grain = 3;  // boundaries inside lane groups
    vec.evaluate(block, chunked, tiny);
    for (std::size_t i = 0; i < 103; ++i) {
      EXPECT_EQ(serial[i], chunked[i]) << to_string(b) << " sample " << i;
    }
  }
}

}  // namespace
}  // namespace match::sim
