#include "core/general_match.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "graph/generators.hpp"
#include "workload/paper_suite.hpp"

namespace match::core {
namespace {

/// A rectangular instance: `tasks` TIG nodes onto `resources` resources.
struct RectFixture {
  graph::Tig tig;
  sim::Platform platform;
  sim::CostEvaluator eval;

  RectFixture(std::size_t tasks, std::size_t resources, std::uint64_t seed)
      : tig(make_tig(tasks, seed)),
        platform(make_platform(resources, seed)),
        eval(tig, platform) {}

  static graph::Tig make_tig(std::size_t tasks, std::uint64_t seed) {
    rng::Rng rng(seed);
    return graph::Tig(
        graph::make_clustered(tasks, 3, 0.7, 0.2, {1, 10}, {50, 100}, rng));
  }
  static sim::Platform make_platform(std::size_t resources,
                                     std::uint64_t seed) {
    rng::Rng rng(seed + 1);
    return sim::Platform(graph::ResourceGraph(
        graph::make_complete(resources, {1, 5}, {10, 20}, rng)));
  }
};

/// Brute-force optimum over all resources^tasks assignments (tiny only).
double brute_force_general(const sim::CostEvaluator& eval) {
  const std::size_t nt = eval.num_tasks();
  const std::size_t nr = eval.num_resources();
  std::vector<graph::NodeId> assign(nt, 0);
  double best = std::numeric_limits<double>::infinity();
  for (;;) {
    best = std::min(best, eval.makespan(assign));
    std::size_t pos = 0;
    while (pos < nt && ++assign[pos] == nr) {
      assign[pos] = 0;
      ++pos;
    }
    if (pos == nt) break;
  }
  return best;
}

TEST(GeneralMatchParams, Validation) {
  GeneralMatchParams p;
  p.rho = 1.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = {};
  p.zeta = 0.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = {};
  p.max_iterations = 0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = {};
  EXPECT_NO_THROW(p.validate());
}

TEST(GeneralMatch, DefaultSampleSizeIsRectangular) {
  RectFixture f(8, 3, 1);
  GeneralMatchOptimizer opt(f.eval);
  EXPECT_EQ(opt.effective_sample_size(), 2u * 8u * 3u);
}

TEST(GeneralMatch, FindsBruteForceOptimumOnSmoothInstance) {
  // Mild communication weights make the optimum a genuine spread rather
  // than an all-on-one-resource corner; CE (best of 3 restarts, standard
  // practice for a randomized heuristic) recovers it exactly.
  rng::Rng rng(2);
  const graph::Tig tig(
      graph::make_clustered(7, 3, 0.7, 0.2, {5, 10}, {1, 4}, rng));
  rng::Rng prng(3);
  const sim::Platform plat(
      graph::ResourceGraph(graph::make_complete(3, {1, 5}, {1, 3}, prng)));
  const sim::CostEvaluator eval(tig, plat);
  const double optimum = brute_force_general(eval);  // 3^7 assignments

  double best = std::numeric_limits<double>::infinity();
  for (std::uint64_t restart = 0; restart < 3; ++restart) {
    GeneralMatchParams params;
    params.sample_size = 300;
    params.gamma_stall_window = 15;
    GeneralMatchOptimizer opt(eval, params);
    rng::Rng run_rng(10 + restart);
    best = std::min(best, opt.run(match::SolverContext(run_rng)).best_cost);
  }
  EXPECT_NEAR(best, optimum, 1e-9);
}

TEST(GeneralMatch, CommHeavyCornerInstanceColocatesEverything) {
  // With comm weights ~50x the compute weights, any cut edge dwarfs the
  // makespan, so the only good mappings put all tasks on one resource.
  // CE reliably finds *a* colocation; which resource it locks onto is a
  // known CE local-optimum effect, so we assert structure + a quality
  // band rather than exact optimality.
  RectFixture f(7, 3, 2);
  const double optimum = brute_force_general(f.eval);
  GeneralMatchOptimizer opt(f.eval);
  rng::Rng rng(3);
  const MatchResult r = opt.run(match::SolverContext(rng));
  EXPECT_TRUE(r.best_mapping.is_valid(3));
  const auto assignment = r.best_mapping.assignment();
  for (std::size_t t = 1; t < assignment.size(); ++t) {
    EXPECT_EQ(assignment[t], assignment[0]) << "task " << t << " not colocated";
  }
  EXPECT_LE(r.best_cost, 2.0 * optimum);
}

TEST(GeneralMatch, HandlesSquareInstancesToo) {
  rng::Rng setup(4);
  workload::PaperParams params;
  params.n = 8;
  const auto inst = workload::make_paper_instance(params, setup);
  const auto plat = inst.make_platform();
  const sim::CostEvaluator eval(inst.tig, plat);

  GeneralMatchOptimizer opt(eval);
  rng::Rng rng(5);
  const MatchResult r = opt.run(match::SolverContext(rng));
  EXPECT_TRUE(r.best_mapping.is_valid(8));
  // Without the permutation constraint it may colocate tasks; the result
  // can only be at least as good as the best permutation it sampled.
  EXPECT_GT(r.best_cost, 0.0);
}

TEST(GeneralMatch, MoreResourcesNeverHurts) {
  // Adding resources (same speed range) can only help the optimizer
  // spread load; with the same seed family, 6 resources should not do
  // better than 12 on the same task set... the reverse must hold.
  const std::size_t tasks = 14;
  const double cost6 = [&] {
    RectFixture f(tasks, 6, 6);
    GeneralMatchOptimizer opt(f.eval);
    rng::Rng rng(7);
    return opt.run(match::SolverContext(rng)).best_cost;
  }();
  const double cost1 = [&] {
    RectFixture f(tasks, 1, 6);
    GeneralMatchOptimizer opt(f.eval);
    rng::Rng rng(7);
    return opt.run(match::SolverContext(rng)).best_cost;
  }();
  // A single resource serializes everything (but pays no communication);
  // this is a sanity bound rather than a strict ordering: both must be
  // positive and finite.
  EXPECT_GT(cost6, 0.0);
  EXPECT_GT(cost1, 0.0);
  EXPECT_LT(cost6, std::numeric_limits<double>::infinity());
}

TEST(GeneralMatch, SingleResourceIsPureCompute) {
  RectFixture f(10, 1, 8);
  GeneralMatchOptimizer opt(f.eval);
  rng::Rng rng(9);
  const MatchResult r = opt.run(match::SolverContext(rng));
  // Everything on the one resource: cost = total W x w_0, no choice.
  double expected = 0.0;
  for (graph::NodeId t = 0; t < 10; ++t) {
    expected += f.tig.compute_weight(t) * f.platform.processing_cost(0);
  }
  EXPECT_NEAR(r.best_cost, expected, 1e-9);
}

TEST(GeneralMatch, DeterministicAcrossParallelModes) {
  RectFixture f(10, 4, 10);
  GeneralMatchParams serial;
  serial.parallel = false;
  GeneralMatchParams par;
  par.parallel = true;
  rng::Rng r1(11), r2(11);
  const auto a = GeneralMatchOptimizer(f.eval, serial).run(match::SolverContext(r1));
  const auto b = GeneralMatchOptimizer(f.eval, par).run(match::SolverContext(r2));
  EXPECT_EQ(a.best_mapping, b.best_mapping);
  EXPECT_DOUBLE_EQ(a.best_cost, b.best_cost);
}

TEST(GeneralMatch, BestSoFarMonotone) {
  RectFixture f(12, 5, 12);
  GeneralMatchOptimizer opt(f.eval);
  rng::Rng rng(13);
  const auto r = opt.run(match::SolverContext(rng));
  for (std::size_t i = 1; i < r.history.size(); ++i) {
    EXPECT_LE(r.history[i].best_so_far, r.history[i - 1].best_so_far);
  }
}

TEST(GeneralMatch, ColocationBeatsForcedSpreadOnCommHeavyInstance) {
  // With enormous communication weights and tiny compute, the general
  // mapper should colocate interacting tasks and beat any permutation.
  rng::Rng rng(14);
  graph::Graph::Builder b;
  for (int i = 0; i < 6; ++i) b.add_node(1.0);
  b.add_edge(0, 1, 1000.0);
  b.add_edge(2, 3, 1000.0);
  b.add_edge(4, 5, 1000.0);
  const graph::Tig tig(b.build());
  const sim::Platform plat(graph::ResourceGraph(
      graph::make_complete(6, {1, 1}, {10, 20}, rng)));
  const sim::CostEvaluator eval(tig, plat);

  GeneralMatchOptimizer opt(eval);
  rng::Rng run_rng(15);
  const auto r = opt.run(match::SolverContext(run_rng));
  // Optimal: pair up the communicating tasks -> zero comm, makespan = 2.
  EXPECT_NEAR(r.best_cost, 2.0, 1e-9);
}

class GeneralMatchShapeTest
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(GeneralMatchShapeTest, ValidMappingsAcrossShapes) {
  const auto [tasks, resources] = GetParam();
  RectFixture f(tasks, resources, 20 + tasks);
  GeneralMatchParams params;
  params.max_iterations = 60;
  GeneralMatchOptimizer opt(f.eval, params);
  rng::Rng rng(21);
  const auto r = opt.run(match::SolverContext(rng));
  EXPECT_EQ(r.best_mapping.num_tasks(), tasks);
  EXPECT_TRUE(r.best_mapping.is_valid(resources));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GeneralMatchShapeTest,
    ::testing::Values(std::pair<std::size_t, std::size_t>{5, 5},
                      std::pair<std::size_t, std::size_t>{12, 4},
                      std::pair<std::size_t, std::size_t>{20, 3},
                      std::pair<std::size_t, std::size_t>{4, 9}));

}  // namespace
}  // namespace match::core
