// Tests of the Prometheus exposition pipeline: metric-name
// sanitization, label-value escaping, the text renderer's histogram
// encoding (cumulative buckets, +Inf, _sum/_count, quantile gauges),
// and the HTTP exposer end-to-end over a real loopback socket.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <charconv>
#include <cstring>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/http_exposer.hpp"
#include "obs/metrics.hpp"
#include "obs/prometheus.hpp"
#include "obs/spans.hpp"

namespace match::obs {
namespace {

// ------------------------------------------------------------ sanitization

TEST(Sanitize, DotsAndHostileCharactersBecomeUnderscores) {
  EXPECT_EQ(sanitize_metric_name("service.cache_hits"), "service_cache_hits");
  EXPECT_EQ(sanitize_metric_name("match.phase.draw_seconds"),
            "match_phase_draw_seconds");
  EXPECT_EQ(sanitize_metric_name("has spaces-and/slash"),
            "has_spaces_and_slash");
  EXPECT_EQ(sanitize_metric_name("weird\"quote\nnewline"),
            "weird_quote_newline");
}

TEST(Sanitize, ColonsAndUnderscoresSurvive) {
  EXPECT_EQ(sanitize_metric_name("ns:sub_total"), "ns:sub_total");
}

TEST(Sanitize, LeadingDigitGainsUnderscorePrefix) {
  EXPECT_EQ(sanitize_metric_name("5xx_responses"), "_5xx_responses");
  // Digits past the first position are fine as-is.
  EXPECT_EQ(sanitize_metric_name("http2xx"), "http2xx");
}

TEST(Sanitize, EmptyNameRendersAsUnderscore) {
  EXPECT_EQ(sanitize_metric_name(""), "_");
}

TEST(Escape, BackslashQuoteAndNewline) {
  EXPECT_EQ(escape_label_value("plain"), "plain");
  EXPECT_EQ(escape_label_value("back\\slash"), "back\\\\slash");
  EXPECT_EQ(escape_label_value("dou\"ble"), "dou\\\"ble");
  EXPECT_EQ(escape_label_value("new\nline"), "new\\nline");
  // All three at once, in pathological order.
  EXPECT_EQ(escape_label_value("\\\"\n"), "\\\\\\\"\\n");
}

// ---------------------------------------------------------------- renderer

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) lines.push_back(line);
  return lines;
}

TEST(Render, CounterAndGaugeFamilies) {
  MetricsSnapshot snap;
  snap.counters["service.cache_hits"] = 42;
  snap.gauges["queue.depth"] = 2.5;
  const std::string text = to_prometheus(snap);
  const auto lines = lines_of(text);
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_EQ(lines[0], "# TYPE service_cache_hits counter");
  EXPECT_EQ(lines[1], "service_cache_hits 42");
  EXPECT_EQ(lines[2], "# TYPE queue_depth gauge");
  EXPECT_EQ(lines[3], "queue_depth 2.5");
}

TEST(Render, PrefixAndGlobalLabels) {
  MetricsSnapshot snap;
  snap.counters["hits"] = 7;
  PrometheusOptions options;
  options.prefix = "match";
  options.labels = {{"job", "ser\"ver"}, {"host", "a\\b"}};
  const std::string text = to_prometheus(snap, options);
  EXPECT_NE(text.find("# TYPE match_hits counter\n"), std::string::npos);
  EXPECT_NE(text.find("match_hits{host=\"a\\\\b\",job=\"ser\\\"ver\"} 7\n"),
            std::string::npos);
}

TEST(Render, HistogramBucketsAreCumulativeAndEndAtInf) {
  MetricsRegistry registry;
  Histogram& h = registry.histogram("phase.draw_seconds");
  for (int i = 0; i < 90; ++i) h.observe(3e-6);    // bucket (2e-6, 4e-6]
  for (int i = 0; i < 10; ++i) h.observe(1.5e-3);  // bucket 11
  const std::string text = to_prometheus(registry.snapshot());

  // Two populated buckets → two finite cumulative samples, then +Inf.
  EXPECT_NE(text.find("# TYPE phase_draw_seconds histogram"),
            std::string::npos);
  EXPECT_NE(text.find("phase_draw_seconds_bucket{le=\"4e-06\"} 90\n"),
            std::string::npos);
  // The slow bucket's `le` is whatever shortest form bucket_upper(11)
  // takes — format it through to_chars rather than hardcoding.
  char le_buf[32];
  auto [le_end, le_ec] =
      std::to_chars(le_buf, le_buf + sizeof(le_buf), Histogram::bucket_upper(11));
  ASSERT_EQ(le_ec, std::errc{});
  const std::string slow_le(le_buf, le_end);
  EXPECT_NE(text.find("phase_draw_seconds_bucket{le=\"" + slow_le + "\"} 100\n"),
            std::string::npos);
  EXPECT_NE(text.find("phase_draw_seconds_bucket{le=\"+Inf\"} 100\n"),
            std::string::npos);
  EXPECT_NE(text.find("phase_draw_seconds_count 100\n"), std::string::npos);

  // Quantiles render as sibling gauges, not `quantile` labels.
  EXPECT_NE(text.find("# TYPE phase_draw_seconds_p50 gauge"),
            std::string::npos);
  EXPECT_NE(text.find("phase_draw_seconds_p50 4e-06\n"), std::string::npos);
  EXPECT_EQ(text.find("quantile="), std::string::npos);

  // The +Inf bucket equals _count: the format's invariant.
  const auto lines = lines_of(text);
  std::string inf_value, count_value;
  for (const auto& line : lines) {
    if (line.rfind("phase_draw_seconds_bucket{le=\"+Inf\"}", 0) == 0) {
      inf_value = line.substr(line.rfind(' ') + 1);
    }
    if (line.rfind("phase_draw_seconds_count", 0) == 0) {
      count_value = line.substr(line.rfind(' ') + 1);
    }
  }
  EXPECT_EQ(inf_value, count_value);
}

TEST(Render, HistogramBucketLabelsSpliceIntoGlobalLabels) {
  MetricsRegistry registry;
  registry.histogram("lat").observe(3e-6);
  PrometheusOptions options;
  options.labels = {{"job", "x"}};
  const std::string text = to_prometheus(registry.snapshot(), options);
  EXPECT_NE(text.find("lat_bucket{job=\"x\",le=\"4e-06\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("lat_bucket{job=\"x\",le=\"+Inf\"} 1\n"),
            std::string::npos);
}

TEST(Render, NonFiniteGaugesUsePrometheusTokens) {
  MetricsSnapshot snap;
  snap.gauges["pos"] = std::numeric_limits<double>::infinity();
  snap.gauges["neg"] = -std::numeric_limits<double>::infinity();
  const std::string text = to_prometheus(snap);
  EXPECT_NE(text.find("neg -Inf\n"), std::string::npos);
  EXPECT_NE(text.find("pos +Inf\n"), std::string::npos);
}

// ------------------------------------------------------------ HTTP exposer

/// Blocking loopback HTTP/1.0-style GET; returns the raw response.
std::string http_get(std::uint16_t port, const std::string& request_text) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    throw std::runtime_error("connect() failed");
  }
  ::send(fd, request_text.data(), request_text.size(), 0);
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string get_path(std::uint16_t port, const std::string& path,
                     const std::string& method = "GET") {
  return http_get(port, method + " " + path +
                            " HTTP/1.1\r\nHost: localhost\r\n"
                            "Connection: close\r\n\r\n");
}

TEST(HttpExposer, ServesMetricsAndHealthOnEphemeralPort) {
  MetricsRegistry registry;
  registry.counter("scrape.me").add(3);
  HttpExposer exposer(
      [&registry] { return to_prometheus(registry.snapshot()); });
  ASSERT_GT(exposer.port(), 0);

  const std::string metrics = get_path(exposer.port(), "/metrics");
  EXPECT_NE(metrics.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(metrics.find("scrape_me 3\n"), std::string::npos);

  const std::string health = get_path(exposer.port(), "/healthz");
  EXPECT_NE(health.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(health.find("ok\n"), std::string::npos);

  // Query strings are ignored on routing.
  const std::string with_query = get_path(exposer.port(), "/metrics?x=1");
  EXPECT_NE(with_query.find("HTTP/1.1 200 OK"), std::string::npos);

  EXPECT_EQ(exposer.requests_served(), 3u);
}

TEST(HttpExposer, RoutesErrorsWithoutDying) {
  MetricsRegistry registry;
  HttpExposer exposer(
      [&registry] { return to_prometheus(registry.snapshot()); });

  EXPECT_NE(get_path(exposer.port(), "/nope").find("HTTP/1.1 404"),
            std::string::npos);
  EXPECT_NE(get_path(exposer.port(), "/metrics", "POST").find("HTTP/1.1 405"),
            std::string::npos);
  EXPECT_NE(http_get(exposer.port(), "garbage\r\n\r\n")
                .find("HTTP/1.1 400"),
            std::string::npos);
  // Still alive after the errors.
  EXPECT_NE(get_path(exposer.port(), "/healthz").find("200 OK"),
            std::string::npos);
}

TEST(HttpExposer, RendererThrowIsA500AndTheListenerSurvives) {
  bool do_throw = true;
  HttpExposer exposer([&do_throw]() -> std::string {
    if (do_throw) throw std::runtime_error("boom");
    return "fine\n";
  });
  EXPECT_NE(get_path(exposer.port(), "/metrics").find("HTTP/1.1 500"),
            std::string::npos);
  do_throw = false;
  EXPECT_NE(get_path(exposer.port(), "/metrics").find("fine\n"),
            std::string::npos);
}

TEST(HttpExposer, HeadReturnsHeadersOnly) {
  HttpExposer exposer([] { return std::string("body-bytes\n"); });
  const std::string head = get_path(exposer.port(), "/metrics", "HEAD");
  EXPECT_NE(head.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(head.find("Content-Length: 11"), std::string::npos);
  EXPECT_EQ(head.find("body-bytes"), std::string::npos);
}

TEST(HttpExposer, StopIsIdempotentAndFreesThePort) {
  HttpExposerOptions options;
  HttpExposer first([] { return std::string(); }, options);
  const std::uint16_t port = first.port();
  first.stop();
  first.stop();  // second stop is a no-op
  EXPECT_THROW(get_path(port, "/healthz"), std::runtime_error);

  // The port is immediately reusable (SO_REUSEADDR + proper close).
  options.port = port;
  HttpExposer second([] { return std::string("back\n"); }, options);
  EXPECT_NE(get_path(port, "/metrics").find("back\n"), std::string::npos);
}

// Regression for the shared-socket-util refactor: restarting on the same
// port must also work after the first exposer actually SERVED requests —
// served connections leave sockets in TIME_WAIT on that port, which is
// exactly the case SO_REUSEADDR exists for (a never-used listener rebinds
// even without it).
TEST(HttpExposer, RestartOnSamePortAfterServingScrapes) {
  HttpExposerOptions options;
  auto first = std::make_unique<HttpExposer>(
      [] { return std::string("gen-1\n"); }, options);
  const std::uint16_t port = first->port();
  for (int i = 0; i < 3; ++i) {
    EXPECT_NE(get_path(port, "/metrics").find("gen-1\n"), std::string::npos);
  }
  first.reset();  // stop + close while scrape sockets linger in TIME_WAIT

  options.port = port;
  std::unique_ptr<HttpExposer> second;
  ASSERT_NO_THROW(second = std::make_unique<HttpExposer>(
                      [] { return std::string("gen-2\n"); }, options));
  EXPECT_EQ(second->port(), port);
  EXPECT_NE(get_path(port, "/metrics").find("gen-2\n"), std::string::npos);
}

TEST(HttpExposer, NullRendererIsRejected) {
  EXPECT_THROW(HttpExposer(HttpExposer::Renderer()), std::invalid_argument);
}

// Every response — including /healthz and errors — must carry an
// explicit Content-Type, an exact Content-Length, and Connection: close,
// or a scraper that honors keep-alive by default hangs until timeout.
TEST(HttpExposer, EveryResponseCarriesExplicitFramingHeaders) {
  HttpExposer exposer([] { return std::string("m 1\n"); });
  const struct {
    const char* path;
    const char* content_type;
    std::size_t body_size;
  } expectations[] = {
      {"/metrics", "Content-Type: text/plain; version=0.0.4", 4},
      {"/healthz", "Content-Type: text/plain", 3},  // "ok\n"
      {"/nope", "Content-Type: text/plain", 0},     // 404, any body
  };
  for (const auto& e : expectations) {
    const std::string response = get_path(exposer.port(), e.path);
    EXPECT_NE(response.find(e.content_type), std::string::npos) << e.path;
    EXPECT_NE(response.find("Content-Length: "), std::string::npos) << e.path;
    EXPECT_NE(response.find("Connection: close"), std::string::npos) << e.path;
    if (e.body_size > 0) {
      EXPECT_NE(response.find("Content-Length: " +
                              std::to_string(e.body_size)),
                std::string::npos)
          << e.path;
    }
  }
}

// ------------------------------------------------------------ custom routes

TEST(HttpExposer, AddRouteServesWithItsContentType) {
  HttpExposer exposer([] { return std::string(); });
  exposer.add_route("/debug/thing", [] { return std::string("{\"x\":1}"); });
  const std::string response = get_path(exposer.port(), "/debug/thing");
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(response.find("Content-Type: application/json"),
            std::string::npos);
  EXPECT_NE(response.find("Content-Length: 7"), std::string::npos);
  EXPECT_NE(response.find("Connection: close"), std::string::npos);
  EXPECT_NE(response.find("{\"x\":1}"), std::string::npos);

  // Re-registration replaces, and a custom content type is honored.
  exposer.add_route("/debug/thing", [] { return std::string("plain"); },
                    "text/plain");
  const std::string replaced = get_path(exposer.port(), "/debug/thing");
  EXPECT_NE(replaced.find("Content-Type: text/plain"), std::string::npos);
  EXPECT_NE(replaced.find("plain"), std::string::npos);
}

TEST(HttpExposer, AddRouteRejectsBadArguments) {
  HttpExposer exposer([] { return std::string(); });
  EXPECT_THROW(exposer.add_route("/x", HttpExposer::Renderer()),
               std::invalid_argument);
  EXPECT_THROW(exposer.add_route("no-slash", [] { return std::string(); }),
               std::invalid_argument);
  EXPECT_THROW(exposer.add_route("", [] { return std::string(); }),
               std::invalid_argument);
  EXPECT_THROW(exposer.add_route("/metrics", [] { return std::string(); }),
               std::invalid_argument);
  EXPECT_THROW(exposer.add_route("/healthz", [] { return std::string(); }),
               std::invalid_argument);
}

TEST(HttpExposer, RouteRendererThrowIsA500AndTheListenerSurvives) {
  HttpExposer exposer([] { return std::string(); });
  exposer.add_route("/boom", []() -> std::string {
    throw std::runtime_error("route boom");
  });
  EXPECT_NE(get_path(exposer.port(), "/boom").find("HTTP/1.1 500"),
            std::string::npos);
  EXPECT_NE(get_path(exposer.port(), "/healthz").find("200 OK"),
            std::string::npos);
}

TEST(HttpExposer, DebugRequestsRouteServesTheFlightRecorder) {
  FlightRecorder recorder;
  SpanTimeline tl;
  tl.start(7, SpanClock::time_point{});
  tl.stamp_seconds(SpanStage::kSolve, 0.0, 0.003, "match");
  tl.outcome = "net.served";
  tl.total_seconds = 0.004;
  recorder.record(std::move(tl));

  HttpExposer exposer([] { return std::string(); });
  exposer.add_route("/debug/requests",
                    [&recorder] { return render_debug_requests(recorder); });
  const std::string response = get_path(exposer.port(), "/debug/requests");
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(response.find("Content-Type: application/json"),
            std::string::npos);
  EXPECT_NE(response.find("\"recorded\":1"), std::string::npos);
  EXPECT_NE(response.find("\"request\":7"), std::string::npos);
  EXPECT_NE(response.find("\"stage\":\"solve\""), std::string::npos);
}

TEST(HttpExposer, PortInUseThrowsInsteadOfServingNothing) {
  HttpExposer first([] { return std::string(); });
  HttpExposerOptions clash;
  clash.port = first.port();
  EXPECT_THROW(HttpExposer([] { return std::string(); }, clash),
               std::runtime_error);
}

}  // namespace
}  // namespace match::obs
