// Tests of the trace-analysis pipeline behind `match_inspect`: the
// lenient JSONL reader (skip-and-count, never crash), per-run
// convergence reports (iterations-to-stability, stalls, regression
// detection, phase breakdown), trace diffing, and the CLI's exit-code
// contract (0 ok / 1 regression / 2 usage or IO error).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/bench_report.hpp"
#include "obs/events.hpp"
#include "obs/trace_analysis.hpp"

namespace match::obs {
namespace {

// A plausible run: γ decays geometrically then freezes, best-so-far
// improves monotonically to `final_best`.
std::vector<Event> make_run(std::uint64_t run_id, double final_best,
                            std::size_t iterations = 12) {
  std::vector<Event> events;
  events.push_back(Event::run_start(run_id, "match"));
  double best = final_best + static_cast<double>(iterations);
  for (std::size_t k = 0; k < iterations; ++k) {
    const double gamma =
        k + 6 < iterations ? best : final_best;  // freezes near the end
    best = std::max(final_best, best - 1.0);
    events.push_back(Event::iteration_event(run_id, "match", k, gamma,
                                            best, best, 0.1, 0.5, 2.0, 8));
    events.push_back(Event::phase_event(run_id, "match", k, "draw", 3e-4));
    events.push_back(Event::phase_event(run_id, "match", k, "cost", 1e-4));
    events.push_back(Event::phase_event(run_id, "match", k, "sort", 5e-5));
    events.push_back(Event::phase_event(run_id, "match", k, "update", 5e-5));
  }
  events.push_back(
      Event::run_end(run_id, "match", iterations, final_best, 0.25));
  return events;
}

std::string write_trace(const std::string& name,
                        const std::vector<Event>& events,
                        const std::string& tail = "") {
  const std::string path = ::testing::TempDir() + name;
  std::ofstream os(path, std::ios::trunc);
  for (const Event& e : events) os << to_jsonl(e) << "\n";
  os << tail;
  return path;
}

// ---------------------------------------------------------- lenient reader

TEST(LenientReader, SkipsAndCountsGarbageWithoutThrowing) {
  std::stringstream is;
  is << to_jsonl(Event::run_start(1, "match")) << "\n"
     << "not json at all\n"
     << "{\"kind\":\"nope\"}\n"
     << "{\"kind\":\"run_end\",\"run\":1,\"best\"\n"  // torn mid-write
     << "\x01\x02\xff binary junk\n"
     << "\n"  // blank: not counted at all
     << to_jsonl(Event::run_end(1, "match", 3, 9.5, 0.1)) << "\n";
  const LenientTrace trace = read_jsonl_lenient(is);
  EXPECT_EQ(trace.events.size(), 2u);
  EXPECT_EQ(trace.total_lines, 6u);
  EXPECT_EQ(trace.skipped_lines, 4u);
}

TEST(LenientReader, ToleratesCrlfLineEndings) {
  std::stringstream is;
  is << to_jsonl(Event::run_start(7, "ce")) << "\r\n";
  const LenientTrace trace = read_jsonl_lenient(is);
  ASSERT_EQ(trace.events.size(), 1u);
  EXPECT_EQ(trace.events[0].run_id, 7u);
  EXPECT_EQ(trace.skipped_lines, 0u);
}

// ----------------------------------------------------------------- analyze

TEST(Analyze, FoldsEventsIntoPerRunReports) {
  std::vector<Event> events = make_run(3, 40.0, 10);
  const std::vector<Event> second = make_run(9, 44.0, 8);
  events.insert(events.end(), second.begin(), second.end());
  events.push_back(Event::service_event(3, "", "cache_hit", 1e-5));
  events.push_back(Event::fallback_draw(9, "match"));

  const TraceReport report = analyze(events);
  ASSERT_EQ(report.runs.size(), 2u);

  const RunReport* a = report.find(3);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->solver, "match");
  EXPECT_EQ(a->iterations, 10u);
  EXPECT_TRUE(a->has_run_end);
  EXPECT_DOUBLE_EQ(a->final_best, 40.0);
  EXPECT_DOUBLE_EQ(a->run_seconds, 0.25);
  EXPECT_EQ(a->service_events, 1u);
  EXPECT_NEAR(a->phase_seconds.at("draw"), 10 * 3e-4, 1e-12);
  EXPECT_NEAR(a->phase_total_seconds(), 10 * 5e-4, 1e-12);

  const RunReport* b = report.find(9);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->fallback_draws, 1u);

  EXPECT_EQ(report.total_iterations(), 18u);
  EXPECT_DOUBLE_EQ(report.mean_final_best(), 42.0);
  EXPECT_DOUBLE_EQ(report.best_final_best(), 40.0);
  EXPECT_EQ(report.find(555), nullptr);
}

TEST(Analyze, TruncatedRunFallsBackToLastBestSoFar) {
  // A server killed mid-run: iteration events but no run_end.
  std::vector<Event> events = make_run(1, 12.0, 6);
  events.pop_back();  // drop the run_end
  const TraceReport report = analyze(events);
  ASSERT_EQ(report.runs.size(), 1u);
  EXPECT_FALSE(report.runs[0].has_run_end);
  EXPECT_DOUBLE_EQ(report.runs[0].final_best, 12.0);
}

TEST(Analyze, RunWithNoCostSignalHasNaNFinalBest) {
  const std::vector<Event> events = {Event::service_event(5, "x", "enqueue")};
  const TraceReport report = analyze(events);
  ASSERT_EQ(report.runs.size(), 1u);
  EXPECT_TRUE(std::isnan(report.runs[0].final_best));
  EXPECT_TRUE(std::isnan(report.mean_final_best()));
}

TEST(RunReport, IterationsToStabilityReadsTheGammaFreeze) {
  RunReport run;
  // Moves for 4 steps, then frozen: with window=3 the freeze is
  // certified at the 3rd consecutive quiet step (iteration 8, 1-based).
  run.gamma = {9.0, 8.0, 7.0, 6.0, 5.0, 5.0, 5.0, 5.0, 5.0};
  EXPECT_EQ(run.iterations_to_stability(1e-9, 3), 8u);
  // Never freezes → the full length.
  RunReport moving;
  moving.gamma = {9.0, 8.0, 7.0, 6.0, 5.0, 4.0};
  EXPECT_EQ(moving.iterations_to_stability(1e-9, 3), 6u);
  // Shorter than the window → trivially the full length.
  RunReport tiny;
  tiny.gamma = {1.0, 1.0};
  EXPECT_EQ(tiny.iterations_to_stability(1e-9, 5), 2u);
}

TEST(RunReport, StallAndRegressionDetection) {
  RunReport run;
  run.best = {10.0, 9.0, 9.0, 9.0, 8.0, 8.0};
  EXPECT_EQ(run.longest_stall(), 2u);
  EXPECT_FALSE(run.best_regressed());

  RunReport corrupt;
  corrupt.best = {10.0, 9.0, 11.0};  // best-so-far may never increase
  EXPECT_TRUE(corrupt.best_regressed());
}

// ---------------------------------------------------------------- overload

// A trace like a loaded server writes: terminal net.* decisions (one per
// request) interleaved with service lifecycle actions.
std::vector<Event> make_overload_events() {
  std::vector<Event> events;
  for (int i = 0; i < 6; ++i) {
    events.push_back(
        Event::service_event(i + 1, "match", "net.served", 0.001 * (i + 1)));
  }
  events.push_back(
      Event::service_event(7, "match", "net.served_deadline_missed", 0.05));
  events.push_back(Event::service_event(8, "match", "net.shed"));
  events.push_back(Event::service_event(9, "match", "net.shed"));
  events.push_back(Event::service_event(10, "match", "net.rejected_deadline"));
  events.push_back(Event::service_event(11, "", "net.bad_request"));
  events.push_back(Event::service_event(1, "match", "enqueue"));
  events.push_back(Event::service_event(2, "match", "cache_hit"));
  return events;
}

TEST(Overload, FoldsTerminalDecisionsAndLatencies) {
  const OverloadReport report = summarize_overload(make_overload_events());
  EXPECT_EQ(report.offered, 11u);
  EXPECT_EQ(report.served, 7u);
  EXPECT_EQ(report.served_deadline_missed, 1u);
  EXPECT_EQ(report.shed, 2u);
  EXPECT_EQ(report.rejected_deadline, 1u);
  EXPECT_EQ(report.errors, 1u);
  EXPECT_NEAR(report.shed_pct(), 100.0 * 2.0 / 11.0, 1e-9);
  ASSERT_EQ(report.served_seconds.size(), 7u);
  EXPECT_NEAR(report.mean_served_seconds(), (0.021 + 0.05) / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(report.served_seconds_quantile(1.0), 0.05);
  EXPECT_DOUBLE_EQ(report.served_seconds_quantile(0.5), 0.004);
  // Lifecycle actions are counted by name but are not per-request
  // terminal decisions, so they never inflate `offered`.
  EXPECT_EQ(report.action_counts.at("enqueue"), 1u);
  EXPECT_EQ(report.action_counts.at("cache_hit"), 1u);
  EXPECT_EQ(report.action_counts.at("net.served"), 6u);
  // Non-service events (iterations, phases, run brackets) are invisible
  // to the overload summary.
  std::vector<Event> mixed = make_run(1, 10.0, 4);
  EXPECT_EQ(summarize_overload(mixed).offered, 0u);
  EXPECT_TRUE(summarize_overload(mixed).action_counts.empty());
}

TEST(Overload, EmptyTraceIsZerosWithNaNLatency) {
  const OverloadReport report = summarize_overload({});
  EXPECT_EQ(report.offered, 0u);
  EXPECT_DOUBLE_EQ(report.shed_pct(), 0.0);
  EXPECT_TRUE(std::isnan(report.mean_served_seconds()));
  EXPECT_TRUE(std::isnan(report.served_seconds_quantile(0.99)));
}

// -------------------------------------------------------------------- diff

TEST(Diff, FlagsMakespanRegressionBeyondTolerance) {
  const TraceReport base = analyze(make_run(1, 100.0));
  const TraceReport worse = analyze(make_run(1, 103.0));  // +3%
  DiffOptions options;
  options.makespan_tolerance_pct = 0.5;
  const TraceDiff diff = diff_traces(base, worse, options);
  EXPECT_TRUE(diff.makespan_regressed);
  EXPECT_NEAR(diff.makespan_delta_pct, 3.0, 1e-9);
  EXPECT_FALSE(diff.iterations_regressed);
  EXPECT_TRUE(diff.regressed());

  // The same delta under a looser tolerance passes.
  options.makespan_tolerance_pct = 5.0;
  EXPECT_FALSE(diff_traces(base, worse, options).regressed());
  // An improvement is never a regression.
  EXPECT_FALSE(diff_traces(worse, base, options).regressed());
}

TEST(Diff, FlagsIterationCountRegression) {
  const TraceReport base = analyze(make_run(1, 100.0, 10));
  const TraceReport slower = analyze(make_run(1, 100.0, 16));  // +60%
  const TraceDiff diff = diff_traces(base, slower);  // default tol 20%
  EXPECT_TRUE(diff.iterations_regressed);
  EXPECT_FALSE(diff.makespan_regressed);
  EXPECT_EQ(diff.iterations_a, 10u);
  EXPECT_EQ(diff.iterations_b, 16u);
}

TEST(Diff, CandidateThatLostAllRunsIsARegression) {
  const TraceReport base = analyze(make_run(1, 100.0));
  const TraceReport empty = analyze({Event::run_start(1, "match")});
  EXPECT_TRUE(diff_traces(base, empty).makespan_regressed);
  // The mirror image — baseline had nothing — is not the candidate's fault.
  EXPECT_FALSE(diff_traces(empty, base).makespan_regressed);
}

// --------------------------------------------------------------------- CLI

int run_cli(std::vector<std::string> args, std::string* out_text = nullptr) {
  std::ostringstream out, err;
  const int rc = run_inspect_cli(args, out, err);
  if (out_text != nullptr) *out_text = out.str() + err.str();
  return rc;
}

TEST(InspectCli, DiffIdenticalTracesExitsZero) {
  const std::string path = write_trace("identical.jsonl", make_run(1, 50.0));
  std::string text;
  EXPECT_EQ(run_cli({"diff", path, path}, &text), 0);
  EXPECT_NE(text.find("OK"), std::string::npos);
  EXPECT_EQ(text.find("REGRESSED"), std::string::npos);
}

TEST(InspectCli, DiffInjectedMakespanRegressionExitsNonzero) {
  const std::string base = write_trace("cli_base.jsonl", make_run(1, 50.0));
  const std::string worse = write_trace("cli_worse.jsonl", make_run(1, 55.0));
  std::string text;
  EXPECT_EQ(run_cli({"diff", base, worse}, &text), 1);
  EXPECT_NE(text.find("REGRESSION"), std::string::npos);
  // Loosening the tolerance past the injected 10% delta clears it.
  EXPECT_EQ(run_cli({"diff", base, worse, "--makespan-tol", "15"}), 0);
}

TEST(InspectCli, SummaryReportsCleanTrace) {
  const std::string path = write_trace("summary.jsonl", make_run(4, 75.0));
  std::string text;
  EXPECT_EQ(run_cli({"summary", path}, &text), 0);
  EXPECT_NE(text.find("match"), std::string::npos);
  EXPECT_NE(text.find("75"), std::string::npos);
  EXPECT_EQ(text.find("REGRESSION"), std::string::npos);
}

TEST(InspectCli, SummarySurvivesGarbageAndCountsSkips) {
  const std::string path = write_trace(
      "garbage.jsonl", make_run(2, 60.0),
      "utter garbage\n{\"kind\":\"iteration\",\"run\":2,\"gam\n\x01\xfe\n");
  std::string text;
  EXPECT_EQ(run_cli({"summary", path}, &text), 0);
  EXPECT_NE(text.find("skipped 3 malformed line(s)"), std::string::npos);
}

TEST(InspectCli, SummaryFlagsWithinTraceRegression) {
  std::vector<Event> events = make_run(1, 20.0, 6);
  // Corrupt one iteration so best-so-far jumps upward mid-run.
  events.push_back(
      Event::iteration_event(1, "match", 7, 20.0, 99.0, 99.0, 0, 0, 0, 4));
  const std::string path = write_trace("regressed.jsonl", events);
  std::string text;
  EXPECT_EQ(run_cli({"summary", path}, &text), 1);
  EXPECT_NE(text.find("REGRESSION"), std::string::npos);
}

TEST(InspectCli, UsageAndIoErrorsExitTwo) {
  EXPECT_EQ(run_cli({}), 2);
  EXPECT_EQ(run_cli({"frobnicate"}), 2);
  EXPECT_EQ(run_cli({"summary"}), 2);
  EXPECT_EQ(run_cli({"summary", "/nonexistent/trace.jsonl"}), 2);
  EXPECT_EQ(run_cli({"diff", "only-one.jsonl"}), 2);
  EXPECT_EQ(run_cli({"summary", "x.jsonl", "--stability-eps", "not-a-num"}),
            2);
  EXPECT_EQ(run_cli({"summary", "x.jsonl", "--unknown-flag"}), 2);
}

TEST(InspectCli, OverloadPrintsTheActionTable) {
  const std::string path =
      write_trace("overload.jsonl", make_overload_events());
  std::string text;
  EXPECT_EQ(run_cli({"overload", path}, &text), 0);
  EXPECT_NE(text.find("net.served"), std::string::npos);
  EXPECT_NE(text.find("net.shed"), std::string::npos);
  EXPECT_NE(text.find("11 request(s) offered"), std::string::npos);
  EXPECT_NE(text.find("served latency"), std::string::npos);
}

TEST(InspectCli, OverloadShedGateFlipsTheExitCode) {
  const std::string path =
      write_trace("overload_gate.jsonl", make_overload_events());
  // 2 of 11 shed ≈ 18.2%: a gate at 25% passes, a gate at 10% trips.
  EXPECT_EQ(run_cli({"overload", path, "--max-shed-pct", "25"}), 0);
  std::string text;
  EXPECT_EQ(run_cli({"overload", path, "--max-shed-pct", "10"}, &text), 1);
  EXPECT_NE(text.find("OVERLOAD REGRESSION"), std::string::npos);
}

TEST(InspectCli, OverloadJsonEmitsAParseableBenchReport) {
  const std::string path =
      write_trace("overload_json.jsonl", make_overload_events());
  std::ostringstream out, err;
  EXPECT_EQ(run_inspect_cli({"overload", path, "--json"}, out, err), 0);
  // --json owns stdout: the human table moves out of the way entirely.
  EXPECT_EQ(out.str().find("request(s) offered"), std::string::npos);
  const bench::BenchReport report = bench::BenchReport::from_json(out.str());
  EXPECT_EQ(report.name, "match_inspect_overload");
  EXPECT_EQ(report.counters.at("net.served"), 6u);
  ASSERT_EQ(report.cases.size(), 1u);
  EXPECT_DOUBLE_EQ(report.cases[0].metrics.at("offered"), 11.0);
  EXPECT_DOUBLE_EQ(report.cases[0].metrics.at("shed"), 2.0);
  EXPECT_NEAR(report.cases[0].metrics.at("shed_pct"), 100.0 * 2 / 11, 1e-9);
  EXPECT_DOUBLE_EQ(report.cases[0].metrics.at("gate_violated"), 0.0);

  // A tripped gate still emits the report, with the violation flagged in
  // the JSON and the exit code.
  std::ostringstream out2, err2;
  EXPECT_EQ(run_inspect_cli({"overload", path, "--json", "--max-shed-pct",
                             "10"},
                            out2, err2),
            1);
  const bench::BenchReport tripped = bench::BenchReport::from_json(out2.str());
  EXPECT_DOUBLE_EQ(tripped.cases[0].metrics.at("gate_violated"), 1.0);
}

TEST(InspectCli, OverloadUsageAndIoErrorsExitTwo) {
  EXPECT_EQ(run_cli({"overload"}), 2);
  EXPECT_EQ(run_cli({"overload", "/nonexistent/trace.jsonl"}), 2);
  EXPECT_EQ(run_cli({"overload", "x.jsonl", "--max-shed-pct", "nope"}), 2);
  EXPECT_EQ(run_cli({"overload", "x.jsonl", "--max-shed-pct", "-1"}), 2);
  EXPECT_EQ(run_cli({"overload", "x.jsonl", "--unknown"}), 2);
}

TEST(InspectCli, StabilityFlagsReachTheAnalyzer) {
  const std::string path = write_trace("stability.jsonl", make_run(1, 30.0));
  // Tight window vs absurdly wide window change the reported column but
  // both parse and exit 0.
  EXPECT_EQ(run_cli({"summary", path, "--stability-window", "2",
                     "--stability-eps", "0.5"}),
            0);
}

}  // namespace
}  // namespace match::obs
