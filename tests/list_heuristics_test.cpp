#include "baselines/list_heuristics.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "graph/generators.hpp"
#include "workload/paper_suite.hpp"

namespace match::baselines {
namespace {

struct Fixture {
  workload::Instance inst;
  sim::Platform platform;
  sim::CostEvaluator eval;

  explicit Fixture(std::size_t n, std::uint64_t seed)
      : inst(make(n, seed)),
        platform(inst.make_platform()),
        eval(inst.tig, platform) {}

  static workload::Instance make(std::size_t n, std::uint64_t seed) {
    rng::Rng rng(seed);
    workload::PaperParams params;
    params.n = n;
    return workload::make_paper_instance(params, rng);
  }
};

constexpr ListRule kAllRules[] = {ListRule::kMinMin, ListRule::kMaxMin,
                                  ListRule::kSufferage};

TEST(ListHeuristics, NamesAreStable) {
  EXPECT_STREQ(to_string(ListRule::kMinMin), "min-min");
  EXPECT_STREQ(to_string(ListRule::kMaxMin), "max-min");
  EXPECT_STREQ(to_string(ListRule::kSufferage), "sufferage");
}

TEST(ListHeuristics, ProduceValidPermutationsOnSquareInstances) {
  Fixture f(12, 1);
  for (const ListRule rule : kAllRules) {
    const SearchResult r = list_schedule(f.eval, rule);
    EXPECT_TRUE(r.best_mapping.is_permutation()) << to_string(rule);
    EXPECT_DOUBLE_EQ(f.eval.makespan(r.best_mapping), r.best_cost);
    EXPECT_GT(r.evaluations, 0u);
  }
}

TEST(ListHeuristics, AreDeterministic) {
  Fixture f(10, 2);
  for (const ListRule rule : kAllRules) {
    const SearchResult a = list_schedule(f.eval, rule);
    const SearchResult b = list_schedule(f.eval, rule);
    EXPECT_EQ(a.best_mapping, b.best_mapping) << to_string(rule);
  }
}

TEST(ListHeuristics, BeatWorstCaseMappings) {
  Fixture f(15, 3);
  rng::Rng rng(4);
  double worst = 0.0;
  for (int i = 0; i < 300; ++i) {
    worst = std::max(
        worst, f.eval.makespan(sim::Mapping::random_permutation(15, rng)));
  }
  for (const ListRule rule : kAllRules) {
    EXPECT_LT(list_schedule(f.eval, rule).best_cost, worst)
        << to_string(rule);
  }
}

TEST(ListHeuristics, ManyToOneMode) {
  rng::Rng gen(5);
  const graph::Tig tig(
      graph::make_clustered(20, 4, 0.6, 0.1, {1, 10}, {50, 100}, gen));
  const sim::Platform plat(graph::ResourceGraph(
      graph::make_complete(6, {1, 5}, {10, 20}, gen)));
  const sim::CostEvaluator eval(tig, plat);

  for (const ListRule rule : kAllRules) {
    const SearchResult r = list_schedule(eval, rule);
    EXPECT_TRUE(r.best_mapping.is_valid(6)) << to_string(rule);
    EXPECT_EQ(r.best_mapping.num_tasks(), 20u);
  }
}

TEST(ListHeuristics, ExclusiveModeRejectsTooManyTasks) {
  rng::Rng gen(6);
  const graph::Tig tig(graph::make_gnp(10, 0.4, {1, 10}, {50, 100}, gen));
  const sim::Platform plat(graph::ResourceGraph(
      graph::make_complete(4, {1, 5}, {10, 20}, gen)));
  const sim::CostEvaluator eval(tig, plat);
  EXPECT_THROW(list_schedule(eval, ListRule::kMinMin, true),
               std::invalid_argument);
}

TEST(ListHeuristics, TextbookBehaviorOnTrivialInstance) {
  // 2 isolated tasks, 2 resources: W = {10, 1}, w = {1, 10}.  Optimal
  // pairing puts the heavy task on the fast resource (makespan 10).
  // This is the textbook instance separating the rules: min-min lets the
  // *easy* task grab the fast resource first (easy-first bias -> 100),
  // while max-min and sufferage place the hard task first (-> 10).
  graph::Graph::Builder tb;
  tb.add_node(10.0);
  tb.add_node(1.0);
  const graph::Tig tig(tb.build());
  const std::vector<graph::Edge> redges = {{0, 1, 1.0}};
  const sim::Platform plat(graph::ResourceGraph(
      graph::Graph::from_edges(2, {1.0, 10.0}, redges)));
  const sim::CostEvaluator eval(tig, plat);

  EXPECT_DOUBLE_EQ(list_schedule(eval, ListRule::kMinMin).best_cost, 100.0);
  EXPECT_DOUBLE_EQ(list_schedule(eval, ListRule::kMaxMin).best_cost, 10.0);
  EXPECT_DOUBLE_EQ(list_schedule(eval, ListRule::kSufferage).best_cost, 10.0);
}

TEST(ListHeuristics, SufferagePrefersConstrainedTasks) {
  // Task 0 only runs cheaply on resource 0 (elsewhere 100x); task 1 runs
  // anywhere.  Sufferage must give task 0 its resource.
  graph::Graph::Builder tb;
  tb.add_node(10.0);
  tb.add_node(10.0);
  const graph::Tig tig(tb.build());
  // Resources: r0 fast (w=1), r1 slow (w=100) — both tasks prefer r0,
  // but they suffer equally; extend to 3 tasks for a real spread.
  graph::Graph::Builder tb3;
  tb3.add_node(10.0);  // task 0
  tb3.add_node(1.0);   // task 1 (light: suffers little)
  tb3.add_node(1.0);   // task 2
  const graph::Tig tig3(tb3.build());
  const std::vector<graph::Edge> redges = {
      {0, 1, 1.0}, {0, 2, 1.0}, {1, 2, 1.0}};
  const sim::Platform plat(graph::ResourceGraph(
      graph::Graph::from_edges(3, {1.0, 50.0, 50.0}, redges)));
  const sim::CostEvaluator eval(tig3, plat);

  const SearchResult r = list_schedule(eval, ListRule::kSufferage);
  // The heavy task must own the fast resource.
  EXPECT_EQ(r.best_mapping.resource_of(0), 0u);
}

TEST(ListHeuristics, ComparableToGreedyConstructive) {
  Fixture f(20, 7);
  const double greedy = greedy_constructive(f.eval).best_cost;
  for (const ListRule rule : kAllRules) {
    const double cost = list_schedule(f.eval, rule).best_cost;
    // Same family of constructive heuristics: within a 2x band.
    EXPECT_LT(cost, 2.0 * greedy) << to_string(rule);
  }
}

}  // namespace
}  // namespace match::baselines
