#include "baselines/ga.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "workload/paper_suite.hpp"

namespace match::baselines {
namespace {

bool is_permutation(std::span<const graph::NodeId> v) {
  return sim::Mapping(std::vector<graph::NodeId>(v.begin(), v.end()))
      .is_permutation();
}

struct Fixture {
  workload::Instance inst;
  sim::Platform platform;
  sim::CostEvaluator eval;

  explicit Fixture(std::size_t n, std::uint64_t seed)
      : inst(make(n, seed)),
        platform(inst.make_platform()),
        eval(inst.tig, platform) {}

  static workload::Instance make(std::size_t n, std::uint64_t seed) {
    rng::Rng rng(seed);
    workload::PaperParams params;
    params.n = n;
    return workload::make_paper_instance(params, rng);
  }
};

double brute_force_optimum(const sim::CostEvaluator& eval) {
  const std::size_t n = eval.num_tasks();
  std::vector<graph::NodeId> perm(n);
  std::iota(perm.begin(), perm.end(), graph::NodeId{0});
  double best = std::numeric_limits<double>::infinity();
  do {
    best = std::min(best, eval.makespan(perm));
  } while (std::next_permutation(perm.begin(), perm.end()));
  return best;
}

TEST(GaParams, ValidationCatchesBadValues) {
  GaParams p;
  p.population = 1;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = {};
  p.generations = 0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = {};
  p.crossover_prob = 1.5;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = {};
  p.mutation_prob = -0.1;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = {};
  EXPECT_NO_THROW(p.validate());
}

TEST(GaParams, PaperConfigFactories) {
  EXPECT_EQ(GaParams::paper_default().population, 500u);
  EXPECT_EQ(GaParams::paper_default().generations, 1000u);
  EXPECT_EQ(GaParams::config_100_10000().population, 100u);
  EXPECT_EQ(GaParams::config_100_10000().generations, 10000u);
  EXPECT_EQ(GaParams::config_1000_1000().population, 1000u);
  EXPECT_EQ(GaParams::config_1000_1000().generations, 1000u);
  EXPECT_DOUBLE_EQ(GaParams::paper_default().crossover_prob, 0.85);
  EXPECT_DOUBLE_EQ(GaParams::paper_default().mutation_prob, 0.07);
}

TEST(GaCrossover, PreservesFirstHalfOfParent1) {
  const std::vector<graph::NodeId> p1 = {3, 1, 4, 0, 2, 5};
  const std::vector<graph::NodeId> p2 = {5, 4, 3, 2, 1, 0};
  const auto child = GaOptimizer::crossover(p1, p2);
  ASSERT_EQ(child.size(), 6u);
  EXPECT_EQ(child[0], 3u);
  EXPECT_EQ(child[1], 1u);
  EXPECT_EQ(child[2], 4u);
  EXPECT_TRUE(is_permutation(child));
}

TEST(GaCrossover, TakesSecondHalfOfParent2WhenNoConflict) {
  const std::vector<graph::NodeId> p1 = {0, 1, 2, 3, 4, 5};
  const std::vector<graph::NodeId> p2 = {1, 0, 2, 3, 5, 4};
  const auto child = GaOptimizer::crossover(p1, p2);
  // First half from p1: 0 1 2.  p2's second half (3 5 4) has no dup.
  const std::vector<graph::NodeId> expected = {0, 1, 2, 3, 5, 4};
  EXPECT_EQ(child, expected);
}

TEST(GaCrossover, RepairsDuplicatesFromParent2FirstHalfInOrder) {
  const std::vector<graph::NodeId> p1 = {0, 1, 2, 3, 4, 5};
  const std::vector<graph::NodeId> p2 = {3, 4, 5, 0, 1, 2};
  // First half from p1: 0 1 2.  p2 second half = 0 1 2 -> all duplicates;
  // repairs in order from p2 first half: 3, 4, 5.
  const auto child = GaOptimizer::crossover(p1, p2);
  const std::vector<graph::NodeId> expected = {0, 1, 2, 3, 4, 5};
  EXPECT_EQ(child, expected);
}

TEST(GaCrossover, MixedRepair) {
  const std::vector<graph::NodeId> p1 = {2, 0, 4, 1, 3, 5};
  const std::vector<graph::NodeId> p2 = {0, 3, 5, 4, 2, 1};
  // First half from p1: 2 0 4.  p2 second half: 4(dup->3), 2(dup->5), 1(ok).
  const auto child = GaOptimizer::crossover(p1, p2);
  const std::vector<graph::NodeId> expected = {2, 0, 4, 3, 5, 1};
  EXPECT_EQ(child, expected);
}

TEST(GaCrossover, AlwaysProducesPermutations) {
  rng::Rng rng(1);
  for (int trial = 0; trial < 500; ++trial) {
    const auto p1 = sim::Mapping::random_permutation(9, rng);
    const auto p2 = sim::Mapping::random_permutation(9, rng);
    const auto child = GaOptimizer::crossover(p1.assignment(), p2.assignment());
    ASSERT_TRUE(is_permutation(child)) << "trial " << trial;
  }
}

TEST(GaCrossover, OddLengthChromosomes) {
  rng::Rng rng(2);
  for (int trial = 0; trial < 100; ++trial) {
    const auto p1 = sim::Mapping::random_permutation(7, rng);
    const auto p2 = sim::Mapping::random_permutation(7, rng);
    const auto child = GaOptimizer::crossover(p1.assignment(), p2.assignment());
    ASSERT_TRUE(is_permutation(child));
  }
}

TEST(GaOptimizer, FindsOptimumOnTinyInstance) {
  Fixture f(6, 3);
  const double optimum = brute_force_optimum(f.eval);
  GaParams params;
  params.population = 100;
  params.generations = 150;
  GaOptimizer opt(f.eval, params);
  rng::Rng rng(4);
  const GaResult r = opt.run(match::SolverContext(rng));
  EXPECT_TRUE(r.best_mapping.is_permutation());
  EXPECT_NEAR(r.best_cost, optimum, 1e-9);
}

TEST(GaOptimizer, BestSoFarIsMonotone) {
  Fixture f(12, 5);
  GaParams params;
  params.population = 60;
  params.generations = 80;
  GaOptimizer opt(f.eval, params);
  rng::Rng rng(6);
  const GaResult r = opt.run(match::SolverContext(rng));
  ASSERT_EQ(r.history.size(), 80u);
  for (std::size_t i = 1; i < r.history.size(); ++i) {
    EXPECT_LE(r.history[i].best_so_far, r.history[i - 1].best_so_far);
  }
  EXPECT_DOUBLE_EQ(r.history.back().best_so_far, r.best_cost);
}

TEST(GaOptimizer, ElitismNeverLosesTheBest) {
  Fixture f(10, 7);
  GaParams params;
  params.population = 40;
  params.generations = 60;
  params.elitism = true;
  GaOptimizer opt(f.eval, params);
  rng::Rng rng(8);
  const GaResult r = opt.run(match::SolverContext(rng));
  // With elitism the generation best can never regress past the best so far.
  for (std::size_t i = 1; i < r.history.size(); ++i) {
    EXPECT_LE(r.history[i].gen_best,
              r.history[i - 1].best_so_far + 1e-9);
  }
}

TEST(GaOptimizer, RunsWithoutElitism) {
  Fixture f(8, 9);
  GaParams params;
  params.population = 30;
  params.generations = 30;
  params.elitism = false;
  GaOptimizer opt(f.eval, params);
  rng::Rng rng(10);
  const GaResult r = opt.run(match::SolverContext(rng));
  EXPECT_TRUE(r.best_mapping.is_permutation());
  EXPECT_DOUBLE_EQ(f.eval.makespan(r.best_mapping), r.best_cost);
}

TEST(GaOptimizer, DeterministicAcrossParallelModes) {
  Fixture f(10, 11);
  GaParams serial;
  serial.population = 50;
  serial.generations = 40;
  serial.parallel = false;
  GaParams par = serial;
  par.parallel = true;

  rng::Rng r1(12), r2(12);
  const GaResult a = GaOptimizer(f.eval, serial).run(match::SolverContext(r1));
  const GaResult b = GaOptimizer(f.eval, par).run(match::SolverContext(r2));
  EXPECT_EQ(a.best_mapping, b.best_mapping);
  EXPECT_DOUBLE_EQ(a.best_cost, b.best_cost);
}

TEST(GaOptimizer, ZeroCrossoverAndMutationStillValid) {
  // Degenerate GA: pure selection.  Must still return a valid mapping.
  Fixture f(8, 13);
  GaParams params;
  params.population = 20;
  params.generations = 10;
  params.crossover_prob = 0.0;
  params.mutation_prob = 0.0;
  GaOptimizer opt(f.eval, params);
  rng::Rng rng(14);
  const GaResult r = opt.run(match::SolverContext(rng));
  EXPECT_TRUE(r.best_mapping.is_permutation());
}

TEST(GaOptimizer, RejectsNonSquareInstance) {
  rng::Rng rng(15);
  graph::Tig tig(graph::make_gnp(5, 0.5, {1, 10}, {50, 100}, rng));
  sim::Platform plat(
      graph::ResourceGraph(graph::make_complete(7, {1, 5}, {10, 20}, rng)));
  sim::CostEvaluator eval(tig, plat);
  EXPECT_THROW(GaOptimizer{eval}, std::invalid_argument);
}

TEST(GaOptimizer, ImprovesOverRandomInitialPopulation) {
  Fixture f(20, 16);
  GaParams params;
  params.population = 80;
  params.generations = 120;
  GaOptimizer opt(f.eval, params);
  rng::Rng rng(17);
  const GaResult r = opt.run(match::SolverContext(rng));
  // The first generation's best is a sample of 80 random permutations;
  // 120 generations of selection must improve on it.
  EXPECT_LT(r.best_cost, r.history.front().gen_best);
}

}  // namespace
}  // namespace match::baselines
