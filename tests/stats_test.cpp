#include "stats/descriptive.hpp"
#include "stats/special_functions.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace match::stats {
namespace {

TEST(LogGamma, KnownValues) {
  // Γ(1) = Γ(2) = 1, Γ(5) = 24, Γ(0.5) = sqrt(pi).
  EXPECT_NEAR(log_gamma(1.0), 0.0, 1e-12);
  EXPECT_NEAR(log_gamma(2.0), 0.0, 1e-12);
  EXPECT_NEAR(log_gamma(5.0), std::log(24.0), 1e-10);
  EXPECT_NEAR(log_gamma(0.5), 0.5 * std::log(M_PI), 1e-10);
}

TEST(LogGamma, RecurrenceHolds) {
  // ln Γ(x+1) = ln Γ(x) + ln x.
  for (double x : {0.3, 1.7, 4.2, 11.9, 101.5}) {
    EXPECT_NEAR(log_gamma(x + 1.0), log_gamma(x) + std::log(x), 1e-9) << x;
  }
}

TEST(LogGamma, RejectsNonPositive) {
  EXPECT_THROW(log_gamma(0.0), std::domain_error);
  EXPECT_THROW(log_gamma(-1.5), std::domain_error);
}

TEST(IncompleteBeta, BoundaryValues) {
  EXPECT_DOUBLE_EQ(incomplete_beta(2.0, 3.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(incomplete_beta(2.0, 3.0, 1.0), 1.0);
}

TEST(IncompleteBeta, UniformCase) {
  // I_x(1, 1) = x.
  for (double x : {0.1, 0.25, 0.5, 0.75, 0.9}) {
    EXPECT_NEAR(incomplete_beta(1.0, 1.0, x), x, 1e-12);
  }
}

TEST(IncompleteBeta, SymmetryIdentity) {
  // I_x(a, b) = 1 - I_{1-x}(b, a).
  for (double x : {0.2, 0.5, 0.8}) {
    EXPECT_NEAR(incomplete_beta(2.5, 4.0, x),
                1.0 - incomplete_beta(4.0, 2.5, 1.0 - x), 1e-12);
  }
}

TEST(IncompleteBeta, KnownClosedForms) {
  // I_x(1, b) = 1 - (1-x)^b;  I_x(a, 1) = x^a.
  EXPECT_NEAR(incomplete_beta(1.0, 3.0, 0.4), 1.0 - std::pow(0.6, 3.0), 1e-12);
  EXPECT_NEAR(incomplete_beta(3.0, 1.0, 0.4), std::pow(0.4, 3.0), 1e-12);
}

TEST(IncompleteBeta, RejectsBadArguments) {
  EXPECT_THROW(incomplete_beta(0.0, 1.0, 0.5), std::domain_error);
  EXPECT_THROW(incomplete_beta(1.0, 1.0, 1.5), std::domain_error);
}

TEST(StudentT, CdfKnownValues) {
  // CDF(0) = 0.5 for any dof.
  EXPECT_DOUBLE_EQ(student_t_cdf(0.0, 5.0), 0.5);
  // With 1 dof (Cauchy): CDF(1) = 0.75.
  EXPECT_NEAR(student_t_cdf(1.0, 1.0), 0.75, 1e-10);
  // Large dof approaches the normal: CDF(1.96, 1e6) ~ 0.975.
  EXPECT_NEAR(student_t_cdf(1.96, 1e6), 0.975, 1e-3);
  // Symmetry.
  EXPECT_NEAR(student_t_cdf(-2.0, 7.0) + student_t_cdf(2.0, 7.0), 1.0, 1e-12);
}

TEST(StudentT, QuantileMatchesTables) {
  // Classic two-sided 95% critical values.
  EXPECT_NEAR(student_t_quantile_two_sided(0.95, 29.0), 2.045, 2e-3);
  EXPECT_NEAR(student_t_quantile_two_sided(0.95, 10.0), 2.228, 2e-3);
  EXPECT_NEAR(student_t_quantile_two_sided(0.99, 29.0), 2.756, 2e-3);
  EXPECT_NEAR(student_t_quantile_two_sided(0.95, 1e6), 1.960, 2e-3);
}

TEST(StudentT, QuantileInvertsCdf) {
  for (double dof : {3.0, 12.0, 29.0}) {
    const double t = student_t_quantile_two_sided(0.9, dof);
    EXPECT_NEAR(student_t_cdf(t, dof) - student_t_cdf(-t, dof), 0.9, 1e-9);
  }
}

TEST(FDistribution, CdfKnownValues) {
  // F(d1=1, d2=d): F CDF relates to t: P(F <= t^2) = P(|T| <= t).
  const double t = 2.0, dof = 8.0;
  EXPECT_NEAR(f_cdf(t * t, 1.0, dof),
              student_t_cdf(t, dof) - student_t_cdf(-t, dof), 1e-10);
  // 95th percentile of F(5, 10) is about 3.326 (standard tables).
  EXPECT_NEAR(f_cdf(3.326, 5.0, 10.0), 0.95, 2e-3);
}

TEST(FDistribution, SurvivalComplementsCdf) {
  for (double f : {0.5, 1.0, 2.5, 10.0}) {
    EXPECT_NEAR(f_cdf(f, 4.0, 20.0) + f_sf(f, 4.0, 20.0), 1.0, 1e-12);
  }
}

TEST(FDistribution, ExtremeValueHasTinyPValue) {
  // The paper's F = 1547 with (2, 87) dof: p must be < 0.0001.
  EXPECT_LT(f_sf(1547.0, 2.0, 87.0), 1e-4);
  EXPECT_GT(f_sf(1547.0, 2.0, 87.0), 0.0);
}

TEST(FDistribution, NonPositiveFIsZeroCdf) {
  EXPECT_DOUBLE_EQ(f_cdf(0.0, 3.0, 3.0), 0.0);
  EXPECT_DOUBLE_EQ(f_sf(-1.0, 3.0, 3.0), 1.0);
}

TEST(Descriptive, MeanAndVariance) {
  const std::vector<double> data = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(mean(data), 5.0);
  // Sum of squared deviations = 32; unbiased variance = 32/7.
  EXPECT_NEAR(variance(data), 32.0 / 7.0, 1e-12);
}

TEST(Descriptive, SingleElementVarianceIsZero) {
  const std::vector<double> data = {3.5};
  EXPECT_DOUBLE_EQ(variance(data), 0.0);
}

TEST(Descriptive, EmptySampleThrows) {
  const std::vector<double> empty;
  EXPECT_THROW(mean(empty), std::invalid_argument);
  EXPECT_THROW(summarize(empty), std::invalid_argument);
  EXPECT_THROW(quantile(empty, 0.5), std::invalid_argument);
}

TEST(Descriptive, QuantileInterpolates) {
  const std::vector<double> data = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(data, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(data, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(data, 0.5), 2.5);
  EXPECT_NEAR(quantile(data, 0.25), 1.75, 1e-12);  // type-7 interpolation
}

TEST(Descriptive, QuantileUnsortedInput) {
  const std::vector<double> data = {9.0, 1.0, 5.0};
  EXPECT_DOUBLE_EQ(median(data), 5.0);
}

TEST(Descriptive, QuantileRejectsBadQ) {
  const std::vector<double> data = {1.0, 2.0};
  EXPECT_THROW(quantile(data, -0.1), std::invalid_argument);
  EXPECT_THROW(quantile(data, 1.1), std::invalid_argument);
}

TEST(Descriptive, SummaryAggregatesEverything) {
  const std::vector<double> data = {4.0, 1.0, 3.0, 2.0};
  const Summary s = summarize(data);
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_DOUBLE_EQ(s.median, 2.5);
  EXPECT_NEAR(s.stddev, std::sqrt(s.variance), 1e-15);
}

TEST(Descriptive, ConfidenceIntervalMatchesHandComputation) {
  // n = 30 sample of constant + small spread.  CI = mean ± t* · s/√n with
  // t*(0.95, 29) ≈ 2.045.
  std::vector<double> data;
  for (int i = 0; i < 30; ++i) data.push_back(100.0 + (i % 3) - 1.0);
  const auto ci = mean_confidence_interval(data, 0.95);
  const double m = mean(data);
  const double half = 2.045 * std::sqrt(variance(data) / 30.0);
  EXPECT_NEAR(ci.lo, m - half, 1e-3);
  EXPECT_NEAR(ci.hi, m + half, 1e-3);
  EXPECT_LT(ci.lo, m);
  EXPECT_GT(ci.hi, m);
}

TEST(Descriptive, ConfidenceIntervalNeedsTwoPoints) {
  const std::vector<double> data = {1.0};
  EXPECT_THROW(mean_confidence_interval(data), std::invalid_argument);
}

TEST(Descriptive, WiderLevelGivesWiderInterval) {
  std::vector<double> data;
  for (int i = 0; i < 20; ++i) data.push_back(static_cast<double>(i));
  const auto ci95 = mean_confidence_interval(data, 0.95);
  const auto ci99 = mean_confidence_interval(data, 0.99);
  EXPECT_LT(ci99.lo, ci95.lo);
  EXPECT_GT(ci99.hi, ci95.hi);
}

TEST(ChiSquare, MatchesClosedFormForTwoDof) {
  // With 2 dof the chi-square CDF is exactly 1 - exp(-x/2).
  for (const double x : {0.1, 0.5, 1.0, 2.0, 5.0, 10.0, 25.0}) {
    EXPECT_NEAR(chi_square_cdf(x, 2.0), 1.0 - std::exp(-x / 2.0), 1e-12)
        << "x = " << x;
  }
}

TEST(ChiSquare, MatchesErfForOneDof) {
  // With 1 dof: P(X² <= x) = erf(sqrt(x/2)).
  for (const double x : {0.2, 1.0, 3.84, 6.63, 15.0}) {
    EXPECT_NEAR(chi_square_cdf(x, 1.0), std::erf(std::sqrt(x / 2.0)), 1e-10)
        << "x = " << x;
  }
}

TEST(ChiSquare, KnownCriticalValues) {
  // Classic table entries: P(X² > 3.841) = 0.05 at 1 dof,
  // P(X² > 18.307) = 0.05 at 10 dof.
  EXPECT_NEAR(chi_square_sf(3.841, 1.0), 0.05, 5e-4);
  EXPECT_NEAR(chi_square_sf(18.307, 10.0), 0.05, 5e-4);
  EXPECT_DOUBLE_EQ(chi_square_cdf(0.0, 4.0), 0.0);
  EXPECT_NEAR(chi_square_cdf(1000.0, 4.0), 1.0, 1e-12);
}

TEST(ChiSquare, IncompleteGammaEdgeCases) {
  EXPECT_DOUBLE_EQ(incomplete_gamma_p(2.5, 0.0), 0.0);
  // P(a, x) is a CDF in x: monotone increasing toward 1.
  double prev = 0.0;
  for (double x = 0.5; x <= 20.0; x += 0.5) {
    const double cur = incomplete_gamma_p(3.0, x);
    EXPECT_GE(cur, prev);
    prev = cur;
  }
  EXPECT_NEAR(prev, 1.0, 1e-6);
  EXPECT_THROW(incomplete_gamma_p(0.0, 1.0), std::domain_error);
  EXPECT_THROW(incomplete_gamma_p(1.0, -1.0), std::domain_error);
}

}  // namespace
}  // namespace match::stats
