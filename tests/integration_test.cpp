// End-to-end tests spanning workload generation, the cost model, MaTCH,
// and every baseline — the pipelines the benchmark harness runs, at
// test-friendly sizes.

#include <gtest/gtest.h>

#include <vector>

#include "baselines/ga.hpp"
#include "baselines/local_search.hpp"
#include "core/matchalgo.hpp"
#include "stats/anova.hpp"
#include "stats/descriptive.hpp"
#include "workload/overset.hpp"
#include "workload/paper_suite.hpp"

namespace match {
namespace {

TEST(Integration, MatchBeatsGaOnPaperStyleInstance) {
  // The paper's headline claim at reduced scale: on a §5.2 instance,
  // MaTCH's mapping quality matches or beats a budgeted FastMap-GA.
  rng::Rng setup(1);
  workload::PaperParams params;
  params.n = 15;
  const auto inst = workload::make_paper_instance(params, setup);
  const auto plat = inst.make_platform();
  const sim::CostEvaluator eval(inst.tig, plat);

  core::MatchOptimizer matcher(eval);
  rng::Rng r1(2);
  const auto match_result = matcher.run(match::SolverContext(r1));

  baselines::GaParams ga_params;
  ga_params.population = 100;
  ga_params.generations = 200;
  baselines::GaOptimizer ga(eval, ga_params);
  rng::Rng r2(2);
  const auto ga_result = ga.run(match::SolverContext(r2));

  EXPECT_TRUE(match_result.best_mapping.is_permutation());
  EXPECT_TRUE(ga_result.best_mapping.is_permutation());
  EXPECT_LE(match_result.best_cost, ga_result.best_cost * 1.10);
}

TEST(Integration, AllHeuristicsProduceConsistentCosts) {
  rng::Rng setup(3);
  workload::PaperParams params;
  params.n = 12;
  const auto inst = workload::make_paper_instance(params, setup);
  const auto plat = inst.make_platform();
  const sim::CostEvaluator eval(inst.tig, plat);

  rng::Rng rng(4);
  std::vector<std::pair<const char*, double>> results;

  core::MatchOptimizer matcher(eval);
  const auto mr = matcher.run(match::SolverContext(rng));
  EXPECT_DOUBLE_EQ(eval.makespan(mr.best_mapping), mr.best_cost);
  results.emplace_back("match", mr.best_cost);

  baselines::GaParams gp;
  gp.population = 50;
  gp.generations = 60;
  const auto gr = baselines::GaOptimizer(eval, gp).run(match::SolverContext(rng));
  EXPECT_DOUBLE_EQ(eval.makespan(gr.best_mapping), gr.best_cost);
  results.emplace_back("ga", gr.best_cost);

  const auto rr = baselines::random_search(eval, 500, match::SolverContext(rng));
  results.emplace_back("random", rr.best_cost);

  const auto gc = baselines::greedy_constructive(eval);
  results.emplace_back("greedy", gc.best_cost);

  const auto hc = baselines::hill_climb(eval, 10000, match::SolverContext(rng));
  results.emplace_back("hillclimb", hc.best_cost);

  baselines::SaParams sp;
  sp.steps = 10000;
  const auto sa = baselines::simulated_annealing(eval, sp, match::SolverContext(rng));
  results.emplace_back("sa", sa.best_cost);

  // Sanity band: every heuristic lands between the best found and a
  // factor of the worst random draw.
  for (const auto& [name, cost] : results) {
    EXPECT_GT(cost, 0.0) << name;
    EXPECT_LE(mr.best_cost, cost * 1.2)
        << "MaTCH should be at or near the best (" << name << ")";
  }
}

TEST(Integration, SuiteAveragingPipelineWorks) {
  // The Table-1 pipeline in miniature: a 3-instance suite, 2 runs per
  // instance, averaged ET for MaTCH and GA.
  rng::Rng setup(5);
  workload::PaperParams params;
  params.n = 10;
  const auto suite = workload::make_paper_suite(params, 3, 0.5, 2.0, setup);

  std::vector<double> match_ets, ga_ets;
  for (const auto& inst : suite) {
    const auto plat = inst.make_platform();
    const sim::CostEvaluator eval(inst.tig, plat);
    for (std::uint64_t run = 0; run < 2; ++run) {
      rng::Rng rng(100 + run);
      core::MatchOptimizer matcher(eval);
      match_ets.push_back(matcher.run(match::SolverContext(rng)).best_cost);

      baselines::GaParams gp;
      gp.population = 40;
      gp.generations = 40;
      rng::Rng grng(100 + run);
      ga_ets.push_back(baselines::GaOptimizer(eval, gp).run(match::SolverContext(grng)).best_cost);
    }
  }
  ASSERT_EQ(match_ets.size(), 6u);
  ASSERT_EQ(ga_ets.size(), 6u);
  EXPECT_LE(stats::mean(match_ets), stats::mean(ga_ets) * 1.05);
}

TEST(Integration, AnovaPipelineOnHeuristicOutputs) {
  // The Table-3 pipeline in miniature: repeated independent runs of three
  // heuristic configurations, analyzed with one-way ANOVA.
  rng::Rng setup(6);
  workload::PaperParams params;
  params.n = 10;
  const auto inst = workload::make_paper_instance(params, setup);
  const auto plat = inst.make_platform();
  const sim::CostEvaluator eval(inst.tig, plat);

  std::vector<std::vector<double>> groups(3);
  for (std::uint64_t run = 0; run < 8; ++run) {
    rng::Rng rng(run);
    core::MatchOptimizer matcher(eval);
    groups[0].push_back(matcher.run(match::SolverContext(rng)).best_cost);

    baselines::GaParams weak;
    weak.population = 10;
    weak.generations = 5;
    rng::Rng g1(run);
    groups[1].push_back(baselines::GaOptimizer(eval, weak).run(match::SolverContext(g1)).best_cost);

    rng::Rng g2(run);
    groups[2].push_back(baselines::random_search(eval, 30, match::SolverContext(g2)).best_cost);
  }

  const auto anova = stats::one_way_anova(groups);
  EXPECT_GT(anova.f_value, 0.0);
  EXPECT_GE(anova.p_value, 0.0);
  EXPECT_LE(anova.p_value, 1.0);
  // MaTCH (near-optimal every run) vs 30-sample random search must be a
  // statistically massive gap.
  EXPECT_LT(stats::mean(groups[0]), stats::mean(groups[2]));
  EXPECT_LT(anova.p_value, 0.05);
}

TEST(Integration, OversetWorkloadMapsEndToEnd) {
  // The motivating CFD scenario: overset-grid TIG onto a heterogeneous
  // complete platform.
  rng::Rng setup(7);
  workload::OversetParams op;
  op.num_grids = 12;
  const auto work = workload::make_overset_workload(op, setup);

  const graph::ResourceGraph rg(
      graph::make_complete(12, {1, 5}, {10, 20}, setup));
  const sim::Platform plat(rg);
  const sim::CostEvaluator eval(work.tig, plat);

  core::MatchOptimizer matcher(eval);
  rng::Rng rng(8);
  const auto result = matcher.run(match::SolverContext(rng));
  EXPECT_TRUE(result.best_mapping.is_permutation());

  rng::Rng rrng(8);
  const auto random = baselines::random_search(eval, 200, match::SolverContext(rrng));
  EXPECT_LE(result.best_cost, random.best_cost);
}

TEST(Integration, SparsePlatformPipeline) {
  // Non-complete resource graph routed via shortest paths, exercised
  // through MaTCH and GA.
  rng::Rng setup(9);
  workload::PaperParams params;
  params.n = 12;
  params.complete_resources = false;
  const auto inst = workload::make_paper_instance(params, setup);
  const auto plat = inst.make_platform();
  const sim::CostEvaluator eval(inst.tig, plat);

  rng::Rng r1(10);
  const auto mr = core::MatchOptimizer(eval).run(match::SolverContext(r1));
  EXPECT_TRUE(mr.best_mapping.is_permutation());

  baselines::GaParams gp;
  gp.population = 40;
  gp.generations = 40;
  rng::Rng r2(10);
  const auto gr = baselines::GaOptimizer(eval, gp).run(match::SolverContext(r2));
  EXPECT_TRUE(gr.best_mapping.is_permutation());
}

TEST(Integration, MatchMappingTimeGrowsWithProblemSize) {
  // Table 2's qualitative shape: MaTCH's mapping time rises steeply with
  // n (N = 2n² samples per iteration and O(n²) sampling cost).
  double t_small = 0.0, t_large = 0.0;
  for (int rep = 0; rep < 2; ++rep) {
    rng::Rng setup(11);
    workload::PaperParams params;
    params.n = 8;
    auto inst = workload::make_paper_instance(params, setup);
    auto plat = inst.make_platform();
    sim::CostEvaluator eval_small(inst.tig, plat);
    rng::Rng r1(12);
    t_small += core::MatchOptimizer(eval_small).run(match::SolverContext(r1)).elapsed_seconds;

    params.n = 24;
    auto inst2 = workload::make_paper_instance(params, setup);
    auto plat2 = inst2.make_platform();
    sim::CostEvaluator eval_large(inst2.tig, plat2);
    rng::Rng r2(12);
    t_large += core::MatchOptimizer(eval_large).run(match::SolverContext(r2)).elapsed_seconds;
  }
  EXPECT_GT(t_large, t_small);
}

}  // namespace
}  // namespace match
