#include "net/socket_util.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#ifdef __linux__
#include <sys/eventfd.h>
#endif

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace match::net {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + " (" + std::strerror(errno) + ")");
}

sockaddr_in make_addr(const std::string& address, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, address.c_str(), &addr.sin_addr) != 1) {
    throw std::runtime_error("bad IPv4 address '" + address + "'");
  }
  return addr;
}

}  // namespace

void close_fd(int& fd) noexcept {
  if (fd < 0) return;
  // POSIX leaves the fd state unspecified after EINTR from close(); on
  // Linux the descriptor is always released, so retrying risks closing
  // a recycled fd.  One call, no retry, is the portable-enough choice.
  ::close(fd);
  fd = -1;
}

bool set_nonblocking(int fd, bool enabled) noexcept {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  const int wanted = enabled ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  return ::fcntl(fd, F_SETFL, wanted) == 0;
}

int open_listener(const ListenerOptions& options) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket() failed");
  try {
    if (options.reuse_addr) {
      const int one = 1;
      if (::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) < 0) {
        throw_errno("setsockopt(SO_REUSEADDR) failed");
      }
    }
    const sockaddr_in addr = make_addr(options.bind_address, options.port);
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
        0) {
      throw_errno("cannot bind " + options.bind_address + ":" +
                  std::to_string(options.port));
    }
    if (::listen(fd, options.backlog) < 0) {
      throw_errno("listen() failed on " + options.bind_address + ":" +
                  std::to_string(options.port));
    }
    if (options.non_blocking && !set_nonblocking(fd, true)) {
      throw_errno("cannot set listener non-blocking");
    }
  } catch (...) {
    close_fd(fd);
    throw;
  }
  return fd;
}

std::uint16_t bound_port(int fd) {
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
    throw_errno("getsockname() failed");
  }
  return ntohs(bound.sin_port);
}

int accept_retry(int listen_fd) noexcept {
  for (;;) {
    const int client = ::accept(listen_fd, nullptr, nullptr);
    if (client >= 0 || errno != EINTR) return client;
  }
}

int connect_to(const std::string& address, std::uint16_t port) {
  const sockaddr_in addr = make_addr(address, port);
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket() failed");
  for (;;) {
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) ==
        0) {
      return fd;
    }
    if (errno == EINTR) continue;
    const int err = errno;
    close_fd(fd);
    errno = err;
    throw_errno("cannot connect to " + address + ":" + std::to_string(port));
  }
}

bool send_all(int fd, const void* data, std::size_t size) noexcept {
  const char* p = static_cast<const char*>(data);
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd, p + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

bool recv_all(int fd, void* data, std::size_t size) noexcept {
  char* p = static_cast<char*>(data);
  std::size_t got = 0;
  while (got < size) {
    const ssize_t n = ::recv(fd, p + got, size - got, 0);
    if (n == 0) return false;  // orderly EOF mid-message
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    got += static_cast<std::size_t>(n);
  }
  return true;
}

Wakeup::Wakeup() {
#ifdef __linux__
  read_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (read_fd_ < 0) throw_errno("eventfd() failed");
  write_fd_ = read_fd_;
#else
  int fds[2];
  if (::pipe(fds) < 0) throw_errno("pipe() failed");
  read_fd_ = fds[0];
  write_fd_ = fds[1];
  set_nonblocking(read_fd_, true);
  set_nonblocking(write_fd_, true);
#endif
}

Wakeup::~Wakeup() {
  if (write_fd_ != read_fd_) close_fd(write_fd_);
  close_fd(read_fd_);
}

void Wakeup::notify() noexcept {
  const std::uint64_t one = 1;
  for (;;) {
    const ssize_t n = ::write(write_fd_, &one, sizeof(one));
    if (n >= 0 || errno != EINTR) return;  // EAGAIN = already pending: fine
  }
}

void Wakeup::drain() noexcept {
  std::uint64_t buf[16];
  for (;;) {
    const ssize_t n = ::read(read_fd_, buf, sizeof(buf));
    if (n < 0 && errno == EINTR) continue;
    if (n < static_cast<ssize_t>(sizeof(buf))) return;  // drained (or EAGAIN)
  }
}

}  // namespace match::net
