#include "net/client.hpp"

#include <sys/socket.h>

#include <stdexcept>
#include <utility>

namespace match::net {

Client::Client(const std::string& host, std::uint16_t port)
    : fd_(connect_to(host, port)) {}

Client::~Client() { close(); }

Client::Client(Client&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

void Client::close() { close_fd(fd_); }

void Client::shutdown_send() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

WireResponse Client::call(const WireRequest& request) {
  send(request);
  return receive();
}

void Client::send(const WireRequest& request) {
  if (fd_ < 0) throw std::runtime_error("client connection is closed");
  const std::string frame = encode_request(request);
  if (!send_all(fd_, frame.data(), frame.size())) {
    close();
    throw std::runtime_error("connection broke while sending request");
  }
}

WireResponse Client::receive() {
  if (fd_ < 0) throw std::runtime_error("client connection is closed");
  char header_buf[kHeaderSize];
  if (!recv_all(fd_, header_buf, sizeof(header_buf))) {
    close();
    throw std::runtime_error("connection closed before a response header");
  }
  const FrameHeader header =
      decode_header(std::string_view(header_buf, sizeof(header_buf)));
  if (header.type != MsgType::kResponse) {
    close();
    throw WireError("expected a response frame");
  }
  std::string payload(header.payload_size, '\0');
  if (header.payload_size > 0 &&
      !recv_all(fd_, payload.data(), payload.size())) {
    close();
    throw std::runtime_error("connection closed mid-response");
  }
  return decode_response(header, payload);
}

}  // namespace match::net
