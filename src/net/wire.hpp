#pragma once

// The versioned length-prefixed binary protocol of the mapping front
// end.  One frame per message, either direction:
//
//   offset  size  field
//   0       4     magic "MTCH"
//   4       2     version (currently 2), little-endian
//   6       1     type: 1 = request, 2 = response
//   7       1     flags (requests: priority + deadline bits, see below)
//   8       8     request id (echoed verbatim in the response)
//   16      4     payload length N
//   20      N     payload
//
// All integers are little-endian; doubles travel as their IEEE-754 bit
// pattern, so every value round-trips exactly (pinned by
// tests/wire_test.cpp).  The payload is a serialized
// `service::MapRequest` — solver kind, result-affecting options, and
// the instance either inline or as the 64-bit canonical fingerprint of
// an instance the server has already seen inline — or a serialized
// `service::MapResponse` plus a status byte classifying the admission
// outcome (served / shed / rejected / error).
//
// Version 2 prefixes every inline instance with a one-byte
// `workload::WorkloadKind` discriminant: 0 = TIG (undirected task graph
// + resource graph, the graph wire shape mirrors graph/io.hpp), 1 = DAG
// (directed task graph with precedence arcs + resource graph).  Unknown
// kind bytes throw `WireError`, which the server answers with
// `kBadRequest` — the composition point where future workload families
// slot in without another version bump.  Version 1 frames (no
// discriminant) are no longer accepted; the protocol predates any
// deployed client, so no compatibility shim is carried.  Full field
// tables: docs/NETWORKING.md.
//
// Decoders never trust the peer: every read is bounds-checked, string
// and array lengths are capped, and any malformed input throws
// `WireError` (never UB, never a partial object).

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

#include "service/request.hpp"

namespace match::net {

inline constexpr std::uint32_t kWireMagic = 0x4854434Du;  // "MTCH" LE
inline constexpr std::uint16_t kWireVersion = 2;
inline constexpr std::size_t kHeaderSize = 20;
/// Frames above this payload size are rejected before buffering — a bad
/// magic-collision or a hostile peer must not make the server allocate.
inline constexpr std::uint32_t kMaxPayload = 16u << 20;
/// Inline instances are capped (tasks and resources) so a single frame
/// cannot smuggle a multi-gigabyte graph past admission control.
inline constexpr std::uint32_t kMaxWireNodes = 1u << 20;

enum class MsgType : std::uint8_t {
  kRequest = 1,
  kResponse = 2,
};

// Request flag bits (header byte 7).
inline constexpr std::uint8_t kFlagPriorityLow = 0x01;
inline constexpr std::uint8_t kFlagPriorityHigh = 0x02;
/// When set, `deadline_seconds` is a hard remaining budget: a value
/// <= 0 means the deadline already expired in transit and the server
/// must reject before enqueueing.  When clear, deadline 0 = unbounded
/// (the in-process `SolveOptions` convention).
inline constexpr std::uint8_t kFlagStrictDeadline = 0x04;

/// Admission priority, decoded from the flag bits.  Low sheds first
/// under overload, high sheds last (watermarks in server.hpp).
enum class Priority : std::uint8_t { kLow = 0, kNormal = 1, kHigh = 2 };

const char* to_string(Priority priority);

/// The admission outcome carried by every response.
enum class Status : std::uint8_t {
  kOk = 0,                ///< served; payload carries the mapping
  kShed = 1,              ///< dropped by load shedding (queue watermark)
  kRejectedDeadline = 2,  ///< deadline expired or projected wait exceeds it
  kBadRequest = 3,        ///< payload failed validation
  kUnknownInstance = 4,   ///< fingerprint reference the server has not seen
  kServerError = 5,       ///< solver failed after admission
};

const char* to_string(Status status);

struct WireError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

struct FrameHeader {
  std::uint16_t version = kWireVersion;
  MsgType type = MsgType::kRequest;
  std::uint8_t flags = 0;
  std::uint64_t request_id = 0;
  std::uint32_t payload_size = 0;
};

/// A decoded request frame.  `request.instance` is null when the client
/// sent a fingerprint reference instead of an inline instance.
struct WireRequest {
  std::uint64_t request_id = 0;
  Priority priority = Priority::kNormal;
  bool strict_deadline = false;
  bool by_fingerprint = false;
  std::uint64_t instance_fingerprint = 0;  ///< set iff by_fingerprint
  service::MapRequest request;
};

/// A response frame.  `response` is meaningful only when
/// `status == kOk`; other statuses carry a short diagnostic in `error`.
struct WireResponse {
  std::uint64_t request_id = 0;
  Status status = Status::kOk;
  std::string error;
  service::MapResponse response;
};

// ---- Encoding (always succeeds; allocation is the only cost) ----------

std::string encode_request(const WireRequest& request);
std::string encode_response(const WireResponse& response);

// ---- Decoding (throws WireError on any malformation) -------------------

/// Parses the 20-byte header; `data` must hold >= kHeaderSize bytes.
/// Validates magic, version, type, and the payload-size cap, so a
/// reactor can reject garbage before buffering the payload.
FrameHeader decode_header(std::string_view data);

/// Decodes a request payload (frame bytes after the header).  The
/// header supplies request id and flags.
WireRequest decode_request(const FrameHeader& header, std::string_view payload);

/// Decodes a response payload.
WireResponse decode_response(const FrameHeader& header,
                             std::string_view payload);

}  // namespace match::net
