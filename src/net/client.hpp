#pragma once

// Minimal blocking client for the MatchServer wire protocol — the
// counterpart tests and the load generator drive the reactor with.  One
// TCP connection per client; `call()` is the synchronous
// request/response path, and the split `send()` / `receive()` pair
// supports pipelining (many requests in flight on one connection, the
// server answers in completion order, correlate by request id).
//
// Deliberately not a production SDK: blocking sockets, no reconnect, no
// TLS — its job is to exercise the server from tests and benchmarks
// without depending on anything beyond POSIX.

#include <cstdint>
#include <string>

#include "net/socket_util.hpp"
#include "net/wire.hpp"

namespace match::net {

class Client {
 public:
  /// Connects (blocking); throws `std::runtime_error` on failure.
  Client(const std::string& host, std::uint16_t port);

  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;

  /// Synchronous round trip: `send(request)` then `receive()`.
  WireResponse call(const WireRequest& request);

  /// Writes one request frame (blocking until fully written).  Throws
  /// `std::runtime_error` when the connection broke.
  void send(const WireRequest& request);

  /// Blocks for the next response frame.  Throws `std::runtime_error`
  /// on EOF / connection reset and `WireError` on a malformed frame.
  WireResponse receive();

  /// Half-close the write side (signals the server no more requests are
  /// coming while pipelined responses are still being read).
  void shutdown_send();

  void close();
  bool is_open() const noexcept { return fd_ >= 0; }

 private:
  int fd_ = -1;
};

}  // namespace match::net
