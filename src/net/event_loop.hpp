#pragma once

// A thin readiness multiplexer: epoll(7) on Linux with a poll(2)
// fallback behind the same interface, so the reactor code is identical
// on both backends and tests can exercise the fallback everywhere.
//
// Level-triggered on both backends (poll has no edge mode, and level
// semantics make the partial-read/partial-write state machine in
// server.cpp immune to "forgot to re-arm" bugs).  Not thread-safe: one
// loop belongs to one thread; cross-thread signaling goes through a
// `net::Wakeup` fd registered like any other.

#include <poll.h>

#include <cstddef>
#include <unordered_map>
#include <vector>

namespace match::net {

class EventLoop {
 public:
  enum class Backend {
    kEpoll,  ///< Linux only; constructor throws elsewhere
    kPoll,   ///< portable fallback
  };

  /// kEpoll on Linux, kPoll elsewhere.
  static Backend default_backend() noexcept;

  /// Throws `std::runtime_error` when the backend cannot be created
  /// (epoll on a non-Linux host, or fd exhaustion).
  explicit EventLoop(Backend backend = default_backend());
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  Backend backend() const noexcept { return backend_; }

  /// Registers `fd`.  Throws `std::runtime_error` on kernel refusal or
  /// double registration.
  void add(int fd, bool want_read, bool want_write);

  /// Updates interest for a registered fd.
  void modify(int fd, bool want_read, bool want_write);

  /// Deregisters; unknown fds are ignored (close() already removed
  /// them from epoll, and remove-after-close must not throw).
  void remove(int fd) noexcept;

  std::size_t size() const noexcept { return interest_.size(); }

  struct Ready {
    int fd = -1;
    bool readable = false;
    bool writable = false;
    /// Error/hangup: the fd should be drained (readable is also set so
    /// a reader observes the EOF) and closed.
    bool error = false;
  };

  /// Blocks up to `timeout_ms` (-1 = indefinitely), fills `out` with
  /// ready fds (cleared first), and returns the count.  EINTR returns 0
  /// ready fds rather than throwing.
  std::size_t wait(int timeout_ms, std::vector<Ready>& out);

 private:
  struct Interest {
    bool read = false;
    bool write = false;
  };

  Backend backend_;
  int epoll_fd_ = -1;
  std::unordered_map<int, Interest> interest_;
  /// Scratch for the poll backend, rebuilt only when interest changes.
  std::vector<pollfd> pollfds_;
  bool pollfds_dirty_ = true;
};

}  // namespace match::net
