#pragma once

// The asynchronous network front end of the mapping service.
//
//   clients ──► Acceptor ──► per-connection state machine ──► admission
//                (epoll/poll EventLoop, one reactor thread)      │
//                                                                ├─ shed (queue watermark by priority)
//                                                                ├─ reject (deadline already infeasible)
//                                                                └─ MappingService::try_submit
//                                                                     └─ worker callback ─► outbox ─► wakeup ─► reactor writes response
//
// One thread runs the reactor: it accepts connections, reassembles
// length-prefixed frames from partial reads (wire.hpp), makes the
// admission decision inline, and writes responses with partial-write
// buffering — it never blocks on a socket, a queue, or a solver, so the
// listener stays responsive at any offered load.  Solves happen on the
// service's worker pumps; completions cross back to the reactor through
// a mutex-guarded outbox plus a `Wakeup` fd.
//
// Admission control, in decision order per request:
//   1. malformed payload / unknown solver  → kBadRequest
//   2. unknown instance fingerprint        → kUnknownInstance
//   3. strict deadline already expired, or projected queue wait
//      (MappingService::projected_wait_seconds, estimated from the
//      service latency histograms) >= remaining deadline
//                                          → kRejectedDeadline
//   4. pending depth over the priority's watermark (low sheds first,
//      high last), or the service queue full → kShed
//   5. otherwise                            → enqueue; kOk (or
//      kServerError if the solver fails after admission)
//
// Every request reaches exactly one terminal `net.*` counter, so
//   net.requests == net.served + net.shed + net.rejected_deadline
//                 + net.bad_request + net.unknown_instance
//                 + net.server_error
// holds exactly once the server is quiesced (pinned by
// tests/net_server_test.cpp).  Counters land in the service's
// MetricsRegistry, so one /metrics scrape covers the whole stack;
// overload decisions are also emitted as `net.*` service events on the
// configured sink for `match_inspect overload`.
//
// Span tracing (obs/spans.hpp): when `ServerConfig::recorder` is set,
// every request carries a `SpanTimeline` stamped at each pipeline stage
// (accept/decode/admission on the reactor, queue_wait/solve in the
// service, encode/write_flush back on the reactor) and sealed into the
// recorder by `finish`.  With no recorder the reactor takes zero extra
// clock reads and the hot path is byte-identical to the untraced build
// (pure-observer contract, pinned by tests and the span arm of
// bench/ext_obs_overhead.cpp).
//
// Reactor saturation telemetry, always on: the
// `net.reactor.iteration_seconds` histogram times each event-loop
// iteration (wait return → housekeeping done), and every ~250 ms the
// reactor samples `net.reactor.pending_requests`,
// `net.reactor.connections`, `service.queue_depth`, and
// `service.in_flight` gauges — the four numbers that say whether the
// loop, the admission window, or the worker pool is the bottleneck.

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/event_loop.hpp"
#include "net/socket_util.hpp"
#include "net/wire.hpp"
#include "obs/events.hpp"
#include "obs/metrics.hpp"
#include "service/deadline.hpp"
#include "service/service.hpp"

namespace match::obs {
class FlightRecorder;
struct SpanTimeline;
}

namespace match::net {

struct AdmissionConfig {
  /// Bounded accept queue: requests admitted to the service but not yet
  /// answered.  The service's own `queue_capacity` should be >= this,
  /// otherwise `try_submit` turns the excess into sheds anyway.
  std::size_t max_pending = 512;

  /// Per-priority drop policy, as fractions of `max_pending`: a low-
  /// priority request is shed once pending >= low_watermark × max, a
  /// normal one at normal_watermark × max, and high priority uses the
  /// full budget.  Low sheds first under overload by construction.
  double low_watermark = 0.5;
  double normal_watermark = 0.8;

  /// Reject a deadline-carrying request when the projected queue wait
  /// already exceeds its whole budget (cheaper for everyone than
  /// queueing work guaranteed to miss).
  bool deadline_early_reject = true;
};

struct ServerConfig {
  std::string bind_address = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = ephemeral; see `MatchServer::port()`
  int backlog = 128;
  std::size_t max_connections = 1024;

  /// Connections silent for this long are closed on the reactor's
  /// housekeeping tick (~100 ms granularity).  <= 0 disables.
  double idle_timeout_seconds = 30.0;

  /// A connection whose unsent response backlog exceeds this is closed:
  /// a reader that stops reading must not hold reactor memory hostage.
  std::size_t max_write_buffer = 4u << 20;

  /// Inline instances are remembered by canonical fingerprint (FIFO
  /// eviction) so clients can switch to cheap fingerprint-only requests.
  std::size_t max_instances = 4096;

  AdmissionConfig admission;
  EventLoop::Backend backend = EventLoop::default_backend();

  /// Optional sink for per-request overload events (`net.served`,
  /// `net.shed`, ...); must be thread-compatible with the reactor
  /// thread and outlive the server.  Null disables.
  obs::EventSink* sink = nullptr;

  /// Optional flight recorder; non-null turns on per-request span
  /// timelines (see the header comment).  Must outlive the server.
  /// Null disables tracing entirely — zero extra clock reads.
  obs::FlightRecorder* recorder = nullptr;
};

/// Point-in-time admission accounting, read from the service registry.
struct ServerCounters {
  std::uint64_t requests = 0;  ///< offered = every decoded request frame
  std::uint64_t served = 0;
  std::uint64_t served_deadline_missed = 0;  ///< subset of `served`
  std::uint64_t shed = 0;
  std::uint64_t rejected_deadline = 0;
  std::uint64_t bad_request = 0;
  std::uint64_t unknown_instance = 0;
  std::uint64_t server_error = 0;

  std::uint64_t terminal() const {
    return served + shed + rejected_deadline + bad_request +
           unknown_instance + server_error;
  }
};

class MatchServer {
 public:
  /// Binds and starts the reactor thread.  The service must outlive the
  /// server.  Throws `std::runtime_error` when the port cannot be
  /// bound.
  explicit MatchServer(service::MappingService& service,
                       ServerConfig config = {});

  /// Runs `stop()`.
  ~MatchServer();

  MatchServer(const MatchServer&) = delete;
  MatchServer& operator=(const MatchServer&) = delete;

  /// The port actually bound (== config.port unless that was 0).
  std::uint16_t port() const noexcept { return port_; }

  const ServerConfig& config() const noexcept { return config_; }

  /// Closes the listener, joins the reactor, drains outstanding
  /// admitted requests (their terminal counters still land, so the
  /// accounting identity holds after stop), and closes every
  /// connection.  Idempotent.
  void stop();

  /// Snapshot of the `net.*` admission counters.
  ServerCounters counters() const;

  /// Live connection count (reactor-maintained gauge).
  std::size_t connections() const;

 private:
  struct Connection {
    std::uint64_t id = 0;
    int fd = -1;
    std::string in;
    std::size_t in_consumed = 0;
    std::string out;
    std::size_t out_written = 0;
    service::Clock::time_point last_activity;
    bool want_write = false;
    /// Peer half-closed (read EOF) — a pipelining client that sent its
    /// batch and shut down its write side.  The connection stays open
    /// until every admitted request has been answered and flushed.
    bool read_closed = false;
    /// Admitted-but-unanswered requests from THIS connection.
    std::size_t inflight = 0;
  };

  struct Completed {
    std::uint64_t conn_id = 0;
    WireResponse response;
    service::Clock::time_point arrived_at;
    /// The request's span timeline riding back from the worker (null
    /// when tracing is off).  shared_ptr because the completion
    /// callback lives in a copyable std::function.
    std::shared_ptr<obs::SpanTimeline> timeline;
  };

  void run();
  void accept_new();
  void close_connection(Connection& conn, const char* counter);
  bool handle_readable(int fd);   ///< false: connection closed
  bool parse_frames(int fd);      ///< false: protocol error
  void handle_request(Connection& conn, const FrameHeader& header,
                      std::string_view payload);
  void respond(Connection& conn, const WireResponse& response,
               obs::SpanTimeline* timeline = nullptr);
  bool flush_writes(Connection& conn);      ///< false: connection closed
  /// Closes `fd` iff the peer half-closed and nothing is owed to it.
  void maybe_close_half_closed(int fd);
  void drain_outbox(bool deliver);
  void sweep_idle();
  std::size_t shed_threshold(Priority priority) const;
  /// Books the terminal decision: counter, latency histogram, overload
  /// event.  Runs BEFORE the response bytes go out, so a client that
  /// already holds its answer always observes up-to-date counters.
  void finish(Status status, std::uint64_t request_id,
              service::SolverKind solver,
              service::Clock::time_point arrived_at, bool deadline_missed);
  /// Seals and records the span timeline.  Runs AFTER respond() so the
  /// encode/write_flush spans are on the timeline; the timeline total
  /// therefore covers encode + flush even though net.request_seconds
  /// (stamped in finish) does not.
  void seal_timeline(std::shared_ptr<obs::SpanTimeline> timeline,
                     Status status, bool deadline_missed);
  bool tracing() const { return config_.recorder != nullptr; }

  service::MappingService& service_;
  ServerConfig config_;
  obs::MetricsRegistry& metrics_;

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  EventLoop loop_;
  Wakeup wakeup_;

  std::unordered_map<int, Connection> conns_;       ///< by fd
  std::unordered_map<std::uint64_t, int> conn_fd_;  ///< id → fd
  std::uint64_t next_conn_id_ = 1;
  std::atomic<std::size_t> live_connections_{0};

  /// Admitted-but-unanswered requests (reactor thread only).
  std::size_t pending_ = 0;

  /// When tracing: the instant the current read burst became readable —
  /// the accept-span origin for every frame decoded from that burst.
  service::Clock::time_point read_started_{};

  /// Inline instances (TIG or DAG) by canonical fingerprint,
  /// FIFO-evicted.
  std::unordered_map<std::uint64_t,
                     std::shared_ptr<const workload::AnyInstance>>
      instances_;
  std::deque<std::uint64_t> instance_order_;

  std::mutex outbox_mutex_;
  std::vector<Completed> outbox_;

  std::atomic<bool> stopping_{false};
  bool stopped_ = false;  ///< stop() ran to completion (main thread only)
  std::thread thread_;
};

}  // namespace match::net
