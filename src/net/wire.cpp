#include "net/wire.hpp"

#include <bit>
#include <cstring>
#include <memory>
#include <vector>

#include "graph/dag.hpp"
#include "graph/graph.hpp"
#include "sim/platform.hpp"
#include "workload/any_instance.hpp"
#include "workload/instance.hpp"

namespace match::net {

namespace {

// ---- Little-endian primitive writers -----------------------------------

void put_u8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}

void put_u16(std::string& out, std::uint16_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<char>((v >> shift) & 0xff));
  }
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    out.push_back(static_cast<char>((v >> shift) & 0xff));
  }
}

void put_f64(std::string& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

void put_string(std::string& out, std::string_view s) {
  if (s.size() > 0xffff) s = s.substr(0, 0xffff);  // names are labels, cap
  put_u16(out, static_cast<std::uint16_t>(s.size()));
  out.append(s);
}

// ---- Bounds-checked reader ---------------------------------------------

class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  std::uint8_t u8() {
    need(1);
    return static_cast<std::uint8_t>(data_[pos_++]);
  }

  std::uint16_t u16() {
    need(2);
    std::uint16_t v = 0;
    for (int shift = 0; shift < 16; shift += 8) {
      v = static_cast<std::uint16_t>(
          v | static_cast<std::uint16_t>(
                  static_cast<std::uint8_t>(data_[pos_++]))
                  << shift);
    }
    return v;
  }

  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int shift = 0; shift < 32; shift += 8) {
      v |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(data_[pos_++]))
           << shift;
    }
    return v;
  }

  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int shift = 0; shift < 64; shift += 8) {
      v |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(data_[pos_++]))
           << shift;
    }
    return v;
  }

  double f64() { return std::bit_cast<double>(u64()); }

  std::string str() {
    const std::uint16_t n = u16();
    need(n);
    std::string s(data_.substr(pos_, n));
    pos_ += n;
    return s;
  }

  bool done() const { return pos_ == data_.size(); }

  /// Bytes not yet consumed — the hard ceiling on any claimed element
  /// count, checked BEFORE allocating (a hostile count must cost a
  /// WireError, never a multi-gigabyte value-initialized vector).
  std::size_t remaining() const { return data_.size() - pos_; }

  void expect_done() const {
    if (!done()) throw WireError("wire: trailing bytes after payload");
  }

 private:
  void need(std::size_t n) const {
    if (data_.size() - pos_ < n) throw WireError("wire: truncated payload");
  }

  std::string_view data_;
  std::size_t pos_ = 0;
};

// ---- Graph / instance payload shape ------------------------------------

void put_graph(std::string& out, const graph::Graph& g) {
  put_u32(out, static_cast<std::uint32_t>(g.num_nodes()));
  for (double w : g.node_weights()) put_f64(out, w);
  const std::vector<graph::Edge> edges = g.edge_list();
  put_u32(out, static_cast<std::uint32_t>(edges.size()));
  for (const graph::Edge& e : edges) {
    put_u32(out, e.u);
    put_u32(out, e.v);
    put_f64(out, e.weight);
  }
}

graph::Graph read_graph(Reader& r) {
  const std::uint32_t n = r.u32();
  if (n == 0 || n > kMaxWireNodes || r.remaining() / 8 < n) {
    throw WireError("wire: graph node count out of range");
  }
  std::vector<double> weights(n);
  for (double& w : weights) w = r.f64();
  const std::uint32_t m = r.u32();
  // An undirected simple graph has at most n*(n-1)/2 edges — but for
  // n ≳ 93k that bound exceeds u32, so it alone admits a claimed count
  // the payload cannot possibly hold (16 bytes per wire edge), and the
  // vector below would value-initialize up to ~64 GiB before reading a
  // single edge byte.  Bound by the remaining payload too.
  const std::uint64_t max_edges =
      static_cast<std::uint64_t>(n) * (n - 1) / 2;
  if (m > max_edges || r.remaining() / 16 < m) {
    throw WireError("wire: graph edge count out of range");
  }
  std::vector<graph::Edge> edges(m);
  for (graph::Edge& e : edges) {
    e.u = r.u32();
    e.v = r.u32();
    e.weight = r.f64();
  }
  try {
    return graph::Graph::from_edges(n, std::move(weights), edges);
  } catch (const std::invalid_argument& e) {
    throw WireError(std::string("wire: invalid graph (") + e.what() + ")");
  }
}

// The DAG wire shape mirrors the undirected one field for field; the
// edge list is directed (u = tail, v = head) and cycle rejection happens
// in `Dag::from_edges`, so a frame that decodes is already a valid DAG.
void put_dag(std::string& out, const graph::Dag& g) {
  put_u32(out, static_cast<std::uint32_t>(g.num_nodes()));
  for (double w : g.node_weights()) put_f64(out, w);
  const std::vector<graph::Edge> edges = g.edge_list();
  put_u32(out, static_cast<std::uint32_t>(edges.size()));
  for (const graph::Edge& e : edges) {
    put_u32(out, e.u);
    put_u32(out, e.v);
    put_f64(out, e.weight);
  }
}

graph::Dag read_dag(Reader& r) {
  const std::uint32_t n = r.u32();
  if (n == 0 || n > kMaxWireNodes || r.remaining() / 8 < n) {
    throw WireError("wire: dag node count out of range");
  }
  std::vector<double> weights(n);
  for (double& w : weights) w = r.f64();
  const std::uint32_t m = r.u32();
  // A simple DAG has at most n*(n-1)/2 arcs; like read_graph, also bound
  // the claimed count by what the remaining payload can physically hold
  // (16 bytes per wire edge) before allocating.
  const std::uint64_t max_edges =
      static_cast<std::uint64_t>(n) * (n - 1) / 2;
  if (m > max_edges || r.remaining() / 16 < m) {
    throw WireError("wire: dag edge count out of range");
  }
  std::vector<graph::Edge> edges(m);
  for (graph::Edge& e : edges) {
    e.u = r.u32();
    e.v = r.u32();
    e.weight = r.f64();
  }
  try {
    return graph::Dag::from_edges(n, std::move(weights), edges);
  } catch (const std::invalid_argument& e) {
    throw WireError(std::string("wire: invalid dag (") + e.what() + ")");
  }
}

void put_instance(std::string& out, const workload::AnyInstance& any) {
  // The workload-kind discriminant leads: a decoder knows the shape of
  // everything after this byte before reading it.
  put_u8(out, static_cast<std::uint8_t>(any.kind()));
  put_string(out, any.name());
  put_u8(out, static_cast<std::uint8_t>(any.comm_policy()));
  if (any.is_tig()) {
    put_graph(out, any.tig().tig.graph());
  } else {
    put_dag(out, any.dag().dag);
  }
  put_graph(out, any.resources().graph());
}

workload::AnyInstance read_instance(Reader& r) {
  const std::uint8_t kind = r.u8();
  if (kind > static_cast<std::uint8_t>(workload::WorkloadKind::kDag)) {
    throw WireError("wire: unknown workload kind");
  }
  std::string name = r.str();
  const std::uint8_t policy = r.u8();
  if (policy > static_cast<std::uint8_t>(sim::CommCostPolicy::kShortestPath)) {
    throw WireError("wire: unknown comm-cost policy");
  }
  const auto comm_policy = static_cast<sim::CommCostPolicy>(policy);
  if (static_cast<workload::WorkloadKind>(kind) ==
      workload::WorkloadKind::kTig) {
    workload::Instance inst;
    inst.name = std::move(name);
    inst.comm_policy = comm_policy;
    inst.tig = graph::Tig(read_graph(r));
    inst.resources = graph::ResourceGraph(read_graph(r));
    return workload::AnyInstance(std::move(inst));
  }
  workload::DagInstance inst;
  inst.name = std::move(name);
  inst.comm_policy = comm_policy;
  inst.dag = read_dag(r);
  inst.resources = graph::ResourceGraph(read_graph(r));
  return workload::AnyInstance(std::move(inst));
}

void put_header(std::string& out, MsgType type, std::uint8_t flags,
                std::uint64_t request_id, std::uint32_t payload_size) {
  put_u32(out, kWireMagic);
  put_u16(out, kWireVersion);
  put_u8(out, static_cast<std::uint8_t>(type));
  put_u8(out, flags);
  put_u64(out, request_id);
  put_u32(out, payload_size);
}

std::string seal(MsgType type, std::uint8_t flags, std::uint64_t request_id,
                 std::string_view payload) {
  std::string out;
  out.reserve(kHeaderSize + payload.size());
  put_header(out, type, flags, request_id,
             static_cast<std::uint32_t>(payload.size()));
  out.append(payload);
  return out;
}

std::uint8_t priority_flags(Priority priority) {
  switch (priority) {
    case Priority::kLow:
      return kFlagPriorityLow;
    case Priority::kHigh:
      return kFlagPriorityHigh;
    case Priority::kNormal:
      break;
  }
  return 0;
}

constexpr std::uint8_t kMaxSolverKind =
    static_cast<std::uint8_t>(service::SolverKind::kDagCe);
constexpr std::uint8_t kMaxServedBy =
    static_cast<std::uint8_t>(service::ServedBy::kCoalesced);
constexpr std::uint8_t kMaxStatus =
    static_cast<std::uint8_t>(Status::kServerError);

}  // namespace

const char* to_string(Priority priority) {
  switch (priority) {
    case Priority::kLow:
      return "low";
    case Priority::kNormal:
      return "normal";
    case Priority::kHigh:
      return "high";
  }
  return "?";
}

const char* to_string(Status status) {
  switch (status) {
    case Status::kOk:
      return "ok";
    case Status::kShed:
      return "shed";
    case Status::kRejectedDeadline:
      return "rejected_deadline";
    case Status::kBadRequest:
      return "bad_request";
    case Status::kUnknownInstance:
      return "unknown_instance";
    case Status::kServerError:
      return "server_error";
  }
  return "?";
}

std::string encode_request(const WireRequest& request) {
  std::string payload;
  put_u8(payload, static_cast<std::uint8_t>(request.request.solver));
  const service::SolveOptions& opt = request.request.options;
  put_u8(payload, opt.use_cache ? 1 : 0);
  put_u64(payload, opt.seed);
  put_f64(payload, opt.deadline_seconds);
  put_f64(payload, opt.target_cost);
  put_u64(payload, opt.max_iterations);
  put_u8(payload, request.by_fingerprint ? 1 : 0);
  if (request.by_fingerprint) {
    put_u64(payload, request.instance_fingerprint);
  } else {
    if (!request.request.instance) {
      throw WireError("encode_request: inline request with null instance");
    }
    put_instance(payload, *request.request.instance);
  }

  std::uint8_t flags = priority_flags(request.priority);
  if (request.strict_deadline) flags |= kFlagStrictDeadline;
  return seal(MsgType::kRequest, flags, request.request_id, payload);
}

std::string encode_response(const WireResponse& response) {
  std::string payload;
  put_u8(payload, static_cast<std::uint8_t>(response.status));
  const service::MapResponse& r = response.response;
  put_u8(payload, static_cast<std::uint8_t>(r.served_by));
  put_u8(payload, static_cast<std::uint8_t>(r.solver));
  put_u8(payload, r.deadline_missed ? 1 : 0);
  put_f64(payload, r.cost);
  put_u64(payload, r.iterations);
  put_u64(payload, r.fingerprint);
  put_f64(payload, r.queue_seconds);
  put_f64(payload, r.solve_seconds);
  put_f64(payload, r.total_seconds);
  if (response.status == Status::kOk) {
    const auto assignment = r.mapping.assignment();
    put_u32(payload, static_cast<std::uint32_t>(assignment.size()));
    for (graph::NodeId id : assignment) put_u32(payload, id);
  } else {
    put_string(payload, response.error);
  }
  return seal(MsgType::kResponse, 0, response.request_id, payload);
}

FrameHeader decode_header(std::string_view data) {
  if (data.size() < kHeaderSize) {
    throw WireError("wire: short header");
  }
  Reader r(data.substr(0, kHeaderSize));
  FrameHeader header;
  if (r.u32() != kWireMagic) throw WireError("wire: bad magic");
  header.version = r.u16();
  if (header.version != kWireVersion) {
    throw WireError("wire: unsupported version " +
                    std::to_string(header.version));
  }
  const std::uint8_t type = r.u8();
  if (type != static_cast<std::uint8_t>(MsgType::kRequest) &&
      type != static_cast<std::uint8_t>(MsgType::kResponse)) {
    throw WireError("wire: unknown message type");
  }
  header.type = static_cast<MsgType>(type);
  header.flags = r.u8();
  header.request_id = r.u64();
  header.payload_size = r.u32();
  if (header.payload_size > kMaxPayload) {
    throw WireError("wire: payload exceeds size cap");
  }
  return header;
}

WireRequest decode_request(const FrameHeader& header,
                           std::string_view payload) {
  if (header.type != MsgType::kRequest) {
    throw WireError("wire: frame is not a request");
  }
  if ((header.flags & kFlagPriorityLow) && (header.flags & kFlagPriorityHigh)) {
    throw WireError("wire: contradictory priority flags");
  }
  WireRequest out;
  out.request_id = header.request_id;
  out.priority = (header.flags & kFlagPriorityLow)    ? Priority::kLow
                 : (header.flags & kFlagPriorityHigh) ? Priority::kHigh
                                                      : Priority::kNormal;
  out.strict_deadline = (header.flags & kFlagStrictDeadline) != 0;

  Reader r(payload);
  const std::uint8_t solver = r.u8();
  if (solver > kMaxSolverKind) throw WireError("wire: unknown solver kind");
  out.request.solver = static_cast<service::SolverKind>(solver);
  out.request.id = header.request_id;
  service::SolveOptions& opt = out.request.options;
  opt.use_cache = r.u8() != 0;
  opt.seed = r.u64();
  opt.deadline_seconds = r.f64();
  opt.target_cost = r.f64();
  opt.max_iterations = r.u64();
  out.by_fingerprint = r.u8() != 0;
  if (out.by_fingerprint) {
    out.instance_fingerprint = r.u64();
  } else {
    out.request.instance =
        std::make_shared<const workload::AnyInstance>(read_instance(r));
  }
  r.expect_done();
  return out;
}

WireResponse decode_response(const FrameHeader& header,
                             std::string_view payload) {
  if (header.type != MsgType::kResponse) {
    throw WireError("wire: frame is not a response");
  }
  WireResponse out;
  out.request_id = header.request_id;
  Reader r(payload);
  const std::uint8_t status = r.u8();
  if (status > kMaxStatus) throw WireError("wire: unknown status");
  out.status = static_cast<Status>(status);
  service::MapResponse& resp = out.response;
  resp.id = header.request_id;
  const std::uint8_t served_by = r.u8();
  if (served_by > kMaxServedBy) throw WireError("wire: unknown served_by");
  resp.served_by = static_cast<service::ServedBy>(served_by);
  const std::uint8_t solver = r.u8();
  if (solver > kMaxSolverKind) throw WireError("wire: unknown solver kind");
  resp.solver = static_cast<service::SolverKind>(solver);
  resp.deadline_missed = r.u8() != 0;
  resp.cost = r.f64();
  resp.iterations = r.u64();
  resp.fingerprint = r.u64();
  resp.queue_seconds = r.f64();
  resp.solve_seconds = r.f64();
  resp.total_seconds = r.f64();
  if (out.status == Status::kOk) {
    const std::uint32_t n = r.u32();
    if (n > kMaxWireNodes || r.remaining() / 4 < n) {
      throw WireError("wire: mapping size out of range");
    }
    std::vector<graph::NodeId> assign(n);
    for (graph::NodeId& id : assign) id = r.u32();
    resp.mapping = sim::Mapping(std::move(assign));
  } else {
    out.error = r.str();
  }
  r.expect_done();
  return out;
}

}  // namespace match::net
