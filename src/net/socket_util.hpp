#pragma once

// Shared POSIX socket plumbing for every listener in the library — the
// blocking metrics exposer (obs::HttpExposer) and the non-blocking
// request front end (net::MatchServer) both build on these helpers, so
// bind/listen/ephemeral-port discipline, SO_REUSEADDR, and EINTR
// handling live in exactly one place.
//
// Everything here is dependency-free POSIX: no third-party networking,
// same rule as the rest of the repo.  All helpers are safe to call from
// any thread; none of them own background threads.

#include <cstdint>
#include <string>

namespace match::net {

/// EINTR-safe close that also resets the fd to -1 (idempotent: closing
/// an already-closed slot is a no-op).  Never throws.
void close_fd(int& fd) noexcept;

/// Toggles O_NONBLOCK on `fd`.  Returns false (with errno set) on
/// failure instead of throwing: callers on teardown paths must not
/// throw.
bool set_nonblocking(int fd, bool enabled) noexcept;

struct ListenerOptions {
  /// Loopback by default: both current listeners are operator/bench
  /// surfaces, not public ones.  Use "0.0.0.0" to accept remote peers.
  std::string bind_address = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = ephemeral; see `bound_port`
  int backlog = 128;
  /// SO_REUSEADDR so a restarted listener can rebind its old port while
  /// the previous incarnation's sockets linger in TIME_WAIT.
  bool reuse_addr = true;
  bool non_blocking = false;  ///< listener fd in O_NONBLOCK mode
};

/// Creates, binds, and starts listening on a TCP socket.  Returns the
/// listening fd; throws `std::runtime_error` (with the strerror text)
/// on any failure, leaking nothing.
int open_listener(const ListenerOptions& options);

/// The port a socket is actually bound to (resolves ephemeral binds).
/// Throws `std::runtime_error` when getsockname fails.
std::uint16_t bound_port(int fd);

/// Blocking accept that retries EINTR.  Returns the client fd, or -1
/// for any other failure (caller inspects errno: a closed listener
/// returns EBADF/EINVAL, resource exhaustion EMFILE, ...).
int accept_retry(int listen_fd) noexcept;

/// Connects a blocking TCP socket to `address:port`, retrying EINTR.
/// Throws `std::runtime_error` on failure.
int connect_to(const std::string& address, std::uint16_t port);

/// Sends the whole buffer, retrying EINTR and short writes
/// (MSG_NOSIGNAL, so a dead peer yields EPIPE instead of killing the
/// process).  Returns false when the peer went away mid-write.
bool send_all(int fd, const void* data, std::size_t size) noexcept;

/// Receives exactly `size` bytes, retrying EINTR and short reads.
/// Returns false on EOF or error before the buffer fills.
bool recv_all(int fd, void* data, std::size_t size) noexcept;

/// A self-wakeup handle for event loops: `notify()` from any thread
/// makes `fd()` readable; the loop thread calls `drain()` to reset it.
/// Backed by eventfd(2) on Linux and a non-blocking pipe elsewhere.
class Wakeup {
 public:
  /// Throws `std::runtime_error` when the kernel refuses the fds.
  Wakeup();
  ~Wakeup();

  Wakeup(const Wakeup&) = delete;
  Wakeup& operator=(const Wakeup&) = delete;

  /// The fd to register for readability in an event loop.
  int fd() const noexcept { return read_fd_; }

  /// Wakes the loop.  Async-signal-unsafe but thread-safe; coalesces —
  /// any number of notifies before a drain produce one readable state.
  void notify() noexcept;

  /// Consumes all pending notifications (loop thread only).
  void drain() noexcept;

 private:
  int read_fd_ = -1;
  int write_fd_ = -1;  ///< == read_fd_ in eventfd mode
};

}  // namespace match::net
