#include "net/event_loop.hpp"

#include <unistd.h>

#ifdef __linux__
#include <sys/epoll.h>
#endif

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "net/socket_util.hpp"

namespace match::net {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::runtime_error(std::string(what) + " (" + std::strerror(errno) +
                           ")");
}

#ifdef __linux__
std::uint32_t epoll_mask(bool want_read, bool want_write) {
  std::uint32_t events = 0;
  if (want_read) events |= EPOLLIN;
  if (want_write) events |= EPOLLOUT;
  return events;
}
#endif

short poll_mask(bool want_read, bool want_write) {
  short events = 0;
  if (want_read) events |= POLLIN;
  if (want_write) events |= POLLOUT;
  return events;
}

}  // namespace

EventLoop::Backend EventLoop::default_backend() noexcept {
#ifdef __linux__
  return Backend::kEpoll;
#else
  return Backend::kPoll;
#endif
}

EventLoop::EventLoop(Backend backend) : backend_(backend) {
  if (backend_ == Backend::kEpoll) {
#ifdef __linux__
    epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
    if (epoll_fd_ < 0) throw_errno("epoll_create1() failed");
#else
    throw std::runtime_error("EventLoop: epoll backend requires Linux");
#endif
  }
}

EventLoop::~EventLoop() { close_fd(epoll_fd_); }

void EventLoop::add(int fd, bool want_read, bool want_write) {
  if (!interest_.emplace(fd, Interest{want_read, want_write}).second) {
    throw std::runtime_error("EventLoop::add: fd already registered");
  }
#ifdef __linux__
  if (backend_ == Backend::kEpoll) {
    epoll_event ev{};
    ev.events = epoll_mask(want_read, want_write);
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
      interest_.erase(fd);
      throw_errno("epoll_ctl(ADD) failed");
    }
  }
#endif
  pollfds_dirty_ = true;
}

void EventLoop::modify(int fd, bool want_read, bool want_write) {
  const auto it = interest_.find(fd);
  if (it == interest_.end()) {
    throw std::runtime_error("EventLoop::modify: fd not registered");
  }
  if (it->second.read == want_read && it->second.write == want_write) return;
  it->second = Interest{want_read, want_write};
#ifdef __linux__
  if (backend_ == Backend::kEpoll) {
    epoll_event ev{};
    ev.events = epoll_mask(want_read, want_write);
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) < 0) {
      throw_errno("epoll_ctl(MOD) failed");
    }
  }
#endif
  pollfds_dirty_ = true;
}

void EventLoop::remove(int fd) noexcept {
  if (interest_.erase(fd) == 0) return;
#ifdef __linux__
  if (backend_ == Backend::kEpoll) {
    // Fails with EBADF when the fd was closed first; the kernel already
    // dropped it from the set, so the failure is the desired state.
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  }
#endif
  pollfds_dirty_ = true;
}

std::size_t EventLoop::wait(int timeout_ms, std::vector<Ready>& out) {
  out.clear();
#ifdef __linux__
  if (backend_ == Backend::kEpoll) {
    epoll_event events[64];
    const int n = ::epoll_wait(epoll_fd_, events, 64, timeout_ms);
    if (n < 0) {
      if (errno == EINTR) return 0;
      throw_errno("epoll_wait() failed");
    }
    out.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      Ready ready;
      ready.fd = events[i].data.fd;
      ready.error = (events[i].events & (EPOLLERR | EPOLLHUP)) != 0;
      ready.readable = ready.error || (events[i].events & EPOLLIN) != 0;
      ready.writable = (events[i].events & EPOLLOUT) != 0;
      out.push_back(ready);
    }
    return out.size();
  }
#endif

  if (pollfds_dirty_) {
    pollfds_.clear();
    pollfds_.reserve(interest_.size());
    for (const auto& [fd, want] : interest_) {
      pollfds_.push_back({fd, poll_mask(want.read, want.write), 0});
    }
    pollfds_dirty_ = false;
  } else {
    for (pollfd& p : pollfds_) p.revents = 0;
  }
  const int n = ::poll(pollfds_.data(),
                       static_cast<nfds_t>(pollfds_.size()), timeout_ms);
  if (n < 0) {
    if (errno == EINTR) return 0;
    throw_errno("poll() failed");
  }
  for (const pollfd& p : pollfds_) {
    if (p.revents == 0) continue;
    Ready ready;
    ready.fd = p.fd;
    ready.error = (p.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0;
    ready.readable = ready.error || (p.revents & POLLIN) != 0;
    ready.writable = (p.revents & POLLOUT) != 0;
    out.push_back(ready);
  }
  return out.size();
}

}  // namespace match::net
