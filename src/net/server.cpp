#include "net/server.hpp"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <utility>

#include "obs/spans.hpp"
#include "service/instance_cache.hpp"

namespace match::net {

namespace {

using service::Clock;

double seconds_between(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

/// Housekeeping granularity: idle sweeps and outbox drains happen at
/// least this often even with no socket activity.
constexpr int kTickMs = 50;

constexpr std::size_t kRecvChunk = 64 * 1024;

/// Compact the input buffer once the consumed prefix crosses this, so
/// frame reassembly stays O(bytes) instead of O(bytes²).
constexpr std::size_t kCompactThreshold = 64 * 1024;

const char* event_action(Status status, bool deadline_missed) {
  if (status == Status::kOk) {
    return deadline_missed ? "net.served_deadline_missed" : "net.served";
  }
  switch (status) {
    case Status::kShed:
      return "net.shed";
    case Status::kRejectedDeadline:
      return "net.rejected_deadline";
    case Status::kBadRequest:
      return "net.bad_request";
    case Status::kUnknownInstance:
      return "net.unknown_instance";
    case Status::kServerError:
      return "net.server_error";
    case Status::kOk:
      break;
  }
  return "net.served";
}

const char* status_counter(Status status) {
  switch (status) {
    case Status::kOk:
      return "net.served";
    case Status::kShed:
      return "net.shed";
    case Status::kRejectedDeadline:
      return "net.rejected_deadline";
    case Status::kBadRequest:
      return "net.bad_request";
    case Status::kUnknownInstance:
      return "net.unknown_instance";
    case Status::kServerError:
      return "net.server_error";
  }
  return "net.served";
}

/// Admission-span outcome tag for a refused request.
const char* admission_outcome(Status status) {
  switch (status) {
    case Status::kShed:
      return "shed";
    case Status::kRejectedDeadline:
      return "rejected_deadline";
    case Status::kBadRequest:
      return "bad_request";
    case Status::kUnknownInstance:
      return "unknown_instance";
    case Status::kServerError:
    case Status::kOk:
      break;
  }
  return "admitted";
}

/// Gauge sampling period for the reactor saturation telemetry.
constexpr double kGaugeSampleSeconds = 0.25;

}  // namespace

MatchServer::MatchServer(service::MappingService& service, ServerConfig config)
    : service_(service),
      config_(std::move(config)),
      metrics_(service.metrics()),
      loop_(config_.backend) {
  ListenerOptions listener;
  listener.bind_address = config_.bind_address;
  listener.port = config_.port;
  listener.backlog = config_.backlog;
  listener.non_blocking = true;
  listen_fd_ = open_listener(listener);
  try {
    port_ = bound_port(listen_fd_);
    loop_.add(listen_fd_, /*want_read=*/true, /*want_write=*/false);
    loop_.add(wakeup_.fd(), /*want_read=*/true, /*want_write=*/false);
  } catch (...) {
    close_fd(listen_fd_);
    throw;
  }
  thread_ = std::thread([this] { run(); });
}

MatchServer::~MatchServer() { stop(); }

void MatchServer::stop() {
  if (stopped_) return;
  stopping_.store(true, std::memory_order_relaxed);
  wakeup_.notify();
  if (thread_.joinable()) thread_.join();
  // Outstanding admitted requests keep their completion callbacks alive
  // inside the service; wait them out so no callback can touch a dead
  // server, then fold their terminal counters in (undelivered — every
  // connection is going away — but accounted, so
  // served+shed+rejected == offered survives a mid-flight stop).
  service_.drain();
  drain_outbox(/*deliver=*/false);
  for (auto& [fd, conn] : conns_) {
    int client = conn.fd;
    close_fd(client);
    metrics_.counter("net.connections_closed").add();
  }
  conns_.clear();
  conn_fd_.clear();
  live_connections_.store(0, std::memory_order_relaxed);
  close_fd(listen_fd_);
  stopped_ = true;
}

ServerCounters MatchServer::counters() const {
  const obs::MetricsRegistry& m = metrics_;
  ServerCounters c;
  c.requests = m.counter_value("net.requests");
  c.served = m.counter_value("net.served");
  c.served_deadline_missed = m.counter_value("net.served_deadline_missed");
  c.shed = m.counter_value("net.shed");
  c.rejected_deadline = m.counter_value("net.rejected_deadline");
  c.bad_request = m.counter_value("net.bad_request");
  c.unknown_instance = m.counter_value("net.unknown_instance");
  c.server_error = m.counter_value("net.server_error");
  return c;
}

std::size_t MatchServer::connections() const {
  return live_connections_.load(std::memory_order_relaxed);
}

void MatchServer::run() {
  std::vector<EventLoop::Ready> ready;
  // Saturation telemetry: resolve the metric references once — the loop
  // body must not pay a registry lookup per iteration.
  obs::Histogram& iteration_hist =
      metrics_.histogram("net.reactor.iteration_seconds");
  obs::Gauge& pending_gauge = metrics_.gauge("net.reactor.pending_requests");
  obs::Gauge& connections_gauge = metrics_.gauge("net.reactor.connections");
  obs::Gauge& queue_depth_gauge = metrics_.gauge("service.queue_depth");
  obs::Gauge& in_flight_gauge = metrics_.gauge("service.in_flight");
  Clock::time_point last_sample = Clock::now();
  while (!stopping_.load(std::memory_order_relaxed)) {
    try {
      loop_.wait(kTickMs, ready);
      const Clock::time_point iteration_start = Clock::now();
      // Ready entries were collected at wait() time: a connection
      // accepted later in this iteration can reuse the fd of one that
      // drain_outbox or an earlier event closed, and a stale entry for
      // the old fd must not be applied to the newcomer.  Ids are
      // monotonic, so anything at or past this limit postdates the
      // batch; its real readiness is re-reported on the next wait().
      const std::uint64_t batch_id_limit = next_conn_id_;
      drain_outbox(/*deliver=*/true);
      for (const EventLoop::Ready& ev : ready) {
        if (ev.fd == listen_fd_) {
          accept_new();
          continue;
        }
        if (ev.fd == wakeup_.fd()) {
          wakeup_.drain();
          continue;  // outbox already drained above
        }
        const auto it = conns_.find(ev.fd);
        if (it == conns_.end()) continue;  // closed earlier this iteration
        if (it->second.id >= batch_id_limit) continue;  // fd reused
        if (ev.error) {
          close_connection(it->second, "net.connections_closed");
          continue;
        }
        if (ev.readable && !handle_readable(ev.fd)) continue;
        if (ev.writable) {
          const auto again = conns_.find(ev.fd);
          if (again != conns_.end() && flush_writes(again->second)) {
            maybe_close_half_closed(ev.fd);
          }
        }
      }
      sweep_idle();
      // Iteration latency excludes the wait itself: a loop that sleeps
      // 50 ms idle is healthy; one that *works* 50 ms per wakeup is
      // saturated.
      const Clock::time_point iteration_end = Clock::now();
      iteration_hist.observe(seconds_between(iteration_start, iteration_end));
      if (seconds_between(last_sample, iteration_end) >= kGaugeSampleSeconds) {
        last_sample = iteration_end;
        pending_gauge.set(static_cast<double>(pending_));
        connections_gauge.set(static_cast<double>(conns_.size()));
        queue_depth_gauge.set(static_cast<double>(service_.queue_depth()));
        in_flight_gauge.set(static_cast<double>(service_.in_flight()));
      }
    } catch (const std::exception&) {
      // A transient kernel refusal (epoll_ctl/poll ENOMEM, ...) must
      // not unwind the reactor thread — an escaped exception would
      // std::terminate the whole process.  Count it and keep serving;
      // level-triggered readiness re-reports whatever the aborted
      // iteration left undone.
      metrics_.counter("net.reactor_errors").add();
    }
  }
}

void MatchServer::accept_new() {
  for (;;) {
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) {
      if (errno == EINTR) continue;
      // EAGAIN: drained.  Anything else (EMFILE, ...) is transient —
      // the listener stays registered and we retry on the next tick.
      return;
    }
    if (conns_.size() >= config_.max_connections) {
      int fd = client;
      close_fd(fd);
      metrics_.counter("net.connections_rejected").add();
      continue;
    }
    if (!set_nonblocking(client, true)) {
      int fd = client;
      close_fd(fd);
      continue;
    }
    const int one = 1;
    ::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    Connection conn;
    conn.id = next_conn_id_++;
    conn.fd = client;
    conn.last_activity = Clock::now();
    try {
      loop_.add(client, /*want_read=*/true, /*want_write=*/false);
    } catch (...) {
      int fd = client;
      close_fd(fd);
      continue;
    }
    conn_fd_.emplace(conn.id, client);
    conns_.emplace(client, std::move(conn));
    metrics_.counter("net.connections_accepted").add();
    live_connections_.store(conns_.size(), std::memory_order_relaxed);
  }
}

void MatchServer::close_connection(Connection& conn, const char* counter) {
  const int fd = conn.fd;
  const std::uint64_t id = conn.id;
  loop_.remove(fd);
  int closing = fd;
  close_fd(closing);
  conn_fd_.erase(id);
  conns_.erase(fd);  // invalidates `conn`
  metrics_.counter(counter).add();
  if (counter != std::string_view("net.connections_closed")) {
    metrics_.counter("net.connections_closed").add();
  }
  live_connections_.store(conns_.size(), std::memory_order_relaxed);
}

bool MatchServer::handle_readable(int fd) {
  const auto it = conns_.find(fd);
  if (it == conns_.end()) return false;
  // Accept-span origin for every frame decoded from this read burst
  // (pipelined frames share it: each span reads "readiness → my decode
  // started", which for frame N includes its wait behind frames 1..N-1).
  if (tracing()) read_started_ = Clock::now();
  Connection& conn = it->second;  // stable: nothing closes in the recv loop
  bool eof = false;
  char buf[kRecvChunk];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n == 0) {
      eof = true;  // half-close: parse what we have, answer it, then close
      break;
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      close_connection(conn, "net.connections_closed");
      return false;
    }
    conn.in.append(buf, static_cast<std::size_t>(n));
    conn.last_activity = Clock::now();
    if (static_cast<std::size_t>(n) < sizeof(buf)) break;
  }
  if (!parse_frames(fd)) {
    metrics_.counter("net.protocol_errors").add();
    const auto again = conns_.find(fd);
    if (again != conns_.end()) {
      close_connection(again->second, "net.connections_closed");
    }
    return false;
  }
  const auto again = conns_.find(fd);
  if (again == conns_.end()) return false;  // closed while answering
  if (eof) {
    Connection& half = again->second;
    half.read_closed = true;
    half.last_activity = Clock::now();
    loop_.modify(fd, /*want_read=*/false, half.want_write);
    maybe_close_half_closed(fd);
    return conns_.find(fd) != conns_.end();
  }
  return true;
}

bool MatchServer::parse_frames(int fd) {
  // Re-look the connection up every frame: handling a request can close
  // it (slow-client eviction on the write path), which invalidates any
  // held reference.
  for (;;) {
    const auto it = conns_.find(fd);
    if (it == conns_.end()) return true;
    Connection& conn = it->second;
    const std::string_view buffered =
        std::string_view(conn.in).substr(conn.in_consumed);
    if (buffered.size() < kHeaderSize) break;
    FrameHeader header;
    try {
      header = decode_header(buffered);
    } catch (const WireError&) {
      return false;  // bad magic/version/size: the stream is unsynced
    }
    if (header.type != MsgType::kRequest) return false;
    const std::size_t frame_size = kHeaderSize + header.payload_size;
    if (buffered.size() < frame_size) break;  // wait for the rest
    handle_request(conn, header,
                   buffered.substr(kHeaderSize, header.payload_size));
    const auto after = conns_.find(fd);
    if (after == conns_.end()) return true;
    after->second.in_consumed += frame_size;
  }
  const auto it = conns_.find(fd);
  if (it != conns_.end()) {
    Connection& conn = it->second;
    if (conn.in_consumed == conn.in.size()) {
      conn.in.clear();
      conn.in_consumed = 0;
    } else if (conn.in_consumed > kCompactThreshold) {
      conn.in.erase(0, conn.in_consumed);
      conn.in_consumed = 0;
    }
  }
  return true;
}

void MatchServer::maybe_close_half_closed(int fd) {
  const auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  Connection& conn = it->second;
  if (conn.read_closed && conn.inflight == 0 &&
      conn.out_written >= conn.out.size()) {
    close_connection(conn, "net.connections_closed");
  }
}

std::size_t MatchServer::shed_threshold(Priority priority) const {
  const AdmissionConfig& adm = config_.admission;
  const double cap = static_cast<double>(adm.max_pending);
  switch (priority) {
    case Priority::kLow:
      return static_cast<std::size_t>(adm.low_watermark * cap);
    case Priority::kNormal:
      return static_cast<std::size_t>(adm.normal_watermark * cap);
    case Priority::kHigh:
      break;
  }
  return adm.max_pending;
}

void MatchServer::finish(Status status, std::uint64_t request_id,
                         service::SolverKind solver,
                         Clock::time_point arrived_at, bool deadline_missed) {
  metrics_.counter(status_counter(status)).add();
  if (status == Status::kOk && deadline_missed) {
    metrics_.counter("net.served_deadline_missed").add();
  }
  const double seconds = seconds_between(arrived_at, Clock::now());
  metrics_.histogram("net.request_seconds").observe(seconds);
  if (config_.sink != nullptr) {
    config_.sink->emit(obs::Event::service_event(
        request_id, service::to_string(solver),
        event_action(status, deadline_missed), seconds));
  }
}

void MatchServer::seal_timeline(std::shared_ptr<obs::SpanTimeline> timeline,
                                Status status, bool deadline_missed) {
  if (timeline == nullptr || config_.recorder == nullptr) return;
  timeline->finalize(event_action(status, deadline_missed), Clock::now());
  config_.recorder->record(std::move(*timeline));
}

void MatchServer::handle_request(Connection& conn, const FrameHeader& header,
                                 std::string_view payload) {
  metrics_.counter("net.requests").add();
  const Clock::time_point arrived_at = Clock::now();

  // Span timeline for this request.  Stamping discipline: the reactor
  // stamps accept/decode/admission here, hands ownership to the worker
  // through `request.timeline` + the callback closure, and stamps
  // encode/write_flush in respond() when the completion comes back.
  // Refusals are stamped and sealed entirely on this thread.
  std::shared_ptr<obs::SpanTimeline> tl;
  if (tracing()) {
    tl = std::make_shared<obs::SpanTimeline>();
    tl->start(header.request_id, read_started_);
    tl->stamp(obs::SpanStage::kAccept, read_started_, arrived_at);
  }

  WireResponse reply;
  reply.request_id = header.request_id;

  WireRequest request;
  try {
    request = decode_request(header, payload);
  } catch (const WireError& e) {
    reply.status = Status::kBadRequest;
    reply.error = e.what();
    if (tl) {
      tl->stamp(obs::SpanStage::kDecode, arrived_at, Clock::now(),
                "bad_request");
    }
    finish(reply.status, header.request_id, service::SolverKind::kMatch,
           arrived_at, false);
    respond(conn, reply, tl.get());
    seal_timeline(std::move(tl), reply.status, false);
    return;
  } catch (const std::exception&) {
    // Defense in depth: a decoder allocation failure (bad_alloc on a
    // hostile claimed size the bounds missed) is an answered bad
    // request, not an exception unwinding the reactor thread.
    reply.status = Status::kBadRequest;
    reply.error = "request payload could not be decoded";
    if (tl) {
      tl->stamp(obs::SpanStage::kDecode, arrived_at, Clock::now(),
                "bad_request");
    }
    finish(reply.status, header.request_id, service::SolverKind::kMatch,
           arrived_at, false);
    respond(conn, reply, tl.get());
    seal_timeline(std::move(tl), reply.status, false);
    return;
  }
  reply.response.solver = request.request.solver;

  Clock::time_point decoded_at = arrived_at;
  if (tl) {
    decoded_at = Clock::now();
    tl->stamp(obs::SpanStage::kDecode, arrived_at, decoded_at);
  }

  const auto refuse = [&](Status status, std::string error) {
    reply.status = status;
    reply.error = std::move(error);
    // Every refusal is an admission decision; the span covers decode
    // end → the decision.  When admission was already stamped
    // "admitted" (the try_submit race below lost), correct the tag
    // instead of stamping twice.
    if (tl) {
      if (tl->find(obs::SpanStage::kAdmission) == nullptr) {
        tl->stamp(obs::SpanStage::kAdmission, decoded_at, Clock::now(),
                  admission_outcome(status));
      } else {
        tl->set_outcome(obs::SpanStage::kAdmission,
                        admission_outcome(status));
      }
    }
    finish(status, request.request_id, request.request.solver, arrived_at,
           false);
    respond(conn, reply, tl.get());
    seal_timeline(std::move(tl), status, false);
  };

  // ---- Instance resolution (inline registers, fingerprint looks up). --
  if (request.by_fingerprint) {
    const auto it = instances_.find(request.instance_fingerprint);
    if (it == instances_.end()) {
      refuse(Status::kUnknownInstance,
             "no instance registered under that fingerprint; resend inline");
      return;
    }
    request.request.instance = it->second;
  } else {
    const std::uint64_t fp =
        service::fingerprint_instance(*request.request.instance);
    if (instances_.emplace(fp, request.request.instance).second) {
      instance_order_.push_back(fp);
      while (instances_.size() > config_.max_instances) {
        instances_.erase(instance_order_.front());
        instance_order_.pop_front();
      }
    }
  }

  if (!service_.registry().contains(request.request.solver)) {
    refuse(Status::kBadRequest, "no solver registered for that kind");
    return;
  }
  // Workload-kind compatibility: a TIG solver must not receive a DAG (or
  // vice versa).  Checked here — not by letting try_submit throw — so
  // the refusal is an answered kBadRequest, not a reactor exception.
  if (!service_.registry()
           .get(request.request.solver)
           .supports(request.request.instance->kind())) {
    refuse(Status::kBadRequest,
           std::string("solver does not support ") +
               workload::workload_kind_name(
                   request.request.instance->kind()) +
               " workloads");
    return;
  }

  // ---- Deadline-aware early rejection. --------------------------------
  const double deadline = request.request.options.deadline_seconds;
  if (request.strict_deadline && deadline <= 0.0) {
    refuse(Status::kRejectedDeadline, "deadline expired before admission");
    return;
  }
  if (config_.admission.deadline_early_reject && deadline > 0.0) {
    const double projected = service_.projected_wait_seconds();
    metrics_.histogram("net.projected_wait_seconds").observe(projected);
    if (projected >= deadline) {
      refuse(Status::kRejectedDeadline,
             "projected queue wait exceeds the deadline");
      return;
    }
  }

  // ---- Load shedding: bounded pending set, low priority first. --------
  if (pending_ >= shed_threshold(request.priority)) {
    refuse(Status::kShed, "over the admission watermark for this priority");
    return;
  }

  const std::uint64_t conn_id = conn.id;
  // Admission must be stamped BEFORE try_submit: on success the worker
  // owns the timeline and the reactor may not touch it until the
  // completion crosses back through the outbox.  (On failure the
  // service destroys the Pending — and with it the callback's copy of
  // the shared_ptr — without ever running it, so `refuse` correcting
  // the tag above is safe.)
  if (tl) {
    tl->stamp(obs::SpanStage::kAdmission, decoded_at, Clock::now(),
              "admitted");
    request.request.timeline = tl.get();
  }
  const bool admitted = service_.try_submit(
      std::move(request.request),
      [this, conn_id, arrived_at, tl](service::MapResponse&& response) {
        Completed done;
        done.conn_id = conn_id;
        done.arrived_at = arrived_at;
        done.timeline = tl;
        done.response.request_id = response.id;
        done.response.status = Status::kOk;  // re-derived on the reactor
        done.response.response = std::move(response);
        {
          std::lock_guard<std::mutex> lock(outbox_mutex_);
          outbox_.push_back(std::move(done));
        }
        wakeup_.notify();
      });
  if (!admitted) {
    refuse(Status::kShed, "service queue full");
    return;
  }
  ++pending_;
  ++conn.inflight;
}

void MatchServer::drain_outbox(bool deliver) {
  std::vector<Completed> batch;
  {
    std::lock_guard<std::mutex> lock(outbox_mutex_);
    batch.swap(outbox_);
  }
  for (Completed& done : batch) {
    if (pending_ > 0) --pending_;
    // A solve that failed after admission comes back with an empty
    // mapping (MappingService callback contract): classify, then count.
    WireResponse& reply = done.response;
    if (reply.response.mapping.num_tasks() == 0) {
      reply.status = Status::kServerError;
      reply.error = "solver failed after admission";
    }
    // Book the decision first — by the time the client holds its
    // answer the counters must already tell the story — then deliver,
    // then seal the timeline so the encode/write_flush spans are on it.
    finish(reply.status, reply.request_id, reply.response.solver,
           done.arrived_at, reply.response.deadline_missed);
    if (deliver) {
      const auto fd_it = conn_fd_.find(done.conn_id);
      if (fd_it != conn_fd_.end()) {  // else: client already went away
        const int fd = fd_it->second;
        const auto conn_it = conns_.find(fd);
        if (conn_it != conns_.end()) {
          Connection& conn = conn_it->second;
          if (conn.inflight > 0) --conn.inflight;
          // May close on a write failure — `conn` is dead afterwards.
          respond(conn, reply, done.timeline.get());
          maybe_close_half_closed(fd);
        }
      }
    }
    seal_timeline(std::move(done.timeline), reply.status,
                  reply.response.deadline_missed);
  }
}

void MatchServer::respond(Connection& conn, const WireResponse& response,
                          obs::SpanTimeline* timeline) {
  if (timeline == nullptr) {
    conn.out += encode_response(response);
    if (conn.out.size() - conn.out_written > config_.max_write_buffer) {
      close_connection(conn, "net.slow_client_closed");
      return;
    }
    flush_writes(conn);
    return;
  }

  const Clock::time_point encode_start = Clock::now();
  conn.out += encode_response(response);
  const Clock::time_point encode_end = Clock::now();
  timeline->stamp(obs::SpanStage::kEncode, encode_start, encode_end);
  if (conn.out.size() - conn.out_written > config_.max_write_buffer) {
    close_connection(conn, "net.slow_client_closed");  // kills `conn`
    timeline->stamp(obs::SpanStage::kWriteFlush, encode_end, encode_end,
                    "slow_client_closed");
    return;
  }
  const bool alive = flush_writes(conn);  // false: `conn` is dead
  const Clock::time_point flush_end = Clock::now();
  const char* outcome = "flushed";
  if (!alive) {
    outcome = "connection_closed";
  } else if (conn.out_written < conn.out.size()) {
    outcome = "partial";  // EAGAIN: the rest goes out on writability
  }
  timeline->stamp(obs::SpanStage::kWriteFlush, encode_end, flush_end,
                  outcome);
}

bool MatchServer::flush_writes(Connection& conn) {
  while (conn.out_written < conn.out.size()) {
    const ssize_t n =
        ::send(conn.fd, conn.out.data() + conn.out_written,
               conn.out.size() - conn.out_written, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        if (!conn.want_write) {
          conn.want_write = true;
          loop_.modify(conn.fd, !conn.read_closed, /*want_write=*/true);
        }
        return true;
      }
      close_connection(conn, "net.connections_closed");
      return false;
    }
    conn.out_written += static_cast<std::size_t>(n);
  }
  conn.out.clear();
  conn.out_written = 0;
  conn.last_activity = Clock::now();
  if (conn.want_write) {
    conn.want_write = false;
    loop_.modify(conn.fd, !conn.read_closed, /*want_write=*/false);
  }
  return true;
}

void MatchServer::sweep_idle() {
  if (config_.idle_timeout_seconds <= 0.0) return;
  const Clock::time_point now = Clock::now();
  std::vector<int> stale;
  for (const auto& [fd, conn] : conns_) {
    // A connection waiting on an admitted solve is not idle: closing
    // it would silently drop the response the client is quietly
    // waiting for.  (The half-close path waits for inflight == 0 for
    // the same reason; completion delivery refreshes last_activity.)
    if (conn.inflight > 0) continue;
    if (seconds_between(conn.last_activity, now) >
        config_.idle_timeout_seconds) {
      stale.push_back(fd);
    }
  }
  for (int fd : stale) {
    const auto it = conns_.find(fd);
    if (it != conns_.end()) close_connection(it->second, "net.idle_closed");
  }
}

}  // namespace match::net
