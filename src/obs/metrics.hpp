#pragma once

// Lock-sharded metrics registry: monotonic counters, gauges, and
// fixed-bucket latency histograms with p50/p90/p99 extraction.
//
// Design constraints, in order:
//   1. Hot-path updates (Counter::add, Histogram::observe) are wait-free
//      relaxed atomics — no locks, no allocation, safe from pool threads.
//   2. Registry lookups (`counter(name)` etc.) take one shard mutex and
//      may allocate; the returned references are stable for the life of
//      the registry, so hot loops resolve names once up front.
//   3. Snapshots are approximate under concurrent writers (per-metric
//      values are exact; cross-metric consistency is not promised).
//
// Histograms use ~48 fixed geometric buckets from 1 µs doubling upward,
// which spans sub-microsecond phases to multi-hour runs with ≤ ×2
// quantile error — plenty for p99 latency attribution.  Naming
// conventions live in docs/OBSERVABILITY.md.

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace match::obs {

/// Monotonically increasing count of events.
class Counter {
 public:
  void add(std::uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }

  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// A point-in-time double (queue depth, cache fill, γ of a live run).
/// Stored as bit-cast uint64 so C++17-era toolchains without
/// atomic<double> lock-free support still get a lock-free gauge.
class Gauge {
 public:
  void set(double value) {
    bits_.store(std::bit_cast<std::uint64_t>(value), std::memory_order_relaxed);
  }

  double value() const {
    return std::bit_cast<double>(bits_.load(std::memory_order_relaxed));
  }

 private:
  std::atomic<std::uint64_t> bits_{std::bit_cast<std::uint64_t>(0.0)};
};

struct HistogramStats {
  std::uint64_t count = 0;
  double sum = 0.0;
  double mean = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  /// Per-bucket observation counts (bucket i covers
  /// (Histogram::bucket_upper(i-1), Histogram::bucket_upper(i)]).  Empty
  /// only for a default-constructed stats object; `stats()` always fills
  /// all `Histogram::kBuckets` entries.  `count` equals the sum of this
  /// vector and the quantiles are computed from the same single read of
  /// the buckets, so one snapshot is internally consistent even under
  /// concurrent writers.
  std::vector<std::uint64_t> buckets;
};

/// Fixed-bucket geometric histogram tuned for seconds-valued latencies.
/// Bucket i covers (upper(i-1), upper(i)] with upper(i) = 1e-6 * 2^i;
/// the final bucket is a +inf catch-all.  `quantile` reports the upper
/// bound of the bucket containing the q-th observation.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 48;

  Histogram();

  void observe(double value);

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const;

  /// q in [0, 1].  Returns 0 when empty.
  double quantile(double q) const;

  HistogramStats stats() const;

  /// Upper bound of bucket `i` (+inf for the last).
  static double bucket_upper(std::size_t i);

 private:
  std::size_t bucket_index(double value) const;

  std::vector<std::atomic<std::uint64_t>> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_bits_{0};  ///< CAS-accumulated double
};

/// Point-in-time copy of every registered metric.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramStats> histograms;
};

/// Name → metric map, sharded by name hash so unrelated lookups never
/// contend.  Metrics are created on first use and never removed;
/// returned references stay valid for the registry's lifetime.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Value of a counter, 0 if it was never touched (const: never creates).
  std::uint64_t counter_value(std::string_view name) const;

  /// The histogram, or null if it was never touched (const: never
  /// creates).  The pointer stays valid for the registry's lifetime —
  /// admission control resolves `service.*_seconds` once and then reads
  /// only atomics.
  const Histogram* find_histogram(std::string_view name) const;

  MetricsSnapshot snapshot() const;

 private:
  static constexpr std::size_t kShards = 16;

  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<std::string, std::unique_ptr<Counter>> counters;
    std::unordered_map<std::string, std::unique_ptr<Gauge>> gauges;
    std::unordered_map<std::string, std::unique_ptr<Histogram>> histograms;
  };

  Shard& shard_for(std::string_view name);
  const Shard& shard_for(std::string_view name) const;

  Shard shards_[kShards];
};

}  // namespace match::obs
