#pragma once

// Prometheus text-exposition rendering of a `MetricsSnapshot`.
//
// Maps the registry's dot-separated metric names onto the Prometheus
// data model (version 0.0.4 text format):
//
//   - counters render as `# TYPE <name> counter` plus one sample;
//   - gauges render as `# TYPE <name> gauge` plus one sample;
//   - histograms render as a full histogram family — cumulative
//     `<name>_bucket{le="..."}` series over the registry's fixed
//     geometric buckets, `<name>_sum`, `<name>_count` — plus
//     `<name>_p50` / `_p90` / `_p99` gauges carrying the snapshot's
//     nearest-rank quantiles (Prometheus cannot mix `quantile` labels
//     into a histogram family, so the quantiles get their own gauges).
//
// Registry names are sanitized (`service.cache_hits` →
// `service_cache_hits`: every character outside [a-zA-Z0-9_:] becomes
// `_`, a leading digit gains a `_` prefix) and label values are escaped
// per the exposition format (backslash, double-quote, newline).
// Rendering only reads the snapshot — it can never perturb a run.

#include <map>
#include <string>
#include <string_view>

#include "obs/metrics.hpp"

namespace match::obs {

struct PrometheusOptions {
  /// Prepended to every family name (with a joining `_`) when non-empty.
  std::string prefix;

  /// Labels attached to every sample, e.g. {{"job", "match_server"}}.
  /// Values are escaped; names are sanitized like metric names.
  std::map<std::string, std::string> labels;
};

/// `service.cache_hits` → `service_cache_hits`; any character outside
/// [a-zA-Z0-9_:] becomes `_`, and a leading digit gains a `_` prefix.
/// An empty input renders as a single `_`.
std::string sanitize_metric_name(std::string_view name);

/// Escapes `\` → `\\`, `"` → `\"`, newline → `\n` for use inside a
/// label-value double-quoted string.
std::string escape_label_value(std::string_view value);

/// Renders the snapshot, appending to `out` (exposition format 0.0.4).
void render_prometheus(std::string& out, const MetricsSnapshot& snapshot,
                       const PrometheusOptions& options = {});

std::string to_prometheus(const MetricsSnapshot& snapshot,
                          const PrometheusOptions& options = {});

}  // namespace match::obs
