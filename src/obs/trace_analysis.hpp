#pragma once

// Post-hoc analysis of JSONL event traces (the files JsonlSink writes).
//
// Where `read_jsonl` is strict (one bad line throws), the analyzer is
// built for operations: `read_jsonl_lenient` skips-and-counts malformed
// or truncated lines (a server killed mid-write leaves a torn last
// line), and `analyze` folds the surviving events into per-run
// convergence reports — γ trajectory, iterations-to-stability in the
// sense of the paper's stopping rule (eq. 12: the trajectory stops
// moving for a window of consecutive iterations), per-phase time
// breakdown from the draw/cost/sort/update phase events, and
// stall/regression detection.
//
// `diff_traces` compares two reports (baseline vs candidate) and flags
// makespan or iteration-count regressions beyond a threshold — the
// contract `match_inspect diff` turns into an exit status, making traces
// a CI-gateable artifact.
//
// `summarize_spans` does the same for span traces (obs/spans.hpp, the
// files `match_server --span-trace` writes): per-stage latency
// distributions and tail-latency attribution — which stage each p99
// request spent its time in — behind `match_inspect spans`, gateable
// with `--max-stage-p99` / `--min-tail-attribution`.
//
// `run_inspect_cli` is the whole `tools/match_inspect` CLI behind a
// testable interface: tests drive argv vectors through it and assert on
// the exit code without spawning a process.

#include <cstdint>
#include <iosfwd>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "obs/events.hpp"
#include "obs/spans.hpp"

namespace match::obs {

struct LenientTrace {
  std::vector<Event> events;
  std::size_t total_lines = 0;    ///< non-blank lines seen
  std::size_t skipped_lines = 0;  ///< malformed lines skipped (never throws)
};

/// Reads a JSONL trace, skipping (and counting) lines `from_jsonl`
/// rejects.  Garbage, truncation, and binary junk all land in
/// `skipped_lines`; the reader itself never throws.
LenientTrace read_jsonl_lenient(std::istream& is);

/// Everything the analyzer derives about one solver run (one `run` id).
struct RunReport {
  std::uint64_t run_id = 0;
  std::string solver;

  std::vector<double> gamma;  ///< γ_k per iteration event, in trace order
  std::vector<double> best;   ///< best-so-far per iteration event
  std::uint64_t iterations = 0;
  bool has_run_end = false;
  /// Best cost at the end of the run: the `run_end` payload when
  /// present, else the last iteration's best-so-far.  NaN when the run
  /// has neither (e.g. a service-only run id).
  double final_best = std::numeric_limits<double>::quiet_NaN();
  double run_seconds = 0.0;  ///< from `run_end`; 0 when absent

  std::map<std::string, double> phase_seconds;  ///< phase → total seconds
  std::size_t fallback_draws = 0;
  std::size_t service_events = 0;

  /// Iterations until the γ trajectory stops moving (eq. 12 reading):
  /// the smallest k such that |γ_j − γ_{j−1}| ≤ eps for `window`
  /// consecutive steps ending at k.  Returns `gamma.size()` when the
  /// trajectory never stabilizes (or is shorter than the window).
  std::size_t iterations_to_stability(double eps = 1e-6,
                                      std::size_t window = 5) const;

  /// Longest run of consecutive iterations with no improvement in
  /// best-so-far.  Long stalls flag a solver spinning without progress.
  std::size_t longest_stall() const;

  /// True when best-so-far ever *increases* along the trace — impossible
  /// for a correct solver, so it flags trace corruption or a solver bug.
  bool best_regressed() const;

  double phase_total_seconds() const;
};

struct TraceReport {
  std::vector<RunReport> runs;  ///< ordered by first appearance
  std::size_t events = 0;
  std::size_t total_lines = 0;
  std::size_t skipped_lines = 0;

  const RunReport* find(std::uint64_t run_id) const;

  /// Mean of `final_best` over runs that have one (the CI-gated
  /// makespan statistic); NaN when no run finished.
  double mean_final_best() const;
  /// Minimum `final_best` over runs that have one; NaN when none.
  double best_final_best() const;
  std::uint64_t total_iterations() const;
};

TraceReport analyze(const std::vector<Event>& events);

/// Lenient read + analyze.  Throws `std::runtime_error` only when the
/// file cannot be opened; content problems are counted, not thrown.
TraceReport analyze_file(const std::string& path);

/// Aggregate view of the admission/service events in a trace: every
/// `kService` event counted by action, with the terminal `net.*`
/// decisions (exactly one per request, emitted by `MatchServer::finish`)
/// also folded into offered/served/shed totals plus the served-latency
/// distribution.  `match_inspect overload` prints this and can gate CI
/// on the shed fraction.
struct OverloadReport {
  /// Every `kService` action seen → occurrence count.  Terminal network
  /// decisions carry a `net.` prefix; service lifecycle actions
  /// (enqueue, cache_hit, coalesced, ...) are unprefixed.
  std::map<std::string, std::uint64_t> action_counts;

  std::uint64_t offered = 0;  ///< terminal `net.*` decisions
  std::uint64_t served = 0;   ///< net.served + net.served_deadline_missed
  std::uint64_t served_deadline_missed = 0;  ///< subset of `served`
  std::uint64_t shed = 0;
  std::uint64_t rejected_deadline = 0;
  /// net.bad_request + net.unknown_instance + net.server_error.
  std::uint64_t errors = 0;

  /// Request latency (`seconds`) of every served request, trace order.
  std::vector<double> served_seconds;

  double shed_pct() const;  ///< 100·shed/offered; 0 when nothing offered

  double mean_served_seconds() const;  ///< NaN when nothing was served

  /// Nearest-rank quantile of the served latencies (q in [0, 1]); NaN
  /// when nothing was served.
  double served_seconds_quantile(double q) const;
};

/// Folds the `kService` events of a trace into an `OverloadReport`;
/// every other event kind is ignored.
OverloadReport summarize_overload(const std::vector<Event>& events);

/// Latency distribution of one pipeline stage across a span trace.
struct StageStats {
  std::size_t count = 0;         ///< timelines that crossed this stage
  double total_seconds = 0.0;    ///< sum of stage durations
  double p50 = std::numeric_limits<double>::quiet_NaN();
  double p90 = std::numeric_limits<double>::quiet_NaN();
  double p99 = std::numeric_limits<double>::quiet_NaN();
  double max = std::numeric_limits<double>::quiet_NaN();

  double mean() const {
    return count == 0 ? std::numeric_limits<double>::quiet_NaN()
                      : total_seconds / static_cast<double>(count);
  }
};

/// Tail-latency attribution over a span trace (`match_inspect spans`):
/// per-stage latency distributions, plus — for the requests at or above
/// the p99 of end-to-end latency — which stage dominated each one and
/// how much of their time named stages explain at all.
struct SpanReport {
  std::size_t requests = 0;  ///< timelines analyzed

  /// Stage name (`to_string(SpanStage)`) → distribution.  A stage a
  /// request stamped twice contributes the *sum* of its crossings to
  /// that request's sample (one sample per request per stage).
  std::map<std::string, StageStats> stages;

  /// Terminal outcome ("net.served", "net.shed", ...) → count.
  std::map<std::string, std::uint64_t> outcome_counts;

  /// End-to-end (`total_seconds`) latencies, trace order.
  std::vector<double> totals;

  /// p99 (nearest-rank) of `totals`; the tail is every request with
  /// total >= this.  NaN when the trace is empty.
  double tail_threshold_seconds = std::numeric_limits<double>::quiet_NaN();
  std::size_t tail_requests = 0;

  /// Stage name → number of tail requests whose single largest span is
  /// that stage.  Under queue-driven overload this is dominated by
  /// "queue_wait"; under solver-driven load by "solve".
  std::map<std::string, std::uint64_t> tail_dominant_stage;

  /// Mean over the tail of attributed/total — the fraction of each tail
  /// request's latency that named stages explain (the rest is hand-off:
  /// outbox crossing, wakeup latency).  NaN when the tail is empty.
  double tail_attributed_fraction = std::numeric_limits<double>::quiet_NaN();

  /// 100 · Σ queue_wait / (Σ queue_wait + Σ solve) over the *tail* —
  /// the queue-vs-solve attribution a capacity decision turns on.  NaN
  /// when the tail never crossed either stage.
  double tail_queue_vs_solve_pct = std::numeric_limits<double>::quiet_NaN();

  /// Nearest-rank quantile of `totals` (q in [0, 1]); NaN when empty.
  double totals_quantile(double q) const;
};

SpanReport summarize_spans(const std::vector<SpanTimeline>& timelines);

struct DiffOptions {
  /// Candidate mean final best may exceed the baseline's by this many
  /// percent before the diff counts as a makespan regression.
  double makespan_tolerance_pct = 0.5;
  /// Candidate total iterations may exceed the baseline's by this many
  /// percent before the diff counts as an iteration-count regression.
  double iterations_tolerance_pct = 20.0;
};

struct TraceDiff {
  double makespan_a = 0.0;
  double makespan_b = 0.0;
  double makespan_delta_pct = 0.0;  ///< 100·(b−a)/a; 0 when a is NaN/0
  std::uint64_t iterations_a = 0;
  std::uint64_t iterations_b = 0;
  double iterations_delta_pct = 0.0;
  bool makespan_regressed = false;
  bool iterations_regressed = false;

  bool regressed() const { return makespan_regressed || iterations_regressed; }
};

/// a = baseline, b = candidate.
TraceDiff diff_traces(const TraceReport& a, const TraceReport& b,
                      const DiffOptions& options = {});

/// The `match_inspect` CLI: `args` excludes the program name.  Returns
/// the process exit code: 0 ok, 1 regression detected, 2 usage/IO error.
int run_inspect_cli(const std::vector<std::string>& args, std::ostream& out,
                    std::ostream& err);

}  // namespace match::obs
