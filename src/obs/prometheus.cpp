#include "obs/prometheus.hpp"

#include <charconv>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <system_error>

namespace match::obs {
namespace {

bool valid_name_char(char c, bool first) {
  const bool alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z');
  const bool digit = c >= '0' && c <= '9';
  if (alpha || c == '_' || c == ':') return true;
  return digit && !first;
}

// Shortest round-trip decimal; Prometheus accepts scientific notation
// and the special tokens +Inf / -Inf / NaN.
void append_value(std::string& out, double value) {
  if (std::isinf(value)) {
    out += value > 0 ? "+Inf" : "-Inf";
    return;
  }
  if (std::isnan(value)) {
    out += "NaN";
    return;
  }
  char buf[32];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  if (ec != std::errc{}) throw std::runtime_error("prometheus: to_chars failed");
  out.append(buf, ptr);
}

void append_value(std::string& out, std::uint64_t value) {
  char buf[24];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  if (ec != std::errc{}) throw std::runtime_error("prometheus: to_chars failed");
  out.append(buf, ptr);
}

/// Shared label block rendered once per snapshot: `{job="x",host="y"}`
/// or empty when no labels are configured.
std::string render_label_block(const std::map<std::string, std::string>& labels) {
  if (labels.empty()) return {};
  std::string out = "{";
  bool first = true;
  for (const auto& [name, value] : labels) {
    if (!first) out.push_back(',');
    first = false;
    out += sanitize_metric_name(name);
    out += "=\"";
    out += escape_label_value(value);
    out.push_back('"');
  }
  out.push_back('}');
  return out;
}

class Renderer {
 public:
  Renderer(std::string& out, const PrometheusOptions& options)
      : out_(out),
        prefix_(options.prefix.empty()
                    ? std::string()
                    : sanitize_metric_name(options.prefix) + "_"),
        labels_(render_label_block(options.labels)) {}

  void counter(const std::string& name, std::uint64_t value) {
    const std::string family = prefix_ + sanitize_metric_name(name);
    type_line(family, "counter");
    sample(family, labels_, value);
  }

  void gauge(const std::string& name, double value) {
    const std::string family = prefix_ + sanitize_metric_name(name);
    type_line(family, "gauge");
    sample(family, labels_, value);
  }

  void histogram(const std::string& name, const HistogramStats& stats) {
    const std::string family = prefix_ + sanitize_metric_name(name);
    type_line(family, "histogram");
    // Cumulative buckets.  Empty buckets between populated ones add no
    // information (the series is cumulative), so only emit a bucket when
    // the cumulative count changes — plus the mandatory +Inf bucket.
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i + 1 < stats.buckets.size(); ++i) {
      if (stats.buckets[i] == 0) continue;
      cumulative += stats.buckets[i];
      std::string le;
      append_value(le, Histogram::bucket_upper(i));
      sample(family + "_bucket", bucket_labels(le), cumulative);
    }
    sample(family + "_bucket", bucket_labels("+Inf"), stats.count);
    sample(family + "_sum", labels_, stats.sum);
    sample(family + "_count", labels_, stats.count);
    // Quantiles as sibling gauges (a histogram family may not carry
    // `quantile`-labelled samples).
    quantile_gauge(family, "p50", stats.p50);
    quantile_gauge(family, "p90", stats.p90);
    quantile_gauge(family, "p99", stats.p99);
  }

 private:
  void type_line(const std::string& family, const char* type) {
    out_ += "# TYPE ";
    out_ += family;
    out_.push_back(' ');
    out_ += type;
    out_.push_back('\n');
  }

  template <typename V>
  void sample(const std::string& series, const std::string& label_block,
              V value) {
    out_ += series;
    out_ += label_block;
    out_.push_back(' ');
    append_value(out_, value);
    out_.push_back('\n');
  }

  /// The shared labels with `le="<upper>"` appended.
  std::string bucket_labels(std::string_view le) const {
    std::string block;
    if (labels_.empty()) {
      block = "{le=\"";
    } else {
      block = labels_.substr(0, labels_.size() - 1);  // drop the '}'
      block += ",le=\"";
    }
    block += escape_label_value(le);
    block += "\"}";
    return block;
  }

  void quantile_gauge(const std::string& family, const char* which,
                      double value) {
    const std::string series = family + "_" + which;
    type_line(series, "gauge");
    sample(series, labels_, value);
  }

  std::string& out_;
  std::string prefix_;
  std::string labels_;
};

}  // namespace

std::string sanitize_metric_name(std::string_view name) {
  std::string out;
  out.reserve(name.size() + 1);
  if (name.empty()) return "_";
  for (std::size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    if (valid_name_char(c, /*first=*/i == 0)) {
      out.push_back(c);
    } else if (i == 0 && c >= '0' && c <= '9') {
      out.push_back('_');
      out.push_back(c);
    } else {
      out.push_back('_');
    }
  }
  return out;
}

std::string escape_label_value(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

void render_prometheus(std::string& out, const MetricsSnapshot& snapshot,
                       const PrometheusOptions& options) {
  Renderer r(out, options);
  for (const auto& [name, value] : snapshot.counters) r.counter(name, value);
  for (const auto& [name, value] : snapshot.gauges) r.gauge(name, value);
  for (const auto& [name, stats] : snapshot.histograms) r.histogram(name, stats);
}

std::string to_prometheus(const MetricsSnapshot& snapshot,
                          const PrometheusOptions& options) {
  std::string out;
  out.reserve(4096);
  render_prometheus(out, snapshot, options);
  return out;
}

}  // namespace match::obs
