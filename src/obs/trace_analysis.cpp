#include "obs/trace_analysis.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

#include "io/table.hpp"
#include "obs/bench_report.hpp"

namespace match::obs {

LenientTrace read_jsonl_lenient(std::istream& is) {
  LenientTrace out;
  std::string line;
  while (std::getline(is, line)) {
    // Tolerate CRLF traces (a file that bounced through Windows tooling).
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    ++out.total_lines;
    try {
      out.events.push_back(from_jsonl(line));
    } catch (const std::exception&) {
      ++out.skipped_lines;
    }
  }
  return out;
}

std::size_t RunReport::iterations_to_stability(double eps,
                                               std::size_t window) const {
  if (window == 0) window = 1;
  if (gamma.size() < window + 1) return gamma.size();
  std::size_t quiet = 0;  // consecutive steps with |Δγ| ≤ eps
  for (std::size_t j = 1; j < gamma.size(); ++j) {
    if (std::abs(gamma[j] - gamma[j - 1]) <= eps) {
      if (++quiet >= window) return j + 1;  // 1-based iteration count
    } else {
      quiet = 0;
    }
  }
  return gamma.size();
}

std::size_t RunReport::longest_stall() const {
  std::size_t longest = 0, current = 0;
  for (std::size_t j = 1; j < best.size(); ++j) {
    if (best[j] < best[j - 1]) {
      current = 0;
    } else {
      longest = std::max(longest, ++current);
    }
  }
  return longest;
}

bool RunReport::best_regressed() const {
  for (std::size_t j = 1; j < best.size(); ++j) {
    if (best[j] > best[j - 1]) return true;
  }
  return false;
}

double RunReport::phase_total_seconds() const {
  double total = 0.0;
  for (const auto& [phase, seconds] : phase_seconds) total += seconds;
  return total;
}

const RunReport* TraceReport::find(std::uint64_t run_id) const {
  for (const RunReport& run : runs) {
    if (run.run_id == run_id) return &run;
  }
  return nullptr;
}

double TraceReport::mean_final_best() const {
  double sum = 0.0;
  std::size_t n = 0;
  for (const RunReport& run : runs) {
    if (!std::isnan(run.final_best)) {
      sum += run.final_best;
      ++n;
    }
  }
  return n == 0 ? std::numeric_limits<double>::quiet_NaN()
                : sum / static_cast<double>(n);
}

double TraceReport::best_final_best() const {
  double best = std::numeric_limits<double>::quiet_NaN();
  for (const RunReport& run : runs) {
    if (std::isnan(run.final_best)) continue;
    if (std::isnan(best) || run.final_best < best) best = run.final_best;
  }
  return best;
}

std::uint64_t TraceReport::total_iterations() const {
  std::uint64_t total = 0;
  for (const RunReport& run : runs) total += run.iterations;
  return total;
}

TraceReport analyze(const std::vector<Event>& events) {
  TraceReport report;
  report.events = events.size();
  std::unordered_map<std::uint64_t, std::size_t> index_of;
  const auto run_for = [&](const Event& e) -> RunReport& {
    auto [it, inserted] = index_of.emplace(e.run_id, report.runs.size());
    if (inserted) {
      report.runs.emplace_back();
      report.runs.back().run_id = e.run_id;
    }
    RunReport& run = report.runs[it->second];
    // The service's `enqueue` event carries the solver too, but the
    // solver's own events are authoritative; first non-empty name wins.
    if (run.solver.empty() && !e.solver.empty()) run.solver = e.solver;
    return run;
  };

  for (const Event& e : events) {
    RunReport& run = run_for(e);
    switch (e.kind) {
      case EventKind::kIteration:
        ++run.iterations;
        run.gamma.push_back(e.gamma);
        run.best.push_back(e.best_so_far);
        break;
      case EventKind::kPhase:
        run.phase_seconds[e.phase] += e.seconds;
        break;
      case EventKind::kService:
        ++run.service_events;
        break;
      case EventKind::kFallbackDraw:
        ++run.fallback_draws;
        break;
      case EventKind::kRunEnd:
        run.has_run_end = true;
        run.final_best = e.best_so_far;
        run.run_seconds = e.seconds;
        if (e.iteration > 0) run.iterations = e.iteration;
        break;
      case EventKind::kRunStart:
        break;
    }
  }
  for (RunReport& run : report.runs) {
    if (!run.has_run_end && !run.best.empty()) run.final_best = run.best.back();
  }
  return report;
}

TraceReport analyze_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("match_inspect: cannot open '" + path + "'");
  }
  LenientTrace trace = read_jsonl_lenient(in);
  TraceReport report = analyze(trace.events);
  report.total_lines = trace.total_lines;
  report.skipped_lines = trace.skipped_lines;
  return report;
}

double OverloadReport::shed_pct() const {
  if (offered == 0) return 0.0;
  return 100.0 * static_cast<double>(shed) / static_cast<double>(offered);
}

double OverloadReport::mean_served_seconds() const {
  if (served_seconds.empty()) return std::numeric_limits<double>::quiet_NaN();
  double sum = 0.0;
  for (const double s : served_seconds) sum += s;
  return sum / static_cast<double>(served_seconds.size());
}

double OverloadReport::served_seconds_quantile(double q) const {
  if (served_seconds.empty()) return std::numeric_limits<double>::quiet_NaN();
  std::vector<double> sorted = served_seconds;
  std::sort(sorted.begin(), sorted.end());
  const double rank = std::ceil(std::clamp(q, 0.0, 1.0) *
                                static_cast<double>(sorted.size()));
  const std::size_t index =
      rank < 1.0 ? 0 : static_cast<std::size_t>(rank) - 1;
  return sorted[std::min(index, sorted.size() - 1)];
}

OverloadReport summarize_overload(const std::vector<Event>& events) {
  OverloadReport report;
  for (const Event& e : events) {
    if (e.kind != EventKind::kService) continue;
    ++report.action_counts[e.phase];
    if (e.phase == "net.served" || e.phase == "net.served_deadline_missed") {
      ++report.served;
      if (e.phase == "net.served_deadline_missed") {
        ++report.served_deadline_missed;
      }
      report.served_seconds.push_back(e.seconds);
    } else if (e.phase == "net.shed") {
      ++report.shed;
    } else if (e.phase == "net.rejected_deadline") {
      ++report.rejected_deadline;
    } else if (e.phase == "net.bad_request" ||
               e.phase == "net.unknown_instance" ||
               e.phase == "net.server_error") {
      ++report.errors;
    } else {
      // Service lifecycle action (enqueue, cache_hit, ...): counted in
      // `action_counts` above but not a per-request terminal decision.
      continue;
    }
    ++report.offered;
  }
  return report;
}

namespace {

double nearest_rank(std::vector<double> sorted_in_place, double q) {
  if (sorted_in_place.empty()) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  std::sort(sorted_in_place.begin(), sorted_in_place.end());
  const double rank = std::ceil(std::clamp(q, 0.0, 1.0) *
                                static_cast<double>(sorted_in_place.size()));
  const std::size_t index =
      rank < 1.0 ? 0 : static_cast<std::size_t>(rank) - 1;
  return sorted_in_place[std::min(index, sorted_in_place.size() - 1)];
}

}  // namespace

double SpanReport::totals_quantile(double q) const {
  return nearest_rank(totals, q);
}

SpanReport summarize_spans(const std::vector<SpanTimeline>& timelines) {
  SpanReport report;
  report.requests = timelines.size();

  // One sample per request per stage: a stage stamped twice contributes
  // the sum of its crossings to that request's sample.
  std::map<std::string, std::vector<double>> samples;
  for (const SpanTimeline& tl : timelines) {
    ++report.outcome_counts[tl.outcome];
    report.totals.push_back(tl.total_seconds);
    std::map<std::string, double> per_stage;
    for (const SpanRecord& span : tl.spans) {
      per_stage[to_string(span.stage)] += span.duration_seconds();
    }
    for (const auto& [stage, seconds] : per_stage) {
      samples[stage].push_back(seconds);
    }
  }
  for (auto& [stage, values] : samples) {
    StageStats stats;
    stats.count = values.size();
    for (const double v : values) stats.total_seconds += v;
    std::sort(values.begin(), values.end());
    stats.max = values.back();
    stats.p50 = nearest_rank(values, 0.50);
    stats.p90 = nearest_rank(values, 0.90);
    stats.p99 = nearest_rank(values, 0.99);
    report.stages.emplace(stage, stats);
  }

  if (timelines.empty()) return report;

  // The tail: every request at or above the p99 of end-to-end latency
  // (nearest-rank, so at least one request always qualifies).
  report.tail_threshold_seconds = report.totals_quantile(0.99);
  double attributed_fraction_sum = 0.0;
  std::size_t attributable = 0;
  double tail_queue = 0.0;
  double tail_solve = 0.0;
  for (const SpanTimeline& tl : timelines) {
    if (tl.total_seconds < report.tail_threshold_seconds) continue;
    ++report.tail_requests;
    const SpanRecord* dominant = nullptr;
    std::map<std::string, double> per_stage;
    for (const SpanRecord& span : tl.spans) {
      per_stage[to_string(span.stage)] += span.duration_seconds();
      if (dominant == nullptr ||
          span.duration_seconds() > dominant->duration_seconds()) {
        dominant = &span;
      }
    }
    if (dominant != nullptr) {
      ++report.tail_dominant_stage[to_string(dominant->stage)];
    }
    if (tl.total_seconds > 0.0) {
      attributed_fraction_sum += tl.attributed_seconds() / tl.total_seconds;
      ++attributable;
    }
    tail_queue += per_stage[to_string(SpanStage::kQueueWait)];
    tail_solve += per_stage[to_string(SpanStage::kSolve)];
  }
  if (attributable > 0) {
    report.tail_attributed_fraction =
        attributed_fraction_sum / static_cast<double>(attributable);
  }
  if (tail_queue + tail_solve > 0.0) {
    report.tail_queue_vs_solve_pct =
        100.0 * tail_queue / (tail_queue + tail_solve);
  }
  return report;
}

TraceDiff diff_traces(const TraceReport& a, const TraceReport& b,
                      const DiffOptions& options) {
  TraceDiff diff;
  diff.makespan_a = a.mean_final_best();
  diff.makespan_b = b.mean_final_best();
  if (!std::isnan(diff.makespan_a) && !std::isnan(diff.makespan_b) &&
      diff.makespan_a != 0.0) {
    diff.makespan_delta_pct =
        100.0 * (diff.makespan_b - diff.makespan_a) / diff.makespan_a;
    diff.makespan_regressed =
        diff.makespan_delta_pct > options.makespan_tolerance_pct;
  } else if (std::isnan(diff.makespan_a) != std::isnan(diff.makespan_b)) {
    // One trace finished runs and the other finished none: treat a
    // candidate that lost all results as regressed.
    diff.makespan_regressed = std::isnan(diff.makespan_b);
  }
  diff.iterations_a = a.total_iterations();
  diff.iterations_b = b.total_iterations();
  if (diff.iterations_a > 0) {
    diff.iterations_delta_pct =
        100.0 *
        (static_cast<double>(diff.iterations_b) -
         static_cast<double>(diff.iterations_a)) /
        static_cast<double>(diff.iterations_a);
    diff.iterations_regressed =
        diff.iterations_delta_pct > options.iterations_tolerance_pct;
  }
  return diff;
}

// ------------------------------------------------------------------ CLI

namespace {

bool parse_double_arg(const std::string& s, double& out) {
  const char* begin = s.data();
  const char* end = begin + s.size();
  auto [ptr, ec] = std::from_chars(begin, end, out);
  return ec == std::errc{} && ptr == end;
}

int usage(std::ostream& err) {
  err << "usage:\n"
         "  match_inspect summary <trace.jsonl> [--stability-eps E] "
         "[--stability-window W]\n"
         "  match_inspect diff <baseline.jsonl> <candidate.jsonl> "
         "[--makespan-tol PCT] [--iterations-tol PCT]\n"
         "  match_inspect overload <trace.jsonl> [--max-shed-pct PCT] "
         "[--json]\n"
         "  match_inspect spans <spans.jsonl> [--max-stage-p99 "
         "[STAGE:]SECONDS]...\n"
         "                [--min-tail-attribution PCT] [--json]\n"
         "\n"
         "summary: per-run convergence report (gamma trajectory, "
         "iterations-to-stability,\n"
         "         phase time breakdown, stall/regression detection); "
         "exit 1 when any run's\n"
         "         best-so-far regressed within its own trace.\n"
         "diff:    compares candidate against baseline; exit 1 on "
         "makespan or\n"
         "         iteration-count regression beyond the tolerance.\n"
         "overload: admission accounting from a server trace (per-action"
         " counts,\n"
         "         shed fraction, served-latency distribution); with "
         "--max-shed-pct,\n"
         "         exit 1 when the shed fraction exceeds the gate.\n"
         "spans:   per-stage latency breakdown and tail attribution from"
         " a span trace\n"
         "         (match_server --span-trace); --max-stage-p99 gates "
         "one stage's p99\n"
         "         (or every stage's, with no STAGE:), "
         "--min-tail-attribution gates the\n"
         "         fraction of p99-tail latency explained by named "
         "stages; exit 1 on\n"
         "         any gate violation.\n"
         "\n"
         "--json: machine-readable BenchReport JSON on stdout "
         "(overload/spans only).\n";
  return 2;
}

std::string fmt_or_dash(double v, int precision = 6) {
  return std::isnan(v) ? "-" : io::Table::num(v, precision);
}

void print_skip_note(const TraceReport& report, std::ostream& out) {
  if (report.skipped_lines > 0) {
    out << "note: skipped " << report.skipped_lines << " malformed line(s) of "
        << report.total_lines << "\n";
  }
}

int cmd_summary(const std::vector<std::string>& args, std::ostream& out,
                std::ostream& err) {
  std::string path;
  double eps = 1e-6;
  double window = 5;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--stability-eps" && i + 1 < args.size()) {
      if (!parse_double_arg(args[++i], eps)) return usage(err);
    } else if (args[i] == "--stability-window" && i + 1 < args.size()) {
      if (!parse_double_arg(args[++i], window) || window < 1) return usage(err);
    } else if (!args[i].empty() && args[i][0] == '-') {
      return usage(err);
    } else if (path.empty()) {
      path = args[i];
    } else {
      return usage(err);
    }
  }
  if (path.empty()) return usage(err);

  TraceReport report;
  try {
    report = analyze_file(path);
  } catch (const std::exception& e) {
    err << e.what() << "\n";
    return 2;
  }

  out << "== " << path << ": " << report.events << " events, "
      << report.runs.size() << " run(s) ==\n";
  print_skip_note(report, out);

  io::Table table({"run", "solver", "iters", "iters->stable", "final best",
                   "stall", "run (s)", "draw %", "cost %", "sort %",
                   "update %"});
  bool any_regressed = false;
  for (const RunReport& run : report.runs) {
    const double phase_total = run.phase_total_seconds();
    const auto pct = [&](const char* phase) -> std::string {
      const auto it = run.phase_seconds.find(phase);
      if (it == run.phase_seconds.end() || phase_total <= 0.0) return "-";
      return io::Table::num(100.0 * it->second / phase_total, 3);
    };
    any_regressed |= run.best_regressed();
    table.add_row(
        {std::to_string(run.run_id), run.solver.empty() ? "-" : run.solver,
         std::to_string(run.iterations),
         run.gamma.empty()
             ? "-"
             : std::to_string(run.iterations_to_stability(
                   eps, static_cast<std::size_t>(window))),
         fmt_or_dash(run.final_best), std::to_string(run.longest_stall()),
         run.run_seconds > 0.0 ? io::Table::num(run.run_seconds, 4) : "-",
         pct("draw"), pct("cost"), pct("sort"), pct("update")});
  }
  table.print(out);

  out << "\ntotals: " << report.total_iterations() << " iterations; mean final"
      << " best " << fmt_or_dash(report.mean_final_best()) << "; best "
      << fmt_or_dash(report.best_final_best()) << "\n";
  for (const RunReport& run : report.runs) {
    if (run.fallback_draws > 0) {
      out << "warning: run " << run.run_id << " answered with "
          << run.fallback_draws << " deadline-starved fallback draw(s)\n";
    }
    if (run.best_regressed()) {
      out << "REGRESSION: run " << run.run_id
          << " best-so-far increased within its own trace (corrupt trace or"
             " solver bug)\n";
    }
  }
  return any_regressed ? 1 : 0;
}

int cmd_diff(const std::vector<std::string>& args, std::ostream& out,
             std::ostream& err) {
  std::vector<std::string> paths;
  DiffOptions options;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--makespan-tol" && i + 1 < args.size()) {
      if (!parse_double_arg(args[++i], options.makespan_tolerance_pct)) {
        return usage(err);
      }
    } else if (args[i] == "--iterations-tol" && i + 1 < args.size()) {
      if (!parse_double_arg(args[++i], options.iterations_tolerance_pct)) {
        return usage(err);
      }
    } else if (!args[i].empty() && args[i][0] == '-') {
      return usage(err);
    } else {
      paths.push_back(args[i]);
    }
  }
  if (paths.size() != 2) return usage(err);

  TraceReport baseline, candidate;
  try {
    baseline = analyze_file(paths[0]);
    candidate = analyze_file(paths[1]);
  } catch (const std::exception& e) {
    err << e.what() << "\n";
    return 2;
  }
  print_skip_note(baseline, out);
  print_skip_note(candidate, out);

  const TraceDiff diff = diff_traces(baseline, candidate, options);
  io::Table table({"metric", "baseline", "candidate", "delta %", "tolerance %",
                   "verdict"});
  table.add_row({"mean final best", fmt_or_dash(diff.makespan_a),
                 fmt_or_dash(diff.makespan_b),
                 io::Table::num(diff.makespan_delta_pct, 4),
                 io::Table::num(options.makespan_tolerance_pct, 4),
                 diff.makespan_regressed ? "REGRESSED" : "ok"});
  table.add_row({"total iterations", std::to_string(diff.iterations_a),
                 std::to_string(diff.iterations_b),
                 io::Table::num(diff.iterations_delta_pct, 4),
                 io::Table::num(options.iterations_tolerance_pct, 4),
                 diff.iterations_regressed ? "REGRESSED" : "ok"});
  table.print(out);
  out << "\n" << (diff.regressed() ? "REGRESSION" : "OK") << "\n";
  return diff.regressed() ? 1 : 0;
}

int cmd_overload(const std::vector<std::string>& args, std::ostream& out,
                 std::ostream& err) {
  std::string path;
  double max_shed_pct = std::numeric_limits<double>::quiet_NaN();  // no gate
  bool json = false;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--max-shed-pct" && i + 1 < args.size()) {
      if (!parse_double_arg(args[++i], max_shed_pct) || max_shed_pct < 0) {
        return usage(err);
      }
    } else if (args[i] == "--json") {
      json = true;
    } else if (!args[i].empty() && args[i][0] == '-') {
      return usage(err);
    } else if (path.empty()) {
      path = args[i];
    } else {
      return usage(err);
    }
  }
  if (path.empty()) return usage(err);

  std::ifstream in(path);
  if (!in) {
    err << "match_inspect: cannot open '" << path << "'\n";
    return 2;
  }
  const LenientTrace trace = read_jsonl_lenient(in);
  const OverloadReport report = summarize_overload(trace.events);
  const bool gated =
      !std::isnan(max_shed_pct) && report.shed_pct() > max_shed_pct;

  if (json) {
    // Machine-readable path: the BenchReport schema CI already parses
    // for every BENCH_<name>.json — human notes go to err only.
    if (trace.skipped_lines > 0) {
      err << "note: skipped " << trace.skipped_lines
          << " malformed line(s) of " << trace.total_lines << "\n";
    }
    bench::BenchReport bench;
    bench.name = "match_inspect_overload";
    bench.git_sha = bench::current_git_sha();
    bench.config["trace"] = path;
    if (!std::isnan(max_shed_pct)) {
      bench.config["max_shed_pct"] = io::Table::num(max_shed_pct, 6);
    }
    bench.counters = report.action_counts;
    bench::BenchCase c;
    c.name = "overload";
    c.metrics["offered"] = static_cast<double>(report.offered);
    c.metrics["served"] = static_cast<double>(report.served);
    c.metrics["served_deadline_missed"] =
        static_cast<double>(report.served_deadline_missed);
    c.metrics["shed"] = static_cast<double>(report.shed);
    c.metrics["rejected_deadline"] =
        static_cast<double>(report.rejected_deadline);
    c.metrics["errors"] = static_cast<double>(report.errors);
    c.metrics["shed_pct"] = report.shed_pct();
    if (!report.served_seconds.empty()) {
      c.metrics["served_mean_seconds"] = report.mean_served_seconds();
      c.metrics["served_p50_seconds"] = report.served_seconds_quantile(0.5);
      c.metrics["served_p99_seconds"] = report.served_seconds_quantile(0.99);
      c.metrics["served_max_seconds"] = report.served_seconds_quantile(1.0);
    }
    c.metrics["gate_violated"] = gated ? 1.0 : 0.0;
    bench.cases.push_back(std::move(c));
    out << bench.to_json() << "\n";
    return gated ? 1 : 0;
  }

  out << "== " << path << ": " << report.offered << " request(s) offered ==\n";
  if (trace.skipped_lines > 0) {
    out << "note: skipped " << trace.skipped_lines << " malformed line(s) of "
        << trace.total_lines << "\n";
  }

  io::Table table({"action", "count", "% of offered"});
  for (const auto& [action, count] : report.action_counts) {
    const bool terminal = action.rfind("net.", 0) == 0;
    table.add_row({action, std::to_string(count),
                   terminal && report.offered > 0
                       ? io::Table::num(100.0 * static_cast<double>(count) /
                                            static_cast<double>(report.offered),
                                        3)
                       : "-"});
  }
  table.print(out);

  out << "\nserved " << report.served << " ("
      << report.served_deadline_missed << " past deadline), shed "
      << report.shed << " (" << io::Table::num(report.shed_pct(), 3)
      << "%), rejected " << report.rejected_deadline << ", errors "
      << report.errors << "\n";
  if (!report.served_seconds.empty()) {
    out << "served latency: mean "
        << fmt_or_dash(report.mean_served_seconds()) << "s, p50 "
        << fmt_or_dash(report.served_seconds_quantile(0.5)) << "s, p99 "
        << fmt_or_dash(report.served_seconds_quantile(0.99)) << "s, max "
        << fmt_or_dash(report.served_seconds_quantile(1.0)) << "s\n";
  }

  if (gated) {
    out << "OVERLOAD REGRESSION: shed " << io::Table::num(report.shed_pct(), 3)
        << "% > gate " << io::Table::num(max_shed_pct, 3) << "%\n";
    return 1;
  }
  return 0;
}

/// One `--max-stage-p99` gate: `SECONDS` (all stages) or `STAGE:SECONDS`.
struct StageGate {
  std::string stage;  ///< "" = every stage present in the trace
  double max_p99_seconds = 0.0;
};

int cmd_spans(const std::vector<std::string>& args, std::ostream& out,
              std::ostream& err) {
  std::string path;
  std::vector<StageGate> gates;
  double min_tail_attribution_pct =
      std::numeric_limits<double>::quiet_NaN();  // no gate
  bool json = false;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--max-stage-p99" && i + 1 < args.size()) {
      const std::string& spec = args[++i];
      StageGate gate;
      const std::size_t colon = spec.find(':');
      std::string seconds_part = spec;
      if (colon != std::string::npos) {
        gate.stage = spec.substr(0, colon);
        seconds_part = spec.substr(colon + 1);
        try {
          (void)parse_span_stage(gate.stage);
        } catch (const std::exception&) {
          err << "match_inspect: unknown stage '" << gate.stage << "'\n";
          return 2;
        }
      }
      if (!parse_double_arg(seconds_part, gate.max_p99_seconds) ||
          gate.max_p99_seconds < 0) {
        return usage(err);
      }
      gates.push_back(std::move(gate));
    } else if (args[i] == "--min-tail-attribution" && i + 1 < args.size()) {
      if (!parse_double_arg(args[++i], min_tail_attribution_pct) ||
          min_tail_attribution_pct < 0 || min_tail_attribution_pct > 100) {
        return usage(err);
      }
    } else if (args[i] == "--json") {
      json = true;
    } else if (!args[i].empty() && args[i][0] == '-') {
      return usage(err);
    } else if (path.empty()) {
      path = args[i];
    } else {
      return usage(err);
    }
  }
  if (path.empty()) return usage(err);

  std::ifstream in(path);
  if (!in) {
    err << "match_inspect: cannot open '" << path << "'\n";
    return 2;
  }
  const SpanTrace trace = read_span_jsonl_lenient(in);
  const SpanReport report = summarize_spans(trace.timelines);

  // Gates.  An empty trace with gates configured fails loudly: "no
  // data" must never read as "all gates green" in CI.
  std::vector<std::string> violations;
  const bool has_gates =
      !gates.empty() || !std::isnan(min_tail_attribution_pct);
  if (report.requests == 0 && has_gates) {
    violations.push_back("trace contains no span timelines");
  }
  for (const StageGate& gate : gates) {
    for (const auto& [stage, stats] : report.stages) {
      if (!gate.stage.empty() && stage != gate.stage) continue;
      if (stats.p99 > gate.max_p99_seconds) {
        violations.push_back("stage " + stage + " p99 " +
                             io::Table::num(stats.p99, 6) + "s > gate " +
                             io::Table::num(gate.max_p99_seconds, 6) + "s");
      }
    }
  }
  if (!std::isnan(min_tail_attribution_pct) && report.requests > 0) {
    const double pct = 100.0 * report.tail_attributed_fraction;
    if (std::isnan(pct) || pct < min_tail_attribution_pct) {
      violations.push_back(
          "tail attribution " + fmt_or_dash(pct, 3) + "% < gate " +
          io::Table::num(min_tail_attribution_pct, 3) + "%");
    }
  }

  if (json) {
    if (trace.skipped_lines > 0) {
      err << "note: skipped " << trace.skipped_lines
          << " malformed line(s) of " << trace.total_lines << "\n";
    }
    bench::BenchReport bench;
    bench.name = "match_inspect_spans";
    bench.git_sha = bench::current_git_sha();
    bench.config["trace"] = path;
    if (!std::isnan(min_tail_attribution_pct)) {
      bench.config["min_tail_attribution_pct"] =
          io::Table::num(min_tail_attribution_pct, 6);
    }
    for (const auto& [outcome, count] : report.outcome_counts) {
      bench.counters["outcome." + outcome] = count;
    }
    for (const auto& [stage, count] : report.tail_dominant_stage) {
      bench.counters["tail_dominant." + stage] = count;
    }
    for (const auto& [stage, stats] : report.stages) {
      bench::BenchCase c;
      c.name = "stage." + stage;
      c.wall_seconds = stats.total_seconds;
      c.metrics["count"] = static_cast<double>(stats.count);
      c.metrics["mean_seconds"] = stats.mean();
      c.metrics["p50_seconds"] = stats.p50;
      c.metrics["p90_seconds"] = stats.p90;
      c.metrics["p99_seconds"] = stats.p99;
      c.metrics["max_seconds"] = stats.max;
      bench.cases.push_back(std::move(c));
    }
    bench::BenchCase tail;
    tail.name = "tail";
    tail.metrics["requests"] = static_cast<double>(report.requests);
    tail.metrics["tail_requests"] = static_cast<double>(report.tail_requests);
    tail.metrics["threshold_seconds"] = report.tail_threshold_seconds;
    tail.metrics["attributed_fraction"] = report.tail_attributed_fraction;
    tail.metrics["queue_vs_solve_pct"] = report.tail_queue_vs_solve_pct;
    tail.metrics["total_p50_seconds"] = report.totals_quantile(0.5);
    tail.metrics["total_p99_seconds"] = report.totals_quantile(0.99);
    tail.metrics["gate_violations"] = static_cast<double>(violations.size());
    bench.cases.push_back(std::move(tail));
    out << bench.to_json() << "\n";
    for (const std::string& v : violations) err << "SPAN GATE: " << v << "\n";
    return violations.empty() ? 0 : 1;
  }

  out << "== " << path << ": " << report.requests
      << " request timeline(s) ==\n";
  if (trace.skipped_lines > 0) {
    out << "note: skipped " << trace.skipped_lines << " malformed line(s) of "
        << trace.total_lines << "\n";
  }

  io::Table table({"stage", "count", "mean (s)", "p50 (s)", "p90 (s)",
                   "p99 (s)", "max (s)"});
  for (const auto& [stage, stats] : report.stages) {
    table.add_row({stage, std::to_string(stats.count),
                   fmt_or_dash(stats.mean()), fmt_or_dash(stats.p50),
                   fmt_or_dash(stats.p90), fmt_or_dash(stats.p99),
                   fmt_or_dash(stats.max)});
  }
  table.print(out);

  out << "\nend-to-end: p50 " << fmt_or_dash(report.totals_quantile(0.5))
      << "s, p99 " << fmt_or_dash(report.totals_quantile(0.99)) << "s, max "
      << fmt_or_dash(report.totals_quantile(1.0)) << "s\n";
  out << "outcomes:";
  for (const auto& [outcome, count] : report.outcome_counts) {
    out << " " << (outcome.empty() ? "(none)" : outcome) << "=" << count;
  }
  out << "\n";
  if (report.tail_requests > 0) {
    out << "tail (total >= " << fmt_or_dash(report.tail_threshold_seconds)
        << "s, " << report.tail_requests << " request(s)): attribution "
        << fmt_or_dash(100.0 * report.tail_attributed_fraction, 3)
        << "% of latency in named stages";
    if (!std::isnan(report.tail_queue_vs_solve_pct)) {
      out << "; queue-wait "
          << fmt_or_dash(report.tail_queue_vs_solve_pct, 3)
          << "% of queue+solve";
    }
    out << "\n";
    out << "tail dominant stage:";
    for (const auto& [stage, count] : report.tail_dominant_stage) {
      out << " " << stage << "=" << count;
    }
    out << "\n";
  }

  for (const std::string& v : violations) {
    out << "SPAN GATE VIOLATION: " << v << "\n";
  }
  return violations.empty() ? 0 : 1;
}

}  // namespace

int run_inspect_cli(const std::vector<std::string>& args, std::ostream& out,
                    std::ostream& err) {
  if (args.empty()) return usage(err);
  const std::string& command = args[0];
  const std::vector<std::string> rest(args.begin() + 1, args.end());
  if (command == "summary") return cmd_summary(rest, out, err);
  if (command == "diff") return cmd_diff(rest, out, err);
  if (command == "overload") return cmd_overload(rest, out, err);
  if (command == "spans") return cmd_spans(rest, out, err);
  return usage(err);
}

}  // namespace match::obs
