#include "obs/metrics.hpp"

#include <cmath>
#include <functional>
#include <limits>

namespace match::obs {

Histogram::Histogram() : buckets_(kBuckets) {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

double Histogram::bucket_upper(std::size_t i) {
  if (i + 1 >= kBuckets) return std::numeric_limits<double>::infinity();
  return 1e-6 * static_cast<double>(std::uint64_t{1} << i);
}

std::size_t Histogram::bucket_index(double value) const {
  if (!(value > 1e-6)) return 0;  // NaN and everything ≤ 1 µs land in bucket 0
  // value ∈ (1e-6 * 2^(i-1), 1e-6 * 2^i] → bucket i.
  double ratio = value * 1e6;
  int exp = static_cast<int>(std::ceil(std::log2(ratio) - 1e-12));
  if (exp < 0) return 0;
  if (static_cast<std::size_t>(exp) >= kBuckets) return kBuckets - 1;
  return static_cast<std::size_t>(exp);
}

void Histogram::observe(double value) {
  if (std::isnan(value)) return;
  buckets_[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  // Double accumulation via CAS on the bit pattern; contention here is
  // tiny compared to the work being timed.
  std::uint64_t expected = sum_bits_.load(std::memory_order_relaxed);
  while (true) {
    double current = std::bit_cast<double>(expected);
    std::uint64_t desired = std::bit_cast<std::uint64_t>(current + value);
    if (sum_bits_.compare_exchange_weak(expected, desired,
                                        std::memory_order_relaxed)) {
      break;
    }
  }
}

double Histogram::sum() const {
  return std::bit_cast<double>(sum_bits_.load(std::memory_order_relaxed));
}

namespace {

// Nearest-rank quantile over one fixed read of the bucket array; shared
// by the live `quantile()` path and the snapshot path so both report the
// upper bound of the bucket containing the q-th observation.
double quantile_from_buckets(const std::vector<std::uint64_t>& buckets,
                             std::uint64_t total, double q) {
  if (total == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the q-th observation, 1-based ceil like the service layer's
  // nearest-rank percentile.
  std::uint64_t rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(total)));
  if (rank == 0) rank = 1;
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    cumulative += buckets[i];
    if (cumulative >= rank) return Histogram::bucket_upper(i);
  }
  return Histogram::bucket_upper(buckets.empty() ? 0 : buckets.size() - 1);
}

}  // namespace

double Histogram::quantile(double q) const {
  std::vector<std::uint64_t> copy(kBuckets);
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    copy[i] = buckets_[i].load(std::memory_order_relaxed);
    total += copy[i];
  }
  return quantile_from_buckets(copy, total, q);
}

HistogramStats Histogram::stats() const {
  HistogramStats s;
  // One read of the bucket array defines the whole snapshot: `count` is
  // the sum of the buckets read (not the separate count_ atomic, which
  // may run ahead/behind under concurrent observe()), and the quantiles
  // walk the same copy.  Each bucket is monotone, so repeated snapshots
  // never report a shrinking count.
  s.buckets.resize(kBuckets);
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    total += s.buckets[i];
  }
  s.count = total;
  s.sum = sum();
  s.mean = s.count == 0 ? 0.0 : s.sum / static_cast<double>(s.count);
  s.p50 = quantile_from_buckets(s.buckets, total, 0.50);
  s.p90 = quantile_from_buckets(s.buckets, total, 0.90);
  s.p99 = quantile_from_buckets(s.buckets, total, 0.99);
  return s;
}

MetricsRegistry::Shard& MetricsRegistry::shard_for(std::string_view name) {
  return shards_[std::hash<std::string_view>{}(name) % kShards];
}

const MetricsRegistry::Shard& MetricsRegistry::shard_for(
    std::string_view name) const {
  return shards_[std::hash<std::string_view>{}(name) % kShards];
}

Counter& MetricsRegistry::counter(std::string_view name) {
  Shard& shard = shard_for(name);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto& slot = shard.counters[std::string(name)];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  Shard& shard = shard_for(name);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto& slot = shard.gauges[std::string(name)];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  Shard& shard = shard_for(name);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto& slot = shard.histograms[std::string(name)];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

std::uint64_t MetricsRegistry::counter_value(std::string_view name) const {
  const Shard& shard = shard_for(name);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.counters.find(std::string(name));
  return it == shard.counters.end() ? 0 : it->second->value();
}

const Histogram* MetricsRegistry::find_histogram(std::string_view name) const {
  const Shard& shard = shard_for(name);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.histograms.find(std::string(name));
  return it == shard.histograms.end() ? nullptr : it->second.get();
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (const auto& [name, c] : shard.counters) snap.counters[name] = c->value();
    for (const auto& [name, g] : shard.gauges) snap.gauges[name] = g->value();
    for (const auto& [name, h] : shard.histograms) {
      snap.histograms[name] = h->stats();
    }
  }
  return snap;
}

}  // namespace match::obs
