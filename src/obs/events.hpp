#pragma once

// Structured event tracing for solver and service runs.
//
// Every CE-family solver emits a stream of flat `Event` records through
// the `EventSink` attached to its `match::SolverContext`: one
// `kIteration` event per iteration (γ, iteration best, best-so-far,
// elite-cost spread, `P` row-max mean and entropy), `kPhase` events
// timing the draw / cost / sort / update steps, and `kRunStart` /
// `kRunEnd` brackets.  The mapping service adds `kService` events
// (enqueue, cache hit/miss, coalesce, deadline expiry) and solvers flag
// deadline-starved fallback evaluations with `kFallbackDraw`.
//
// Sinks must be thread-safe: the service shares one sink across worker
// pumps, and island solvers emit from pool threads.  Emission must never
// perturb the run itself — sinks observe, they do not touch the RNG
// stream or the optimization state (tests/obs_test.cpp pins this: a
// traced run is byte-identical to an untraced one).
//
// The JSONL serialization (`to_jsonl`/`from_jsonl`) round-trips doubles
// exactly (shortest round-trip form via std::to_chars), so a replayed
// trace reconstructs e.g. the γ trajectory bit-for-bit.  Schema
// reference: docs/OBSERVABILITY.md.

#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace match::obs {

enum class EventKind : std::uint8_t {
  kRunStart,      ///< a solver run began
  kIteration,     ///< one CE iteration / GA generation / island epoch
  kPhase,         ///< timing of one phase (draw/cost/sort/update) of one iteration
  kService,       ///< mapping-service lifecycle (enqueue, cache_hit, ...)
  kFallbackDraw,  ///< cancelled-before-first-batch fallback evaluation
  kRunEnd,        ///< a solver run finished
};

const char* to_string(EventKind kind);

/// Parses the names printed by `to_string`; throws `std::invalid_argument`
/// on unknown names.
EventKind parse_event_kind(std::string_view name);

/// One trace record.  Flat by design: every kind uses a subset of the
/// fields (see the factory helpers), unused fields stay zero/empty, and
/// the JSONL serializer writes only the subset relevant to the kind.
struct Event {
  EventKind kind = EventKind::kIteration;
  /// Correlates all events of one solver run; the service assigns one id
  /// per request, library users pick their own (0 is fine for single runs).
  std::uint64_t run_id = 0;
  std::string solver;  ///< "match", "ce", "fastmap-ga", "island", ...

  std::uint64_t iteration = 0;

  // kIteration payload.
  double gamma = 0.0;          ///< elite threshold γ_k
  double iter_best = 0.0;      ///< best cost in this batch
  double best_so_far = 0.0;    ///< best cost over all batches
  double elite_spread = 0.0;   ///< γ_k − batch best: cost spread inside the elite set
  double row_max_mean = 0.0;   ///< mean over rows of max_j p_ij (0 when no matrix)
  double entropy = 0.0;        ///< mean row entropy of P in bits (0 when no matrix)
  std::uint64_t elite_count = 0;

  // kPhase / kService payload.
  std::string phase;     ///< "draw"|"cost"|"sort"|"update", or the service action
  double seconds = 0.0;  ///< phase duration / request latency

  bool operator==(const Event&) const = default;

  // -- Factories: one per kind, taking exactly the fields the kind uses. --
  static Event run_start(std::uint64_t run_id, std::string_view solver);
  static Event run_end(std::uint64_t run_id, std::string_view solver,
                       std::uint64_t iterations, double best_cost,
                       double seconds);
  static Event iteration_event(std::uint64_t run_id, std::string_view solver,
                               std::uint64_t iteration, double gamma,
                               double iter_best, double best_so_far,
                               double elite_spread, double row_max_mean,
                               double entropy, std::uint64_t elite_count);
  static Event phase_event(std::uint64_t run_id, std::string_view solver,
                           std::uint64_t iteration, std::string_view phase,
                           double seconds);
  static Event service_event(std::uint64_t run_id, std::string_view solver,
                             std::string_view action, double seconds = 0.0);
  static Event fallback_draw(std::uint64_t run_id, std::string_view solver);
};

/// Where events go.  Implementations must be safe to call from multiple
/// threads concurrently and must not throw out of `emit`.
class EventSink {
 public:
  virtual ~EventSink() = default;
  virtual void emit(const Event& event) = 0;
};

/// Discards everything.  Useful as the control arm of overhead
/// measurements (bench/ext_obs_overhead.cpp): the solver still builds and
/// emits every event, only the serialization/storage cost differs.
class NullSink final : public EventSink {
 public:
  void emit(const Event&) override {}
};

/// Serializes each event as one JSON line on an externally owned stream.
/// A single mutex orders concurrent emitters, so interleaved writers
/// never tear lines.
class JsonlSink final : public EventSink {
 public:
  /// The stream must outlive the sink.  Hot-path emits never flush (one
  /// flush per event would dominate tracing cost); the destructor
  /// flushes so a trace survives as long as the sink is torn down, and
  /// long-lived servers call `flush()` at checkpoints so an abnormal
  /// shutdown loses at most the events since the last checkpoint.
  explicit JsonlSink(std::ostream& os) : os_(&os) {}

  ~JsonlSink() override { flush(); }

  void emit(const Event& event) override;

  /// Flushes the underlying stream (serialized with concurrent emits).
  void flush();

  std::size_t emitted() const;

 private:
  std::ostream* os_;
  mutable std::mutex mutex_;
  std::size_t emitted_ = 0;
};

/// Keeps the most recent `capacity` events in memory; older events are
/// dropped (counted).  The cheap always-on sink for in-process
/// inspection.
class RingBufferSink final : public EventSink {
 public:
  explicit RingBufferSink(std::size_t capacity = 4096);

  void emit(const Event& event) override;

  /// Retained events, oldest first.
  std::vector<Event> snapshot() const;

  std::size_t total() const;    ///< events ever emitted
  std::size_t dropped() const;  ///< events evicted by the ring

 private:
  mutable std::mutex mutex_;
  std::size_t capacity_;
  std::vector<Event> ring_;
  std::size_t next_ = 0;   ///< insertion cursor once the ring is full
  std::size_t total_ = 0;
};

/// Duplicates every event to both sinks (either may be null).  Lets the
/// service tee a caller's trace sink with its own accounting sink.
class TeeSink final : public EventSink {
 public:
  TeeSink(EventSink* first, EventSink* second) : first_(first), second_(second) {}

  void emit(const Event& event) override {
    if (first_ != nullptr) first_->emit(event);
    if (second_ != nullptr) second_->emit(event);
  }

 private:
  EventSink* first_;
  EventSink* second_;
};

/// One-line JSON serialization of an event (no trailing newline).
/// Doubles use the shortest form that round-trips exactly.
std::string to_jsonl(const Event& event);

/// Serializes into a caller-owned buffer (appended, not cleared) —
/// lets hot emit paths reuse one allocation across events.
void append_jsonl(std::string& out, const Event& event);

/// Parses a line produced by `to_jsonl`.  Unknown keys are ignored (schema
/// may grow); throws `std::invalid_argument` on malformed input.
Event from_jsonl(std::string_view line);

/// Reads a whole JSONL trace; blank lines are skipped.
std::vector<Event> read_jsonl(std::istream& is);

}  // namespace match::obs
