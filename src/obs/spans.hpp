#pragma once

// Request-scoped span tracing: where a request spent its life.
//
// A `SpanTimeline` is one request's story, keyed by the wire
// `request_id`: a handful of `SpanRecord`s — one per pipeline stage the
// request crossed (reactor read, frame decode, admission decision,
// queue wait, solve, response encode, write/flush) — each with start and
// end offsets on the *monotonic* clock relative to the timeline origin,
// plus an optional outcome tag ("admitted", "shed", "partial", the
// serving solver, ...).  The stamping discipline is single-writer
// hand-off: the reactor owns the timeline until `try_submit` succeeds,
// the worker owns it until the completion callback enqueues it on the
// outbox, and the reactor owns it again until `finish` seals it — the
// outbox mutex provides the happens-before edges, so the timeline itself
// needs no lock.
//
// Completed timelines land in a `FlightRecorder`: a bounded,
// lock-sharded ring that keeps the last-N requests *plus* every request
// slower than a configurable threshold (up to a separate bound), so a
// tail incident an hour old is still dumpable after millions of fast
// requests evicted the rest.  Two dump paths:
//
//   * `render_debug_requests` — bounded JSON for the HttpExposer's
//     `/debug/requests` route;
//   * `attach_stream` — every sealed timeline appended to a JSONL
//     stream (`match_server --span-trace out.jsonl`), doubles in
//     shortest round-trip form exactly like obs/events.cpp, parsed back
//     by `from_span_jsonl` / `read_span_jsonl_lenient` for
//     `match_inspect spans`.
//
// Spans obey the PR 2 pure-observer contract: stamping reads the clock
// and appends to a pre-sized vector — it never touches solver state or
// RNG streams — and every call site is gated so a server without a
// recorder takes zero extra clock reads (pinned by tests/spans_test.cpp
// and the span arm of bench/ext_obs_overhead.cpp, budget < 2%).

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace match::obs {

/// Span timestamps live on the monotonic clock: wall-clock steps (NTP,
/// leap smearing) must never corrupt a duration.
using SpanClock = std::chrono::steady_clock;
static_assert(SpanClock::is_steady,
              "span durations require a monotonic clock");

/// The pipeline stages a request can cross, in pipeline order.
enum class SpanStage : std::uint8_t {
  kAccept,      ///< reactor read readiness → frame decode start
  kDecode,      ///< wire frame → MapRequest
  kAdmission,   ///< instance/solver/deadline/shed decision
  kQueueWait,   ///< service enqueue → worker pickup
  kSolve,       ///< worker pickup → response ready (cache/coalesce/solver)
  kEncode,      ///< response → wire bytes
  kWriteFlush,  ///< wire bytes → socket (or outbox buffer)
};

inline constexpr std::size_t kNumSpanStages = 7;

const char* to_string(SpanStage stage);

/// Inverse of `to_string`; throws `std::invalid_argument` on unknown
/// names.
SpanStage parse_span_stage(std::string_view name);

/// One stage crossing: [start, end] as seconds since the timeline
/// origin, with an optional outcome tag.
struct SpanRecord {
  SpanStage stage = SpanStage::kAccept;
  double start_seconds = 0.0;
  double end_seconds = 0.0;
  std::string outcome;  ///< "" = unremarkable

  double duration_seconds() const { return end_seconds - start_seconds; }

  bool operator==(const SpanRecord&) const = default;
};

/// One request's stage-by-stage latency story.  Plain data plus
/// stamping helpers; see the header comment for the ownership
/// discipline (single writer at any instant, no internal lock).
struct SpanTimeline {
  std::uint64_t request_id = 0;
  /// Terminal decision, `MatchServer::finish` vocabulary ("net.served",
  /// "net.shed", ...); empty until `finalize`.
  std::string outcome;
  std::string solver;  ///< solver name when known ("" otherwise)
  double total_seconds = 0.0;  ///< origin → finalize
  std::vector<SpanRecord> spans;  ///< stamp order == pipeline order

  /// Anchors the relative clock.  Not serialized: offsets are the
  /// portable representation.
  SpanClock::time_point origin{};

  void start(std::uint64_t id, SpanClock::time_point at) {
    request_id = id;
    origin = at;
    spans.reserve(kNumSpanStages);
  }

  /// Appends a stage crossing measured as absolute time points.
  void stamp(SpanStage stage, SpanClock::time_point from,
             SpanClock::time_point to, std::string stage_outcome = {});

  /// Appends a stage crossing already expressed as origin-relative
  /// seconds (tests, tools, benches).
  void stamp_seconds(SpanStage stage, double start_seconds,
                     double end_seconds, std::string stage_outcome = {});

  /// Rewrites the outcome of the *last* span of `stage` (admission
  /// stamps optimistically before `try_submit`, then corrects to "shed"
  /// when the service queue turns out to be full).  No-op when the
  /// stage was never stamped.
  void set_outcome(SpanStage stage, std::string_view stage_outcome);

  /// Seals the timeline: terminal outcome + total.
  void finalize(std::string_view terminal_outcome, SpanClock::time_point at);

  const SpanRecord* find(SpanStage stage) const;

  /// Sum of span durations — the part of `total_seconds` attributed to
  /// named stages.
  double attributed_seconds() const;

  /// `total_seconds` minus attributed: hand-off gaps (outbox crossing,
  /// wakeup latency).  Never negative in a well-formed timeline.
  double unattributed_seconds() const {
    return total_seconds - attributed_seconds();
  }
};

/// One line of JSONL, doubles in shortest round-trip form:
///   {"request":7,"outcome":"net.served","solver":"match","total":...,
///    "spans":[{"stage":"queue_wait","start":...,"end":...},...]}
std::string to_span_jsonl(const SpanTimeline& timeline);
void append_span_jsonl(std::string& out, const SpanTimeline& timeline);

/// Inverse of `to_span_jsonl` (exact doubles); throws
/// `std::invalid_argument` on malformed lines.  Unknown keys are
/// skipped so the schema may grow.
SpanTimeline from_span_jsonl(std::string_view line);

struct SpanTrace {
  std::vector<SpanTimeline> timelines;
  std::size_t total_lines = 0;    ///< non-blank lines seen
  std::size_t skipped_lines = 0;  ///< malformed lines skipped
};

/// Lenient reader: skips-and-counts lines `from_span_jsonl` rejects
/// (a server killed mid-write leaves a torn last line); never throws.
SpanTrace read_span_jsonl_lenient(std::istream& is);

struct FlightRecorderConfig {
  /// Last-N retention: total sealed timelines kept across the shards
  /// regardless of speed.
  std::size_t recent_capacity = 512;

  /// Timelines with `total_seconds >= slow_threshold_seconds` go to a
  /// separate retention list that fast traffic cannot evict.
  double slow_threshold_seconds = 0.100;

  /// Bound on the slow list (FIFO within each shard once full) so a
  /// pathological deployment cannot grow memory without limit.
  std::size_t slow_capacity = 4096;

  /// Lock shards; rounded up to a power of two, min 1.  The reactor is
  /// single-threaded but benches and multi-server processes record
  /// concurrently.
  std::size_t shards = 8;

  void validate() const;
};

/// Bounded retention of sealed SpanTimelines: last-N plus all-slow, a
/// total counter, and an optional JSONL stream.  Thread-safe; `record`
/// takes one shard mutex (plus the stream mutex when attached).
class FlightRecorder {
 public:
  explicit FlightRecorder(FlightRecorderConfig config = {});

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  const FlightRecorderConfig& config() const noexcept { return config_; }

  /// Takes ownership of a sealed timeline.  When a stream is attached
  /// the timeline is serialized (outside the shard lock) and appended
  /// before retention bookkeeping.
  void record(SpanTimeline&& timeline);

  /// Every retained timeline, oldest first (global record order).
  std::vector<SpanTimeline> snapshot() const;

  std::size_t recorded() const;  ///< total ever recorded
  std::size_t dropped() const;   ///< evicted without slow retention

  /// Attaches (or detaches, nullptr) the JSONL stream.  The stream must
  /// outlive the recorder or be detached first; writes are serialized
  /// by an internal mutex.  Call `flush_stream` before reading the file.
  void attach_stream(std::ostream* os);
  void flush_stream();

 private:
  struct Entry {
    std::uint64_t seq = 0;
    SpanTimeline timeline;
  };

  struct Shard {
    mutable std::mutex mutex;
    std::vector<Entry> recent;  ///< ring, next_recent points at oldest
    std::size_t next_recent = 0;
    std::vector<Entry> slow;  ///< FIFO once full (erase front)
  };

  FlightRecorderConfig config_;
  std::size_t shard_mask_ = 0;
  std::vector<Shard> shards_;
  std::size_t recent_per_shard_ = 0;
  std::size_t slow_per_shard_ = 0;
  std::atomic<std::uint64_t> seq_{0};
  std::atomic<std::uint64_t> dropped_{0};

  std::mutex stream_mutex_;
  std::ostream* stream_ = nullptr;
};

/// JSON for the `/debug/requests` route: recorder totals plus the most
/// recent retained timelines, newest first, truncated (whole timelines
/// only) so the document stays under `max_bytes`.
std::string render_debug_requests(const FlightRecorder& recorder,
                                  std::size_t max_bytes = 1u << 20);

}  // namespace match::obs
