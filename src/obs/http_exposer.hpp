#pragma once

// Minimal blocking HTTP/1.1 listener for metrics exposition.
//
// One accept thread serves short-lived GET connections — exactly what a
// Prometheus scraper (or `curl`) sends — with no third-party
// dependencies: POSIX sockets only.  Routes:
//
//   GET /metrics  → 200, the renderer callback's output
//                   (`text/plain; version=0.0.4`)
//   GET /healthz  → 200 `ok`
//   GET <custom>  → 200, any route registered with `add_route` (e.g.
//                   `/debug/requests` renders the span flight recorder)
//   anything else → 404 (or 405 for non-GET methods)
//
// Every response — every status, every route — carries explicit
// `Content-Type`, an exact `Content-Length`, and `Connection: close`,
// so naive HTTP clients never hang waiting for more bytes (pinned by
// tests/prometheus_test.cpp).
//
// Renderers run on the accept thread, so a scrape can never block a
// solver; the usual metrics renderer is `[&] { return
// to_prometheus(registry.snapshot()); }`, which only reads atomics.  If
// a renderer throws, the client gets a 500 and the listener keeps
// serving.  Scrapes are pure observers: they read a `MetricsSnapshot`
// and never touch solver state or RNG streams (pinned by
// tests/obs_test.cpp).
//
// Lifecycle: the constructor binds and starts listening (throwing
// `std::runtime_error` on failure, e.g. port in use); `stop()` — also
// run by the destructor — closes the listening socket and joins the
// thread.  Port 0 binds an ephemeral port; `port()` reports the actual
// one.

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>

namespace match::obs {

struct HttpExposerOptions {
  std::uint16_t port = 0;  ///< 0 = ephemeral, see `HttpExposer::port()`
  /// Loopback by default: metrics are an operator surface, not a
  /// public one.  Use "0.0.0.0" to scrape from another host.
  std::string bind_address = "127.0.0.1";
};

class HttpExposer {
 public:
  using Renderer = std::function<std::string()>;
  using Options = HttpExposerOptions;

  explicit HttpExposer(Renderer render_metrics, Options options = {});
  ~HttpExposer();

  HttpExposer(const HttpExposer&) = delete;
  HttpExposer& operator=(const HttpExposer&) = delete;

  /// The port actually bound (== options.port unless that was 0).
  std::uint16_t port() const { return port_; }

  /// Closes the listener and joins the accept thread.  Idempotent.
  void stop();

  /// Registers (or replaces) a GET route.  The renderer runs on the
  /// accept thread under the same try/catch-→-500 contract as
  /// `/metrics`.  Throws `std::invalid_argument` on a null renderer, a
  /// path not starting with '/', or an attempt to shadow a built-in
  /// route.  Thread-safe; callable while serving.
  void add_route(std::string path, Renderer render,
                 std::string content_type = "application/json");

  /// Connections served so far (any route, including 404s).
  std::uint64_t requests_served() const;

 private:
  struct Route {
    Renderer render;
    std::string content_type;
  };

  void serve();
  void handle_connection(int client_fd);

  Renderer render_metrics_;
  mutable std::mutex routes_mutex_;
  std::map<std::string, Route> routes_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::thread thread_;
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<bool> stopping_{false};
};

}  // namespace match::obs
