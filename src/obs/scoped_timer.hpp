#pragma once

// RAII profiling hooks.
//
// `ScopedTimer` times one scope into a `Histogram` and/or an `EventSink`.
// `PhaseProbe` is the solver-facing helper: it carries the sink/metrics
// pair from a `SolverContext`, and when *disarmed* (no sink, no metrics)
// every call is a no-op that never reads the clock — instrumented solvers
// pay nothing when nobody is listening.

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>

#include "obs/events.hpp"
#include "obs/metrics.hpp"

namespace match::obs {

/// Times from construction to `stop()` (or destruction).  Records the
/// elapsed seconds into an optional histogram and/or emits an optional
/// prototype event with `seconds` filled in.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* histogram, EventSink* sink = nullptr,
                       Event proto = {})
      : histogram_(histogram),
        sink_(sink),
        proto_(std::move(proto)),
        start_(Clock::now()) {}

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() { stop(); }

  /// Stops the timer and records; idempotent.  Returns elapsed seconds.
  double stop() {
    if (stopped_) return elapsed_;
    stopped_ = true;
    elapsed_ = std::chrono::duration<double>(Clock::now() - start_).count();
    if (histogram_ != nullptr) histogram_->observe(elapsed_);
    if (sink_ != nullptr) {
      proto_.seconds = elapsed_;
      sink_->emit(proto_);
    }
    return elapsed_;
  }

 private:
  using Clock = std::chrono::steady_clock;

  Histogram* histogram_;
  EventSink* sink_;
  Event proto_;
  Clock::time_point start_;
  bool stopped_ = false;
  double elapsed_ = 0.0;
};

/// Per-run phase timer for solver loops.  Usage:
///
///   PhaseProbe probe(ctx.sink(), ctx.metrics(), "match", ctx.run_id());
///   for (iter...) {
///     probe.start_iteration(iter);
///     ... draw ...      probe.split("draw");
///     ... cost ...      probe.split("cost");
///   }
///
/// Each `split` emits a `kPhase` event and records into the histogram
/// `<solver>.phase.<phase>_seconds`.  Histogram references are resolved
/// once per phase name and cached, so steady-state splits cost two clock
/// reads plus a relaxed atomic add.
class PhaseProbe {
 public:
  PhaseProbe(EventSink* sink, MetricsRegistry* metrics, std::string solver,
             std::uint64_t run_id)
      : sink_(sink),
        metrics_(metrics),
        solver_(std::move(solver)),
        run_id_(run_id) {}

  /// False when no one is listening; callers may skip loop restructuring
  /// (e.g. keep fused draw+cost loops) entirely.
  bool armed() const { return sink_ != nullptr || metrics_ != nullptr; }

  void start_iteration(std::uint64_t iteration) {
    if (!armed()) return;
    iteration_ = iteration;
    mark_ = Clock::now();
  }

  /// Closes the phase running since the last split/start_iteration.
  void split(std::string_view phase) {
    if (!armed()) return;
    Clock::time_point now = Clock::now();
    double seconds = std::chrono::duration<double>(now - mark_).count();
    mark_ = now;
    if (metrics_ != nullptr) phase_histogram(phase).observe(seconds);
    if (sink_ != nullptr) {
      sink_->emit(Event::phase_event(run_id_, solver_, iteration_, phase, seconds));
    }
  }

 private:
  using Clock = std::chrono::steady_clock;

  Histogram& phase_histogram(std::string_view phase) {
    auto it = histograms_.find(phase);
    if (it != histograms_.end()) return *it->second;
    std::string name = solver_;
    name += ".phase.";
    name += phase;
    name += "_seconds";
    Histogram& h = metrics_->histogram(name);
    histograms_.emplace(std::string(phase), &h);
    return h;
  }

  EventSink* sink_;
  MetricsRegistry* metrics_;
  std::string solver_;
  std::uint64_t run_id_;
  std::uint64_t iteration_ = 0;
  Clock::time_point mark_{};
  // Transparent lookup keeps split(string_view) allocation-free after the
  // first occurrence of each phase name.
  struct SvHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };
  struct SvEq {
    using is_transparent = void;
    bool operator()(std::string_view a, std::string_view b) const { return a == b; }
  };
  std::unordered_map<std::string, Histogram*, SvHash, SvEq> histograms_;
};

}  // namespace match::obs
