#include "obs/bench_report.hpp"

#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <stdexcept>
#include <system_error>
#include <utility>

namespace match::bench {
namespace {

// ---------------------------------------------------------- JSON writing
// (Same shortest-round-trip discipline as obs/events.cpp: a report read
// back from disk compares equal field-for-field.)

void append_double(std::string& out, double value) {
  char buf[32];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  if (ec != std::errc{}) throw std::runtime_error("bench: to_chars failed");
  out.append(buf, ptr);
}

void append_u64(std::string& out, std::uint64_t value) {
  char buf[24];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  if (ec != std::errc{}) throw std::runtime_error("bench: to_chars failed");
  out.append(buf, ptr);
}

void append_string(std::string& out, std::string_view s) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

// ---------------------------------------------------------- JSON parsing
// Minimal recursive-descent parser for the documents this writer emits
// (objects, arrays, strings, numbers).  Numbers keep an exact u64 view
// when the token is integral, so counters beyond 2^53 round-trip.

struct JsonValue {
  enum class Kind { kNumber, kString, kObject, kArray };
  Kind kind = Kind::kNumber;
  double number = 0.0;
  std::uint64_t uinteger = 0;
  bool is_uint = false;
  std::string str;
  std::vector<std::pair<std::string, JsonValue>> object;
  std::vector<JsonValue> array;

  const JsonValue* find(std::string_view key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view s) : s_(s) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const char* what) const {
    throw std::invalid_argument(std::string("bench json: ") + what);
  }
  char peek() const {
    if (pos_ >= s_.size()) fail("truncated document");
    return s_[pos_];
  }
  char next() {
    char c = peek();
    ++pos_;
    return c;
  }
  void expect(char c) {
    if (next() != c) fail("malformed document");
  }
  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') {
      JsonValue v;
      v.kind = JsonValue::Kind::kString;
      v.str = parse_string();
      return v;
    }
    return parse_number();
  }

  JsonValue parse_object() {
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.object.emplace_back(std::move(key), parse_value());
      skip_ws();
      const char sep = next();
      if (sep == '}') break;
      if (sep != ',') fail("expected ',' or '}'");
    }
    return v;
  }

  JsonValue parse_array() {
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(parse_value());
      skip_ws();
      const char sep = next();
      if (sep == ']') break;
      if (sep != ',') fail("expected ',' or ']'");
    }
    return v;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      char c = next();
      if (c == '"') break;
      if (c == '\\') {
        char esc = next();
        switch (esc) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'n': out.push_back('\n'); break;
          case 't': out.push_back('\t'); break;
          case 'r': out.push_back('\r'); break;
          case 'u': {
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = next();
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else fail("bad \\u escape");
            }
            // The writer only emits \u00xx for control bytes.
            out.push_back(static_cast<char>(code & 0xff));
            break;
          }
          default: fail("bad escape");
        }
      } else {
        out.push_back(c);
      }
    }
    return out;
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if ((c >= '0' && c <= '9') || c == '-' || c == '+' || c == '.' ||
          c == 'e' || c == 'E' || c == 'i' || c == 'n' || c == 'f' ||
          c == 'a' || c == 'N' || c == 'I') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) fail("expected a value");
    const std::string_view tok = s_.substr(start, pos_ - start);
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    {
      std::uint64_t u = 0;
      auto [ptr, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), u);
      if (ec == std::errc{} && ptr == tok.data() + tok.size()) {
        v.is_uint = true;
        v.uinteger = u;
      }
    }
    auto [ptr, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), v.number);
    if (ec != std::errc{} || ptr != tok.data() + tok.size()) fail("bad number");
    return v;
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

double as_double(const JsonValue& v) {
  if (v.kind != JsonValue::Kind::kNumber) {
    throw std::invalid_argument("bench json: expected a number");
  }
  return v.number;
}

std::uint64_t as_u64(const JsonValue& v) {
  if (v.kind != JsonValue::Kind::kNumber || !v.is_uint) {
    throw std::invalid_argument("bench json: expected an unsigned integer");
  }
  return v.uinteger;
}

const std::string& as_string(const JsonValue& v) {
  if (v.kind != JsonValue::Kind::kString) {
    throw std::invalid_argument("bench json: expected a string");
  }
  return v.str;
}

}  // namespace

void BenchReport::attach_snapshot(const obs::MetricsSnapshot& snapshot) {
  counters = snapshot.counters;
  gauges = snapshot.gauges;
  histograms = snapshot.histograms;
  // Bucket arrays stay out of the report (see header); drop them so two
  // reports with identical stats compare equal after a round trip.
  for (auto& [hist_name, stats] : histograms) { (void)hist_name; stats.buckets.clear(); }
}

std::string BenchReport::to_json() const {
  std::string out;
  out.reserve(2048);
  out += "{\"name\":";
  append_string(out, name);
  out += ",\"git_sha\":";
  append_string(out, git_sha);
  out += ",\"schema_version\":";
  append_u64(out, kSchemaVersion);

  out += ",\"config\":{";
  bool first = true;
  for (const auto& [key, value] : config) {
    if (!first) out.push_back(',');
    first = false;
    append_string(out, key);
    out.push_back(':');
    append_string(out, value);
  }
  out += "},\"cases\":[";
  first = true;
  for (const BenchCase& c : cases) {
    if (!first) out.push_back(',');
    first = false;
    out += "{\"name\":";
    append_string(out, c.name);
    out += ",\"wall_seconds\":";
    append_double(out, c.wall_seconds);
    out += ",\"metrics\":{";
    bool first_metric = true;
    for (const auto& [key, value] : c.metrics) {
      if (!first_metric) out.push_back(',');
      first_metric = false;
      append_string(out, key);
      out.push_back(':');
      append_double(out, value);
    }
    out += "}}";
  }
  out += "],\"counters\":{";
  first = true;
  for (const auto& [key, value] : counters) {
    if (!first) out.push_back(',');
    first = false;
    append_string(out, key);
    out.push_back(':');
    append_u64(out, value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [key, value] : gauges) {
    if (!first) out.push_back(',');
    first = false;
    append_string(out, key);
    out.push_back(':');
    append_double(out, value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [key, stats] : histograms) {
    if (!first) out.push_back(',');
    first = false;
    append_string(out, key);
    out += ":{\"count\":";
    append_u64(out, stats.count);
    out += ",\"sum\":";
    append_double(out, stats.sum);
    out += ",\"mean\":";
    append_double(out, stats.mean);
    out += ",\"p50\":";
    append_double(out, stats.p50);
    out += ",\"p90\":";
    append_double(out, stats.p90);
    out += ",\"p99\":";
    append_double(out, stats.p99);
    out += "}";
  }
  out += "}}";
  return out;
}

BenchReport BenchReport::from_json(std::string_view json) {
  const JsonValue doc = JsonParser(json).parse_document();
  if (doc.kind != JsonValue::Kind::kObject) {
    throw std::invalid_argument("bench json: document is not an object");
  }
  BenchReport report;
  if (const JsonValue* v = doc.find("name")) report.name = as_string(*v);
  if (const JsonValue* v = doc.find("git_sha")) report.git_sha = as_string(*v);
  if (const JsonValue* v = doc.find("config")) {
    for (const auto& [key, value] : v->object) {
      report.config[key] = as_string(value);
    }
  }
  if (const JsonValue* v = doc.find("cases")) {
    for (const JsonValue& entry : v->array) {
      BenchCase c;
      if (const JsonValue* f = entry.find("name")) c.name = as_string(*f);
      if (const JsonValue* f = entry.find("wall_seconds")) {
        c.wall_seconds = as_double(*f);
      }
      if (const JsonValue* f = entry.find("metrics")) {
        for (const auto& [key, value] : f->object) {
          c.metrics[key] = as_double(value);
        }
      }
      report.cases.push_back(std::move(c));
    }
  }
  if (const JsonValue* v = doc.find("counters")) {
    for (const auto& [key, value] : v->object) {
      report.counters[key] = as_u64(value);
    }
  }
  if (const JsonValue* v = doc.find("gauges")) {
    for (const auto& [key, value] : v->object) {
      report.gauges[key] = as_double(value);
    }
  }
  if (const JsonValue* v = doc.find("histograms")) {
    for (const auto& [key, value] : v->object) {
      obs::HistogramStats stats;
      if (const JsonValue* f = value.find("count")) stats.count = as_u64(*f);
      if (const JsonValue* f = value.find("sum")) stats.sum = as_double(*f);
      if (const JsonValue* f = value.find("mean")) stats.mean = as_double(*f);
      if (const JsonValue* f = value.find("p50")) stats.p50 = as_double(*f);
      if (const JsonValue* f = value.find("p90")) stats.p90 = as_double(*f);
      if (const JsonValue* f = value.find("p99")) stats.p99 = as_double(*f);
      report.histograms[key] = stats;
    }
  }
  return report;
}

std::string BenchReport::write(const std::string& dir) const {
  const std::string path = dir + "/BENCH_" + name + ".json";
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("bench: cannot write " + path);
  }
  out << to_json() << "\n";
  out.flush();
  if (!out) {
    throw std::runtime_error("bench: short write to " + path);
  }
  return path;
}

std::string current_git_sha() {
  if (const char* env = std::getenv("MATCH_GIT_SHA")) {
    if (*env != '\0') return env;
  }
  std::FILE* pipe = ::popen("git rev-parse --short=12 HEAD 2>/dev/null", "r");
  if (pipe == nullptr) return "unknown";
  char buf[64] = {};
  std::string sha;
  if (std::fgets(buf, sizeof(buf), pipe) != nullptr) sha = buf;
  ::pclose(pipe);
  while (!sha.empty() && (sha.back() == '\n' || sha.back() == '\r')) {
    sha.pop_back();
  }
  for (char c : sha) {
    const bool hex = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f');
    if (!hex) return "unknown";
  }
  return sha.empty() ? "unknown" : sha;
}

}  // namespace match::bench
