#pragma once

// Machine-readable benchmark reports: the perf-trajectory artifact.
//
// Lives in `src/obs/` (it started next to the benches) because the
// schema is shared by more than the bench binaries now: every bench
// writes a `BENCH_<name>.json`, and `match_inspect --json` emits the
// same schema so CI consumes one report format everywhere.  Successive
// commits accumulate a comparable series:
//
//   {
//     "name": "ext_obs_overhead",
//     "git_sha": "0123abcd4567",
//     "schema_version": 1,
//     "config": {"n": "30", "reps": "8"},
//     "cases": [
//       {"name": "no observer", "wall_seconds": 0.41,
//        "metrics": {"best_cost": 1234.5}},
//       ...
//     ],
//     "counters": {"service.completed": 160},
//     "gauges": {},
//     "histograms": {
//       "service.latency_seconds":
//         {"count": 160, "sum": 1.25, "mean": ...,
//          "p50": ..., "p90": ..., "p99": ...}
//     }
//   }
//
// `config` holds the protocol knobs (string-valued, so "--full" /
// size lists round-trip verbatim); `cases` one entry per measured
// configuration; the counters/gauges/histograms trio is an optional
// `obs::MetricsSnapshot` so a bench can attach the solver metrics of
// its run.  Doubles serialize in shortest round-trip form and
// `from_json` parses them back exactly, which the schema round-trip
// test (tests/bench_report_test.cpp) pins.

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"

namespace match::bench {

struct BenchCase {
  std::string name;
  double wall_seconds = 0.0;
  /// Additional numeric results (requests/sec, best cost, overhead %...).
  std::map<std::string, double> metrics;

  bool operator==(const BenchCase&) const = default;
};

struct BenchReport {
  static constexpr int kSchemaVersion = 1;

  std::string name;     ///< bench binary name; file becomes BENCH_<name>.json
  std::string git_sha;  ///< fill with current_git_sha() (or leave "unknown")
  std::map<std::string, std::string> config;
  std::vector<BenchCase> cases;

  // Optional solver/service metrics snapshot (histograms keep their
  // summary stats; bucket arrays are an exposition concern, not a
  // trajectory one, and are not serialized).
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, obs::HistogramStats> histograms;

  void attach_snapshot(const obs::MetricsSnapshot& snapshot);

  std::string to_json() const;

  /// Inverse of `to_json`; throws `std::invalid_argument` on malformed
  /// input.  Unknown keys are ignored so the schema may grow.
  static BenchReport from_json(std::string_view json);

  /// Writes `BENCH_<name>.json` under `dir` and returns the path.
  /// Throws `std::runtime_error` when the file cannot be written.
  std::string write(const std::string& dir = ".") const;
};

/// `$MATCH_GIT_SHA` when set (CI pins the exact sha), else
/// `git rev-parse --short=12 HEAD`, else "unknown".
std::string current_git_sha();

}  // namespace match::bench
