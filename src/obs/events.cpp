#include "obs/events.hpp"

#include <array>
#include <charconv>
#include <cstdlib>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <system_error>

namespace match::obs {
namespace {

struct KindName {
  EventKind kind;
  const char* name;
};

constexpr std::array<KindName, 6> kKindNames{{
    {EventKind::kRunStart, "run_start"},
    {EventKind::kIteration, "iteration"},
    {EventKind::kPhase, "phase"},
    {EventKind::kService, "service"},
    {EventKind::kFallbackDraw, "fallback_draw"},
    {EventKind::kRunEnd, "run_end"},
}};

// Shortest decimal form that parses back to the identical double.
void append_double(std::string& out, double value) {
  char buf[32];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  if (ec != std::errc{}) throw std::runtime_error("obs: double to_chars failed");
  out.append(buf, ptr);
}

void append_u64(std::string& out, std::uint64_t value) {
  char buf[24];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  if (ec != std::errc{}) throw std::runtime_error("obs: u64 to_chars failed");
  out.append(buf, ptr);
}

// Event strings are identifiers ("match", "cache_hit"); escape the JSON
// specials anyway so arbitrary solver names cannot corrupt the line.
void append_json_string(std::string& out, std::string_view s) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

// --- Minimal parser for the flat one-level objects `to_jsonl` emits. ---

class LineParser {
 public:
  explicit LineParser(std::string_view line) : s_(line) {}

  Event parse() {
    Event e;
    bool saw_kind = false;
    skip_ws();
    expect('{');
    skip_ws();
    if (peek() == '}') {
      throw std::invalid_argument("obs: event line has no kind");
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      skip_ws();
      if (key == "kind") {
        e.kind = parse_event_kind(parse_string());
        saw_kind = true;
      } else if (key == "solver") {
        e.solver = parse_string();
      } else if (key == "phase") {
        e.phase = parse_string();
      } else if (key == "run") {
        e.run_id = parse_u64();
      } else if (key == "iter") {
        e.iteration = parse_u64();
      } else if (key == "elite") {
        e.elite_count = parse_u64();
      } else if (key == "gamma") {
        e.gamma = parse_double();
      } else if (key == "iter_best") {
        e.iter_best = parse_double();
      } else if (key == "best") {
        e.best_so_far = parse_double();
      } else if (key == "spread") {
        e.elite_spread = parse_double();
      } else if (key == "row_max_mean") {
        e.row_max_mean = parse_double();
      } else if (key == "entropy") {
        e.entropy = parse_double();
      } else if (key == "seconds") {
        e.seconds = parse_double();
      } else {
        skip_value();  // forward compatibility: ignore unknown keys
      }
      skip_ws();
      char c = next();
      if (c == '}') break;
      if (c != ',') throw std::invalid_argument("obs: expected ',' or '}'");
    }
    if (!saw_kind) throw std::invalid_argument("obs: event line has no kind");
    return e;
  }

 private:
  char peek() const {
    if (pos_ >= s_.size()) throw std::invalid_argument("obs: truncated event line");
    return s_[pos_];
  }
  char next() {
    char c = peek();
    ++pos_;
    return c;
  }
  void expect(char c) {
    if (next() != c) throw std::invalid_argument("obs: malformed event line");
  }
  void skip_ws() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t')) ++pos_;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      char c = next();
      if (c == '"') break;
      if (c == '\\') {
        char esc = next();
        switch (esc) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case 'n': out.push_back('\n'); break;
          case 't': out.push_back('\t'); break;
          case 'r': out.push_back('\r'); break;
          case 'u': {
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = next();
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else throw std::invalid_argument("obs: bad \\u escape");
            }
            // to_jsonl only emits \u00xx for control bytes.
            out.push_back(static_cast<char>(code & 0xff));
            break;
          }
          default: throw std::invalid_argument("obs: bad escape");
        }
      } else {
        out.push_back(c);
      }
    }
    return out;
  }

  std::string_view number_token() {
    std::size_t start = pos_;
    while (pos_ < s_.size()) {
      char c = s_[pos_];
      if ((c >= '0' && c <= '9') || c == '-' || c == '+' || c == '.' ||
          c == 'e' || c == 'E' || c == 'i' || c == 'n' || c == 'f' ||
          c == 'a' || c == 'N') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) throw std::invalid_argument("obs: expected number");
    return s_.substr(start, pos_ - start);
  }

  std::uint64_t parse_u64() {
    std::string_view tok = number_token();
    std::uint64_t v = 0;
    auto [ptr, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), v);
    if (ec != std::errc{} || ptr != tok.data() + tok.size()) {
      throw std::invalid_argument("obs: bad integer");
    }
    return v;
  }

  double parse_double() {
    std::string_view tok = number_token();
    double v = 0.0;
    auto [ptr, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), v);
    if (ec != std::errc{} || ptr != tok.data() + tok.size()) {
      throw std::invalid_argument("obs: bad double");
    }
    return v;
  }

  void skip_value() {
    char c = peek();
    if (c == '"') {
      (void)parse_string();
    } else {
      (void)number_token();
    }
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

}  // namespace

const char* to_string(EventKind kind) {
  for (const auto& kn : kKindNames) {
    if (kn.kind == kind) return kn.name;
  }
  return "unknown";
}

EventKind parse_event_kind(std::string_view name) {
  for (const auto& kn : kKindNames) {
    if (name == kn.name) return kn.kind;
  }
  throw std::invalid_argument("obs: unknown event kind '" + std::string(name) + "'");
}

Event Event::run_start(std::uint64_t run_id, std::string_view solver) {
  Event e;
  e.kind = EventKind::kRunStart;
  e.run_id = run_id;
  e.solver = solver;
  return e;
}

Event Event::run_end(std::uint64_t run_id, std::string_view solver,
                     std::uint64_t iterations, double best_cost,
                     double seconds) {
  Event e;
  e.kind = EventKind::kRunEnd;
  e.run_id = run_id;
  e.solver = solver;
  e.iteration = iterations;
  e.best_so_far = best_cost;
  e.seconds = seconds;
  return e;
}

Event Event::iteration_event(std::uint64_t run_id, std::string_view solver,
                             std::uint64_t iteration, double gamma,
                             double iter_best, double best_so_far,
                             double elite_spread, double row_max_mean,
                             double entropy, std::uint64_t elite_count) {
  Event e;
  e.kind = EventKind::kIteration;
  e.run_id = run_id;
  e.solver = solver;
  e.iteration = iteration;
  e.gamma = gamma;
  e.iter_best = iter_best;
  e.best_so_far = best_so_far;
  e.elite_spread = elite_spread;
  e.row_max_mean = row_max_mean;
  e.entropy = entropy;
  e.elite_count = elite_count;
  return e;
}

Event Event::phase_event(std::uint64_t run_id, std::string_view solver,
                         std::uint64_t iteration, std::string_view phase,
                         double seconds) {
  Event e;
  e.kind = EventKind::kPhase;
  e.run_id = run_id;
  e.solver = solver;
  e.iteration = iteration;
  e.phase = phase;
  e.seconds = seconds;
  return e;
}

Event Event::service_event(std::uint64_t run_id, std::string_view solver,
                           std::string_view action, double seconds) {
  Event e;
  e.kind = EventKind::kService;
  e.run_id = run_id;
  e.solver = solver;
  e.phase = action;
  e.seconds = seconds;
  return e;
}

Event Event::fallback_draw(std::uint64_t run_id, std::string_view solver) {
  Event e;
  e.kind = EventKind::kFallbackDraw;
  e.run_id = run_id;
  e.solver = solver;
  return e;
}

std::string to_jsonl(const Event& event) {
  std::string out;
  out.reserve(192);
  append_jsonl(out, event);
  return out;
}

void append_jsonl(std::string& out, const Event& event) {
  out += "{\"kind\":";
  append_json_string(out, to_string(event.kind));
  out += ",\"run\":";
  append_u64(out, event.run_id);
  if (!event.solver.empty()) {
    out += ",\"solver\":";
    append_json_string(out, event.solver);
  }
  switch (event.kind) {
    case EventKind::kRunStart:
      break;
    case EventKind::kIteration:
      out += ",\"iter\":";
      append_u64(out, event.iteration);
      out += ",\"gamma\":";
      append_double(out, event.gamma);
      out += ",\"iter_best\":";
      append_double(out, event.iter_best);
      out += ",\"best\":";
      append_double(out, event.best_so_far);
      out += ",\"spread\":";
      append_double(out, event.elite_spread);
      out += ",\"row_max_mean\":";
      append_double(out, event.row_max_mean);
      out += ",\"entropy\":";
      append_double(out, event.entropy);
      out += ",\"elite\":";
      append_u64(out, event.elite_count);
      break;
    case EventKind::kPhase:
      out += ",\"iter\":";
      append_u64(out, event.iteration);
      out += ",\"phase\":";
      append_json_string(out, event.phase);
      out += ",\"seconds\":";
      append_double(out, event.seconds);
      break;
    case EventKind::kService:
      out += ",\"phase\":";
      append_json_string(out, event.phase);
      out += ",\"seconds\":";
      append_double(out, event.seconds);
      break;
    case EventKind::kFallbackDraw:
      break;
    case EventKind::kRunEnd:
      out += ",\"iter\":";
      append_u64(out, event.iteration);
      out += ",\"best\":";
      append_double(out, event.best_so_far);
      out += ",\"seconds\":";
      append_double(out, event.seconds);
      break;
  }
  out.push_back('}');
}

Event from_jsonl(std::string_view line) { return LineParser(line).parse(); }

std::vector<Event> read_jsonl(std::istream& is) {
  std::vector<Event> events;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    events.push_back(from_jsonl(line));
  }
  return events;
}

void JsonlSink::emit(const Event& event) {
  // Serialization happens outside the lock, into a thread-reused buffer:
  // no per-event allocation, and contention is limited to the write.
  thread_local std::string line;
  line.clear();
  append_jsonl(line, event);
  line.push_back('\n');
  std::lock_guard<std::mutex> lock(mutex_);
  os_->write(line.data(), static_cast<std::streamsize>(line.size()));
  ++emitted_;
}

void JsonlSink::flush() {
  std::lock_guard<std::mutex> lock(mutex_);
  os_->flush();
}

std::size_t JsonlSink::emitted() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return emitted_;
}

RingBufferSink::RingBufferSink(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  ring_.reserve(capacity_);
}

void RingBufferSink::emit(const Event& event) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++total_;
  if (ring_.size() < capacity_) {
    ring_.push_back(event);
  } else {
    ring_[next_] = event;
    next_ = (next_ + 1) % capacity_;
  }
}

std::vector<Event> RingBufferSink::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Event> out;
  out.reserve(ring_.size());
  // `next_` points at the oldest element once the ring is full.
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  return out;
}

std::size_t RingBufferSink::total() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_;
}

std::size_t RingBufferSink::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_ - ring_.size();
}

}  // namespace match::obs
