#include "obs/spans.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <charconv>
#include <cstdio>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <system_error>
#include <utility>

namespace match::obs {
namespace {

struct StageName {
  SpanStage stage;
  const char* name;
};

constexpr std::array<StageName, kNumSpanStages> kStageNames{{
    {SpanStage::kAccept, "accept"},
    {SpanStage::kDecode, "decode"},
    {SpanStage::kAdmission, "admission"},
    {SpanStage::kQueueWait, "queue_wait"},
    {SpanStage::kSolve, "solve"},
    {SpanStage::kEncode, "encode"},
    {SpanStage::kWriteFlush, "write_flush"},
}};

// Same shortest-round-trip discipline as obs/events.cpp: a timeline read
// back from disk compares equal span-for-span.

void append_double(std::string& out, double value) {
  char buf[32];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  if (ec != std::errc{}) throw std::runtime_error("spans: to_chars failed");
  out.append(buf, ptr);
}

void append_u64(std::string& out, std::uint64_t value) {
  char buf[24];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  if (ec != std::errc{}) throw std::runtime_error("spans: to_chars failed");
  out.append(buf, ptr);
}

void append_json_string(std::string& out, std::string_view s) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

double seconds_between(SpanClock::time_point from, SpanClock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

// --- Minimal parser for the one-timeline-per-line documents the writer
// emits: a flat object whose only nesting is the "spans" array of flat
// objects.  (obs/events.cpp's LineParser is flat-only, so spans carry
// their own.)

class TimelineParser {
 public:
  explicit TimelineParser(std::string_view line) : s_(line) {}

  SpanTimeline parse() {
    SpanTimeline tl;
    bool saw_request = false;
    skip_ws();
    expect('{');
    skip_ws();
    if (peek() == '}') {
      throw std::invalid_argument("spans: timeline line has no request id");
    }
    while (true) {
      skip_ws();
      const std::string key = parse_string();
      skip_ws();
      expect(':');
      skip_ws();
      if (key == "request") {
        tl.request_id = parse_u64();
        saw_request = true;
      } else if (key == "outcome") {
        tl.outcome = parse_string();
      } else if (key == "solver") {
        tl.solver = parse_string();
      } else if (key == "total") {
        tl.total_seconds = parse_double();
      } else if (key == "spans") {
        parse_spans(tl);
      } else {
        skip_value();  // forward compatibility
      }
      skip_ws();
      const char c = next();
      if (c == '}') break;
      if (c != ',') throw std::invalid_argument("spans: expected ',' or '}'");
    }
    if (!saw_request) {
      throw std::invalid_argument("spans: timeline line has no request id");
    }
    skip_ws();
    if (pos_ != s_.size()) {
      throw std::invalid_argument("spans: trailing characters after timeline");
    }
    return tl;
  }

 private:
  char peek() const {
    if (pos_ >= s_.size()) {
      throw std::invalid_argument("spans: truncated timeline line");
    }
    return s_[pos_];
  }
  char next() {
    char c = peek();
    ++pos_;
    return c;
  }
  void expect(char c) {
    if (next() != c) throw std::invalid_argument("spans: malformed line");
  }
  void skip_ws() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t')) ++pos_;
  }

  void parse_spans(SpanTimeline& tl) {
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return;
    }
    while (true) {
      skip_ws();
      tl.spans.push_back(parse_span());
      skip_ws();
      const char c = next();
      if (c == ']') break;
      if (c != ',') throw std::invalid_argument("spans: expected ',' or ']'");
    }
  }

  SpanRecord parse_span() {
    SpanRecord span;
    bool saw_stage = false;
    expect('{');
    while (true) {
      skip_ws();
      const std::string key = parse_string();
      skip_ws();
      expect(':');
      skip_ws();
      if (key == "stage") {
        span.stage = parse_span_stage(parse_string());
        saw_stage = true;
      } else if (key == "start") {
        span.start_seconds = parse_double();
      } else if (key == "end") {
        span.end_seconds = parse_double();
      } else if (key == "outcome") {
        span.outcome = parse_string();
      } else {
        skip_value();
      }
      skip_ws();
      const char c = next();
      if (c == '}') break;
      if (c != ',') throw std::invalid_argument("spans: expected ',' or '}'");
    }
    if (!saw_stage) throw std::invalid_argument("spans: span has no stage");
    return span;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      char c = next();
      if (c == '"') break;
      if (c == '\\') {
        char esc = next();
        switch (esc) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case 'n': out.push_back('\n'); break;
          case 't': out.push_back('\t'); break;
          case 'r': out.push_back('\r'); break;
          case 'u': {
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = next();
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                throw std::invalid_argument("spans: bad \\u escape");
              }
            }
            // The writer only emits \u00xx for control bytes.
            out.push_back(static_cast<char>(code & 0xff));
            break;
          }
          default: throw std::invalid_argument("spans: bad escape");
        }
      } else {
        out.push_back(c);
      }
    }
    return out;
  }

  std::string_view number_token() {
    const std::size_t start = pos_;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if ((c >= '0' && c <= '9') || c == '-' || c == '+' || c == '.' ||
          c == 'e' || c == 'E' || c == 'i' || c == 'n' || c == 'f' ||
          c == 'a' || c == 'N') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) throw std::invalid_argument("spans: expected number");
    return s_.substr(start, pos_ - start);
  }

  std::uint64_t parse_u64() {
    const std::string_view tok = number_token();
    std::uint64_t v = 0;
    auto [ptr, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), v);
    if (ec != std::errc{} || ptr != tok.data() + tok.size()) {
      throw std::invalid_argument("spans: bad integer");
    }
    return v;
  }

  double parse_double() {
    const std::string_view tok = number_token();
    double v = 0.0;
    auto [ptr, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), v);
    if (ec != std::errc{} || ptr != tok.data() + tok.size()) {
      throw std::invalid_argument("spans: bad double");
    }
    return v;
  }

  void skip_value() {
    const char c = peek();
    if (c == '"') {
      (void)parse_string();
    } else if (c == '{' || c == '[') {
      // Balanced skip: good enough for the flat-ish documents we emit.
      const char open = next();
      const char close = open == '{' ? '}' : ']';
      std::size_t depth = 1;
      while (depth > 0) {
        const char d = next();
        if (d == '"') {
          --pos_;
          (void)parse_string();
        } else if (d == open) {
          ++depth;
        } else if (d == close) {
          --depth;
        }
      }
    } else {
      (void)number_token();
    }
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

}  // namespace

const char* to_string(SpanStage stage) {
  for (const StageName& sn : kStageNames) {
    if (sn.stage == stage) return sn.name;
  }
  return "unknown";
}

SpanStage parse_span_stage(std::string_view name) {
  for (const StageName& sn : kStageNames) {
    if (name == sn.name) return sn.stage;
  }
  throw std::invalid_argument("spans: unknown stage '" + std::string(name) +
                              "'");
}

void SpanTimeline::stamp(SpanStage stage, SpanClock::time_point from,
                         SpanClock::time_point to, std::string stage_outcome) {
  stamp_seconds(stage, seconds_between(origin, from),
                seconds_between(origin, to), std::move(stage_outcome));
}

void SpanTimeline::stamp_seconds(SpanStage stage, double start_seconds,
                                 double end_seconds,
                                 std::string stage_outcome) {
  SpanRecord span;
  span.stage = stage;
  span.start_seconds = start_seconds;
  span.end_seconds = end_seconds;
  span.outcome = std::move(stage_outcome);
  spans.push_back(std::move(span));
}

void SpanTimeline::set_outcome(SpanStage stage,
                               std::string_view stage_outcome) {
  for (auto it = spans.rbegin(); it != spans.rend(); ++it) {
    if (it->stage == stage) {
      it->outcome = stage_outcome;
      return;
    }
  }
}

void SpanTimeline::finalize(std::string_view terminal_outcome,
                            SpanClock::time_point at) {
  outcome = terminal_outcome;
  total_seconds = seconds_between(origin, at);
}

const SpanRecord* SpanTimeline::find(SpanStage stage) const {
  for (const SpanRecord& span : spans) {
    if (span.stage == stage) return &span;
  }
  return nullptr;
}

double SpanTimeline::attributed_seconds() const {
  double sum = 0.0;
  for (const SpanRecord& span : spans) sum += span.duration_seconds();
  return sum;
}

void append_span_jsonl(std::string& out, const SpanTimeline& timeline) {
  out += "{\"request\":";
  append_u64(out, timeline.request_id);
  out += ",\"outcome\":";
  append_json_string(out, timeline.outcome);
  if (!timeline.solver.empty()) {
    out += ",\"solver\":";
    append_json_string(out, timeline.solver);
  }
  out += ",\"total\":";
  append_double(out, timeline.total_seconds);
  out += ",\"spans\":[";
  bool first = true;
  for (const SpanRecord& span : timeline.spans) {
    if (!first) out.push_back(',');
    first = false;
    out += "{\"stage\":";
    append_json_string(out, to_string(span.stage));
    out += ",\"start\":";
    append_double(out, span.start_seconds);
    out += ",\"end\":";
    append_double(out, span.end_seconds);
    if (!span.outcome.empty()) {
      out += ",\"outcome\":";
      append_json_string(out, span.outcome);
    }
    out.push_back('}');
  }
  out += "]}";
}

std::string to_span_jsonl(const SpanTimeline& timeline) {
  std::string out;
  out.reserve(256);
  append_span_jsonl(out, timeline);
  return out;
}

SpanTimeline from_span_jsonl(std::string_view line) {
  return TimelineParser(line).parse();
}

SpanTrace read_span_jsonl_lenient(std::istream& is) {
  SpanTrace out;
  std::string line;
  while (std::getline(is, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    ++out.total_lines;
    try {
      out.timelines.push_back(from_span_jsonl(line));
    } catch (const std::exception&) {
      ++out.skipped_lines;
    }
  }
  return out;
}

// -------------------------------------------------------- FlightRecorder

void FlightRecorderConfig::validate() const {
  if (recent_capacity == 0) {
    throw std::invalid_argument(
        "FlightRecorderConfig: recent_capacity must be >= 1");
  }
  if (slow_threshold_seconds < 0.0) {
    throw std::invalid_argument(
        "FlightRecorderConfig: slow_threshold_seconds must be >= 0");
  }
}

FlightRecorder::FlightRecorder(FlightRecorderConfig config)
    : config_(config) {
  config_.validate();
  const std::size_t shard_count =
      std::bit_ceil(std::max<std::size_t>(config_.shards, 1));
  shard_mask_ = shard_count - 1;
  shards_ = std::vector<Shard>(shard_count);
  recent_per_shard_ =
      std::max<std::size_t>(1, (config_.recent_capacity + shard_count - 1) /
                                   shard_count);
  slow_per_shard_ =
      std::max<std::size_t>(1, (config_.slow_capacity + shard_count - 1) /
                                   shard_count);
  for (Shard& shard : shards_) shard.recent.reserve(recent_per_shard_);
}

void FlightRecorder::record(SpanTimeline&& timeline) {
  {
    std::lock_guard<std::mutex> lock(stream_mutex_);
    if (stream_ != nullptr) {
      thread_local std::string line;
      line.clear();
      append_span_jsonl(line, timeline);
      line.push_back('\n');
      stream_->write(line.data(), static_cast<std::streamsize>(line.size()));
    }
  }

  Entry entry;
  entry.seq = seq_.fetch_add(1, std::memory_order_relaxed);
  const bool slow = timeline.total_seconds >= config_.slow_threshold_seconds;
  entry.timeline = std::move(timeline);

  Shard& shard = shards_[entry.seq & shard_mask_];
  std::lock_guard<std::mutex> lock(shard.mutex);
  if (slow) {
    if (shard.slow.size() >= slow_per_shard_) {
      shard.slow.erase(shard.slow.begin());
      dropped_.fetch_add(1, std::memory_order_relaxed);
    }
    shard.slow.push_back(std::move(entry));
    return;
  }
  if (shard.recent.size() < recent_per_shard_) {
    shard.recent.push_back(std::move(entry));
  } else {
    shard.recent[shard.next_recent] = std::move(entry);
    shard.next_recent = (shard.next_recent + 1) % recent_per_shard_;
    dropped_.fetch_add(1, std::memory_order_relaxed);
  }
}

std::vector<SpanTimeline> FlightRecorder::snapshot() const {
  std::vector<Entry> entries;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    entries.insert(entries.end(), shard.recent.begin(), shard.recent.end());
    entries.insert(entries.end(), shard.slow.begin(), shard.slow.end());
  }
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.seq < b.seq; });
  std::vector<SpanTimeline> out;
  out.reserve(entries.size());
  for (Entry& entry : entries) out.push_back(std::move(entry.timeline));
  return out;
}

std::size_t FlightRecorder::recorded() const {
  return seq_.load(std::memory_order_relaxed);
}

std::size_t FlightRecorder::dropped() const {
  return dropped_.load(std::memory_order_relaxed);
}

void FlightRecorder::attach_stream(std::ostream* os) {
  std::lock_guard<std::mutex> lock(stream_mutex_);
  stream_ = os;
}

void FlightRecorder::flush_stream() {
  std::lock_guard<std::mutex> lock(stream_mutex_);
  if (stream_ != nullptr) stream_->flush();
}

std::string render_debug_requests(const FlightRecorder& recorder,
                                  std::size_t max_bytes) {
  std::vector<SpanTimeline> timelines = recorder.snapshot();
  std::string out;
  out.reserve(std::min<std::size_t>(max_bytes, 64 * 1024));
  out += "{\"recorded\":";
  append_u64(out, recorder.recorded());
  out += ",\"dropped\":";
  append_u64(out, recorder.dropped());
  out += ",\"retained\":";
  append_u64(out, timelines.size());

  // Newest first, whole timelines only, hard byte budget: an operator
  // hitting /debug/requests during an incident wants the fresh tail,
  // not a 100 MB dump.
  std::string body;
  std::size_t returned = 0;
  for (auto it = timelines.rbegin(); it != timelines.rend(); ++it) {
    std::string one;
    append_span_jsonl(one, *it);
    // +64 leaves room for the envelope's closing bookkeeping.
    if (out.size() + body.size() + one.size() + 64 > max_bytes) break;
    if (!body.empty()) body.push_back(',');
    body += one;
    ++returned;
  }
  out += ",\"returned\":";
  append_u64(out, returned);
  out += ",\"requests\":[";
  out += body;
  out += "]}";
  return out;
}

}  // namespace match::obs
