#include "obs/http_exposer.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <stdexcept>
#include <string_view>

#include "net/socket_util.hpp"

namespace match::obs {
namespace {

void write_all(int fd, std::string_view data) {
  // Best-effort: a client that went away mid-response is its problem.
  (void)net::send_all(fd, data.data(), data.size());
}

std::string make_response(int status, const char* reason,
                          const char* content_type, std::string_view body) {
  std::string out;
  out.reserve(body.size() + 128);
  out += "HTTP/1.1 ";
  out += std::to_string(status);
  out.push_back(' ');
  out += reason;
  out += "\r\nContent-Type: ";
  out += content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(body.size());
  out += "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

}  // namespace

HttpExposer::HttpExposer(Renderer render_metrics, Options options)
    : render_metrics_(std::move(render_metrics)) {
  if (!render_metrics_) {
    throw std::invalid_argument("HttpExposer: null renderer");
  }
  net::ListenerOptions listener;
  listener.bind_address = options.bind_address;
  listener.port = options.port;
  listener.backlog = 16;
  try {
    listen_fd_ = net::open_listener(listener);
    port_ = net::bound_port(listen_fd_);
  } catch (const std::exception& e) {
    net::close_fd(listen_fd_);
    throw std::runtime_error(std::string("HttpExposer: ") + e.what());
  }
  thread_ = std::thread([this] { serve(); });
}

HttpExposer::~HttpExposer() { stop(); }

void HttpExposer::stop() {
  if (!stopping_.exchange(true)) {
    // shutdown() wakes the blocking accept(); the serve loop then sees
    // stopping_ and exits.
    if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  }
  if (thread_.joinable()) thread_.join();
  net::close_fd(listen_fd_);
}

std::uint64_t HttpExposer::requests_served() const {
  return requests_.load(std::memory_order_relaxed);
}

void HttpExposer::add_route(std::string path, Renderer render,
                            std::string content_type) {
  if (!render) {
    throw std::invalid_argument("HttpExposer::add_route: null renderer");
  }
  if (path.empty() || path.front() != '/') {
    throw std::invalid_argument(
        "HttpExposer::add_route: path must start with '/'");
  }
  if (path == "/metrics" || path == "/healthz") {
    throw std::invalid_argument(
        "HttpExposer::add_route: cannot shadow a built-in route");
  }
  std::lock_guard<std::mutex> lock(routes_mutex_);
  routes_[std::move(path)] =
      Route{std::move(render), std::move(content_type)};
}

void HttpExposer::serve() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    const int client = net::accept_retry(listen_fd_);
    if (client < 0) {
      if (stopping_.load(std::memory_order_relaxed)) return;
      // Transient accept failure (e.g. EMFILE); keep listening.
      continue;
    }
    handle_connection(client);
    ::close(client);
    requests_.fetch_add(1, std::memory_order_relaxed);
  }
}

void HttpExposer::handle_connection(int client_fd) {
  // A slow or stuck client must not wedge the single accept thread.
  timeval timeout{};
  timeout.tv_sec = 5;
  ::setsockopt(client_fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  ::setsockopt(client_fd, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout));

  // Read until the end of the request head; the routes take no bodies,
  // so everything past the blank line is ignored.
  std::string request;
  char buf[2048];
  while (request.find("\r\n\r\n") == std::string::npos &&
         request.size() < 16 * 1024) {
    const ssize_t n = ::recv(client_fd, buf, sizeof(buf), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      break;
    }
    request.append(buf, static_cast<std::size_t>(n));
  }

  const std::size_t line_end = request.find("\r\n");
  const std::string_view request_line =
      std::string_view(request).substr(0, line_end);
  const std::size_t method_end = request_line.find(' ');
  if (method_end == std::string_view::npos) {
    write_all(client_fd,
              make_response(400, "Bad Request", "text/plain", "bad request\n"));
    return;
  }
  const std::string_view method = request_line.substr(0, method_end);
  std::string_view target = request_line.substr(method_end + 1);
  target = target.substr(0, target.find(' '));
  target = target.substr(0, target.find('?'));  // ignore query strings

  if (method != "GET" && method != "HEAD") {
    write_all(client_fd, make_response(405, "Method Not Allowed", "text/plain",
                                       "only GET is served here\n"));
    return;
  }

  std::string response;
  if (target == "/metrics") {
    try {
      response = make_response(200, "OK", "text/plain; version=0.0.4",
                               render_metrics_());
    } catch (...) {
      response = make_response(500, "Internal Server Error", "text/plain",
                               "metrics renderer failed\n");
    }
  } else if (target == "/healthz") {
    response = make_response(200, "OK", "text/plain", "ok\n");
  } else {
    Route route;
    bool found = false;
    {
      std::lock_guard<std::mutex> lock(routes_mutex_);
      const auto it = routes_.find(std::string(target));
      if (it != routes_.end()) {
        route = it->second;  // copy: render outside the lock
        found = true;
      }
    }
    if (found) {
      try {
        response =
            make_response(200, "OK", route.content_type.c_str(), route.render());
      } catch (...) {
        response = make_response(500, "Internal Server Error", "text/plain",
                                 "route renderer failed\n");
      }
    } else {
      response = make_response(404, "Not Found", "text/plain",
                               "try /metrics or /healthz\n");
    }
  }
  if (method == "HEAD") {
    response.resize(response.find("\r\n\r\n") + 4);
  }
  write_all(client_fd, response);
}

}  // namespace match::obs
