#pragma once

#include <cassert>
#include <cmath>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "rng/xoshiro256ss.hpp"

namespace match::rng {

/// Convenience façade over Xoshiro256ss providing the distributions the
/// library actually uses.  All draws are deterministic functions of the
/// seed, independent of platform and standard-library version (we do not
/// use `std::uniform_int_distribution` et al., whose outputs are
/// implementation-defined).
class Rng {
 public:
  static constexpr double kPi = 3.14159265358979323846;

  explicit Rng(std::uint64_t seed = 0x2545f4914f6cdd1dULL) : gen_(seed) {}
  explicit Rng(Xoshiro256ss gen) : gen_(gen) {}

  /// Raw 64 random bits.
  std::uint64_t bits() { return gen_.next(); }

  /// Uniform integer in [0, bound) using Lemire's multiply-shift rejection
  /// method (unbiased).  `bound` must be positive.
  std::uint64_t below(std::uint64_t bound) {
    assert(bound > 0);
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wpedantic"
    using u128 = unsigned __int128;
#pragma GCC diagnostic pop
    std::uint64_t x = gen_.next();
    u128 m = static_cast<u128>(x) * static_cast<u128>(bound);
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = gen_.next();
        m = static_cast<u128>(x) * static_cast<u128>(bound);
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in the inclusive range [lo, hi].
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    assert(lo <= hi);
    const auto width = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(below(width));
  }

  /// Uniform real in [0, 1) with 53 random bits of mantissa.
  double uniform() {
    return static_cast<double>(gen_.next() >> 11) * 0x1.0p-53;
  }

  /// Uniform real in [lo, hi).
  double uniform_real(double lo, double hi) {
    return lo + (hi - lo) * uniform();
  }

  /// Bernoulli trial with success probability `p`.
  bool bernoulli(double p) { return uniform() < p; }

  /// Exponentially distributed value with rate `lambda` (mean 1/lambda).
  double exponential(double lambda) {
    assert(lambda > 0.0);
    // 1 - uniform() is in (0, 1], so the log is finite.
    return -std::log(1.0 - uniform()) / lambda;
  }

  /// Normally distributed value (Box–Muller; one draw per call, fully
  /// deterministic — no cached spare, so interleaving with other draws
  /// cannot change the stream).
  double normal(double mean = 0.0, double stddev = 1.0) {
    const double u1 = 1.0 - uniform();  // (0, 1]
    const double u2 = uniform();
    const double mag = std::sqrt(-2.0 * std::log(u1));
    return mean + stddev * mag * std::cos(2.0 * kPi * u2);
  }

  /// Log-normally distributed value: exp(N(mu, sigma)).
  double lognormal(double mu, double sigma) {
    return std::exp(normal(mu, sigma));
  }

  /// Index drawn proportionally to the non-negative weights.  The caller
  /// guarantees `total == sum(weights) > 0`; passing the precomputed total
  /// keeps the hot samplers O(n) without a second pass.
  std::size_t weighted_pick(std::span<const double> weights, double total) {
    assert(!weights.empty());
    assert(total > 0.0);
    double target = uniform() * total;
    for (std::size_t i = 0; i + 1 < weights.size(); ++i) {
      target -= weights[i];
      if (target < 0.0) return i;
    }
    return weights.size() - 1;  // absorbs floating-point round-off
  }

  /// Index drawn proportionally to the non-negative weights (two-pass).
  std::size_t weighted_pick(std::span<const double> weights) {
    double total = 0.0;
    for (double w : weights) total += w;
    return weighted_pick(weights, total);
  }

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::span<T> values) {
    for (std::size_t i = values.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(values[i - 1], values[j]);
    }
  }

  template <typename T>
  void shuffle(std::vector<T>& values) {
    shuffle(std::span<T>(values));
  }

  /// A uniformly random permutation of {0, ..., n-1}.
  std::vector<std::size_t> permutation(std::size_t n) {
    std::vector<std::size_t> p(n);
    for (std::size_t i = 0; i < n; ++i) p[i] = i;
    shuffle(p);
    return p;
  }

  /// Derives `count` statistically independent child generators; stream `i`
  /// is 2^128 * (i+1) steps ahead of this generator's state, so streams can
  /// never overlap within any feasible computation.
  std::vector<Rng> make_streams(std::size_t count) const {
    std::vector<Rng> out;
    out.reserve(count);
    Xoshiro256ss cursor = gen_;
    for (std::size_t i = 0; i < count; ++i) {
      cursor.jump();
      out.emplace_back(cursor);
    }
    return out;
  }

  Xoshiro256ss& generator() { return gen_; }
  const Xoshiro256ss& generator() const { return gen_; }

 private:
  Xoshiro256ss gen_;
};

}  // namespace match::rng
