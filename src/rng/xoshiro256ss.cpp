#include "rng/xoshiro256ss.hpp"

#include "rng/splitmix64.hpp"

namespace match::rng {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Xoshiro256ss::Xoshiro256ss(std::uint64_t seed) noexcept {
  SplitMix64 sm(seed);
  for (auto& word : s_) word = sm.next();
  // An all-zero state is a fixed point; SplitMix64 cannot produce four
  // consecutive zeros from any seed, so no further check is required.
}

std::uint64_t Xoshiro256ss::next() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;

  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);

  return result;
}

namespace {

/// Shared jump kernel: applies the polynomial described by `table` to the
/// generator state, advancing it by the corresponding power of two.
template <typename Step>
void apply_jump(std::array<std::uint64_t, 4>& s,
                const std::array<std::uint64_t, 4>& table, Step step) {
  std::array<std::uint64_t, 4> acc{};
  for (std::uint64_t word : table) {
    for (int bit = 0; bit < 64; ++bit) {
      if (word & (1ULL << bit)) {
        for (std::size_t i = 0; i < 4; ++i) acc[i] ^= s[i];
      }
      step();
    }
  }
  s = acc;
}

}  // namespace

void Xoshiro256ss::jump() noexcept {
  static constexpr std::array<std::uint64_t, 4> kJump = {
      0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL, 0xa9582618e03fc9aaULL,
      0x39abdc4529b1661cULL};
  apply_jump(s_, kJump, [this] { next(); });
}

void Xoshiro256ss::long_jump() noexcept {
  static constexpr std::array<std::uint64_t, 4> kLongJump = {
      0x76e15d3efefdcbbfULL, 0xc5004e441c522fb3ULL, 0x77710069854ee241ULL,
      0x39109bb02acbe635ULL};
  apply_jump(s_, kLongJump, [this] { next(); });
}

Xoshiro256ss Xoshiro256ss::split(unsigned n) const noexcept {
  Xoshiro256ss out(*this);
  for (unsigned i = 0; i < n; ++i) out.jump();
  return out;
}

}  // namespace match::rng
