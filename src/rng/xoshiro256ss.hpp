#pragma once

#include <array>
#include <cstdint>

namespace match::rng {

/// xoshiro256** 1.0 (Blackman & Vigna, 2018).
///
/// The library's workhorse generator: fast, 256-bit state, passes BigCrush,
/// and provides `jump()` / `long_jump()` for carving a single seed into
/// many provably non-overlapping streams — the property the parallel
/// samplers rely on for reproducible multi-threaded runs.
class Xoshiro256ss {
 public:
  using result_type = std::uint64_t;

  /// Seeds the 256-bit state by running SplitMix64 on `seed`, as the
  /// reference implementation recommends (never seed with all zeros).
  explicit Xoshiro256ss(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept;

  /// Constructs from a full 256-bit state.  The state must not be all zero.
  explicit Xoshiro256ss(const std::array<std::uint64_t, 4>& state) noexcept
      : s_(state) {}

  std::uint64_t next() noexcept;
  std::uint64_t operator()() noexcept { return next(); }

  /// Advances the stream by 2^128 steps; used to derive parallel streams.
  void jump() noexcept;

  /// Advances the stream by 2^192 steps; used to derive stream *families*.
  void long_jump() noexcept;

  /// Returns a generator `n` jumps ahead of this one (this one is unchanged).
  [[nodiscard]] Xoshiro256ss split(unsigned n) const noexcept;

  [[nodiscard]] const std::array<std::uint64_t, 4>& state() const noexcept {
    return s_;
  }

  static constexpr std::uint64_t min() noexcept { return 0; }
  static constexpr std::uint64_t max() noexcept { return ~0ULL; }

  friend bool operator==(const Xoshiro256ss& a, const Xoshiro256ss& b) {
    return a.s_ == b.s_;
  }

 private:
  std::array<std::uint64_t, 4> s_{};
};

}  // namespace match::rng
