#pragma once

#include <cstdint>

namespace match::rng {

/// SplitMix64 generator (Steele, Lea & Flood, 2014).
///
/// A tiny, statistically solid 64-bit generator whose primary role in
/// this library is *seeding*: it expands a single 64-bit seed into the
/// larger state blocks required by xoshiro256**.  It is also usable as a
/// standalone UniformRandomBitGenerator.
class SplitMix64 {
 public:
  using result_type = std::uint64_t;

  constexpr explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  /// Advances the state and returns the next 64-bit output.
  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  constexpr std::uint64_t operator()() noexcept { return next(); }

  static constexpr std::uint64_t min() noexcept { return 0; }
  static constexpr std::uint64_t max() noexcept { return ~0ULL; }

 private:
  std::uint64_t state_;
};

}  // namespace match::rng
