#pragma once

// The classic list-scheduling heuristics of the paper's benchmark
// lineage — Braun et al. [5] ("A comparison of eleven static
// heuristics...") evaluated Min-min, Max-min and Sufferage for
// independent tasks; the paper leans on [5] to justify the GA as the
// strongest baseline.  We adapt the three to the TIG objective: a task's
// completion estimate on a resource accounts for its compute cost *and*
// the communication with already-placed neighbors (both endpoints),
// exactly the partial cost the final eq. (1) charges.
//
// On square instances (|V_t| = |V_r|) resources are exclusive, yielding
// permutation mappings comparable to MaTCH/GA; with more tasks than
// resources they produce many-to-one mappings.

#include "baselines/local_search.hpp"
#include "sim/evaluator.hpp"

namespace match::baselines {

enum class ListRule {
  /// Assign the (task, resource) pair with the globally smallest
  /// resulting makespan first — easy tasks lock in early.
  kMinMin,
  /// Assign the task whose *best* placement is worst first — hard tasks
  /// get first pick.
  kMaxMin,
  /// Assign the task that would suffer most from losing its best
  /// resource (largest best-to-second-best gap) first.
  kSufferage,
};

const char* to_string(ListRule rule);

/// Runs one list heuristic.  Deterministic.  When
/// `exclusive_resources` (default: true iff the instance is square),
/// each resource hosts at most one task.
SearchResult list_schedule(const sim::CostEvaluator& eval, ListRule rule);
SearchResult list_schedule(const sim::CostEvaluator& eval, ListRule rule,
                           bool exclusive_resources);

}  // namespace match::baselines
