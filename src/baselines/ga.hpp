#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "core/ce_params.hpp"
#include "core/run_summary.hpp"
#include "core/solver_context.hpp"
#include "core/stop.hpp"
#include "sim/batch_eval.hpp"
#include "sim/evaluator.hpp"
#include "sim/mapping.hpp"

namespace match::baselines {

/// Parameters of the FastMap-GA baseline (paper §5.1).  Defaults are the
/// paper's tuned configuration (population 500, 1000 generations,
/// crossover 0.85, mutation 0.07, elitism on).
///
/// The `core::CeCommonParams` base supplies the cross-solver knobs; the
/// GA consumes `parallel`, `target_cost`, and `eval_backend` (the
/// per-generation cost pass) and ignores the CE-only fields — `rho`,
/// `zeta`, `sample_size`, `sampler` have no GA meaning (`population` is
/// the GA's batch-size knob).
struct GaParams : core::CeCommonParams {
  std::size_t population = 500;
  std::size_t generations = 1000;
  double crossover_prob = 0.85;
  double mutation_prob = 0.07;
  bool elitism = true;

  void validate() const;

  /// The paper's ANOVA configurations.
  static GaParams paper_default() { return {}; }
  static GaParams config_100_10000() {
    GaParams p;
    p.population = 100;
    p.generations = 10000;
    return p;
  }
  static GaParams config_1000_1000() {
    GaParams p;
    p.population = 1000;
    p.generations = 1000;
    return p;
  }
};

/// Per-generation convergence record.
struct GaGenerationStats {
  std::size_t generation = 0;
  double gen_best = 0.0;     ///< best makespan in this generation
  double best_so_far = 0.0;  ///< best makespan over the whole run
  double mean_cost = 0.0;    ///< population mean makespan
};

/// `best_cost`, `iterations`, and `cancelled` live in the `RunSummary`
/// base; on cancellation the best mapping is still valid (best-so-far,
/// never partial).  `generations` mirrors `iterations` under the GA's
/// traditional name.
struct GaResult : match::RunSummary {
  sim::Mapping best_mapping;
  std::size_t generations = 0;
  std::vector<GaGenerationStats> history;
  double elapsed_seconds = 0.0;
};

/// The FastMap-GA mapping heuristic: permutation-encoded chromosomes,
/// roulette-wheel selection on fitness Ψ = K / Exec, the paper's
/// single-point crossover with duplicate repair, per-gene swap mutation,
/// and elitism.  Termination is the paper's: a fixed generation count.
///
/// Encoding note: the paper indexes chromosomes by resource (value =
/// task); we use the task-indexed inverse (value = resource).  The two
/// are bijective views of the same permutation and the genetic operators
/// act identically on either string.
class GaOptimizer {
 public:
  /// Alias for `match::StopFn` (core/stop.hpp), supplied via
  /// `SolverContext(rng, stop)`.  Polled once per generation; on true
  /// the run stops and reports best-so-far.
  using StopFn = match::StopFn;

  explicit GaOptimizer(const sim::CostEvaluator& eval, GaParams params = {});

  const GaParams& params() const noexcept { return params_; }

  /// Runs the GA.  The context supplies the RNG stream (required), stop
  /// hook, thread pool, and optional telemetry (per-generation iteration
  /// events plus cost/breed phase timings).
  GaResult run(const match::SolverContext& ctx);

  /// The paper's crossover, exposed for unit testing: copies the first
  /// half of `parent1`, then fills the second half from `parent2` (second
  /// half first, then first half, in order, skipping duplicates).
  static std::vector<graph::NodeId> crossover(
      std::span<const graph::NodeId> parent1,
      std::span<const graph::NodeId> parent2);

 private:
  const sim::CostEvaluator* eval_;
  GaParams params_;
  std::size_t n_;
};

}  // namespace match::baselines
