#include "baselines/list_heuristics.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

namespace match::baselines {

const char* to_string(ListRule rule) {
  switch (rule) {
    case ListRule::kMinMin:
      return "min-min";
    case ListRule::kMaxMin:
      return "max-min";
    case ListRule::kSufferage:
      return "sufferage";
  }
  return "unknown";
}

namespace {

using graph::NodeId;

/// Incremental partial-mapping state shared by the three rules: per-
/// resource loads under the already-placed tasks, with the same
/// both-endpoint communication accounting as eq. (1).
class PartialState {
 public:
  PartialState(const sim::CostEvaluator& eval, bool exclusive)
      : eval_(&eval),
        n_(eval.num_tasks()),
        m_(eval.num_resources()),
        exclusive_(exclusive),
        assign_(n_, 0),
        placed_(n_, 0),
        resource_used_(m_, 0),
        load_(m_, 0.0) {}

  bool resource_available(NodeId r) const {
    return !exclusive_ || !resource_used_[r];
  }

  bool placed(NodeId t) const { return placed_[t] != 0; }

  /// Makespan of the partial mapping if `t` were placed on `r`.
  double completion(NodeId t, NodeId r) const {
    const graph::Graph& tg = eval_->tig().graph();
    const sim::Platform& plat = eval_->platform();

    double new_load_r = load_[r] + tg.node_weight(t) * plat.processing_cost(r);
    double makespan = 0.0;
    for (const graph::Neighbor& nb : tg.neighbors(t)) {
      if (!placed_[nb.id]) continue;
      const NodeId b = assign_[nb.id];
      if (b == r) continue;
      new_load_r += nb.weight * plat.comm_cost(r, b);
    }
    for (NodeId s = 0; s < m_; ++s) {
      makespan = std::max(makespan, s == r ? new_load_r : load_[s]);
    }
    for (const graph::Neighbor& nb : tg.neighbors(t)) {
      if (!placed_[nb.id]) continue;
      const NodeId b = assign_[nb.id];
      if (b == r) continue;
      makespan = std::max(makespan, load_[b] + nb.weight * plat.comm_cost(b, r));
    }
    return makespan;
  }

  void place(NodeId t, NodeId r) {
    const graph::Graph& tg = eval_->tig().graph();
    const sim::Platform& plat = eval_->platform();
    assign_[t] = r;
    placed_[t] = 1;
    resource_used_[r] = 1;
    load_[r] += tg.node_weight(t) * plat.processing_cost(r);
    for (const graph::Neighbor& nb : tg.neighbors(t)) {
      if (!placed_[nb.id]) continue;
      const NodeId b = assign_[nb.id];
      if (b == r) continue;
      load_[r] += nb.weight * plat.comm_cost(r, b);
      load_[b] += nb.weight * plat.comm_cost(b, r);
    }
  }

  std::vector<NodeId> take_assignment() { return std::move(assign_); }

  std::size_t num_tasks() const { return n_; }
  std::size_t num_resources() const { return m_; }

 private:
  const sim::CostEvaluator* eval_;
  std::size_t n_, m_;
  bool exclusive_;
  std::vector<NodeId> assign_;
  std::vector<char> placed_;
  std::vector<char> resource_used_;
  std::vector<double> load_;
};

/// Best and second-best completion for a task over available resources.
struct TaskChoice {
  double best = std::numeric_limits<double>::infinity();
  double second = std::numeric_limits<double>::infinity();
  NodeId best_resource = 0;
};

TaskChoice evaluate_task(const PartialState& state, NodeId t,
                         std::size_t* evaluations) {
  TaskChoice choice;
  for (NodeId r = 0; r < state.num_resources(); ++r) {
    if (!state.resource_available(r)) continue;
    const double c = state.completion(t, r);
    ++*evaluations;
    if (c < choice.best) {
      choice.second = choice.best;
      choice.best = c;
      choice.best_resource = r;
    } else if (c < choice.second) {
      choice.second = c;
    }
  }
  return choice;
}

}  // namespace

SearchResult list_schedule(const sim::CostEvaluator& eval, ListRule rule) {
  return list_schedule(eval, rule,
                       eval.num_tasks() == eval.num_resources());
}

SearchResult list_schedule(const sim::CostEvaluator& eval, ListRule rule,
                           bool exclusive_resources) {
  const auto start = std::chrono::steady_clock::now();
  const std::size_t n = eval.num_tasks();
  if (exclusive_resources && n > eval.num_resources()) {
    throw std::invalid_argument(
        "list_schedule: exclusive resources need |V_r| >= |V_t|");
  }

  SearchResult out;
  PartialState state(eval, exclusive_resources);

  for (std::size_t step = 0; step < n; ++step) {
    NodeId chosen_task = 0;
    NodeId chosen_resource = 0;
    double chosen_key = rule == ListRule::kMinMin
                            ? std::numeric_limits<double>::infinity()
                            : -std::numeric_limits<double>::infinity();
    bool found = false;

    for (NodeId t = 0; t < n; ++t) {
      if (state.placed(t)) continue;
      const TaskChoice choice = evaluate_task(state, t, &out.evaluations);

      double key = 0.0;
      switch (rule) {
        case ListRule::kMinMin:
          key = choice.best;
          break;
        case ListRule::kMaxMin:
          key = choice.best;
          break;
        case ListRule::kSufferage:
          // Tasks with no alternative (one resource left) suffer
          // maximally; infinity - anything stays infinity.
          key = std::isinf(choice.second)
                    ? std::numeric_limits<double>::max()
                    : choice.second - choice.best;
          break;
      }

      const bool better = rule == ListRule::kMinMin ? key < chosen_key
                                                    : key > chosen_key;
      if (!found || better) {
        found = true;
        chosen_key = key;
        chosen_task = t;
        chosen_resource = choice.best_resource;
      }
    }

    state.place(chosen_task, chosen_resource);
  }

  out.best_mapping = sim::Mapping(state.take_assignment());
  out.best_cost = eval.makespan(out.best_mapping);
  out.iterations = out.evaluations;
  out.elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return out;
}

}  // namespace match::baselines
