#pragma once

#include <cstddef>

#include "rng/rng.hpp"
#include "sim/evaluator.hpp"
#include "sim/mapping.hpp"

namespace match::baselines {

/// Common result shape for the non-GA comparators.
struct SearchResult {
  sim::Mapping best_mapping;
  double best_cost = 0.0;
  std::size_t evaluations = 0;  ///< cost-function calls spent
  double elapsed_seconds = 0.0;
};

/// Pure random search over permutations: the weakest sensible baseline
/// and the yardstick every heuristic must clear.
SearchResult random_search(const sim::CostEvaluator& eval,
                           std::size_t num_samples, rng::Rng& rng);

/// Greedy constructive mapping: tasks in descending compute weight, each
/// assigned to the free resource that minimizes the resulting makespan.
/// Deterministic; O(n^2) evaluations.
SearchResult greedy_constructive(const sim::CostEvaluator& eval);

/// Steepest-descent hill climbing in the swap neighborhood, restarted
/// from random permutations until the evaluation budget is exhausted.
SearchResult hill_climb(const sim::CostEvaluator& eval,
                        std::size_t max_evaluations, rng::Rng& rng);

/// Simulated annealing over swap moves with geometric cooling.
struct SaParams {
  double initial_temp = 0.0;   ///< 0 = auto-calibrate from random walk
  double cooling = 0.995;      ///< geometric factor per step
  std::size_t steps = 100000;  ///< total move proposals
  double min_temp_fraction = 1e-4;  ///< stop when T < fraction * T0
};
SearchResult simulated_annealing(const sim::CostEvaluator& eval,
                                 const SaParams& params, rng::Rng& rng);

}  // namespace match::baselines
