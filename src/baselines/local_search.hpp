#pragma once

#include <cstddef>

#include "core/run_summary.hpp"
#include "core/solver_context.hpp"
#include "sim/evaluator.hpp"
#include "sim/mapping.hpp"

namespace match::baselines {

/// Common result shape for the non-GA comparators.  `best_cost`,
/// `iterations`, and `cancelled` live in the `RunSummary` base;
/// `iterations` mirrors `evaluations` (these searches are budgeted in
/// cost-function calls).
struct SearchResult : match::RunSummary {
  sim::Mapping best_mapping;
  std::size_t evaluations = 0;  ///< cost-function calls spent
  double elapsed_seconds = 0.0;
};

/// Pure random search over permutations: the weakest sensible baseline
/// and the yardstick every heuristic must clear.  The context's stop
/// hook is polled per sample; when it fires before the first sample, a
/// single fallback draw is evaluated (`fallback_draw` event).
SearchResult random_search(const sim::CostEvaluator& eval,
                           std::size_t num_samples,
                           const match::SolverContext& ctx);

/// Greedy constructive mapping: tasks in descending compute weight, each
/// assigned to the free resource that minimizes the resulting makespan.
/// Deterministic; O(n^2) evaluations.
SearchResult greedy_constructive(const sim::CostEvaluator& eval);

/// Steepest-descent hill climbing in the swap neighborhood, restarted
/// from random permutations until the evaluation budget is exhausted.
/// The context's stop hook is polled per restart and per descent sweep.
SearchResult hill_climb(const sim::CostEvaluator& eval,
                        std::size_t max_evaluations,
                        const match::SolverContext& ctx);

/// Simulated annealing over swap moves with geometric cooling.
struct SaParams {
  double initial_temp = 0.0;   ///< 0 = auto-calibrate from random walk
  double cooling = 0.995;      ///< geometric factor per step
  std::size_t steps = 100000;  ///< total move proposals
  double min_temp_fraction = 1e-4;  ///< stop when T < fraction * T0
};

/// The context's stop hook is polled per step; the initial evaluation
/// always completes, so the result is always a valid permutation.
SearchResult simulated_annealing(const sim::CostEvaluator& eval,
                                 const SaParams& params,
                                 const match::SolverContext& ctx);

}  // namespace match::baselines
