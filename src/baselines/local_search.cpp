#include "baselines/local_search.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace match::baselines {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

void note_fallback(const match::SolverContext& ctx, const char* solver) {
  ctx.emit(obs::Event::fallback_draw(ctx.run_id(), solver));
  if (ctx.metrics() != nullptr) {
    ctx.metrics()->counter("solver.fallback_draws").add();
  }
}

}  // namespace

SearchResult random_search(const sim::CostEvaluator& eval,
                           std::size_t num_samples,
                           const match::SolverContext& ctx) {
  if (num_samples == 0) {
    throw std::invalid_argument("random_search: num_samples == 0");
  }
  const auto start = Clock::now();
  rng::Rng& rng = ctx.rng();
  const std::size_t n = eval.num_tasks();

  SearchResult out;
  out.best_cost = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < num_samples; ++i) {
    if (ctx.stop_requested()) {
      out.cancelled = true;
      break;
    }
    sim::Mapping m = sim::Mapping::random_permutation(n, rng);
    const double c = eval.makespan(m);
    ++out.evaluations;
    if (c < out.best_cost) {
      out.best_cost = c;
      out.best_mapping = std::move(m);
    }
  }
  if (out.evaluations == 0) {
    // Cancelled before the first sample: evaluate one draw so the result
    // is a valid permutation (best-so-far contract).
    sim::Mapping m = sim::Mapping::random_permutation(n, rng);
    out.best_cost = eval.makespan(m);
    out.best_mapping = std::move(m);
    out.evaluations = 1;
    note_fallback(ctx, "random");
  }
  out.iterations = out.evaluations;
  out.elapsed_seconds = seconds_since(start);
  return out;
}

SearchResult greedy_constructive(const sim::CostEvaluator& eval) {
  const auto start = Clock::now();
  const std::size_t n = eval.num_tasks();
  if (eval.num_resources() != n) {
    throw std::invalid_argument("greedy_constructive: needs square instance");
  }

  // Heaviest tasks first: they dominate the makespan, so they get first
  // pick of the fast resources.
  std::vector<graph::NodeId> task_order(n);
  std::iota(task_order.begin(), task_order.end(), graph::NodeId{0});
  const graph::Tig& tig = eval.tig();
  std::sort(task_order.begin(), task_order.end(),
            [&](graph::NodeId a, graph::NodeId b) {
              return tig.compute_weight(a) > tig.compute_weight(b);
            });

  SearchResult out;
  std::vector<graph::NodeId> assign(n, graph::NodeId{0});
  std::vector<char> task_placed(n, 0);
  std::vector<char> resource_used(n, 0);

  // Partial-makespan evaluation: only placed tasks contribute.  We reuse
  // the full evaluator by scoring the induced sub-assignment directly.
  const graph::Graph& tg = tig.graph();
  const sim::Platform& plat = eval.platform();
  std::vector<double> load(n, 0.0);

  for (const graph::NodeId t : task_order) {
    double best_cost = std::numeric_limits<double>::infinity();
    graph::NodeId best_r = 0;
    for (graph::NodeId r = 0; r < n; ++r) {
      if (resource_used[r]) continue;
      // Incremental: t's compute on r plus both sides of every already-
      // placed neighbor exchange.
      double new_load_r = load[r] + tg.node_weight(t) * plat.processing_cost(r);
      double makespan = 0.0;
      for (const graph::Neighbor& nb : tg.neighbors(t)) {
        if (!task_placed[nb.id]) continue;
        const graph::NodeId b = assign[nb.id];
        new_load_r += nb.weight * plat.comm_cost(r, b);
      }
      for (graph::NodeId s = 0; s < n; ++s) {
        makespan = std::max(makespan, (s == r) ? new_load_r : load[s]);
      }
      // Neighbor-side contributions to *their* resources:
      for (const graph::Neighbor& nb : tg.neighbors(t)) {
        if (!task_placed[nb.id]) continue;
        const graph::NodeId b = assign[nb.id];
        if (b == r) continue;
        makespan =
            std::max(makespan, load[b] + nb.weight * plat.comm_cost(b, r));
      }
      ++out.evaluations;
      if (makespan < best_cost) {
        best_cost = makespan;
        best_r = r;
      }
    }

    // Commit t -> best_r.
    assign[t] = best_r;
    task_placed[t] = 1;
    resource_used[best_r] = 1;
    load[best_r] += tg.node_weight(t) * plat.processing_cost(best_r);
    for (const graph::Neighbor& nb : tg.neighbors(t)) {
      if (!task_placed[nb.id]) continue;
      const graph::NodeId b = assign[nb.id];
      if (b == best_r) continue;
      load[best_r] += nb.weight * plat.comm_cost(best_r, b);
      load[b] += nb.weight * plat.comm_cost(b, best_r);
    }
  }

  out.best_mapping = sim::Mapping(std::move(assign));
  out.best_cost = eval.makespan(out.best_mapping);
  out.iterations = out.evaluations;
  out.elapsed_seconds = seconds_since(start);
  return out;
}

SearchResult hill_climb(const sim::CostEvaluator& eval,
                        std::size_t max_evaluations,
                        const match::SolverContext& ctx) {
  if (max_evaluations == 0) {
    throw std::invalid_argument("hill_climb: zero budget");
  }
  const auto start = Clock::now();
  rng::Rng& rng = ctx.rng();
  const std::size_t n = eval.num_tasks();

  SearchResult out;
  out.best_cost = std::numeric_limits<double>::infinity();

  while (out.evaluations < max_evaluations) {
    if (ctx.stop_requested()) {
      out.cancelled = true;
      break;
    }
    sim::Mapping current = sim::Mapping::random_permutation(n, rng);
    double current_cost = eval.makespan(current);
    ++out.evaluations;

    bool improved = true;
    while (improved && out.evaluations < max_evaluations) {
      if (ctx.stop_requested()) {
        out.cancelled = true;
        break;
      }
      improved = false;
      double best_delta_cost = current_cost;
      std::size_t best_i = 0, best_j = 0;
      for (std::size_t i = 0; i < n && out.evaluations < max_evaluations; ++i) {
        for (std::size_t j = i + 1; j < n && out.evaluations < max_evaluations;
             ++j) {
          sim::Mapping trial = current;
          const graph::NodeId ri = trial.resource_of(static_cast<graph::NodeId>(i));
          const graph::NodeId rj = trial.resource_of(static_cast<graph::NodeId>(j));
          trial.set(static_cast<graph::NodeId>(i), rj);
          trial.set(static_cast<graph::NodeId>(j), ri);
          const double c = eval.makespan(trial);
          ++out.evaluations;
          if (c < best_delta_cost) {
            best_delta_cost = c;
            best_i = i;
            best_j = j;
            improved = true;
          }
        }
      }
      if (improved) {
        const graph::NodeId ri =
            current.resource_of(static_cast<graph::NodeId>(best_i));
        const graph::NodeId rj =
            current.resource_of(static_cast<graph::NodeId>(best_j));
        current.set(static_cast<graph::NodeId>(best_i), rj);
        current.set(static_cast<graph::NodeId>(best_j), ri);
        current_cost = best_delta_cost;
      }
    }

    if (current_cost < out.best_cost) {
      out.best_cost = current_cost;
      out.best_mapping = current;
    }
    if (out.cancelled) break;
  }
  if (out.evaluations == 0) {
    // Cancelled before the first restart was scored: evaluate one random
    // permutation so the result is valid.
    sim::Mapping m = sim::Mapping::random_permutation(n, rng);
    out.best_cost = eval.makespan(m);
    out.best_mapping = std::move(m);
    out.evaluations = 1;
    note_fallback(ctx, "hill_climb");
  }
  out.iterations = out.evaluations;
  out.elapsed_seconds = seconds_since(start);
  return out;
}

SearchResult simulated_annealing(const sim::CostEvaluator& eval,
                                 const SaParams& params,
                                 const match::SolverContext& ctx) {
  if (params.steps == 0 || params.cooling <= 0.0 || params.cooling >= 1.0) {
    throw std::invalid_argument("simulated_annealing: bad params");
  }
  const auto start = Clock::now();
  rng::Rng& rng = ctx.rng();
  const std::size_t n = eval.num_tasks();

  SearchResult out;
  sim::Mapping current = sim::Mapping::random_permutation(n, rng);
  double current_cost = eval.makespan(current);
  out.evaluations = 1;
  out.best_mapping = current;
  out.best_cost = current_cost;

  double temp = params.initial_temp;
  if (temp <= 0.0) {
    // Calibrate: mean |Δ| over a short random-swap walk, so the initial
    // acceptance rate is high regardless of instance scale.
    double sum = 0.0;
    const std::size_t probes = std::min<std::size_t>(64, params.steps);
    for (std::size_t k = 0; k < probes; ++k) {
      sim::Mapping trial = current;
      const auto i = static_cast<graph::NodeId>(rng.below(n));
      const auto j = static_cast<graph::NodeId>(rng.below(n));
      const graph::NodeId ri = trial.resource_of(i), rj = trial.resource_of(j);
      trial.set(i, rj);
      trial.set(j, ri);
      sum += std::abs(eval.makespan(trial) - current_cost);
      ++out.evaluations;
    }
    temp = std::max(1.0, sum / static_cast<double>(probes)) * 2.0;
  }
  const double t_floor = temp * params.min_temp_fraction;

  for (std::size_t step = 0; step < params.steps && temp > t_floor; ++step) {
    if (ctx.stop_requested()) {
      out.cancelled = true;
      break;
    }
    const auto i = static_cast<graph::NodeId>(rng.below(n));
    auto j = static_cast<graph::NodeId>(rng.below(n));
    if (i == j) j = static_cast<graph::NodeId>((j + 1) % n);

    sim::Mapping trial = current;
    const graph::NodeId ri = trial.resource_of(i), rj = trial.resource_of(j);
    trial.set(i, rj);
    trial.set(j, ri);
    const double c = eval.makespan(trial);
    ++out.evaluations;

    const double delta = c - current_cost;
    if (delta <= 0.0 || rng.uniform() < std::exp(-delta / temp)) {
      current = std::move(trial);
      current_cost = c;
      if (c < out.best_cost) {
        out.best_cost = c;
        out.best_mapping = current;
      }
    }
    temp *= params.cooling;
  }
  out.iterations = out.evaluations;
  out.elapsed_seconds = seconds_since(start);
  return out;
}

}  // namespace match::baselines
