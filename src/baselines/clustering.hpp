#pragma once

// Clustering-based mapping in the spirit of FastMap [16] and the
// clustering/mapping schemes the paper cites ([2], [10], [25]): coarsen
// the TIG by heavy-edge matching until one cluster per resource remains,
// map the coarse graph, then refine task placement locally.  This is the
// classic multilevel recipe (Karypis/Kumar) specialized to the
// heterogeneous makespan objective, and it handles |V_t| >= |V_r|.

#include <cstddef>
#include <vector>

#include "baselines/local_search.hpp"
#include "graph/graph.hpp"
#include "rng/rng.hpp"
#include "sim/evaluator.hpp"
#include "sim/mapping.hpp"

namespace match::baselines {

/// Result of coarsening a TIG.
struct Clustering {
  /// cluster_of[task] in [0, num_clusters).
  std::vector<graph::NodeId> cluster_of;
  std::size_t num_clusters = 0;
  /// The contracted TIG: node weight = summed task weights, edge weight =
  /// summed inter-cluster communication.
  graph::Tig coarse;
};

/// Coarsens `tig` to at most `target_clusters` clusters by repeated
/// heavy-edge matching (heaviest-communication pairs merge first, so the
/// hottest data exchanges become intra-cluster and cost nothing).  When
/// matching stalls before the target, the lightest clusters merge
/// pairwise regardless of adjacency.
Clustering coarsen_tig(const graph::Tig& tig, std::size_t target_clusters,
                       rng::Rng& rng);

struct ClusterMapParams {
  /// Local-refinement sweeps over all tasks after the coarse mapping is
  /// projected back (0 disables refinement).
  std::size_t refine_passes = 3;
  /// Evaluation budget for the coarse-level hill climb.
  std::size_t coarse_budget = 20000;
};

/// The full clustering pipeline: coarsen to |V_r| clusters, map clusters
/// to resources with a swap hill-climb on the contracted instance,
/// project, then greedily refine single-task moves with incremental
/// (LoadTracker) evaluation.  Works for any |V_t| >= |V_r|.
SearchResult cluster_map_refine(const sim::CostEvaluator& eval,
                                const ClusterMapParams& params, rng::Rng& rng);

}  // namespace match::baselines
