#include "baselines/clustering.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <map>
#include <numeric>
#include <stdexcept>

namespace match::baselines {

namespace {

using graph::NodeId;

/// One round of heavy-edge matching on an explicit weighted graph.
/// Returns the merge partner per node (self = unmatched), visiting nodes
/// in random order and picking each node's heaviest unmatched neighbor.
std::vector<NodeId> heavy_edge_matching(const graph::Graph& g, rng::Rng& rng) {
  const std::size_t n = g.num_nodes();
  std::vector<NodeId> partner(n);
  std::iota(partner.begin(), partner.end(), NodeId{0});
  std::vector<char> matched(n, 0);

  std::vector<std::size_t> order = rng.permutation(n);
  for (const std::size_t u : order) {
    if (matched[u]) continue;
    double best_w = -1.0;
    NodeId best_v = static_cast<NodeId>(u);
    for (const graph::Neighbor& nb : g.neighbors(static_cast<NodeId>(u))) {
      if (!matched[nb.id] && nb.id != u && nb.weight > best_w) {
        best_w = nb.weight;
        best_v = nb.id;
      }
    }
    if (best_v != static_cast<NodeId>(u)) {
      matched[u] = matched[best_v] = 1;
      partner[u] = best_v;
      partner[best_v] = static_cast<NodeId>(u);
    }
  }
  return partner;
}

/// Contracts `g` given per-node cluster labels in [0, k).
graph::Graph contract(const graph::Graph& g,
                      const std::vector<NodeId>& label, std::size_t k) {
  std::vector<double> node_w(k, 0.0);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    node_w[label[u]] += g.node_weight(u);
  }
  std::map<std::pair<NodeId, NodeId>, double> edge_w;
  for (const graph::Edge& e : g.edge_list()) {
    const NodeId a = label[e.u], b = label[e.v];
    if (a == b) continue;
    edge_w[{std::min(a, b), std::max(a, b)}] += e.weight;
  }
  std::vector<graph::Edge> edges;
  edges.reserve(edge_w.size());
  for (const auto& [key, w] : edge_w) {
    edges.push_back(graph::Edge{key.first, key.second, w});
  }
  return graph::Graph::from_edges(k, std::move(node_w), edges);
}

}  // namespace

Clustering coarsen_tig(const graph::Tig& tig, std::size_t target_clusters,
                       rng::Rng& rng) {
  if (target_clusters == 0) {
    throw std::invalid_argument("coarsen_tig: target_clusters == 0");
  }
  const std::size_t n = tig.num_tasks();
  if (target_clusters > n) {
    throw std::invalid_argument("coarsen_tig: target exceeds task count");
  }

  Clustering out;
  out.cluster_of.resize(n);
  std::iota(out.cluster_of.begin(), out.cluster_of.end(), NodeId{0});
  graph::Graph current = tig.graph();

  while (current.num_nodes() > target_clusters) {
    const std::size_t level_n = current.num_nodes();
    const std::size_t excess = level_n - target_clusters;

    std::vector<NodeId> partner = heavy_edge_matching(current, rng);

    // Build the label map for this level, honoring at most `excess`
    // merges so we never overshoot the target.
    std::vector<NodeId> label(level_n,
                              std::numeric_limits<NodeId>::max());
    NodeId next_label = 0;
    std::size_t merges_left = excess;
    for (NodeId u = 0; u < level_n; ++u) {
      if (label[u] != std::numeric_limits<NodeId>::max()) continue;
      const NodeId v = partner[u];
      if (v != u && merges_left > 0 &&
          label[v] == std::numeric_limits<NodeId>::max()) {
        label[u] = label[v] = next_label++;
        --merges_left;
      } else {
        label[u] = next_label++;
      }
    }

    if (static_cast<std::size_t>(next_label) == level_n) {
      // Matching stalled (no adjacent unmatched pairs).  Merge the two
      // lightest clusters unconditionally to guarantee progress.
      std::vector<NodeId> by_weight(level_n);
      std::iota(by_weight.begin(), by_weight.end(), NodeId{0});
      std::sort(by_weight.begin(), by_weight.end(),
                [&](NodeId a, NodeId b) {
                  return current.node_weight(a) < current.node_weight(b);
                });
      // Relabel: lightest two share a cluster, everything else compacts.
      std::vector<NodeId> forced(level_n);
      NodeId fresh = 0;
      for (NodeId u = 0; u < level_n; ++u) forced[u] = fresh++;
      forced[by_weight[1]] = forced[by_weight[0]];
      // Compact labels to [0, level_n - 1).
      std::vector<NodeId> remap(level_n, std::numeric_limits<NodeId>::max());
      NodeId compacted = 0;
      for (NodeId u = 0; u < level_n; ++u) {
        if (remap[forced[u]] == std::numeric_limits<NodeId>::max()) {
          remap[forced[u]] = compacted++;
        }
        label[u] = remap[forced[u]];
      }
      next_label = compacted;
    }

    // Project the level labels through to the original tasks.
    for (NodeId task = 0; task < n; ++task) {
      out.cluster_of[task] = label[out.cluster_of[task]];
    }
    current = contract(current, label, next_label);
  }

  out.num_clusters = current.num_nodes();
  out.coarse = graph::Tig(std::move(current));
  return out;
}

SearchResult cluster_map_refine(const sim::CostEvaluator& eval,
                                const ClusterMapParams& params,
                                rng::Rng& rng) {
  const auto t_start = std::chrono::steady_clock::now();
  const std::size_t n = eval.num_tasks();
  const std::size_t m = eval.num_resources();
  if (n < m) {
    throw std::invalid_argument(
        "cluster_map_refine: needs |V_t| >= |V_r|");
  }

  SearchResult out;

  // 1. Coarsen to one cluster per resource.
  const Clustering clustering = coarsen_tig(eval.tig(), m, rng);

  // 2. Map the contracted instance (a square permutation problem) with a
  //    swap hill-climb.
  const sim::CostEvaluator coarse_eval(clustering.coarse, eval.platform());
  const SearchResult coarse =
      hill_climb(coarse_eval, params.coarse_budget, match::SolverContext(rng));
  out.evaluations += coarse.evaluations;

  // 3. Project: every task inherits its cluster's resource.
  std::vector<graph::NodeId> assign(n);
  for (graph::NodeId task = 0; task < n; ++task) {
    assign[task] =
        coarse.best_mapping.resource_of(clustering.cluster_of[task]);
  }
  sim::Mapping mapping(std::move(assign));

  // 4. Refine: greedy single-task moves with incremental evaluation.
  if (params.refine_passes > 0) {
    sim::LoadTracker tracker(eval, mapping);
    for (std::size_t pass = 0; pass < params.refine_passes; ++pass) {
      bool improved = false;
      const auto order = rng.permutation(n);
      for (const std::size_t task : order) {
        double best_delta = -1e-9;  // strictly improving moves only
        graph::NodeId best_r = tracker.mapping().resource_of(
            static_cast<graph::NodeId>(task));
        for (graph::NodeId r = 0; r < m; ++r) {
          if (r == tracker.mapping().resource_of(
                       static_cast<graph::NodeId>(task))) {
            continue;
          }
          const double delta =
              tracker.peek_move_delta(static_cast<graph::NodeId>(task), r);
          ++out.evaluations;
          if (delta < best_delta) {
            best_delta = delta;
            best_r = r;
          }
        }
        if (best_r !=
            tracker.mapping().resource_of(static_cast<graph::NodeId>(task))) {
          tracker.apply_move(static_cast<graph::NodeId>(task), best_r);
          improved = true;
        }
      }
      if (!improved) break;
    }
    mapping = tracker.mapping();
  }

  out.best_mapping = std::move(mapping);
  out.best_cost = eval.makespan(out.best_mapping);
  out.iterations = out.evaluations;
  out.elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t_start)
          .count();
  return out;
}

}  // namespace baselines
