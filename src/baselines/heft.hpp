#pragma once

// HEFT-class list schedulers for DAG workloads.
//
// HEFT (Topcuoglu, Hariri & Wu, "Performance-effective and
// low-complexity task scheduling for heterogeneous computing") is the
// standard baseline every DAG-scheduling paper compares against: order
// tasks by *upward rank* (mean execution + mean communication critical
// path to the exit), then place each on the resource that finishes it
// earliest, allowed to slot into idle gaps (insertion-based EFT).  The
// topological-sort variant keeps the same EFT placement but orders tasks
// by the canonical topological order — the cheapest defensible priority,
// and the natural "no rank information" control.
//
// Both run through `sim::ScheduleEvaluator::schedule_priorities`, i.e.
// exactly the machinery CE-over-priorities samples (core/dag_ce.hpp), so
// a makespan difference between CE and HEFT is attributable to the
// priority order alone.

#include <cstddef>

#include "core/run_summary.hpp"
#include "sim/mapping.hpp"
#include "sim/schedule_eval.hpp"

namespace match::baselines {

/// Result of a deterministic DAG list scheduler: the placement as a
/// `Mapping` (task → resource, many-to-one) plus the full timed schedule
/// it came from.  `best_cost` is the makespan; `iterations` counts
/// scheduled tasks.
struct DagScheduleResult : match::RunSummary {
  sim::Mapping best_mapping;
  sim::Schedule schedule;
  double elapsed_seconds = 0.0;
};

/// HEFT: descending upward-rank priority (ties → lower task id) +
/// insertion-based EFT placement.  Deterministic.
DagScheduleResult heft_schedule(const sim::ScheduleEvaluator& eval);

/// Topological list scheduling: canonical topological order priority +
/// insertion-based EFT placement.  Deterministic.
DagScheduleResult topo_list_schedule(const sim::ScheduleEvaluator& eval);

}  // namespace match::baselines
