#include "baselines/ga.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <limits>
#include <span>
#include <stdexcept>
#include <string>

#include "obs/scoped_timer.hpp"
#include "parallel/parallel_for.hpp"

namespace match::baselines {

void GaParams::validate() const {
  validate_common("GaParams");
  if (population < 2) throw std::invalid_argument("GaParams: population < 2");
  if (generations == 0) throw std::invalid_argument("GaParams: generations");
  if (crossover_prob < 0.0 || crossover_prob > 1.0) {
    throw std::invalid_argument("GaParams: crossover_prob");
  }
  if (mutation_prob < 0.0 || mutation_prob > 1.0) {
    throw std::invalid_argument("GaParams: mutation_prob");
  }
}

GaOptimizer::GaOptimizer(const sim::CostEvaluator& eval, GaParams params)
    : eval_(&eval), params_(params), n_(eval.num_tasks()) {
  params_.validate();
  if (eval.num_resources() != n_) {
    throw std::invalid_argument(
        "GaOptimizer: requires |V_t| == |V_r| (permutation encoding)");
  }
}

std::vector<graph::NodeId> GaOptimizer::crossover(
    std::span<const graph::NodeId> parent1,
    std::span<const graph::NodeId> parent2) {
  const std::size_t n = parent1.size();
  assert(parent2.size() == n);
  std::vector<graph::NodeId> child(n);
  std::vector<char> used(n, 0);

  const std::size_t cut = n / 2;
  for (std::size_t i = 0; i < cut; ++i) {
    child[i] = parent1[i];
    used[parent1[i]] = 1;
  }

  // Fill the second half from parent2's second half; on a duplicate, take
  // the next unused gene of parent2's *first* half, in order (paper §5.1).
  std::size_t repair_cursor = 0;
  for (std::size_t i = cut; i < n; ++i) {
    graph::NodeId gene = parent2[i];
    if (used[gene]) {
      while (repair_cursor < cut && used[parent2[repair_cursor]]) {
        ++repair_cursor;
      }
      assert(repair_cursor < cut && "parent2's first half must contain a free gene");
      gene = parent2[repair_cursor];
    }
    child[i] = gene;
    used[gene] = 1;
  }
  return child;
}

GaResult GaOptimizer::run(const match::SolverContext& ctx) {
  const auto t_start = std::chrono::steady_clock::now();
  rng::Rng& rng = ctx.rng();
  const std::size_t pop_size = params_.population;
  const std::size_t n = n_;

  const match::StopFn& should_stop = ctx.stop_fn();
  obs::PhaseProbe probe(ctx.sink(), ctx.metrics(), "ga", ctx.run_id());
  obs::Counter* iter_counter = ctx.metrics() != nullptr
                                   ? &ctx.metrics()->counter("ga.iterations")
                                   : nullptr;
  ctx.emit(obs::Event::run_start(ctx.run_id(), "ga"));

  // Flat population storage: row i = chromosome i (task -> resource).
  // Breeding is row-oriented, so the population stays AoS; each
  // generation's scoring pass transposes it into the SoA block for the
  // batch evaluator (both buffers are allocated once, before the loop).
  std::vector<graph::NodeId> pop(pop_size * n);
  std::vector<graph::NodeId> next(pop_size * n);
  sim::SampleBlock block(n, pop_size);
  std::vector<double> costs(pop_size);
  std::vector<double> fitness(pop_size);
  std::vector<double> load;  // scalar recompute scratch (serial use only)

  // One batch evaluator for the whole run: the backend is resolved once
  // (kAuto -> feature probe) and reported once for metrics dashboards.
  sim::BatchEvaluator batch_eval(*eval_, params_.eval_backend);
  if (ctx.metrics() != nullptr) {
    ctx.metrics()
        ->counter(std::string("solver.backend.") + batch_eval.backend_name())
        .add();
  }

  for (std::size_t i = 0; i < pop_size; ++i) {
    const sim::Mapping m = sim::Mapping::random_permutation(n, rng);
    std::copy(m.assignment().begin(), m.assignment().end(),
              pop.begin() + static_cast<std::ptrdiff_t>(i * n));
  }

  parallel::ForOptions for_opts;
  for_opts.pool = ctx.pool();
  if (!params_.parallel) {
    for_opts.serial_cutoff = std::numeric_limits<std::size_t>::max();
  }

  GaResult result;
  result.best_cost = std::numeric_limits<double>::infinity();
  result.history.reserve(params_.generations);

  std::vector<graph::NodeId> best_chrom(n);

  for (std::size_t gen = 0; gen < params_.generations; ++gen) {
    if (should_stop && should_stop()) {
      result.cancelled = true;
      break;
    }
    probe.start_iteration(gen);
    for (std::size_t i = 0; i < pop_size; ++i) {
      block.store_sample(i, std::span<const graph::NodeId>(pop.data() + i * n,
                                                           n));
    }
    batch_eval.evaluate(block, costs, for_opts);
    probe.split("cost");

    double gen_best = std::numeric_limits<double>::infinity();
    std::size_t gen_best_idx = 0;
    double mean = 0.0;
    for (std::size_t i = 0; i < pop_size; ++i) {
      mean += costs[i];
      if (costs[i] < gen_best) {
        gen_best = costs[i];
        gen_best_idx = i;
      }
    }
    mean /= static_cast<double>(pop_size);

    if (gen_best < result.best_cost) {
      // Recompute the winner with the scalar per-sample kernel so
      // `best_cost == makespan(best_mapping)` bit-exactly under every
      // backend (no-op on integer workloads, where SIMD sums are exact).
      const std::span<const graph::NodeId> winner(
          pop.data() + gen_best_idx * n, n);
      const double exact = eval_->makespan(winner, load);
      if (exact < result.best_cost) {
        result.best_cost = exact;
        std::copy(winner.begin(), winner.end(), best_chrom.begin());
      }
    }
    result.history.push_back(
        GaGenerationStats{gen, gen_best, result.best_cost, mean});
    result.generations = gen + 1;
    if (iter_counter != nullptr) iter_counter->add();
    // No elite threshold / stochastic matrix here: spread reports how far
    // the population mean sits above the generation best.
    ctx.emit(obs::Event::iteration_event(
        ctx.run_id(), "ga", gen, 0.0, gen_best, result.best_cost,
        mean - gen_best, 0.0, 0.0, params_.elitism ? 1 : 0));
    if (params_.target_cost > 0.0 && result.best_cost <= params_.target_cost) {
      break;
    }
    if (gen + 1 == params_.generations) break;  // no need to breed the last

    // Fitness Ψ = K / Exec; roulette-wheel probabilities are invariant to
    // K, so K = 1.
    double fitness_total = 0.0;
    for (std::size_t i = 0; i < pop_size; ++i) {
      fitness[i] = 1.0 / costs[i];
      fitness_total += fitness[i];
    }

    std::size_t out = 0;
    if (params_.elitism) {
      // Carry the best-ever individual unchanged.
      std::copy(best_chrom.begin(), best_chrom.end(), next.begin());
      out = 1;
    }

    const auto select = [&]() -> const graph::NodeId* {
      const std::size_t idx = rng.weighted_pick(fitness, fitness_total);
      return pop.data() + idx * n;
    };

    for (; out < pop_size; ++out) {
      const graph::NodeId* p1 = select();
      graph::NodeId* child = next.data() + out * n;
      if (rng.bernoulli(params_.crossover_prob)) {
        const graph::NodeId* p2 = select();
        const auto c = crossover({p1, n}, {p2, n});
        std::copy(c.begin(), c.end(), child);
      } else {
        std::copy(p1, p1 + n, child);
      }
      // Per-gene swap mutation keeps the chromosome a permutation.
      for (std::size_t g = 0; g < n; ++g) {
        if (rng.bernoulli(params_.mutation_prob)) {
          const std::size_t other = static_cast<std::size_t>(rng.below(n));
          std::swap(child[g], child[other]);
        }
      }
    }
    probe.split("breed");
    pop.swap(next);
  }

  if (result.generations == 0 &&
      result.best_cost == std::numeric_limits<double>::infinity()) {
    // Cancelled before the first generation was scored: evaluate the
    // first (random) chromosome so the result is a valid permutation.
    best_chrom.assign(pop.begin(), pop.begin() + static_cast<std::ptrdiff_t>(n));
    result.best_cost = eval_->makespan(std::span<const graph::NodeId>(
        pop.data(), n));
    ctx.emit(obs::Event::fallback_draw(ctx.run_id(), "ga"));
    if (ctx.metrics() != nullptr) {
      ctx.metrics()->counter("solver.fallback_draws").add();
    }
  }

  result.best_mapping = sim::Mapping(std::move(best_chrom));
  result.iterations = result.generations;
  result.elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t_start)
          .count();
  ctx.emit(obs::Event::run_end(ctx.run_id(), "ga", result.generations,
                               result.best_cost, result.elapsed_seconds));
  return result;
}

}  // namespace match::baselines
