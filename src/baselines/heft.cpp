#include "baselines/heft.hpp"

#include <algorithm>
#include <chrono>
#include <numeric>
#include <vector>

namespace match::baselines {

namespace {

using Clock = std::chrono::steady_clock;

DagScheduleResult run_priorities(const sim::ScheduleEvaluator& eval,
                                 std::span<const graph::NodeId> priority) {
  const auto t0 = Clock::now();
  DagScheduleResult result;
  sim::ScheduleEvaluator::Scratch scratch;
  result.best_cost = eval.schedule_priorities(priority, scratch,
                                              &result.schedule);
  result.best_mapping = sim::Mapping(result.schedule.assignment);
  result.iterations = eval.num_tasks();
  result.elapsed_seconds =
      std::chrono::duration<double>(Clock::now() - t0).count();
  return result;
}

}  // namespace

DagScheduleResult heft_schedule(const sim::ScheduleEvaluator& eval) {
  const std::vector<double> rank = eval.upward_ranks();
  std::vector<graph::NodeId> priority(eval.num_tasks());
  std::iota(priority.begin(), priority.end(), graph::NodeId{0});
  // Descending rank; stable so equal ranks fall back to ascending id.
  std::stable_sort(priority.begin(), priority.end(),
                   [&](graph::NodeId a, graph::NodeId b) {
                     return rank[a] > rank[b];
                   });
  return run_priorities(eval, priority);
}

DagScheduleResult topo_list_schedule(const sim::ScheduleEvaluator& eval) {
  return run_priorities(eval, eval.topo_order());
}

}  // namespace match::baselines
