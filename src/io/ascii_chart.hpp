#pragma once

#include <iosfwd>
#include <span>
#include <string>
#include <vector>

namespace match::io {

/// One line series of an AsciiChart.
struct Series {
  std::string label;
  std::vector<double> y;
  char marker = '*';
};

/// Terminal bar/line chart used by the figure-reproduction benches so a
/// bench binary's stdout shows the *shape* of the paper's figure, not
/// just numbers.
///
/// Values are plotted against a shared categorical x-axis (e.g. the
/// resource counts 10..50).  A logarithmic y-axis is available because
/// the paper's ET spans two orders of magnitude.
class AsciiChart {
 public:
  AsciiChart(std::string title, std::vector<std::string> x_labels);

  void add_series(Series s);

  void set_log_y(bool log_y) { log_y_ = log_y; }
  void set_height(std::size_t rows);

  void print(std::ostream& os) const;

 private:
  std::string title_;
  std::vector<std::string> x_labels_;
  std::vector<Series> series_;
  bool log_y_ = false;
  std::size_t height_ = 16;
};

}  // namespace match::io
