#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace match::io {

/// Aligned plain-text table builder used by the benchmark harness to
/// print paper-style result tables.
///
/// ```
/// Table t({"|Vr|=|Vt|", "ET_GA", "ET_MaTCH", "ratio"});
/// t.add_row({"10", "16585", "3516", "4.72"});
/// t.print(std::cout);
/// ```
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Adds a row; must have exactly as many cells as the header.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with `precision` significant digits.
  static std::string num(double value, int precision = 6);

  std::size_t num_rows() const noexcept { return rows_.size(); }
  std::size_t num_cols() const noexcept { return header_.size(); }

  void print(std::ostream& os) const;

  /// Comma-separated form (header + rows) for machine consumption.
  void write_csv(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Minimal CSV field quoting per RFC 4180 (quotes fields containing
/// commas, quotes or newlines).
std::string csv_escape(const std::string& field);

}  // namespace match::io
