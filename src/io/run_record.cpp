#include "io/run_record.hpp"

#include <map>
#include <ostream>
#include <tuple>

#include "io/table.hpp"

namespace match::io {

const char* RunLog::header() {
  return "experiment,heuristic,instance,n,seed,cost,seconds,iterations,"
         "evaluations";
}

RunLog::RunLog(std::ostream& os) : os_(&os) { *os_ << header() << "\n"; }

void RunLog::add(const RunRecord& r) {
  *os_ << csv_escape(r.experiment) << "," << csv_escape(r.heuristic) << ","
       << csv_escape(r.instance) << "," << r.n << "," << r.seed << ","
       << Table::num(r.cost, 12) << "," << Table::num(r.seconds, 8) << ","
       << r.iterations << "," << r.evaluations << "\n";
  ++count_;
}

std::vector<RunAggregate> aggregate_runs(
    const std::vector<RunRecord>& records) {
  using Key = std::tuple<std::string, std::string, std::size_t>;
  std::map<Key, RunAggregate> groups;
  for (const RunRecord& r : records) {
    RunAggregate& agg = groups[{r.experiment, r.heuristic, r.n}];
    agg.experiment = r.experiment;
    agg.heuristic = r.heuristic;
    agg.n = r.n;
    ++agg.runs;
    agg.mean_cost += r.cost;
    agg.mean_seconds += r.seconds;
  }
  std::vector<RunAggregate> out;
  out.reserve(groups.size());
  for (auto& [key, agg] : groups) {
    agg.mean_cost /= static_cast<double>(agg.runs);
    agg.mean_seconds /= static_cast<double>(agg.runs);
    out.push_back(std::move(agg));
  }
  return out;
}

}  // namespace match::io
