#include "io/ascii_chart.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <limits>
#include <ostream>
#include <stdexcept>

namespace match::io {

AsciiChart::AsciiChart(std::string title, std::vector<std::string> x_labels)
    : title_(std::move(title)), x_labels_(std::move(x_labels)) {
  if (x_labels_.empty()) throw std::invalid_argument("AsciiChart: no x labels");
}

void AsciiChart::add_series(Series s) {
  if (s.y.size() != x_labels_.size()) {
    throw std::invalid_argument("AsciiChart: series length mismatch");
  }
  series_.push_back(std::move(s));
}

void AsciiChart::set_height(std::size_t rows) {
  if (rows < 4) throw std::invalid_argument("AsciiChart: height < 4");
  height_ = rows;
}

void AsciiChart::print(std::ostream& os) const {
  if (series_.empty()) {
    os << title_ << " (no data)\n";
    return;
  }
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (const Series& s : series_) {
    for (double v : s.y) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
  }
  const auto transform = [&](double v) {
    return log_y_ ? std::log10(std::max(v, 1e-300)) : v;
  };
  double tlo = transform(lo), thi = transform(hi);
  if (thi - tlo < 1e-12) {
    thi = tlo + 1.0;  // flat data: give the band some height
  }

  const std::size_t col_width = 12;
  const std::size_t plot_cols = x_labels_.size() * col_width;
  std::vector<std::string> canvas(height_, std::string(plot_cols, ' '));

  for (const Series& s : series_) {
    for (std::size_t i = 0; i < s.y.size(); ++i) {
      const double frac = (transform(s.y[i]) - tlo) / (thi - tlo);
      const auto row_from_bottom = static_cast<std::size_t>(
          std::lround(frac * static_cast<double>(height_ - 1)));
      const std::size_t row = height_ - 1 - row_from_bottom;
      const std::size_t col = i * col_width + col_width / 2;
      canvas[row][col] = s.marker;
    }
  }

  os << "\n" << title_;
  if (log_y_) os << "   [log y]";
  os << "\n";
  for (std::size_t r = 0; r < height_; ++r) {
    const double frac =
        static_cast<double>(height_ - 1 - r) / static_cast<double>(height_ - 1);
    double axis_val = tlo + frac * (thi - tlo);
    if (log_y_) axis_val = std::pow(10.0, axis_val);
    os << std::setw(11) << std::setprecision(4) << axis_val << " |"
       << canvas[r] << "\n";
  }
  os << std::string(12, ' ') << "+" << std::string(plot_cols, '-') << "\n";
  os << std::string(13, ' ');
  for (const std::string& label : x_labels_) {
    std::string cell = label.substr(0, col_width - 1);
    const std::size_t pad = col_width - cell.size();
    os << std::string(pad / 2, ' ') << cell
       << std::string(pad - pad / 2, ' ');
  }
  os << "\n   legend: ";
  for (const Series& s : series_) {
    os << "'" << s.marker << "' = " << s.label << "   ";
  }
  os << "\n\n";
}

}  // namespace match::io
