#include "io/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace match::io {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument("Table: empty header");
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != header_.size()) {
    throw std::invalid_argument("Table::add_row: wrong cell count");
  }
  rows_.push_back(std::move(cells));
}

std::string Table::num(double value, int precision) {
  std::ostringstream os;
  os << std::setprecision(precision) << value;
  return os.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  const auto print_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << " " << std::left << std::setw(static_cast<int>(width[c])) << row[c]
         << " |";
    }
    os << "\n";
  };

  print_row(header_);
  os << "|";
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << std::string(width[c] + 2, '-') << "|";
  }
  os << "\n";
  for (const auto& row : rows_) print_row(row);
}

std::string csv_escape(const std::string& field) {
  if (field.find_first_of(",\"\n\r") == std::string::npos) return field;
  std::string out = "\"";
  for (char ch : field) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

void Table::write_csv(std::ostream& os) const {
  const auto write_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) os << ",";
      os << csv_escape(row[c]);
    }
    os << "\n";
  };
  write_row(header_);
  for (const auto& row : rows_) write_row(row);
}

}  // namespace match::io
