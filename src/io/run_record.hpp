#pragma once

// Structured experiment records: every heuristic run in the benchmark
// harness can be captured as a RunRecord and appended to a CSV log, so
// downstream analysis (plots, regressions across commits) works from
// machine-readable data instead of scraped stdout.

#include <iosfwd>
#include <string>
#include <vector>

namespace match::io {

/// One heuristic execution on one instance.
struct RunRecord {
  std::string experiment;  ///< e.g. "table1", "ablation"
  std::string heuristic;   ///< e.g. "match", "fastmap-ga"
  std::string instance;    ///< instance name / description
  std::size_t n = 0;       ///< problem size
  std::uint64_t seed = 0;
  double cost = 0.0;       ///< achieved makespan (ET)
  double seconds = 0.0;    ///< mapping time (MT)
  std::size_t iterations = 0;
  std::size_t evaluations = 0;
};

/// Append-only CSV log of run records.  The header is written once per
/// stream; records escape per RFC 4180 (via io/table.hpp's escaper).
class RunLog {
 public:
  /// Writes to `os`, emitting the header immediately.  The stream must
  /// outlive the log.
  explicit RunLog(std::ostream& os);

  void add(const RunRecord& record);

  std::size_t size() const noexcept { return count_; }

  static const char* header();

 private:
  std::ostream* os_;
  std::size_t count_ = 0;
};

/// Aggregates records that share (experiment, heuristic, n).
struct RunAggregate {
  std::string experiment;
  std::string heuristic;
  std::size_t n = 0;
  std::size_t runs = 0;
  double mean_cost = 0.0;
  double mean_seconds = 0.0;
};
std::vector<RunAggregate> aggregate_runs(const std::vector<RunRecord>& records);

}  // namespace match::io
