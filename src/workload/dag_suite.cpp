#include "workload/dag_suite.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace match::workload {

namespace {

using graph::Edge;
using graph::NodeId;

}  // namespace

graph::Dag make_layered_dag(const LayeredDagParams& params, rng::Rng& rng) {
  if (params.tasks < 2) {
    throw std::invalid_argument("make_layered_dag: tasks < 2");
  }
  if (params.layers < 2 || params.layers > params.tasks) {
    throw std::invalid_argument("make_layered_dag: bad layer count");
  }
  if (params.p_forward < 0.0 || params.p_forward > 1.0) {
    throw std::invalid_argument("make_layered_dag: p_forward out of [0,1]");
  }

  // Assign each task a layer: one guaranteed per layer, the rest uniform.
  const std::size_t n = params.tasks;
  const std::size_t layers = params.layers;
  std::vector<std::size_t> layer_of(n);
  for (std::size_t l = 0; l < layers; ++l) layer_of[l] = l;
  for (std::size_t t = layers; t < n; ++t) {
    layer_of[t] = static_cast<std::size_t>(rng.below(layers));
  }
  // Renumber so ids ascend with layer (arcs then always point forward,
  // and the canonical topological order reads naturally).
  std::vector<NodeId> by_layer(n);
  for (std::size_t t = 0; t < n; ++t) by_layer[t] = static_cast<NodeId>(t);
  std::stable_sort(by_layer.begin(), by_layer.end(),
                   [&](NodeId a, NodeId b) { return layer_of[a] < layer_of[b]; });
  std::vector<std::size_t> layer(n);
  std::vector<std::vector<NodeId>> members(layers);
  for (std::size_t i = 0; i < n; ++i) {
    layer[i] = layer_of[by_layer[i]];
    members[layer[i]].push_back(static_cast<NodeId>(i));
  }

  std::vector<double> node_w(n);
  for (auto& w : node_w) w = params.task_w.sample(rng);

  std::vector<Edge> edges;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t l = layer[i];
    if (l == 0) continue;
    // Guaranteed predecessor from the previous layer keeps every task
    // reachable from layer 0 (no free-floating roots mid-graph).
    const auto& prev = members[l - 1];
    const NodeId anchor = prev[rng.below(prev.size())];
    edges.push_back(Edge{anchor, static_cast<NodeId>(i),
                         params.edge_w.sample(rng)});
    // Extra forward arcs from nearby earlier layers.
    const std::size_t lo_layer =
        l > params.max_skip ? l - params.max_skip : std::size_t{0};
    for (std::size_t pl = lo_layer; pl < l; ++pl) {
      for (const NodeId p : members[pl]) {
        if (p == anchor && pl == l - 1) continue;
        if (rng.bernoulli(params.p_forward)) {
          edges.push_back(
              Edge{p, static_cast<NodeId>(i), params.edge_w.sample(rng)});
        }
      }
    }
  }
  return graph::Dag::from_edges(n, std::move(node_w), edges);
}

graph::Dag make_fork_join_dag(const ForkJoinDagParams& params, rng::Rng& rng) {
  if (params.tasks < 3) {
    throw std::invalid_argument("make_fork_join_dag: tasks < 3");
  }
  if (params.max_width < 1) {
    throw std::invalid_argument("make_fork_join_dag: max_width < 1");
  }

  std::vector<double> node_w;
  std::vector<Edge> edges;
  const auto new_task = [&] {
    node_w.push_back(params.task_w.sample(rng));
    return static_cast<NodeId>(node_w.size() - 1);
  };
  NodeId frontier = new_task();  // source
  std::size_t remaining = params.tasks - 1;
  while (remaining > 0) {
    if (remaining <= 2) {
      // Not enough budget for a fork stage; finish with a chain.
      while (remaining-- > 0) {
        const NodeId next = new_task();
        edges.push_back(Edge{frontier, next, params.edge_w.sample(rng)});
        frontier = next;
      }
      break;
    }
    // A stage costs width + 1 nodes (parallel tasks + join).
    const std::size_t max_width = std::min(params.max_width, remaining - 1);
    const std::size_t width = 1 + rng.below(max_width);
    std::vector<NodeId> branch(width);
    for (auto& t : branch) {
      t = new_task();
      edges.push_back(Edge{frontier, t, params.edge_w.sample(rng)});
    }
    const NodeId join = new_task();
    for (const NodeId t : branch) {
      edges.push_back(Edge{t, join, params.edge_w.sample(rng)});
    }
    frontier = join;
    remaining -= width + 1;
  }
  // Hoist the count: `node_w` may be moved-from before `.size()` is
  // evaluated (argument evaluation order is unspecified).
  const std::size_t num_nodes = node_w.size();
  return graph::Dag::from_edges(num_nodes, std::move(node_w), edges);
}

namespace {

struct SpBuilder {
  const SeriesParallelDagParams& params;
  rng::Rng& rng;
  std::vector<double> node_w;
  std::vector<Edge> edges;

  NodeId new_task() {
    node_w.push_back(params.task_w.sample(rng));
    return static_cast<NodeId>(node_w.size() - 1);
  }

  void arc(NodeId from, NodeId to) {
    edges.push_back(Edge{from, to, params.edge_w.sample(rng)});
  }

  /// Emits a two-terminal block of exactly `budget` tasks; returns its
  /// (source, sink) pair.
  std::pair<NodeId, NodeId> block(std::size_t budget) {
    if (budget == 1) {
      const NodeId t = new_task();
      return {t, t};
    }
    // Parallel needs fork + join + >= 2 branch tasks.
    const bool can_parallel = budget >= 4;
    if (can_parallel && rng.bernoulli(params.parallel_prob)) {
      const std::size_t inner = budget - 2;
      const std::size_t max_branches =
          std::min(params.max_branches, inner);
      const std::size_t branches =
          max_branches <= 2 ? 2 : 2 + rng.below(max_branches - 1);
      const NodeId fork = new_task();
      const NodeId join = new_task();
      // Split `inner` tasks among `branches`, each >= 1.
      std::size_t left = inner;
      for (std::size_t i = 0; i < branches; ++i) {
        const std::size_t remaining_branches = branches - i - 1;
        const std::size_t max_here = left - remaining_branches;
        const std::size_t take =
            remaining_branches == 0 ? left : 1 + rng.below(max_here);
        const auto [src, snk] = block(take);
        arc(fork, src);
        arc(snk, join);
        left -= take;
      }
      return {fork, join};
    }
    // Series: split the budget in two non-empty parts.
    const std::size_t first = 1 + rng.below(budget - 1);
    const auto [s1, k1] = block(first);
    const auto [s2, k2] = block(budget - first);
    arc(k1, s2);
    return {s1, k2};
  }
};

}  // namespace

graph::Dag make_series_parallel_dag(const SeriesParallelDagParams& params,
                                    rng::Rng& rng) {
  if (params.tasks < 2) {
    throw std::invalid_argument("make_series_parallel_dag: tasks < 2");
  }
  if (params.parallel_prob < 0.0 || params.parallel_prob > 1.0) {
    throw std::invalid_argument(
        "make_series_parallel_dag: parallel_prob out of [0,1]");
  }
  if (params.max_branches < 2) {
    throw std::invalid_argument("make_series_parallel_dag: max_branches < 2");
  }
  SpBuilder b{params, rng, {}, {}};
  b.block(params.tasks);
  const std::size_t num_nodes = b.node_w.size();  // hoisted before the move
  return graph::Dag::from_edges(num_nodes, std::move(b.node_w), b.edges);
}

const char* dag_family_name(DagFamily family) {
  switch (family) {
    case DagFamily::kLayered: return "layered";
    case DagFamily::kForkJoin: return "fork-join";
    case DagFamily::kSeriesParallel: return "series-parallel";
  }
  return "?";
}

DagInstance make_dag_instance(DagFamily family, const DagSuiteParams& params,
                              rng::Rng& rng) {
  if (params.resources < 2) {
    throw std::invalid_argument("make_dag_instance: resources < 2");
  }
  DagInstance inst;
  switch (family) {
    case DagFamily::kLayered: {
      LayeredDagParams p;
      p.tasks = params.tasks;
      p.layers = std::min(params.layers, params.tasks);
      p.p_forward = params.p_forward;
      p.max_skip = params.max_skip;
      p.task_w = params.task_w;
      p.edge_w = params.edge_w;
      inst.dag = make_layered_dag(p, rng);
      break;
    }
    case DagFamily::kForkJoin: {
      ForkJoinDagParams p;
      p.tasks = params.tasks;
      p.max_width = params.fork_max_width;
      p.task_w = params.task_w;
      p.edge_w = params.edge_w;
      inst.dag = make_fork_join_dag(p, rng);
      break;
    }
    case DagFamily::kSeriesParallel: {
      SeriesParallelDagParams p;
      p.tasks = params.tasks;
      p.parallel_prob = params.sp_parallel_prob;
      p.max_branches = params.sp_max_branches;
      p.task_w = params.task_w;
      p.edge_w = params.edge_w;
      inst.dag = make_series_parallel_dag(p, rng);
      break;
    }
  }
  inst.name = std::string("dag-") + dag_family_name(family) + "-n" +
              std::to_string(inst.dag.num_nodes());
  inst.resources = graph::ResourceGraph(graph::make_complete(
      params.resources, params.res_node, params.res_edge, rng));
  inst.comm_policy = sim::CommCostPolicy::kDirectLinks;
  return inst;
}

}  // namespace match::workload
