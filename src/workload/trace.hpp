#pragma once

// Synthetic grid-availability traces and a replay driver.
//
// A computational grid's resources degrade and recover while an
// application runs (contention from other users, links saturating).
// `make_degradation_trace` synthesizes a timed event sequence;
// `replay_trace` plays it against an instance under one of three
// reaction policies — keep the initial mapping, warm-started re-mapping
// (core/rematch), or cold restart — and reports the ET the application
// would have observed over time.  This turns the paper's static mapping
// problem into the dynamic scenario its future-work section gestures at,
// with everything built from the library's own pieces (perturb, rematch,
// evaluator).

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "rng/rng.hpp"
#include "sim/evaluator.hpp"

namespace match::workload {

/// One platform change.
struct TraceEvent {
  enum class Kind {
    kSlowdown,     ///< resource processing cost × factor
    kRecovery,     ///< resource processing cost restored to baseline
    kLinkDegrade,  ///< all links incident to the resource × factor
  };

  double time = 0.0;  ///< abstract time units, non-decreasing
  Kind kind = Kind::kSlowdown;
  graph::NodeId resource = 0;
  double factor = 1.0;  ///< meaningful for slowdown/link events, > 1
};

struct TraceParams {
  std::size_t num_events = 12;
  double horizon = 1000.0;  ///< events are spread over [0, horizon)
  double min_factor = 1.5;
  double max_factor = 4.0;
  /// Probability an event is a link degradation instead of a slowdown.
  double p_link_event = 0.25;
  /// Probability an event restores a previously slowed resource instead
  /// of degrading a new one (no-op if nothing is degraded).
  double p_recovery = 0.3;

  void validate() const;
};

/// Generates a time-sorted event sequence for a platform of
/// `num_resources` nodes.
std::vector<TraceEvent> make_degradation_trace(std::size_t num_resources,
                                               const TraceParams& params,
                                               rng::Rng& rng);

/// How the scheduler reacts to each event.
enum class ReplayPolicy {
  kStatic,       ///< map once, never react
  kWarmRematch,  ///< anchored warm re-mapping after every event
  kColdRestart,  ///< full MaTCH re-run after every event
};

const char* to_string(ReplayPolicy policy);

struct ReplayResult {
  /// ET of the active mapping after each event (index-aligned with the
  /// event sequence).
  std::vector<double> et_timeline;
  double mean_et = 0.0;
  /// Total wall-clock spent re-mapping across the whole trace.
  double total_mapping_seconds = 0.0;
  std::size_t remaps = 0;
};

/// Plays `events` against the instance under `policy`.  The same seed
/// yields identical decisions across policies, so results are directly
/// comparable.
ReplayResult replay_trace(const graph::Tig& tig,
                          const graph::ResourceGraph& initial_resources,
                          const std::vector<TraceEvent>& events,
                          ReplayPolicy policy, rng::Rng& rng);

/// Parameters of a synthetic open-loop arrival process (the request
/// stream a mapping service faces: requests arrive on their own clock,
/// independent of how fast the service answers them).
struct ArrivalParams {
  std::size_t count = 500;
  /// Mean arrival rate in requests per second (Poisson process:
  /// exponential inter-arrival times with this rate).
  double rate = 500.0;

  void validate() const;
};

/// Generates `params.count` non-decreasing arrival times (seconds from
/// trace start) of a Poisson process with rate `params.rate`.
std::vector<double> make_poisson_arrivals(const ArrivalParams& params,
                                          rng::Rng& rng);

}  // namespace match::workload
