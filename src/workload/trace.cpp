#include "workload/trace.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/matchalgo.hpp"
#include "core/rematch.hpp"
#include "sim/perturb.hpp"

namespace match::workload {

void TraceParams::validate() const {
  if (horizon <= 0.0) throw std::invalid_argument("TraceParams: horizon");
  if (min_factor <= 1.0 || max_factor < min_factor) {
    throw std::invalid_argument("TraceParams: factor range");
  }
  if (p_link_event < 0.0 || p_link_event > 1.0 || p_recovery < 0.0 ||
      p_recovery > 1.0) {
    throw std::invalid_argument("TraceParams: probabilities");
  }
}

std::vector<TraceEvent> make_degradation_trace(std::size_t num_resources,
                                               const TraceParams& params,
                                               rng::Rng& rng) {
  params.validate();
  if (num_resources == 0) {
    throw std::invalid_argument("make_degradation_trace: no resources");
  }

  std::vector<TraceEvent> events;
  events.reserve(params.num_events);
  std::vector<char> slowed(num_resources, 0);

  for (std::size_t i = 0; i < params.num_events; ++i) {
    TraceEvent ev;
    ev.time = rng.uniform_real(0.0, params.horizon);

    // Recovery only makes sense if something is currently slowed.
    bool any_slowed = false;
    for (char s : slowed) any_slowed |= (s != 0);

    if (any_slowed && rng.bernoulli(params.p_recovery)) {
      ev.kind = TraceEvent::Kind::kRecovery;
      // Pick a slowed resource uniformly.
      std::vector<graph::NodeId> candidates;
      for (graph::NodeId r = 0; r < num_resources; ++r) {
        if (slowed[r]) candidates.push_back(r);
      }
      ev.resource = candidates[rng.below(candidates.size())];
      slowed[ev.resource] = 0;
    } else if (rng.bernoulli(params.p_link_event)) {
      ev.kind = TraceEvent::Kind::kLinkDegrade;
      ev.resource = static_cast<graph::NodeId>(rng.below(num_resources));
      ev.factor = rng.uniform_real(params.min_factor, params.max_factor);
    } else {
      ev.kind = TraceEvent::Kind::kSlowdown;
      ev.resource = static_cast<graph::NodeId>(rng.below(num_resources));
      ev.factor = rng.uniform_real(params.min_factor, params.max_factor);
      slowed[ev.resource] = 1;
    }
    events.push_back(ev);
  }

  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.time < b.time;
            });
  return events;
}

const char* to_string(ReplayPolicy policy) {
  switch (policy) {
    case ReplayPolicy::kStatic:
      return "static";
    case ReplayPolicy::kWarmRematch:
      return "warm-rematch";
    case ReplayPolicy::kColdRestart:
      return "cold-restart";
  }
  return "unknown";
}

ReplayResult replay_trace(const graph::Tig& tig,
                          const graph::ResourceGraph& initial_resources,
                          const std::vector<TraceEvent>& events,
                          ReplayPolicy policy, rng::Rng& rng) {
  ReplayResult out;

  // Track baseline processing costs so recovery can restore them.
  const graph::Graph& base = initial_resources.graph();
  graph::ResourceGraph current = initial_resources;

  // Initial mapping on the healthy platform.
  sim::Platform platform(current);
  sim::CostEvaluator eval(tig, platform);
  core::MatchOptimizer initial_opt(eval);
  const auto initial = initial_opt.run(match::SolverContext(rng));
  sim::Mapping mapping = initial.best_mapping;
  out.total_mapping_seconds += initial.elapsed_seconds;

  for (const TraceEvent& ev : events) {
    // Apply the event to the platform.
    switch (ev.kind) {
      case TraceEvent::Kind::kSlowdown:
        current = sim::scale_processing_cost(current, ev.resource, ev.factor);
        break;
      case TraceEvent::Kind::kRecovery: {
        const double now = current.processing_cost(ev.resource);
        const double baseline = base.node_weight(ev.resource);
        if (now > baseline) {
          current = sim::scale_processing_cost(current, ev.resource,
                                               baseline / now);
        }
        break;
      }
      case TraceEvent::Kind::kLinkDegrade:
        current = sim::scale_link_costs(current, ev.resource, ev.factor);
        break;
    }

    sim::Platform new_platform(current);
    sim::CostEvaluator new_eval(tig, new_platform);

    switch (policy) {
      case ReplayPolicy::kStatic:
        break;  // never react
      case ReplayPolicy::kWarmRematch: {
        core::RematchParams rp;
        const auto r =
            core::rematch(new_eval, mapping, rp, match::SolverContext(rng));
        mapping = r.best_mapping;
        out.total_mapping_seconds += r.elapsed_seconds;
        ++out.remaps;
        break;
      }
      case ReplayPolicy::kColdRestart: {
        core::MatchOptimizer opt(new_eval);
        const auto r = opt.run(match::SolverContext(rng));
        if (r.best_cost < new_eval.makespan(mapping)) {
          mapping = r.best_mapping;
        }
        out.total_mapping_seconds += r.elapsed_seconds;
        ++out.remaps;
        break;
      }
    }

    out.et_timeline.push_back(new_eval.makespan(mapping));
  }

  for (double et : out.et_timeline) out.mean_et += et;
  if (!out.et_timeline.empty()) {
    out.mean_et /= static_cast<double>(out.et_timeline.size());
  }
  return out;
}

void ArrivalParams::validate() const {
  if (rate <= 0.0) throw std::invalid_argument("ArrivalParams: rate");
}

std::vector<double> make_poisson_arrivals(const ArrivalParams& params,
                                          rng::Rng& rng) {
  params.validate();
  std::vector<double> arrivals;
  arrivals.reserve(params.count);
  double t = 0.0;
  for (std::size_t i = 0; i < params.count; ++i) {
    t += rng.exponential(params.rate);
    arrivals.push_back(t);
  }
  return arrivals;
}

}  // namespace match::workload
