#pragma once

#include <cstdint>
#include <vector>

#include "graph/generators.hpp"
#include "rng/rng.hpp"
#include "workload/instance.hpp"

namespace match::workload {

/// Parameters of the paper's §5.2 synthetic instance family.
///
/// Defaults reproduce the published setting exactly:
///  * `|V_t| = |V_r| = n`;
///  * TIG node weights 1–10, TIG edge weights 50–100;
///  * resource node weights 1–5, link weights 10–20;
///  * TIG edges "randomly generated ... to represent regions of high
///    density and regions of lower density" — modeled by the clustered
///    generator (dense intra-region, sparse inter-region);
///  * complete resource graph (the cost model charges `c_{s,b}` for any
///    pair, see DESIGN.md).
struct PaperParams {
  std::size_t n = 10;

  graph::WeightRange tig_node{1, 10};
  graph::WeightRange tig_edge{50, 100};
  graph::WeightRange res_node{1, 5};
  graph::WeightRange res_edge{10, 20};

  std::size_t tig_regions = 3;
  double tig_p_dense = 0.7;
  double tig_p_sparse = 0.2;

  /// Multiplier applied to every TIG edge weight after sampling; this is
  /// the paper's "varying computation to communication ratio" knob.
  double comm_scale = 1.0;

  /// Task compute-weight model.  The paper draws uniformly from
  /// `tig_node`; `kLognormal` replaces the draws with a heavy-tailed
  /// log-normal of the *same mean*, modeling the few-huge-grids profile
  /// real overset decompositions show (extension; see
  /// bench/ext_heterogeneity).
  enum class TaskWeightModel { kUniform, kLognormal };
  TaskWeightModel task_weight_model = TaskWeightModel::kUniform;
  /// Shape of the log-normal (larger = heavier tail).
  double lognormal_sigma = 0.75;

  /// Complete resource graph (paper default) vs sparse topology routed
  /// over shortest paths.
  bool complete_resources = true;
  double res_gnp_p = 0.4;  ///< density when `complete_resources` is false
};

/// Generates one paper-style instance.
Instance make_paper_instance(const PaperParams& params, rng::Rng& rng);

/// Generates the paper's evaluation suite: `count` instances with
/// comm/comp ratios spread over [scale_lo, scale_hi] (geometric steps),
/// all of size `params.n`.  The paper uses five.
std::vector<Instance> make_paper_suite(const PaperParams& params,
                                       std::size_t count, double scale_lo,
                                       double scale_hi, rng::Rng& rng);

}  // namespace match::workload
