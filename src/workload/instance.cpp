#include "workload/instance.hpp"

#include <fstream>
#include <stdexcept>

#include "graph/io.hpp"

namespace match::workload {

void save_instance(const std::string& path_stem, const Instance& inst) {
  graph::save_graph(path_stem + ".tig", inst.tig.graph());
  graph::save_graph(path_stem + ".res", inst.resources.graph());
  std::ofstream meta(path_stem + ".meta");
  if (!meta) {
    throw std::runtime_error("save_instance: cannot open " + path_stem +
                             ".meta");
  }
  meta << "name " << (inst.name.empty() ? path_stem : inst.name) << "\n";
  meta << "comm_policy "
       << (inst.comm_policy == sim::CommCostPolicy::kDirectLinks
               ? "direct"
               : "shortest_path")
       << "\n";
}

Instance load_instance(const std::string& path_stem) {
  Instance inst;
  inst.tig = graph::Tig(graph::load_graph(path_stem + ".tig"));
  inst.resources = graph::ResourceGraph(graph::load_graph(path_stem + ".res"));
  inst.name = path_stem;

  std::ifstream meta(path_stem + ".meta");
  if (meta) {
    std::string keyword, value;
    while (meta >> keyword >> value) {
      if (keyword == "name") {
        inst.name = value;
      } else if (keyword == "comm_policy") {
        inst.comm_policy = value == "shortest_path"
                               ? sim::CommCostPolicy::kShortestPath
                               : sim::CommCostPolicy::kDirectLinks;
      }
    }
  }
  return inst;
}

}  // namespace match::workload
