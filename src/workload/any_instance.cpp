#include "workload/any_instance.hpp"

#include <stdexcept>

namespace match::workload {

const char* workload_kind_name(WorkloadKind kind) {
  switch (kind) {
    case WorkloadKind::kTig: return "tig";
    case WorkloadKind::kDag: return "dag";
  }
  return "?";
}

const std::string& AnyInstance::name() const noexcept {
  if (const auto* t = std::get_if<Instance>(&v_)) return t->name;
  return std::get<DagInstance>(v_).name;
}

std::size_t AnyInstance::size() const noexcept {
  if (const auto* t = std::get_if<Instance>(&v_)) return t->size();
  return std::get<DagInstance>(v_).size();
}

const graph::ResourceGraph& AnyInstance::resources() const noexcept {
  if (const auto* t = std::get_if<Instance>(&v_)) return t->resources;
  return std::get<DagInstance>(v_).resources;
}

sim::CommCostPolicy AnyInstance::comm_policy() const noexcept {
  if (const auto* t = std::get_if<Instance>(&v_)) return t->comm_policy;
  return std::get<DagInstance>(v_).comm_policy;
}

sim::Platform AnyInstance::make_platform() const {
  return sim::Platform(resources(), comm_policy());
}

const Instance& AnyInstance::tig() const {
  if (const auto* t = std::get_if<Instance>(&v_)) return *t;
  throw std::logic_error("AnyInstance::tig: instance holds a DAG workload");
}

const DagInstance& AnyInstance::dag() const {
  if (const auto* d = std::get_if<DagInstance>(&v_)) return *d;
  throw std::logic_error("AnyInstance::dag: instance holds a TIG workload");
}

}  // namespace match::workload
