#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "graph/graph.hpp"
#include "rng/rng.hpp"

namespace match::workload {

/// An axis-aligned box representing one structured grid of an overset-grid
/// CFD decomposition (paper §2 / Fig. 1).
struct OversetGrid {
  std::array<double, 3> lo{};  ///< min corner
  std::array<double, 3> hi{};  ///< max corner

  double volume() const noexcept {
    return (hi[0] - lo[0]) * (hi[1] - lo[1]) * (hi[2] - lo[2]);
  }

  /// Overlap volume with another grid; 0 when disjoint.
  double overlap_volume(const OversetGrid& other) const noexcept;
};

/// Parameters of the synthetic overset-grid workload.
///
/// The generator scatters `num_grids` boxes inside the unit cube around an
/// embedded "body" (a central region every grid is pulled toward, mimicking
/// grids clustered around an irregular body).  Node weight = grid points
/// (`points_per_volume` × volume); edge weight = overlapping grid points
/// (`points_per_volume` × overlap volume).  This is the substitution for
/// the paper's (proprietary) CFD meshes: it exercises the same TIG shape —
/// geometric adjacency, heavy-tailed overlap volumes — see DESIGN.md.
struct OversetParams {
  std::size_t num_grids = 16;
  double min_extent = 0.15;  ///< per-axis box size range
  double max_extent = 0.45;
  double body_pull = 0.5;    ///< 0 = uniform placement, 1 = all at center
  double points_per_volume = 4096.0;
  bool force_connected = true;  ///< chain disconnected grids with min-weight overlaps
};

/// Result of generating an overset workload: the geometry plus its TIG.
struct OversetWorkload {
  std::vector<OversetGrid> grids;
  graph::Tig tig;
};

OversetWorkload make_overset_workload(const OversetParams& params,
                                      rng::Rng& rng);

}  // namespace match::workload
