#include "workload/paper_suite.hpp"

#include <cmath>
#include <stdexcept>

namespace match::workload {

Instance make_paper_instance(const PaperParams& params, rng::Rng& rng) {
  if (params.n < 2) throw std::invalid_argument("make_paper_instance: n < 2");
  if (params.comm_scale <= 0.0) {
    throw std::invalid_argument("make_paper_instance: comm_scale <= 0");
  }

  graph::Graph tig_graph = graph::make_clustered(
      params.n, params.tig_regions, params.tig_p_dense, params.tig_p_sparse,
      params.tig_node, params.tig_edge, rng, /*force_connected=*/true);

  const bool lognormal =
      params.task_weight_model == PaperParams::TaskWeightModel::kLognormal;
  if (params.comm_scale != 1.0 || lognormal) {
    // Rebuild with adjusted weights; graphs are immutable by design.
    auto edges = tig_graph.edge_list();
    for (auto& e : edges) e.weight *= params.comm_scale;
    std::vector<double> node_w(tig_graph.node_weights().begin(),
                               tig_graph.node_weights().end());
    if (lognormal) {
      if (params.lognormal_sigma <= 0.0) {
        throw std::invalid_argument(
            "make_paper_instance: lognormal_sigma <= 0");
      }
      // Same mean as the uniform draw, heavier tail: E[lognormal] =
      // exp(mu + sigma^2/2) = range mean.
      const double target_mean =
          0.5 * static_cast<double>(params.tig_node.lo + params.tig_node.hi);
      const double mu = std::log(target_mean) -
                        0.5 * params.lognormal_sigma * params.lognormal_sigma;
      for (auto& w : node_w) {
        w = std::max(1.0, rng.lognormal(mu, params.lognormal_sigma));
      }
    }
    tig_graph = graph::Graph::from_edges(params.n, std::move(node_w), edges);
  }

  Instance inst;
  inst.name = "paper-n" + std::to_string(params.n);
  inst.tig = graph::Tig(std::move(tig_graph));
  if (params.complete_resources) {
    inst.resources = graph::ResourceGraph(
        graph::make_complete(params.n, params.res_node, params.res_edge, rng));
    inst.comm_policy = sim::CommCostPolicy::kDirectLinks;
  } else {
    inst.resources = graph::ResourceGraph(
        graph::make_gnp(params.n, params.res_gnp_p, params.res_node,
                        params.res_edge, rng, /*force_connected=*/true));
    inst.comm_policy = sim::CommCostPolicy::kShortestPath;
  }
  return inst;
}

std::vector<Instance> make_paper_suite(const PaperParams& params,
                                       std::size_t count, double scale_lo,
                                       double scale_hi, rng::Rng& rng) {
  if (count == 0) return {};
  if (scale_lo <= 0.0 || scale_hi < scale_lo) {
    throw std::invalid_argument("make_paper_suite: bad scale range");
  }
  std::vector<Instance> suite;
  suite.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    PaperParams p = params;
    const double f =
        count == 1 ? 0.0
                   : static_cast<double>(i) / static_cast<double>(count - 1);
    p.comm_scale = scale_lo * std::pow(scale_hi / scale_lo, f);
    Instance inst = make_paper_instance(p, rng);
    inst.name += "-ccr" + std::to_string(i);
    suite.push_back(std::move(inst));
  }
  return suite;
}

}  // namespace match::workload
