#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "graph/dag.hpp"
#include "graph/generators.hpp"
#include "rng/rng.hpp"
#include "sim/platform.hpp"

namespace match::workload {

/// A complete DAG-scheduling instance: the application task graph (with
/// precedence arcs) plus the platform it runs on.  The structural sibling
/// of the TIG `Instance` — same resource-graph + comm-policy platform
/// model, but the application side carries precedence, so the right cost
/// model is a schedule makespan (`sim::ScheduleEvaluator`), not the
/// busiest-resource load.
struct DagInstance {
  std::string name;
  graph::Dag dag;
  graph::ResourceGraph resources;
  sim::CommCostPolicy comm_policy = sim::CommCostPolicy::kDirectLinks;

  std::size_t size() const noexcept { return dag.num_nodes(); }

  /// Builds the flattened platform for this instance.
  sim::Platform make_platform() const {
    return sim::Platform(resources, comm_policy);
  }
};

/// Layered random DAG (Tobita–Kasahara style): `tasks` nodes spread over
/// `layers` layers, every non-first-layer node wired to at least one node
/// of the previous layer, plus extra forward arcs with probability
/// `p_forward` reaching up to `max_skip` layers ahead.
struct LayeredDagParams {
  std::size_t tasks = 20;
  std::size_t layers = 5;
  double p_forward = 0.35;
  std::size_t max_skip = 2;
  graph::WeightRange task_w{1, 10};
  graph::WeightRange edge_w{50, 100};
};
graph::Dag make_layered_dag(const LayeredDagParams& params, rng::Rng& rng);

/// Fork-join chain: a source task, then repeated stages of `width_i`
/// parallel tasks (drawn from [1, max_width]) funneling into a join task,
/// until the task budget is spent.  The classic bulk-synchronous shape.
struct ForkJoinDagParams {
  std::size_t tasks = 20;
  std::size_t max_width = 4;
  graph::WeightRange task_w{1, 10};
  graph::WeightRange edge_w{50, 100};
};
graph::Dag make_fork_join_dag(const ForkJoinDagParams& params, rng::Rng& rng);

/// Series-parallel DAG by recursive two-terminal composition: a block is
/// a single task, a series chain of blocks, or a parallel composition of
/// blocks between a fork task and a join task.  `parallel_prob` picks the
/// parallel rule when the budget allows it (Wilhelm & Pionteck evaluate
/// mappers on exactly this family).
struct SeriesParallelDagParams {
  std::size_t tasks = 20;
  double parallel_prob = 0.6;
  std::size_t max_branches = 3;
  graph::WeightRange task_w{1, 10};
  graph::WeightRange edge_w{50, 100};
};
graph::Dag make_series_parallel_dag(const SeriesParallelDagParams& params,
                                    rng::Rng& rng);

/// The three generator families above, as a closed enum the benches and
/// tests iterate over.
enum class DagFamily { kLayered, kForkJoin, kSeriesParallel };
const char* dag_family_name(DagFamily family);

/// Parameters for a full instance (task DAG + platform) of any family.
/// Platform defaults mirror `PaperParams`: complete resource graph,
/// resource node weights 1–5 (processing cost), link weights 10–20.
struct DagSuiteParams {
  std::size_t tasks = 20;
  std::size_t resources = 8;

  graph::WeightRange task_w{1, 10};
  graph::WeightRange edge_w{50, 100};
  graph::WeightRange res_node{1, 5};
  graph::WeightRange res_edge{10, 20};

  std::size_t layers = 5;        ///< kLayered
  double p_forward = 0.35;       ///< kLayered
  std::size_t max_skip = 2;      ///< kLayered
  std::size_t fork_max_width = 4;  ///< kForkJoin
  double sp_parallel_prob = 0.6;   ///< kSeriesParallel
  std::size_t sp_max_branches = 3;  ///< kSeriesParallel
};

/// Generates one instance of `family`: the task DAG from the matching
/// generator plus a complete heterogeneous resource graph.
DagInstance make_dag_instance(DagFamily family, const DagSuiteParams& params,
                              rng::Rng& rng);

}  // namespace match::workload
