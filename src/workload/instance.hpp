#pragma once

#include <string>

#include "graph/graph.hpp"
#include "sim/platform.hpp"

namespace match::workload {

/// A complete mapping-problem instance: the application (TIG) plus the
/// platform it runs on.
struct Instance {
  std::string name;
  graph::Tig tig;
  graph::ResourceGraph resources;
  sim::CommCostPolicy comm_policy = sim::CommCostPolicy::kDirectLinks;

  std::size_t size() const noexcept { return tig.num_tasks(); }

  /// Builds the flattened platform for this instance.
  sim::Platform make_platform() const {
    return sim::Platform(resources, comm_policy);
  }
};

/// Saves/loads an instance as a pair of graph files: `<path>.tig` and
/// `<path>.res` (see graph/io.hpp for the format).
void save_instance(const std::string& path_stem, const Instance& inst);
Instance load_instance(const std::string& path_stem);

}  // namespace match::workload
