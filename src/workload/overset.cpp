#include "workload/overset.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "graph/algorithms.hpp"

namespace match::workload {

double OversetGrid::overlap_volume(const OversetGrid& other) const noexcept {
  double vol = 1.0;
  for (int axis = 0; axis < 3; ++axis) {
    const double lo_edge = std::max(lo[axis], other.lo[axis]);
    const double hi_edge = std::min(hi[axis], other.hi[axis]);
    if (hi_edge <= lo_edge) return 0.0;
    vol *= hi_edge - lo_edge;
  }
  return vol;
}

OversetWorkload make_overset_workload(const OversetParams& params,
                                      rng::Rng& rng) {
  if (params.num_grids < 2) {
    throw std::invalid_argument("make_overset_workload: need >= 2 grids");
  }
  if (params.min_extent <= 0.0 || params.max_extent < params.min_extent ||
      params.max_extent > 1.0) {
    throw std::invalid_argument("make_overset_workload: bad extent range");
  }
  if (params.body_pull < 0.0 || params.body_pull > 1.0) {
    throw std::invalid_argument("make_overset_workload: bad body_pull");
  }

  OversetWorkload out;
  out.grids.reserve(params.num_grids);
  for (std::size_t i = 0; i < params.num_grids; ++i) {
    OversetGrid g;
    for (int axis = 0; axis < 3; ++axis) {
      const double extent =
          rng.uniform_real(params.min_extent, params.max_extent);
      // Center placement pulled toward the body at (0.5, 0.5, 0.5).
      const double uniform_center =
          rng.uniform_real(extent / 2.0, 1.0 - extent / 2.0);
      const double center =
          (1.0 - params.body_pull) * uniform_center + params.body_pull * 0.5;
      g.lo[axis] = center - extent / 2.0;
      g.hi[axis] = center + extent / 2.0;
    }
    out.grids.push_back(g);
  }

  graph::Graph::Builder builder;
  for (const OversetGrid& g : out.grids) {
    // Grid points scale with volume; always at least one point.
    builder.add_node(std::max(1.0, params.points_per_volume * g.volume()));
  }
  std::vector<graph::Edge> edges;
  double min_edge_weight = std::numeric_limits<double>::infinity();
  for (graph::NodeId i = 0; i < params.num_grids; ++i) {
    for (graph::NodeId j = i + 1; j < params.num_grids; ++j) {
      const double overlap = out.grids[i].overlap_volume(out.grids[j]);
      if (overlap > 0.0) {
        const double w = std::max(1.0, params.points_per_volume * overlap);
        edges.push_back(graph::Edge{i, j, w});
        min_edge_weight = std::min(min_edge_weight, w);
      }
    }
  }

  graph::Graph g =
      graph::Graph::from_edges(params.num_grids, {}, edges);
  // Recover node weights from the builder path (Builder::build consumes, so
  // rebuild with explicit weights instead).
  std::vector<double> node_w(params.num_grids);
  for (std::size_t i = 0; i < params.num_grids; ++i) {
    node_w[i] = std::max(1.0, params.points_per_volume * out.grids[i].volume());
  }
  g = graph::Graph::from_edges(params.num_grids, std::move(node_w), edges);

  if (params.force_connected && !graph::is_connected(g)) {
    // Chain components with minimum-weight "ghost" overlaps so the TIG is
    // usable by heuristics that assume connectivity.
    const auto comps = graph::connected_components(g);
    std::vector<graph::NodeId> representative(comps.count,
                                              graph::NodeId{0});
    std::vector<char> seen(comps.count, 0);
    for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
      if (!seen[comps.label[u]]) {
        seen[comps.label[u]] = 1;
        representative[comps.label[u]] = u;
      }
    }
    const double ghost_w =
        std::isfinite(min_edge_weight) ? min_edge_weight : 1.0;
    for (std::size_t c = 1; c < comps.count; ++c) {
      edges.push_back(
          graph::Edge{representative[c - 1], representative[c], ghost_w});
    }
    std::vector<double> weights(g.node_weights().begin(),
                                g.node_weights().end());
    g = graph::Graph::from_edges(params.num_grids, std::move(weights), edges);
  }

  out.tig = graph::Tig(std::move(g));
  return out;
}

}  // namespace match::workload
