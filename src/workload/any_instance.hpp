#pragma once

#include <cstdint>
#include <string>
#include <variant>

#include "workload/dag_suite.hpp"
#include "workload/instance.hpp"

namespace match::workload {

/// Discriminant for the workload families the system can carry end to
/// end (service, cache, wire protocol).  Values are stable — they appear
/// in fingerprints and on the wire — so only append, never renumber.
enum class WorkloadKind : std::uint8_t {
  kTig = 0,  ///< undirected task-interaction graph, busiest-resource cost
  kDag = 1,  ///< precedence DAG, schedule-makespan cost
};

const char* workload_kind_name(WorkloadKind kind);

/// A workload of either kind behind one value type: the unit the service
/// queues, the cache fingerprints, and the wire protocol frames.  Solvers
/// declare which kinds they support (`Solver::supports`) and downcast via
/// `tig()` / `dag()`, which throw `std::logic_error` on a kind mismatch —
/// the registry checks support before dispatch, so a throw here is a
/// solver-adapter bug, not an input error.
class AnyInstance {
 public:
  AnyInstance() : v_(Instance{}) {}
  AnyInstance(Instance inst) : v_(std::move(inst)) {}        // NOLINT(google-explicit-constructor)
  AnyInstance(DagInstance inst) : v_(std::move(inst)) {}     // NOLINT(google-explicit-constructor)

  WorkloadKind kind() const noexcept {
    return std::holds_alternative<Instance>(v_) ? WorkloadKind::kTig
                                                : WorkloadKind::kDag;
  }

  const std::string& name() const noexcept;
  std::size_t size() const noexcept;

  /// The shared platform side (resource graph + comm policy) regardless
  /// of kind.
  const graph::ResourceGraph& resources() const noexcept;
  sim::CommCostPolicy comm_policy() const noexcept;
  sim::Platform make_platform() const;

  bool is_tig() const noexcept { return kind() == WorkloadKind::kTig; }
  bool is_dag() const noexcept { return kind() == WorkloadKind::kDag; }

  /// Kind-checked accessors; throw `std::logic_error` on mismatch.
  const Instance& tig() const;
  const DagInstance& dag() const;

 private:
  std::variant<Instance, DagInstance> v_;
};

}  // namespace match::workload
