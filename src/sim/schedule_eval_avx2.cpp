// AVX2 lane-parallel schedule kernel (assignment mode).  This
// translation unit is compiled with -mavx2 -mfma (see src/CMakeLists.txt)
// and stays behind the plain-ABI entry point declared in
// sim/schedule_eval.hpp; MATCH_DISABLE_SIMD compiles the stub instead.
//
// Shape: the schedule recurrence is sequential over *tasks* but
// embarrassingly parallel over *lanes*, so the kernel walks the canonical
// topological order once and advances 8 samples (two 4-wide double
// vectors) per task.  Per task: the 8 assigned resources load with unit
// stride from the task-major SampleBlock row; each predecessor
// contributes max(ready, finish + comm), with the comm term gathered from
// the matrix at r·nr + pr and masked to zero where the predecessor shares
// the resource (cmpeq → sign-extended 64-bit mask → andnot — the
// branchless form of the scalar `pr == r ? 0 : w·c`); the exec cost
// gathers from the task's precomputed exec-table row; and the
// per-resource avail times live lane-transposed (`avail[r·8 + l]`) so
// they gather by r·8 + lane and scatter back with a scalar extract loop
// (AVX2 has no scatter).
//
// Every lane performs exactly the scalar kernel's operation sequence —
// max / mul / add, no reassociation, and never a fused multiply-add
// (explicit mul_pd + add_pd; intrinsics are not contracted) — so the
// result is bit-identical to the scalar path even on fractional
// workloads.  Groups are globally aligned: a chunk boundary inside a
// group re-evaluates the whole group and writes only its own lanes, so
// lane values are chunking- and thread-count-independent.

#include "sim/schedule_eval.hpp"

#if defined(__x86_64__) && !defined(MATCH_DISABLE_SIMD)
#define MATCH_AVX2_KERNEL 1
#include <immintrin.h>
#endif

#include <cstdint>

namespace match::sim::detail {

#if defined(MATCH_AVX2_KERNEL)

namespace {

/// Rounds a buffer base up to 32 bytes so the kernel's group-wide rows
/// take aligned vector loads/stores (vector<double> storage only
/// guarantees 16).  Callers over-allocate by 3 doubles.
inline double* align32(std::vector<double>& v, std::size_t need) {
  v.resize(need + 3);
  return reinterpret_cast<double*>(
      (reinterpret_cast<std::uintptr_t>(v.data()) + 31) & ~std::uintptr_t{31});
}

}  // namespace

void schedule_eval_avx2_range(const ScheduleEvaluator& eval,
                              const SampleBlock& block, std::size_t lo,
                              std::size_t hi, ScheduleLaneScratch& scratch,
                              double* out) {
  static_assert(kLaneGroup == 8, "kernel is written for 8-lane groups");
  const std::size_t n = block.num_tasks();
  const std::size_t nr = eval.num_resources();
  const double* comm = eval.platform().comm_row(0);
  const double* exec = eval.exec_costs().data();
  const graph::NodeId* topo = eval.topo_order().data();
  const std::uint32_t* pred_off = eval.pred_offsets().data();
  const graph::NodeId* pred_id = eval.pred_ids().data();
  const double* pred_w = eval.pred_weights().data();

  double* fin = align32(scratch.finish, n * kLaneGroup);
  double* avail = align32(scratch.avail, nr * kLaneGroup);
  const __m256i nr_v = _mm256_set1_epi32(static_cast<int>(nr));
  const __m256i lane_off = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);

  // Aligned groups: a chunk boundary inside a group evaluates the whole
  // group (the neighbor chunk recomputes it identically) and writes only
  // its own lanes, so lane values are chunking-independent.
  for (std::size_t g = lo / kLaneGroup * kLaneGroup; g < hi;
       g += kLaneGroup) {
    const __m256d zero = _mm256_setzero_pd();
    for (std::size_t s = 0; s < nr; ++s) {
      _mm256_store_pd(avail + s * kLaneGroup, zero);
      _mm256_store_pd(avail + s * kLaneGroup + 4, zero);
    }
    __m256d mk0 = zero;
    __m256d mk1 = zero;

    for (std::size_t i = 0; i < n; ++i) {
      const graph::NodeId t = topo[i];
      const graph::NodeId* row = block.task_row(t) + g;
      const __m256i r =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(row));
      const __m256i comm_base = _mm256_mullo_epi32(r, nr_v);

      // ready = max over predecessors of finish[p] + masked comm term.
      __m256d ready0 = zero;
      __m256d ready1 = zero;
      for (std::uint32_t e = pred_off[i]; e < pred_off[i + 1]; ++e) {
        const graph::NodeId p = pred_id[e];
        const graph::NodeId* prow = block.task_row(p) + g;
        const __m256i pr =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(prow));
        const __m256i cidx = _mm256_add_epi32(comm_base, pr);
        const __m256d w = _mm256_set1_pd(pred_w[e]);
        const __m256d c0 =
            _mm256_i32gather_pd(comm, _mm256_castsi256_si128(cidx), 8);
        const __m256d c1 =
            _mm256_i32gather_pd(comm, _mm256_extracti128_si256(cidx, 1), 8);
        // Widen the 32-bit equality masks to 64-bit lane masks; andnot
        // zeroes the comm term where pred and task share a resource.
        const __m256i eq = _mm256_cmpeq_epi32(pr, r);
        const __m256d eq0 = _mm256_castsi256_pd(
            _mm256_cvtepi32_epi64(_mm256_castsi256_si128(eq)));
        const __m256d eq1 = _mm256_castsi256_pd(
            _mm256_cvtepi32_epi64(_mm256_extracti128_si256(eq, 1)));
        // mul then add, never fmadd: contraction would break the
        // bit-identical-to-scalar contract on fractional workloads.
        const __m256d term0 = _mm256_andnot_pd(eq0, _mm256_mul_pd(w, c0));
        const __m256d term1 = _mm256_andnot_pd(eq1, _mm256_mul_pd(w, c1));
        const __m256d pf0 =
            _mm256_load_pd(fin + static_cast<std::size_t>(p) * kLaneGroup);
        const __m256d pf1 =
            _mm256_load_pd(fin + static_cast<std::size_t>(p) * kLaneGroup + 4);
        ready0 = _mm256_max_pd(ready0, _mm256_add_pd(pf0, term0));
        ready1 = _mm256_max_pd(ready1, _mm256_add_pd(pf1, term1));
      }

      // start = max(avail[r], ready); finish = start + exec[t][r].
      const double* exec_t = exec + static_cast<std::size_t>(t) * nr;
      const __m256d e0 =
          _mm256_i32gather_pd(exec_t, _mm256_castsi256_si128(r), 8);
      const __m256d e1 =
          _mm256_i32gather_pd(exec_t, _mm256_extracti128_si256(r, 1), 8);
      const __m256i av_idx =
          _mm256_add_epi32(_mm256_slli_epi32(r, 3), lane_off);
      const __m256d av0 =
          _mm256_i32gather_pd(avail, _mm256_castsi256_si128(av_idx), 8);
      const __m256d av1 =
          _mm256_i32gather_pd(avail, _mm256_extracti128_si256(av_idx, 1), 8);
      const __m256d f0 = _mm256_add_pd(_mm256_max_pd(av0, ready0), e0);
      const __m256d f1 = _mm256_add_pd(_mm256_max_pd(av1, ready1), e1);
      _mm256_store_pd(fin + static_cast<std::size_t>(t) * kLaneGroup, f0);
      _mm256_store_pd(fin + static_cast<std::size_t>(t) * kLaneGroup + 4, f1);

      // Scatter the new avail times back (no AVX2 scatter — extract).
      alignas(32) double fs[kLaneGroup];
      alignas(32) std::uint32_t rs[kLaneGroup];
      _mm256_store_pd(fs, f0);
      _mm256_store_pd(fs + 4, f1);
      _mm256_store_si256(reinterpret_cast<__m256i*>(rs), r);
      for (std::size_t l = 0; l < kLaneGroup; ++l) {
        avail[rs[l] * kLaneGroup + l] = fs[l];
      }
      mk0 = _mm256_max_pd(mk0, f0);
      mk1 = _mm256_max_pd(mk1, f1);
    }

    alignas(32) double mk[kLaneGroup];
    _mm256_store_pd(mk, mk0);
    _mm256_store_pd(mk + 4, mk1);
    for (std::size_t l = 0; l < kLaneGroup; ++l) {
      const std::size_t i = g + l;
      if (i >= lo && i < hi) out[i] = mk[l];
    }
  }
}

#else  // !MATCH_AVX2_KERNEL

void schedule_eval_avx2_range(const ScheduleEvaluator&, const SampleBlock&,
                              std::size_t, std::size_t, ScheduleLaneScratch&,
                              double*) {
  // Unreachable: resolve_eval_backend never selects kAvx2 when the
  // kernel is not compiled in.
}

#endif  // MATCH_AVX2_KERNEL

}  // namespace match::sim::detail
