// AArch64 NEON lane-parallel schedule kernel (assignment mode).  Same
// contract and topo-walk structure as the AVX2 kernel (aligned groups of
// kLaneGroup samples, one pass over the canonical topological order,
// lane-transposed finish/avail scratch), but built from 2-wide
// float64x2 vectors — four per group — with scalar gathers for the comm,
// exec, and avail lookups, since NEON has neither gather nor scatter.
// The win over the scalar per-lane path is the shared recurrence
// bookkeeping: the assignment row loads once per task for all 8 lanes
// (no per-sample load_sample gather), the comm-vs-same-resource select
// is branchless, and the max/add chains run 2 lanes per instruction.
// Per lane the operation sequence is exactly the scalar kernel's
// (max / mul / add, no fusion, no reassociation), so results are
// bit-identical to the scalar path.  Compiled unconditionally into the
// library; the implementation is gated on __aarch64__ (and
// MATCH_DISABLE_SIMD) with the shared `neon_kernel_compiled()` probe
// reporting which variant this TU holds.

#include "sim/schedule_eval.hpp"

#if defined(__aarch64__) && !defined(MATCH_DISABLE_SIMD)
#define MATCH_NEON_KERNEL 1
#include <arm_neon.h>
#endif

#include <cstdint>

namespace match::sim::detail {

#if defined(MATCH_NEON_KERNEL)

void schedule_eval_neon_range(const ScheduleEvaluator& eval,
                              const SampleBlock& block, std::size_t lo,
                              std::size_t hi, ScheduleLaneScratch& scratch,
                              double* out) {
  static_assert(kLaneGroup == 8, "kernel is written for 8-lane groups");
  const std::size_t n = block.num_tasks();
  const std::size_t nr = eval.num_resources();
  const double* comm = eval.platform().comm_row(0);
  const double* exec = eval.exec_costs().data();
  const graph::NodeId* topo = eval.topo_order().data();
  const std::uint32_t* pred_off = eval.pred_offsets().data();
  const graph::NodeId* pred_id = eval.pred_ids().data();
  const double* pred_w = eval.pred_weights().data();

  scratch.finish.resize(n * kLaneGroup);
  scratch.avail.resize(nr * kLaneGroup);
  double* fin = scratch.finish.data();
  double* avail = scratch.avail.data();

  for (std::size_t g = lo / kLaneGroup * kLaneGroup; g < hi;
       g += kLaneGroup) {
    for (std::size_t s = 0; s < nr * kLaneGroup; ++s) avail[s] = 0.0;
    float64x2_t mk[4] = {vdupq_n_f64(0.0), vdupq_n_f64(0.0), vdupq_n_f64(0.0),
                         vdupq_n_f64(0.0)};

    for (std::size_t i = 0; i < n; ++i) {
      const graph::NodeId t = topo[i];
      const graph::NodeId* row = block.task_row(t) + g;

      // ready = max over predecessors of finish[p] + masked comm term.
      float64x2_t ready[4] = {vdupq_n_f64(0.0), vdupq_n_f64(0.0),
                              vdupq_n_f64(0.0), vdupq_n_f64(0.0)};
      for (std::uint32_t e = pred_off[i]; e < pred_off[i + 1]; ++e) {
        const graph::NodeId p = pred_id[e];
        const graph::NodeId* prow = block.task_row(p) + g;
        const double w = pred_w[e];
        double term[kLaneGroup];
        for (std::size_t l = 0; l < kLaneGroup; ++l) {
          term[l] =
              prow[l] == row[l] ? 0.0 : w * comm[row[l] * nr + prow[l]];
        }
        const double* pf = fin + static_cast<std::size_t>(p) * kLaneGroup;
        for (std::size_t v = 0; v < 4; ++v) {
          ready[v] = vmaxq_f64(
              ready[v], vaddq_f64(vld1q_f64(pf + 2 * v),
                                  vld1q_f64(term + 2 * v)));
        }
      }

      // start = max(avail[r], ready); finish = start + exec[t][r].
      const double* exec_t = exec + static_cast<std::size_t>(t) * nr;
      double ex[kLaneGroup];
      double av[kLaneGroup];
      for (std::size_t l = 0; l < kLaneGroup; ++l) {
        ex[l] = exec_t[row[l]];
        av[l] = avail[row[l] * kLaneGroup + l];
      }
      double* ft = fin + static_cast<std::size_t>(t) * kLaneGroup;
      for (std::size_t v = 0; v < 4; ++v) {
        const float64x2_t f =
            vaddq_f64(vmaxq_f64(vld1q_f64(av + 2 * v), ready[v]),
                      vld1q_f64(ex + 2 * v));
        vst1q_f64(ft + 2 * v, f);
        mk[v] = vmaxq_f64(mk[v], f);
      }
      for (std::size_t l = 0; l < kLaneGroup; ++l) {
        avail[row[l] * kLaneGroup + l] = ft[l];
      }
    }

    double mks[kLaneGroup];
    for (std::size_t v = 0; v < 4; ++v) vst1q_f64(mks + 2 * v, mk[v]);
    for (std::size_t l = 0; l < kLaneGroup; ++l) {
      const std::size_t i = g + l;
      if (i >= lo && i < hi) out[i] = mks[l];
    }
  }
}

#else  // !MATCH_NEON_KERNEL

void schedule_eval_neon_range(const ScheduleEvaluator&, const SampleBlock&,
                              std::size_t, std::size_t, ScheduleLaneScratch&,
                              double*) {
  // Unreachable: resolve_eval_backend never selects kNeon when the
  // kernel is not compiled in.
}

#endif  // MATCH_NEON_KERNEL

}  // namespace match::sim::detail
