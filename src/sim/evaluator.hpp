#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "parallel/parallel_for.hpp"
#include "sim/mapping.hpp"
#include "sim/platform.hpp"

namespace match::sim {

/// One record per undirected TIG edge (a < b), packed for streaming and
/// sorted by `a`.  Shared by the per-sample makespan kernel and the SoA
/// batch kernels (sim/batch_eval*.cpp), which walk the same stream.
struct UndirectedEdge {
  graph::NodeId a;
  graph::NodeId b;
  double w;
};

/// Per-resource breakdown of a mapping's cost (eq. (1) of the paper).
struct ResourceLoad {
  double compute = 0.0;  ///< Σ_{t on s} W^t · w_s
  double comm = 0.0;     ///< Σ_{t on s} Σ_{a∼t, map(a)=b≠s} C^{t,a} · c_{s,b}

  double total() const noexcept { return compute + comm; }
};

/// Full evaluation of a mapping.
struct EvalResult {
  double makespan = 0.0;          ///< eq. (2): max over resources
  graph::NodeId busiest = 0;      ///< argmax resource
  std::vector<ResourceLoad> loads;  ///< per-resource breakdown
};

/// Evaluates the paper's cost model (eqs. (1)–(2)) for a TIG on a
/// Platform.  Stateless and thread-safe; the batch entry points use the
/// library thread pool.
class CostEvaluator {
 public:
  CostEvaluator(const graph::Tig& tig, const Platform& platform);

  std::size_t num_tasks() const noexcept { return tig_->num_tasks(); }
  std::size_t num_resources() const noexcept {
    return platform_->num_resources();
  }

  /// Application execution time Exec^χ (eq. (2)).
  double makespan(const Mapping& m) const;

  /// Raw assignment-span overload used by the hot samplers (no Mapping
  /// object construction).  Allocates a transient load buffer; hot loops
  /// should prefer the scratch overload below.
  double makespan(std::span<const graph::NodeId> assignment) const;

  /// Zero-allocation overload: `load_scratch` is resized to
  /// `num_resources()` and fully overwritten, so the same vector can be
  /// reused across calls (no heap traffic after the first call).  The
  /// caller owns the buffer; contents on return are the per-resource
  /// total loads of this assignment.
  double makespan(std::span<const graph::NodeId> assignment,
                  std::vector<double>& load_scratch) const;

  /// Full per-resource breakdown.
  EvalResult evaluate(const Mapping& m) const;

  /// Batch evaluation: out[i] = makespan(assignments row i).  Rows are
  /// contiguous blocks of `num_tasks()` entries.  Thin adapter over the
  /// scalar `sim::BatchEvaluator` backend (bit-identical to calling
  /// `makespan` per row); SoA call sites should hold a `BatchEvaluator`
  /// directly, which is also how the SIMD backends are reached.
  void makespans_batch(std::span<const graph::NodeId> rows, std::size_t count,
                       std::span<double> out,
                       const parallel::ForOptions& opts = {}) const;

  const graph::Tig& tig() const noexcept { return *tig_; }
  const Platform& platform() const noexcept { return *platform_; }

  /// True when the comm matrix satisfies c_{s,b} == c_{b,s} for all
  /// pairs (every generator-built platform).  Gates the edge-streaming
  /// kernels — per-sample and batch — which charge both endpoints from
  /// one comm load.
  bool comm_symmetric() const noexcept { return comm_symmetric_; }

  /// The precomputed undirected edge stream (a < b, sorted by a); the
  /// batch kernels in sim/batch_eval*.cpp walk it directly.
  std::span<const UndirectedEdge> undirected_edges() const noexcept {
    return edges_;
  }

 private:
  const graph::Tig* tig_;
  const Platform* platform_;
  std::vector<UndirectedEdge> edges_;
  bool comm_symmetric_ = false;
};

/// Incrementally maintained per-resource loads for local-search moves.
///
/// `apply_move(t, r)` updates all affected resources in O(deg(t)); the
/// exact loads always match a from-scratch `CostEvaluator::evaluate`.
/// Supports general many-to-one assignments, so a permutation swap is two
/// consecutive moves.
class LoadTracker {
 public:
  LoadTracker(const CostEvaluator& eval, const Mapping& initial);

  /// Moves task `t` to resource `r`, updating loads incrementally.
  void apply_move(graph::NodeId t, graph::NodeId r);

  /// Exchanges the resources of two tasks.
  void apply_swap(graph::NodeId t1, graph::NodeId t2);

  /// Cost change that `apply_move(t, r)` would cause (positive = worse),
  /// computed without mutating the tracker.
  double peek_move_delta(graph::NodeId t, graph::NodeId r) const;

  double makespan() const;
  const Mapping& mapping() const noexcept { return mapping_; }
  const std::vector<ResourceLoad>& loads() const noexcept { return loads_; }

 private:
  /// Adds (sign=+1) or removes (sign=-1) task t's contributions, assuming
  /// `mapping_[t]` currently names the resource the contribution targets.
  void accumulate(graph::NodeId t, double sign);

  const CostEvaluator* eval_;
  Mapping mapping_;
  std::vector<ResourceLoad> loads_;
};

}  // namespace match::sim
