// AArch64 NEON batch-evaluation kernel.  Same contract and two-pass
// structure as the AVX2 kernel (aligned groups of kLaneGroup samples,
// run-accumulated endpoint charges, spill-and-replay of per-edge comm
// terms), but built from 2-wide float64x2 vectors — four per group —
// and scalar gathers, since NEON has neither gather nor scatter.  The
// win over the scalar kernel is the same: no per-edge read-modify-write
// on the per-resource loads, one comm-matrix access per edge, and the
// run accumulators carry 8 samples per step instead of one.  Compiled
// unconditionally into the library; the implementation is gated on
// __aarch64__ (and MATCH_DISABLE_SIMD) with `neon_kernel_compiled()`
// reporting which variant this TU holds.

#include "sim/batch_eval.hpp"

#if defined(__aarch64__) && !defined(MATCH_DISABLE_SIMD)
#define MATCH_NEON_KERNEL 1
#include <arm_neon.h>
#endif

namespace match::sim::detail {

bool neon_kernel_compiled() noexcept {
#if defined(MATCH_NEON_KERNEL)
  return true;  // NEON is mandatory on AArch64 — no runtime probe needed.
#else
  return false;
#endif
}

#if defined(MATCH_NEON_KERNEL)

void batch_eval_neon_range(const CostEvaluator& eval,
                           const VectorEdgeTables& tables,
                           const SampleBlock& block, std::size_t lo,
                           std::size_t hi, EvalScratch& scratch, double* out) {
  static_assert(kLaneGroup == 8, "kernel is written for 8-lane groups");
  const std::size_t n = block.num_tasks();
  const std::size_t nr = eval.num_resources();
  const Platform& plat = eval.platform();
  const double* comm = plat.comm_row(0);
  const double* proc = plat.proc_costs();
  const double* node_w = eval.tig().graph().node_weights().data();
  const std::span<const UndirectedEdge> edges = eval.undirected_edges();
  const std::size_t num_edges = edges.size();
  const UndirectedEdge* edge = edges.data();
  const UndirectedEdge* edgeb = tables.by_b.data();
  const std::uint32_t* xpos = tables.xpos.data();

  scratch.lane_load.resize(nr * kLaneGroup);
  scratch.xbuf.resize(num_edges * kLaneGroup);
  double* lb = scratch.lane_load.data();
  double* xb = scratch.xbuf.data();

  for (std::size_t g = lo / kLaneGroup * kLaneGroup; g < hi;
       g += kLaneGroup) {
    for (std::size_t s = 0; s < nr * kLaneGroup; ++s) lb[s] = 0.0;

    // Compute term.
    for (std::size_t t = 0; t < n; ++t) {
      const graph::NodeId* row = block.task_row(t) + g;
      const double w = node_w[t];
      for (std::size_t l = 0; l < kLaneGroup; ++l) {
        lb[row[l] * kLaneGroup + l] += w * proc[row[l]];
      }
    }

    // Comm term, pass A: gather each edge's term once (scalar loads),
    // run-accumulate the a side, spill the term for pass B.
    for (std::size_t e = 0; e < num_edges;) {
      const graph::NodeId a = edge[e].a;
      const graph::NodeId* row_a = block.task_row(a) + g;
      float64x2_t acc[4] = {vdupq_n_f64(0.0), vdupq_n_f64(0.0),
                            vdupq_n_f64(0.0), vdupq_n_f64(0.0)};
      do {
        const graph::NodeId* row_b = block.task_row(edge[e].b) + g;
        const double w = edge[e].w;
        double* x = xb + xpos[e] * kLaneGroup;
        for (std::size_t l = 0; l < kLaneGroup; ++l) {
          x[l] = w * comm[row_a[l] * nr + row_b[l]];
        }
        for (std::size_t v = 0; v < 4; ++v) {
          acc[v] = vaddq_f64(acc[v], vld1q_f64(x + 2 * v));
        }
        ++e;
      } while (e < num_edges && edge[e].a == a);
      double as[kLaneGroup];
      for (std::size_t v = 0; v < 4; ++v) vst1q_f64(as + 2 * v, acc[v]);
      for (std::size_t l = 0; l < kLaneGroup; ++l) {
        lb[row_a[l] * kLaneGroup + l] += as[l];
      }
    }

    // Comm term, pass B: charge the b endpoints by replaying the spilled
    // terms in b-sorted order.
    for (std::size_t e = 0; e < num_edges;) {
      const graph::NodeId b = edgeb[e].b;
      const graph::NodeId* row_b = block.task_row(b) + g;
      float64x2_t acc[4] = {vdupq_n_f64(0.0), vdupq_n_f64(0.0),
                            vdupq_n_f64(0.0), vdupq_n_f64(0.0)};
      do {
        const double* x = xb + e * kLaneGroup;
        for (std::size_t v = 0; v < 4; ++v) {
          acc[v] = vaddq_f64(acc[v], vld1q_f64(x + 2 * v));
        }
        ++e;
      } while (e < num_edges && edgeb[e].b == b);
      double bs[kLaneGroup];
      for (std::size_t v = 0; v < 4; ++v) vst1q_f64(bs + 2 * v, acc[v]);
      for (std::size_t l = 0; l < kLaneGroup; ++l) {
        lb[row_b[l] * kLaneGroup + l] += bs[l];
      }
    }

    // Makespan: vertical max over resources.
    float64x2_t m[4] = {vdupq_n_f64(0.0), vdupq_n_f64(0.0), vdupq_n_f64(0.0),
                        vdupq_n_f64(0.0)};
    for (std::size_t s = 0; s < nr; ++s) {
      const double* ls = lb + s * kLaneGroup;
      for (std::size_t v = 0; v < 4; ++v) {
        m[v] = vmaxq_f64(m[v], vld1q_f64(ls + 2 * v));
      }
    }
    double mk[kLaneGroup];
    for (std::size_t v = 0; v < 4; ++v) vst1q_f64(mk + 2 * v, m[v]);
    for (std::size_t l = 0; l < kLaneGroup; ++l) {
      const std::size_t i = g + l;
      if (i >= lo && i < hi) out[i] = mk[l];
    }
  }
}

#else  // !MATCH_NEON_KERNEL

void batch_eval_neon_range(const CostEvaluator&, const VectorEdgeTables&,
                           const SampleBlock&, std::size_t, std::size_t,
                           EvalScratch&, double*) {
  // Unreachable: resolve_eval_backend never selects kNeon when the
  // kernel is not compiled in.
}

#endif  // MATCH_NEON_KERNEL

}  // namespace match::sim::detail
