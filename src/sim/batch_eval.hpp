#pragma once

// SoA batch evaluation of the paper's cost model (eqs. (1)-(2)) behind
// pluggable backends.
//
// `SampleBlock` holds N sample assignments as one contiguous
// N x num_tasks matrix in *transposed task-major* layout: lane i of task
// t lives at `task_row(t)[i]`.  One TIG edge's comm term is therefore
// evaluated across consecutive samples with unit-stride loads — the
// layout SIMD (and, later, GPU) kernels want.  `BatchEvaluator` owns the
// backend dispatch: `kScalar` is the reference kernel, bit-compatible
// with `CostEvaluator::makespan`; `kAvx2`/`kNeon` are vectorized kernels
// selected by a runtime feature probe (with `kAuto` picking the best
// available).  All backends produce bit-identical results on
// integer-valued workloads (every partial sum is exact); on fractional
// workloads the SIMD kernels reassociate, so agreement is to 1e-9
// relative tolerance (the same contract as the edge-streaming kernel vs
// the per-task reference — see tests/batch_eval_test.cpp).
//
// Determinism: results never depend on thread count or chunk boundaries.
// SIMD kernels process *globally aligned* lane groups of `kLaneGroup`
// samples; a chunk whose boundary falls inside a group evaluates the
// whole group and writes only its own lanes, so every lane's value is a
// function of the block alone.

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/scratch.hpp"
#include "sim/evaluator.hpp"

namespace match::sim {

/// Which batch-evaluation kernel to run.
enum class EvalBackend {
  kAuto,     ///< best compiled-in backend the CPU supports
  kScalar,   ///< reference; bit-compatible with CostEvaluator::makespan
  kAvx2,     ///< x86-64 AVX2+FMA, 8 samples per step (two 4-wide vectors)
  kAvx512,   ///< x86-64 AVX-512F, 8 samples per step (one 8-wide vector)
  kNeon,     ///< AArch64 NEON, 8 samples per step (2-wide vectors)
};

/// Stable names ("auto", "scalar", "avx2", "avx512", "neon") for logs,
/// metrics and bench reports.
const char* to_string(EvalBackend backend);

/// Parses the names printed by `to_string`; throws
/// `std::invalid_argument` on unknown names (CLI / config surface).
EvalBackend parse_eval_backend(const std::string& name);

/// True when `backend` was compiled in *and* the running CPU supports it.
/// `kScalar` and `kAuto` are always available.
bool eval_backend_available(EvalBackend backend);

/// Resolves `kAuto` to the best available backend and any unavailable
/// explicit request to `kScalar` (portable configs degrade, never throw).
/// Never returns `kAuto`.
EvalBackend resolve_eval_backend(EvalBackend requested);

/// SIMD kernels consume samples in aligned groups of this many lanes;
/// `SampleBlock` pads its lane stride so whole groups are always
/// addressable.  Chunked loops may split anywhere — kernels re-align
/// internally — so this constant never leaks into calling code.
inline constexpr std::size_t kLaneGroup = 8;

/// N sample assignments in transposed task-major (structure-of-arrays)
/// layout.  The lane stride is padded to a multiple of `kLaneGroup` and
/// skewed off large power-of-two byte strides, so task rows do not all
/// collide on the same cache set when N is the usual 2n².  Padding lanes
/// are zero-filled (resource 0) at allocation, which keeps whole-group
/// SIMD loads in bounds and gather indices valid.
class SampleBlock {
 public:
  SampleBlock() = default;
  SampleBlock(std::size_t num_tasks, std::size_t count) {
    reset(num_tasks, count);
  }

  /// Sizes the block for `count` samples of `num_tasks` entries each.
  /// A reset to the same geometry keeps the existing storage (no
  /// allocation — the hot loops reset once and reuse every iteration).
  void reset(std::size_t num_tasks, std::size_t count);

  std::size_t num_tasks() const noexcept { return num_tasks_; }
  std::size_t size() const noexcept { return count_; }
  /// Distance in elements between lane i of task t and lane i of t + 1.
  std::size_t lane_stride() const noexcept { return stride_; }

  /// All lanes of task t; lane i of sample i is `task_row(t)[i]`.
  graph::NodeId* task_row(std::size_t t) noexcept {
    return data_.data() + t * stride_;
  }
  const graph::NodeId* task_row(std::size_t t) const noexcept {
    return data_.data() + t * stride_;
  }

  /// Scatters one contiguous assignment row into lane i.
  void store_sample(std::size_t i, std::span<const graph::NodeId> row);

  /// Gathers lane i back into a contiguous assignment row.
  void load_sample(std::size_t i, std::span<graph::NodeId> row) const;

 private:
  std::size_t num_tasks_ = 0;
  std::size_t count_ = 0;
  std::size_t stride_ = 0;
  std::vector<graph::NodeId> data_;
};

namespace detail {

/// Per-worker kernel scratch, pooled by BatchEvaluator.  Buffers are
/// sized on first use and fully overwritten per sample/group, so the
/// steady state is allocation-free and chunk→worker assignment cannot
/// perturb results.
struct EvalScratch {
  std::vector<graph::NodeId> row;  ///< one sample gathered contiguous
  std::vector<double> load;        ///< scalar kernel per-resource loads
  std::vector<double> lane_load;   ///< SIMD loads, nr x kLaneGroup
  std::vector<double> xbuf;        ///< per-edge comm terms, E x kLaneGroup
};

/// Precomputed edge-stream tables the vector kernels run on: the
/// evaluator's undirected edges re-sorted by `b`, each a-sorted edge's
/// slot in the b-sorted stream (`xpos`, the inverse permutation), and
/// the run boundaries of both sort orders (`a_off`/`b_off`, CSR-style:
/// run r spans [off[r], off[r+1]) and shares one endpoint).  Pass A
/// walks the a-sorted stream run by run, gathers each edge's comm term
/// once and spills it through `xpos` directly into its b-sorted slot of
/// `EvalScratch::xbuf`; pass B walks the b-sorted runs and re-reads the
/// terms *sequentially* — charging the b endpoints without a second
/// gather.  The permutation rides on the store side because stores
/// retire without stalling dependents, while permuted replay loads
/// would expose the full miss latency once xbuf outgrows L2.  Counted
/// run loops keep the hot inner loops free of the per-edge run-end
/// compare.
struct VectorEdgeTables {
  std::span<const UndirectedEdge> by_b;
  std::span<const std::uint32_t> xpos;
  std::span<const std::uint32_t> a_off;
  std::span<const std::uint32_t> b_off;
};

}  // namespace detail

/// The one batch-evaluation entry point: every batch call site in the
/// library (the CE fused loop, the GA population, `makespans_batch`)
/// funnels through here.  Construction resolves the backend once —
/// against the feature probe and the evaluator's comm-matrix symmetry
/// (the vector kernels stream undirected edges, so an asymmetric matrix
/// pins the scalar path) — and `backend()` reports the resolved choice
/// for metrics/trace (`solver.backend.<name>`).
class BatchEvaluator {
 public:
  explicit BatchEvaluator(const CostEvaluator& eval,
                          EvalBackend backend = EvalBackend::kAuto);

  BatchEvaluator(const BatchEvaluator&) = delete;
  BatchEvaluator& operator=(const BatchEvaluator&) = delete;

  /// The resolved backend (never `kAuto`).
  EvalBackend backend() const noexcept { return backend_; }
  const char* backend_name() const noexcept { return to_string(backend_); }

  /// out[i] = makespan of sample i, for i in [0, block.size()).  Runs on
  /// the thread pool per `opts`; allocation-free once the per-worker
  /// scratch pool has warmed up.  Throws `std::invalid_argument` on a
  /// task-count mismatch or an undersized `out`.
  void evaluate(const SampleBlock& block, std::span<double> out,
                const parallel::ForOptions& opts = {}) const;

  /// AoS convenience: rows are contiguous `num_tasks()`-entry
  /// assignments.  Always runs the scalar reference kernel (this is the
  /// thin adapter `CostEvaluator::makespans_batch` forwards to); the
  /// SoA `evaluate` above is the SIMD-capable path.
  void evaluate_rows(std::span<const graph::NodeId> rows, std::size_t count,
                     std::span<double> out,
                     const parallel::ForOptions& opts = {}) const;

  const CostEvaluator& evaluator() const noexcept { return *eval_; }

 private:
  const CostEvaluator* eval_;
  EvalBackend backend_;
  /// Backing storage for `tables_` (built only for vector backends): the
  /// edge stream re-sorted by `b` and the stream-position permutation.
  /// The vector kernels charge the two endpoints of an edge in two
  /// separate run-accumulated passes — see detail::VectorEdgeTables —
  /// so nothing scatter-adds per edge.  Symmetry (c_{s,b} == c_{b,s}) is
  /// what lets one gathered comm term serve both endpoint charges; this
  /// is why an asymmetric comm matrix pins the scalar backend.
  std::vector<UndirectedEdge> edges_by_b_;
  std::vector<std::uint32_t> xpos_;
  std::vector<std::uint32_t> a_off_;
  std::vector<std::uint32_t> b_off_;
  detail::VectorEdgeTables tables_;
  mutable parallel::ScratchPool<detail::EvalScratch> scratch_;
};

namespace detail {

// Arch-specific kernels, each in its own translation unit so the AVX2
// one can be compiled with -mavx2 -mfma while the rest of the library
// stays at the baseline ISA.  Contract: evaluate the aligned lane groups
// covering [lo, hi) and write out[i] for i in [lo, hi) only, using the
// two-pass edge tables in `tables` and the pooled scratch.

bool avx2_kernel_compiled() noexcept;
bool avx2_cpu_supported() noexcept;
void batch_eval_avx2_range(const CostEvaluator& eval,
                           const VectorEdgeTables& tables,
                           const SampleBlock& block, std::size_t lo,
                           std::size_t hi, EvalScratch& scratch, double* out);

bool avx512_kernel_compiled() noexcept;
bool avx512_cpu_supported() noexcept;
void batch_eval_avx512_range(const CostEvaluator& eval,
                             const VectorEdgeTables& tables,
                             const SampleBlock& block, std::size_t lo,
                             std::size_t hi, EvalScratch& scratch,
                             double* out);

bool neon_kernel_compiled() noexcept;
void batch_eval_neon_range(const CostEvaluator& eval,
                           const VectorEdgeTables& tables,
                           const SampleBlock& block, std::size_t lo,
                           std::size_t hi, EvalScratch& scratch, double* out);

}  // namespace detail

}  // namespace match::sim
