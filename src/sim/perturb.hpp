#pragma once

// Platform perturbations for dynamic re-mapping scenarios: build a new
// resource graph from an existing one with one resource slowed down or
// its links degraded.  Graphs are immutable, so perturbations construct
// fresh graphs; pair with core/rematch.hpp.

#include "graph/graph.hpp"

namespace match::sim {

/// Returns a copy of `rg` with resource `node`'s processing cost
/// multiplied by `factor` (> 1 = slower).
graph::ResourceGraph scale_processing_cost(const graph::ResourceGraph& rg,
                                           graph::NodeId node, double factor);

/// Returns a copy of `rg` with every link incident to `node` scaled by
/// `factor` (> 1 = more expensive communication).
graph::ResourceGraph scale_link_costs(const graph::ResourceGraph& rg,
                                      graph::NodeId node, double factor);

}  // namespace match::sim
