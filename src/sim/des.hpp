#pragma once

// A small discrete-event simulator of the execution the paper's cost
// model abstracts: tasks compute on their resources, then exchange data
// with remote neighbors over priced links, with a barrier per round.
//
// Its purpose is validation: in `kIndependent` mode (each endpoint is
// charged its side of a transfer whenever it is free, exactly the
// accounting of eq. (1)) the simulated round time provably equals
// Exec^χ, which the test suite asserts.  In `kCoupled` mode a transfer
// occupies sender and receiver simultaneously — a more physical network
// where idle waits appear — and the bench harness measures how well the
// paper's additive model still *ranks* mappings.

#include <cstddef>
#include <vector>

#include "rng/rng.hpp"
#include "sim/evaluator.hpp"
#include "sim/mapping.hpp"

namespace match::sim {

struct DesParams {
  enum class CommModel {
    /// Each endpoint of a transfer is busy for the transfer's duration,
    /// scheduled independently (the paper's additive accounting).
    kIndependent,
    /// A transfer occupies both endpoints at the same time (rendezvous
    /// NICs); endpoints can idle waiting for their peer.
    kCoupled,
  };

  CommModel comm_model = CommModel::kIndependent;

  /// Fraction of communication time hidden under computation, in [0, 1].
  /// 0 = fully serialized (the paper's model); 1 = perfectly overlapped.
  /// Applies to kIndependent mode.
  double comm_overlap = 0.0;

  /// Multiplicative compute-time noise: each task's compute duration is
  /// scaled by U[1 - jitter, 1 + jitter].  Requires an RNG when > 0.
  double compute_jitter = 0.0;

  /// Data-parallel rounds to simulate (a barrier separates rounds).
  std::size_t rounds = 1;

  void validate() const;
};

struct DesResult {
  /// Wall-clock of the whole simulation (all rounds).
  double total_time = 0.0;
  /// Per-resource time spent actually computing or transferring.
  std::vector<double> busy;
  /// Per-resource completion time of the final round.
  std::vector<double> finish;
  /// Σ (finish − busy): cumulative idle time, 0 in kIndependent mode.
  double total_idle = 0.0;
  std::size_t transfers = 0;  ///< cut edges simulated per round
};

/// Simulates `rounds` rounds of the application under `mapping`.
/// `rng` may be null when `compute_jitter` is 0.
DesResult simulate_execution(const CostEvaluator& eval, const Mapping& mapping,
                             const DesParams& params, rng::Rng* rng = nullptr);

}  // namespace match::sim
