#include "sim/des.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <stdexcept>

namespace match::sim {

void DesParams::validate() const {
  if (comm_overlap < 0.0 || comm_overlap > 1.0) {
    throw std::invalid_argument("DesParams: comm_overlap in [0, 1]");
  }
  if (compute_jitter < 0.0 || compute_jitter >= 1.0) {
    throw std::invalid_argument("DesParams: compute_jitter in [0, 1)");
  }
  if (rounds == 0) throw std::invalid_argument("DesParams: rounds >= 1");
}

namespace {

struct Transfer {
  graph::NodeId src;
  graph::NodeId dst;
  double volume;    ///< communication volume C^{t,a}
  double duration;  ///< volume x src-side link rate
};

}  // namespace

DesResult simulate_execution(const CostEvaluator& eval, const Mapping& mapping,
                             const DesParams& params, rng::Rng* rng) {
  params.validate();
  if (params.compute_jitter > 0.0 && rng == nullptr) {
    throw std::invalid_argument("simulate_execution: jitter needs an RNG");
  }
  const std::size_t nr = eval.num_resources();
  const graph::Graph& tg = eval.tig().graph();
  const Platform& plat = eval.platform();
  const auto assignment = mapping.assignment();
  if (assignment.size() != eval.num_tasks()) {
    throw std::invalid_argument("simulate_execution: mapping size mismatch");
  }

  DesResult out;
  out.busy.assign(nr, 0.0);
  out.finish.assign(nr, 0.0);

  // The cut-edge transfer list is round-invariant; build it once.  Each
  // undirected TIG edge with remote endpoints yields one logical
  // exchange; both endpoints pay their own link rate (which coincide for
  // symmetric platforms).
  std::vector<Transfer> transfers;
  for (const graph::Edge& e : tg.edge_list()) {
    const graph::NodeId s = assignment[e.u];
    const graph::NodeId b = assignment[e.v];
    if (s == b) continue;
    transfers.push_back(
        Transfer{s, b, e.weight, e.weight * plat.comm_cost(s, b)});
  }
  out.transfers = transfers.size();

  std::vector<double> free_at(nr, 0.0);
  double clock = 0.0;

  for (std::size_t round = 0; round < params.rounds; ++round) {
    // --- Compute phase: tasks execute sequentially on their resource. ---
    std::vector<double> compute(nr, 0.0);
    for (graph::NodeId t = 0; t < assignment.size(); ++t) {
      double duration =
          tg.node_weight(t) * plat.processing_cost(assignment[t]);
      if (params.compute_jitter > 0.0) {
        duration *= rng->uniform_real(1.0 - params.compute_jitter,
                                      1.0 + params.compute_jitter);
      }
      compute[assignment[t]] += duration;
    }
    for (graph::NodeId r = 0; r < nr; ++r) {
      free_at[r] = clock + compute[r];
      out.busy[r] += compute[r];
    }

    // --- Communication phase. -----------------------------------------
    switch (params.comm_model) {
      case DesParams::CommModel::kIndependent: {
        // Each endpoint appends its (possibly overlapped) share; no
        // cross-resource blocking, so the phase is a per-resource sum —
        // exactly eq. (1)'s accounting.
        const double charge = 1.0 - params.comm_overlap;
        for (const Transfer& tr : transfers) {
          const double fwd = tr.duration * charge;
          // The receiver side pays its own link rate (matters only on
          // asymmetric platforms).
          const double bwd =
              tr.volume * plat.comm_cost(tr.dst, tr.src) * charge;
          free_at[tr.src] += fwd;
          free_at[tr.dst] += bwd;
          out.busy[tr.src] += fwd;
          out.busy[tr.dst] += bwd;
        }
        break;
      }
      case DesParams::CommModel::kCoupled: {
        // Rendezvous transfers: repeatedly start the transfer with the
        // earliest feasible start time max(free src, free dst).  This is
        // greedy list scheduling driven by an event clock.
        std::vector<char> done(transfers.size(), 0);
        for (std::size_t scheduled = 0; scheduled < transfers.size();
             ++scheduled) {
          double best_start = std::numeric_limits<double>::infinity();
          std::size_t best = transfers.size();
          for (std::size_t i = 0; i < transfers.size(); ++i) {
            if (done[i]) continue;
            const double start =
                std::max(free_at[transfers[i].src], free_at[transfers[i].dst]);
            if (start < best_start) {
              best_start = start;
              best = i;
            }
          }
          const Transfer& tr = transfers[best];
          done[best] = 1;
          const double end = best_start + tr.duration;
          out.busy[tr.src] += tr.duration;
          out.busy[tr.dst] += tr.duration;
          free_at[tr.src] = end;
          free_at[tr.dst] = end;
        }
        break;
      }
    }

    // --- Barrier: the round ends when the slowest resource finishes. ---
    double round_end = clock;
    for (graph::NodeId r = 0; r < nr; ++r) {
      round_end = std::max(round_end, free_at[r]);
    }
    for (graph::NodeId r = 0; r < nr; ++r) {
      out.finish[r] = free_at[r];
      free_at[r] = round_end;
    }
    clock = round_end;
  }

  out.total_time = clock;
  for (graph::NodeId r = 0; r < nr; ++r) {
    out.total_idle += clock - out.busy[r];
  }
  return out;
}

}  // namespace match::sim
