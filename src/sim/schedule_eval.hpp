#pragma once

// Schedule-aware cost model for precedence DAGs.
//
// The TIG `CostEvaluator` charges each resource its total load and takes
// the busiest one — precedence-free, so any assignment is "executable".
// A DAG workload is different: a task cannot start before every
// predecessor has finished *and* its output data has arrived, so the
// makespan is the largest task *finish time* of an actual schedule, not a
// load maximum.  `ScheduleEvaluator` provides that model in two modes:
//
//  * assignment mode (`makespan`): the CE/GA samplers hand a task →
//    resource assignment; tasks execute in the canonical topological
//    order, each starting at max(resource free, data ready).  This is the
//    deterministic "given this placement, how long does it run" cost the
//    existing samplers can optimize directly.
//
//  * priority mode (`schedule_priorities`): HEFT-class list scheduling —
//    the caller hands a *priority permutation*; tasks are popped from the
//    ready set in priority order, and each picks the resource that
//    finishes it earliest (insertion-based EFT, i.e. idle gaps between
//    already-placed tasks are usable).  This is the mode CE optimizes
//    over when the sample space is priority orders (core/dag_ce.hpp).
//
// Both modes follow the caller-scratch discipline of `CostEvaluator`:
// `Scratch` buffers are sized on first use and fully overwritten, so the
// steady state allocates nothing.  The `SampleBlock` batch entry points
// mirror `BatchEvaluator`: assignment mode dispatches to lane-parallel
// SIMD kernels (AVX2 / AVX-512 / NEON, resolved once at construction) —
// the schedule recurrence is sequential over *tasks* but embarrassingly
// parallel over *lanes*, so the kernels walk the topological order once
// and advance `kLaneGroup` samples per step.  Priority mode keeps scalar
// lanes (the busy-list gap scan genuinely resists vectorization); both
// modes additionally spread lanes across the thread pool.

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "graph/dag.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/scratch.hpp"
#include "sim/batch_eval.hpp"
#include "sim/platform.hpp"

namespace match::sim {

/// A complete schedule: the assignment plus per-task start/finish times.
/// `makespan` is max(finish) — 0 for an empty DAG.
struct Schedule {
  std::vector<graph::NodeId> assignment;  ///< task → resource
  std::vector<double> start;              ///< per-task start time
  std::vector<double> finish;             ///< per-task finish time
  double makespan = 0.0;
};

namespace detail {

/// Per-worker lane-transposed scratch for the SIMD schedule kernels:
/// `finish` is task-major (`finish[t * kLaneGroup + l]`), `avail` is
/// resource-major (`avail[r * kLaneGroup + l]`).  Buffers are sized on
/// first use (with alignment headroom) and fully overwritten per lane
/// group, so the steady state is allocation-free.
struct ScheduleLaneScratch {
  std::vector<double> finish;  ///< num_tasks × kLaneGroup (+ align pad)
  std::vector<double> avail;   ///< num_resources × kLaneGroup (+ align pad)
};

}  // namespace detail

class ScheduleEvaluator {
 public:
  /// `backend` selects the assignment-mode batch kernel, resolved once at
  /// construction exactly like `BatchEvaluator`: `kAuto` picks the widest
  /// compiled-in backend the CPU supports, and an unavailable explicit
  /// choice degrades to `kScalar` (portable configs degrade, never
  /// throw).  The scalar entry points (`makespan`, `schedule_priorities`)
  /// and the priority batch path are backend-independent.
  ScheduleEvaluator(const graph::Dag& dag, const Platform& platform,
                    EvalBackend backend = EvalBackend::kAuto);

  std::size_t num_tasks() const noexcept { return dag_->num_nodes(); }
  std::size_t num_resources() const noexcept {
    return platform_->num_resources();
  }

  /// The resolved backend (never `kAuto`) and its stable name, reported
  /// via the `solver.backend.<name>` metric by the DAG solvers.
  EvalBackend backend() const noexcept { return backend_; }
  const char* backend_name() const noexcept { return to_string(backend_); }

  /// Caller-owned scratch: every buffer is (re)sized on first use with
  /// this evaluator's geometry and fully overwritten per call, so one
  /// Scratch reused across calls allocates only until capacities warm up.
  struct Scratch {
    std::vector<double> finish;         ///< per-task finish time
    std::vector<double> start;          ///< per-task start time
    std::vector<double> avail;          ///< per-resource next-free time
    std::vector<std::uint32_t> indegree;  ///< per-task open predecessors
    std::vector<std::uint32_t> heap;    ///< ready min-heap (priority mode)
    std::vector<std::uint32_t> slot;    ///< task → priority slot
    std::vector<graph::NodeId> assign;  ///< task → resource (priority mode)
    /// Priority-mode busy intervals: one flat arena instead of 2·nr
    /// vectors.  Resource r's sorted, non-overlapping (start, finish)
    /// pairs live interleaved at [r·stride, r·stride + 2·busy_len[r]),
    /// terminated by a (+inf, +inf) sentinel pair so the EFT gap scan
    /// needs no length compare; stride = 2·(num_tasks + 1).
    std::vector<double> busy;
    std::vector<std::uint32_t> busy_len;  ///< per-resource interval count
  };

  /// Assignment mode: executes tasks in the canonical topological order
  /// on the given task → resource assignment and returns the makespan.
  /// No insertion — each resource runs its tasks back to back in
  /// topological order, which keeps the cost a pure O(V + E) function of
  /// the assignment (the property the CE samplers need).  Throws
  /// `std::invalid_argument` on a size mismatch or an out-of-range
  /// resource id.
  double makespan(std::span<const graph::NodeId> assignment,
                  Scratch& scratch) const;

  /// Transient-scratch convenience overload.
  double makespan(std::span<const graph::NodeId> assignment) const;

  /// Priority mode: `priority[k]` names the k-th most urgent task (any
  /// permutation of [0, num_tasks) — precedence feasibility is enforced
  /// by the ready set, the permutation only breaks ties among ready
  /// tasks).  Each popped task is placed on the resource with the
  /// earliest *insertion-based* finish time (ties → lower resource id).
  /// Returns the makespan; fills `*out` with the full schedule when
  /// non-null.
  double schedule_priorities(std::span<const graph::NodeId> priority,
                             Scratch& scratch, Schedule* out = nullptr) const;

  /// HEFT upward ranks: rank(t) = mean-exec(t) + max over successors s of
  /// (mean-comm(t→s) + rank(s)), with mean-exec over the exec-cost table
  /// row and mean-comm over distinct resource pairs.  Descending rank is
  /// the HEFT priority (see baselines/heft.hpp).
  std::vector<double> upward_ranks() const;

  /// Batch entry points over `SampleBlock` lanes (same layout the CE
  /// fused loop already produces): out[i] = cost of lane i.
  /// `makespans_batch` dispatches to the resolved SIMD backend (globally
  /// aligned lane groups, so results are chunking- and thread-count-
  /// independent and bit-identical to the scalar kernel — the schedule
  /// recurrence is pure max/mul/add with no reassociation, and the
  /// kernels never fuse the multiply-add).  Resource ids are validated
  /// serially up front (worker tasks must not throw).
  /// `priority_makespans_batch` runs scalar lanes over pooled scratch —
  /// the insertion-EFT gap scan resists vectorization — and parallelizes
  /// across the lane dimension only.
  void makespans_batch(const SampleBlock& block, std::span<double> out,
                       const parallel::ForOptions& opts = {}) const;
  void priority_makespans_batch(const SampleBlock& block,
                                std::span<double> out,
                                const parallel::ForOptions& opts = {}) const;

  const graph::Dag& dag() const noexcept { return *dag_; }
  const Platform& platform() const noexcept { return *platform_; }

  /// The canonical topological order assignment mode executes in.
  std::span<const graph::NodeId> topo_order() const noexcept {
    return topo_order_;
  }

  /// Precomputed task × resource execution costs, row-major:
  /// `exec_costs()[t * num_resources() + r]` = node_weight(t) ·
  /// processing_cost(r).  Built once at construction and shared by the
  /// scalar paths, `upward_ranks`, HEFT, and the SIMD kernels.
  std::span<const double> exec_costs() const noexcept { return exec_; }
  double exec_cost(std::size_t t, std::size_t r) const noexcept {
    return exec_[t * platform_->num_resources() + r];
  }

  /// Predecessor stream flattened in topological order (CSR): the
  /// predecessors of task `topo_order()[i]` occupy
  /// [pred_offsets()[i], pred_offsets()[i+1]) of `pred_ids()` /
  /// `pred_weights()`.  The SIMD kernels walk this single linear stream
  /// instead of chasing the Dag's per-task spans.
  std::span<const std::uint32_t> pred_offsets() const noexcept {
    return pred_off_;
  }
  std::span<const graph::NodeId> pred_ids() const noexcept { return pred_id_; }
  std::span<const double> pred_weights() const noexcept { return pred_w_; }

 private:
  struct BatchScratch {
    Scratch sched;
    std::vector<graph::NodeId> row;
    detail::ScheduleLaneScratch lanes;
  };

  const graph::Dag* dag_;
  const Platform* platform_;
  std::vector<graph::NodeId> topo_order_;
  EvalBackend backend_;
  std::vector<double> exec_;             ///< num_tasks × num_resources
  std::vector<std::uint32_t> pred_off_;  ///< CSR offsets, topo-indexed
  std::vector<graph::NodeId> pred_id_;
  std::vector<double> pred_w_;
  mutable parallel::ScratchPool<BatchScratch> pool_;
};

namespace detail {

// Arch-specific assignment-mode schedule kernels, mirroring the batch-
// evaluation kernels (sim/batch_eval.hpp): each lives in its own
// translation unit compiled with the wider ISA, and each evaluates the
// aligned lane groups covering [lo, hi) but writes out[i] only for i in
// [lo, hi).  The feature probes are shared with the batch kernels — the
// compile gating (`__x86_64__`/`__aarch64__` × MATCH_DISABLE_SIMD) is
// identical, so `resolve_eval_backend` answers for both kernel families.

void schedule_eval_avx2_range(const ScheduleEvaluator& eval,
                              const SampleBlock& block, std::size_t lo,
                              std::size_t hi, ScheduleLaneScratch& scratch,
                              double* out);

void schedule_eval_avx512_range(const ScheduleEvaluator& eval,
                                const SampleBlock& block, std::size_t lo,
                                std::size_t hi, ScheduleLaneScratch& scratch,
                                double* out);

void schedule_eval_neon_range(const ScheduleEvaluator& eval,
                              const SampleBlock& block, std::size_t lo,
                              std::size_t hi, ScheduleLaneScratch& scratch,
                              double* out);

}  // namespace detail

/// Checks a schedule against the DAG's precedence constraints and the
/// platform's exclusivity constraint: every task starts no earlier than
/// each predecessor's finish plus the data-transfer delay, runs for
/// exactly its execution time, and no two tasks overlap on one resource.
/// On failure returns false and, when `why` is non-null, describes the
/// first violation found.
bool schedule_feasible(const graph::Dag& dag, const Platform& platform,
                       const Schedule& schedule, std::string* why = nullptr);

}  // namespace match::sim
