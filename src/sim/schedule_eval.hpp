#pragma once

// Schedule-aware cost model for precedence DAGs.
//
// The TIG `CostEvaluator` charges each resource its total load and takes
// the busiest one — precedence-free, so any assignment is "executable".
// A DAG workload is different: a task cannot start before every
// predecessor has finished *and* its output data has arrived, so the
// makespan is the largest task *finish time* of an actual schedule, not a
// load maximum.  `ScheduleEvaluator` provides that model in two modes:
//
//  * assignment mode (`makespan`): the CE/GA samplers hand a task →
//    resource assignment; tasks execute in the canonical topological
//    order, each starting at max(resource free, data ready).  This is the
//    deterministic "given this placement, how long does it run" cost the
//    existing samplers can optimize directly.
//
//  * priority mode (`schedule_priorities`): HEFT-class list scheduling —
//    the caller hands a *priority permutation*; tasks are popped from the
//    ready set in priority order, and each picks the resource that
//    finishes it earliest (insertion-based EFT, i.e. idle gaps between
//    already-placed tasks are usable).  This is the mode CE optimizes
//    over when the sample space is priority orders (core/dag_ce.hpp).
//
// Both modes follow the caller-scratch discipline of `CostEvaluator`:
// `Scratch` buffers are sized on first use and fully overwritten, so the
// steady state allocates nothing, and `SampleBlock` batch entry points
// mirror `BatchEvaluator` (scalar per-lane kernel over pooled scratch).

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "graph/dag.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/scratch.hpp"
#include "sim/batch_eval.hpp"
#include "sim/platform.hpp"

namespace match::sim {

/// A complete schedule: the assignment plus per-task start/finish times.
/// `makespan` is max(finish) — 0 for an empty DAG.
struct Schedule {
  std::vector<graph::NodeId> assignment;  ///< task → resource
  std::vector<double> start;              ///< per-task start time
  std::vector<double> finish;             ///< per-task finish time
  double makespan = 0.0;
};

class ScheduleEvaluator {
 public:
  ScheduleEvaluator(const graph::Dag& dag, const Platform& platform);

  std::size_t num_tasks() const noexcept { return dag_->num_nodes(); }
  std::size_t num_resources() const noexcept {
    return platform_->num_resources();
  }

  /// Caller-owned scratch: every buffer is (re)sized on first use with
  /// this evaluator's geometry and fully overwritten per call, so one
  /// Scratch reused across calls allocates only until capacities warm up
  /// (the per-resource busy lists keep their capacity across `clear()`).
  struct Scratch {
    std::vector<double> finish;         ///< per-task finish time
    std::vector<double> start;          ///< per-task start time
    std::vector<double> avail;          ///< per-resource next-free time
    std::vector<std::uint32_t> indegree;  ///< per-task open predecessors
    std::vector<std::uint32_t> heap;    ///< ready min-heap (priority mode)
    std::vector<std::uint32_t> slot;    ///< task → priority slot
    std::vector<graph::NodeId> assign;  ///< task → resource (priority mode)
    std::vector<std::vector<double>> busy_start;  ///< per-resource, sorted
    std::vector<std::vector<double>> busy_end;
  };

  /// Assignment mode: executes tasks in the canonical topological order
  /// on the given task → resource assignment and returns the makespan.
  /// No insertion — each resource runs its tasks back to back in
  /// topological order, which keeps the cost a pure O(V + E) function of
  /// the assignment (the property the CE samplers need).
  double makespan(std::span<const graph::NodeId> assignment,
                  Scratch& scratch) const;

  /// Transient-scratch convenience overload.
  double makespan(std::span<const graph::NodeId> assignment) const;

  /// Priority mode: `priority[k]` names the k-th most urgent task (any
  /// permutation of [0, num_tasks) — precedence feasibility is enforced
  /// by the ready set, the permutation only breaks ties among ready
  /// tasks).  Each popped task is placed on the resource with the
  /// earliest *insertion-based* finish time (ties → lower resource id).
  /// Returns the makespan; fills `*out` with the full schedule when
  /// non-null.
  double schedule_priorities(std::span<const graph::NodeId> priority,
                             Scratch& scratch, Schedule* out = nullptr) const;

  /// HEFT upward ranks: rank(t) = mean-exec(t) + max over successors s of
  /// (mean-comm(t→s) + rank(s)), with mean-exec over resources and
  /// mean-comm over distinct resource pairs.  Descending rank is the HEFT
  /// priority (see baselines/heft.hpp).
  std::vector<double> upward_ranks() const;

  /// Batch entry points over `SampleBlock` lanes (same layout the CE
  /// fused loop already produces): out[i] = cost of lane i.  Scalar
  /// per-lane kernels over pooled scratch — schedule recurrences are
  /// sequential per sample, so parallelism comes from the lane dimension
  /// via the thread pool, not SIMD.
  void makespans_batch(const SampleBlock& block, std::span<double> out,
                       const parallel::ForOptions& opts = {}) const;
  void priority_makespans_batch(const SampleBlock& block,
                                std::span<double> out,
                                const parallel::ForOptions& opts = {}) const;

  const graph::Dag& dag() const noexcept { return *dag_; }
  const Platform& platform() const noexcept { return *platform_; }

  /// The canonical topological order assignment mode executes in.
  std::span<const graph::NodeId> topo_order() const noexcept {
    return topo_order_;
  }

 private:
  struct BatchScratch {
    Scratch sched;
    std::vector<graph::NodeId> row;
  };

  const graph::Dag* dag_;
  const Platform* platform_;
  std::vector<graph::NodeId> topo_order_;
  mutable parallel::ScratchPool<BatchScratch> pool_;
};

/// Checks a schedule against the DAG's precedence constraints and the
/// platform's exclusivity constraint: every task starts no earlier than
/// each predecessor's finish plus the data-transfer delay, runs for
/// exactly its execution time, and no two tasks overlap on one resource.
/// On failure returns false and, when `why` is non-null, describes the
/// first violation found.
bool schedule_feasible(const graph::Dag& dag, const Platform& platform,
                       const Schedule& schedule, std::string* why = nullptr);

}  // namespace match::sim
