// AVX-512F batch-evaluation kernel.  Identical two-pass spill-and-replay
// structure to the AVX2 kernel (see batch_eval_avx2.cpp for the why),
// but one 8-wide zmm vector covers a whole lane group, so each edge
// takes a single vgatherdpd and roughly half the instruction count.
// Gather-dominated and FP-light, so 512-bit license downclocking is a
// non-issue in practice.  This TU is the only one compiled with
// -mavx512f (see src/CMakeLists.txt); runtime dispatch keeps it off
// CPUs without the feature.

#include "sim/batch_eval.hpp"

#if defined(__x86_64__) && !defined(MATCH_DISABLE_SIMD)
#define MATCH_AVX512_KERNEL 1
#include <immintrin.h>
#endif

#include <cstdint>

namespace match::sim::detail {

bool avx512_kernel_compiled() noexcept {
#if defined(MATCH_AVX512_KERNEL)
  return true;
#else
  return false;
#endif
}

bool avx512_cpu_supported() noexcept {
#if defined(MATCH_AVX512_KERNEL)
  return __builtin_cpu_supports("avx512f");
#else
  return false;
#endif
}

#if defined(MATCH_AVX512_KERNEL)

namespace {

/// Rounds a buffer base up to 64 bytes for aligned zmm rows.  Callers
/// over-allocate by 7 doubles.
inline double* align64(std::vector<double>& v, std::size_t need) {
  v.resize(need + 7);
  return reinterpret_cast<double*>(
      (reinterpret_cast<std::uintptr_t>(v.data()) + 63) & ~std::uintptr_t{63});
}

/// lb[s * kLaneGroup + l] += x[l] for all 8 lanes (idx holds the 8 s
/// values).  Run-end cost only — never on the per-edge path.
inline void scatter_add8(double* lb, __m256i idx, __m512d x) {
  alignas(64) double xs[kLaneGroup];
  alignas(32) std::uint32_t is[kLaneGroup];
  _mm512_store_pd(xs, x);
  _mm256_store_si256(reinterpret_cast<__m256i*>(is), idx);
  for (std::size_t l = 0; l < kLaneGroup; ++l) {
    lb[is[l] * kLaneGroup + l] += xs[l];
  }
}

}  // namespace

void batch_eval_avx512_range(const CostEvaluator& eval,
                             const VectorEdgeTables& tables,
                             const SampleBlock& block, std::size_t lo,
                             std::size_t hi, EvalScratch& scratch,
                             double* out) {
  static_assert(kLaneGroup == 8, "kernel is written for 8-lane groups");
  const std::size_t n = block.num_tasks();
  const std::size_t nr = eval.num_resources();
  const Platform& plat = eval.platform();
  const double* comm = plat.comm_row(0);
  const double* proc = plat.proc_costs();
  const double* node_w = eval.tig().graph().node_weights().data();
  const std::size_t num_edges = eval.undirected_edges().size();
  const UndirectedEdge* edge = eval.undirected_edges().data();
  const UndirectedEdge* edgeb = tables.by_b.data();
  const std::uint32_t* xpos = tables.xpos.data();

  double* lb = align64(scratch.lane_load, nr * kLaneGroup);
  double* xb = align64(scratch.xbuf, num_edges * kLaneGroup);
  const __m256i nr_v = _mm256_set1_epi32(static_cast<int>(nr));

  // Aligned groups: a chunk boundary inside a group evaluates the whole
  // group (the neighbor chunk recomputes it identically) and writes only
  // its own lanes, so lane values are chunking-independent.
  for (std::size_t g = lo / kLaneGroup * kLaneGroup; g < hi;
       g += kLaneGroup) {
    const __m512d zero = _mm512_setzero_pd();
    for (std::size_t s = 0; s < nr; ++s) {
      _mm512_store_pd(lb + s * kLaneGroup, zero);
    }

    // Compute term: load[s_t] += W_t * w_{s_t} per task, 8 lanes a step.
    for (std::size_t t = 0; t < n; ++t) {
      const __m256i s = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(block.task_row(t) + g));
      const __m512d w = _mm512_set1_pd(node_w[t]);
      scatter_add8(lb, s, _mm512_mul_pd(w, _mm512_i32gather_pd(s, proc, 8)));
    }

    // Comm term, pass A: gather each edge's term once, run-accumulate
    // the a side, spill the term for pass B.
    for (std::size_t r = 0; r + 1 < tables.a_off.size(); ++r) {
      const std::size_t e0 = tables.a_off[r];
      const std::size_t e1 = tables.a_off[r + 1];
      const __m256i sa = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(block.task_row(edge[e0].a) + g));
      const __m256i base = _mm256_mullo_epi32(sa, nr_v);
      __m512d acc = _mm512_setzero_pd();
      for (std::size_t e = e0; e < e1; ++e) {
        const __m256i idx = _mm256_add_epi32(
            base, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(
                      block.task_row(edge[e].b) + g)));
        const __m512d x = _mm512_mul_pd(_mm512_set1_pd(edge[e].w),
                                        _mm512_i32gather_pd(idx, comm, 8));
        acc = _mm512_add_pd(acc, x);
        _mm512_store_pd(xb + xpos[e] * kLaneGroup, x);
      }
      scatter_add8(lb, sa, acc);
    }

    // Comm term, pass B: charge the b endpoints by replaying the spilled
    // terms in b-sorted order.  The loads stream sequentially (the
    // hardware prefetcher hides them), so the bottleneck is the add
    // dependency chain — four independent accumulators cut its latency
    // 4x.  The reassociation is deterministic (fixed unroll for a given
    // run length) and exact on integer workloads, where every partial
    // sum is integral and representable.
    for (std::size_t r = 0; r + 1 < tables.b_off.size(); ++r) {
      const std::size_t e0 = tables.b_off[r];
      const std::size_t e1 = tables.b_off[r + 1];
      const __m256i sb = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(block.task_row(edgeb[e0].b) + g));
      __m512d acc0 = _mm512_setzero_pd();
      __m512d acc1 = _mm512_setzero_pd();
      __m512d acc2 = _mm512_setzero_pd();
      __m512d acc3 = _mm512_setzero_pd();
      std::size_t e = e0;
      for (; e + 4 <= e1; e += 4) {
        acc0 = _mm512_add_pd(acc0, _mm512_load_pd(xb + e * kLaneGroup));
        acc1 = _mm512_add_pd(acc1, _mm512_load_pd(xb + (e + 1) * kLaneGroup));
        acc2 = _mm512_add_pd(acc2, _mm512_load_pd(xb + (e + 2) * kLaneGroup));
        acc3 = _mm512_add_pd(acc3, _mm512_load_pd(xb + (e + 3) * kLaneGroup));
      }
      for (; e < e1; ++e) {
        acc0 = _mm512_add_pd(acc0, _mm512_load_pd(xb + e * kLaneGroup));
      }
      const __m512d acc = _mm512_add_pd(_mm512_add_pd(acc0, acc1),
                                        _mm512_add_pd(acc2, acc3));
      scatter_add8(lb, sb, acc);
    }

    // Makespan: vertical max over resources, then per-lane store.
    __m512d m = _mm512_setzero_pd();
    for (std::size_t s = 0; s < nr; ++s) {
      m = _mm512_max_pd(m, _mm512_load_pd(lb + s * kLaneGroup));
    }
    alignas(64) double mk[kLaneGroup];
    _mm512_store_pd(mk, m);
    for (std::size_t l = 0; l < kLaneGroup; ++l) {
      const std::size_t i = g + l;
      if (i >= lo && i < hi) out[i] = mk[l];
    }
  }
}

#else  // !MATCH_AVX512_KERNEL

void batch_eval_avx512_range(const CostEvaluator&, const VectorEdgeTables&,
                             const SampleBlock&, std::size_t, std::size_t,
                             EvalScratch&, double*) {
  // Unreachable: resolve_eval_backend never selects kAvx512 when the
  // kernel is not compiled in.
}

#endif  // MATCH_AVX512_KERNEL

}  // namespace match::sim::detail
