// AVX-512F lane-parallel schedule kernel (assignment mode).  Identical
// lane-recurrence structure to the AVX2 kernel (see
// schedule_eval_avx2.cpp for the why), but one 8-wide zmm vector covers
// a whole lane group, the resource-equality mask is a real predicate
// (the 32-bit ids widen to epi64 for the compare — this TU compiles with
// -mavx512f only, so no AVX512VL 256-bit mask ops), the masked comm add
// is a single `_mm512_mask_add_pd`, and the per-resource avail
// write-back uses the native `_mm512_i32scatter_pd` instead of the AVX2
// extract loop.  Like the AVX2 kernel it never fuses multiply-adds, so
// results stay bit-identical to the scalar path.

#include "sim/schedule_eval.hpp"

#if defined(__x86_64__) && !defined(MATCH_DISABLE_SIMD)
#define MATCH_AVX512_KERNEL 1
#include <immintrin.h>
#endif

#include <cstdint>

namespace match::sim::detail {

#if defined(MATCH_AVX512_KERNEL)

namespace {

/// Rounds a buffer base up to 64 bytes for aligned zmm rows.  Callers
/// over-allocate by 7 doubles.
inline double* align64(std::vector<double>& v, std::size_t need) {
  v.resize(need + 7);
  return reinterpret_cast<double*>(
      (reinterpret_cast<std::uintptr_t>(v.data()) + 63) & ~std::uintptr_t{63});
}

}  // namespace

void schedule_eval_avx512_range(const ScheduleEvaluator& eval,
                                const SampleBlock& block, std::size_t lo,
                                std::size_t hi, ScheduleLaneScratch& scratch,
                                double* out) {
  static_assert(kLaneGroup == 8, "kernel is written for 8-lane groups");
  const std::size_t n = block.num_tasks();
  const std::size_t nr = eval.num_resources();
  const double* comm = eval.platform().comm_row(0);
  const double* exec = eval.exec_costs().data();
  const graph::NodeId* topo = eval.topo_order().data();
  const std::uint32_t* pred_off = eval.pred_offsets().data();
  const graph::NodeId* pred_id = eval.pred_ids().data();
  const double* pred_w = eval.pred_weights().data();

  double* fin = align64(scratch.finish, n * kLaneGroup);
  double* avail = align64(scratch.avail, nr * kLaneGroup);
  const __m256i nr_v = _mm256_set1_epi32(static_cast<int>(nr));
  const __m256i lane_off = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);

  // Aligned groups: a chunk boundary inside a group evaluates the whole
  // group (the neighbor chunk recomputes it identically) and writes only
  // its own lanes, so lane values are chunking-independent.
  for (std::size_t g = lo / kLaneGroup * kLaneGroup; g < hi;
       g += kLaneGroup) {
    const __m512d zero = _mm512_setzero_pd();
    for (std::size_t s = 0; s < nr; ++s) {
      _mm512_store_pd(avail + s * kLaneGroup, zero);
    }
    __m512d mk = zero;

    for (std::size_t i = 0; i < n; ++i) {
      const graph::NodeId t = topo[i];
      const __m256i r = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(block.task_row(t) + g));
      const __m512i r64 = _mm512_cvtepu32_epi64(r);
      const __m256i comm_base = _mm256_mullo_epi32(r, nr_v);

      // ready = max over predecessors of finish[p] + masked comm term.
      __m512d ready = zero;
      for (std::uint32_t e = pred_off[i]; e < pred_off[i + 1]; ++e) {
        const graph::NodeId p = pred_id[e];
        const __m256i pr = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(block.task_row(p) + g));
        const __m256i cidx = _mm256_add_epi32(comm_base, pr);
        const __m512d c = _mm512_i32gather_pd(cidx, comm, 8);
        // mul then masked add, never fmadd: contraction would break the
        // bit-identical-to-scalar contract on fractional workloads.
        const __m512d term = _mm512_mul_pd(_mm512_set1_pd(pred_w[e]), c);
        const __mmask8 neq =
            _mm512_cmpneq_epi64_mask(_mm512_cvtepu32_epi64(pr), r64);
        const __m512d pf =
            _mm512_load_pd(fin + static_cast<std::size_t>(p) * kLaneGroup);
        // arrive = finish + (pred on another resource ? term : 0).
        const __m512d arrive = _mm512_mask_add_pd(pf, neq, pf, term);
        ready = _mm512_max_pd(ready, arrive);
      }

      // start = max(avail[r], ready); finish = start + exec[t][r].
      const double* exec_t = exec + static_cast<std::size_t>(t) * nr;
      const __m512d ex = _mm512_i32gather_pd(r, exec_t, 8);
      const __m256i av_idx =
          _mm256_add_epi32(_mm256_slli_epi32(r, 3), lane_off);
      const __m512d av = _mm512_i32gather_pd(av_idx, avail, 8);
      const __m512d f = _mm512_add_pd(_mm512_max_pd(av, ready), ex);
      _mm512_store_pd(fin + static_cast<std::size_t>(t) * kLaneGroup, f);
      // Native scatter: lanes index distinct slots (r·8 + lane), so no
      // conflict handling is needed.
      _mm512_i32scatter_pd(avail, av_idx, f, 8);
      mk = _mm512_max_pd(mk, f);
    }

    alignas(64) double mks[kLaneGroup];
    _mm512_store_pd(mks, mk);
    for (std::size_t l = 0; l < kLaneGroup; ++l) {
      const std::size_t i = g + l;
      if (i >= lo && i < hi) out[i] = mks[l];
    }
  }
}

#else  // !MATCH_AVX512_KERNEL

void schedule_eval_avx512_range(const ScheduleEvaluator&, const SampleBlock&,
                                std::size_t, std::size_t,
                                ScheduleLaneScratch&, double*) {
  // Unreachable: resolve_eval_backend never selects kAvx512 when the
  // kernel is not compiled in.
}

#endif  // MATCH_AVX512_KERNEL

}  // namespace match::sim::detail
