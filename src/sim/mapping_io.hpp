#pragma once

#include <iosfwd>
#include <string>

#include "sim/mapping.hpp"

namespace match::sim {

/// Plain-text mapping format, one `map <task> <resource>` line per task:
///
/// ```
/// # comments allowed
/// tasks <n>
/// map 0 3
/// map 1 0
/// ...
/// ```
void write_mapping(std::ostream& os, const Mapping& m);
Mapping read_mapping(std::istream& is);

/// File-path conveniences; throw `std::runtime_error` on I/O failure.
void save_mapping(const std::string& path, const Mapping& m);
Mapping load_mapping(const std::string& path);

}  // namespace match::sim
