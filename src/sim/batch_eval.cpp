#include "sim/batch_eval.hpp"

#include <algorithm>
#include <cassert>
#include <memory>
#include <stdexcept>

namespace match::sim {

const char* to_string(EvalBackend backend) {
  switch (backend) {
    case EvalBackend::kAuto:
      return "auto";
    case EvalBackend::kScalar:
      return "scalar";
    case EvalBackend::kAvx2:
      return "avx2";
    case EvalBackend::kAvx512:
      return "avx512";
    case EvalBackend::kNeon:
      return "neon";
  }
  return "unknown";
}

EvalBackend parse_eval_backend(const std::string& name) {
  if (name == "auto") return EvalBackend::kAuto;
  if (name == "scalar") return EvalBackend::kScalar;
  if (name == "avx2") return EvalBackend::kAvx2;
  if (name == "avx512") return EvalBackend::kAvx512;
  if (name == "neon") return EvalBackend::kNeon;
  throw std::invalid_argument("parse_eval_backend: unknown backend '" + name +
                              "' (auto|scalar|avx2|avx512|neon)");
}

bool eval_backend_available(EvalBackend backend) {
  switch (backend) {
    case EvalBackend::kAuto:
    case EvalBackend::kScalar:
      return true;
    case EvalBackend::kAvx2:
      return detail::avx2_kernel_compiled() && detail::avx2_cpu_supported();
    case EvalBackend::kAvx512:
      return detail::avx512_kernel_compiled() &&
             detail::avx512_cpu_supported();
    case EvalBackend::kNeon:
      return detail::neon_kernel_compiled();
  }
  return false;
}

EvalBackend resolve_eval_backend(EvalBackend requested) {
  if (requested == EvalBackend::kAuto) {
    if (eval_backend_available(EvalBackend::kAvx512)) {
      return EvalBackend::kAvx512;
    }
    if (eval_backend_available(EvalBackend::kAvx2)) return EvalBackend::kAvx2;
    if (eval_backend_available(EvalBackend::kNeon)) return EvalBackend::kNeon;
    return EvalBackend::kScalar;
  }
  // An explicitly requested but unavailable backend degrades to the
  // reference kernel, so one config runs everywhere (CI machines without
  // AVX2 included); `backend()` reports the effective choice.
  return eval_backend_available(requested) ? requested : EvalBackend::kScalar;
}

void SampleBlock::reset(std::size_t num_tasks, std::size_t count) {
  if (num_tasks == 0 || count == 0) {
    throw std::invalid_argument("SampleBlock: empty geometry");
  }
  if (num_tasks == num_tasks_ && count == count_) return;
  num_tasks_ = num_tasks;
  count_ = count;
  // Pad to whole lane groups so SIMD kernels can always load a full
  // group, then skew page-multiple strides: at the usual N = 2n² the
  // natural stride is a large power of two and every task row would map
  // to the same cache set, turning both the strided stores and the
  // kernel's cross-row reads into conflict-miss storms.
  stride_ = (count + kLaneGroup - 1) / kLaneGroup * kLaneGroup;
  if (stride_ * sizeof(graph::NodeId) % 4096 == 0) stride_ += 2 * kLaneGroup;
  // Zero-fill: padding lanes hold resource 0 forever (store_sample never
  // touches them), so whole-group gathers stay within the comm matrix.
  data_.assign(num_tasks_ * stride_, 0);
}

void SampleBlock::store_sample(std::size_t i,
                               std::span<const graph::NodeId> row) {
  assert(i < count_ && row.size() == num_tasks_);
  graph::NodeId* base = data_.data() + i;
  for (std::size_t t = 0; t < num_tasks_; ++t) base[t * stride_] = row[t];
}

void SampleBlock::load_sample(std::size_t i,
                              std::span<graph::NodeId> row) const {
  assert(i < count_ && row.size() == num_tasks_);
  const graph::NodeId* base = data_.data() + i;
  for (std::size_t t = 0; t < num_tasks_; ++t) row[t] = base[t * stride_];
}

namespace {

/// Reference path: gather each lane into a contiguous row and run the
/// exact per-sample kernel — bit-compatible with CostEvaluator::makespan
/// by construction.  Consecutive lanes share cache lines in every task
/// row, so the strided gather amortizes across the chunk.
void scalar_range(const CostEvaluator& eval, const SampleBlock& block,
                  std::size_t lo, std::size_t hi, detail::EvalScratch& scratch,
                  double* out) {
  const std::size_t n = block.num_tasks();
  scratch.row.resize(n);
  for (std::size_t i = lo; i < hi; ++i) {
    block.load_sample(i, scratch.row);
    out[i] = eval.makespan(std::span<const graph::NodeId>(scratch.row),
                           scratch.load);
  }
}

}  // namespace

BatchEvaluator::BatchEvaluator(const CostEvaluator& eval, EvalBackend backend)
    : eval_(&eval),
      backend_(resolve_eval_backend(backend)),
      scratch_([] { return std::make_unique<detail::EvalScratch>(); }) {
  // The vector kernels stream the undirected edge list, which charges
  // both endpoints from one comm load and therefore needs a symmetric
  // comm matrix (true for every generator-built platform).  An
  // asymmetric matrix pins the reference kernel.
  if (backend_ != EvalBackend::kScalar && !eval.comm_symmetric()) {
    backend_ = EvalBackend::kScalar;
  }
  if (backend_ != EvalBackend::kScalar) {
    const auto edges = eval.undirected_edges();
    std::vector<std::uint32_t> order(edges.size());
    for (std::uint32_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](std::uint32_t x, std::uint32_t y) {
                return edges[x].b != edges[y].b ? edges[x].b < edges[y].b
                                                : edges[x].a < edges[y].a;
              });
    edges_by_b_.reserve(edges.size());
    for (const std::uint32_t i : order) edges_by_b_.push_back(edges[i]);
    // Inverse permutation: a-stream position -> b-stream position.  Pass
    // A stores each spilled term directly at its b-sorted slot (stores
    // retire without stalling dependents), so pass B's re-reads are
    // purely sequential — the buffer outgrows L2 on big instances and
    // random replay loads would eat the miss latency instead.
    xpos_.resize(order.size());
    for (std::uint32_t i = 0; i < order.size(); ++i) xpos_[order[i]] = i;
    const auto run_offsets = [](std::span<const UndirectedEdge> es,
                                bool key_a) {
      std::vector<std::uint32_t> off;
      for (std::uint32_t i = 0; i < es.size(); ++i) {
        if (i == 0 || (key_a ? es[i].a != es[i - 1].a
                             : es[i].b != es[i - 1].b)) {
          off.push_back(i);
        }
      }
      off.push_back(static_cast<std::uint32_t>(es.size()));
      return off;
    };
    a_off_ = run_offsets(edges, true);
    b_off_ = run_offsets(edges_by_b_, false);
    tables_ = {edges_by_b_, xpos_, a_off_, b_off_};
  }
}

void BatchEvaluator::evaluate(const SampleBlock& block, std::span<double> out,
                              const parallel::ForOptions& opts) const {
  if (block.num_tasks() != eval_->num_tasks()) {
    throw std::invalid_argument("BatchEvaluator::evaluate: task count");
  }
  if (out.size() < block.size()) {
    throw std::invalid_argument("BatchEvaluator::evaluate: out too small");
  }
  const EvalBackend backend = backend_;
  parallel::parallel_for_chunked(
      0, block.size(),
      [&](std::size_t lo, std::size_t hi, std::size_t /*chunk*/) {
        auto lease = scratch_.acquire();
        switch (backend) {
          case EvalBackend::kAvx2:
            detail::batch_eval_avx2_range(*eval_, tables_, block, lo, hi,
                                          *lease, out.data());
            break;
          case EvalBackend::kAvx512:
            detail::batch_eval_avx512_range(*eval_, tables_, block, lo, hi,
                                            *lease, out.data());
            break;
          case EvalBackend::kNeon:
            detail::batch_eval_neon_range(*eval_, tables_, block, lo, hi,
                                          *lease, out.data());
            break;
          default:
            scalar_range(*eval_, block, lo, hi, *lease, out.data());
            break;
        }
      },
      opts);
}

void BatchEvaluator::evaluate_rows(std::span<const graph::NodeId> rows,
                                   std::size_t count, std::span<double> out,
                                   const parallel::ForOptions& opts) const {
  const std::size_t n = eval_->num_tasks();
  if (rows.size() < count * n || out.size() < count) {
    throw std::invalid_argument("BatchEvaluator::evaluate_rows: buffer sizes");
  }
  if (count == 0) return;
  parallel::parallel_for_chunked(
      0, count,
      [&](std::size_t lo, std::size_t hi, std::size_t /*chunk*/) {
        auto lease = scratch_.acquire();
        for (std::size_t i = lo; i < hi; ++i) {
          out[i] = eval_->makespan(rows.subspan(i * n, n), lease->load);
        }
      },
      opts);
}

}  // namespace match::sim
