#include "sim/perturb.hpp"

#include <stdexcept>
#include <vector>

namespace match::sim {

namespace {

void check(const graph::ResourceGraph& rg, graph::NodeId node, double factor) {
  if (node >= rg.num_resources()) {
    throw std::out_of_range("perturb: no such resource");
  }
  if (factor <= 0.0) {
    throw std::invalid_argument("perturb: factor must be > 0");
  }
}

}  // namespace

graph::ResourceGraph scale_processing_cost(const graph::ResourceGraph& rg,
                                           graph::NodeId node, double factor) {
  check(rg, node, factor);
  const graph::Graph& g = rg.graph();
  std::vector<double> node_w(g.node_weights().begin(), g.node_weights().end());
  node_w[node] *= factor;
  return graph::ResourceGraph(
      graph::Graph::from_edges(g.num_nodes(), std::move(node_w), g.edge_list()));
}

graph::ResourceGraph scale_link_costs(const graph::ResourceGraph& rg,
                                      graph::NodeId node, double factor) {
  check(rg, node, factor);
  const graph::Graph& g = rg.graph();
  std::vector<double> node_w(g.node_weights().begin(), g.node_weights().end());
  auto edges = g.edge_list();
  for (auto& e : edges) {
    if (e.u == node || e.v == node) e.weight *= factor;
  }
  return graph::ResourceGraph(
      graph::Graph::from_edges(g.num_nodes(), std::move(node_w), edges));
}

}  // namespace match::sim
