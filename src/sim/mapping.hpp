#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "rng/rng.hpp"

namespace match::sim {

/// An assignment of tasks to resources: `resource_of(t)` is the resource
/// that runs task `t`.
///
/// The paper's setting is the one-to-one case (`|V_t| = |V_r|`, a
/// permutation); the type also represents general many-to-one mappings so
/// the cost model, local-search baselines and future extensions share one
/// representation.
class Mapping {
 public:
  Mapping() = default;

  /// Constructs from an explicit assignment vector (index = task).
  explicit Mapping(std::vector<graph::NodeId> task_to_resource)
      : assign_(std::move(task_to_resource)) {}

  /// Task i -> resource i.
  static Mapping identity(std::size_t n);

  /// A uniformly random permutation mapping.
  static Mapping random_permutation(std::size_t n, rng::Rng& rng);

  std::size_t num_tasks() const noexcept { return assign_.size(); }

  graph::NodeId resource_of(graph::NodeId task) const { return assign_[task]; }

  void set(graph::NodeId task, graph::NodeId resource) {
    assign_[task] = resource;
  }

  std::span<const graph::NodeId> assignment() const noexcept { return assign_; }

  /// True if the assignment is a bijection onto {0, ..., n-1} where n is
  /// the number of tasks (the paper's validity condition, `X ∈ χ`).
  bool is_permutation() const;

  /// True if every assigned resource id is < `num_resources`.
  bool is_valid(std::size_t num_resources) const;

  /// Inverse view for permutation mappings: index = resource, value = task.
  /// Precondition: `is_permutation()`.
  std::vector<graph::NodeId> tasks_by_resource() const;

  friend bool operator==(const Mapping&, const Mapping&) = default;

 private:
  std::vector<graph::NodeId> assign_;
};

}  // namespace match::sim
