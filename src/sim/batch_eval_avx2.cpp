// AVX2+FMA batch-evaluation kernel.  This translation unit is the only
// one compiled with -mavx2 -mfma (see src/CMakeLists.txt); everything
// here stays behind the plain-ABI entry points declared in
// sim/batch_eval.hpp so the rest of the library keeps the baseline ISA.
// MATCH_DISABLE_SIMD (CMake option) compiles the stubs instead, which is
// how CI keeps the scalar fallback honest.
//
// Shape: 8 samples (two 4-wide double vectors) per step.  The comm term
// makes two passes over the edge stream.  Pass A walks it sorted by `a`:
// each edge's contribution x = C·c_{sa,sb} is built once from a
// vgatherdpd on the comm matrix, accumulated into the a-endpoint's
// run total (vector registers, one lane_load touch per run), and
// spilled through the precomputed inverse permutation directly into its
// b-sorted slot of a per-edge buffer.  Pass B walks the same edges
// sorted by `b` and charges the b endpoints by re-reading the spilled
// terms sequentially — plain prefetchable loads, no second gather.
// Two things make this fast where the naive
// translation was not: per-edge scalar read-modify-writes on the lane
// loads are gone entirely (run accumulation amortizes them), and the
// comm matrix is gathered exactly once per edge (symmetry c_{s,b} ==
// c_{b,s} is what lets one term serve both endpoint charges).  Sums
// reassociate relative to a per-sample evaluation; on integer-valued
// workloads they are still exact, hence bit-identical (see
// tests/batch_eval_test.cpp).

#include "sim/batch_eval.hpp"

#if defined(__x86_64__) && !defined(MATCH_DISABLE_SIMD)
#define MATCH_AVX2_KERNEL 1
#include <immintrin.h>
#endif

#include <cstdint>

namespace match::sim::detail {

bool avx2_kernel_compiled() noexcept {
#if defined(MATCH_AVX2_KERNEL)
  return true;
#else
  return false;
#endif
}

bool avx2_cpu_supported() noexcept {
#if defined(MATCH_AVX2_KERNEL)
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

#if defined(MATCH_AVX2_KERNEL)

namespace {

/// Rounds a buffer base up to 32 bytes so the kernel's group-wide rows
/// take aligned vector loads/stores (vector<double> storage only
/// guarantees 16).  Callers over-allocate by 3 doubles.
inline double* align32(std::vector<double>& v, std::size_t need) {
  v.resize(need + 3);
  return reinterpret_cast<double*>(
      (reinterpret_cast<std::uintptr_t>(v.data()) + 31) & ~std::uintptr_t{31});
}

/// lb[s * kLaneGroup + l] += x[l] for the 4 lanes described by (idx, x).
inline void scatter_add4(double* lb, __m128i idx, __m256d x,
                         std::size_t half) {
  alignas(32) double xs[4];
  alignas(16) std::uint32_t is[4];
  _mm256_store_pd(xs, x);
  _mm_store_si128(reinterpret_cast<__m128i*>(is), idx);
  double* base = lb + half * 4;
  base[is[0] * kLaneGroup + 0] += xs[0];
  base[is[1] * kLaneGroup + 1] += xs[1];
  base[is[2] * kLaneGroup + 2] += xs[2];
  base[is[3] * kLaneGroup + 3] += xs[3];
}

}  // namespace

void batch_eval_avx2_range(const CostEvaluator& eval,
                           const VectorEdgeTables& tables,
                           const SampleBlock& block, std::size_t lo,
                           std::size_t hi, EvalScratch& scratch, double* out) {
  static_assert(kLaneGroup == 8, "kernel is written for 8-lane groups");
  const std::size_t n = block.num_tasks();
  const std::size_t nr = eval.num_resources();
  const Platform& plat = eval.platform();
  const double* comm = plat.comm_row(0);
  const double* proc = plat.proc_costs();
  const double* node_w = eval.tig().graph().node_weights().data();
  const std::span<const UndirectedEdge> edges = eval.undirected_edges();
  const std::size_t num_edges = edges.size();
  const UndirectedEdge* edge = edges.data();
  const UndirectedEdge* edgeb = tables.by_b.data();
  const std::uint32_t* xpos = tables.xpos.data();

  double* lb = align32(scratch.lane_load, nr * kLaneGroup);
  double* xb = align32(scratch.xbuf, num_edges * kLaneGroup);
  const __m256i nr_v = _mm256_set1_epi32(static_cast<int>(nr));

  // Aligned groups: a chunk boundary inside a group evaluates the whole
  // group (the neighbor chunk recomputes it identically) and writes only
  // its own lanes, so lane values are chunking-independent.
  for (std::size_t g = lo / kLaneGroup * kLaneGroup; g < hi;
       g += kLaneGroup) {
    const __m256d zero = _mm256_setzero_pd();
    for (std::size_t s = 0; s < nr; ++s) {
      _mm256_store_pd(lb + s * kLaneGroup, zero);
      _mm256_store_pd(lb + s * kLaneGroup + 4, zero);
    }

    // Compute term: load[s_t] += W_t * w_{s_t} per task, 8 lanes a step.
    for (std::size_t t = 0; t < n; ++t) {
      const graph::NodeId* row = block.task_row(t) + g;
      const __m128i s0 =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(row));
      const __m128i s1 =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(row + 4));
      const __m256d w = _mm256_set1_pd(node_w[t]);
      scatter_add4(lb, s0, _mm256_mul_pd(w, _mm256_i32gather_pd(proc, s0, 8)),
                   0);
      scatter_add4(lb, s1, _mm256_mul_pd(w, _mm256_i32gather_pd(proc, s1, 8)),
                   1);
    }

    // Comm term, pass A: gather each edge's term once, run-accumulate
    // the a side, spill the term for pass B.  Counted run loops (CSR
    // offsets) keep the per-edge run-end compare out of the inner loop.
    for (std::size_t r = 0; r + 1 < tables.a_off.size(); ++r) {
      const std::size_t e0 = tables.a_off[r];
      const std::size_t e1 = tables.a_off[r + 1];
      const graph::NodeId* row_a = block.task_row(edge[e0].a) + g;
      const __m256i sa =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(row_a));
      const __m256i base = _mm256_mullo_epi32(sa, nr_v);
      __m256d acc0 = _mm256_setzero_pd();
      __m256d acc1 = _mm256_setzero_pd();
      for (std::size_t e = e0; e < e1; ++e) {
        const graph::NodeId* row_b = block.task_row(edge[e].b) + g;
        const __m256i idx = _mm256_add_epi32(
            base,
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(row_b)));
        const __m256d w = _mm256_set1_pd(edge[e].w);
        const __m256d x0 = _mm256_mul_pd(
            w, _mm256_i32gather_pd(comm, _mm256_castsi256_si128(idx), 8));
        const __m256d x1 = _mm256_mul_pd(
            w, _mm256_i32gather_pd(comm, _mm256_extracti128_si256(idx, 1), 8));
        acc0 = _mm256_add_pd(acc0, x0);
        acc1 = _mm256_add_pd(acc1, x1);
        double* spill = xb + xpos[e] * kLaneGroup;
        _mm256_store_pd(spill, x0);
        _mm256_store_pd(spill + 4, x1);
      }
      scatter_add4(lb, _mm256_castsi256_si128(sa), acc0, 0);
      scatter_add4(lb, _mm256_extracti128_si256(sa, 1), acc1, 1);
    }

    // Comm term, pass B: charge the b endpoints by replaying the spilled
    // terms in b-sorted order.  The loads stream sequentially (the
    // hardware prefetcher hides them), so the bottleneck is the add
    // dependency chain — a two-edge unroll doubles the independent
    // chains per half-group.  The reassociation is deterministic (fixed
    // unroll for a given run length) and exact on integer workloads,
    // where every partial sum is integral and representable.
    for (std::size_t r = 0; r + 1 < tables.b_off.size(); ++r) {
      const std::size_t e0 = tables.b_off[r];
      const std::size_t e1 = tables.b_off[r + 1];
      const graph::NodeId* row_b = block.task_row(edgeb[e0].b) + g;
      const __m256i sb =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(row_b));
      __m256d acc0 = _mm256_setzero_pd();
      __m256d acc1 = _mm256_setzero_pd();
      __m256d acc2 = _mm256_setzero_pd();
      __m256d acc3 = _mm256_setzero_pd();
      std::size_t e = e0;
      for (; e + 2 <= e1; e += 2) {
        const double* x = xb + e * kLaneGroup;
        acc0 = _mm256_add_pd(acc0, _mm256_load_pd(x));
        acc1 = _mm256_add_pd(acc1, _mm256_load_pd(x + 4));
        acc2 = _mm256_add_pd(acc2, _mm256_load_pd(x + 8));
        acc3 = _mm256_add_pd(acc3, _mm256_load_pd(x + 12));
      }
      if (e < e1) {
        const double* x = xb + e * kLaneGroup;
        acc0 = _mm256_add_pd(acc0, _mm256_load_pd(x));
        acc1 = _mm256_add_pd(acc1, _mm256_load_pd(x + 4));
      }
      acc0 = _mm256_add_pd(acc0, acc2);
      acc1 = _mm256_add_pd(acc1, acc3);
      scatter_add4(lb, _mm256_castsi256_si128(sb), acc0, 0);
      scatter_add4(lb, _mm256_extracti128_si256(sb, 1), acc1, 1);
    }

    // Makespan: vertical max over resources, then per-lane store.
    __m256d m0 = _mm256_setzero_pd();
    __m256d m1 = _mm256_setzero_pd();
    for (std::size_t s = 0; s < nr; ++s) {
      m0 = _mm256_max_pd(m0, _mm256_load_pd(lb + s * kLaneGroup));
      m1 = _mm256_max_pd(m1, _mm256_load_pd(lb + s * kLaneGroup + 4));
    }
    alignas(32) double mk[kLaneGroup];
    _mm256_store_pd(mk, m0);
    _mm256_store_pd(mk + 4, m1);
    for (std::size_t l = 0; l < kLaneGroup; ++l) {
      const std::size_t i = g + l;
      if (i >= lo && i < hi) out[i] = mk[l];
    }
  }
}

#else  // !MATCH_AVX2_KERNEL

void batch_eval_avx2_range(const CostEvaluator&, const VectorEdgeTables&,
                           const SampleBlock&, std::size_t, std::size_t,
                           EvalScratch&, double*) {
  // Unreachable: resolve_eval_backend never selects kAvx2 when the
  // kernel is not compiled in.
}

#endif  // MATCH_AVX2_KERNEL

}  // namespace match::sim::detail
