#include "sim/platform.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

#include "graph/algorithms.hpp"

namespace match::sim {

Platform::Platform(graph::ResourceGraph rg, CommCostPolicy policy)
    : rg_(std::move(rg)), policy_(policy) {
  const std::size_t n = rg_.num_resources();
  proc_cost_.resize(n);
  for (graph::NodeId s = 0; s < n; ++s) {
    proc_cost_[s] = rg_.processing_cost(s);
  }

  comm_cost_.assign(n * n, 0.0);
  switch (policy_) {
    case CommCostPolicy::kDirectLinks: {
      for (graph::NodeId s = 0; s < n; ++s) {
        for (graph::NodeId b = 0; b < n; ++b) {
          if (s == b) continue;
          const double c = rg_.link_cost(s, b);
          if (c <= 0.0) {
            throw std::invalid_argument(
                "Platform: kDirectLinks requires a link between every "
                "resource pair (missing " +
                std::to_string(s) + "-" + std::to_string(b) + ")");
          }
          comm_cost_[static_cast<std::size_t>(s) * n + b] = c;
        }
      }
      break;
    }
    case CommCostPolicy::kShortestPath: {
      comm_cost_ = graph::all_pairs_shortest_paths(rg_.graph());
      for (double d : comm_cost_) {
        if (std::isinf(d)) {
          throw std::invalid_argument(
              "Platform: kShortestPath requires a connected resource graph");
        }
      }
      break;
    }
  }
}

}  // namespace match::sim
