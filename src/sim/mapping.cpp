#include "sim/mapping.hpp"

#include <stdexcept>

namespace match::sim {

Mapping Mapping::identity(std::size_t n) {
  std::vector<graph::NodeId> a(n);
  for (std::size_t i = 0; i < n; ++i) a[i] = static_cast<graph::NodeId>(i);
  return Mapping(std::move(a));
}

Mapping Mapping::random_permutation(std::size_t n, rng::Rng& rng) {
  Mapping m = identity(n);
  rng.shuffle(std::span<graph::NodeId>(m.assign_));
  return m;
}

bool Mapping::is_permutation() const {
  std::vector<char> seen(assign_.size(), 0);
  for (graph::NodeId r : assign_) {
    if (r >= assign_.size() || seen[r]) return false;
    seen[r] = 1;
  }
  return true;
}

bool Mapping::is_valid(std::size_t num_resources) const {
  for (graph::NodeId r : assign_) {
    if (r >= num_resources) return false;
  }
  return true;
}

std::vector<graph::NodeId> Mapping::tasks_by_resource() const {
  if (!is_permutation()) {
    throw std::logic_error("Mapping::tasks_by_resource: not a permutation");
  }
  std::vector<graph::NodeId> inv(assign_.size());
  for (std::size_t t = 0; t < assign_.size(); ++t) {
    inv[assign_[t]] = static_cast<graph::NodeId>(t);
  }
  return inv;
}

}  // namespace match::sim
