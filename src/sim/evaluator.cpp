#include "sim/evaluator.hpp"

#include <cassert>
#include <stdexcept>

namespace match::sim {

CostEvaluator::CostEvaluator(const graph::Tig& tig, const Platform& platform)
    : tig_(&tig), platform_(&platform) {
  if (tig.num_tasks() == 0) {
    throw std::invalid_argument("CostEvaluator: empty TIG");
  }
  if (platform.num_resources() == 0) {
    throw std::invalid_argument("CostEvaluator: empty platform");
  }
}

double CostEvaluator::makespan(const Mapping& m) const {
  return makespan(m.assignment());
}

double CostEvaluator::makespan(std::span<const graph::NodeId> assignment) const {
  assert(assignment.size() == tig_->num_tasks());
  const std::size_t nr = platform_->num_resources();
  // Small fixed-size scratch: resource loads.  n is at most a few
  // thousand in any realistic instance, so a stack-friendly vector is fine.
  std::vector<double> load(nr, 0.0);

  const graph::Graph& tg = tig_->graph();
  for (graph::NodeId t = 0; t < assignment.size(); ++t) {
    const graph::NodeId s = assignment[t];
    const double* crow = platform_->comm_row(s);
    double comm = 0.0;
    for (const graph::Neighbor& nb : tg.neighbors(t)) {
      const graph::NodeId b = assignment[nb.id];
      if (b != s) comm += nb.weight * crow[b];
    }
    load[s] += tg.node_weight(t) * platform_->processing_cost(s) + comm;
  }

  double best = 0.0;
  for (double x : load) best = std::max(best, x);
  return best;
}

EvalResult CostEvaluator::evaluate(const Mapping& m) const {
  assert(m.num_tasks() == tig_->num_tasks());
  const std::size_t nr = platform_->num_resources();
  EvalResult out;
  out.loads.assign(nr, ResourceLoad{});

  const graph::Graph& tg = tig_->graph();
  const auto assignment = m.assignment();
  for (graph::NodeId t = 0; t < assignment.size(); ++t) {
    const graph::NodeId s = assignment[t];
    if (s >= nr) throw std::out_of_range("CostEvaluator: bad resource id");
    out.loads[s].compute += tg.node_weight(t) * platform_->processing_cost(s);
    const double* crow = platform_->comm_row(s);
    for (const graph::Neighbor& nb : tg.neighbors(t)) {
      const graph::NodeId b = assignment[nb.id];
      if (b != s) out.loads[s].comm += nb.weight * crow[b];
    }
  }

  for (graph::NodeId s = 0; s < nr; ++s) {
    const double total = out.loads[s].total();
    if (total > out.makespan) {
      out.makespan = total;
      out.busiest = s;
    }
  }
  return out;
}

void CostEvaluator::makespans_batch(std::span<const graph::NodeId> rows,
                                    std::size_t count, std::span<double> out,
                                    const parallel::ForOptions& opts) const {
  const std::size_t n = tig_->num_tasks();
  if (rows.size() < count * n || out.size() < count) {
    throw std::invalid_argument("makespans_batch: buffer sizes");
  }
  parallel::parallel_for(
      0, count,
      [&](std::size_t i) { out[i] = makespan(rows.subspan(i * n, n)); }, opts);
}

LoadTracker::LoadTracker(const CostEvaluator& eval, const Mapping& initial)
    : eval_(&eval), mapping_(initial) {
  const EvalResult r = eval.evaluate(initial);
  loads_ = r.loads;
}

void LoadTracker::accumulate(graph::NodeId t, double sign) {
  const graph::Graph& tg = eval_->tig().graph();
  const Platform& plat = eval_->platform();
  const graph::NodeId s = mapping_.resource_of(t);
  const double* crow = plat.comm_row(s);

  loads_[s].compute += sign * tg.node_weight(t) * plat.processing_cost(s);
  for (const graph::Neighbor& nb : tg.neighbors(t)) {
    const graph::NodeId b = mapping_.resource_of(nb.id);
    if (b == s) continue;
    // t's side of the exchange, charged to s ...
    loads_[s].comm += sign * nb.weight * crow[b];
    // ... and the neighbor's side, charged to b (c is symmetric in the
    // platform matrix only if the resource graph is; read the b row).
    loads_[b].comm += sign * nb.weight * plat.comm_cost(b, s);
  }
}

void LoadTracker::apply_move(graph::NodeId t, graph::NodeId r) {
  if (mapping_.resource_of(t) == r) return;
  accumulate(t, -1.0);
  mapping_.set(t, r);
  accumulate(t, +1.0);
}

void LoadTracker::apply_swap(graph::NodeId t1, graph::NodeId t2) {
  const graph::NodeId r1 = mapping_.resource_of(t1);
  const graph::NodeId r2 = mapping_.resource_of(t2);
  apply_move(t1, r2);
  apply_move(t2, r1);
}

double LoadTracker::peek_move_delta(graph::NodeId t, graph::NodeId r) const {
  LoadTracker scratch(*this);
  const double before = scratch.makespan();
  scratch.apply_move(t, r);
  return scratch.makespan() - before;
}

double LoadTracker::makespan() const {
  double best = 0.0;
  for (const ResourceLoad& l : loads_) best = std::max(best, l.total());
  return best;
}

}  // namespace match::sim
