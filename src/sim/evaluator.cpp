#include "sim/evaluator.hpp"

#include <cassert>
#include <stdexcept>

#include "sim/batch_eval.hpp"

namespace match::sim {

CostEvaluator::CostEvaluator(const graph::Tig& tig, const Platform& platform)
    : tig_(&tig), platform_(&platform) {
  if (tig.num_tasks() == 0) {
    throw std::invalid_argument("CostEvaluator: empty TIG");
  }
  if (platform.num_resources() == 0) {
    throw std::invalid_argument("CostEvaluator: empty platform");
  }

  // Precompute the undirected edge list (each TIG edge once, a < b) and
  // probe the comm matrix for symmetry.  When c_{s,b} == c_{b,s} for all
  // pairs — true for every shortest-path-derived platform in the paper —
  // the makespan kernel can visit each edge once and charge both
  // endpoints from a single comm-matrix load, halving its gather work.
  const graph::Graph& tg = tig.graph();
  for (graph::NodeId t = 0; t < tg.num_nodes(); ++t) {
    for (const graph::Neighbor& nb : tg.neighbors(t)) {
      if (nb.id > t) edges_.push_back({t, nb.id, nb.weight});
    }
  }
  const std::size_t nr = platform.num_resources();
  comm_symmetric_ = true;
  for (graph::NodeId s = 0; s < nr && comm_symmetric_; ++s) {
    for (graph::NodeId b = s + 1; b < nr; ++b) {
      if (platform.comm_cost(s, b) != platform.comm_cost(b, s)) {
        comm_symmetric_ = false;
        break;
      }
    }
  }
}

double CostEvaluator::makespan(const Mapping& m) const {
  return makespan(m.assignment());
}

double CostEvaluator::makespan(std::span<const graph::NodeId> assignment) const {
  std::vector<double> load;
  return makespan(assignment, load);
}

double CostEvaluator::makespan(std::span<const graph::NodeId> assignment,
                               std::vector<double>& load_scratch) const {
  assert(assignment.size() == tig_->num_tasks());
  const std::size_t nr = platform_->num_resources();
  load_scratch.assign(nr, 0.0);
  double* load = load_scratch.data();

  const graph::Graph& tg = tig_->graph();
  const double* node_w = tg.node_weights().data();
  const graph::NodeId* assigned = assignment.data();
  if (comm_symmetric_) {
    // Symmetric comm matrix: visit each undirected edge once and charge
    // both endpoints from the same c_{sa,sb} load — half the gathers of
    // the per-task CSR walk below.  The comm matrix has a zero diagonal,
    // so co-located endpoints contribute exactly +0.0 with no branch.
    for (graph::NodeId t = 0; t < assignment.size(); ++t) {
      const graph::NodeId s = assigned[t];
      load[s] += node_w[t] * platform_->processing_cost(s);
    }
    // edges_ is sorted by `a`, so each run of equal-`a` edges shares one
    // comm row; accumulating that side in a register keeps the serial
    // dependency chain out of memory (only the `b` side scatters).
    const std::size_t num_edges = edges_.size();
    const UndirectedEdge* edges = edges_.data();
    for (std::size_t i = 0; i < num_edges;) {
      const graph::NodeId a = edges[i].a;
      const graph::NodeId sa = assigned[a];
      const double* crow =
          platform_->comm_row(0) + static_cast<std::size_t>(sa) * nr;
      double acc = 0.0;
      do {
        const graph::NodeId sb = assigned[edges[i].b];
        const double x = edges[i].w * crow[sb];
        acc += x;
        load[sb] += x;
        ++i;
      } while (i < num_edges && edges[i].a == a);
      load[sa] += acc;
    }
  } else {
    for (graph::NodeId t = 0; t < assignment.size(); ++t) {
      const graph::NodeId s = assigned[t];
      const double* crow = platform_->comm_row(s);
      double comm = 0.0;
      // One contiguous CSR pass per task; the comm matrix has a zero
      // diagonal, so a co-located neighbor (mapped to s) contributes
      // exactly +0.0 and the b != s branch is unnecessary.
      for (const graph::Neighbor& nb : tg.neighbors(t)) {
        comm += nb.weight * crow[assigned[nb.id]];
      }
      load[s] += node_w[t] * platform_->processing_cost(s) + comm;
    }
  }

  double best = 0.0;
  for (std::size_t s = 0; s < nr; ++s) best = std::max(best, load[s]);
  return best;
}

EvalResult CostEvaluator::evaluate(const Mapping& m) const {
  assert(m.num_tasks() == tig_->num_tasks());
  const std::size_t nr = platform_->num_resources();
  EvalResult out;
  out.loads.assign(nr, ResourceLoad{});

  const graph::Graph& tg = tig_->graph();
  const auto assignment = m.assignment();
  for (graph::NodeId t = 0; t < assignment.size(); ++t) {
    const graph::NodeId s = assignment[t];
    if (s >= nr) throw std::out_of_range("CostEvaluator: bad resource id");
    out.loads[s].compute += tg.node_weight(t) * platform_->processing_cost(s);
    const double* crow = platform_->comm_row(s);
    for (const graph::Neighbor& nb : tg.neighbors(t)) {
      const graph::NodeId b = assignment[nb.id];
      if (b != s) out.loads[s].comm += nb.weight * crow[b];
    }
  }

  for (graph::NodeId s = 0; s < nr; ++s) {
    const double total = out.loads[s].total();
    if (total > out.makespan) {
      out.makespan = total;
      out.busiest = s;
    }
  }
  return out;
}

void CostEvaluator::makespans_batch(std::span<const graph::NodeId> rows,
                                    std::size_t count, std::span<double> out,
                                    const parallel::ForOptions& opts) const {
  BatchEvaluator scalar(*this, EvalBackend::kScalar);
  scalar.evaluate_rows(rows, count, out, opts);
}

LoadTracker::LoadTracker(const CostEvaluator& eval, const Mapping& initial)
    : eval_(&eval), mapping_(initial) {
  const EvalResult r = eval.evaluate(initial);
  loads_ = r.loads;
}

void LoadTracker::accumulate(graph::NodeId t, double sign) {
  const graph::Graph& tg = eval_->tig().graph();
  const Platform& plat = eval_->platform();
  const graph::NodeId s = mapping_.resource_of(t);
  const double* crow = plat.comm_row(s);

  loads_[s].compute += sign * tg.node_weight(t) * plat.processing_cost(s);
  for (const graph::Neighbor& nb : tg.neighbors(t)) {
    const graph::NodeId b = mapping_.resource_of(nb.id);
    if (b == s) continue;
    // t's side of the exchange, charged to s ...
    loads_[s].comm += sign * nb.weight * crow[b];
    // ... and the neighbor's side, charged to b (c is symmetric in the
    // platform matrix only if the resource graph is; read the b row).
    loads_[b].comm += sign * nb.weight * plat.comm_cost(b, s);
  }
}

void LoadTracker::apply_move(graph::NodeId t, graph::NodeId r) {
  if (mapping_.resource_of(t) == r) return;
  accumulate(t, -1.0);
  mapping_.set(t, r);
  accumulate(t, +1.0);
}

void LoadTracker::apply_swap(graph::NodeId t1, graph::NodeId t2) {
  const graph::NodeId r1 = mapping_.resource_of(t1);
  const graph::NodeId r2 = mapping_.resource_of(t2);
  apply_move(t1, r2);
  apply_move(t2, r1);
}

double LoadTracker::peek_move_delta(graph::NodeId t, graph::NodeId r) const {
  LoadTracker scratch(*this);
  const double before = scratch.makespan();
  scratch.apply_move(t, r);
  return scratch.makespan() - before;
}

double LoadTracker::makespan() const {
  double best = 0.0;
  for (const ResourceLoad& l : loads_) best = std::max(best, l.total());
  return best;
}

}  // namespace match::sim
