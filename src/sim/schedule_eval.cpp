#include "sim/schedule_eval.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>

#include "graph/algorithms.hpp"

namespace match::sim {

namespace {

using graph::NodeId;

/// Comparison tolerance for schedule times: absolute for small values,
/// relative once times grow (weights are typically integers, so exact
/// equality usually holds; the slack only absorbs reassociation).
double time_tol(double scale) { return 1e-9 * (1.0 + std::abs(scale)); }

}  // namespace

ScheduleEvaluator::ScheduleEvaluator(const graph::Dag& dag,
                                     const Platform& platform)
    : dag_(&dag),
      platform_(&platform),
      topo_order_(graph::topological_order(dag)),
      pool_([] { return std::make_unique<BatchScratch>(); }) {
  if (platform.num_resources() == 0) {
    throw std::invalid_argument("ScheduleEvaluator: empty platform");
  }
}

double ScheduleEvaluator::makespan(std::span<const NodeId> assignment,
                                   Scratch& scratch) const {
  const std::size_t n = num_tasks();
  const std::size_t nr = num_resources();
  if (assignment.size() != n) {
    throw std::invalid_argument("ScheduleEvaluator::makespan: size mismatch");
  }
  scratch.finish.resize(n);
  scratch.avail.assign(nr, 0.0);

  double makespan = 0.0;
  for (const NodeId t : topo_order_) {
    const NodeId r = assignment[t];
    const double exec = dag_->node_weight(t) * platform_->processing_cost(r);
    const double* crow = platform_->comm_row(r);
    double ready = 0.0;
    for (const auto& p : dag_->predecessors(t)) {
      const NodeId pr = assignment[p.id];
      const double arrive =
          scratch.finish[p.id] + (pr == r ? 0.0 : p.weight * crow[pr]);
      ready = std::max(ready, arrive);
    }
    const double start = std::max(scratch.avail[r], ready);
    scratch.finish[t] = start + exec;
    scratch.avail[r] = scratch.finish[t];
    makespan = std::max(makespan, scratch.finish[t]);
  }
  return makespan;
}

double ScheduleEvaluator::makespan(std::span<const NodeId> assignment) const {
  Scratch scratch;
  return makespan(assignment, scratch);
}

double ScheduleEvaluator::schedule_priorities(std::span<const NodeId> priority,
                                              Scratch& scratch,
                                              Schedule* out) const {
  const std::size_t n = num_tasks();
  const std::size_t nr = num_resources();
  if (priority.size() != n) {
    throw std::invalid_argument(
        "ScheduleEvaluator::schedule_priorities: size mismatch");
  }
  constexpr std::uint32_t kUnset = std::numeric_limits<std::uint32_t>::max();
  scratch.slot.assign(n, kUnset);
  for (std::size_t k = 0; k < n; ++k) {
    const NodeId t = priority[k];
    if (t >= n || scratch.slot[t] != kUnset) {
      throw std::invalid_argument(
          "ScheduleEvaluator::schedule_priorities: not a permutation");
    }
    scratch.slot[t] = static_cast<std::uint32_t>(k);
  }

  scratch.finish.resize(n);
  scratch.start.resize(n);
  scratch.assign.resize(n);
  scratch.indegree.resize(n);
  scratch.heap.clear();
  scratch.busy_start.resize(nr);
  scratch.busy_end.resize(nr);
  for (std::size_t r = 0; r < nr; ++r) {
    scratch.busy_start[r].clear();
    scratch.busy_end[r].clear();
  }

  // Min-heap over ready tasks, keyed by priority slot.
  const auto later = [&](NodeId a, NodeId b) {
    return scratch.slot[a] > scratch.slot[b];
  };
  for (std::size_t t = 0; t < n; ++t) {
    scratch.indegree[t] =
        static_cast<std::uint32_t>(dag_->in_degree(static_cast<NodeId>(t)));
    if (scratch.indegree[t] == 0) {
      scratch.heap.push_back(static_cast<NodeId>(t));
    }
  }
  std::make_heap(scratch.heap.begin(), scratch.heap.end(), later);

  double makespan = 0.0;
  std::size_t scheduled = 0;
  while (!scratch.heap.empty()) {
    std::pop_heap(scratch.heap.begin(), scratch.heap.end(), later);
    const NodeId t = scratch.heap.back();
    scratch.heap.pop_back();
    ++scheduled;

    // Insertion-based EFT over every resource.
    double best_eft = std::numeric_limits<double>::infinity();
    double best_start = 0.0;
    NodeId best_r = 0;
    for (std::size_t r = 0; r < nr; ++r) {
      const double exec = dag_->node_weight(t) *
                          platform_->processing_cost(static_cast<NodeId>(r));
      const double* crow = platform_->comm_row(static_cast<NodeId>(r));
      double ready = 0.0;
      for (const auto& p : dag_->predecessors(t)) {
        const NodeId pr = scratch.assign[p.id];
        const double arrive =
            scratch.finish[p.id] +
            (pr == static_cast<NodeId>(r) ? 0.0 : p.weight * crow[pr]);
        ready = std::max(ready, arrive);
      }
      // Earliest gap in r's busy list that fits `exec` no earlier than
      // `ready`.  Lists are sorted by start and non-overlapping.
      const auto& bs = scratch.busy_start[r];
      const auto& be = scratch.busy_end[r];
      double slot_start = ready;
      for (std::size_t i = 0; i < bs.size(); ++i) {
        if (bs[i] - slot_start >= exec) break;  // fits before interval i
        slot_start = std::max(slot_start, be[i]);
      }
      const double eft = slot_start + exec;
      if (eft < best_eft) {
        best_eft = eft;
        best_start = slot_start;
        best_r = static_cast<NodeId>(r);
      }
    }

    scratch.assign[t] = best_r;
    scratch.start[t] = best_start;
    scratch.finish[t] = best_eft;
    makespan = std::max(makespan, best_eft);

    // Insert the busy interval at its sorted position.
    auto& bs = scratch.busy_start[best_r];
    auto& be = scratch.busy_end[best_r];
    const auto pos = std::upper_bound(bs.begin(), bs.end(), best_start);
    const std::size_t idx = static_cast<std::size_t>(pos - bs.begin());
    bs.insert(pos, best_start);
    be.insert(be.begin() + static_cast<std::ptrdiff_t>(idx), best_eft);

    for (const auto& s : dag_->successors(t)) {
      if (--scratch.indegree[s.id] == 0) {
        scratch.heap.push_back(s.id);
        std::push_heap(scratch.heap.begin(), scratch.heap.end(), later);
      }
    }
  }
  // Dag construction rejects cycles, so the ready set never starves.
  (void)scheduled;

  if (out != nullptr) {
    out->assignment.assign(scratch.assign.begin(), scratch.assign.end());
    out->start.assign(scratch.start.begin(), scratch.start.end());
    out->finish.assign(scratch.finish.begin(), scratch.finish.end());
    out->makespan = makespan;
  }
  return makespan;
}

std::vector<double> ScheduleEvaluator::upward_ranks() const {
  const std::size_t n = num_tasks();
  const std::size_t nr = num_resources();
  double mean_w = 0.0;
  for (std::size_t r = 0; r < nr; ++r) {
    mean_w += platform_->processing_cost(static_cast<NodeId>(r));
  }
  mean_w /= static_cast<double>(nr);
  // Mean comm cost over distinct ordered resource pairs (0 on a single
  // resource, where no transfer ever happens).
  double mean_c = 0.0;
  if (nr > 1) {
    for (std::size_t r = 0; r < nr; ++r) {
      const double* crow = platform_->comm_row(static_cast<NodeId>(r));
      for (std::size_t q = 0; q < nr; ++q) {
        if (q != r) mean_c += crow[q];
      }
    }
    mean_c /= static_cast<double>(nr * (nr - 1));
  }

  std::vector<double> rank(n, 0.0);
  for (std::size_t i = n; i-- > 0;) {
    const NodeId t = topo_order_[i];
    double tail = 0.0;
    for (const auto& s : dag_->successors(t)) {
      tail = std::max(tail, s.weight * mean_c + rank[s.id]);
    }
    rank[t] = dag_->node_weight(t) * mean_w + tail;
  }
  return rank;
}

void ScheduleEvaluator::makespans_batch(const SampleBlock& block,
                                        std::span<double> out,
                                        const parallel::ForOptions& opts) const {
  if (block.num_tasks() != num_tasks()) {
    throw std::invalid_argument(
        "ScheduleEvaluator::makespans_batch: task-count mismatch");
  }
  if (out.size() < block.size()) {
    throw std::invalid_argument(
        "ScheduleEvaluator::makespans_batch: output too small");
  }
  parallel::parallel_for_chunked(
      0, block.size(),
      [&](std::size_t lo, std::size_t hi, std::size_t) {
        auto lease = pool_.acquire();
        lease->row.resize(num_tasks());
        for (std::size_t i = lo; i < hi; ++i) {
          block.load_sample(i, lease->row);
          out[i] = makespan(lease->row, lease->sched);
        }
      },
      opts);
}

void ScheduleEvaluator::priority_makespans_batch(
    const SampleBlock& block, std::span<double> out,
    const parallel::ForOptions& opts) const {
  if (block.num_tasks() != num_tasks()) {
    throw std::invalid_argument(
        "ScheduleEvaluator::priority_makespans_batch: task-count mismatch");
  }
  if (out.size() < block.size()) {
    throw std::invalid_argument(
        "ScheduleEvaluator::priority_makespans_batch: output too small");
  }
  parallel::parallel_for_chunked(
      0, block.size(),
      [&](std::size_t lo, std::size_t hi, std::size_t) {
        auto lease = pool_.acquire();
        lease->row.resize(num_tasks());
        for (std::size_t i = lo; i < hi; ++i) {
          block.load_sample(i, lease->row);
          out[i] = schedule_priorities(lease->row, lease->sched);
        }
      },
      opts);
}

bool schedule_feasible(const graph::Dag& dag, const Platform& platform,
                       const Schedule& schedule, std::string* why) {
  const auto fail = [&](std::string message) {
    if (why != nullptr) *why = std::move(message);
    return false;
  };
  const std::size_t n = dag.num_nodes();
  const std::size_t nr = platform.num_resources();
  if (schedule.assignment.size() != n || schedule.start.size() != n ||
      schedule.finish.size() != n) {
    return fail("schedule arrays do not match the DAG size");
  }
  double max_finish = 0.0;
  for (std::size_t t = 0; t < n; ++t) {
    const NodeId r = schedule.assignment[t];
    if (r >= nr) {
      return fail("task " + std::to_string(t) + " assigned out of range");
    }
    const double exec = dag.node_weight(static_cast<NodeId>(t)) *
                        platform.processing_cost(r);
    if (std::abs(schedule.finish[t] - (schedule.start[t] + exec)) >
        time_tol(schedule.finish[t])) {
      return fail("task " + std::to_string(t) +
                  " finish != start + execution time");
    }
    if (schedule.start[t] < -time_tol(0.0)) {
      return fail("task " + std::to_string(t) + " starts before time 0");
    }
    max_finish = std::max(max_finish, schedule.finish[t]);
  }
  if (std::abs(schedule.makespan - max_finish) > time_tol(max_finish)) {
    return fail("makespan does not equal the latest finish time");
  }
  // Precedence + data-arrival constraints.
  for (std::size_t t = 0; t < n; ++t) {
    const NodeId r = schedule.assignment[t];
    const double* crow = platform.comm_row(r);
    for (const auto& p : dag.predecessors(static_cast<NodeId>(t))) {
      const NodeId pr = schedule.assignment[p.id];
      const double arrive =
          schedule.finish[p.id] + (pr == r ? 0.0 : p.weight * crow[pr]);
      if (schedule.start[t] + time_tol(arrive) < arrive) {
        return fail("task " + std::to_string(t) + " starts before data from " +
                    std::to_string(p.id) + " arrives");
      }
    }
  }
  // Resource exclusivity: no two tasks overlap on one resource.
  std::vector<std::vector<std::pair<double, double>>> busy(nr);
  for (std::size_t t = 0; t < n; ++t) {
    busy[schedule.assignment[t]].emplace_back(schedule.start[t],
                                              schedule.finish[t]);
  }
  for (std::size_t r = 0; r < nr; ++r) {
    std::sort(busy[r].begin(), busy[r].end());
    for (std::size_t i = 1; i < busy[r].size(); ++i) {
      if (busy[r][i].first + time_tol(busy[r][i].first) <
          busy[r][i - 1].second) {
        return fail("overlapping tasks on resource " + std::to_string(r));
      }
    }
  }
  if (why != nullptr) why->clear();
  return true;
}

}  // namespace match::sim
