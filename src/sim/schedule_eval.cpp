#include "sim/schedule_eval.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <stdexcept>
#include <utility>

#include "graph/algorithms.hpp"

namespace match::sim {

namespace {

using graph::NodeId;

/// Comparison tolerance for schedule times: absolute for small values,
/// relative once times grow (weights are typically integers, so exact
/// equality usually holds; the slack only absorbs reassociation).
double time_tol(double scale) { return 1e-9 * (1.0 + std::abs(scale)); }

}  // namespace

ScheduleEvaluator::ScheduleEvaluator(const graph::Dag& dag,
                                     const Platform& platform,
                                     EvalBackend backend)
    : dag_(&dag),
      platform_(&platform),
      topo_order_(graph::topological_order(dag)),
      backend_(resolve_eval_backend(backend)),
      pool_([] { return std::make_unique<BatchScratch>(); }) {
  if (platform.num_resources() == 0) {
    throw std::invalid_argument("ScheduleEvaluator: empty platform");
  }
  const std::size_t n = dag.num_nodes();
  const std::size_t nr = platform.num_resources();

  // exec_[t·nr + r] = W_t · w_r, built once: the scalar recurrences trade
  // a multiply for a load, the SIMD kernels get a gatherable row per
  // task, and upward_ranks reads row means off the same table.
  exec_.resize(n * nr);
  for (std::size_t t = 0; t < n; ++t) {
    const double w = dag.node_weight(static_cast<NodeId>(t));
    for (std::size_t r = 0; r < nr; ++r) {
      exec_[t * nr + r] = w * platform.processing_cost(static_cast<NodeId>(r));
    }
  }

  // Flatten the predecessor lists in topological order so the batch
  // kernels walk one linear stream (offsets are topo-position-indexed).
  pred_off_.resize(n + 1);
  pred_off_[0] = 0;
  std::size_t num_preds = 0;
  for (const NodeId t : topo_order_) num_preds += dag.predecessors(t).size();
  pred_id_.reserve(num_preds);
  pred_w_.reserve(num_preds);
  for (std::size_t i = 0; i < n; ++i) {
    for (const auto& p : dag.predecessors(topo_order_[i])) {
      pred_id_.push_back(p.id);
      pred_w_.push_back(p.weight);
    }
    pred_off_[i + 1] = static_cast<std::uint32_t>(pred_id_.size());
  }
}

double ScheduleEvaluator::makespan(std::span<const NodeId> assignment,
                                   Scratch& scratch) const {
  const std::size_t n = num_tasks();
  const std::size_t nr = num_resources();
  if (assignment.size() != n) {
    throw std::invalid_argument("ScheduleEvaluator::makespan: size mismatch");
  }
  scratch.finish.resize(n);
  scratch.avail.assign(nr, 0.0);
  const double* exec = exec_.data();

  double makespan = 0.0;
  for (const NodeId t : topo_order_) {
    const NodeId r = assignment[t];
    if (r >= nr) {
      throw std::invalid_argument(
          "ScheduleEvaluator::makespan: resource id out of range");
    }
    const double* crow = platform_->comm_row(r);
    double ready = 0.0;
    for (const auto& p : dag_->predecessors(t)) {
      const NodeId pr = assignment[p.id];
      const double arrive =
          scratch.finish[p.id] + (pr == r ? 0.0 : p.weight * crow[pr]);
      ready = std::max(ready, arrive);
    }
    const double start = std::max(scratch.avail[r], ready);
    scratch.finish[t] = start + exec[t * nr + r];
    scratch.avail[r] = scratch.finish[t];
    makespan = std::max(makespan, scratch.finish[t]);
  }
  return makespan;
}

double ScheduleEvaluator::makespan(std::span<const NodeId> assignment) const {
  Scratch scratch;
  return makespan(assignment, scratch);
}

double ScheduleEvaluator::schedule_priorities(std::span<const NodeId> priority,
                                              Scratch& scratch,
                                              Schedule* out) const {
  const std::size_t n = num_tasks();
  const std::size_t nr = num_resources();
  if (priority.size() != n) {
    throw std::invalid_argument(
        "ScheduleEvaluator::schedule_priorities: size mismatch");
  }
  constexpr std::uint32_t kUnset = std::numeric_limits<std::uint32_t>::max();
  scratch.slot.assign(n, kUnset);
  for (std::size_t k = 0; k < n; ++k) {
    const NodeId t = priority[k];
    if (t >= n || scratch.slot[t] != kUnset) {
      throw std::invalid_argument(
          "ScheduleEvaluator::schedule_priorities: not a permutation");
    }
    scratch.slot[t] = static_cast<std::uint32_t>(k);
  }

  scratch.finish.resize(n);
  scratch.start.resize(n);
  scratch.assign.resize(n);
  scratch.indegree.resize(n);
  scratch.heap.clear();

  // Busy-interval arena: a resource holds at most n intervals plus the
  // sentinel, so every segment has room and inserts never reallocate.
  constexpr double kInf = std::numeric_limits<double>::infinity();
  const std::size_t stride = 2 * (n + 1);
  scratch.busy.resize(nr * stride);
  scratch.busy_len.assign(nr, 0);
  for (std::size_t r = 0; r < nr; ++r) {
    scratch.busy[r * stride] = kInf;
    scratch.busy[r * stride + 1] = kInf;
  }

  // Min-heap over ready tasks, keyed by priority slot.
  const auto later = [&](NodeId a, NodeId b) {
    return scratch.slot[a] > scratch.slot[b];
  };
  for (std::size_t t = 0; t < n; ++t) {
    scratch.indegree[t] =
        static_cast<std::uint32_t>(dag_->in_degree(static_cast<NodeId>(t)));
    if (scratch.indegree[t] == 0) {
      scratch.heap.push_back(static_cast<NodeId>(t));
    }
  }
  std::make_heap(scratch.heap.begin(), scratch.heap.end(), later);

  const double* exec = exec_.data();
  double makespan = 0.0;
  std::size_t scheduled = 0;
  while (!scratch.heap.empty()) {
    std::pop_heap(scratch.heap.begin(), scratch.heap.end(), later);
    const NodeId t = scratch.heap.back();
    scratch.heap.pop_back();
    ++scheduled;

    // Insertion-based EFT over every resource.
    double best_eft = std::numeric_limits<double>::infinity();
    double best_start = 0.0;
    NodeId best_r = 0;
    for (std::size_t r = 0; r < nr; ++r) {
      const double exec_tr = exec[t * nr + r];
      const double* crow = platform_->comm_row(static_cast<NodeId>(r));
      double ready = 0.0;
      for (const auto& p : dag_->predecessors(t)) {
        const NodeId pr = scratch.assign[p.id];
        const double arrive =
            scratch.finish[p.id] +
            (pr == static_cast<NodeId>(r) ? 0.0 : p.weight * crow[pr]);
        ready = std::max(ready, arrive);
      }
      // Earliest gap in r's busy arena that fits `exec_tr` no earlier
      // than `ready`.  The sentinel's +inf start satisfies the break
      // condition for any finite slot, so the scan carries no length
      // compare, and the slide over each interval is a branchless maxsd.
      const double* iv = scratch.busy.data() + r * stride;
      double slot_start = ready;
      for (std::size_t i = 0;; ++i) {
        if (iv[2 * i] - slot_start >= exec_tr) break;
        slot_start = std::max(slot_start, iv[2 * i + 1]);
      }
      const double eft = slot_start + exec_tr;
      if (eft < best_eft) {
        best_eft = eft;
        best_start = slot_start;
        best_r = static_cast<NodeId>(r);
      }
    }

    scratch.assign[t] = best_r;
    scratch.start[t] = best_start;
    scratch.finish[t] = best_eft;
    makespan = std::max(makespan, best_eft);

    // Insert the busy interval at its sorted position: strided binary
    // search, then one memmove that carries the sentinel along.
    double* iv = scratch.busy.data() + best_r * stride;
    const std::uint32_t len = scratch.busy_len[best_r];
    std::uint32_t pos = 0;
    std::uint32_t hi = len;
    while (pos < hi) {
      const std::uint32_t mid = (pos + hi) / 2;
      if (iv[2 * mid] <= best_start) {
        pos = mid + 1;
      } else {
        hi = mid;
      }
    }
    std::memmove(iv + 2 * (pos + 1), iv + 2 * pos,
                 sizeof(double) * 2 * (len - pos + 1));
    iv[2 * pos] = best_start;
    iv[2 * pos + 1] = best_eft;
    scratch.busy_len[best_r] = len + 1;

    for (const auto& s : dag_->successors(t)) {
      if (--scratch.indegree[s.id] == 0) {
        scratch.heap.push_back(s.id);
        std::push_heap(scratch.heap.begin(), scratch.heap.end(), later);
      }
    }
  }
  // Dag construction rejects cycles, so the ready set never starves.
  (void)scheduled;

  if (out != nullptr) {
    out->assignment.assign(scratch.assign.begin(), scratch.assign.end());
    out->start.assign(scratch.start.begin(), scratch.start.end());
    out->finish.assign(scratch.finish.begin(), scratch.finish.end());
    out->makespan = makespan;
  }
  return makespan;
}

std::vector<double> ScheduleEvaluator::upward_ranks() const {
  const std::size_t n = num_tasks();
  const std::size_t nr = num_resources();
  // Mean comm cost over distinct ordered resource pairs (0 on a single
  // resource, where no transfer ever happens).
  double mean_c = 0.0;
  if (nr > 1) {
    for (std::size_t r = 0; r < nr; ++r) {
      const double* crow = platform_->comm_row(static_cast<NodeId>(r));
      for (std::size_t q = 0; q < nr; ++q) {
        if (q != r) mean_c += crow[q];
      }
    }
    mean_c /= static_cast<double>(nr * (nr - 1));
  }

  const double* exec = exec_.data();
  std::vector<double> rank(n, 0.0);
  for (std::size_t i = n; i-- > 0;) {
    const NodeId t = topo_order_[i];
    // Mean exec over the task's exec-cost table row.
    double mean_w = 0.0;
    for (std::size_t r = 0; r < nr; ++r) mean_w += exec[t * nr + r];
    mean_w /= static_cast<double>(nr);
    double tail = 0.0;
    for (const auto& s : dag_->successors(t)) {
      tail = std::max(tail, s.weight * mean_c + rank[s.id]);
    }
    rank[t] = mean_w + tail;
  }
  return rank;
}

void ScheduleEvaluator::makespans_batch(const SampleBlock& block,
                                        std::span<double> out,
                                        const parallel::ForOptions& opts) const {
  if (block.num_tasks() != num_tasks()) {
    throw std::invalid_argument(
        "ScheduleEvaluator::makespans_batch: task-count mismatch");
  }
  if (out.size() < block.size()) {
    throw std::invalid_argument(
        "ScheduleEvaluator::makespans_batch: output too small");
  }
  // Validate every lane's resource ids serially up front: thread-pool
  // tasks must not throw (parallel/thread_pool.hpp), so the kernels below
  // run on known-good data.  Padding lanes are zero-filled, so scanning
  // whole task rows (stride included) is safe — and the scan is a plain
  // unsigned max-reduction the compiler vectorizes on its own.
  const std::size_t nr = num_resources();
  if (block.num_tasks() > 0) {
    const NodeId* data = block.task_row(0);
    const std::size_t total = block.num_tasks() * block.lane_stride();
    NodeId max_id = 0;
    for (std::size_t i = 0; i < total; ++i) max_id = std::max(max_id, data[i]);
    if (max_id >= nr) {
      throw std::invalid_argument(
          "ScheduleEvaluator::makespans_batch: resource id out of range");
    }
  }
  parallel::parallel_for_chunked(
      0, block.size(),
      [&](std::size_t lo, std::size_t hi, std::size_t) {
        auto lease = pool_.acquire();
        switch (backend_) {
          case EvalBackend::kAvx2:
            detail::schedule_eval_avx2_range(*this, block, lo, hi,
                                             lease->lanes, out.data());
            break;
          case EvalBackend::kAvx512:
            detail::schedule_eval_avx512_range(*this, block, lo, hi,
                                               lease->lanes, out.data());
            break;
          case EvalBackend::kNeon:
            detail::schedule_eval_neon_range(*this, block, lo, hi,
                                             lease->lanes, out.data());
            break;
          default: {
            lease->row.resize(num_tasks());
            for (std::size_t i = lo; i < hi; ++i) {
              block.load_sample(i, lease->row);
              out[i] = makespan(lease->row, lease->sched);
            }
            break;
          }
        }
      },
      opts);
}

void ScheduleEvaluator::priority_makespans_batch(
    const SampleBlock& block, std::span<double> out,
    const parallel::ForOptions& opts) const {
  if (block.num_tasks() != num_tasks()) {
    throw std::invalid_argument(
        "ScheduleEvaluator::priority_makespans_batch: task-count mismatch");
  }
  if (out.size() < block.size()) {
    throw std::invalid_argument(
        "ScheduleEvaluator::priority_makespans_batch: output too small");
  }
  parallel::parallel_for_chunked(
      0, block.size(),
      [&](std::size_t lo, std::size_t hi, std::size_t) {
        auto lease = pool_.acquire();
        lease->row.resize(num_tasks());
        for (std::size_t i = lo; i < hi; ++i) {
          block.load_sample(i, lease->row);
          out[i] = schedule_priorities(lease->row, lease->sched);
        }
      },
      opts);
}

bool schedule_feasible(const graph::Dag& dag, const Platform& platform,
                       const Schedule& schedule, std::string* why) {
  const auto fail = [&](std::string message) {
    if (why != nullptr) *why = std::move(message);
    return false;
  };
  const std::size_t n = dag.num_nodes();
  const std::size_t nr = platform.num_resources();
  if (schedule.assignment.size() != n || schedule.start.size() != n ||
      schedule.finish.size() != n) {
    return fail("schedule arrays do not match the DAG size");
  }
  double max_finish = 0.0;
  for (std::size_t t = 0; t < n; ++t) {
    const NodeId r = schedule.assignment[t];
    if (r >= nr) {
      return fail("task " + std::to_string(t) + " assigned out of range");
    }
    const double exec = dag.node_weight(static_cast<NodeId>(t)) *
                        platform.processing_cost(r);
    if (std::abs(schedule.finish[t] - (schedule.start[t] + exec)) >
        time_tol(schedule.finish[t])) {
      return fail("task " + std::to_string(t) +
                  " finish != start + execution time");
    }
    if (schedule.start[t] < -time_tol(0.0)) {
      return fail("task " + std::to_string(t) + " starts before time 0");
    }
    max_finish = std::max(max_finish, schedule.finish[t]);
  }
  if (std::abs(schedule.makespan - max_finish) > time_tol(max_finish)) {
    return fail("makespan does not equal the latest finish time");
  }
  // Precedence + data-arrival constraints.
  for (std::size_t t = 0; t < n; ++t) {
    const NodeId r = schedule.assignment[t];
    const double* crow = platform.comm_row(r);
    for (const auto& p : dag.predecessors(static_cast<NodeId>(t))) {
      const NodeId pr = schedule.assignment[p.id];
      const double arrive =
          schedule.finish[p.id] + (pr == r ? 0.0 : p.weight * crow[pr]);
      if (schedule.start[t] + time_tol(arrive) < arrive) {
        return fail("task " + std::to_string(t) + " starts before data from " +
                    std::to_string(p.id) + " arrives");
      }
    }
  }
  // Resource exclusivity: one flat (resource, start, finish) record per
  // task, a single sort (resource-major, start-minor), and an adjacent-
  // overlap scan — one allocation per call instead of a vector per
  // resource (this runs on every solver result the service returns).
  struct BusyRecord {
    NodeId resource;
    double start;
    double finish;
  };
  std::vector<BusyRecord> busy;
  busy.reserve(n);
  for (std::size_t t = 0; t < n; ++t) {
    busy.push_back(
        {schedule.assignment[t], schedule.start[t], schedule.finish[t]});
  }
  std::sort(busy.begin(), busy.end(),
            [](const BusyRecord& a, const BusyRecord& b) {
              return a.resource != b.resource ? a.resource < b.resource
                                              : a.start < b.start;
            });
  for (std::size_t i = 1; i < busy.size(); ++i) {
    if (busy[i].resource == busy[i - 1].resource &&
        busy[i].start + time_tol(busy[i].start) < busy[i - 1].finish) {
      return fail("overlapping tasks on resource " +
                  std::to_string(busy[i].resource));
    }
  }
  if (why != nullptr) why->clear();
  return true;
}

}  // namespace match::sim
