#include "sim/metrics.hpp"

#include <algorithm>

namespace match::sim {

MappingMetrics compute_metrics(const CostEvaluator& eval,
                               const Mapping& mapping) {
  const EvalResult result = eval.evaluate(mapping);
  const std::size_t nr = eval.num_resources();

  MappingMetrics m;
  m.makespan = result.makespan;
  m.utilization.resize(nr);

  double load_sum = 0.0;
  for (std::size_t s = 0; s < nr; ++s) {
    const double load = result.loads[s].total();
    load_sum += load;
    m.total_comm += result.loads[s].comm;
    m.total_compute += result.loads[s].compute;
    m.utilization[s] = result.makespan > 0.0 ? load / result.makespan : 0.0;
  }
  const double mean_load = load_sum / static_cast<double>(nr);
  m.imbalance = mean_load > 0.0 ? result.makespan / mean_load : 1.0;

  // Cut fraction by communication volume.
  const graph::Graph& tg = eval.tig().graph();
  double cut_volume = 0.0;
  double total_volume = 0.0;
  const auto assignment = mapping.assignment();
  for (const graph::Edge& e : tg.edge_list()) {
    total_volume += e.weight;
    if (assignment[e.u] != assignment[e.v]) cut_volume += e.weight;
  }
  m.cut_fraction = total_volume > 0.0 ? cut_volume / total_volume : 0.0;

  std::vector<std::size_t> tasks_per_resource(nr, 0);
  for (const graph::NodeId r : assignment) ++tasks_per_resource[r];
  for (std::size_t s = 0; s < nr; ++s) {
    if (tasks_per_resource[s] > 0) ++m.used_resources;
    m.max_tasks_per_resource =
        std::max(m.max_tasks_per_resource, tasks_per_resource[s]);
  }
  return m;
}

}  // namespace match::sim
