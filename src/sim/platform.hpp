#pragma once

#include <cstddef>
#include <vector>

#include "graph/graph.hpp"

namespace match::sim {

/// How the pairwise communication cost `c_{s,b}` is derived from the
/// resource graph when two resources are not directly linked.
enum class CommCostPolicy {
  /// Use direct link weights only; a missing link is an error at
  /// construction time.  This is the paper's setting (it charges
  /// `c_{s,b}` for arbitrary pairs, implying a complete system graph).
  kDirectLinks,
  /// Route over the cheapest path: `c_{s,b}` = shortest-path distance in
  /// the resource graph.  Allows sparse topologies (mesh, ring, star).
  kShortestPath,
};

/// The execution platform: a resource graph flattened into dense arrays
/// the evaluators index directly — per-resource processing cost `w_s` and
/// an n×n communication cost matrix `c_{s,b}` (zero diagonal).
class Platform {
 public:
  Platform() = default;

  /// Flattens `rg` according to `policy`.  Throws `std::invalid_argument`
  /// if kDirectLinks is requested but some resource pair has no link, or
  /// if kShortestPath is requested on a disconnected graph.
  explicit Platform(graph::ResourceGraph rg,
                    CommCostPolicy policy = CommCostPolicy::kDirectLinks);

  std::size_t num_resources() const noexcept { return proc_cost_.size(); }

  /// Processing cost per unit of computation of resource s (w_s).
  double processing_cost(graph::NodeId s) const { return proc_cost_[s]; }

  /// Communication cost per unit between resources s and b (c_{s,b}).
  double comm_cost(graph::NodeId s, graph::NodeId b) const {
    return comm_cost_[static_cast<std::size_t>(s) * num_resources() + b];
  }

  /// Row s of the cost matrix, length n; used by the evaluators' inner
  /// loops to avoid recomputing the row base.
  const double* comm_row(graph::NodeId s) const {
    return comm_cost_.data() + static_cast<std::size_t>(s) * num_resources();
  }

  /// Dense per-resource processing-cost array (length `num_resources()`);
  /// the SIMD batch kernels gather from it directly.
  const double* proc_costs() const noexcept { return proc_cost_.data(); }

  const graph::ResourceGraph& resource_graph() const noexcept { return rg_; }
  CommCostPolicy policy() const noexcept { return policy_; }

 private:
  graph::ResourceGraph rg_;
  CommCostPolicy policy_ = CommCostPolicy::kDirectLinks;
  std::vector<double> proc_cost_;
  std::vector<double> comm_cost_;  // row-major n*n
};

}  // namespace match::sim
