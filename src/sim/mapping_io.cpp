#include "sim/mapping_io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace match::sim {

void write_mapping(std::ostream& os, const Mapping& m) {
  os << "tasks " << m.num_tasks() << "\n";
  for (graph::NodeId t = 0; t < m.num_tasks(); ++t) {
    os << "map " << t << " " << m.resource_of(t) << "\n";
  }
}

Mapping read_mapping(std::istream& is) {
  std::size_t n = 0;
  bool have_n = false;
  std::vector<graph::NodeId> assign;
  std::vector<char> seen;

  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    const auto fail = [&](const std::string& what) {
      throw std::runtime_error("read_mapping: line " +
                               std::to_string(line_no) + ": " + what);
    };
    std::istringstream ls(line);
    std::string keyword;
    if (!(ls >> keyword) || keyword[0] == '#') continue;
    if (keyword == "tasks") {
      if (have_n) fail("duplicate 'tasks' line");
      if (!(ls >> n)) fail("malformed 'tasks' line");
      assign.assign(n, 0);
      seen.assign(n, 0);
      have_n = true;
    } else if (keyword == "map") {
      if (!have_n) fail("'map' before 'tasks'");
      std::size_t task, resource;
      if (!(ls >> task >> resource)) fail("malformed 'map' line");
      if (task >= n) fail("task id out of range");
      if (seen[task]) fail("duplicate assignment for task");
      assign[task] = static_cast<graph::NodeId>(resource);
      seen[task] = 1;
    } else {
      fail("unknown keyword '" + keyword + "'");
    }
  }
  if (!have_n) throw std::runtime_error("read_mapping: missing 'tasks' line");
  for (std::size_t t = 0; t < n; ++t) {
    if (!seen[t]) {
      throw std::runtime_error("read_mapping: task " + std::to_string(t) +
                               " has no assignment");
    }
  }
  return Mapping(std::move(assign));
}

void save_mapping(const std::string& path, const Mapping& m) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("save_mapping: cannot open " + path);
  write_mapping(os, m);
  if (!os) throw std::runtime_error("save_mapping: write failed for " + path);
}

Mapping load_mapping(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("load_mapping: cannot open " + path);
  return read_mapping(is);
}

}  // namespace match::sim
