#pragma once

#include <cstddef>
#include <vector>

#include "sim/evaluator.hpp"
#include "sim/mapping.hpp"

namespace match::sim {

/// Quality metrics of a mapping beyond the scalar makespan — the numbers
/// a scheduler operator looks at to understand *why* a mapping is good
/// or bad.  Used by the CLI's `eval` command and the examples.
struct MappingMetrics {
  double makespan = 0.0;

  /// Load imbalance: makespan / mean resource load.  1.0 is perfect.
  double imbalance = 0.0;

  /// Total communication cost summed over resources (both endpoints).
  double total_comm = 0.0;

  /// Total compute cost summed over resources.
  double total_compute = 0.0;

  /// Fraction of TIG communication *volume* crossing resources
  /// (0 = everything colocated, 1 = every edge remote).
  double cut_fraction = 0.0;

  /// Resources that received at least one task.
  std::size_t used_resources = 0;

  /// Largest number of tasks on one resource.
  std::size_t max_tasks_per_resource = 0;

  /// Per-resource utilization: load / makespan, in [0, 1].
  std::vector<double> utilization;
};

/// Computes the full metric set for `mapping` under `eval`'s cost model.
MappingMetrics compute_metrics(const CostEvaluator& eval,
                               const Mapping& mapping);

}  // namespace match::sim
