#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace match::graph {

/// Immutable directed acyclic graph with per-node and per-edge weights,
/// stored in compressed-sparse-row form twice: once by successor (the
/// direction list schedulers walk when releasing ready tasks) and once by
/// predecessor (the direction they walk when computing ready times).
///
/// Node weights are task computation amounts; edge weights are the data
/// volumes transferred from a task to its successor.  Like `Graph`, a Dag
/// is built once (via `Builder` or `from_edges`) and never mutated, and
/// construction rejects anything that is not a simple DAG: out-of-range
/// endpoints, self-loops, duplicate arcs, and cycles all throw
/// `std::invalid_argument`.
class Dag {
 public:
  Dag() = default;

  /// Builds a DAG from an explicit arc list (`Edge::u` is the tail /
  /// predecessor, `Edge::v` the head / successor).  Node weights default
  /// to 1 when `node_weights` is empty; otherwise it must have exactly
  /// `num_nodes` entries.
  static Dag from_edges(std::size_t num_nodes, std::vector<double> node_weights,
                        std::span<const Edge> edges);

  /// Incremental construction helper; validation happens in `build()`.
  class Builder {
   public:
    explicit Builder(std::size_t num_nodes = 0);

    /// Appends a node and returns its id.
    NodeId add_node(double weight = 1.0);

    /// Sets the weight of an existing node.
    void set_node_weight(NodeId node, double weight);

    /// Adds the directed arc `from → to`; endpoints must already exist.
    void add_edge(NodeId from, NodeId to, double weight = 1.0);

    std::size_t num_nodes() const noexcept { return node_weights_.size(); }

    /// Finalizes into CSR form (throws on cycles etc.).  The builder is
    /// left empty.
    Dag build();

   private:
    std::vector<double> node_weights_;
    std::vector<Edge> edges_;
  };

  std::size_t num_nodes() const noexcept { return node_weights_.size(); }
  std::size_t num_edges() const noexcept { return edge_u_.size(); }

  double node_weight(NodeId node) const { return node_weights_[node]; }
  std::span<const double> node_weights() const noexcept { return node_weights_; }

  /// Sum of all node weights.
  double total_node_weight() const noexcept { return total_node_weight_; }

  /// Sum of all edge weights.
  double total_edge_weight() const noexcept { return total_edge_weight_; }

  std::size_t out_degree(NodeId node) const {
    return succ_offsets_[node + 1] - succ_offsets_[node];
  }
  std::size_t in_degree(NodeId node) const {
    return pred_offsets_[node + 1] - pred_offsets_[node];
  }

  /// The successors of `node` with the arc weights, sorted by id.
  std::span<const Neighbor> successors(NodeId node) const {
    return {successors_.data() + succ_offsets_[node],
            successors_.data() + succ_offsets_[node + 1]};
  }

  /// The predecessors of `node` with the arc weights, sorted by id.
  std::span<const Neighbor> predecessors(NodeId node) const {
    return {predecessors_.data() + pred_offsets_[node],
            predecessors_.data() + pred_offsets_[node + 1]};
  }

  /// True if the arc `from → to` exists.  O(log out_degree(from)).
  bool has_edge(NodeId from, NodeId to) const;

  /// Weight of arc `from → to`, or 0 if absent.  O(log out_degree(from)).
  double edge_weight(NodeId from, NodeId to) const;

  /// Each arc exactly once as (u=tail, v=head), sorted by (u, v).
  std::vector<Edge> edge_list() const;

  /// Structural + weight equality.
  friend bool operator==(const Dag& a, const Dag& b);

 private:
  std::vector<double> node_weights_;
  std::vector<std::size_t> succ_offsets_;  // size num_nodes + 1
  std::vector<Neighbor> successors_;       // size num_edges
  std::vector<std::size_t> pred_offsets_;  // size num_nodes + 1
  std::vector<Neighbor> predecessors_;     // size num_edges
  std::vector<NodeId> edge_u_, edge_v_;    // canonical arc list, (u, v)-sorted
  double total_node_weight_ = 0.0;
  double total_edge_weight_ = 0.0;
};

}  // namespace match::graph
