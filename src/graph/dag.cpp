#include "graph/dag.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace match::graph {

Dag Dag::from_edges(std::size_t num_nodes, std::vector<double> node_weights,
                    std::span<const Edge> edges) {
  if (node_weights.empty()) {
    node_weights.assign(num_nodes, 1.0);
  } else if (node_weights.size() != num_nodes) {
    throw std::invalid_argument("Dag: node_weights size mismatch");
  }

  // Canonicalize and validate the arc list.  Direction is meaningful, so
  // no endpoint swap here — (u, v) and (v, u) are distinct arcs.
  std::vector<Edge> canon(edges.begin(), edges.end());
  for (const auto& e : canon) {
    if (e.u >= num_nodes || e.v >= num_nodes) {
      throw std::invalid_argument("Dag: edge endpoint out of range");
    }
    if (e.u == e.v) throw std::invalid_argument("Dag: self-loop");
  }
  std::sort(canon.begin(), canon.end(), [](const Edge& a, const Edge& b) {
    return std::pair(a.u, a.v) < std::pair(b.u, b.v);
  });
  for (std::size_t i = 1; i < canon.size(); ++i) {
    if (canon[i].u == canon[i - 1].u && canon[i].v == canon[i - 1].v) {
      throw std::invalid_argument("Dag: duplicate edge");
    }
  }

  Dag g;
  g.node_weights_ = std::move(node_weights);
  g.total_node_weight_ = 0.0;
  for (double w : g.node_weights_) g.total_node_weight_ += w;

  g.edge_u_.reserve(canon.size());
  g.edge_v_.reserve(canon.size());
  g.total_edge_weight_ = 0.0;

  g.succ_offsets_.assign(num_nodes + 1, 0);
  g.pred_offsets_.assign(num_nodes + 1, 0);
  for (const auto& e : canon) {
    ++g.succ_offsets_[e.u + 1];
    ++g.pred_offsets_[e.v + 1];
  }
  for (std::size_t i = 0; i < num_nodes; ++i) {
    g.succ_offsets_[i + 1] += g.succ_offsets_[i];
    g.pred_offsets_[i + 1] += g.pred_offsets_[i];
  }

  g.successors_.resize(canon.size());
  g.predecessors_.resize(canon.size());
  std::vector<std::size_t> succ_cursor(g.succ_offsets_.begin(),
                                       g.succ_offsets_.end() - 1);
  std::vector<std::size_t> pred_cursor(g.pred_offsets_.begin(),
                                       g.pred_offsets_.end() - 1);
  for (const auto& e : canon) {
    g.successors_[succ_cursor[e.u]++] = Neighbor{e.v, e.weight};
    g.predecessors_[pred_cursor[e.v]++] = Neighbor{e.u, e.weight};
    g.edge_u_.push_back(e.u);
    g.edge_v_.push_back(e.v);
    g.total_edge_weight_ += e.weight;
  }
  // Successor rows are already sorted ((u, v)-sorted insertion); the
  // predecessor rows fill in tail order, which is also ascending — but
  // sort defensively so the invariant never depends on insertion order.
  for (std::size_t i = 0; i < num_nodes; ++i) {
    std::sort(
        g.predecessors_.begin() + static_cast<std::ptrdiff_t>(g.pred_offsets_[i]),
        g.predecessors_.begin() +
            static_cast<std::ptrdiff_t>(g.pred_offsets_[i + 1]),
        [](const Neighbor& a, const Neighbor& b) { return a.id < b.id; });
  }

  // Kahn's algorithm as a cycle check: if some node is never released,
  // the remaining arcs close a cycle.
  std::vector<std::size_t> indegree(num_nodes);
  std::vector<NodeId> ready;
  ready.reserve(num_nodes);
  for (std::size_t v = 0; v < num_nodes; ++v) {
    indegree[v] = g.in_degree(static_cast<NodeId>(v));
    if (indegree[v] == 0) ready.push_back(static_cast<NodeId>(v));
  }
  std::size_t released = 0;
  while (released < ready.size()) {
    const NodeId u = ready[released++];
    for (const auto& s : g.successors(u)) {
      if (--indegree[s.id] == 0) ready.push_back(s.id);
    }
  }
  if (released != num_nodes) throw std::invalid_argument("Dag: cycle");

  return g;
}

Dag::Builder::Builder(std::size_t num_nodes) : node_weights_(num_nodes, 1.0) {}

NodeId Dag::Builder::add_node(double weight) {
  node_weights_.push_back(weight);
  return static_cast<NodeId>(node_weights_.size() - 1);
}

void Dag::Builder::set_node_weight(NodeId node, double weight) {
  if (node >= node_weights_.size()) {
    throw std::out_of_range("Dag::Builder::set_node_weight: no such node");
  }
  node_weights_[node] = weight;
}

void Dag::Builder::add_edge(NodeId from, NodeId to, double weight) {
  if (from >= node_weights_.size() || to >= node_weights_.size()) {
    throw std::out_of_range("Dag::Builder::add_edge: no such node");
  }
  edges_.push_back(Edge{from, to, weight});
}

Dag Dag::Builder::build() {
  const std::size_t n = node_weights_.size();
  Dag g = Dag::from_edges(n, std::move(node_weights_), edges_);
  node_weights_.clear();
  edges_.clear();
  return g;
}

bool Dag::has_edge(NodeId from, NodeId to) const {
  const auto row = successors(from);
  const auto it = std::lower_bound(
      row.begin(), row.end(), to,
      [](const Neighbor& n, NodeId id) { return n.id < id; });
  return it != row.end() && it->id == to;
}

double Dag::edge_weight(NodeId from, NodeId to) const {
  const auto row = successors(from);
  const auto it = std::lower_bound(
      row.begin(), row.end(), to,
      [](const Neighbor& n, NodeId id) { return n.id < id; });
  return (it != row.end() && it->id == to) ? it->weight : 0.0;
}

std::vector<Edge> Dag::edge_list() const {
  std::vector<Edge> out;
  out.reserve(edge_u_.size());
  for (std::size_t i = 0; i < edge_u_.size(); ++i) {
    out.push_back(Edge{edge_u_[i], edge_v_[i],
                       edge_weight(edge_u_[i], edge_v_[i])});
  }
  return out;
}

bool operator==(const Dag& a, const Dag& b) {
  return a.node_weights_ == b.node_weights_ &&
         a.succ_offsets_ == b.succ_offsets_ && a.successors_ == b.successors_;
}

}  // namespace match::graph
