#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace match::graph {

/// Node index.  32 bits comfortably covers every instance size this
/// library targets while halving the memory traffic of the CSR arrays.
using NodeId = std::uint32_t;

/// An undirected weighted edge used during construction and I/O.
struct Edge {
  NodeId u = 0;
  NodeId v = 0;
  double weight = 1.0;

  friend bool operator==(const Edge&, const Edge&) = default;
};

/// A neighbor record as seen from one endpoint.
struct Neighbor {
  NodeId id;
  double weight;

  friend bool operator==(const Neighbor&, const Neighbor&) = default;
};

/// Immutable undirected graph with per-node and per-edge weights, stored
/// in compressed-sparse-row (CSR) form.
///
/// CSR keeps each node's adjacency contiguous, which is what the cost
/// evaluators iterate over in their inner loop; the layout is the single
/// most performance-relevant choice in the library.  Graphs are built
/// once (via `Builder` or the factory functions) and never mutated.
class Graph {
 public:
  Graph() = default;

  /// Builds a graph from an explicit edge list.
  ///
  /// Node weights default to 1 when `node_weights` is empty; otherwise it
  /// must have exactly `num_nodes` entries.  Throws `std::invalid_argument`
  /// on out-of-range endpoints, self-loops, or duplicate edges.
  static Graph from_edges(std::size_t num_nodes,
                          std::vector<double> node_weights,
                          std::span<const Edge> edges);

  /// Incremental construction helper.
  class Builder {
   public:
    explicit Builder(std::size_t num_nodes = 0);

    /// Appends a node and returns its id.
    NodeId add_node(double weight = 1.0);

    /// Sets the weight of an existing node.
    void set_node_weight(NodeId node, double weight);

    /// Adds an undirected edge; endpoints must already exist.
    void add_edge(NodeId u, NodeId v, double weight = 1.0);

    std::size_t num_nodes() const noexcept { return node_weights_.size(); }

    /// Finalizes into CSR form.  The builder is left empty.
    Graph build();

   private:
    std::vector<double> node_weights_;
    std::vector<Edge> edges_;
  };

  std::size_t num_nodes() const noexcept { return node_weights_.size(); }
  std::size_t num_edges() const noexcept { return edge_u_.size(); }

  double node_weight(NodeId node) const { return node_weights_[node]; }
  std::span<const double> node_weights() const noexcept { return node_weights_; }

  /// Sum of all node weights.
  double total_node_weight() const noexcept { return total_node_weight_; }

  /// Sum of all edge weights.
  double total_edge_weight() const noexcept { return total_edge_weight_; }

  std::size_t degree(NodeId node) const {
    return offsets_[node + 1] - offsets_[node];
  }

  /// The neighbors of `node` with the corresponding edge weights,
  /// contiguous and sorted by neighbor id.
  std::span<const Neighbor> neighbors(NodeId node) const {
    return {adjacency_.data() + offsets_[node],
            adjacency_.data() + offsets_[node + 1]};
  }

  /// True if the undirected edge (u, v) exists.  O(log deg(u)).
  bool has_edge(NodeId u, NodeId v) const;

  /// Weight of edge (u, v), or 0 if absent.  O(log deg(u)).
  double edge_weight(NodeId u, NodeId v) const;

  /// Each undirected edge exactly once, with u < v, sorted by (u, v).
  std::vector<Edge> edge_list() const;

  /// Structural + weight equality.
  friend bool operator==(const Graph& a, const Graph& b);

 private:
  std::vector<double> node_weights_;
  std::vector<std::size_t> offsets_;   // size num_nodes + 1
  std::vector<Neighbor> adjacency_;    // size 2 * num_edges
  std::vector<NodeId> edge_u_, edge_v_;  // canonical edge list (u < v)
  double total_node_weight_ = 0.0;
  double total_edge_weight_ = 0.0;
};

/// A Task Interaction Graph: nodes are data-parallel tasks (weight = amount
/// of computation, e.g. grid points of an overset grid), edges are data
/// exchanges (weight = communication volume, e.g. overlapping grid points).
class Tig {
 public:
  Tig() = default;
  explicit Tig(Graph g) : g_(std::move(g)) {}

  const Graph& graph() const noexcept { return g_; }
  std::size_t num_tasks() const noexcept { return g_.num_nodes(); }

  /// Computational weight W^t of task t.
  double compute_weight(NodeId task) const { return g_.node_weight(task); }

  /// Communication volume C^{t,a}; 0 when the tasks do not interact.
  double comm_volume(NodeId t, NodeId a) const { return g_.edge_weight(t, a); }

  std::span<const Neighbor> neighbors(NodeId task) const {
    return g_.neighbors(task);
  }

  friend bool operator==(const Tig&, const Tig&) = default;

 private:
  Graph g_;
};

/// A heterogeneous resource (system) graph: nodes are processors (weight =
/// processing cost per unit of computation, i.e. *slowness*), edges are
/// links (weight = cost per unit of communication).
class ResourceGraph {
 public:
  ResourceGraph() = default;
  explicit ResourceGraph(Graph g) : g_(std::move(g)) {}

  const Graph& graph() const noexcept { return g_; }
  std::size_t num_resources() const noexcept { return g_.num_nodes(); }

  /// Processing cost per unit of computation, w_s.
  double processing_cost(NodeId resource) const {
    return g_.node_weight(resource);
  }

  /// Direct link cost c_{s,b}; 0 when no direct link exists.
  double link_cost(NodeId s, NodeId b) const { return g_.edge_weight(s, b); }

  std::span<const Neighbor> neighbors(NodeId resource) const {
    return g_.neighbors(resource);
  }

  friend bool operator==(const ResourceGraph&, const ResourceGraph&) = default;

 private:
  Graph g_;
};

}  // namespace match::graph
