#include "graph/generators.hpp"

#include <array>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "graph/algorithms.hpp"

namespace match::graph {

namespace {

std::vector<double> sample_node_weights(std::size_t n, WeightRange r,
                                        rng::Rng& rng) {
  std::vector<double> w(n);
  for (auto& x : w) x = r.sample(rng);
  return w;
}

/// Adds edges joining the connected components of `edges` into one
/// component, picking one random representative per component.
void patch_connectivity(std::size_t n, std::vector<Edge>& edges,
                        WeightRange edge_w, rng::Rng& rng) {
  Graph probe = Graph::from_edges(n, {}, edges);
  const Components comps = connected_components(probe);
  if (comps.count <= 1) return;

  std::vector<std::vector<NodeId>> members(comps.count);
  for (NodeId u = 0; u < n; ++u) {
    members[comps.label[u]].push_back(u);
  }
  for (std::size_t c = 1; c < comps.count; ++c) {
    const NodeId a = members[c - 1][rng.below(members[c - 1].size())];
    const NodeId b = members[c][rng.below(members[c].size())];
    edges.push_back(Edge{a, b, edge_w.sample(rng)});
  }
}

}  // namespace

Graph make_complete(std::size_t n, WeightRange node_w, WeightRange edge_w,
                    rng::Rng& rng) {
  std::vector<Edge> edges;
  edges.reserve(n * (n - 1) / 2);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      edges.push_back(Edge{u, v, edge_w.sample(rng)});
    }
  }
  return Graph::from_edges(n, sample_node_weights(n, node_w, rng), edges);
}

Graph make_ring(std::size_t n, WeightRange node_w, WeightRange edge_w,
                rng::Rng& rng) {
  if (n < 3) throw std::invalid_argument("make_ring: need n >= 3");
  std::vector<Edge> edges;
  edges.reserve(n);
  for (NodeId u = 0; u < n; ++u) {
    edges.push_back(Edge{u, static_cast<NodeId>((u + 1) % n), edge_w.sample(rng)});
  }
  return Graph::from_edges(n, sample_node_weights(n, node_w, rng), edges);
}

Graph make_star(std::size_t n, WeightRange node_w, WeightRange edge_w,
                rng::Rng& rng) {
  if (n < 2) throw std::invalid_argument("make_star: need n >= 2");
  std::vector<Edge> edges;
  edges.reserve(n - 1);
  for (NodeId u = 1; u < n; ++u) {
    edges.push_back(Edge{0, u, edge_w.sample(rng)});
  }
  return Graph::from_edges(n, sample_node_weights(n, node_w, rng), edges);
}

Graph make_mesh(std::size_t rows, std::size_t cols, bool torus,
                WeightRange node_w, WeightRange edge_w, rng::Rng& rng) {
  if (rows < 1 || cols < 1) throw std::invalid_argument("make_mesh: empty");
  const std::size_t n = rows * cols;
  const auto at = [cols](std::size_t r, std::size_t c) {
    return static_cast<NodeId>(r * cols + c);
  };
  std::vector<Edge> edges;
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) edges.push_back(Edge{at(r, c), at(r, c + 1), edge_w.sample(rng)});
      if (r + 1 < rows) edges.push_back(Edge{at(r, c), at(r + 1, c), edge_w.sample(rng)});
    }
  }
  if (torus) {
    // Wrap-around links; skip dimensions of size <= 2, where the wrap edge
    // would duplicate an existing mesh edge.
    if (cols > 2) {
      for (std::size_t r = 0; r < rows; ++r) {
        edges.push_back(Edge{at(r, cols - 1), at(r, 0), edge_w.sample(rng)});
      }
    }
    if (rows > 2) {
      for (std::size_t c = 0; c < cols; ++c) {
        edges.push_back(Edge{at(rows - 1, c), at(0, c), edge_w.sample(rng)});
      }
    }
  }
  return Graph::from_edges(n, sample_node_weights(n, node_w, rng), edges);
}

Graph make_gnp(std::size_t n, double p, WeightRange node_w, WeightRange edge_w,
               rng::Rng& rng, bool force_connected) {
  if (p < 0.0 || p > 1.0) throw std::invalid_argument("make_gnp: bad p");
  std::vector<Edge> edges;
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      if (rng.bernoulli(p)) edges.push_back(Edge{u, v, edge_w.sample(rng)});
    }
  }
  if (force_connected && n > 0) patch_connectivity(n, edges, edge_w, rng);
  return Graph::from_edges(n, sample_node_weights(n, node_w, rng), edges);
}

Graph make_clustered(std::size_t n, std::size_t regions, double p_dense,
                     double p_sparse, WeightRange node_w, WeightRange edge_w,
                     rng::Rng& rng, bool force_connected) {
  if (regions == 0) throw std::invalid_argument("make_clustered: regions == 0");
  std::vector<Edge> edges;
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      const bool same_region = (u % regions) == (v % regions);
      const double p = same_region ? p_dense : p_sparse;
      if (rng.bernoulli(p)) edges.push_back(Edge{u, v, edge_w.sample(rng)});
    }
  }
  if (force_connected && n > 0) patch_connectivity(n, edges, edge_w, rng);
  return Graph::from_edges(n, sample_node_weights(n, node_w, rng), edges);
}

Graph make_barabasi_albert(std::size_t n, std::size_t m, WeightRange node_w,
                           WeightRange edge_w, rng::Rng& rng) {
  if (m == 0 || n <= m) {
    throw std::invalid_argument("make_barabasi_albert: need n > m >= 1");
  }
  std::vector<Edge> edges;
  // Repeated-endpoint list: each edge contributes both endpoints, giving
  // the classic degree-proportional sampling distribution.
  std::vector<NodeId> endpoint_pool;
  // Seed: a clique over the first m+1 nodes.
  for (NodeId u = 0; u <= m; ++u) {
    for (NodeId v = u + 1; v <= m; ++v) {
      edges.push_back(Edge{u, v, edge_w.sample(rng)});
      endpoint_pool.push_back(u);
      endpoint_pool.push_back(v);
    }
  }
  for (NodeId u = static_cast<NodeId>(m + 1); u < n; ++u) {
    std::vector<NodeId> targets;
    while (targets.size() < m) {
      const NodeId cand = endpoint_pool[rng.below(endpoint_pool.size())];
      bool duplicate = false;
      for (NodeId t : targets) duplicate |= (t == cand);
      if (!duplicate) targets.push_back(cand);
    }
    for (NodeId t : targets) {
      edges.push_back(Edge{t, u, edge_w.sample(rng)});
      endpoint_pool.push_back(t);
      endpoint_pool.push_back(u);
    }
  }
  return Graph::from_edges(n, sample_node_weights(n, node_w, rng), edges);
}

Graph make_geometric(std::size_t n, double radius, WeightRange node_w,
                     double cost_per_unit, rng::Rng& rng,
                     bool force_connected) {
  if (radius <= 0.0 || cost_per_unit <= 0.0) {
    throw std::invalid_argument("make_geometric: bad radius or cost");
  }
  std::vector<std::array<double, 2>> points(n);
  for (auto& pt : points) pt = {rng.uniform(), rng.uniform()};

  const auto dist = [&](std::size_t a, std::size_t b) {
    const double dx = points[a][0] - points[b][0];
    const double dy = points[a][1] - points[b][1];
    return std::sqrt(dx * dx + dy * dy);
  };

  std::vector<Edge> edges;
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      const double d = dist(u, v);
      if (d <= radius) {
        edges.push_back(Edge{u, v, std::max(d, 1e-6) * cost_per_unit});
      }
    }
  }

  if (force_connected && n > 0) {
    // Link components via the globally nearest cross-component pair,
    // repeated until connected — preserves the geometric flavor better
    // than random patch edges.
    for (;;) {
      Graph probe = Graph::from_edges(n, {}, edges);
      const Components comps = connected_components(probe);
      if (comps.count <= 1) break;
      double best_d = std::numeric_limits<double>::infinity();
      NodeId best_u = 0, best_v = 0;
      for (NodeId u = 0; u < n; ++u) {
        for (NodeId v = u + 1; v < n; ++v) {
          if (comps.label[u] == comps.label[v]) continue;
          const double d = dist(u, v);
          if (d < best_d) {
            best_d = d;
            best_u = u;
            best_v = v;
          }
        }
      }
      edges.push_back(
          Edge{best_u, best_v, std::max(best_d, 1e-6) * cost_per_unit});
    }
  }
  return Graph::from_edges(n, sample_node_weights(n, node_w, rng), edges);
}

}  // namespace match::graph
