#include "graph/graph.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace match::graph {

Graph Graph::from_edges(std::size_t num_nodes, std::vector<double> node_weights,
                        std::span<const Edge> edges) {
  if (node_weights.empty()) {
    node_weights.assign(num_nodes, 1.0);
  } else if (node_weights.size() != num_nodes) {
    throw std::invalid_argument("Graph: node_weights size mismatch");
  }

  // Canonicalize and validate the edge list.
  std::vector<Edge> canon(edges.begin(), edges.end());
  for (auto& e : canon) {
    if (e.u >= num_nodes || e.v >= num_nodes) {
      throw std::invalid_argument("Graph: edge endpoint out of range");
    }
    if (e.u == e.v) throw std::invalid_argument("Graph: self-loop");
    if (e.u > e.v) std::swap(e.u, e.v);
  }
  std::sort(canon.begin(), canon.end(), [](const Edge& a, const Edge& b) {
    return std::pair(a.u, a.v) < std::pair(b.u, b.v);
  });
  for (std::size_t i = 1; i < canon.size(); ++i) {
    if (canon[i].u == canon[i - 1].u && canon[i].v == canon[i - 1].v) {
      throw std::invalid_argument("Graph: duplicate edge");
    }
  }

  Graph g;
  g.node_weights_ = std::move(node_weights);
  g.total_node_weight_ = 0.0;
  for (double w : g.node_weights_) g.total_node_weight_ += w;

  g.edge_u_.reserve(canon.size());
  g.edge_v_.reserve(canon.size());
  g.total_edge_weight_ = 0.0;

  // Counting pass for CSR offsets.
  g.offsets_.assign(num_nodes + 1, 0);
  for (const auto& e : canon) {
    ++g.offsets_[e.u + 1];
    ++g.offsets_[e.v + 1];
  }
  for (std::size_t i = 0; i < num_nodes; ++i) g.offsets_[i + 1] += g.offsets_[i];

  g.adjacency_.resize(2 * canon.size());
  std::vector<std::size_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (const auto& e : canon) {
    g.adjacency_[cursor[e.u]++] = Neighbor{e.v, e.weight};
    g.adjacency_[cursor[e.v]++] = Neighbor{e.u, e.weight};
    g.edge_u_.push_back(e.u);
    g.edge_v_.push_back(e.v);
    g.total_edge_weight_ += e.weight;
  }
  // Edges were inserted in (u, v)-sorted order, so each node's "forward"
  // neighbors are sorted, but the "backward" ones interleave; sort each row.
  for (std::size_t i = 0; i < num_nodes; ++i) {
    std::sort(g.adjacency_.begin() + static_cast<std::ptrdiff_t>(g.offsets_[i]),
              g.adjacency_.begin() + static_cast<std::ptrdiff_t>(g.offsets_[i + 1]),
              [](const Neighbor& a, const Neighbor& b) { return a.id < b.id; });
  }
  return g;
}

Graph::Builder::Builder(std::size_t num_nodes) : node_weights_(num_nodes, 1.0) {}

NodeId Graph::Builder::add_node(double weight) {
  node_weights_.push_back(weight);
  return static_cast<NodeId>(node_weights_.size() - 1);
}

void Graph::Builder::set_node_weight(NodeId node, double weight) {
  if (node >= node_weights_.size()) {
    throw std::out_of_range("Builder::set_node_weight: no such node");
  }
  node_weights_[node] = weight;
}

void Graph::Builder::add_edge(NodeId u, NodeId v, double weight) {
  if (u >= node_weights_.size() || v >= node_weights_.size()) {
    throw std::out_of_range("Builder::add_edge: no such node");
  }
  edges_.push_back(Edge{u, v, weight});
}

Graph Graph::Builder::build() {
  const std::size_t n = node_weights_.size();
  Graph g = Graph::from_edges(n, std::move(node_weights_), edges_);
  node_weights_.clear();
  edges_.clear();
  return g;
}

bool Graph::has_edge(NodeId u, NodeId v) const {
  const auto row = neighbors(u);
  const auto it = std::lower_bound(
      row.begin(), row.end(), v,
      [](const Neighbor& n, NodeId id) { return n.id < id; });
  return it != row.end() && it->id == v;
}

double Graph::edge_weight(NodeId u, NodeId v) const {
  const auto row = neighbors(u);
  const auto it = std::lower_bound(
      row.begin(), row.end(), v,
      [](const Neighbor& n, NodeId id) { return n.id < id; });
  return (it != row.end() && it->id == v) ? it->weight : 0.0;
}

std::vector<Edge> Graph::edge_list() const {
  std::vector<Edge> out;
  out.reserve(edge_u_.size());
  for (std::size_t i = 0; i < edge_u_.size(); ++i) {
    out.push_back(Edge{edge_u_[i], edge_v_[i], edge_weight(edge_u_[i], edge_v_[i])});
  }
  return out;
}

bool operator==(const Graph& a, const Graph& b) {
  return a.node_weights_ == b.node_weights_ && a.offsets_ == b.offsets_ &&
         a.adjacency_ == b.adjacency_;
}

}  // namespace match::graph
