#include "graph/io.hpp"

#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace match::graph {

void write_graph(std::ostream& os, const Graph& g) {
  os << std::setprecision(17);
  os << "nodes " << g.num_nodes() << "\n";
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    os << "node " << u << " " << g.node_weight(u) << "\n";
  }
  for (const Edge& e : g.edge_list()) {
    os << "edge " << e.u << " " << e.v << " " << e.weight << "\n";
  }
}

Graph read_graph(std::istream& is) {
  std::size_t n = 0;
  bool have_n = false;
  std::vector<double> node_weights;
  std::vector<Edge> edges;

  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    const auto fail = [&](const std::string& what) {
      throw std::runtime_error("read_graph: line " + std::to_string(line_no) +
                               ": " + what);
    };
    std::istringstream ls(line);
    std::string keyword;
    if (!(ls >> keyword) || keyword[0] == '#') continue;
    if (keyword == "nodes") {
      if (have_n) fail("duplicate 'nodes' line");
      if (!(ls >> n)) fail("malformed 'nodes' line");
      node_weights.assign(n, 1.0);
      have_n = true;
    } else if (keyword == "node") {
      if (!have_n) fail("'node' before 'nodes'");
      std::size_t id;
      double w;
      if (!(ls >> id >> w)) fail("malformed 'node' line");
      if (id >= n) fail("node id out of range");
      node_weights[id] = w;
    } else if (keyword == "edge") {
      if (!have_n) fail("'edge' before 'nodes'");
      std::size_t u, v;
      double w;
      if (!(ls >> u >> v >> w)) fail("malformed 'edge' line");
      if (u >= n || v >= n) fail("edge endpoint out of range");
      edges.push_back(Edge{static_cast<NodeId>(u), static_cast<NodeId>(v), w});
    } else {
      fail("unknown keyword '" + keyword + "'");
    }
  }
  if (!have_n) throw std::runtime_error("read_graph: missing 'nodes' line");
  return Graph::from_edges(n, std::move(node_weights), edges);
}

void save_graph(const std::string& path, const Graph& g) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("save_graph: cannot open " + path);
  write_graph(os, g);
  if (!os) throw std::runtime_error("save_graph: write failed for " + path);
}

Graph load_graph(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("load_graph: cannot open " + path);
  return read_graph(is);
}

void write_dot(std::ostream& os, const Graph& g, const std::string& name) {
  os << "graph " << name << " {\n";
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    os << "  n" << u << " [label=\"" << u << " (" << g.node_weight(u)
       << ")\"];\n";
  }
  for (const Edge& e : g.edge_list()) {
    os << "  n" << e.u << " -- n" << e.v << " [label=\"" << e.weight
       << "\"];\n";
  }
  os << "}\n";
}

}  // namespace match::graph
