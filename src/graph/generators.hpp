#pragma once

#include <cstddef>

#include "graph/graph.hpp"
#include "rng/rng.hpp"

namespace match::graph {

/// Inclusive integer range from which node or edge weights are drawn
/// uniformly.  The paper draws all weights from integer ranges (e.g. TIG
/// node weights 1–10), so integer draws keep instances paper-faithful;
/// the weights are stored as doubles.
struct WeightRange {
  long lo = 1;
  long hi = 1;

  double sample(rng::Rng& rng) const {
    return static_cast<double>(rng.uniform_int(lo, hi));
  }
};

/// Complete graph K_n with random weights.
Graph make_complete(std::size_t n, WeightRange node_w, WeightRange edge_w,
                    rng::Rng& rng);

/// Ring (cycle) topology.
Graph make_ring(std::size_t n, WeightRange node_w, WeightRange edge_w,
                rng::Rng& rng);

/// Star topology with node 0 at the hub.
Graph make_star(std::size_t n, WeightRange node_w, WeightRange edge_w,
                rng::Rng& rng);

/// rows x cols 2-D mesh; `torus` adds wrap-around links.
Graph make_mesh(std::size_t rows, std::size_t cols, bool torus,
                WeightRange node_w, WeightRange edge_w, rng::Rng& rng);

/// Erdős–Rényi G(n, p) with random weights.  When `force_connected` is
/// set, any disconnected result is patched by chaining the components
/// with extra random edges (weights drawn from the same range).
Graph make_gnp(std::size_t n, double p, WeightRange node_w, WeightRange edge_w,
               rng::Rng& rng, bool force_connected = true);

/// The paper's "regions of high density and regions of lower density"
/// generator: nodes are split into `regions` groups; intra-group edges
/// appear with probability `p_dense`, inter-group edges with `p_sparse`.
/// Connectivity is patched in the same way as `make_gnp`.
Graph make_clustered(std::size_t n, std::size_t regions, double p_dense,
                     double p_sparse, WeightRange node_w, WeightRange edge_w,
                     rng::Rng& rng, bool force_connected = true);

/// Barabási–Albert preferential attachment with `m` links per new node;
/// models scale-free resource pools (extension beyond the paper).
Graph make_barabasi_albert(std::size_t n, std::size_t m, WeightRange node_w,
                           WeightRange edge_w, rng::Rng& rng);

/// Random geometric graph: `n` points uniform in the unit square, an
/// edge between points within `radius`, edge weight = Euclidean distance
/// × `cost_per_unit` (link cost proportional to physical span — a
/// wide-area grid model).  Disconnected results are patched by linking
/// nearest points across components.
Graph make_geometric(std::size_t n, double radius, WeightRange node_w,
                     double cost_per_unit, rng::Rng& rng,
                     bool force_connected = true);

}  // namespace match::graph
