#pragma once

#include <iosfwd>
#include <string>

#include "graph/graph.hpp"

namespace match::graph {

/// Plain-text graph exchange format:
///
/// ```
/// # comment lines start with '#'
/// nodes <n>
/// node <id> <weight>          (one line per node; optional, default 1)
/// edge <u> <v> <weight>       (one line per undirected edge)
/// ```
///
/// The format is the library's on-disk instance representation; it is
/// whitespace-tolerant and round-trips exactly through write/read.
void write_graph(std::ostream& os, const Graph& g);
Graph read_graph(std::istream& is);

/// File-path conveniences; throw `std::runtime_error` on I/O failure.
void save_graph(const std::string& path, const Graph& g);
Graph load_graph(const std::string& path);

/// Graphviz DOT export (undirected); node labels show weights.
void write_dot(std::ostream& os, const Graph& g, const std::string& name = "G");

}  // namespace match::graph
