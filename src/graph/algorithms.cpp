#include "graph/algorithms.hpp"

#include <algorithm>
#include <functional>
#include <limits>
#include <queue>
#include <stdexcept>

namespace match::graph {

std::vector<NodeId> bfs_order(const Graph& g, NodeId start) {
  if (start >= g.num_nodes()) throw std::out_of_range("bfs_order: bad start");
  std::vector<char> seen(g.num_nodes(), 0);
  std::vector<NodeId> order;
  order.reserve(g.num_nodes());
  std::queue<NodeId> frontier;
  frontier.push(start);
  seen[start] = 1;
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop();
    order.push_back(u);
    for (const Neighbor& nb : g.neighbors(u)) {
      if (!seen[nb.id]) {
        seen[nb.id] = 1;
        frontier.push(nb.id);
      }
    }
  }
  return order;
}

Components connected_components(const Graph& g) {
  Components out;
  out.label.assign(g.num_nodes(), std::numeric_limits<std::size_t>::max());
  for (NodeId s = 0; s < g.num_nodes(); ++s) {
    if (out.label[s] != std::numeric_limits<std::size_t>::max()) continue;
    const std::size_t id = out.count++;
    std::queue<NodeId> frontier;
    frontier.push(s);
    out.label[s] = id;
    while (!frontier.empty()) {
      const NodeId u = frontier.front();
      frontier.pop();
      for (const Neighbor& nb : g.neighbors(u)) {
        if (out.label[nb.id] == std::numeric_limits<std::size_t>::max()) {
          out.label[nb.id] = id;
          frontier.push(nb.id);
        }
      }
    }
  }
  return out;
}

bool is_connected(const Graph& g) {
  return g.num_nodes() == 0 || connected_components(g).count == 1;
}

GraphStats compute_stats(const Graph& g) {
  GraphStats s;
  s.nodes = g.num_nodes();
  s.edges = g.num_edges();
  if (s.nodes == 0) return s;

  s.min_degree = std::numeric_limits<std::size_t>::max();
  s.min_node_weight = std::numeric_limits<double>::infinity();
  s.max_node_weight = -std::numeric_limits<double>::infinity();
  double degree_sum = 0.0;
  for (NodeId u = 0; u < s.nodes; ++u) {
    const std::size_t d = g.degree(u);
    s.min_degree = std::min(s.min_degree, d);
    s.max_degree = std::max(s.max_degree, d);
    degree_sum += static_cast<double>(d);
    const double w = g.node_weight(u);
    s.min_node_weight = std::min(s.min_node_weight, w);
    s.max_node_weight = std::max(s.max_node_weight, w);
  }
  s.mean_degree = degree_sum / static_cast<double>(s.nodes);
  s.mean_node_weight = g.total_node_weight() / static_cast<double>(s.nodes);

  if (s.edges > 0) {
    s.min_edge_weight = std::numeric_limits<double>::infinity();
    s.max_edge_weight = -std::numeric_limits<double>::infinity();
    for (const Edge& e : g.edge_list()) {
      s.min_edge_weight = std::min(s.min_edge_weight, e.weight);
      s.max_edge_weight = std::max(s.max_edge_weight, e.weight);
    }
    s.mean_edge_weight = g.total_edge_weight() / static_cast<double>(s.edges);
    s.comp_comm_ratio = g.total_node_weight() / g.total_edge_weight();
  }
  return s;
}

std::vector<double> dijkstra(const Graph& g, NodeId source) {
  if (source >= g.num_nodes()) throw std::out_of_range("dijkstra: bad source");
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(g.num_nodes(), kInf);
  dist[source] = 0.0;

  using Item = std::pair<double, NodeId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  heap.emplace(0.0, source);
  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (d > dist[u]) continue;  // stale entry
    for (const Neighbor& nb : g.neighbors(u)) {
      const double candidate = d + nb.weight;
      if (candidate < dist[nb.id]) {
        dist[nb.id] = candidate;
        heap.emplace(candidate, nb.id);
      }
    }
  }
  return dist;
}

std::vector<double> all_pairs_shortest_paths(const Graph& g) {
  const std::size_t n = g.num_nodes();
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> d(n * n, kInf);
  for (std::size_t i = 0; i < n; ++i) d[i * n + i] = 0.0;
  for (const Edge& e : g.edge_list()) {
    d[e.u * n + e.v] = std::min(d[e.u * n + e.v], e.weight);
    d[e.v * n + e.u] = std::min(d[e.v * n + e.u], e.weight);
  }
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t i = 0; i < n; ++i) {
      const double dik = d[i * n + k];
      if (dik == kInf) continue;
      for (std::size_t j = 0; j < n; ++j) {
        const double via = dik + d[k * n + j];
        if (via < d[i * n + j]) d[i * n + j] = via;
      }
    }
  }
  return d;
}

namespace {

/// Union-find with path halving and union by size.
class DisjointSets {
 public:
  explicit DisjointSets(std::size_t n) : parent_(n), size_(n, 1) {
    for (std::size_t i = 0; i < n; ++i) parent_[i] = i;
  }

  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  bool unite(std::size_t a, std::size_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    if (size_[a] < size_[b]) std::swap(a, b);
    parent_[b] = a;
    size_[a] += size_[b];
    return true;
  }

 private:
  std::vector<std::size_t> parent_;
  std::vector<std::size_t> size_;
};

}  // namespace

std::vector<Edge> minimum_spanning_forest(const Graph& g) {
  std::vector<Edge> edges = g.edge_list();
  std::sort(edges.begin(), edges.end(),
            [](const Edge& a, const Edge& b) { return a.weight < b.weight; });
  DisjointSets sets(g.num_nodes());
  std::vector<Edge> tree;
  tree.reserve(g.num_nodes() > 0 ? g.num_nodes() - 1 : 0);
  for (const Edge& e : edges) {
    if (sets.unite(e.u, e.v)) tree.push_back(e);
  }
  std::sort(tree.begin(), tree.end(), [](const Edge& a, const Edge& b) {
    return std::pair(a.u, a.v) < std::pair(b.u, b.v);
  });
  return tree;
}

std::vector<NodeId> topological_order(const Dag& g) {
  const std::size_t n = g.num_nodes();
  std::vector<std::size_t> indegree(n);
  // Min-heap over ready node ids (std::priority_queue is a max-heap, so
  // invert the comparison).
  std::priority_queue<NodeId, std::vector<NodeId>, std::greater<NodeId>> ready;
  for (std::size_t v = 0; v < n; ++v) {
    indegree[v] = g.in_degree(static_cast<NodeId>(v));
    if (indegree[v] == 0) ready.push(static_cast<NodeId>(v));
  }
  std::vector<NodeId> order;
  order.reserve(n);
  while (!ready.empty()) {
    const NodeId u = ready.top();
    ready.pop();
    order.push_back(u);
    for (const auto& s : g.successors(u)) {
      if (--indegree[s.id] == 0) ready.push(s.id);
    }
  }
  return order;  // always complete: Dag construction rejects cycles
}

bool is_topological_order(const Dag& g, std::span<const NodeId> order) {
  const std::size_t n = g.num_nodes();
  if (order.size() != n) return false;
  constexpr std::size_t kUnseen = static_cast<std::size_t>(-1);
  std::vector<std::size_t> position(n, kUnseen);
  for (std::size_t i = 0; i < n; ++i) {
    if (order[i] >= n || position[order[i]] != kUnseen) return false;
    position[order[i]] = i;
  }
  for (std::size_t u = 0; u < n; ++u) {
    for (const auto& s : g.successors(static_cast<NodeId>(u))) {
      if (position[u] >= position[s.id]) return false;
    }
  }
  return true;
}

double critical_path_node_weight(const Dag& g) {
  const auto order = topological_order(g);
  std::vector<double> path(g.num_nodes(), 0.0);
  double best = 0.0;
  for (const NodeId u : order) {
    double longest_pred = 0.0;
    for (const auto& p : g.predecessors(u)) {
      longest_pred = std::max(longest_pred, path[p.id]);
    }
    path[u] = longest_pred + g.node_weight(u);
    best = std::max(best, path[u]);
  }
  return best;
}

}  // namespace match::graph
