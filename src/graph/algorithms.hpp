#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "graph/dag.hpp"
#include "graph/graph.hpp"

namespace match::graph {

/// Breadth-first order of the component containing `start`.
std::vector<NodeId> bfs_order(const Graph& g, NodeId start);

/// Per-node component labels in [0, k) plus the component count k.
struct Components {
  std::vector<std::size_t> label;
  std::size_t count = 0;
};
Components connected_components(const Graph& g);

/// True if the graph has a single connected component (or no nodes).
bool is_connected(const Graph& g);

/// Degree / weight summary used by generators' sanity checks and the
/// workload reports.
struct GraphStats {
  std::size_t nodes = 0;
  std::size_t edges = 0;
  std::size_t min_degree = 0;
  std::size_t max_degree = 0;
  double mean_degree = 0.0;
  double min_node_weight = 0.0;
  double max_node_weight = 0.0;
  double mean_node_weight = 0.0;
  double min_edge_weight = 0.0;
  double max_edge_weight = 0.0;
  double mean_edge_weight = 0.0;
  /// Sum of node weights over sum of edge weights — the paper's
  /// computation-to-communication ratio knob.
  double comp_comm_ratio = 0.0;
};
GraphStats compute_stats(const Graph& g);

/// Single-source shortest path distances by edge weight (Dijkstra).
/// Unreachable nodes get +infinity.  All edge weights must be >= 0.
std::vector<double> dijkstra(const Graph& g, NodeId source);

/// All-pairs shortest path distance matrix (row-major n*n) via
/// Floyd–Warshall.  diag = 0; unreachable pairs = +infinity.
std::vector<double> all_pairs_shortest_paths(const Graph& g);

/// Minimum spanning forest by Kruskal's algorithm (union-find): the
/// minimum spanning tree of each connected component, as canonical
/// (u < v) edges sorted by (u, v).  Used to build cheap backbone
/// topologies from geometric resource layouts.
std::vector<Edge> minimum_spanning_forest(const Graph& g);

/// The canonical topological order of a DAG: Kahn's algorithm with a
/// min-heap over ready nodes, so among all valid orders this returns the
/// lexicographically smallest — a deterministic order independent of how
/// the DAG was constructed.  `Dag` construction already rejects cycles,
/// so every Dag has one.
std::vector<NodeId> topological_order(const Dag& g);

/// True if `order` is a permutation of the DAG's nodes in which every arc
/// points forward (each node appears after all its predecessors).
bool is_topological_order(const Dag& g, std::span<const NodeId> order);

/// Length of the longest path by node weight (sum of node weights along
/// the path; arc weights are ignored).  The classic critical-path lower
/// bound on any schedule when every resource has unit speed.
double critical_path_node_weight(const Dag& g);

}  // namespace match::graph
