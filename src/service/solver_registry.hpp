#pragma once

// Uniform solver interface of the mapping service: every mapping
// heuristic in the library (MaTCH, FastMap-GA, restarted hill climbing,
// the list heuristics) is adapted behind one
// `solve(instance, options, context)` entry point, so the service
// dispatches on `SolverKind` without knowing any solver's API.
//
// Adapter contract (matches the deadline contract in deadline.hpp):
//  * deterministic: equal (instance, options) → byte-identical mapping,
//    regardless of attached telemetry;
//  * the returned mapping is always complete and valid, even when the
//    context's stop hook fires before the first iteration;
//  * the stop hook is polled at iteration granularity — cancellation
//    latency is one iteration, not one full run.
//
// The adapters build a per-request RNG from `options.seed` and attach it
// to a copy of the caller's context, so the service's stop hook, event
// sink, metrics registry, and run id all flow into the solver unchanged.

#include <map>
#include <memory>
#include <vector>

#include "core/run_summary.hpp"
#include "core/solver_context.hpp"
#include "service/deadline.hpp"
#include "service/request.hpp"
#include "sim/batch_eval.hpp"
#include "sim/mapping.hpp"
#include "workload/instance.hpp"

namespace match::service {

/// What one solver run produced.  The `RunSummary` base (best cost,
/// iterations, cancelled, degenerate) is copied wholesale from the
/// solver's result — adapters no longer re-map fields one by one.
struct SolveOutcome : match::RunSummary {
  sim::Mapping mapping;
};

/// Abstract solver adapted into the service.
class Solver {
 public:
  virtual ~Solver() = default;

  virtual const char* name() const = 0;

  /// Solves the instance under the given options.  The context carries
  /// the stop hook (may be empty: no deadline, no cancellation) and
  /// optional telemetry; its RNG slot is ignored — adapters seed their
  /// own stream from `options.seed`.
  virtual SolveOutcome solve(const workload::Instance& instance,
                             const SolveOptions& options,
                             const match::SolverContext& ctx) const = 0;
};

/// SolverKind → Solver dispatch table.  The default constructor registers
/// every built-in adapter; callers may override or extend.
class SolverRegistry {
 public:
  /// Builds the registry with all built-in solvers registered.  The
  /// batch-evaluation backend is threaded into every adapter that runs a
  /// population/batch solver (MaTCH, FastMap-GA); `kAuto` picks the best
  /// SIMD tier the host supports.
  explicit SolverRegistry(
      sim::EvalBackend eval_backend = sim::EvalBackend::kAuto);

  /// Registers (or replaces) the solver for `kind`.
  void register_solver(SolverKind kind, std::unique_ptr<Solver> solver);

  /// Throws `std::out_of_range` when no solver is registered for `kind`.
  const Solver& get(SolverKind kind) const;

  bool contains(SolverKind kind) const;

  std::vector<SolverKind> kinds() const;

 private:
  std::map<SolverKind, std::unique_ptr<Solver>> solvers_;
};

}  // namespace match::service
