#pragma once

// Uniform solver interface of the mapping service: every mapping
// heuristic in the library (MaTCH, FastMap-GA, restarted hill climbing,
// the list heuristics, and the DAG schedulers HEFT / topological list /
// CE-over-priorities) is adapted behind one
// `solve(instance, options, context)` entry point, so the service
// dispatches on `SolverKind` without knowing any solver's API.
//
// The instance argument is a `workload::AnyInstance` — a TIG or a DAG
// behind one value type.  Each adapter declares which workload kinds it
// can serve via `supports()`; the service checks compatibility at
// admission, so by the time `solve` runs the downcast (`tig()` /
// `dag()`) cannot fail.
//
// Adapter contract (matches the deadline contract in deadline.hpp):
//  * deterministic: equal (instance, options) → byte-identical mapping,
//    regardless of attached telemetry;
//  * the returned mapping is always complete and valid, even when the
//    context's stop hook fires before the first iteration;
//  * the stop hook is polled at iteration granularity — cancellation
//    latency is one iteration, not one full run.
//
// The adapters build a per-request RNG from `options.seed` and attach it
// to a copy of the caller's context, so the service's stop hook, event
// sink, metrics registry, and run id all flow into the solver unchanged.

#include <map>
#include <memory>
#include <vector>

#include "core/ce_params.hpp"
#include "core/run_summary.hpp"
#include "core/solver_context.hpp"
#include "service/deadline.hpp"
#include "service/request.hpp"
#include "sim/batch_eval.hpp"
#include "sim/mapping.hpp"
#include "workload/any_instance.hpp"

namespace match::service {

/// What one solver run produced.  The `RunSummary` base (best cost,
/// iterations, cancelled, degenerate) is copied wholesale from the
/// solver's result — adapters no longer re-map fields one by one.
struct SolveOutcome : match::RunSummary {
  sim::Mapping mapping;
};

/// Abstract solver adapted into the service.
class Solver {
 public:
  virtual ~Solver() = default;

  virtual const char* name() const = 0;

  /// Which workload kinds this solver can serve.  The base default is
  /// TIG-only (every pre-DAG adapter); DAG schedulers override.  The
  /// service rejects a request whose instance kind is unsupported
  /// BEFORE enqueueing, so `solve` never sees a mismatched instance.
  virtual bool supports(workload::WorkloadKind kind) const {
    return kind == workload::WorkloadKind::kTig;
  }

  /// Solves the instance under the given options.  The context carries
  /// the stop hook (may be empty: no deadline, no cancellation) and
  /// optional telemetry; its RNG slot is ignored — adapters seed their
  /// own stream from `options.seed`.
  virtual SolveOutcome solve(const workload::AnyInstance& instance,
                             const SolveOptions& options,
                             const match::SolverContext& ctx) const = 0;
};

/// SolverKind → Solver dispatch table.  The default constructor registers
/// every built-in adapter; callers may extend with `register_solver`
/// (duplicate kinds are rejected) or swap an adapter with
/// `replace_solver`.
class SolverRegistry {
 public:
  /// Builds the registry with all built-in solvers registered.  The
  /// `defaults` struct carries the knobs every CE-family solver shares
  /// (`core::CeCommonParams`): notably `eval_backend` is threaded into
  /// every adapter that runs a population/batch solver (MaTCH,
  /// FastMap-GA) and `parallel` / `sampler` flow into the CE adapters.
  /// Per-request `SolveOptions` still override the result-affecting
  /// knobs they carry (budget, target, seed).
  explicit SolverRegistry(core::CeCommonParams defaults = {});

  /// Convenience overload retained for callers that only care about the
  /// batch-evaluation backend.
  explicit SolverRegistry(sim::EvalBackend eval_backend);

  /// Registers the solver for `kind`.  Throws `std::invalid_argument`
  /// when a solver is already registered for that kind — silent
  /// replacement has bitten: a double registration is a wiring bug, and
  /// the cache would keep serving results computed by the evicted
  /// solver under the same fingerprint.
  void register_solver(SolverKind kind, std::unique_ptr<Solver> solver);

  /// Deliberate replacement for callers that DO want to swap an
  /// adapter (tests, custom deployments).
  void replace_solver(SolverKind kind, std::unique_ptr<Solver> solver);

  /// Throws `std::out_of_range` when no solver is registered for `kind`.
  const Solver& get(SolverKind kind) const;

  bool contains(SolverKind kind) const;

  std::vector<SolverKind> kinds() const;

 private:
  std::map<SolverKind, std::unique_ptr<Solver>> solvers_;
};

}  // namespace match::service
