#pragma once

// Uniform solver interface of the mapping service: every mapping
// heuristic in the library (MaTCH, FastMap-GA, restarted hill climbing,
// the list heuristics) is adapted behind one
// `solve(instance, options, should_stop)` entry point, so the service
// dispatches on `SolverKind` without knowing any solver's API.
//
// Adapter contract (matches the deadline contract in deadline.hpp):
//  * deterministic: equal (instance, options) → byte-identical mapping;
//  * the returned mapping is always complete and valid, even when
//    `should_stop` fires before the first iteration;
//  * `should_stop` is polled at iteration granularity — cancellation
//    latency is one iteration, not one full run.

#include <map>
#include <memory>
#include <vector>

#include "service/deadline.hpp"
#include "service/request.hpp"
#include "sim/mapping.hpp"
#include "workload/instance.hpp"

namespace match::service {

/// What one solver run produced.
struct SolveOutcome {
  sim::Mapping mapping;
  double cost = 0.0;
  std::size_t iterations = 0;
  /// True when the run ended because `should_stop` fired.
  bool stopped_early = false;
};

/// Abstract solver adapted into the service.
class Solver {
 public:
  virtual ~Solver() = default;

  virtual const char* name() const = 0;

  /// Solves the instance under the given options.  `should_stop` may be
  /// empty (no deadline, no cancellation).
  virtual SolveOutcome solve(const workload::Instance& instance,
                             const SolveOptions& options,
                             const StopFn& should_stop) const = 0;
};

/// SolverKind → Solver dispatch table.  The default constructor registers
/// every built-in adapter; callers may override or extend.
class SolverRegistry {
 public:
  /// Builds the registry with all built-in solvers registered.
  SolverRegistry();

  /// Registers (or replaces) the solver for `kind`.
  void register_solver(SolverKind kind, std::unique_ptr<Solver> solver);

  /// Throws `std::out_of_range` when no solver is registered for `kind`.
  const Solver& get(SolverKind kind) const;

  bool contains(SolverKind kind) const;

  std::vector<SolverKind> kinds() const;

 private:
  std::map<SolverKind, std::unique_ptr<Solver>> solvers_;
};

}  // namespace match::service
