#include "service/service.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <string>
#include <utility>

#include "obs/spans.hpp"

namespace match::service {

namespace {

double seconds_between(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

void emit_service_event(obs::EventSink* sink, std::uint64_t run_id,
                        SolverKind solver, const char* action,
                        double seconds = 0.0) {
  if (sink == nullptr) return;
  sink->emit(obs::Event::service_event(run_id, to_string(solver), action,
                                       seconds));
}

}  // namespace

void ServiceConfig::validate() const {
  if (workers == 0) {
    throw std::invalid_argument("ServiceConfig: workers must be >= 1");
  }
  if (queue_capacity == 0) {
    throw std::invalid_argument("ServiceConfig: queue_capacity must be >= 1");
  }
  solver_defaults.validate_common("ServiceConfig.solver_defaults");
}

MappingService::MappingService(ServiceConfig config)
    : config_(config),
      registry_(config.solver_defaults),
      cache_(config.cache_capacity) {
  config_.validate();
  pool_ = std::make_unique<parallel::ThreadPool>(config_.workers);
  for (std::size_t i = 0; i < config_.workers; ++i) {
    pool_->submit([this] { pump(); });
  }
}

MappingService::~MappingService() { shutdown(); }

MappingService::Pending MappingService::make_pending(MapRequest request) {
  if (!request.instance) {
    throw std::invalid_argument("MappingService::submit: null instance");
  }
  if (!registry_.contains(request.solver)) {
    throw std::invalid_argument(
        "MappingService::submit: no solver registered for request");
  }
  if (!registry_.get(request.solver).supports(request.instance->kind())) {
    throw std::invalid_argument(
        std::string("MappingService::submit: solver '") +
        to_string(request.solver) + "' does not support " +
        workload::workload_kind_name(request.instance->kind()) +
        " workloads");
  }
  Pending pending;
  pending.submitted_at = Clock::now();
  pending.deadline =
      request.options.deadline_seconds > 0.0
          ? Deadline::at(pending.submitted_at +
                         std::chrono::duration_cast<Clock::duration>(
                             std::chrono::duration<double>(
                                 request.options.deadline_seconds)))
          : Deadline::never();
  pending.request = std::move(request);
  pending.run_id = next_run_id_.fetch_add(1, std::memory_order_relaxed);
  return pending;
}

void MappingService::note_enqueued(std::uint64_t run_id, SolverKind solver) {
  metrics_.counter("service.submitted").add();
  emit_service_event(config_.sink, run_id, solver, "enqueue");
}

std::future<MapResponse> MappingService::submit(MapRequest request) {
  Pending pending = make_pending(std::move(request));
  std::future<MapResponse> future = pending.promise.get_future();
  const std::uint64_t run_id = pending.run_id;
  const SolverKind solver = pending.request.solver;

  {
    std::unique_lock<std::mutex> lock(queue_mutex_);
    queue_not_full_.wait(lock, [this] {
      return !accepting_ || queue_.size() < config_.queue_capacity;
    });
    if (!accepting_) {
      throw std::runtime_error("MappingService::submit after shutdown");
    }
    queue_.push_back(std::move(pending));
    {
      std::lock_guard<std::mutex> stats_lock(stats_mutex_);
      ++submitted_;
      peak_queue_depth_ = std::max(peak_queue_depth_, queue_.size());
    }
  }
  note_enqueued(run_id, solver);
  queue_not_empty_.notify_one();
  return future;
}

bool MappingService::try_submit(MapRequest request, CompletionFn on_complete) {
  if (!on_complete) {
    throw std::invalid_argument("MappingService::try_submit: null callback");
  }
  Pending pending = make_pending(std::move(request));
  pending.on_complete = std::move(on_complete);
  const std::uint64_t run_id = pending.run_id;
  const SolverKind solver = pending.request.solver;

  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    if (!accepting_ || queue_.size() >= config_.queue_capacity) return false;
    queue_.push_back(std::move(pending));
    {
      std::lock_guard<std::mutex> stats_lock(stats_mutex_);
      ++submitted_;
      peak_queue_depth_ = std::max(peak_queue_depth_, queue_.size());
    }
  }
  note_enqueued(run_id, solver);
  queue_not_empty_.notify_one();
  return true;
}

MapResponse MappingService::solve(MapRequest request) {
  return submit(std::move(request)).get();
}

void MappingService::drain() {
  std::unique_lock<std::mutex> lock(queue_mutex_);
  queue_drained_.wait(lock,
                      [this] { return queue_.empty() && processing_ == 0; });
}

void MappingService::shutdown() {
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    accepting_ = false;
  }
  queue_not_full_.notify_all();
  drain();
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    closed_ = true;
  }
  queue_not_empty_.notify_all();
  if (pool_) {
    pool_->shutdown();  // pumps have exited; joins the workers
    pool_.reset();
  }
}

void MappingService::pump() {
  for (;;) {
    Pending pending;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_not_empty_.wait(lock,
                            [this] { return closed_ || !queue_.empty(); });
      if (queue_.empty()) return;  // closed and drained
      pending = std::move(queue_.front());
      queue_.pop_front();
      ++processing_;
    }
    queue_not_full_.notify_one();

    if (pending.on_complete) {
      // Callback path (network front end): failures are delivered
      // in-band as a response with an empty mapping, so the callback
      // always fires exactly once and the caller owns the error surface.
      MapResponse response;
      try {
        response = process(pending);
      } catch (...) {
        response = MapResponse{};
        response.id = pending.request.id;
        response.solver = pending.request.solver;
        response.total_seconds =
            seconds_between(pending.submitted_at, Clock::now());
        metrics_.counter("service.solve_failures").add();
      }
      record_completion(response);
      pending.on_complete(std::move(response));
    } else {
      std::promise<MapResponse> promise = std::move(pending.promise);
      try {
        MapResponse response = process(pending);
        record_completion(response);
        promise.set_value(std::move(response));
      } catch (...) {
        promise.set_exception(std::current_exception());
      }
    }

    {
      std::lock_guard<std::mutex> lock(queue_mutex_);
      --processing_;
      if (queue_.empty() && processing_ == 0) queue_drained_.notify_all();
    }
  }
}

MapResponse MappingService::process(Pending& pending) {
  const Clock::time_point picked_up = Clock::now();
  const MapRequest& request = pending.request;

  // Span stamping reuses the timestamps this function takes anyway
  // (`picked_up` here, `done` below): a traced request costs zero extra
  // clock reads inside the service.
  obs::SpanTimeline* const timeline = request.timeline;
  if (timeline != nullptr) {
    timeline->stamp(obs::SpanStage::kQueueWait, pending.submitted_at,
                    picked_up);
  }

  MapResponse response;
  response.id = request.id;
  response.solver = request.solver;

  // Per-solver request series for the /metrics exposition: which solvers
  // the traffic actually exercises (`service.requests.match`, ...).
  metrics_.counter(std::string("service.requests.") + to_string(request.solver))
      .add();

  const std::uint64_t instance_fp = fingerprint_instance(*request.instance);
  const std::uint64_t key =
      cache_key(instance_fp, request.solver, request.options);
  response.fingerprint = key;

  const bool cacheable =
      config_.cache_capacity > 0 && request.options.use_cache;

  CachedSolution solution;
  bool have_solution = false;

  if (cacheable) {
    if (std::optional<CachedSolution> hit = cache_.lookup(key)) {
      solution = std::move(*hit);
      have_solution = true;
      response.served_by = ServedBy::kCache;
      metrics_.counter("service.cache_hits").add();
      emit_service_event(config_.sink, pending.run_id, request.solver,
                         "cache_hit");
    } else {
      metrics_.counter("service.cache_misses").add();
      emit_service_event(config_.sink, pending.run_id, request.solver,
                         "cache_miss");
    }
  }

  // In-flight coalescing: identical concurrent requests batch onto one
  // solver run.  The first becomes the leader; later arrivals wait for
  // its shared result instead of re-solving.
  bool leader = false;
  bool registered = false;
  std::promise<CachedSolution> lead_promise;
  std::shared_future<CachedSolution> follow;
  if (!have_solution) {
    if (config_.coalesce && cacheable) {
      std::lock_guard<std::mutex> lock(inflight_mutex_);
      const auto it = inflight_.find(key);
      if (it != inflight_.end()) {
        follow = it->second.result;
      } else {
        leader = true;
        registered = true;
        inflight_.emplace(key, InFlight{lead_promise.get_future().share()});
      }
    } else {
      leader = true;
    }
  }

  if (!have_solution && !leader) {
    metrics_.counter("service.coalesced").add();
    emit_service_event(config_.sink, pending.run_id, request.solver,
                       "coalesce");
    solution = follow.get();  // leader is running on another worker
    have_solution = true;
    response.served_by = ServedBy::kCoalesced;
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++coalesced_;
  }

  if (!have_solution) {
    // One context per request: the deadline hook, the configured event
    // sink, the service-wide metrics registry, and the request's run id
    // all flow into the solver through it.
    match::SolverContext ctx;
    const match::StopFn should_stop = make_stop_fn(pending.deadline);
    if (should_stop) ctx.with_stop(should_stop);
    ctx.with_sink(config_.sink)
        .with_metrics(&metrics_)
        .with_run_id(pending.run_id)
        .with_span(timeline);
    try {
      const SolveOutcome outcome = registry_.get(request.solver)
                                       .solve(*request.instance,
                                              request.options, ctx);
      solution.mapping = outcome.mapping;
      solution.cost = outcome.best_cost;
      solution.iterations = outcome.iterations;
      response.served_by = ServedBy::kSolver;
      response.run_id = pending.run_id;
      // Deadline-truncated results depend on machine load; never cache
      // them, so cached entries always equal a full deterministic run.
      if (cacheable && !outcome.cancelled) {
        cache_.insert(key, solution);
      }
      if (registered) {
        lead_promise.set_value(solution);
        std::lock_guard<std::mutex> lock(inflight_mutex_);
        inflight_.erase(key);
      }
    } catch (...) {
      if (registered) {
        lead_promise.set_exception(std::current_exception());
        std::lock_guard<std::mutex> lock(inflight_mutex_);
        inflight_.erase(key);
      }
      throw;
    }
  }

  response.mapping = std::move(solution.mapping);
  response.cost = solution.cost;
  response.iterations =
      response.served_by == ServedBy::kSolver ? solution.iterations : 0;

  const Clock::time_point done = Clock::now();
  if (timeline != nullptr) {
    timeline->stamp(obs::SpanStage::kSolve, picked_up, done,
                    to_string(response.served_by));
    timeline->solver = to_string(request.solver);
  }
  response.queue_seconds = seconds_between(pending.submitted_at, picked_up);
  response.solve_seconds = seconds_between(picked_up, done);
  response.total_seconds = seconds_between(pending.submitted_at, done);
  response.deadline_missed =
      !pending.deadline.unlimited() && done > *pending.deadline.time_point();
  if (response.deadline_missed) {
    metrics_.counter("service.deadline_misses").add();
    emit_service_event(config_.sink, pending.run_id, request.solver,
                       "deadline_expired", response.total_seconds);
  }
  return response;
}

void MappingService::record_completion(const MapResponse& response) {
  metrics_.counter("service.completed").add();
  metrics_.histogram("service.latency_seconds").observe(response.total_seconds);
  // Pure service time (queue wait excluded): the admission layer's
  // projected-wait estimator wants how long a worker holds a request,
  // not how long requests waited under the current load.
  metrics_.histogram("service.solve_seconds").observe(response.solve_seconds);
  std::lock_guard<std::mutex> lock(stats_mutex_);
  ++completed_;
  if (response.deadline_missed) ++deadline_misses_;
  latencies_.push_back(response.total_seconds);
}

namespace {

double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  const std::size_t rank = std::min(
      values.size() - 1,
      static_cast<std::size_t>(p * static_cast<double>(values.size() - 1)));
  std::nth_element(values.begin(),
                   values.begin() + static_cast<std::ptrdiff_t>(rank),
                   values.end());
  return values[rank];
}

}  // namespace

std::size_t MappingService::queue_depth() const {
  std::lock_guard<std::mutex> lock(queue_mutex_);
  return queue_.size();
}

std::size_t MappingService::in_flight() const {
  std::lock_guard<std::mutex> lock(queue_mutex_);
  return processing_;
}

double MappingService::projected_wait_seconds() const {
  const obs::Histogram* solve = metrics_.find_histogram("service.solve_seconds");
  if (solve == nullptr || solve->count() == 0) {
    solve = metrics_.find_histogram("service.latency_seconds");
  }
  if (solve == nullptr || solve->count() == 0) return 0.0;
  const double mean_service =
      solve->sum() / static_cast<double>(solve->count());
  std::size_t depth;
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    depth = queue_.size();
  }
  return mean_service * static_cast<double>(depth) /
         static_cast<double>(config_.workers);
}

ServiceStats MappingService::stats() const {
  ServiceStats out;
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    out.queue_depth = queue_.size();
    out.in_flight = processing_;
  }
  std::vector<double> latencies;
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    out.submitted = submitted_;
    out.completed = completed_;
    out.deadline_misses = deadline_misses_;
    out.coalesced = coalesced_;
    out.peak_queue_depth = peak_queue_depth_;
    latencies = latencies_;
  }
  out.fallback_draws = metrics_.counter_value("solver.fallback_draws");
  const CacheStats cache = cache_.stats();
  out.cache_hits = cache.hits;
  out.cache_misses = cache.misses;
  out.cache_evictions = cache.evictions;
  out.cache_size = cache.size;

  if (!latencies.empty()) {
    double sum = 0.0;
    for (double v : latencies) sum += v;
    out.mean_latency_seconds = sum / static_cast<double>(latencies.size());
    out.p50_latency_seconds = percentile(latencies, 0.50);
    out.p99_latency_seconds = percentile(latencies, 0.99);
  }
  return out;
}

}  // namespace match::service
