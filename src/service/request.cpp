#include "service/request.hpp"

#include <stdexcept>

namespace match::service {

const char* to_string(SolverKind kind) {
  switch (kind) {
    case SolverKind::kMatch:
      return "match";
    case SolverKind::kGa:
      return "fastmap-ga";
    case SolverKind::kLocalSearch:
      return "local-search";
    case SolverKind::kMinMin:
      return "min-min";
    case SolverKind::kMaxMin:
      return "max-min";
    case SolverKind::kSufferage:
      return "sufferage";
    case SolverKind::kHeft:
      return "heft";
    case SolverKind::kTopoList:
      return "topo-list";
    case SolverKind::kDagCe:
      return "dag-ce";
  }
  return "unknown";
}

SolverKind parse_solver_kind(const std::string& name) {
  for (SolverKind kind :
       {SolverKind::kMatch, SolverKind::kGa, SolverKind::kLocalSearch,
        SolverKind::kMinMin, SolverKind::kMaxMin, SolverKind::kSufferage,
        SolverKind::kHeft, SolverKind::kTopoList, SolverKind::kDagCe}) {
    if (name == to_string(kind)) return kind;
  }
  throw std::invalid_argument("parse_solver_kind: unknown solver '" + name +
                              "'");
}

const char* to_string(ServedBy served_by) {
  switch (served_by) {
    case ServedBy::kSolver:
      return "solver";
    case ServedBy::kCache:
      return "cache";
    case ServedBy::kCoalesced:
      return "coalesced";
  }
  return "unknown";
}

}  // namespace match::service
